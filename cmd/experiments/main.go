// Command experiments regenerates every table and figure of the
// PrivApprox paper's evaluation (§6 microbenchmarks and §7 case
// studies) on the local machine and prints them as text tables.
//
// Usage:
//
//	experiments -run all
//	experiments -run table1,fig4a,fig6
//	experiments -list
//
// Absolute numbers depend on this host; the *shapes* (who wins, by what
// factor, where the crossovers fall) are the reproduction target — see
// EXPERIMENTS.md for the paper-vs-measured record.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
)

// experiment is one reproducible table or figure.
type experiment struct {
	id    string
	title string
	run   func(fast bool) error
}

var experiments = []experiment{
	{"table1", "Table 1: utility & privacy vs randomization parameters", runTable1},
	{"table2", "Table 2: crypto operation throughput (XOR vs RSA/GM/Paillier)", runTable2},
	{"table3", "Table 3: client-side throughput (DB read, RR, XOR)", runTable3},
	{"fig4a", "Fig 4a: accuracy loss vs sampling fraction (9 p,q combos)", runFig4a},
	{"fig4b", "Fig 4b: error decomposition (sampling, RR, combined)", runFig4b},
	{"fig4c", "Fig 4c: accuracy loss vs number of clients", runFig4c},
	{"fig5a", "Fig 5a: native vs inverse query accuracy", runFig5a},
	{"fig5b", "Fig 5b: proxy throughput vs answer bit-vector size", runFig5b},
	{"fig5c", "Fig 5c: privacy level, PrivApprox vs RAPPOR", runFig5c},
	{"fig6", "Fig 6: proxy latency, PrivApprox vs SplitX", runFig6},
	{"fig7", "Fig 7: NYC taxi case study (utility, privacy, trade-off)", runFig7},
	{"fig8", "Fig 8: proxy & aggregator scalability", runFig8},
	{"fig9", "Fig 9: network traffic & latency vs sampling fraction", runFig9},
	{"pipeline", "Parallel epoch pipeline: workers × shards throughput sweep", runPipeline},
	{"netbench", "Networked transport: TCP share throughput, batch × connections sweep", runNetbench},
}

func main() {
	runFlag := flag.String("run", "all", "comma-separated experiment ids, or 'all'")
	fast := flag.Bool("fast", false, "smaller populations / fewer repetitions")
	list := flag.Bool("list", false, "list experiment ids and exit")
	flag.Parse()

	if *list {
		for _, e := range experiments {
			fmt.Printf("%-8s %s\n", e.id, e.title)
		}
		return
	}

	want := map[string]bool{}
	runAll := *runFlag == "all"
	if !runAll {
		for _, id := range strings.Split(*runFlag, ",") {
			want[strings.TrimSpace(id)] = true
		}
	}
	known := map[string]bool{}
	for _, e := range experiments {
		known[e.id] = true
	}
	var unknown []string
	for id := range want {
		if !known[id] {
			unknown = append(unknown, id)
		}
	}
	if len(unknown) > 0 {
		sort.Strings(unknown)
		fmt.Fprintf(os.Stderr, "unknown experiments: %s (use -list)\n", strings.Join(unknown, ", "))
		os.Exit(2)
	}

	failed := 0
	for _, e := range experiments {
		if !runAll && !want[e.id] {
			continue
		}
		fmt.Printf("==== %s — %s ====\n", e.id, e.title)
		if err := e.run(*fast); err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", e.id, err)
			failed++
		}
		fmt.Println()
	}
	if failed > 0 {
		os.Exit(1)
	}
}
