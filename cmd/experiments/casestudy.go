package main

import (
	"fmt"
	"math/rand"
	"time"

	"privapprox/internal/budget"
	"privapprox/internal/core"
	"privapprox/internal/minisql"
	"privapprox/internal/query"
	"privapprox/internal/rr"
	"privapprox/internal/workload"
)

// simulateHistogramLoss runs the full client-side pipeline
// (sample → bucketize → randomize) over a fixed population of values and
// returns the mean per-bucket accuracy loss of the aggregator's
// estimates against the exact histogram.
func simulateHistogramLoss(rng *rand.Rand, values []float64, buckets query.Buckets, s float64, params rr.Params, runs int) (float64, error) {
	rz, err := rr.NewRandomizer(params, rng)
	if err != nil {
		return 0, err
	}
	nb := len(buckets)
	exact := make([]int, nb)
	idxOf := make([]int, len(values))
	for i, v := range values {
		idx := buckets.Index(minisql.Number(v).String())
		idxOf[i] = idx
		if idx >= 0 {
			exact[idx]++
		}
	}
	var totalLoss float64
	var lossCount int
	for run := 0; run < runs; run++ {
		observed := make([]int, nb)
		sampled := 0
		for i := range values {
			if s < 1 && rng.Float64() >= s {
				continue
			}
			sampled++
			for b := 0; b < nb; b++ {
				if rz.Respond(idxOf[i] == b) {
					observed[b]++
				}
			}
		}
		if sampled == 0 {
			continue
		}
		for b := 0; b < nb; b++ {
			if exact[b] == 0 {
				continue
			}
			truthful, err := rr.EstimateYes(params, observed[b], sampled)
			if err != nil {
				return 0, err
			}
			est := truthful * float64(len(values)) / float64(sampled)
			loss, err := rr.AccuracyLoss(float64(exact[b]), est)
			if err != nil {
				return 0, err
			}
			totalLoss += loss
			lossCount++
		}
	}
	if lossCount == 0 {
		return 0, fmt.Errorf("fig7: no buckets to score")
	}
	return totalLoss / float64(lossCount), nil
}

// Fig 7: NYC taxi case study — utility (a), zero-knowledge privacy (b),
// and the utility/privacy trade-off (c) over the (s, p, q) grid.
func runFig7(fast bool) error {
	rng := rand.New(rand.NewSource(10))
	clients, runs := 10000, 3
	if fast {
		clients, runs = 2000, 2
	}
	values := make([]float64, clients)
	for i := range values {
		values[i] = workload.TaxiDistance(rng)
	}
	buckets, err := workload.TaxiBuckets()
	if err != nil {
		return err
	}
	fractions := []float64{0.1, 0.2, 0.4, 0.6, 0.8, 0.9}
	grid := []float64{0.3, 0.6, 0.9}

	fmt.Println("(a) accuracy loss (%) vs sampling fraction")
	fmt.Printf("%-12s", "p,q \\ s")
	for _, s := range fractions {
		fmt.Printf("%8.0f%%", s*100)
	}
	fmt.Println()
	type cell struct{ loss, ezk float64 }
	table := map[[3]float64]cell{}
	for _, p := range grid {
		for _, q := range grid {
			fmt.Printf("p=%.1f q=%.1f", p, q)
			for _, s := range fractions {
				params := rr.Params{P: p, Q: q}
				loss, err := simulateHistogramLoss(rng, values, buckets, s, params, runs)
				if err != nil {
					return err
				}
				ezk, err := rr.EpsilonZK(s, params)
				if err != nil {
					return err
				}
				table[[3]float64{p, q, s}] = cell{loss, ezk}
				fmt.Printf("%8.2f%%", loss*100)
			}
			fmt.Println()
		}
	}

	fmt.Println("(b) zero-knowledge privacy level ε_zk vs sampling fraction")
	fmt.Printf("%-12s", "p,q \\ s")
	for _, s := range fractions {
		fmt.Printf("%9.0f%%", s*100)
	}
	fmt.Println()
	for _, p := range grid {
		for _, q := range grid {
			fmt.Printf("p=%.1f q=%.1f", p, q)
			for _, s := range fractions {
				fmt.Printf("%10.3f", table[[3]float64{p, q, s}].ezk)
			}
			fmt.Println()
		}
	}

	fmt.Println("(c) utility vs privacy (ε_zk, accuracy loss %) samples")
	for _, p := range grid {
		for _, s := range fractions {
			c := table[[3]float64{p, 0.3, s}]
			fmt.Printf("  ε_zk=%6.3f → loss=%5.2f%% (p=%.1f q=0.3 s=%.0f%%)\n", c.ezk, c.loss*100, p, s*100)
		}
	}
	fmt.Println("paper: utility improves / privacy weakens with s and p;")
	fmt.Println("       non-linear in q — best utility near the true yes fraction (33.57% → q=0.3)")
	return nil
}

// Fig 9: total network traffic and processing latency across sampling
// fractions, for both case studies, on the in-process system.
func runFig9(fast bool) error {
	clients, epochs := 800, 3
	if fast {
		clients, epochs = 200, 2
	}
	cases := []struct {
		name  string
		build func() (*query.Query, func(i int, db *minisql.DB) error, error)
	}{
		{"NYC Taxi", func() (*query.Query, func(int, *minisql.DB) error, error) {
			q, err := workload.TaxiQuery("a", 1, time.Second, time.Duration(epochs)*time.Second, time.Duration(epochs)*time.Second)
			pop := func(i int, db *minisql.DB) error {
				rng := rand.New(rand.NewSource(int64(i)))
				return workload.PopulateTaxi(db, rng, 2, time.Unix(0, 0), time.Minute)
			}
			return q, pop, err
		}},
		{"Electricity", func() (*query.Query, func(int, *minisql.DB) error, error) {
			q, err := workload.ElectricityQuery("a", 2, time.Second, time.Duration(epochs)*time.Second, time.Duration(epochs)*time.Second)
			pop := func(i int, db *minisql.DB) error {
				rng := rand.New(rand.NewSource(int64(i)))
				return workload.PopulateElectricity(db, rng, 2, time.Unix(0, 0))
			}
			return q, pop, err
		}},
	}
	for _, cs := range cases {
		fmt.Printf("[%s] %d clients, %d epochs\n", cs.name, clients, epochs)
		fmt.Printf("%6s  %14s  %14s  %12s  %12s\n", "s", "traffic (KB)", "latency", "traffic vs 1.0", "latency vs 1.0")
		var baseBytes int64
		var baseLatency time.Duration
		fractions := []float64{1.0, 0.9, 0.8, 0.6, 0.4, 0.2, 0.1}
		type row struct {
			s       float64
			bytes   int64
			latency time.Duration
		}
		var rows []row
		for _, s := range fractions {
			q, populate, err := cs.build()
			if err != nil {
				return err
			}
			params := budget.Params{S: s, RR: rr.Params{P: 0.9, Q: 0.6}}
			sys, err := core.New(core.Config{
				Clients:  clients,
				Query:    q,
				Params:   &params,
				Seed:     31,
				Populate: populate,
			})
			if err != nil {
				return err
			}
			start := time.Now()
			for e := 0; e < epochs; e++ {
				if _, _, err := sys.RunEpoch(); err != nil {
					sys.Close()
					return err
				}
			}
			if _, err := sys.Flush(); err != nil {
				sys.Close()
				return err
			}
			latency := time.Since(start)
			bytes := sys.Fleet().TotalStats().BytesIn
			sys.Close()
			if s == 1.0 {
				baseBytes, baseLatency = bytes, latency
			}
			rows = append(rows, row{s, bytes, latency})
		}
		for _, r := range rows {
			fmt.Printf("%5.0f%%  %14.1f  %14v  %11.2fx  %11.2fx\n",
				r.s*100, float64(r.bytes)/1024, r.latency.Round(time.Millisecond),
				float64(baseBytes)/float64(maxInt64(r.bytes, 1)),
				float64(baseLatency)/float64(maxInt64(int64(r.latency), 1)))
		}
	}
	fmt.Println("paper: at s=60%, ~1.6x traffic reduction and ~1.7x lower latency")
	return nil
}

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
