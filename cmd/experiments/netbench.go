package main

import (
	"encoding/binary"
	"fmt"
	"sync"
	"time"

	"privapprox/internal/pubsub"
)

// runNetbench measures the networked transport on loopback: client →
// TCP proxy share throughput swept over publish batch size × connection
// pool size. batch=1,conns=1 is the old one-share-per-round-trip
// protocol; the batched rows show the amortization the paper's Fig. 9
// scalability depends on (one frame per epoch per proxy instead of one
// per share).
func runNetbench(fast bool) error {
	total := 40000
	if fast {
		total = 8000
	}
	fmt.Printf("%8s  %8s  %14s  %10s\n", "batch", "conns", "shares/sec", "speedup")
	var baseline float64
	for _, conns := range []int{1, 4} {
		for _, batch := range []int{1, 64, 256, 1024} {
			rate, err := netbenchRun(total, batch, conns)
			if err != nil {
				return err
			}
			if baseline == 0 {
				baseline = rate
			}
			fmt.Printf("%8d  %8d  %14.0f  %9.2fx\n", batch, conns, rate, rate/baseline)
		}
	}
	fmt.Println("expected: ≥ 5x over the batch=1,conns=1 baseline from batch ≥ 256")
	return nil
}

// netbenchRun publishes total MID-keyed shares from 4 concurrent
// producers through one pooled client and returns shares/sec.
func netbenchRun(total, batch, conns int) (float64, error) {
	broker := pubsub.NewBroker()
	if err := broker.CreateTopic("answer", 4); err != nil {
		return 0, err
	}
	srv, err := pubsub.Serve(broker, "127.0.0.1:0")
	if err != nil {
		return 0, err
	}
	defer srv.Close()
	cli, err := pubsub.DialPool(srv.Addr(), conns)
	if err != nil {
		return 0, err
	}
	defer cli.Close()

	const producers = 4
	per := total / producers
	payload := make([]byte, 32) // an 11-bucket answer message's share size
	errs := make(chan error, producers)
	var wg sync.WaitGroup
	start := time.Now()
	for pr := 0; pr < producers; pr++ {
		wg.Add(1)
		go func(pr int) {
			defer wg.Done()
			key := func(i int) []byte {
				k := make([]byte, 16)
				binary.BigEndian.PutUint64(k, uint64(pr))
				binary.BigEndian.PutUint64(k[8:], uint64(i))
				return k
			}
			if batch <= 1 {
				for i := 0; i < per; i++ {
					if _, _, err := cli.Publish("answer", key(i), payload); err != nil {
						errs <- err
						return
					}
				}
				return
			}
			msgs := make([]pubsub.Message, 0, batch)
			for i := 0; i < per; i++ {
				msgs = append(msgs, pubsub.Message{Key: key(i), Value: payload})
				if len(msgs) == batch || i == per-1 {
					if _, err := cli.PublishBatch("answer", msgs); err != nil {
						errs <- err
						return
					}
					msgs = msgs[:0]
				}
			}
		}(pr)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(errs)
	for err := range errs {
		return 0, err
	}

	// Every share must have landed.
	var landed int64
	for p := 0; p < 4; p++ {
		end, err := broker.EndOffset("answer", p)
		if err != nil {
			return 0, err
		}
		landed += end
	}
	if landed != int64(producers*per) {
		return 0, fmt.Errorf("netbench: %d of %d shares landed", landed, producers*per)
	}
	return float64(landed) / elapsed.Seconds(), nil
}
