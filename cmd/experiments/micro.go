package main

import (
	"fmt"
	"math"
	"math/rand"

	"privapprox/internal/baseline/rappor"
	"privapprox/internal/rr"
)

// simulateLoss runs the paper's §6 microbenchmark once: a population of
// n binary answers with the given truthful-"Yes" fraction goes through
// client-side sampling (fraction s) and randomized response (p, q); the
// aggregator-side estimators reverse both; the return value is the
// accuracy loss η (Eq. 6) averaged over runs.
func simulateLoss(rng *rand.Rand, n int, yesFrac, s float64, params rr.Params, inverted bool, runs int) (float64, error) {
	rz, err := rr.NewRandomizer(params, rng)
	if err != nil {
		return 0, err
	}
	actualYes := int(math.Round(yesFrac * float64(n)))
	var total float64
	for run := 0; run < runs; run++ {
		sampled, observedYes := 0, 0
		for i := 0; i < n; i++ {
			if s < 1 && rng.Float64() >= s {
				continue
			}
			sampled++
			if rz.Respond(i < actualYes) {
				observedYes++
			}
		}
		if sampled == 0 {
			total += 1
			continue
		}
		var truthful float64
		if inverted {
			truthful, err = rr.EstimateNo(params, observedYes, sampled)
		} else {
			truthful, err = rr.EstimateYes(params, observedYes, sampled)
		}
		if err != nil {
			return 0, err
		}
		// Scale the window estimate to the population (Eq. 2).
		est := truthful * float64(n) / float64(sampled)
		actual := float64(actualYes)
		if inverted {
			actual = float64(n - actualYes)
		}
		if actual == 0 {
			continue
		}
		loss, err := rr.AccuracyLoss(actual, est)
		if err != nil {
			return 0, err
		}
		total += loss
	}
	return total / float64(runs), nil
}

// Table 1: 10,000 answers, 60% "Yes", s = 0.6 (paper §6 #I).
func runTable1(fast bool) error {
	rng := rand.New(rand.NewSource(1))
	n, runs := 10000, 20
	if fast {
		n, runs = 2000, 5
	}
	const s = 0.6
	fmt.Printf("%4s %4s  %18s  %18s\n", "p", "q", "Accuracy loss (η)", "Privacy (ε_zk)")
	for _, p := range []float64{0.3, 0.6, 0.9} {
		for _, q := range []float64{0.3, 0.6, 0.9} {
			params := rr.Params{P: p, Q: q}
			loss, err := simulateLoss(rng, n, 0.6, s, params, false, runs)
			if err != nil {
				return err
			}
			ezk, err := rr.EpsilonZK(s, params)
			if err != nil {
				return err
			}
			fmt.Printf("%4.1f %4.1f  %18.4f  %18.4f\n", p, q, loss, ezk)
		}
	}
	fmt.Println("paper: η falls as p rises; ε falls as q rises; η best near q=0.6")
	return nil
}

// Fig 4a: accuracy loss vs sampling fraction for the 9 (p, q) combos.
func runFig4a(fast bool) error {
	rng := rand.New(rand.NewSource(2))
	n, runs := 10000, 10
	if fast {
		n, runs = 2000, 3
	}
	fractions := []float64{0.1, 0.2, 0.4, 0.6, 0.8, 0.9, 1.0}
	fmt.Printf("%-12s", "p,q \\ s")
	for _, s := range fractions {
		fmt.Printf("%8.0f%%", s*100)
	}
	fmt.Println()
	for _, p := range []float64{0.3, 0.6, 0.9} {
		for _, q := range []float64{0.3, 0.6, 0.9} {
			fmt.Printf("p=%.1f q=%.1f", p, q)
			for _, s := range fractions {
				loss, err := simulateLoss(rng, n, 0.6, s, rr.Params{P: p, Q: q}, false, runs)
				if err != nil {
					return err
				}
				fmt.Printf("%8.2f%%", loss*100)
			}
			fmt.Println()
		}
	}
	fmt.Println("paper: monotone decrease, diminishing returns past s=80%")
	return nil
}

// Fig 4b: error decomposition — sampling only, randomized response
// only, and the combined pipeline (paper §6 #II: the two losses are
// independent and additive).
func runFig4b(fast bool) error {
	rng := rand.New(rand.NewSource(3))
	n, runs := 10000, 20
	if fast {
		n, runs = 2000, 5
	}
	params := rr.Params{P: 0.3, Q: 0.6}
	noRR := rr.Params{P: 1, Q: 0.6} // p=1 disables randomization
	fmt.Printf("%6s  %14s  %14s  %14s  %14s\n", "s", "sampling-only", "RR-only(s=1)", "combined", "sum of parts")
	for _, s := range []float64{0.1, 0.2, 0.4, 0.6, 0.8, 0.9, 1.0} {
		sampOnly, err := simulateLoss(rng, n, 0.6, s, noRR, false, runs)
		if err != nil {
			return err
		}
		rrOnly, err := simulateLoss(rng, n, 0.6, 1.0, params, false, runs)
		if err != nil {
			return err
		}
		combined, err := simulateLoss(rng, n, 0.6, s, params, false, runs)
		if err != nil {
			return err
		}
		fmt.Printf("%5.0f%%  %13.2f%%  %13.2f%%  %13.2f%%  %13.2f%%\n",
			s*100, sampOnly*100, rrOnly*100, combined*100, (sampOnly+rrOnly)*100)
	}
	fmt.Println("paper: combined ≈ sampling + RR (statistical independence)")
	return nil
}

// Fig 4c: accuracy loss vs number of clients (s=0.9, p=0.9, q=0.6).
func runFig4c(fast bool) error {
	rng := rand.New(rand.NewSource(4))
	params := rr.Params{P: 0.9, Q: 0.6}
	sizes := []int{10, 100, 1000, 10000, 100000, 1000000}
	runs := 10
	if fast {
		sizes = sizes[:5]
		runs = 3
	}
	fmt.Printf("%10s  %14s\n", "clients", "accuracy loss")
	for _, n := range sizes {
		r := runs
		if n >= 100000 {
			r = 3
		}
		loss, err := simulateLoss(rng, n, 0.6, 0.9, params, false, r)
		if err != nil {
			return err
		}
		fmt.Printf("%10d  %13.2f%%\n", n, loss*100)
	}
	fmt.Println("paper: <100 clients → low utility; flat beyond ~10^4")
	return nil
}

// Fig 5a: native vs inverse query accuracy across truthful-"Yes"
// fractions (s=0.9, p=0.9, q=0.6, 10,000 answers).
func runFig5a(fast bool) error {
	rng := rand.New(rand.NewSource(5))
	n, runs := 10000, 20
	if fast {
		n, runs = 2000, 5
	}
	params := rr.Params{P: 0.9, Q: 0.6}
	fmt.Printf("%10s  %14s  %14s\n", "yes frac", "native query", "inverse query")
	for _, yf := range []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9} {
		nat, err := simulateLoss(rng, n, yf, 0.9, params, false, runs)
		if err != nil {
			return err
		}
		inv, err := simulateLoss(rng, n, yf, 0.9, params, true, runs)
		if err != nil {
			return err
		}
		fmt.Printf("%9.0f%%  %13.2f%%  %13.2f%%\n", yf*100, nat*100, inv*100)
	}
	fmt.Println("paper: at 10% yes, native ≈2.5% vs inverse ≈0.4%; curves cross near 50–60%")
	return nil
}

// Fig 5c: differential privacy level vs sampling fraction, PrivApprox
// (sampled randomized response) against RAPPOR (f=0.5, h=1), under the
// paper's parameter mapping p = 1−f, q = 0.5.
func runFig5c(fast bool) error {
	const f = 0.5
	params := rr.Params{P: 1 - f, Q: 0.5}
	rapporEps, err := rappor.EpsilonOneTime(f, 1)
	if err != nil {
		return err
	}
	fmt.Printf("%6s  %12s  %12s\n", "s", "PrivApprox", "RAPPOR")
	for _, s := range []float64{0.1, 0.2, 0.4, 0.6, 0.8, 0.9, 1.0} {
		priv, err := rr.EpsilonDPSampled(s, params)
		if err != nil {
			return err
		}
		fmt.Printf("%5.0f%%  %12.4f  %12.4f\n", s*100, priv, rapporEps)
	}
	fmt.Println("paper: PrivApprox strictly below RAPPOR for s<1; equal at s=1")
	return nil
}
