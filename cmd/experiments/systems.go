package main

import (
	"fmt"
	"math/big"
	"math/rand"
	"runtime"
	"time"

	"privapprox/internal/aggregator"
	"privapprox/internal/answer"
	"privapprox/internal/baseline/splitx"
	"privapprox/internal/budget"
	"privapprox/internal/core"
	"privapprox/internal/cryptobench"
	"privapprox/internal/minisql"
	"privapprox/internal/netsim"
	"privapprox/internal/pubsub"
	"privapprox/internal/query"
	"privapprox/internal/rr"
	"privapprox/internal/workload"
	"privapprox/internal/xorcrypt"
)

// measureNs times fn over iters iterations and returns ns/op.
func measureNs(iters int, fn func() error) (float64, error) {
	start := time.Now()
	for i := 0; i < iters; i++ {
		if err := fn(); err != nil {
			return 0, err
		}
	}
	return float64(time.Since(start).Nanoseconds()) / float64(iters), nil
}

// Table 2: crypto operations per second, XOR vs RSA vs Goldwasser–
// Micali vs Paillier, 1024-bit keys, projected onto the paper's three
// device profiles.
func runTable2(fast bool) error {
	const keyBits = 1024
	msg := make([]byte, 18) // ≈144-bit answer message, as in the paper's setup
	for i := range msg {
		msg[i] = byte(i)
	}
	encIters, decIters := 200, 50
	if fast {
		encIters, decIters = 50, 10
	}

	// XOR split (2 proxies) and join.
	splitter, err := xorcrypt.NewSplitter(2, nil, nil)
	if err != nil {
		return err
	}
	// Scratch-reusing split/join: the steady-state hot path the
	// allocgate pins at 0 allocs/op.
	var scratch xorcrypt.SplitScratch
	var lastShares []xorcrypt.Share
	xorEnc, err := measureNs(encIters*50, func() error {
		sh, err := splitter.SplitInto(msg, &scratch)
		lastShares = sh
		return err
	})
	if err != nil {
		return err
	}
	var joinBuf []byte
	xorDec, err := measureNs(decIters*50, func() error {
		out, err := xorcrypt.JoinInto(joinBuf, lastShares)
		joinBuf = out
		return err
	})
	if err != nil {
		return err
	}

	// RSA.
	rsaC, err := cryptobench.NewRSACipher(keyBits, nil)
	if err != nil {
		return err
	}
	var rsaCT []byte
	rsaEnc, err := measureNs(encIters, func() error {
		ct, err := rsaC.Encrypt(msg)
		rsaCT = ct
		return err
	})
	if err != nil {
		return err
	}
	rsaDec, err := measureNs(decIters, func() error {
		_, err := rsaC.Decrypt(rsaCT)
		return err
	})
	if err != nil {
		return err
	}

	// Goldwasser–Micali: one answer message = 144 bit encryptions.
	gmKey, err := cryptobench.GenerateGMKey(keyBits, nil)
	if err != nil {
		return err
	}
	var gmCT []*big.Int
	gmEnc, err := measureNs(maxInt(encIters/10, 3), func() error {
		ct, err := gmKey.EncryptBits(msg, len(msg)*8, nil)
		gmCT = ct
		return err
	})
	if err != nil {
		return err
	}
	gmDec, err := measureNs(maxInt(decIters/10, 3), func() error {
		_, err := gmKey.DecryptBits(gmCT)
		return err
	})
	if err != nil {
		return err
	}

	// Paillier.
	pKey, err := cryptobench.GeneratePaillierKey(keyBits, nil)
	if err != nil {
		return err
	}
	m := new(big.Int).SetBytes(msg)
	var pCT *big.Int
	pEnc, err := measureNs(maxInt(encIters/10, 3), func() error {
		ct, err := pKey.Encrypt(m, nil)
		pCT = ct
		return err
	})
	if err != nil {
		return err
	}
	pDec, err := measureNs(maxInt(decIters/10, 3), func() error {
		_, err := pKey.Decrypt(pCT)
		return err
	})
	if err != nil {
		return err
	}

	fmt.Printf("%-12s", "scheme")
	for _, d := range cryptobench.Devices() {
		fmt.Printf("  %12s-enc %12s-dec", d.Name, d.Name)
	}
	fmt.Println()
	rows := []struct {
		name     string
		enc, dec float64
	}{
		{"RSA", rsaEnc, rsaDec},
		{"Goldwasser", gmEnc, gmDec},
		{"Paillier", pEnc, pDec},
		{"PrivApprox", xorEnc, xorDec},
	}
	for _, r := range rows {
		fmt.Printf("%-12s", r.name)
		for _, d := range cryptobench.Devices() {
			fmt.Printf("  %16.0f %16.0f", d.OpsPerSec(r.enc), d.OpsPerSec(r.dec))
		}
		fmt.Println()
	}
	fmt.Println("paper: XOR beats public-key schemes by 2–4 orders of magnitude")
	return nil
}

// Table 3: client-side throughput of the three answering sub-steps.
func runTable3(fast bool) error {
	iters := 2000
	if fast {
		iters = 300
	}
	// The client's per-epoch pipeline on the taxi workload.
	db := minisql.NewDB()
	rng := rand.New(rand.NewSource(7))
	if err := workload.PopulateTaxi(db, rng, 50, time.Unix(0, 0), time.Minute); err != nil {
		return err
	}
	stmt, err := minisql.Parse("SELECT distance FROM rides")
	if err != nil {
		return err
	}
	sel := stmt.(*minisql.SelectStmt)
	dbRead, err := measureNs(iters, func() error {
		_, err := db.QueryPrepared(sel)
		return err
	})
	if err != nil {
		return err
	}

	rz, err := rr.NewRandomizer(rr.Params{P: 0.9, Q: 0.6}, rng)
	if err != nil {
		return err
	}
	vec, err := answer.OneHot(11, 3)
	if err != nil {
		return err
	}
	rrNs, err := measureNs(iters*20, func() error {
		rz.RespondBits(vec.Bytes(), vec.Len())
		return nil
	})
	if err != nil {
		return err
	}

	splitter, err := xorcrypt.NewSplitter(2, nil, nil)
	if err != nil {
		return err
	}
	raw, err := (&answer.Message{QueryID: 1, Epoch: 0, Answer: vec}).MarshalBinary()
	if err != nil {
		return err
	}
	var scratch xorcrypt.SplitScratch
	xorNs, err := measureNs(iters*20, func() error {
		_, err := splitter.SplitInto(raw, &scratch)
		return err
	})
	if err != nil {
		return err
	}

	totalNs := dbRead + rrNs + xorNs
	fmt.Printf("%-22s", "step (ops/sec)")
	for _, d := range cryptobench.Devices() {
		fmt.Printf("%14s", d.Name)
	}
	fmt.Println()
	rows := []struct {
		name string
		ns   float64
	}{
		{"SQL read", dbRead},
		{"Randomized response", rrNs},
		{"XOR encryption", xorNs},
		{"Total", totalNs},
	}
	for _, r := range rows {
		fmt.Printf("%-22s", r.name)
		for _, d := range cryptobench.Devices() {
			fmt.Printf("%14.0f", d.OpsPerSec(r.ns))
		}
		fmt.Println()
	}
	fmt.Println("paper: the database read dominates the client pipeline")
	return nil
}

// Fig 5b: proxy throughput vs answer bit-vector size on a 3-node
// (3-partition) pub/sub cluster.
func runFig5b(fast bool) error {
	msgs := 20000
	if fast {
		msgs = 3000
	}
	fmt.Printf("%12s  %16s  %14s\n", "vector bits", "responses/sec", "msg bytes")
	for _, bits := range []int{100, 1000, 10000} {
		broker := pubsub.NewBroker()
		if err := broker.CreateTopic("answer", 3); err != nil {
			return err
		}
		payload := make([]byte, answer.EncodedLen(bits))
		key := make([]byte, 16)
		start := time.Now()
		for i := 0; i < msgs; i++ {
			key[0], key[1], key[2] = byte(i), byte(i>>8), byte(i>>16)
			if _, _, err := broker.Publish("answer", key, payload); err != nil {
				return err
			}
		}
		consumed := 0
		for p := 0; p < 3; p++ {
			off := int64(0)
			for {
				recs, err := broker.Fetch("answer", p, off, 8192)
				if err != nil {
					return err
				}
				if len(recs) == 0 {
					break
				}
				off += int64(len(recs))
				consumed += len(recs)
			}
		}
		elapsed := time.Since(start)
		if consumed != msgs {
			return fmt.Errorf("lost messages: %d of %d", consumed, msgs)
		}
		rate := float64(msgs) / elapsed.Seconds()
		fmt.Printf("%12d  %16.0f  %14d\n", bits, rate, len(payload))
	}
	fmt.Println("paper: throughput inversely proportional to vector size")
	return nil
}

// Fig 6: proxy latency vs number of clients — SplitX's synchronized
// pipeline against PrivApprox's forward-only proxies, measured on the
// shared substrate and extrapolated linearly to the paper's range.
func runFig6(fast bool) error {
	base := 20000
	if fast {
		base = 4000
	}
	pa, err := splitx.RunPrivApprox(base, 32)
	if err != nil {
		return err
	}
	sx, err := splitx.RunSplitX(base, 32, rand.New(rand.NewSource(9)))
	if err != nil {
		return err
	}
	fmt.Printf("measured at n=%d: PrivApprox=%v, SplitX=%v (tx=%v comp=%v shuf=%v)\n",
		base, pa, sx.Total, sx.Transmission, sx.Computation, sx.Shuffling)
	fmt.Printf("%10s  %14s  %14s  %14s  %14s  %14s  %8s\n",
		"clients", "PrivApprox", "SplitX", "SplitX-tx", "SplitX-comp", "SplitX-shuf", "speedup")
	for _, n := range []int{100, 1000, 10000, 100000, 1000000, 10000000, 100000000} {
		paN := splitx.Extrapolate(pa, base, n)
		sxN := splitx.Extrapolate(sx.Total, base, n)
		txN := splitx.Extrapolate(sx.Transmission, base, n)
		cpN := splitx.Extrapolate(sx.Computation, base, n)
		shN := splitx.Extrapolate(sx.Shuffling, base, n)
		fmt.Printf("%10d  %14v  %14v  %14v  %14v  %14v  %7.2fx\n",
			n, paN.Round(time.Microsecond), sxN.Round(time.Microsecond),
			txN.Round(time.Microsecond), cpN.Round(time.Microsecond), shN.Round(time.Microsecond),
			float64(sxN)/float64(paN))
	}
	fmt.Println("paper: 6.48x speedup at 10^6 clients; SplitX dominated by sync phases")
	return nil
}

// Fig 8: proxy and aggregator throughput, scale-up on real cores and
// scale-out via the calibrated cluster model, for both case-study
// message sizes.
func runFig8(fast bool) error {
	msgs := 30000
	if fast {
		msgs = 5000
	}
	workloads := []struct {
		name string
		bits int
	}{
		{"NYC Taxi", 11},
		{"Electricity", 6},
	}
	maxCores := runtime.GOMAXPROCS(0)
	for _, w := range workloads {
		// Proxy: parallel publishers on one broker.
		perCore, err := measureProxyRate(msgs, w.bits, 1)
		if err != nil {
			return err
		}
		model, err := netsim.Calibrate(perCore, 8)
		if err != nil {
			return err
		}
		fmt.Printf("[%s] proxy scale-up (responses/sec):\n", w.name)
		for _, cores := range []int{2, 4, 6, 8} {
			var rate float64
			if cores <= maxCores {
				rate, err = measureProxyRate(msgs, w.bits, cores)
				if err != nil {
					return err
				}
			} else {
				rate, err = model.ScaleUp(cores)
				if err != nil {
					return err
				}
			}
			fmt.Printf("  %d cores: %.0f\n", cores, rate)
		}
		fmt.Printf("[%s] proxy scale-out (modeled, 8-core nodes):\n", w.name)
		for _, nodes := range []int{1, 2, 3, 4} {
			rate, err := model.ScaleOut(nodes)
			if err != nil {
				return err
			}
			fmt.Printf("  %d nodes: %.0f\n", nodes, rate)
		}

		// Aggregator: join + decrypt + accumulate per answer.
		aggPerCore, err := measureAggregatorRate(msgs/2, w.bits)
		if err != nil {
			return err
		}
		aggModel, err := netsim.Calibrate(aggPerCore, 8)
		if err != nil {
			return err
		}
		fmt.Printf("[%s] aggregator scale-out (modeled, 8-core nodes):\n", w.name)
		for _, nodes := range []int{1, 5, 10, 15, 20} {
			rate, err := aggModel.ScaleOut(nodes)
			if err != nil {
				return err
			}
			fmt.Printf("  %d nodes: %.0f\n", nodes, rate)
		}
	}
	fmt.Println("paper: proxies scale near-linearly; aggregator lower (join-bound)")
	return nil
}

func measureProxyRate(msgs, bits, workers int) (float64, error) {
	broker := pubsub.NewBroker()
	if err := broker.CreateTopic("answer", maxInt(workers, 1)); err != nil {
		return 0, err
	}
	payload := make([]byte, answer.EncodedLen(bits))
	errc := make(chan error, workers)
	start := time.Now()
	per := msgs / workers
	for w := 0; w < workers; w++ {
		go func(w int) {
			key := make([]byte, 16)
			for i := 0; i < per; i++ {
				key[0], key[1], key[2] = byte(w), byte(i), byte(i>>8)
				if _, _, err := broker.Publish("answer", key, payload); err != nil {
					errc <- err
					return
				}
			}
			errc <- nil
		}(w)
	}
	for w := 0; w < workers; w++ {
		if err := <-errc; err != nil {
			return 0, err
		}
	}
	elapsed := time.Since(start)
	return float64(per*workers) / elapsed.Seconds(), nil
}

func measureAggregatorRate(msgs, bits int) (float64, error) {
	// The real aggregator path per answer: two ShareJoiner map
	// operations (the join of the key and answer streams), XOR
	// decryption, message decoding, and window accumulation — the paper
	// attributes the aggregator's lower throughput to this join.
	q, err := workload.TaxiQuery("bench", 1, time.Second, time.Hour, time.Hour)
	if err != nil {
		return 0, err
	}
	if bits != len(q.Buckets) {
		buckets, err := query.UniformRanges(0, float64(bits), bits, false)
		if err != nil {
			return 0, err
		}
		q.Buckets = buckets
	}
	agg, err := aggregator.New(aggregator.Config{
		Query:      q,
		Params:     budget.Params{S: 1, RR: rr.Params{P: 0.9, Q: 0.6}},
		Population: msgs,
		Proxies:    2,
		Origin:     time.Unix(0, 0),
		Seed:       1,
	})
	if err != nil {
		return 0, err
	}
	splitter, err := xorcrypt.NewSplitter(2, nil, nil)
	if err != nil {
		return 0, err
	}
	vec, err := answer.OneHot(len(q.Buckets), 0)
	if err != nil {
		return 0, err
	}
	raw, err := (&answer.Message{QueryID: q.QID.Uint64(), Epoch: 0, Answer: vec}).MarshalBinary()
	if err != nil {
		return 0, err
	}
	shares := make([][]xorcrypt.Share, msgs)
	for i := range shares {
		sh, err := splitter.Split(raw)
		if err != nil {
			return 0, err
		}
		shares[i] = sh
	}
	now := time.Now()
	start := time.Now()
	for _, sh := range shares {
		for src, s := range sh {
			if _, err := agg.SubmitShare(s, src, now); err != nil {
				return 0, err
			}
		}
	}
	elapsed := time.Since(start)
	if agg.Decoded() != int64(msgs) {
		return 0, fmt.Errorf("fig8: decoded %d of %d", agg.Decoded(), msgs)
	}
	return float64(msgs) / elapsed.Seconds(), nil
}

// Pipeline: end-to-end epoch throughput of the parallel pipeline
// (worker-pool clients → proxies → parallel drain → sharded
// aggregator), swept over workers × shards. The workers=1/shards=1 row
// is the sequential baseline; under a fixed seed every row produces
// identical results, so the sweep isolates pure scheduling/locking
// cost.
func runPipeline(fast bool) error {
	clients := 2000
	epochs := 6
	if fast {
		clients = 500
		epochs = 3
	}
	q, err := workload.TaxiQuery("pipeline", 1, time.Second, 2*time.Second, 2*time.Second)
	if err != nil {
		return err
	}
	params := budget.Params{S: 1, RR: rr.Params{P: 0.9, Q: 0.6}}
	maxProcs := runtime.GOMAXPROCS(0)
	sweep := [][2]int{{1, 1}, {2, 2}, {4, 4}, {maxProcs, 1}, {1, maxProcs}, {maxProcs, maxProcs}}
	var baseline float64
	fmt.Printf("%8s  %8s  %16s  %10s\n", "workers", "shards", "answers/sec", "speedup")
	seen := map[[2]int]bool{}
	for _, knobs := range sweep {
		if seen[knobs] {
			continue
		}
		seen[knobs] = true
		workers, shards := knobs[0], knobs[1]
		sys, err := core.New(core.Config{
			Clients: clients,
			Query:   q,
			Params:  &params,
			Seed:    12,
			Workers: workers,
			Shards:  shards,
			Populate: func(i int, db *minisql.DB) error {
				rng := rand.New(rand.NewSource(int64(i)))
				return workload.PopulateTaxi(db, rng, 2, time.Unix(0, 0), time.Minute)
			},
		})
		if err != nil {
			return err
		}
		start := time.Now()
		for e := 0; e < epochs; e++ {
			if _, _, err := sys.RunEpoch(); err != nil {
				sys.Close()
				return err
			}
		}
		elapsed := time.Since(start)
		sys.Close()
		rate := float64(clients*epochs) / elapsed.Seconds()
		if baseline == 0 {
			baseline = rate
		}
		fmt.Printf("%8d  %8d  %16.0f  %9.2fx\n", workers, shards, rate, rate/baseline)
	}
	fmt.Println("expected: workers=GOMAXPROCS ≥ 2x over the sequential row on multi-core hosts")
	return nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
