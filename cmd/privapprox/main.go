// Command privapprox runs a complete in-process PrivApprox deployment
// from the command line: synthetic clients with private data, a proxy
// fleet, and the aggregator, printing per-window query results with
// confidence intervals.
//
// Usage:
//
//	privapprox -clients 2000 -epochs 8 -epsilon 2.0 -workload taxi
//	privapprox -clients 500 -s 0.6 -p 0.9 -q 0.6 -workload electricity
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"time"

	"privapprox"
)

func main() {
	var (
		clients  = flag.Int("clients", 1000, "number of simulated client devices")
		proxies  = flag.Int("proxies", 2, "XOR share fan-out (≥2 non-colluding proxies)")
		epochs   = flag.Int("epochs", 8, "answer epochs to run")
		window   = flag.Int("window", 4, "sliding window length in epochs")
		slide    = flag.Int("slide", 2, "slide interval in epochs")
		epsilon  = flag.Float64("epsilon", 2.0, "zero-knowledge privacy budget ε_zk (budget mode)")
		sFlag    = flag.Float64("s", 0, "sampling fraction (pins parameters, bypassing the budget)")
		pFlag    = flag.Float64("p", 0.9, "first randomization coin (with -s)")
		qFlag    = flag.Float64("q", 0.6, "second randomization coin")
		wl       = flag.String("workload", "taxi", "workload: taxi or electricity")
		seed     = flag.Int64("seed", 1, "deterministic run seed")
		feedback = flag.Bool("feedback", false, "enable the adaptive budget controller")
		workers  = flag.Int("workers", 0, "concurrent answering clients per epoch (0 = GOMAXPROCS)")
		shards   = flag.Int("shards", 0, "aggregator lock shards (0 = GOMAXPROCS)")
	)
	flag.Parse()

	freq := time.Second
	var q *privapprox.Query
	var populate func(int, *privapprox.DB) error
	var err error
	switch *wl {
	case "taxi":
		q, err = privapprox.TaxiQuery("cli-analyst", 1, freq,
			time.Duration(*window)*freq, time.Duration(*slide)*freq)
		populate = func(i int, db *privapprox.DB) error {
			rng := rand.New(rand.NewSource(*seed + int64(i)))
			return privapprox.PopulateTaxi(db, rng, 3, time.Unix(0, 0), time.Minute)
		}
	case "electricity":
		q, err = privapprox.ElectricityQuery("cli-analyst", 1, freq,
			time.Duration(*window)*freq, time.Duration(*slide)*freq)
		populate = func(i int, db *privapprox.DB) error {
			rng := rand.New(rand.NewSource(*seed + int64(i)))
			return privapprox.PopulateElectricity(db, rng, 3, time.Unix(0, 0))
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown workload %q\n", *wl)
		os.Exit(2)
	}
	if err != nil {
		log.Fatal(err)
	}

	cfg := privapprox.SystemConfig{
		Clients:  *clients,
		Proxies:  *proxies,
		Query:    q,
		Seed:     *seed,
		Populate: populate,
		Workers:  *workers,
		Shards:   *shards,
	}
	if *sFlag > 0 {
		cfg.Params = &privapprox.Params{S: *sFlag, RR: privapprox.RRParams{P: *pFlag, Q: *qFlag}}
	} else {
		cfg.Budget = &privapprox.Budget{EpsilonZK: *epsilon, Q: *qFlag}
	}
	sys, err := privapprox.NewSystem(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	params := sys.Params()
	ezk, err := params.EpsilonZK()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("PrivApprox: %d clients, %d proxies | s=%.3f p=%.2f q=%.2f | ε_zk=%.3f\n",
		*clients, *proxies, params.S, params.RR.P, params.RR.Q, ezk)
	if *feedback {
		if err := sys.EnableFeedback(0.05, 0.05, 0.95); err != nil {
			log.Fatal(err)
		}
		fmt.Println("adaptive feedback: target 5% relative width")
	}

	start := time.Now()
	totalParticipants := 0
	for epoch := 0; epoch < *epochs; epoch++ {
		results, participants, err := sys.RunEpoch()
		if err != nil {
			log.Fatal(err)
		}
		totalParticipants += participants
		late, err := sys.AdvanceTo(uint64(epoch))
		if err != nil {
			log.Fatal(err)
		}
		results = append(results, late...)
		for _, res := range results {
			printResult(res)
			if *feedback {
				next, err := sys.Feedback(res)
				if err != nil {
					log.Fatal(err)
				}
				if next.S != params.S {
					fmt.Printf("  feedback: s re-tuned to %.3f\n", next.S)
					params = next
				}
			}
		}
	}
	final, err := sys.Flush()
	if err != nil {
		log.Fatal(err)
	}
	for _, res := range final {
		printResult(res)
	}

	st := sys.Fleet().TotalStats()
	fmt.Printf("\nrun: %d epochs in %v | %d participations | proxies carried %d msgs, %.1f KB\n",
		*epochs, time.Since(start).Round(time.Millisecond), totalParticipants,
		st.MessagesIn, float64(st.BytesIn)/1024)
	fmt.Printf("aggregator: %d decoded, %d malformed, %d duplicate shares\n",
		sys.Aggregator().Decoded(), sys.Aggregator().Malformed(), sys.Aggregator().Duplicates())
}

func printResult(res privapprox.Result) {
	fmt.Printf("window [%s → %s): %d answers\n",
		res.Window.Start.Format("15:04:05"), res.Window.End.Format("15:04:05"), res.Responses)
	for _, b := range res.Buckets {
		fmt.Printf("  %-12s %10.1f  ± %.1f\n", b.Label, b.Estimate.Estimate, b.Estimate.Margin)
	}
}
