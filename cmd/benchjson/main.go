// Command benchjson converts `go test -bench -benchmem` output on stdin
// into a JSON benchmark record, so perf numbers land in a
// machine-readable file (BENCH_hotpath.json) instead of scrollback:
//
//	go test -run '^$' -bench 'Fig8|CryptoXOR' -benchmem . | benchjson -out BENCH_hotpath.json
//
// Each benchmark line becomes one entry with ns/op, B/op, allocs/op and
// any extra ReportMetric columns; context lines (goos, cpu, …) are kept
// as metadata. Every report is additionally stamped with the git
// commit, conversion date, GOMAXPROCS, and CPU model, so a BENCH_*.json
// compared across PRs says which code and which machine produced it.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Entry is one benchmark result line.
type Entry struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  *float64           `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64           `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Report is the whole converted run.
type Report struct {
	Context    map[string]string `json:"context,omitempty"`
	Benchmarks []Entry           `json:"benchmarks"`
}

func main() {
	out := flag.String("out", "", "output file (default stdout)")
	flag.Parse()

	report := Report{Context: map[string]string{}}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "" || line == "PASS" || strings.HasPrefix(line, "ok "):
			continue
		case strings.HasPrefix(line, "Benchmark"):
			if e, ok := parseBench(line); ok {
				report.Benchmarks = append(report.Benchmarks, e)
			}
		default:
			if k, v, ok := strings.Cut(line, ":"); ok {
				report.Context[strings.TrimSpace(k)] = strings.TrimSpace(v)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: read:", err)
		os.Exit(1)
	}
	stamp(report.Context)

	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if *out == "" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: write:", err)
		os.Exit(1)
	}
}

// parseBench parses one result line, e.g.
//
//	BenchmarkFoo/sub-8  123456  987.6 ns/op  16 B/op  2 allocs/op  42 widgets
func parseBench(line string) (Entry, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Entry{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Entry{}, false
	}
	e := Entry{Name: fields[0], Iterations: iters}
	// The remainder alternates value, unit.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Entry{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			e.NsPerOp = v
		case "B/op":
			e.BytesPerOp = ptr(v)
		case "allocs/op":
			e.AllocsPerOp = ptr(v)
		default:
			if e.Metrics == nil {
				e.Metrics = map[string]float64{}
			}
			e.Metrics[unit] = v
		}
	}
	return e, true
}

func ptr(v float64) *float64 { return &v }

// stamp adds provenance to the report context: conversion date, the
// git commit the numbers were measured at (with a -dirty marker when
// the tree had uncommitted changes), GOMAXPROCS, and the CPU model.
// The bench output's own "cpu:" context line wins when present; the
// /proc/cpuinfo fallback covers reports piped through filters that
// drop it. Stamps never overwrite keys parsed from the input.
func stamp(ctx map[string]string) {
	ctx["date"] = time.Now().UTC().Format(time.RFC3339)
	ctx["gomaxprocs"] = strconv.Itoa(runtime.GOMAXPROCS(0))
	if out, err := exec.Command("git", "rev-parse", "--short=12", "HEAD").Output(); err == nil {
		commit := strings.TrimSpace(string(out))
		if st, err := exec.Command("git", "status", "--porcelain").Output(); err == nil && len(strings.TrimSpace(string(st))) > 0 {
			commit += "-dirty"
		}
		ctx["git_commit"] = commit
	}
	if _, ok := ctx["cpu"]; !ok {
		if model := cpuModel(); model != "" {
			ctx["cpu"] = model
		}
	}
}

// cpuModel reads the first "model name" line from /proc/cpuinfo;
// empty on platforms without it.
func cpuModel() string {
	data, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(data), "\n") {
		if k, v, ok := strings.Cut(line, ":"); ok && strings.TrimSpace(k) == "model name" {
			return strings.TrimSpace(v)
		}
	}
	return ""
}
