package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os/exec"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"privapprox/internal/telemetry/lineage"
)

// TestObsGate is the observability gate (`make obsgate`): it runs the
// networked deployment with -metrics-addr enabled, scrapes /metrics
// off a live proxy between client epochs and off the aggregator
// mid-drain, and asserts (a) the core instrument set is present in
// Prometheus text format, (b) traffic counters are monotonic across
// epochs, (c) the expvar mirror at /debug/vars serves the same
// registry as JSON, (d) /readyz on the lingering submit role reports
// caught-up control sinks, and (e) the aggregator's
// /debug/privapprox/windows page serves result cards whose fields
// match the known s=1 workload.
func TestObsGate(t *testing.T) {
	if testing.Short() {
		t.Skip("obsgate skipped in -short mode")
	}
	bin := buildNode(t)

	// Nine epochs so the first 4s window fires *during* the drain (the
	// watermark needs event time 8s before [0,4s) closes): the windows
	// page then has a live card to validate while the aggregator holds.
	const (
		clients = 4
		epochs  = 9
	)
	addr0, metrics0, stop0 := startProxyWithMetrics(t, bin, 0, "-partitions=4")
	defer stop0()
	addr1, stop1 := startProxy(t, bin, 1, "-partitions=4")
	defer stop1()
	proxies := "-proxies=" + addr0 + "," + addr1

	// The submit role lingers with its metrics mux up: once the
	// announcement lands, its control sinks are caught up and /readyz
	// must flip to 200.
	submitMetrics, stopSubmit := startSubmitLingering(t, bin, proxies, "-queries=1")
	defer stopSubmit()
	readyz := strings.Replace(submitMetrics, "/metrics", "/readyz", 1)
	if body := getOK(t, readyz); body != "ready\n" {
		t.Errorf("submit /readyz body = %q, want %q", body, "ready\n")
	}

	// Epoch 0, scrape, epochs 1..8 (resumed via -first-epoch), scrape
	// again: the two snapshots bracket eight epochs of traffic.
	runClientEpoch := func(first, upto int) {
		t.Helper()
		out, err := exec.Command(bin, "client", proxies, "-seed=42", "-queries=1",
			"-offset=0", fmt.Sprintf("-n=%d", clients),
			fmt.Sprintf("-first-epoch=%d", first), fmt.Sprintf("-epochs=%d", upto),
			"-conns=2").CombinedOutput()
		if err != nil {
			t.Fatalf("client process (epochs %d..%d): %v\n%s", first, upto, err, out)
		}
	}
	runClientEpoch(0, 1)
	scrape1 := scrapeMetrics(t, metrics0)
	runClientEpoch(1, epochs)
	scrape2 := scrapeMetrics(t, metrics0)

	// Every role's mux serves liveness.
	if body := getOK(t, strings.Replace(metrics0, "/metrics", "/healthz", 1)); body != "ok\n" {
		t.Errorf("proxy /healthz body = %q, want %q", body, "ok\n")
	}

	// Core proxy instrument set: broker traffic counters, backlog
	// gauges, and the publish-latency histogram series.
	for _, name := range []string{
		"privapprox_broker_messages_in_total",
		"privapprox_broker_bytes_in_total",
		"privapprox_broker_messages_out_total",
		"privapprox_broker_rejected_total",
		"privapprox_broker_duplicates_total",
		"privapprox_broker_backlog",
		"privapprox_publish_ns_bucket",
		"privapprox_publish_ns_count",
		"privapprox_publish_ns_sum",
	} {
		if !hasMetric(scrape2, name) {
			t.Errorf("proxy /metrics missing %s:\n%s", name, scrape2)
		}
	}

	// Monotonicity across the two epochs: each client epoch publishes
	// clients shares to this proxy, so the ingest counters must strictly
	// grow between the snapshots.
	for _, name := range []string{
		"privapprox_broker_messages_in_total",
		"privapprox_broker_bytes_in_total",
		"privapprox_publish_ns_count",
	} {
		v1 := metricValue(t, scrape1, name)
		v2 := metricValue(t, scrape2, name)
		if !(v2 > v1) {
			t.Errorf("%s not monotonic across epochs: %v then %v", name, v1, v2)
		}
	}

	// The expvar mirror serves the same registry as JSON: a flat
	// series→value map under the "privapprox" key.
	var vars struct {
		Privapprox map[string]float64 `json:"privapprox"`
	}
	varsURL := strings.Replace(metrics0, "/metrics", "/debug/vars", 1)
	resp, err := http.Get(varsURL)
	if err != nil {
		t.Fatalf("GET %s: %v", varsURL, err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err := json.Unmarshal(body, &vars); err != nil {
		t.Fatalf("/debug/vars is not JSON: %v\n%s", err, body)
	}
	if _, ok := vars.Privapprox["privapprox_broker_messages_in_total"]; !ok {
		t.Errorf("/debug/vars missing privapprox_broker_messages_in_total:\n%s", body)
	}

	// Aggregator leg: durable mode with the -hold-after testing hook, so
	// after decoding every expected answer the process checkpoints and
	// parks with its metrics listener still up — a stable scrape window.
	// The stage totals prove the tracer saw the join stage, the WAL
	// histogram proves checkpoint appends were timed, and the decode
	// counter must reach the exact expected count at s=1.
	aggScrape, aggMetricsURL, stopAgg := runAggregatorScraping(t, bin, proxies, clients, epochs)
	defer stopAgg()
	for _, name := range []string{
		"privapprox_agg_decoded_total",
		"privapprox_agg_duplicates_total",
		"privapprox_agg_queries",
		"privapprox_stage_busy_ns_total",
		"privapprox_stage_events_total",
		"privapprox_query_decoded_total",
		"privapprox_wal_append_ns_count",
		"privapprox_lineage_stamps_total",
		"privapprox_window_cards_emitted_total",
		"privapprox_window_e2e_ns_count",
		"privapprox_window_ci_width",
		"privapprox_window_realized_fraction",
	} {
		if !hasMetric(aggScrape, name) {
			t.Errorf("aggregator /metrics missing %s:\n%s", name, aggScrape)
		}
	}
	if got := metricValue(t, aggScrape, "privapprox_agg_decoded_total"); got != float64(clients*epochs) {
		t.Errorf("privapprox_agg_decoded_total = %v, want %d", got, clients*epochs)
	}
	if got := metricValue(t, aggScrape, "privapprox_wal_append_ns_count"); !(got > 0) {
		t.Errorf("privapprox_wal_append_ns_count = %v, want > 0 (checkpoint appends)", got)
	}
	// One stamp per client-process flush reached the lineage fold.
	if got := metricValue(t, aggScrape, "privapprox_lineage_stamps_total"); got != float64(epochs) {
		t.Errorf("privapprox_lineage_stamps_total = %v, want %d (one per epoch flush)", got, epochs)
	}

	// The windows debug page: the card fired mid-drain, with its fields
	// pinned by the known workload — s=1, full participation, no drops,
	// and a stamp-anchored end-to-end latency.
	if body := getOK(t, strings.Replace(aggMetricsURL, "/metrics", "/healthz", 1)); body != "ok\n" {
		t.Errorf("aggregator /healthz body = %q, want %q", body, "ok\n")
	}
	windowsURL := strings.Replace(aggMetricsURL, "/metrics", "/debug/privapprox/windows", 1)
	var page struct {
		Emitted    int64          `json:"emitted"`
		Suppressed int64          `json:"suppressed"`
		Stamps     int64          `json:"stamps"`
		Cards      []lineage.Card `json:"cards"`
	}
	if err := json.Unmarshal([]byte(getOK(t, windowsURL)), &page); err != nil {
		t.Fatalf("windows page is not JSON: %v", err)
	}
	if page.Emitted < 1 || len(page.Cards) < 1 {
		t.Fatalf("windows page has no cards: %+v", page)
	}
	if page.Stamps != int64(epochs) {
		t.Errorf("windows page stamps = %d, want %d", page.Stamps, epochs)
	}
	c := page.Cards[0]
	// Window [0,4s) covers epochs 0..3 of the whole population, so its
	// population is pinned at clients×4. Its response count is not: the
	// window fires the instant the watermark reaches 4s, and partition
	// drain order decides how many of those answers had joined by then —
	// so require internal consistency (realized = responses/population,
	// and the Prometheus gauge agreeing with the card) rather than full
	// participation, which only the Flush-fired lineage gate pins.
	wantPopulation := clients * 4
	switch {
	case c.Query != "node-analyst:1":
		t.Errorf("card query = %q, want node-analyst:1", c.Query)
	case c.WindowEnd-c.WindowStart != int64(4*time.Second):
		t.Errorf("card window width = %d, want 4s", c.WindowEnd-c.WindowStart)
	case c.EpochFirst != 0 || c.EpochLast != 3:
		t.Errorf("card epochs = [%d,%d], want [0,3]", c.EpochFirst, c.EpochLast)
	case c.Population != wantPopulation:
		t.Errorf("card population = %d, want %d", c.Population, wantPopulation)
	case c.Responses < 1 || c.Responses > wantPopulation:
		t.Errorf("card responses = %d, want 1..%d", c.Responses, wantPopulation)
	case c.Fraction != 1 || c.Shed != 1:
		t.Errorf("card fraction/shed = %v/%v, want 1/1", c.Fraction, c.Shed)
	case float64(c.Realized) != float64(c.Responses)/float64(c.Population):
		t.Errorf("card realized = %v, want responses/population = %d/%d", c.Realized, c.Responses, c.Population)
	case c.Late != 0 || c.Duplicates != 0 || c.Malformed != 0:
		t.Errorf("card drop counters = %d/%d/%d, want 0/0/0", c.Late, c.Duplicates, c.Malformed)
	case c.Stamps < 4:
		t.Errorf("card stamps = %d, want ≥ 4 (one per feeding epoch)", c.Stamps)
	case c.E2ENs <= 0:
		t.Errorf("card e2e_ns = %d, want > 0 (stamp-anchored latency)", c.E2ENs)
	case !(c.CIWidth > 0):
		t.Errorf("card ci_width = %v, want > 0", c.CIWidth)
	}
	if got := metricValue(t, aggScrape, "privapprox_window_realized_fraction"); got != float64(c.Realized) {
		t.Errorf("privapprox_window_realized_fraction = %v, want %v (the fired card's realized)", got, c.Realized)
	}
}

// startSubmitLingering runs the submit role with -linger and a metrics
// mux, returning its metrics URL once the announcement has landed.
func startSubmitLingering(t *testing.T, bin, proxies, queriesFlag string) (metricsURL string, stop func()) {
	t.Helper()
	cmd := exec.Command(bin, "submit", proxies, queriesFlag, "-s=1",
		"-metrics-addr=127.0.0.1:0", "-linger=60s")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = cmd.Stdout
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	stop = func() {
		cmd.Process.Kill()
		cmd.Wait()
	}
	urls := make(chan string, 1)
	announced := make(chan struct{})
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			if strings.HasPrefix(line, "metrics on ") {
				urls <- strings.TrimSpace(strings.TrimPrefix(line, "metrics on "))
			}
			if strings.HasPrefix(line, "announced ") {
				close(announced)
			}
		}
	}()
	select {
	case metricsURL = <-urls:
	case <-time.After(10 * time.Second):
		stop()
		t.Fatal("submit never announced its metrics address")
	}
	select {
	case <-announced:
	case <-time.After(10 * time.Second):
		stop()
		t.Fatal("submit never announced its query set")
	}
	return metricsURL, stop
}

// startProxyWithMetrics is startProxy plus -metrics-addr: it parses
// both banner lines (serving address, then metrics URL).
func startProxyWithMetrics(t *testing.T, bin string, index int, extra ...string) (addr, metricsURL string, stop func()) {
	t.Helper()
	args := append([]string{"proxy", "-listen=127.0.0.1:0",
		fmt.Sprintf("-index=%d", index), "-metrics-addr=127.0.0.1:0"}, extra...)
	cmd := exec.Command(bin, args...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = cmd.Stdout
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	lines := make(chan string, 2)
	go func() {
		r := bufio.NewReader(stdout)
		for i := 0; i < 2; i++ {
			line, err := r.ReadString('\n')
			if err != nil {
				return
			}
			lines <- line
		}
		io.Copy(io.Discard, r)
	}()
	deadline := time.After(10 * time.Second)
	for addr == "" || metricsURL == "" {
		select {
		case line := <-lines:
			switch {
			case strings.HasPrefix(line, "metrics on "):
				metricsURL = strings.TrimSpace(strings.TrimPrefix(line, "metrics on "))
			case strings.Contains(line, " serving "):
				i := strings.LastIndex(line, " on ")
				if i < 0 {
					t.Fatalf("unexpected proxy banner: %q", line)
				}
				addr = strings.TrimSpace(line[i+4:])
			}
		case <-deadline:
			cmd.Process.Kill()
			t.Fatalf("proxy %d never announced serving + metrics addresses", index)
		}
	}
	return addr, metricsURL, func() {
		cmd.Process.Kill()
		cmd.Wait()
	}
}

// runAggregatorScraping starts the aggregator role with a metrics
// listener in durable mode with -hold-after, polls its /metrics until
// every expected answer is decoded (the hold keeps the process — and
// its listener — alive indefinitely), and returns the last scrape plus
// the metrics URL (for the debug endpoints on the same mux).
func runAggregatorScraping(t *testing.T, bin, proxies string, clients, epochs int) (string, string, func()) {
	t.Helper()
	cmd := exec.Command(bin, "aggregator", proxies, "-seed=42", "-queries=1",
		fmt.Sprintf("-clients=%d", clients), fmt.Sprintf("-epochs=%d", epochs),
		"-conns=2", "-idle=10s", "-metrics-addr=127.0.0.1:0",
		"-data-dir="+t.TempDir(), fmt.Sprintf("-hold-after=%d", clients*epochs))
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = cmd.Stdout
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	stop := func() {
		cmd.Process.Kill()
		cmd.Wait()
	}

	urls := make(chan string, 1)
	var outMu sync.Mutex
	var outBuf strings.Builder
	go func() {
		scanner := bufio.NewScanner(stdout)
		for scanner.Scan() {
			line := scanner.Text()
			outMu.Lock()
			outBuf.WriteString(line)
			outBuf.WriteByte('\n')
			outMu.Unlock()
			if strings.HasPrefix(line, "metrics on ") {
				urls <- strings.TrimSpace(strings.TrimPrefix(line, "metrics on "))
			}
			// keep draining so the process never blocks on stdout
		}
	}()
	var metricsURL string
	select {
	case metricsURL = <-urls:
	case <-time.After(15 * time.Second):
		stop()
		t.Fatal("aggregator never announced its metrics address")
	}

	expected := float64(clients * epochs)
	deadline := time.Now().Add(20 * time.Second)
	var last string
	for time.Now().Before(deadline) {
		resp, err := http.Get(metricsURL)
		if err == nil {
			body, rerr := io.ReadAll(resp.Body)
			resp.Body.Close()
			if rerr == nil {
				last = string(body)
				if v, ok := lookupMetric(last, "privapprox_agg_decoded_total"); ok && v >= expected {
					return last, metricsURL, stop
				}
			}
		}
		time.Sleep(100 * time.Millisecond)
	}
	outMu.Lock()
	stdoutSoFar := outBuf.String()
	outMu.Unlock()
	stop()
	t.Fatalf("aggregator never decoded %v answers; stdout:\n%s\nlast scrape:\n%s",
		expected, stdoutSoFar, last)
	return "", "", nil
}

// scrapeMetrics GETs a /metrics URL and returns the body.
func scrapeMetrics(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Errorf("GET %s: content type %q", url, ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// hasMetric reports whether a non-comment sample line for name exists.
func hasMetric(body, name string) bool {
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, name) && (len(line) == len(name) ||
			line[len(name)] == ' ' || line[len(name)] == '{') {
			return true
		}
	}
	return false
}

// lookupMetric returns the value of the first sample line for name
// (exact name match, any labels).
func lookupMetric(body, name string) (float64, bool) {
	for _, line := range strings.Split(body, "\n") {
		if !strings.HasPrefix(line, name) {
			continue
		}
		rest := line[len(name):]
		if rest == "" || (rest[0] != ' ' && rest[0] != '{') {
			continue
		}
		fields := strings.Fields(line)
		v, err := strconv.ParseFloat(fields[len(fields)-1], 64)
		if err != nil {
			return 0, false
		}
		return v, true
	}
	return 0, false
}

// metricValue is lookupMetric that fails the test when absent.
func metricValue(t *testing.T, body, name string) float64 {
	t.Helper()
	v, ok := lookupMetric(body, name)
	if !ok {
		t.Fatalf("metric %s not found in scrape:\n%s", name, body)
	}
	return v
}
