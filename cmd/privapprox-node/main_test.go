package main

import (
	"bufio"
	"fmt"
	"io"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"privapprox/internal/aggregator"
	"privapprox/internal/core"
	"privapprox/internal/minisql"
)

// TestMultiProcessSmoke spawns the real networked deployment on
// loopback — two proxy processes, a submit step announcing the query
// set over the control topics, two client processes that pick the
// queries up dynamically, one aggregator process that builds its demux
// state from the same announcements — and asserts the aggregator's
// results are byte-identical to an in-process core.System multi-query
// run under the same seed conventions. This is the Fig. 3 deployment
// shape driven end to end through the query control plane.
func TestMultiProcessSmoke(t *testing.T) {
	runSmokeTest(t, 1)
}

// TestMultiProcessMultiQuerySmoke is the same deployment with two
// concurrent queries sharing the fleet — the networked half of the
// multi-query determinism gate (the in-process half, multi vs solo, is
// TestMultiQueryMatchesSolo in internal/core).
func TestMultiProcessMultiQuerySmoke(t *testing.T) {
	runSmokeTest(t, 2)
}

func runSmokeTest(t *testing.T, numQueries int) {
	if testing.Short() {
		t.Skip("multi-process smoke test skipped in -short mode")
	}
	bin := buildNode(t)

	const (
		seedFlag  = "-seed=42"
		clients   = 6
		epochs    = 4
		seed      = 42
		partFlags = "-partitions=4"
	)
	queriesFlag := fmt.Sprintf("-queries=%d", numQueries)

	// Proxies first; their topics must exist before anyone attaches.
	addr0, stop0 := startProxy(t, bin, 0, partFlags)
	defer stop0()
	addr1, stop1 := startProxy(t, bin, 1, partFlags)
	defer stop1()
	proxies := "-proxies=" + addr0 + "," + addr1

	// Announce the query set (s=1: everyone participates, so the
	// decoded count is exact).
	out, err := exec.Command(bin, "submit", proxies, queriesFlag, "-s=1").CombinedOutput()
	if err != nil {
		t.Fatalf("submit process: %v\n%s", err, out)
	}

	// Two client processes, three logical clients each, batched
	// flushes; they learn the query set from the control topic.
	for _, offset := range []int{0, 3} {
		out, err := exec.Command(bin, "client", proxies, seedFlag, queriesFlag,
			fmt.Sprintf("-offset=%d", offset), "-n=3",
			fmt.Sprintf("-epochs=%d", epochs), "-conns=2").CombinedOutput()
		if err != nil {
			t.Fatalf("client process (offset %d): %v\n%s", offset, err, out)
		}
		if !strings.Contains(string(out), fmt.Sprintf("picked up %d queries", numQueries)) {
			t.Fatalf("client process (offset %d) did not pick up the query set:\n%s", offset, out)
		}
	}

	out, err = exec.Command(bin, "aggregator", proxies, seedFlag, queriesFlag,
		fmt.Sprintf("-clients=%d", clients), fmt.Sprintf("-epochs=%d", epochs),
		"-conns=2", "-idle=5s").CombinedOutput()
	if err != nil {
		t.Fatalf("aggregator process: %v\n%s", err, out)
	}
	got := string(out)

	// The count line is exact at s=1: no sampling, no loss, no dupes,
	// and every decoded message demuxed to a known query.
	wantCounts := fmt.Sprintf("decoded=%d malformed=0 duplicates=0 unknown=0 mismatched=0",
		clients*epochs*numQueries)
	if !strings.Contains(got, wantCounts) {
		t.Errorf("aggregator output missing %q:\n%s", wantCounts, got)
	}

	// Reference: the same population in-process in MultiQuery mode,
	// same seed conventions (core.Config: client i seed+i+2, aggregator
	// seed+1), same queries, params, and origin — the networked
	// pipeline must reproduce it byte for byte through the shared
	// result formatter.
	want := inProcessReference(t, clients, epochs, seed, numQueries)
	if want == "" {
		t.Fatal("in-process reference produced no windows")
	}
	if !strings.Contains(got, want) {
		t.Errorf("networked results differ from in-process pipeline.\nwant:\n%s\ngot:\n%s", want, got)
	}
}

func buildNode(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "privapprox-node")
	out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput()
	if err != nil {
		t.Fatalf("building privapprox-node: %v\n%s", err, out)
	}
	return bin
}

// startProxy launches one proxy process on a kernel-chosen port and
// parses the bound address from its banner line.
func startProxy(t *testing.T, bin string, index int, extra ...string) (addr string, stop func()) {
	t.Helper()
	return startProxyAt(t, bin, "127.0.0.1:0", index, extra...)
}

// startProxyAt is startProxy with an explicit listen address — the
// crash tests restart a killed proxy on the port it held before.
func startProxyAt(t *testing.T, bin, listen string, index int, extra ...string) (addr string, stop func()) {
	t.Helper()
	args := append([]string{"proxy", "-listen=" + listen, fmt.Sprintf("-index=%d", index)}, extra...)
	cmd := exec.Command(bin, args...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = cmd.Stdout
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	lines := make(chan string, 1)
	go func() {
		r := bufio.NewReader(stdout)
		line, err := r.ReadString('\n')
		if err == nil {
			lines <- line
		}
		io.Copy(io.Discard, r) // keep the pipe drained
	}()
	select {
	case line := <-lines:
		i := strings.LastIndex(line, " on ")
		if i < 0 {
			t.Fatalf("unexpected proxy banner: %q", line)
		}
		addr = strings.TrimSpace(line[i+4:])
	case <-time.After(10 * time.Second):
		cmd.Process.Kill()
		t.Fatalf("proxy %d never announced its address", index)
	}
	return addr, func() {
		cmd.Process.Kill()
		cmd.Wait()
	}
}

// inProcessReference runs the equivalent single-process multi-query
// deployment and renders every fired window through the node's
// formatter.
func inProcessReference(t *testing.T, clients, epochs int, seed int64, numQueries int) string {
	t.Helper()
	params := sharedParams(1, 0.9, 0.6)
	sys, err := core.New(core.Config{
		Clients:    clients,
		Proxies:    2,
		Partitions: 4,
		Params:     &params,
		Origin:     defaultOrigin,
		Seed:       seed,
		MultiQuery: true,
		Populate: func(i int, db *minisql.DB) error {
			return populateClient(i, db)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	queries, err := nodeQueries(numQueries)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range queries {
		if err := sys.Register(q); err != nil {
			t.Fatal(err)
		}
	}
	var all []aggregator.Result
	for e := 0; e < epochs; e++ {
		res, _, err := sys.RunEpoch()
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, res...)
	}
	res, err := sys.Flush()
	if err != nil {
		t.Fatal(err)
	}
	all = append(all, res...)
	return formatResults(all)
}
