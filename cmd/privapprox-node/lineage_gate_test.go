package main

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"os/exec"
	"sort"
	"strings"
	"testing"
	"time"

	"privapprox/internal/core"
	"privapprox/internal/minisql"
)

// TestLineageGate is the provenance gate (`make lineage`): under a
// fixed seed, every fired window's result card — query, window bounds,
// epoch range, responses, realized fraction, shed level, CI width,
// budget burn, drop/dedup counts — must be byte-identical between the
// in-process pipeline and the networked privapprox-node deployment,
// and identical across Workers/Shards settings. Only DeterministicLine
// fields participate; timing enrichment (E2E latency, stamp counts) is
// deployment-dependent by design.
func TestLineageGate(t *testing.T) {
	if testing.Short() {
		t.Skip("lineage gate skipped in -short mode")
	}
	bin := buildNode(t)

	const (
		clients    = 6
		epochs     = 4
		seed       = 42
		numQueries = 2
	)

	// In-process reference cards, across pipeline shapes: every
	// Workers/Shards setting must render the same sorted line multiset.
	want := inProcessCards(t, clients, epochs, seed, numQueries, 1, 1)
	if len(want) == 0 {
		t.Fatal("in-process reference emitted no cards")
	}
	for _, shape := range [][2]int{{4, 3}, {0, 0}} {
		got := inProcessCards(t, clients, epochs, seed, numQueries, shape[0], shape[1])
		if strings.Join(got, "\n") != strings.Join(want, "\n") {
			t.Fatalf("cards differ across Workers=%d/Shards=%d.\nwant:\n%s\ngot:\n%s",
				shape[0], shape[1], strings.Join(want, "\n"), strings.Join(got, "\n"))
		}
	}

	// Networked deployment: same seed conventions, -print-cards renders
	// the aggregator's retained cards under a CARDS marker.
	addr0, stop0 := startProxy(t, bin, 0, "-partitions=4")
	defer stop0()
	addr1, stop1 := startProxy(t, bin, 1, "-partitions=4")
	defer stop1()
	proxies := "-proxies=" + addr0 + "," + addr1

	queriesFlag := fmt.Sprintf("-queries=%d", numQueries)
	if out, err := exec.Command(bin, "submit", proxies, queriesFlag, "-s=1").CombinedOutput(); err != nil {
		t.Fatalf("submit: %v\n%s", err, out)
	}
	for _, offset := range []int{0, 3} {
		out, err := exec.Command(bin, "client", proxies, "-seed=42", queriesFlag,
			fmt.Sprintf("-offset=%d", offset), "-n=3",
			fmt.Sprintf("-epochs=%d", epochs), "-conns=2").CombinedOutput()
		if err != nil {
			t.Fatalf("client (offset %d): %v\n%s", offset, err, out)
		}
	}
	out, err := exec.Command(bin, "aggregator", proxies, "-seed=42", queriesFlag,
		fmt.Sprintf("-clients=%d", clients), fmt.Sprintf("-epochs=%d", epochs),
		"-conns=2", "-idle=5s", "-print-cards").CombinedOutput()
	if err != nil {
		t.Fatalf("aggregator: %v\n%s", err, out)
	}
	got := cardsBlock(t, string(out))
	if strings.Join(got, "\n") != strings.Join(want, "\n") {
		t.Errorf("networked cards differ from in-process pipeline.\nwant:\n%s\ngot:\n%s",
			strings.Join(want, "\n"), strings.Join(got, "\n"))
	}

	// Sanity-pin the known workload: s=1 and an exact population means
	// every card reports full realized participation and no drops.
	for _, line := range got {
		for _, field := range []string{"fraction=1", "shed=1", "late=0", "duplicates=0", "malformed=0"} {
			if !strings.Contains(line, field+" ") && !strings.HasSuffix(line, field) {
				t.Errorf("card %q missing expected %q for the s=1 workload", line, field)
			}
		}
	}
}

// cardsBlock extracts and sorts the deterministic card lines printed
// under the CARDS marker.
func cardsBlock(t *testing.T, out string) []string {
	t.Helper()
	i := strings.Index(out, "CARDS\n")
	if i < 0 {
		t.Fatalf("aggregator output has no CARDS block:\n%s", out)
	}
	var lines []string
	for _, ln := range strings.Split(out[i+len("CARDS\n"):], "\n") {
		if strings.HasPrefix(ln, "query=") {
			lines = append(lines, ln)
		}
	}
	sort.Strings(lines)
	return lines
}

// inProcessCards runs the single-process multi-query deployment and
// returns the sorted deterministic card lines from its lineage
// recorder.
func inProcessCards(t *testing.T, clients, epochs int, seed int64, numQueries, workers, shards int) []string {
	t.Helper()
	params := sharedParams(1, 0.9, 0.6)
	sys, err := core.New(core.Config{
		Clients:    clients,
		Proxies:    2,
		Partitions: 4,
		Params:     &params,
		Origin:     defaultOrigin,
		Seed:       seed,
		Workers:    workers,
		Shards:     shards,
		MultiQuery: true,
		Populate: func(i int, db *minisql.DB) error {
			return populateClient(i, db)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	queries, err := nodeQueries(numQueries)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range queries {
		if err := sys.Register(q); err != nil {
			t.Fatal(err)
		}
	}
	for e := 0; e < epochs; e++ {
		if _, _, err := sys.RunEpoch(); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := sys.Flush(); err != nil {
		t.Fatal(err)
	}
	var lines []string
	for _, c := range sys.Lineage().Cards(nil) {
		lines = append(lines, c.DeterministicLine())
	}
	sort.Strings(lines)
	return lines
}

// TestHealthEndpoints exercises the node-level health plane: every
// role's metrics mux serves /healthz, and the submit role's /readyz
// reports ready once its control-plane sinks have caught up to the
// registry's announcement version.
func TestHealthEndpoints(t *testing.T) {
	if testing.Short() {
		t.Skip("health endpoint test skipped in -short mode")
	}
	bin := buildNode(t)

	addr0, metrics0, stop0 := startProxyWithMetrics(t, bin, 0, "-partitions=4")
	defer stop0()
	addr1, stop1 := startProxy(t, bin, 1, "-partitions=4")
	defer stop1()

	healthz := strings.Replace(metrics0, "/metrics", "/healthz", 1)
	if body := getOK(t, healthz); body != "ok\n" {
		t.Errorf("proxy /healthz body = %q, want %q", body, "ok\n")
	}

	// The proxy serves no /readyz (it has no control-plane sink notion);
	// the mux must 404 rather than claim readiness.
	if resp, err := http.Get(strings.Replace(metrics0, "/metrics", "/readyz", 1)); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("proxy /readyz status = %d, want 404", resp.StatusCode)
		}
	}

	// Submit role with -linger: after announcing, the registry and its
	// fleet sink agree on the version, so /readyz flips to 200.
	cmd := exec.Command(bin, "submit", "-proxies="+addr0+","+addr1,
		"-queries=1", "-s=1", "-metrics-addr=127.0.0.1:0", "-linger=30s")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = cmd.Stdout
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		cmd.Process.Kill()
		cmd.Wait()
	}()
	var submitMetrics string
	announced := make(chan struct{})
	urls := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			if strings.HasPrefix(line, "metrics on ") {
				urls <- strings.TrimSpace(strings.TrimPrefix(line, "metrics on "))
			}
			if strings.HasPrefix(line, "announced ") {
				close(announced)
			}
		}
	}()
	select {
	case submitMetrics = <-urls:
	case <-time.After(10 * time.Second):
		t.Fatal("submit never announced its metrics address")
	}
	select {
	case <-announced:
	case <-time.After(10 * time.Second):
		t.Fatal("submit never announced its query set")
	}
	readyz := strings.Replace(submitMetrics, "/metrics", "/readyz", 1)
	if body := getOK(t, readyz); body != "ready\n" {
		t.Errorf("submit /readyz body = %q, want %q", body, "ready\n")
	}
	if body := getOK(t, strings.Replace(submitMetrics, "/metrics", "/healthz", 1)); body != "ok\n" {
		t.Errorf("submit /healthz body = %q, want %q", body, "ok\n")
	}
}

// getOK GETs a URL, requires status 200, and returns the body.
func getOK(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d, body %q", url, resp.StatusCode, body)
	}
	return string(body)
}
