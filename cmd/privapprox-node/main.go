// Command privapprox-node runs one PrivApprox role as a standalone
// networked process, communicating over the TCP pub/sub protocol — the
// deployment shape of the paper's Fig. 3 with Kafka-style brokers.
//
// Start two proxies, an aggregator, and a few clients (each in its own
// terminal or backgrounded):
//
//	privapprox-node proxy -listen 127.0.0.1:9101 -index 0
//	privapprox-node proxy -listen 127.0.0.1:9102 -index 1
//	privapprox-node aggregator -proxies 127.0.0.1:9101,127.0.0.1:9102 -clients 3 -epochs 4
//	privapprox-node client -proxies 127.0.0.1:9101,127.0.0.1:9102 -id c0 -epochs 4
//	privapprox-node client -proxies 127.0.0.1:9101,127.0.0.1:9102 -id c1 -epochs 4
//	privapprox-node client -proxies 127.0.0.1:9101,127.0.0.1:9102 -id c2 -epochs 4
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"os/signal"
	"strings"
	"time"

	"privapprox/internal/aggregator"
	"privapprox/internal/budget"
	"privapprox/internal/client"
	"privapprox/internal/minisql"
	"privapprox/internal/proxy"
	"privapprox/internal/pubsub"
	"privapprox/internal/query"
	"privapprox/internal/rr"
	"privapprox/internal/workload"
	"privapprox/internal/xorcrypt"
)

// The networked demo pins a shared parameter set and query so the
// processes agree without a distribution channel; a production
// deployment would push the signed query through the proxies
// (paper §3.1).
var defaultOrigin = time.Unix(1_700_000_000, 0)

func sharedQuery() (*query.Query, error) {
	return workload.TaxiQuery("node-analyst", 1, time.Second, 4*time.Second, 4*time.Second)
}

func sharedParams(s, p, q float64) budget.Params {
	return budget.Params{S: s, RR: rr.Params{P: p, Q: q}}
}

func topicFor(index int) string {
	if index == 0 {
		return proxy.TopicAnswer
	}
	return proxy.TopicKey
}

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: privapprox-node <proxy|client|aggregator> [flags]")
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "proxy":
		err = runProxy(os.Args[2:])
	case "client":
		err = runClient(os.Args[2:])
	case "aggregator":
		err = runAggregator(os.Args[2:])
	default:
		fmt.Fprintf(os.Stderr, "unknown role %q\n", os.Args[1])
		os.Exit(2)
	}
	if err != nil {
		log.Fatal(err)
	}
}

func runProxy(args []string) error {
	fs := flag.NewFlagSet("proxy", flag.ExitOnError)
	listen := fs.String("listen", "127.0.0.1:0", "listen address")
	index := fs.Int("index", 0, "proxy index (0 = answer stream, ≥1 = key stream)")
	partitions := fs.Int("partitions", 4, "topic partitions")
	fs.Parse(args)

	broker := pubsub.NewBroker()
	if err := broker.CreateTopic(topicFor(*index), *partitions); err != nil {
		return err
	}
	srv, err := pubsub.Serve(broker, *listen)
	if err != nil {
		return err
	}
	fmt.Printf("proxy %d serving topic %q on %s\n", *index, topicFor(*index), srv.Addr())
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	st := broker.Stats()
	fmt.Printf("\nproxy stats: %d msgs in (%.1f KB), %d msgs out\n",
		st.MessagesIn, float64(st.BytesIn)/1024, st.MessagesOut)
	return srv.Close()
}

// tcpSink adapts a remote proxy connection to the client's ShareSink.
type tcpSink struct {
	cli   *pubsub.Client
	topic string
}

func (s *tcpSink) Submit(share xorcrypt.Share) error {
	_, _, err := s.cli.Publish(s.topic, share.MID[:], share.Payload)
	return err
}

func runClient(args []string) error {
	fs := flag.NewFlagSet("client", flag.ExitOnError)
	proxyList := fs.String("proxies", "", "comma-separated proxy addresses (index order)")
	id := fs.String("id", "client-0", "client identifier")
	epochs := fs.Int("epochs", 4, "epochs to answer")
	s := fs.Float64("s", 0.9, "sampling fraction")
	p := fs.Float64("p", 0.9, "first randomization coin")
	q := fs.Float64("q", 0.6, "second randomization coin")
	seed := fs.Int64("seed", 0, "data seed (0 = from id hash)")
	fs.Parse(args)

	addrs := strings.Split(*proxyList, ",")
	if len(addrs) < 2 {
		return fmt.Errorf("need ≥ 2 proxies, got %q", *proxyList)
	}
	sinks := make([]client.ShareSink, len(addrs))
	for i, addr := range addrs {
		cli, err := pubsub.Dial(strings.TrimSpace(addr))
		if err != nil {
			return err
		}
		defer cli.Close()
		sinks[i] = &tcpSink{cli: cli, topic: topicFor(i)}
	}

	dataSeed := *seed
	if dataSeed == 0 {
		for _, c := range *id {
			dataSeed = dataSeed*31 + int64(c)
		}
	}
	db := minisql.NewDB()
	rng := rand.New(rand.NewSource(dataSeed))
	if err := workload.PopulateTaxi(db, rng, 3, time.Unix(0, 0), time.Minute); err != nil {
		return err
	}
	c, err := client.New(client.Config{ID: *id, DB: db, Sinks: sinks, Seed: dataSeed + 1})
	if err != nil {
		return err
	}
	qy, err := sharedQuery()
	if err != nil {
		return err
	}
	if err := c.Subscribe(&query.Signed{Query: qy}, sharedParams(*s, *p, *q)); err != nil {
		return err
	}
	for e := uint64(0); e < uint64(*epochs); e++ {
		ok, err := c.AnswerOnce(e)
		if err != nil {
			return err
		}
		fmt.Printf("epoch %d: participated=%v\n", e, ok)
	}
	st := c.Stats()
	fmt.Printf("client %s done: %d answers, %d bytes\n", *id, st.AnswersSent, st.BytesSent)
	return nil
}

func runAggregator(args []string) error {
	fs := flag.NewFlagSet("aggregator", flag.ExitOnError)
	proxyList := fs.String("proxies", "", "comma-separated proxy addresses (index order)")
	clients := fs.Int("clients", 3, "population size U")
	epochs := fs.Int("epochs", 4, "epochs to wait for")
	s := fs.Float64("s", 0.9, "sampling fraction")
	p := fs.Float64("p", 0.9, "first randomization coin")
	q := fs.Float64("q", 0.6, "second randomization coin")
	idle := fs.Duration("idle", 3*time.Second, "stop after this long without new shares")
	fs.Parse(args)

	addrs := strings.Split(*proxyList, ",")
	if len(addrs) < 2 {
		return fmt.Errorf("need ≥ 2 proxies, got %q", *proxyList)
	}
	qy, err := sharedQuery()
	if err != nil {
		return err
	}
	agg, err := aggregator.New(aggregator.Config{
		Query:      qy,
		Params:     sharedParams(*s, *p, *q),
		Population: *clients,
		Proxies:    len(addrs),
		Origin:     defaultOrigin,
	})
	if err != nil {
		return err
	}
	type cursor struct {
		cli     *pubsub.Client
		topic   string
		offsets []int64
	}
	cursors := make([]*cursor, len(addrs))
	for i, addr := range addrs {
		cli, err := pubsub.Dial(strings.TrimSpace(addr))
		if err != nil {
			return err
		}
		defer cli.Close()
		topic := topicFor(i)
		parts, err := cli.Partitions(topic)
		if err != nil {
			return err
		}
		cursors[i] = &cursor{cli: cli, topic: topic, offsets: make([]int64, parts)}
	}

	expected := int64(*clients) * int64(*epochs)
	lastProgress := time.Now()
	fmt.Printf("aggregator waiting for up to %d answers (idle timeout %v)\n", expected, *idle)
	for agg.Decoded() < expected && time.Since(lastProgress) < *idle {
		progressed := false
		for src, cur := range cursors {
			for part := range cur.offsets {
				recs, err := cur.cli.Fetch(cur.topic, part, cur.offsets[part], 1024, 100*time.Millisecond)
				if err != nil {
					return err
				}
				for _, rec := range recs {
					share, err := proxy.DecodeRecord(rec)
					if err != nil {
						return err
					}
					results, err := agg.SubmitShare(share, src, time.Now())
					if err != nil {
						return err
					}
					printResults(results)
				}
				if len(recs) > 0 {
					cur.offsets[part] += int64(len(recs))
					progressed = true
				}
			}
		}
		if progressed {
			lastProgress = time.Now()
		}
	}
	results, err := agg.Flush()
	if err != nil {
		return err
	}
	printResults(results)
	fmt.Printf("decoded=%d malformed=%d duplicates=%d\n",
		agg.Decoded(), agg.Malformed(), agg.Duplicates())
	return nil
}

func printResults(results []aggregator.Result) {
	for _, res := range results {
		fmt.Printf("window [%s → %s): %d answers\n",
			res.Window.Start.Format("15:04:05"), res.Window.End.Format("15:04:05"), res.Responses)
		for _, b := range res.Buckets {
			fmt.Printf("  %-12s %10.1f ± %.1f\n", b.Label, b.Estimate.Estimate, b.Estimate.Margin)
		}
	}
}
