// Command privapprox-node runs one PrivApprox role as a standalone
// networked process, communicating over the batched TCP pub/sub
// protocol — the deployment shape of the paper's Fig. 3 with
// Kafka-style brokers at the proxies.
//
// The roles share the in-process pipeline's code: clients and the
// aggregator attach proxy.Proxy handles over pubsub.Client transports
// (a small pipelined connection pool each), clients flush an epoch's
// shares to each proxy in one publish frame via client.Batcher, and the
// aggregator drains with the same consumer code the in-process system
// uses. Under the same seed conventions as core.Config (client i's seed
// is seed+i+2, the aggregator's is seed+1), a networked run produces
// results identical to the in-process pipeline — the multi-process
// smoke test asserts exactly that.
//
// Start two proxies, an aggregator, and a few clients (each in its own
// terminal or backgrounded):
//
//	privapprox-node proxy -listen 127.0.0.1:9101 -index 0
//	privapprox-node proxy -listen 127.0.0.1:9102 -index 1
//	privapprox-node aggregator -proxies 127.0.0.1:9101,127.0.0.1:9102 -clients 6 -epochs 4
//	privapprox-node client -proxies 127.0.0.1:9101,127.0.0.1:9102 -offset 0 -n 3 -epochs 4
//	privapprox-node client -proxies 127.0.0.1:9101,127.0.0.1:9102 -offset 3 -n 3 -epochs 4
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"privapprox/internal/aggregator"
	"privapprox/internal/budget"
	"privapprox/internal/client"
	"privapprox/internal/minisql"
	"privapprox/internal/proxy"
	"privapprox/internal/pubsub"
	"privapprox/internal/query"
	"privapprox/internal/rr"
	"privapprox/internal/workload"
)

// The networked demo pins a shared parameter set and query so the
// processes agree without a distribution channel; a production
// deployment would push the signed query through the proxies
// (paper §3.1). defaultOrigin matches core.Config's default so the two
// pipelines line up epoch for epoch.
var defaultOrigin = time.Unix(1_700_000_000, 0)

func sharedQuery() (*query.Query, error) {
	return workload.TaxiQuery("node-analyst", 1, time.Second, 4*time.Second, 4*time.Second)
}

func sharedParams(s, p, q float64) budget.Params {
	return budget.Params{S: s, RR: rr.Params{P: p, Q: q}}
}

// populateClient fills logical client i's database; the seed convention
// is shared with the smoke test's in-process reference run.
func populateClient(i int, db *minisql.DB) error {
	rng := rand.New(rand.NewSource(int64(i) + 1))
	return workload.PopulateTaxi(db, rng, 3, time.Unix(0, 0), time.Minute)
}

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: privapprox-node <proxy|client|aggregator> [flags]")
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "proxy":
		err = runProxy(os.Args[2:])
	case "client":
		err = runClient(os.Args[2:])
	case "aggregator":
		err = runAggregator(os.Args[2:])
	default:
		fmt.Fprintf(os.Stderr, "unknown role %q\n", os.Args[1])
		os.Exit(2)
	}
	if err != nil {
		log.Fatal(err)
	}
}

func runProxy(args []string) error {
	fs := flag.NewFlagSet("proxy", flag.ExitOnError)
	listen := fs.String("listen", "127.0.0.1:0", "listen address")
	index := fs.Int("index", 0, "proxy index (0 = answer stream, ≥1 = key stream)")
	partitions := fs.Int("partitions", 4, "topic partitions")
	fs.Parse(args)

	broker := pubsub.NewBroker()
	if err := broker.CreateTopic(proxy.TopicFor(*index), *partitions); err != nil {
		return err
	}
	srv, err := pubsub.Serve(broker, *listen)
	if err != nil {
		return err
	}
	fmt.Printf("proxy %d serving topic %q on %s\n", *index, proxy.TopicFor(*index), srv.Addr())
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	st := broker.Stats()
	fmt.Printf("\nproxy stats: %d msgs in (%.1f KB), %d msgs out\n",
		st.MessagesIn, float64(st.BytesIn)/1024, st.MessagesOut)
	return srv.Close()
}

// dialFleet connects to every proxy address with a pooled pipelined
// client and attaches a fleet handle over the transports.
func dialFleet(proxyList string, conns int) (*proxy.Fleet, []*pubsub.Client, error) {
	addrs := strings.Split(proxyList, ",")
	if len(addrs) < 2 {
		return nil, nil, fmt.Errorf("need ≥ 2 proxies, got %q", proxyList)
	}
	clients := make([]*pubsub.Client, 0, len(addrs))
	transports := make([]pubsub.Transport, 0, len(addrs))
	for _, addr := range addrs {
		cli, err := pubsub.DialPool(strings.TrimSpace(addr), conns)
		if err != nil {
			for _, c := range clients {
				c.Close()
			}
			return nil, nil, err
		}
		clients = append(clients, cli)
		transports = append(transports, cli)
	}
	fleet, err := proxy.AttachFleet(transports)
	if err != nil {
		for _, c := range clients {
			c.Close()
		}
		return nil, nil, err
	}
	return fleet, clients, nil
}

func closeAll(clients []*pubsub.Client) {
	for _, c := range clients {
		c.Close()
	}
}

func runClient(args []string) error {
	fs := flag.NewFlagSet("client", flag.ExitOnError)
	proxyList := fs.String("proxies", "", "comma-separated proxy addresses (index order)")
	n := fs.Int("n", 1, "logical clients simulated by this process")
	offset := fs.Int("offset", 0, "global index of this process's first logical client")
	epochs := fs.Int("epochs", 4, "epochs to answer")
	conns := fs.Int("conns", 2, "TCP connections per proxy")
	batch := fs.Int("batch", 0, "shares per publish frame (0 = one frame per proxy per epoch)")
	workers := fs.Int("workers", runtime.GOMAXPROCS(0), "concurrent answering clients")
	s := fs.Float64("s", 0.9, "sampling fraction")
	p := fs.Float64("p", 0.9, "first randomization coin")
	q := fs.Float64("q", 0.6, "second randomization coin")
	seed := fs.Int64("seed", 1, "system seed (client i uses seed+i+2, as in core.Config)")
	fs.Parse(args)
	if *n <= 0 {
		return fmt.Errorf("need ≥ 1 logical clients, got %d", *n)
	}

	fleet, tcps, err := dialFleet(*proxyList, *conns)
	if err != nil {
		return err
	}
	defer closeAll(tcps)

	// One batcher per proxy: every logical client submits into it, and
	// the epoch loop flushes it as one frame — O(1) round-trips per
	// (process, proxy) per epoch instead of one per share.
	batchers := make([]*client.Batcher, fleet.Size())
	sinks := make([]client.ShareSink, fleet.Size())
	for i := range batchers {
		batchers[i] = client.NewBatcher(fleet.Proxy(i), *batch)
		sinks[i] = batchers[i]
	}

	qy, err := sharedQuery()
	if err != nil {
		return err
	}
	params := sharedParams(*s, *p, *q)
	clients := make([]*client.Client, *n)
	for j := range clients {
		global := *offset + j
		db := minisql.NewDB()
		if err := populateClient(global, db); err != nil {
			return err
		}
		c, err := client.New(client.Config{
			ID:    fmt.Sprintf("client-%06d", global),
			DB:    db,
			Sinks: sinks,
			Seed:  *seed + int64(global) + 2,
		})
		if err != nil {
			return err
		}
		if err := c.Subscribe(&query.Signed{Query: qy}, params); err != nil {
			return err
		}
		clients[j] = c
	}

	for e := uint64(0); e < uint64(*epochs); e++ {
		participants, err := answerAll(clients, e, *workers)
		if err != nil {
			return err
		}
		for _, b := range batchers {
			if err := b.Flush(); err != nil {
				return err
			}
		}
		fmt.Printf("epoch %d: %d/%d participated\n", e, participants, *n)
	}
	var answers, bytes int64
	for _, c := range clients {
		st := c.Stats()
		answers += st.AnswersSent
		bytes += st.BytesSent
	}
	fmt.Printf("clients %d..%d done: %d answers, %d bytes\n",
		*offset, *offset+*n-1, answers, bytes)
	return nil
}

// answerAll fans AnswerOnce over the logical clients with a bounded
// worker pool (the networked twin of core.System's epoch fan-out).
func answerAll(clients []*client.Client, epoch uint64, workers int) (int, error) {
	if workers > len(clients) {
		workers = len(clients)
	}
	if workers <= 1 {
		participants := 0
		for _, c := range clients {
			ok, err := c.AnswerOnce(epoch)
			if err != nil {
				return participants, err
			}
			if ok {
				participants++
			}
		}
		return participants, nil
	}
	var (
		next         atomic.Int64
		participants atomic.Int64
		failed       atomic.Bool
		errMu        sync.Mutex
		firstErr     error
		wg           sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(clients) || failed.Load() {
					return
				}
				ok, err := clients[i].AnswerOnce(epoch)
				if err != nil {
					errMu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					errMu.Unlock()
					failed.Store(true)
					return
				}
				if ok {
					participants.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	return int(participants.Load()), firstErr
}

func runAggregator(args []string) error {
	fs := flag.NewFlagSet("aggregator", flag.ExitOnError)
	proxyList := fs.String("proxies", "", "comma-separated proxy addresses (index order)")
	clients := fs.Int("clients", 3, "population size U")
	epochs := fs.Int("epochs", 4, "epochs to wait for")
	conns := fs.Int("conns", 2, "TCP connections per proxy")
	s := fs.Float64("s", 0.9, "sampling fraction")
	p := fs.Float64("p", 0.9, "first randomization coin")
	q := fs.Float64("q", 0.6, "second randomization coin")
	seed := fs.Int64("seed", 1, "system seed (the aggregator uses seed+1, as in core.Config)")
	idle := fs.Duration("idle", 3*time.Second, "stop after this long without new shares")
	fs.Parse(args)

	fleet, tcps, err := dialFleet(*proxyList, *conns)
	if err != nil {
		return err
	}
	defer closeAll(tcps)

	qy, err := sharedQuery()
	if err != nil {
		return err
	}
	agg, err := aggregator.New(aggregator.Config{
		Query:      qy,
		Params:     sharedParams(*s, *p, *q),
		Population: *clients,
		Proxies:    fleet.Size(),
		Origin:     defaultOrigin,
		Seed:       *seed + 1,
	})
	if err != nil {
		return err
	}

	// The same consumer code the in-process pipeline drains with, now
	// running over the TCP transports.
	consumers, err := fleet.Consumers("aggregator")
	if err != nil {
		return err
	}

	expected := int64(*clients) * int64(*epochs)
	lastProgress := time.Now()
	fmt.Printf("aggregator waiting for up to %d answers (idle timeout %v)\n", expected, *idle)
	for agg.Decoded() < expected && time.Since(lastProgress) < *idle {
		progressed := false
		for src, c := range consumers {
			recs, err := c.PollWait(4096, 50*time.Millisecond)
			if err != nil {
				return err
			}
			now := time.Now()
			for _, rec := range recs {
				share, err := proxy.DecodeRecord(rec)
				if err != nil {
					return err
				}
				results, err := agg.SubmitShare(share, src, now)
				if err != nil {
					return err
				}
				printResults(results)
			}
			if len(recs) > 0 {
				progressed = true
			}
		}
		if progressed {
			lastProgress = time.Now()
		}
	}
	results, err := agg.Flush()
	if err != nil {
		return err
	}
	printResults(results)
	fmt.Printf("decoded=%d malformed=%d duplicates=%d\n",
		agg.Decoded(), agg.Malformed(), agg.Duplicates())
	return nil
}

// formatResults renders fired windows in the node's canonical result
// format; the multi-process smoke test renders its in-process reference
// run through the same function and compares byte for byte.
func formatResults(results []aggregator.Result) string {
	var b strings.Builder
	for _, res := range results {
		fmt.Fprintf(&b, "window [%s → %s): %d answers\n",
			res.Window.Start.Format("15:04:05"), res.Window.End.Format("15:04:05"), res.Responses)
		for _, bk := range res.Buckets {
			fmt.Fprintf(&b, "  %-12s %10.1f ± %.1f\n", bk.Label, bk.Estimate.Estimate, bk.Estimate.Margin)
		}
	}
	return b.String()
}

func printResults(results []aggregator.Result) {
	if len(results) > 0 {
		fmt.Print(formatResults(results))
	}
}
