// Command privapprox-node runs one PrivApprox role as a standalone
// networked process, communicating over the batched TCP pub/sub
// protocol — the deployment shape of the paper's Fig. 3 with
// Kafka-style brokers at the proxies.
//
// Queries are distributed through the proxies' control topics (paper
// §3.1): the submit role signs and announces a query set, client
// processes pick it up dynamically — verifying each analyst signature —
// and the aggregator builds its per-query demux state from the same
// announcements. No process is configured with a hardcoded query.
//
// The roles share the in-process pipeline's code: clients and the
// aggregator attach proxy.Proxy handles over pubsub.Client transports
// (a small pipelined connection pool each), clients flush an epoch's
// shares — for every active query — to each proxy in one publish frame
// via client.Batcher, and the aggregator drains with the same consumer
// code the in-process system uses. Under the same seed conventions as
// core.Config (client i's seed is seed+i+2, the aggregator's is
// seed+1), a networked run produces results identical to the in-process
// multi-query pipeline — the multi-process smoke tests assert exactly
// that.
//
// Start two proxies, announce queries, then run clients and the
// aggregator (each in its own terminal or backgrounded):
//
//	privapprox-node proxy -listen 127.0.0.1:9101 -index 0
//	privapprox-node proxy -listen 127.0.0.1:9102 -index 1
//	privapprox-node submit -proxies 127.0.0.1:9101,127.0.0.1:9102 -queries 2
//	privapprox-node client -proxies 127.0.0.1:9101,127.0.0.1:9102 -offset 0 -n 3 -epochs 4
//	privapprox-node client -proxies 127.0.0.1:9101,127.0.0.1:9102 -offset 3 -n 3 -epochs 4
//	privapprox-node aggregator -proxies 127.0.0.1:9101,127.0.0.1:9102 -clients 6 -epochs 4 -queries 2
//
// Every role accepts -metrics-addr to serve its live telemetry over
// HTTP: Prometheus text format at /metrics, the same registry as JSON
// under /debug/vars (expvar), and the runtime profiler under
// /debug/pprof. The instruments are the zero-allocation registry of
// internal/telemetry, so scraping is safe on a loaded node.
package main

import (
	"crypto/ed25519"
	"encoding/binary"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"privapprox/internal/aggregator"
	"privapprox/internal/answer"
	"privapprox/internal/budget"
	"privapprox/internal/client"
	"privapprox/internal/engine"
	"privapprox/internal/minisql"
	"privapprox/internal/proxy"
	"privapprox/internal/pubsub"
	"privapprox/internal/query"
	"privapprox/internal/rr"
	"privapprox/internal/telemetry"
	"privapprox/internal/telemetry/lineage"
	"privapprox/internal/wal"
	"privapprox/internal/workload"
	"privapprox/internal/xorcrypt"
)

// nodeLog is the role-tagged diagnostic logger. It writes structured
// lines to stderr only — the stdout protocol banners the harnesses
// parse stay plain fmt.Printf, byte for byte.
var nodeLog = telemetry.NewLogger("node")

// serveMetrics exposes a role's registry on addr (empty = disabled) and
// returns a closer. Port 0 picks a free port; the bound address is
// printed so scrapers (and the obsgate harness) can find it. Every role
// mounts /healthz; extra routes (readiness, the lineage windows page)
// ride along per role.
func serveMetrics(addr string, reg *telemetry.Registry, routes ...telemetry.Route) (func(), error) {
	if addr == "" {
		return func() {}, nil
	}
	routes = append(routes, telemetry.HealthzRoute())
	srv, err := telemetry.Serve(addr, reg, routes...)
	if err != nil {
		return nil, err
	}
	fmt.Printf("metrics on http://%s/metrics\n", srv.Addr())
	return func() { srv.Close() }, nil
}

// decodeShareBatch decodes one polled record batch into the reusable
// shares slice for a single batch submission. On a decode error the
// prefix decoded so far is returned alongside the error so the caller
// can still submit it — the same partial progress as record-at-a-time
// decoding.
func decodeShareBatch(recs []pubsub.Record, shares []xorcrypt.Share) ([]xorcrypt.Share, error) {
	shares = shares[:0]
	for _, rec := range recs {
		share, err := proxy.DecodeRecord(rec)
		if err != nil {
			return shares, err
		}
		shares = append(shares, share)
	}
	return shares, nil
}

// defaultOrigin matches core.Config's default so the in-process and
// networked pipelines line up epoch for epoch.
var defaultOrigin = time.Unix(1_700_000_000, 0)

// nodeAnalyst is the demo analyst identity. Its signing key is
// deterministic so independent processes (submit here, reference runs
// in tests) derive the same keypair without a key-distribution channel;
// a production deployment provisions real analyst keys.
const nodeAnalyst = "node-analyst"

func nodeAnalystKey() ed25519.PrivateKey {
	var seed [ed25519.SeedSize]byte
	copy(seed[:], nodeAnalyst)
	return ed25519.NewKeyFromSeed(seed[:])
}

// nodeQueries builds the announced query set: n taxi queries with
// serials 1..n sharing the demo geometry.
func nodeQueries(n int) ([]*query.Query, error) {
	out := make([]*query.Query, n)
	for i := range out {
		q, err := workload.TaxiQuery(nodeAnalyst, uint64(i+1), time.Second, 4*time.Second, 4*time.Second)
		if err != nil {
			return nil, err
		}
		out[i] = q
	}
	return out, nil
}

func sharedParams(s, p, q float64) budget.Params {
	return budget.Params{S: s, RR: rr.Params{P: p, Q: q}}
}

// populateClient fills logical client i's database; the seed convention
// is shared with the smoke tests' in-process reference runs.
func populateClient(i int, db *minisql.DB) error {
	rng := rand.New(rand.NewSource(int64(i) + 1))
	return workload.PopulateTaxi(db, rng, 3, time.Unix(0, 0), time.Minute)
}

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: privapprox-node <proxy|submit|client|aggregator> [flags]")
		os.Exit(2)
	}
	nodeLog = telemetry.NewLogger(os.Args[1])
	var err error
	switch os.Args[1] {
	case "proxy":
		err = runProxy(os.Args[2:])
	case "submit":
		err = runSubmit(os.Args[2:])
	case "client":
		err = runClient(os.Args[2:])
	case "aggregator":
		err = runAggregator(os.Args[2:])
	default:
		fmt.Fprintf(os.Stderr, "unknown role %q\n", os.Args[1])
		os.Exit(2)
	}
	if err != nil {
		nodeLog.Fatalf("%v", err)
	}
}

func runProxy(args []string) error {
	fs := flag.NewFlagSet("proxy", flag.ExitOnError)
	listen := fs.String("listen", "127.0.0.1:0", "listen address")
	index := fs.Int("index", 0, "proxy index (0 = answer stream, ≥1 = key stream)")
	partitions := fs.Int("partitions", 4, "topic partitions")
	partitionCap := fs.Int("partition-cap", 0, "max unconsumed records per answer partition; publishers past the bound get backpressure (0 = unbounded)")
	dataDir := fs.String("data-dir", "", "durable broker directory (empty = in-memory)")
	fsync := fs.String("fsync", "never", "WAL fsync policy: never, interval, every-batch")
	metricsAddr := fs.String("metrics-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this address (empty = off)")
	fs.Parse(args)

	reg := telemetry.NewRegistry()
	var broker *pubsub.Broker
	if *dataDir != "" {
		policy, err := wal.ParsePolicy(*fsync)
		if err != nil {
			return err
		}
		// A restarted proxy replays its journals here: partitions,
		// committed offsets, and the control topic (so the announced
		// query set survives the restart too).
		b, err := pubsub.OpenBroker(*dataDir, wal.Options{
			Policy:     policy,
			AppendHist: reg.Histogram("privapprox_wal_append_ns"),
			FsyncHist:  reg.Histogram("privapprox_wal_fsync_ns"),
		})
		if err != nil {
			return err
		}
		broker = b
	} else {
		broker = pubsub.NewBroker()
	}
	reg.RegisterSource(broker)
	broker.SetPublishHistogram(reg.Histogram("privapprox_publish_ns"))
	if err := broker.CreateTopic(proxy.TopicFor(*index), *partitions); err != nil && !errors.Is(err, pubsub.ErrTopicExists) {
		return err
	}
	if *partitionCap > 0 {
		// Bounded answer partitions: a client fleet outrunning the
		// aggregator's drain sees ErrPartitionFull (or blocks in the
		// PublishWait variants) instead of growing the proxy without
		// bound. The control topic stays unbounded — announcements are
		// tiny and must never be refused.
		if err := broker.SetTopicCapacity(proxy.TopicFor(*index), *partitionCap); err != nil {
			return err
		}
	}
	// The control topic carries query announcements; single-partition so
	// announcements keep a total order.
	if err := broker.CreateTopic(proxy.TopicControl, 1); err != nil && !errors.Is(err, pubsub.ErrTopicExists) {
		return err
	}
	// The lineage sidecar topic carries batch provenance stamps; like
	// the control topic it is single-partition (stamps are tiny and an
	// ordered stream simplifies the aggregator's fold).
	if err := broker.CreateTopic(proxy.TopicLineage, 1); err != nil && !errors.Is(err, pubsub.ErrTopicExists) {
		return err
	}
	srv, err := pubsub.Serve(broker, *listen)
	if err != nil {
		return err
	}
	// Banner order matters: harnesses parse the serving line first, then
	// (when -metrics-addr is set) the metrics line.
	fmt.Printf("proxy %d serving topic %q on %s\n", *index, proxy.TopicFor(*index), srv.Addr())
	stopMetrics, err := serveMetrics(*metricsAddr, reg)
	if err != nil {
		srv.Close()
		return err
	}
	defer stopMetrics()
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	st := broker.Stats()
	fmt.Printf("\nproxy stats: %d msgs in (%.1f KB), %d msgs out, %d duplicates deduped\n",
		st.MessagesIn, float64(st.BytesIn)/1024, st.MessagesOut, st.Duplicates)
	return srv.Close()
}

// runSubmit is the analyst-facing control-plane role: it signs the demo
// query set and announces it through every proxy's control topic.
func runSubmit(args []string) error {
	fs := flag.NewFlagSet("submit", flag.ExitOnError)
	proxyList := fs.String("proxies", "", "comma-separated proxy addresses (index order)")
	queries := fs.Int("queries", 1, "number of concurrent queries to announce")
	conns := fs.Int("conns", 1, "TCP connections per proxy")
	s := fs.Float64("s", 0.9, "sampling fraction")
	p := fs.Float64("p", 0.9, "first randomization coin")
	q := fs.Float64("q", 0.6, "second randomization coin")
	resume := fs.Bool("resume", false, "bootstrap from the newest announced snapshot so version numbering continues after a submitter restart")
	linger := fs.Duration("linger", 0, "keep serving -metrics-addr this long after announcing, so deployers can poll /readyz")
	metricsAddr := fs.String("metrics-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this address (empty = off)")
	fs.Parse(args)
	if *queries < 1 {
		return fmt.Errorf("need ≥ 1 queries, got %d", *queries)
	}

	fleet, tcps, err := dialFleet(*proxyList, *conns)
	if err != nil {
		return err
	}
	defer closeAll(tcps)

	priv := nodeAnalystKey()
	reg := engine.NewRegistry()
	if err := reg.Trust(nodeAnalyst, priv.Public().(ed25519.PublicKey)); err != nil {
		return err
	}
	if *resume {
		// Read the newest snapshot back off the control topic (replayed
		// by a durable proxy) and adopt its version, so the snapshots
		// announced below are not ignored by newest-wins appliers.
		if qs := peekQuerySet(fleet, "submit-resume", 2*time.Second); qs != nil {
			if err := reg.Bootstrap(qs); err != nil {
				return err
			}
			fmt.Printf("resumed from announcement version %d (%d queries)\n", qs.Version, len(qs.Entries))
		}
	}
	if err := reg.AttachSink(fleet); err != nil {
		return err
	}
	tel := telemetry.NewRegistry()
	tel.RegisterSource(reg)
	// Ready = every attached control-plane sink has caught up to the
	// registry's announcement version; a deployer can gate client
	// startup on /readyz instead of sleeping.
	ready := func() error {
		v := reg.Version()
		for _, sv := range reg.SinkVersions() {
			if sv < v {
				return fmt.Errorf("control sink at version %d, registry at %d", sv, v)
			}
		}
		return nil
	}
	stopMetrics, err := serveMetrics(*metricsAddr, tel, telemetry.ReadyRoute(ready))
	if err != nil {
		return err
	}
	defer stopMetrics()
	qs, err := nodeQueries(*queries)
	if err != nil {
		return err
	}
	params := sharedParams(*s, *p, *q)
	for _, qy := range qs {
		signed, err := query.Sign(qy, priv)
		if err != nil {
			return err
		}
		if err := reg.Register(signed, params); err != nil {
			return err
		}
	}
	fmt.Printf("announced %d queries at version %d\n", *queries, reg.Version())
	if *linger > 0 {
		time.Sleep(*linger)
	}
	return nil
}

// dialFleet connects to every proxy address with a pooled pipelined
// client and attaches a fleet handle over the transports.
func dialFleet(proxyList string, conns int) (*proxy.Fleet, []*pubsub.Client, error) {
	return dialFleetOpts(proxyList, pubsub.Options{Conns: conns})
}

func dialFleetOpts(proxyList string, opts pubsub.Options) (*proxy.Fleet, []*pubsub.Client, error) {
	addrs := strings.Split(proxyList, ",")
	if len(addrs) < 2 {
		return nil, nil, fmt.Errorf("need ≥ 2 proxies, got %q", proxyList)
	}
	clients := make([]*pubsub.Client, 0, len(addrs))
	transports := make([]pubsub.Transport, 0, len(addrs))
	for _, addr := range addrs {
		cli, err := pubsub.DialOptions(strings.TrimSpace(addr), opts)
		if err != nil {
			for _, c := range clients {
				c.Close()
			}
			return nil, nil, err
		}
		clients = append(clients, cli)
		transports = append(transports, cli)
	}
	attach := proxy.AttachFleet
	if opts.LazyDial {
		// Lazy dialing implies lazy attach: a down proxy must not block
		// startup, so the topic probe is deferred to first submit.
		attach = proxy.AttachFleetLazy
	}
	fleet, err := attach(transports)
	if err != nil {
		for _, c := range clients {
			c.Close()
		}
		return nil, nil, err
	}
	return fleet, clients, nil
}

func closeAll(clients []*pubsub.Client) {
	for _, c := range clients {
		c.Close()
	}
}

func runClient(args []string) error {
	fs := flag.NewFlagSet("client", flag.ExitOnError)
	proxyList := fs.String("proxies", "", "comma-separated proxy addresses (index order)")
	n := fs.Int("n", 1, "logical clients simulated by this process")
	offset := fs.Int("offset", 0, "global index of this process's first logical client")
	epochs := fs.Int("epochs", 4, "answer epochs [first-epoch, epochs)")
	firstEpoch := fs.Int("first-epoch", 0, "first epoch to answer; earlier epochs are fast-forwarded (a client process resuming after a restart)")
	conns := fs.Int("conns", 2, "TCP connections per proxy")
	batch := fs.Int("batch", 0, "shares per publish frame (0 = one frame per proxy per epoch)")
	workers := fs.Int("workers", runtime.GOMAXPROCS(0), "concurrent answering clients")
	minQueries := fs.Int("queries", 1, "announced queries to wait for before answering")
	wait := fs.Duration("wait", 10*time.Second, "how long to wait for query announcements")
	seed := fs.Int64("seed", 1, "system seed (client i uses seed+i+2, as in core.Config)")
	dialTimeout := fs.Duration("dial-timeout", 0, "per-connection dial timeout (0 = transport default)")
	retries := fs.Int("retries", 1, "publish attempts per proxy flush (>1 enables idempotent retry after ambiguous failures)")
	degraded := fs.Bool("degraded", false, "tolerate a dead proxy: a failed flush drops that proxy's shares for the epoch (counted) instead of aborting")
	metricsAddr := fs.String("metrics-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this address (empty = off)")
	fs.Parse(args)
	if *n <= 0 {
		return fmt.Errorf("need ≥ 1 logical clients, got %d", *n)
	}
	if *firstEpoch < 0 || *firstEpoch > *epochs {
		return fmt.Errorf("first-epoch %d outside [0, %d]", *firstEpoch, *epochs)
	}

	fleet, tcps, err := dialFleetOpts(*proxyList, pubsub.Options{
		Conns:       *conns,
		DialTimeout: *dialTimeout,
		Seed:        *seed,
		// Degraded mode must come up even while a proxy is down; its
		// conns stay dead (fast-failing under backoff) until the proxy
		// returns, and lost flushes are dropped+counted.
		LazyDial: *degraded,
	})
	if err != nil {
		return err
	}
	defer closeAll(tcps)
	if *retries > 1 {
		fleet.SetRetryPolicy(pubsub.RetryPolicy{Attempts: *retries, Seed: *seed})
	}

	// One batcher per proxy: every logical client submits into it, and
	// the epoch loop flushes it as one frame — O(1) round-trips per
	// (process, proxy) per epoch however many queries are active.
	batchers := make([]*client.Batcher, fleet.Size())
	sinks := make([]client.ShareSink, fleet.Size())
	for i := range batchers {
		batchers[i] = client.NewBatcher(fleet.Proxy(i), *batch)
		batchers[i].SetDegraded(*degraded)
		sinks[i] = batchers[i]
	}

	// Provenance stamping: the answer-stream batcher (proxy 0) stamps
	// every flush with its origin context, published over the lineage
	// sidecar topic. One stamped stream per process is enough — every
	// batcher flushes the same logical answers — and against a fleet
	// that doesn't advertise the lineage feature SupportsLineage is
	// false, so v1 proxies see exactly the v1 traffic.
	processStart := time.Now()
	if px := fleet.Proxy(0); px.SupportsLineage() {
		group := uint32(*offset)
		batchers[0].SetStamper(func(epoch, seq uint64, shares int, flushStartNs int64) {
			buf := lineage.AppendStamp(make([]byte, 0, lineage.StampWireSize), lineage.Stamp{
				Epoch:        epoch,
				Group:        group,
				Seq:          seq,
				Shares:       uint32(shares),
				FlushStartNs: flushStartNs,
				PublishNs:    time.Now().UnixNano(),
				MonoNs:       int64(time.Since(processStart)),
			})
			// Stamps are advisory: a failed publish costs observability,
			// never the data path.
			if err := px.SubmitStamp(buf); err != nil {
				nodeLog.Warnf("lineage stamp: %v", err)
			}
		})
	}

	clients := make([]*client.Client, *n)
	subs := make([]engine.Subscriber, *n)
	for j := range clients {
		global := *offset + j
		db := minisql.NewDB()
		if err := populateClient(global, db); err != nil {
			return err
		}
		c, err := client.New(client.Config{
			ID:    fmt.Sprintf("client-%06d", global),
			DB:    db,
			Sinks: sinks,
			Seed:  *seed + int64(global) + 2,
		})
		if err != nil {
			return err
		}
		clients[j] = c
		subs[j] = c
	}

	// Query distribution: follow the first proxy's control topic and
	// reconcile every logical client against the newest announced set
	// (signatures verified against the announced analyst keys).
	cc, err := fleet.Proxy(0).ControlConsumer(fmt.Sprintf("clients-%d", *offset))
	if err != nil {
		return err
	}
	follower := engine.NewFollower(cc, engine.NewApplier(subs...))
	if err := follower.WaitActive(*minQueries, *wait); err != nil {
		return err
	}
	fmt.Printf("picked up %d queries at version %d\n",
		follower.Applier().ActiveQueries(), follower.Applier().Version())

	// Telemetry: fleet-level client counters (summed over the logical
	// clients), batcher degraded-mode accounting (summed over the
	// per-proxy batchers — the series carry no proxy label), and the
	// batch-kernel counters this role exercises (RR + XOR split).
	tel := telemetry.NewRegistry()
	tel.RegisterSource(telemetry.SourceFunc(func(dst []telemetry.Sample) []telemetry.Sample {
		return client.AppendFleetSamples(dst, client.SumStats(clients))
	}))
	tel.RegisterSource(telemetry.SourceFunc(func(dst []telemetry.Sample) []telemetry.Sample {
		var dropped, pending int64
		for _, b := range batchers {
			dropped += b.Dropped()
			pending += int64(b.Pending())
		}
		return append(dst,
			telemetry.Sample{Name: "privapprox_batcher_dropped_total", Value: float64(dropped), Kind: telemetry.KindCounter},
			telemetry.Sample{Name: "privapprox_batcher_pending", Value: float64(pending), Kind: telemetry.KindGauge},
		)
	}))
	tel.RegisterSource(telemetry.SourceFunc(rr.Metrics))
	tel.RegisterSource(telemetry.SourceFunc(xorcrypt.Metrics))
	stopMetrics, err := serveMetrics(*metricsAddr, tel)
	if err != nil {
		return err
	}
	defer stopMetrics()

	if *firstEpoch > 0 {
		// Resume semantics: skip the epochs a previous life already
		// answered, advancing each subscription's coin stream exactly as
		// answering them would have.
		for _, c := range clients {
			c.FastForward(uint64(*firstEpoch))
		}
		fmt.Printf("fast-forwarded to epoch %d\n", *firstEpoch)
	}

	for e := uint64(*firstEpoch); e < uint64(*epochs); e++ {
		// Apply any announcements that arrived since the last epoch —
		// networked deployments pick up (and drop) queries mid-run.
		if _, err := follower.Sync(); err != nil {
			return err
		}
		if follower.Applier().ActiveQueries() == 0 {
			// Every query was stopped: idle through the epoch rather
			// than erroring on unsubscribed clients.
			fmt.Printf("epoch %d: no active queries\n", e)
			continue
		}
		for _, b := range batchers {
			b.BeginEpoch(e)
		}
		participants, err := answerAll(clients, e, *workers)
		if err != nil {
			return err
		}
		for _, b := range batchers {
			if err := b.Flush(); err != nil {
				return err
			}
		}
		fmt.Printf("epoch %d: %d/%d participated\n", e, participants, *n)
	}
	var answers, bytes, dropped int64
	for _, c := range clients {
		st := c.Stats()
		answers += st.AnswersSent
		bytes += st.BytesSent
	}
	for _, b := range batchers {
		dropped += b.Dropped()
	}
	fmt.Printf("clients %d..%d done: %d answers, %d bytes, %d shares dropped\n",
		*offset, *offset+*n-1, answers, bytes, dropped)
	return nil
}

// answerAll fans AnswerOnce over the logical clients with a bounded
// worker pool (the networked twin of core.System's epoch fan-out).
func answerAll(clients []*client.Client, epoch uint64, workers int) (int, error) {
	if workers > len(clients) {
		workers = len(clients)
	}
	if workers <= 1 {
		participants := 0
		for _, c := range clients {
			ok, err := c.AnswerOnce(epoch)
			if err != nil {
				return participants, err
			}
			if ok {
				participants++
			}
		}
		return participants, nil
	}
	var (
		next         atomic.Int64
		participants atomic.Int64
		failed       atomic.Bool
		errMu        sync.Mutex
		firstErr     error
		wg           sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(clients) || failed.Load() {
					return
				}
				ok, err := clients[i].AnswerOnce(epoch)
				if err != nil {
					errMu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					errMu.Unlock()
					failed.Store(true)
					return
				}
				if ok {
					participants.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	return int(participants.Load()), firstErr
}

// peekQuerySet drains the control topic until it has been idle for a
// beat (or wait elapses) and returns the newest snapshot seen, nil when
// none was announced.
func peekQuerySet(fleet *proxy.Fleet, group string, wait time.Duration) *engine.QuerySet {
	cc, err := fleet.Proxy(0).ControlConsumer(group)
	if err != nil {
		nodeLog.Warnf("peek query set: %v", err)
		return nil
	}
	var newest *engine.QuerySet
	deadline := time.Now().Add(wait)
	for {
		recs, err := cc.PollWait(256, 200*time.Millisecond)
		if err != nil {
			nodeLog.Warnf("peek query set: %v", err)
			return newest
		}
		// Decode before checking the exit conditions: a batch that
		// arrives right at the deadline still counts — returning a
		// stale version here would make -resume announce versions the
		// appliers have already seen.
		for _, rec := range recs {
			qs, err := engine.DecodeQuerySet(rec.Value)
			if err != nil {
				continue
			}
			if newest == nil || qs.Version > newest.Version {
				newest = qs
			}
		}
		if len(recs) == 0 || !time.Now().Before(deadline) {
			return newest
		}
	}
}

// fetchQuerySet follows the control topic until a snapshot with at
// least minQueries entries appears (or the wait elapses), returning the
// newest observed snapshot.
func fetchQuerySet(fleet *proxy.Fleet, group string, minQueries int, wait time.Duration) (*engine.QuerySet, error) {
	cc, err := fleet.Proxy(0).ControlConsumer(group)
	if err != nil {
		return nil, err
	}
	var newest *engine.QuerySet
	deadline := time.Now().Add(wait)
	for {
		recs, err := cc.PollWait(256, 50*time.Millisecond)
		if err != nil {
			return nil, err
		}
		for _, rec := range recs {
			qs, err := engine.DecodeQuerySet(rec.Value)
			if err != nil {
				continue // garbage on the control topic must not wedge us
			}
			if newest == nil || qs.Version > newest.Version {
				newest = qs
			}
		}
		if newest != nil && len(newest.Entries) >= minQueries {
			return newest, nil
		}
		if !time.Now().Before(deadline) {
			return nil, fmt.Errorf("no announcement with ≥ %d queries within %v", minQueries, wait)
		}
	}
}

func runAggregator(args []string) error {
	fs := flag.NewFlagSet("aggregator", flag.ExitOnError)
	proxyList := fs.String("proxies", "", "comma-separated proxy addresses (index order)")
	clients := fs.Int("clients", 3, "population size U")
	epochs := fs.Int("epochs", 4, "epochs to wait for")
	conns := fs.Int("conns", 2, "TCP connections per proxy")
	minQueries := fs.Int("queries", 1, "announced queries to wait for")
	wait := fs.Duration("wait", 10*time.Second, "how long to wait for query announcements")
	seed := fs.Int64("seed", 1, "system seed (the aggregator uses seed+1, as in core.Config)")
	idle := fs.Duration("idle", 3*time.Second, "stop after this long without new shares")
	dataDir := fs.String("data-dir", "", "checkpoint directory: the aggregator journals its state after every drain and resumes from the newest checkpoint on restart")
	fsync := fs.String("fsync", "never", "checkpoint WAL fsync policy: never, interval, every-batch")
	pollMax := fs.Int("poll-max", 4096, "records per poll (durable mode; small values tighten checkpoint granularity)")
	holdAfter := fs.Int64("hold-after", 0, "testing hook: after this many decoded answers, checkpoint and block forever (a SIGKILL window for the crash gate)")
	cards := fs.String("cards", "", "append-only JSONL result-card log (empty = memory-only ring; with -data-dir defaults to <data-dir>/cards.jsonl)")
	printCards := fs.Bool("print-cards", false, "print each fired window's deterministic card line under a CARDS marker before exiting")
	metricsAddr := fs.String("metrics-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this address (empty = off)")
	fs.Parse(args)

	fleet, tcps, err := dialFleet(*proxyList, *conns)
	if err != nil {
		return err
	}
	defer closeAll(tcps)

	// The aggregator learns its query set from the same control topic
	// the clients follow — nothing about the queries is configured here.
	// After a restart the same fetch re-registers the same queries in
	// announcement order, which is what Restore requires.
	qs, err := fetchQuerySet(fleet, "aggregator-control", *minQueries, *wait)
	if err != nil {
		return err
	}
	agg, err := aggregator.NewMulti(aggregator.Config{
		Population: *clients,
		Proxies:    fleet.Size(),
		Origin:     defaultOrigin,
		Seed:       *seed + 1,
	})
	if err != nil {
		return err
	}
	for _, e := range qs.Entries {
		if err := e.Signed.Verify(e.AnalystKey); err != nil {
			return fmt.Errorf("announced query %s: %w", e.Signed.Query.QID, err)
		}
		if err := agg.AddQuery(aggregator.QuerySpec{Query: e.Signed.Query, Params: e.Params}); err != nil {
			return err
		}
	}
	fmt.Printf("aggregating %d queries from announcement version %d\n", len(qs.Entries), qs.Version)

	// Telemetry: the aggregator's own accounting plus the epoch tracer's
	// stage totals (join time via SubmitShareBatch) and the fired-window
	// span log; the accumulate-kernel counter rides along.
	tel := telemetry.NewRegistry()
	tracer := telemetry.NewTracer()
	agg.SetTracer(tracer)
	tel.RegisterSource(agg)
	tel.RegisterSource(tracer)
	tel.RegisterSource(telemetry.SourceFunc(answer.Metrics))
	tel.RegisterSource(telemetry.SourceFunc(xorcrypt.Metrics))

	// The provenance recorder: one result card per fired window, a
	// bounded in-memory ring for /debug/privapprox/windows, and — when a
	// card log is configured — JSONL wide events with exactly-once
	// emission across restarts (the log's own scan is the dedup source).
	if *cards == "" && *dataDir != "" {
		*cards = filepath.Join(*dataDir, "cards.jsonl")
	}
	rec, err := lineage.NewRecorder(lineage.Options{Path: *cards, Registry: tel, Tracer: tracer})
	if err != nil {
		return err
	}
	defer rec.Close()
	tel.RegisterSource(rec)
	agg.SetCardSink(rec)
	stopMetrics, err := serveMetrics(*metricsAddr, tel,
		telemetry.Route{Pattern: "/debug/privapprox/windows", Handler: rec.Handler()})
	if err != nil {
		return err
	}
	defer stopMetrics()

	// The same consumer code the in-process pipeline drains with, now
	// running over the TCP transports.
	consumers, err := fleet.Consumers("aggregator")
	if err != nil {
		return err
	}

	// Lineage sidecar drain: batch stamps are folded into the recorder
	// before each share sweep, so a window firing during the sweep sees
	// the flush stamps of the epochs that fed it. Positions are not
	// checkpointed — re-observing stamps after a restart is harmless.
	lineageConsumers, err := fleet.LineageConsumers("aggregator-lineage")
	if err != nil {
		return err
	}
	drainStamps := func() {
		for _, lc := range lineageConsumers {
			recs, err := lc.Poll(256)
			if err != nil {
				continue
			}
			for _, record := range recs {
				if s, err := lineage.DecodeStamp(record.Value); err == nil {
					rec.ObserveStamp(s)
				}
			}
		}
	}

	expected := int64(*clients) * int64(*epochs) * int64(len(qs.Entries))
	if *dataDir != "" {
		policy, err := wal.ParsePolicy(*fsync)
		if err != nil {
			return err
		}
		return runAggregatorDurable(*dataDir, policy, agg, consumers, expected, *idle, *pollMax, *holdAfter, tel, rec, drainStamps, *printCards)
	}

	lastProgress := time.Now()
	var shares []xorcrypt.Share
	fmt.Printf("aggregator waiting for up to %d answers (idle timeout %v)\n", expected, *idle)
	for agg.Decoded() < expected && time.Since(lastProgress) < *idle {
		drainStamps()
		progressed := false
		for src, c := range consumers {
			recs, err := c.PollWait(4096, 50*time.Millisecond)
			if err != nil {
				return err
			}
			var decErr error
			shares, decErr = decodeShareBatch(recs, shares)
			results, err := agg.SubmitShareBatch(shares, src, time.Now())
			if err != nil {
				return err
			}
			printResults(results)
			if decErr != nil {
				return decErr
			}
			if len(recs) > 0 {
				progressed = true
			}
		}
		if progressed {
			lastProgress = time.Now()
		}
	}
	results, err := agg.Flush()
	if err != nil {
		return err
	}
	printResults(results)
	printStatsLine(agg)
	if *printCards {
		printCardLines(rec)
	}
	return nil
}

// printCardLines renders every retained card's deterministic line,
// sorted, under a "CARDS" marker. The lineage gate compares these
// lines byte for byte across deployment shapes, so only the
// seed-determined card fields appear.
func printCardLines(rec *lineage.Recorder) {
	cards := rec.Cards(nil)
	lines := make([]string, len(cards))
	for i, c := range cards {
		lines[i] = c.DeterministicLine()
	}
	sort.Strings(lines)
	fmt.Println("CARDS")
	for _, l := range lines {
		fmt.Println(l)
	}
}

func printStatsLine(agg *aggregator.Aggregator) {
	st := agg.Stats()
	fmt.Printf("decoded=%d malformed=%d duplicates=%d unknown=%d mismatched=%d\n",
		st.Decoded, st.Malformed, st.Duplicates, st.UnknownQuery, st.LengthMismatch)
}

// runAggregatorDurable is the crash-tolerant drain loop: after every
// poll sweep that made progress, the aggregator's state, the consumers'
// positions, and every result fired so far are written as one
// checkpoint record to a WAL under dataDir. A restarted aggregator
// (same flags, same proxies) restores the newest checkpoint, seeks its
// consumers to the recorded cut, and continues — the final result block
// it prints is byte-identical to an uninterrupted run's: no lost
// windows, no double-counted answers.
//
// Output protocol: results are held until the end and printed under a
// "RESULTS" marker line (followed by the stats line), so crash tests
// compare everything after the marker.
func runAggregatorDurable(dataDir string, policy wal.Policy, agg *aggregator.Aggregator, consumers []*pubsub.Consumer, expected int64, idle time.Duration, pollMax int, holdAfter int64, tel *telemetry.Registry, rec *lineage.Recorder, drainStamps func(), printCards bool) error {
	// Old checkpoints are garbage once superseded: rotate small segments
	// and drop everything below the newest record after each append.
	ckLog, err := wal.Open(filepath.Join(dataDir, "aggregator"), wal.Options{
		Policy:       policy,
		SegmentBytes: 1 << 20,
		AppendHist:   tel.Histogram("privapprox_wal_append_ns"),
		FsyncHist:    tel.Histogram("privapprox_wal_fsync_ns"),
	})
	if err != nil {
		return err
	}
	defer ckLog.Close()

	var results []aggregator.Result
	var newest []byte
	if err := ckLog.Replay(0, func(_ uint64, payload []byte) error {
		newest = append(newest[:0], payload...)
		return nil
	}); err != nil {
		return err
	}
	if newest != nil {
		restored, err := restoreNodeCheckpoint(newest, agg, consumers)
		if err != nil {
			return err
		}
		results = restored
		fmt.Printf("restored checkpoint: %d results, %d answers decoded\n", len(results), agg.Decoded())
	}

	checkpoint := func() error {
		// Card-before-checkpoint barrier: a window fired before this
		// checkpoint never re-fires after restore, so its card must be
		// durable in the JSONL log by the time the checkpoint is.
		if err := rec.Sync(); err != nil {
			return err
		}
		payload, err := encodeNodeCheckpoint(agg, consumers, results)
		if err != nil {
			return err
		}
		lsn, err := ckLog.Append(payload)
		if err != nil {
			return err
		}
		// Whole segments strictly below the newest checkpoint are dead.
		if err := ckLog.TruncateFront(lsn); err != nil {
			return err
		}
		fmt.Printf("checkpoint lsn=%d decoded=%d results=%d\n", lsn, agg.Decoded(), len(results))
		return nil
	}

	lastProgress := time.Now()
	var shares []xorcrypt.Share
	fmt.Printf("aggregator waiting for up to %d answers (idle timeout %v)\n", expected, idle)
	for agg.Decoded() < expected && time.Since(lastProgress) < idle {
		drainStamps()
		progressed := false
		for src, c := range consumers {
			recs, err := c.PollWait(pollMax, 50*time.Millisecond)
			if err != nil {
				return err
			}
			var decErr error
			shares, decErr = decodeShareBatch(recs, shares)
			res, err := agg.SubmitShareBatch(shares, src, time.Now())
			results = append(results, res...)
			if err != nil {
				return err
			}
			if decErr != nil {
				return decErr
			}
			if len(recs) > 0 {
				progressed = true
			}
		}
		if progressed {
			lastProgress = time.Now()
			if err := checkpoint(); err != nil {
				return err
			}
			if holdAfter > 0 && agg.Decoded() >= holdAfter {
				// The crash gate's kill window: state is durable, the
				// stream is mid-flight, and the process now hangs until
				// SIGKILLed.
				fmt.Println("holding for kill")
				select {}
			}
		}
	}
	final, err := agg.Flush()
	if err != nil {
		return err
	}
	results = append(results, final...)
	if err := checkpoint(); err != nil {
		return err
	}
	fmt.Println("RESULTS")
	fmt.Print(formatResults(results))
	printStatsLine(agg)
	if printCards {
		printCardLines(rec)
	}
	return nil
}

// nodeCkptMagic versions the node-level checkpoint record: consumer
// positions, fired results, then the aggregator's own checkpoint.
var nodeCkptMagic = []byte("PNC1")

func encodeNodeCheckpoint(agg *aggregator.Aggregator, consumers []*pubsub.Consumer, results []aggregator.Result) ([]byte, error) {
	buf := append([]byte(nil), nodeCkptMagic...)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(consumers)))
	for _, c := range consumers {
		buf = c.AppendPositions(buf)
	}
	buf = aggregator.AppendResults(buf, results)
	return agg.Checkpoint(buf)
}

func restoreNodeCheckpoint(data []byte, agg *aggregator.Aggregator, consumers []*pubsub.Consumer) ([]aggregator.Result, error) {
	if len(data) < len(nodeCkptMagic)+4 || string(data[:len(nodeCkptMagic)]) != string(nodeCkptMagic) {
		return nil, fmt.Errorf("bad node checkpoint record")
	}
	d := data[len(nodeCkptMagic):]
	nc := binary.BigEndian.Uint32(d)
	d = d[4:]
	if int(nc) != len(consumers) {
		return nil, fmt.Errorf("checkpoint has %d consumers, deployment has %d", nc, len(consumers))
	}
	for _, c := range consumers {
		rest, err := c.SeekPositions(d)
		if err != nil {
			return nil, err
		}
		d = rest
	}
	results, rest, err := aggregator.DecodeResults(d)
	if err != nil {
		return nil, err
	}
	if err := agg.Restore(rest); err != nil {
		return nil, err
	}
	return results, nil
}

// formatResults renders fired windows in the node's canonical result
// format; the multi-process smoke tests render their in-process
// reference runs through the same function and compare byte for byte.
func formatResults(results []aggregator.Result) string {
	var b strings.Builder
	for _, res := range results {
		fmt.Fprintf(&b, "query %s window [%s → %s): %d answers\n",
			res.Query, res.Window.Start.Format("15:04:05"), res.Window.End.Format("15:04:05"), res.Responses)
		for _, bk := range res.Buckets {
			fmt.Fprintf(&b, "  %-12s %10.1f ± %.1f\n", bk.Label, bk.Estimate.Estimate, bk.Estimate.Margin)
		}
	}
	return b.String()
}

func printResults(results []aggregator.Result) {
	if len(results) > 0 {
		fmt.Print(formatResults(results))
	}
}
