package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"privapprox/internal/telemetry/lineage"
)

// The kill-and-resume gate. Both tests drive the real multi-process
// loopback deployment, SIGKILL one component mid-run, restart it from
// its -data-dir, and require the final per-query results to be
// byte-identical to an uninterrupted run — no lost windows, no
// double-counted answers.

const (
	crashClients = 6
	crashEpochs  = 4
	crashSeed    = 42
)

// finalBlock extracts everything after the durable aggregator's
// "RESULTS" marker: the full result sequence plus the stats line.
func finalBlock(t *testing.T, out string) string {
	t.Helper()
	i := strings.Index(out, "RESULTS\n")
	if i < 0 {
		t.Fatalf("aggregator output has no RESULTS block:\n%s", out)
	}
	return out[i+len("RESULTS\n"):]
}

// TestCrashRecoveryAggregator SIGKILLs the aggregator mid-drain (while
// it is provably holding a durable checkpoint of a partially processed
// stream) and restarts it over the same -data-dir.
func TestCrashRecoveryAggregator(t *testing.T) {
	if testing.Short() {
		t.Skip("crash test skipped in -short mode")
	}
	bin := buildNode(t)

	addr0, stop0 := startProxy(t, bin, 0, "-partitions=4")
	defer stop0()
	addr1, stop1 := startProxy(t, bin, 1, "-partitions=4")
	defer stop1()
	proxies := "-proxies=" + addr0 + "," + addr1

	out, err := exec.Command(bin, "submit", proxies, "-queries=1", "-s=1").CombinedOutput()
	if err != nil {
		t.Fatalf("submit: %v\n%s", err, out)
	}
	for _, offset := range []int{0, 3} {
		out, err := exec.Command(bin, "client", proxies, "-seed=42",
			fmt.Sprintf("-offset=%d", offset), "-n=3", "-epochs=4", "-conns=2").CombinedOutput()
		if err != nil {
			t.Fatalf("client (offset %d): %v\n%s", offset, err, out)
		}
	}

	aggArgs := func(dataDir string, extra ...string) []string {
		return append([]string{"aggregator", proxies, "-seed=42", "-queries=1",
			"-clients=6", "-epochs=4", "-conns=2", "-idle=5s",
			"-data-dir=" + dataDir}, extra...)
	}

	// Reference: an uninterrupted durable run over the same stream.
	refDir := t.TempDir()
	refOut, err := exec.Command(bin, aggArgs(refDir)...).CombinedOutput()
	if err != nil {
		t.Fatalf("reference aggregator: %v\n%s", err, refOut)
	}
	want := finalBlock(t, string(refOut))
	// Tie the reference to ground truth: the in-process pipeline.
	inproc := inProcessReference(t, crashClients, crashEpochs, crashSeed, 1)
	if !strings.Contains(want, inproc) {
		t.Fatalf("durable reference diverges from in-process pipeline.\nwant:\n%s\ngot:\n%s", inproc, want)
	}
	wantCounts := fmt.Sprintf("decoded=%d malformed=0 duplicates=0 unknown=0 mismatched=0",
		crashClients*crashEpochs)
	if !strings.Contains(want, wantCounts) {
		t.Fatalf("reference run lost answers:\n%s", want)
	}

	// Crash run: small polls for tight checkpoints, hold (and get
	// killed) after 10 of the 24 answers.
	crashDir := t.TempDir()
	cmd := exec.Command(bin, aggArgs(crashDir, "-poll-max=5", "-hold-after=10")...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = cmd.Stdout
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	holding := make(chan struct{})
	var crashLog strings.Builder
	var logMu sync.Mutex
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			logMu.Lock()
			crashLog.WriteString(line + "\n")
			logMu.Unlock()
			if line == "holding for kill" {
				close(holding)
			}
		}
	}()
	select {
	case <-holding:
	case <-time.After(30 * time.Second):
		cmd.Process.Kill()
		logMu.Lock()
		log := crashLog.String()
		logMu.Unlock()
		t.Fatalf("aggregator never reached the kill window:\n%s", log)
	}
	if err := cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	cmd.Wait()
	logMu.Lock()
	killedOut := crashLog.String()
	logMu.Unlock()
	if !strings.Contains(killedOut, "checkpoint lsn=") {
		t.Fatalf("killed aggregator never checkpointed:\n%s", killedOut)
	}
	if strings.Contains(killedOut, "RESULTS") {
		t.Fatalf("killed aggregator finished before the kill:\n%s", killedOut)
	}

	// Restart from the same directory; it must resume, not start over.
	resumeOut, err := exec.Command(bin, aggArgs(crashDir)...).CombinedOutput()
	if err != nil {
		t.Fatalf("restarted aggregator: %v\n%s", err, resumeOut)
	}
	if !strings.Contains(string(resumeOut), "restored checkpoint:") {
		t.Fatalf("restarted aggregator did not restore a checkpoint:\n%s", resumeOut)
	}
	got := finalBlock(t, string(resumeOut))
	if got != want {
		t.Errorf("kill-and-resume results differ from uninterrupted run.\nwant:\n%s\ngot:\n%s", want, got)
	}

	// Exactly-once result cards across the crash: the killed run logged
	// cards for the windows it fired before the kill; the restored run
	// re-fires nothing it already logged, so the combined card log must
	// hold each (query, window) exactly once — the same set the
	// uninterrupted reference logged.
	if cardWindows(t, refDir) == "" {
		t.Fatal("reference run logged no result cards")
	}
	if gotCards, wantCards := cardWindows(t, crashDir), cardWindows(t, refDir); gotCards != wantCards {
		t.Errorf("kill-and-resume card log differs from uninterrupted run.\nwant:\n%s\ngot:\n%s", wantCards, gotCards)
	}
}

// cardWindows reads a durable run's cards.jsonl and returns the sorted
// (query, window) identities, failing the test on any duplicate — the
// exactly-once contract for card emission across restarts.
func cardWindows(t *testing.T, dataDir string) string {
	t.Helper()
	data, err := os.ReadFile(filepath.Join(dataDir, "cards.jsonl"))
	if err != nil {
		t.Fatalf("reading card log: %v", err)
	}
	seen := map[string]bool{}
	var ids []string
	for _, line := range strings.Split(strings.TrimSuffix(string(data), "\n"), "\n") {
		var c lineage.Card
		if err := json.Unmarshal([]byte(line), &c); err != nil {
			t.Fatalf("unparseable card line %q: %v", line, err)
		}
		id := fmt.Sprintf("%s [%d,%d)", c.Query, c.WindowStart, c.WindowEnd)
		if seen[id] {
			t.Fatalf("card for %s emitted twice in %s", id, dataDir)
		}
		seen[id] = true
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return strings.Join(ids, "\n")
}

// TestCrashRecoveryProxy SIGKILLs a durable proxy while half the
// population's shares (and the announced query set) live only in its
// journals, restarts it on the same port and data directory, and runs
// the remaining clients plus the aggregator against the revived fleet.
func TestCrashRecoveryProxy(t *testing.T) {
	if testing.Short() {
		t.Skip("crash test skipped in -short mode")
	}
	bin := buildNode(t)

	proxyDir := t.TempDir()
	addr0, stop0 := startProxy(t, bin, 0, "-partitions=4", "-data-dir="+proxyDir, "-fsync=every-batch")
	addr1, stop1 := startProxy(t, bin, 1, "-partitions=4")
	defer stop1()
	proxies := "-proxies=" + addr0 + "," + addr1

	out, err := exec.Command(bin, "submit", proxies, "-queries=1", "-s=1").CombinedOutput()
	if err != nil {
		t.Fatalf("submit: %v\n%s", err, out)
	}

	// First half of the population answers all its epochs...
	out, err = exec.Command(bin, "client", proxies, "-seed=42",
		"-offset=0", "-n=3", "-epochs=4", "-conns=2").CombinedOutput()
	if err != nil {
		t.Fatalf("client (offset 0): %v\n%s", err, out)
	}

	// ...then the answer proxy dies without warning.
	stop0() // SIGKILL + wait (see startProxyAt's stop func)

	// Revive it on the same port from its journals.
	addr0b, stop0b := startProxyAt(t, bin, addr0, 0, "-partitions=4", "-data-dir="+proxyDir, "-fsync=every-batch")
	defer stop0b()
	if addr0b != addr0 {
		t.Fatalf("restarted proxy bound %s, want %s", addr0b, addr0)
	}

	// The second half of the population joins after the restart. Its
	// query set comes from the replayed control topic — nothing is
	// re-announced.
	out, err = exec.Command(bin, "client", proxies, "-seed=42",
		"-offset=3", "-n=3", "-epochs=4", "-conns=2").CombinedOutput()
	if err != nil {
		t.Fatalf("client (offset 3) after proxy restart: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "picked up 1 queries") {
		t.Fatalf("client did not pick up the replayed query set:\n%s", out)
	}

	aggOut, err := exec.Command(bin, "aggregator", proxies, "-seed=42", "-queries=1",
		"-clients=6", "-epochs=4", "-conns=2", "-idle=5s").CombinedOutput()
	if err != nil {
		t.Fatalf("aggregator: %v\n%s", err, aggOut)
	}
	got := string(aggOut)

	wantCounts := fmt.Sprintf("decoded=%d malformed=0 duplicates=0 unknown=0 mismatched=0",
		crashClients*crashEpochs)
	if !strings.Contains(got, wantCounts) {
		t.Errorf("aggregator lost shares across the proxy restart (missing %q):\n%s", wantCounts, got)
	}
	want := inProcessReference(t, crashClients, crashEpochs, crashSeed, 1)
	if want == "" {
		t.Fatal("in-process reference produced no windows")
	}
	if !strings.Contains(got, want) {
		t.Errorf("results across proxy crash differ from uninterrupted pipeline.\nwant:\n%s\ngot:\n%s", want, got)
	}
}
