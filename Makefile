# Tier-1 verification plus the race gate over the concurrency-sensitive
# packages (the parallel epoch pipeline: core, aggregator, answer,
# pubsub). `make ci` is the pre-merge check.

GO ?= go
RACE_PKGS = ./internal/core/... ./internal/aggregator/... ./internal/answer/... ./internal/pubsub/...

.PHONY: ci fmt vet build test race smoke bench

ci: fmt vet build test race smoke

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then echo "gofmt -l flagged:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

# -short skips the multi-process smoke test here; the dedicated smoke
# target runs it once (tier-1 `go test ./...` without -short still
# covers everything in one go).
test:
	$(GO) test -short ./...

race:
	$(GO) test -race -count=1 $(RACE_PKGS)

# The multi-process loopback deployment: 2 proxy processes + clients +
# aggregator, asserted byte-identical to the in-process pipeline.
smoke:
	$(GO) test -run TestMultiProcessSmoke -count=1 ./cmd/privapprox-node

bench:
	$(GO) test -run '^$$' -bench 'BenchmarkEpochPipelineParallel|BenchmarkTCPPipeline' -benchmem .
