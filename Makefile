# Tier-1 verification plus the race gate over the concurrency-sensitive
# packages (the parallel epoch pipeline: core, aggregator, answer,
# pubsub). `make ci` is the pre-merge check.

GO ?= go
RACE_PKGS = ./internal/core/... ./internal/aggregator/... ./internal/answer/... ./internal/pubsub/...

.PHONY: ci fmt vet build test race bench

ci: fmt vet build test race

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then echo "gofmt -l flagged:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -count=1 $(RACE_PKGS)

bench:
	$(GO) test -run '^$$' -bench BenchmarkEpochPipelineParallel -benchmem .
