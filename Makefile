# Tier-1 verification plus the race gate over the concurrency-sensitive
# packages (the parallel epoch pipeline: core, aggregator, answer,
# pubsub, engine, wal), the hot-path allocs/op gate, the multi-query
# determinism gate, the kill-and-resume crash gate, the surge overload
# gate, and the result-provenance lineage gate. `make ci` is the
# pre-merge check.

GO ?= go
RACE_PKGS = ./internal/core/... ./internal/aggregator/... ./internal/answer/... ./internal/pubsub/... ./internal/engine/... ./internal/wal/... ./internal/xorcrypt/... ./internal/chaos/... ./internal/telemetry/...

# Benchmarks whose numbers seed BENCH_hotpath.json: the per-answer hot
# path (split, join+decrypt+decode+window, randomized response), plus
# the batch-size sweep of the columnar submit tail.
HOTPATH_BENCH = BenchmarkTable2CryptoXOR|BenchmarkTable3ClientXOREncryption|BenchmarkTable3ClientRandomizedResponse|BenchmarkFig8Scalability|BenchmarkFig8SubmitBatch

.PHONY: ci fmt vet build test race smoke multiquery allocgate crash surge chaos obsgate lineage bench bench-json fuzz

ci: fmt vet build test race allocgate multiquery smoke crash surge chaos obsgate lineage

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then echo "gofmt -l flagged:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

# -short skips the multi-process smoke tests here; the dedicated smoke
# target runs them once (tier-1 `go test ./...` without -short still
# covers everything in one go).
test:
	$(GO) test -short ./...

race:
	$(GO) test -race -count=1 $(RACE_PKGS)

# The multi-process loopback deployments: 2 proxy processes + submit +
# clients + aggregator, single- and multi-query, each asserted
# byte-identical to the in-process pipeline.
smoke:
	$(GO) test -run 'TestMultiProcessSmoke|TestMultiProcessMultiQuerySmoke' -count=1 ./cmd/privapprox-node

# The multi-query determinism gate: N concurrent queries over one
# shared fleet must be byte-identical, per query, to N isolated
# single-query runs under a fixed seed (the TCP half lives in smoke).
multiquery:
	$(GO) test -run 'TestMultiQueryMatchesSolo|TestMultiQueryRegisterAndStopMidRun' -count=1 ./internal/core

# The kill-and-resume crash gate: SIGKILL the durable aggregator
# mid-drain (and, separately, a durable proxy mid-deployment), restart
# each from its -data-dir, and require final per-query results
# byte-identical to an uninterrupted run, plus the in-process
# checkpoint/resume protocol over durable brokers.
crash:
	$(GO) test -run 'TestCrashRecoveryAggregator|TestCrashRecoveryProxy' -count=1 ./cmd/privapprox-node
	$(GO) test -run 'TestSystemCheckpointResume|TestSystemCheckpointResumeMultiQuery|TestSLOCheckpointResumeMidShed' -count=1 ./internal/core

# The closed-loop overload gate: the same deterministic 10× load surge
# through a controlled (SLO shedding) and an uncontrolled system; the
# controlled run must shed, keep tail lag at the target, and drain its
# backlog while the uncontrolled backlog persists.
surge:
	$(GO) test -run 'TestSurgeGate|TestSLOClosedLoopShedsAndRecovers' -count=1 ./internal/surge ./internal/core

# The seeded fault-injection gate: chaos-wrapped transports (connection
# resets, dropped acks, duplicated deliveries, a proxy kill+restart)
# drive the full multi-proxy pipeline under nine fault schedules, and
# every run must produce results byte-identical to the fault-free
# baseline with the broker's session dedup absorbing the redeliveries.
chaos:
	$(GO) test -run 'TestChaosGate' -count=1 ./internal/chaos

# The live-introspection gate: a networked deployment with
# -metrics-addr enabled, scraped over HTTP between two client epochs
# (proxy) and mid-drain (aggregator, parked on the -hold-after hook).
# Asserts the core instrument set is present in Prometheus text format,
# traffic counters are monotonic across epochs, the expvar mirror
# serves the same registry, /readyz reports caught-up control sinks,
# and /debug/privapprox/windows serves a live result card consistent
# with the known workload.
obsgate:
	$(GO) test -run 'TestObsGate' -count=1 ./cmd/privapprox-node

# The result-provenance gate: under a fixed seed, every fired window's
# result card (deterministic fields only) must be byte-identical
# between the in-process pipeline and the networked deployment, and
# identical across Workers/Shards settings; plus the node-level health
# plane (/healthz on every role, submit /readyz). The exactly-once
# card-log contract across a SIGKILL rides in the crash gate.
lineage:
	$(GO) test -run 'TestLineageGate|TestHealthEndpoints' -count=1 ./cmd/privapprox-node

# The allocs/op regression gate: split, join, respond-bits, and
# accumulate — per-message and batch forms — must stay at 0 steady-state
# allocations per op, the full aggregator submit tail (per-share and
# batch) likewise — including with the telemetry tracer and histograms
# attached — and the multi-query tail within its small constant. The
# telemetry package's own instrument primitives are pinned at 0 in
# their in-package gate, re-run here.
allocgate:
	$(GO) test -run 'TestHotPathZeroAllocs|TestAggregatorSubmitSteadyStateAllocs|TestAggregatorMultiQuerySubmitAllocs|TestFig8SubmitZeroAllocs|TestAggregatorSubmitBatchZeroAllocs|TestFig8TelemetryZeroAllocs' -count=1 .
	$(GO) test -run 'TestInstrumentZeroAllocs' -count=1 ./internal/telemetry

bench:
	$(GO) test -run '^$$' -bench 'BenchmarkEpochPipelineParallel|BenchmarkTCPPipeline|BenchmarkMultiQuery' -benchmem .

# Machine-readable performance numbers, seeding the perf trajectory
# across PRs: the hot-path microbenchmarks and the multi-query
# queries-sweep. Each bench run and its JSON conversion are separate
# commands (not a pipe) so a failing benchmark fails the target instead
# of silently writing an empty report.
bench-json:
	$(GO) test -run '^$$' -bench '$(HOTPATH_BENCH)' -benchmem . > .bench_hotpath.tmp
	$(GO) run ./cmd/benchjson -out BENCH_hotpath.json < .bench_hotpath.tmp
	@rm -f .bench_hotpath.tmp
	@echo wrote BENCH_hotpath.json
	$(GO) test -run '^$$' -bench 'BenchmarkMultiQuery' -benchmem . > .bench_multiquery.tmp
	$(GO) run ./cmd/benchjson -out BENCH_multiquery.json < .bench_multiquery.tmp
	@rm -f .bench_multiquery.tmp
	@echo wrote BENCH_multiquery.json
	$(GO) test -run '^$$' -bench 'BenchmarkWALAppend|BenchmarkWALAppendBatch|BenchmarkWALRecovery' -benchmem ./internal/wal > .bench_wal.tmp
	$(GO) run ./cmd/benchjson -out BENCH_wal.json < .bench_wal.tmp
	@rm -f .bench_wal.tmp
	@echo wrote BENCH_wal.json
	$(GO) test -run '^$$' -bench 'BenchmarkOverloadFrontier' -benchmem ./internal/surge > .bench_overload.tmp
	$(GO) run ./cmd/benchjson -out BENCH_overload.json < .bench_overload.tmp
	@rm -f .bench_overload.tmp
	@echo wrote BENCH_overload.json
	$(GO) test -run '^$$' -bench 'BenchmarkTelemetry|BenchmarkFig8SubmitBatchInstrumented' -benchmem . > .bench_telemetry.tmp
	$(GO) run ./cmd/benchjson -out BENCH_telemetry.json < .bench_telemetry.tmp
	@rm -f .bench_telemetry.tmp
	@echo wrote BENCH_telemetry.json

# Short fuzz smoke over every wire codec — the share split/join, the
# answer message, the columnar publish frame (wire v2), the
# control-plane query-set announcement, the WAL record framing — plus
# the SLO controller's checkpoint state.
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzSplitJoinRoundTrip -fuzztime 10s ./internal/xorcrypt
	$(GO) test -run '^$$' -fuzz FuzzMessageRoundTrip -fuzztime 10s ./internal/answer
	$(GO) test -run '^$$' -fuzz FuzzFrameV2RoundTrip -fuzztime 10s ./internal/pubsub
	$(GO) test -run '^$$' -fuzz FuzzQuerySetRoundTrip -fuzztime 10s ./internal/engine
	$(GO) test -run '^$$' -fuzz FuzzWALRecordRoundTrip -fuzztime 10s ./internal/wal
	$(GO) test -run '^$$' -fuzz FuzzSLOControllerRestore -fuzztime 10s ./internal/budget
