# Tier-1 verification plus the race gate over the concurrency-sensitive
# packages (the parallel epoch pipeline: core, aggregator, answer,
# pubsub) and the hot-path allocs/op gate. `make ci` is the pre-merge
# check.

GO ?= go
RACE_PKGS = ./internal/core/... ./internal/aggregator/... ./internal/answer/... ./internal/pubsub/...

# Benchmarks whose numbers seed BENCH_hotpath.json: the per-answer hot
# path (split, join+decrypt+decode+window, randomized response).
HOTPATH_BENCH = BenchmarkTable2CryptoXOR|BenchmarkTable3ClientXOREncryption|BenchmarkTable3ClientRandomizedResponse|BenchmarkFig8Scalability

.PHONY: ci fmt vet build test race smoke allocgate bench bench-json

ci: fmt vet build test race allocgate smoke

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then echo "gofmt -l flagged:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

# -short skips the multi-process smoke test here; the dedicated smoke
# target runs it once (tier-1 `go test ./...` without -short still
# covers everything in one go).
test:
	$(GO) test -short ./...

race:
	$(GO) test -race -count=1 $(RACE_PKGS)

# The multi-process loopback deployment: 2 proxy processes + clients +
# aggregator, asserted byte-identical to the in-process pipeline.
smoke:
	$(GO) test -run TestMultiProcessSmoke -count=1 ./cmd/privapprox-node

# The allocs/op regression gate: split, join, respond-bits, and
# accumulate must stay at 0 steady-state allocations per op, and the
# full aggregator submit tail within its small constant.
allocgate:
	$(GO) test -run 'TestHotPathZeroAllocs|TestAggregatorSubmitSteadyStateAllocs' -count=1 .

bench:
	$(GO) test -run '^$$' -bench 'BenchmarkEpochPipelineParallel|BenchmarkTCPPipeline' -benchmem .

# Machine-readable hot-path numbers, seeding the perf trajectory across
# PRs. The bench run and the JSON conversion are separate commands (not
# a pipe) so a failing benchmark fails the target instead of silently
# writing an empty report.
bench-json:
	$(GO) test -run '^$$' -bench '$(HOTPATH_BENCH)' -benchmem . > .bench_hotpath.tmp
	$(GO) run ./cmd/benchjson -out BENCH_hotpath.json < .bench_hotpath.tmp
	@rm -f .bench_hotpath.tmp
	@echo wrote BENCH_hotpath.json
