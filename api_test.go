package privapprox

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

// The public-API integration test: an analyst budget flows through the
// initializer, clients answer over proxies, and the aggregator's
// interval usually covers the ground truth.
func TestPublicAPIEndToEnd(t *testing.T) {
	const clients = 800
	q, err := TaxiQuery("api-analyst", 1, time.Second, 2*time.Second, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	exact := make([]int, len(q.Buckets))
	sys, err := NewSystem(SystemConfig{
		Clients: clients,
		Query:   q,
		Budget:  &Budget{EpsilonZK: 3.0, Q: 0.3},
		Seed:    21,
		Populate: func(i int, db *DB) error {
			rng := rand.New(rand.NewSource(int64(i) + 1))
			if err := PopulateTaxi(db, rng, 1, time.Unix(0, 0), time.Minute); err != nil {
				return err
			}
			rows, err := db.Query("SELECT distance FROM rides")
			if err != nil {
				return err
			}
			if idx := q.Buckets.Index(rows.Rows[0][0].String()); idx >= 0 {
				exact[idx]++
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()

	params := sys.Params()
	ezk, err := params.EpsilonZK()
	if err != nil {
		t.Fatal(err)
	}
	if ezk > 3.0+1e-9 {
		t.Fatalf("derived ε_zk %v exceeds budget", ezk)
	}

	for epoch := 0; epoch < 2; epoch++ {
		if _, _, err := sys.RunEpoch(); err != nil {
			t.Fatal(err)
		}
	}
	results, err := sys.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) == 0 {
		t.Fatal("no window fired")
	}
	res := results[0]
	// Bucket 0 (≈33.6% of rides) should be estimated within a loose
	// band, and overall mass should roughly match.
	want := float64(exact[0] * 2) // 2 epochs
	got := res.Buckets[0].Estimate.Estimate
	if math.Abs(got-want)/want > 0.35 {
		t.Errorf("bucket 0 estimate %v vs exact %v", got, want)
	}
	total := 0.0
	for _, b := range res.Buckets {
		total += b.Estimate.Estimate
	}
	if math.Abs(total-float64(clients*2))/float64(clients*2) > 0.25 {
		t.Errorf("total mass %v vs %v", total, clients*2)
	}
}

func TestPublicAPIPrivacyAccounting(t *testing.T) {
	p := RRParams{P: 0.9, Q: 0.6}
	dp, err := EpsilonDP(p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(dp-math.Log(16)) > 1e-12 {
		t.Errorf("EpsilonDP = %v", dp)
	}
	zk, err := EpsilonZK(0.6, p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(zk-3.5263) > 1e-3 {
		t.Errorf("EpsilonZK = %v, want Table 1's 3.5263", zk)
	}
	sampled, err := EpsilonDPSampled(0.5, p)
	if err != nil {
		t.Fatal(err)
	}
	if sampled >= dp {
		t.Errorf("amplified ε %v not below ε_dp %v", sampled, dp)
	}
	s, err := SamplingForEpsilonZK(zk, p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s-0.6) > 1e-9 {
		t.Errorf("SamplingForEpsilonZK = %v, want 0.6", s)
	}
}

func TestPublicAPIValueHelpers(t *testing.T) {
	db := NewDB()
	if err := db.CreateTable("t", []string{"n", "s"}); err != nil {
		t.Fatal(err)
	}
	if err := db.Insert("t", []Value{NumberValue(4.5), TextValue("hello")}); err != nil {
		t.Fatal(err)
	}
	rows, err := db.Query("SELECT n FROM t WHERE s = 'hello'")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Rows) != 1 || rows.Rows[0][0].Num != 4.5 {
		t.Errorf("rows = %+v", rows.Rows)
	}
}

func TestPublicAPIUniformRanges(t *testing.T) {
	buckets, err := UniformRanges(0, 3, 6, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(buckets) != 6 {
		t.Fatalf("buckets = %d", len(buckets))
	}
	if idx := buckets.Index("1.25"); idx != 2 {
		t.Errorf("Index(1.25) = %d, want 2", idx)
	}
}
