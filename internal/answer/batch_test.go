package answer

import (
	"bytes"
	"errors"
	"math/rand"
	"reflect"
	"testing"
)

// randVec returns a random nbits-wide vector (trailing bits zeroed by
// construction through FromBytes).
func randVec(t *testing.T, rng *rand.Rand, nbits int) *BitVector {
	t.Helper()
	raw := make([]byte, (nbits+7)/8)
	rng.Read(raw)
	v, err := FromBytes(raw, nbits)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// TestAddBatchMatchesSequentialAdd: folding a packed lane in one AddBatch
// call must produce exactly the counts of per-vector Add calls, for
// byte-aligned and non-byte-aligned widths and strides with slack.
func TestAddBatchMatchesSequentialAdd(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, nbits := range []int{1, 7, 8, 11, 64, 65} {
		for _, pad := range []int{0, 3, HeaderLen} {
			nbytes := (nbits + 7) / 8
			stride := nbytes + pad
			const count = 9
			lane := make([]byte, count*stride)
			seq, err := NewAccumulator(nbits)
			if err != nil {
				t.Fatal(err)
			}
			for s := 0; s < count; s++ {
				v := randVec(t, rng, nbits)
				copy(lane[s*stride:], v.Bytes())
				if err := seq.Add(v); err != nil {
					t.Fatal(err)
				}
			}
			bat, err := NewAccumulator(nbits)
			if err != nil {
				t.Fatal(err)
			}
			if err := bat.AddBatch(lane, stride, nbits, count); err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(seq.YesCounts(), bat.YesCounts()) || seq.N() != bat.N() {
				t.Fatalf("nbits=%d stride=%d: batch %v/%d vs sequential %v/%d",
					nbits, stride, bat.YesCounts(), bat.N(), seq.YesCounts(), seq.N())
			}
		}
	}
}

// TestAddBatchEdges: empty batches are no-ops, one-slot batches equal one
// Add, and malformed lane geometry is rejected without mutation.
func TestAddBatchEdges(t *testing.T) {
	a, err := NewAccumulator(11)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.AddBatch(nil, 2, 11, 0); err != nil || a.N() != 0 {
		t.Fatalf("empty batch: n=%d err=%v", a.N(), err)
	}
	v, err := OneHot(11, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.AddBatch(v.Bytes(), 2, 11, 1); err != nil {
		t.Fatal(err)
	}
	if a.N() != 1 || a.Yes(3) != 1 {
		t.Fatalf("single-slot batch: n=%d yes(3)=%d", a.N(), a.Yes(3))
	}
	for _, tc := range []struct {
		name          string
		lane          []byte
		stride, nbits int
		count         int
	}{
		{"negative count", make([]byte, 4), 2, 11, -1},
		{"nbits mismatch", make([]byte, 4), 2, 12, 2},
		{"stride below width", make([]byte, 4), 1, 11, 2},
		{"short lane", make([]byte, 3), 2, 11, 2},
	} {
		if err := a.AddBatch(tc.lane, tc.stride, tc.nbits, tc.count); !errors.Is(err, ErrSize) {
			t.Errorf("%s: err=%v", tc.name, err)
		}
	}
	if a.N() != 1 {
		t.Fatalf("rejected batches mutated the accumulator: n=%d", a.N())
	}
}

// TestAddBatchPanicsOnTrailingGarbage: non-lane-aligned widths leave
// slack bits in the final packed byte; a set bit there means the caller
// skipped decoding and must panic, exactly like the per-vector fold.
func TestAddBatchPanicsOnTrailingGarbage(t *testing.T) {
	a, err := NewAccumulator(11)
	if err != nil {
		t.Fatal(err)
	}
	lane := []byte{0x01, 0x08} // bit 11 set: past Len()
	defer func() {
		if recover() == nil {
			t.Fatal("AddBatch accepted trailing garbage bits")
		}
	}()
	_ = a.AddBatch(lane, 2, 11, 1)
}

// TestShardedAddBatch: one lock per batch, same counts as per-message
// sharded adds, all-or-nothing after close, shard index validated.
func TestShardedAddBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	const nbits, count = 13, 6
	nbytes := (nbits + 7) / 8
	lane := make([]byte, count*nbytes)
	ref, err := NewShardedAccumulator(nbits, 4)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < count; s++ {
		v := randVec(t, rng, nbits)
		copy(lane[s*nbytes:], v.Bytes())
		if err := ref.Add(s%4, v); err != nil {
			t.Fatal(err)
		}
	}
	sh, err := NewShardedAccumulator(nbits, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := sh.AddBatch(4, lane, nbytes, nbits, count); !errors.Is(err, ErrSize) {
		t.Fatalf("out-of-range shard: %v", err)
	}
	if err := sh.AddBatch(1, lane, nbytes, nbits, count); err != nil {
		t.Fatal(err)
	}
	mRef, err := ref.CloseAndMerge()
	if err != nil {
		t.Fatal(err)
	}
	mSh, err := sh.CloseAndMerge()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(mRef.YesCounts(), mSh.YesCounts()) || mRef.N() != mSh.N() {
		t.Fatalf("sharded batch counts diverge: %v vs %v", mSh.YesCounts(), mRef.YesCounts())
	}
	if err := sh.AddBatch(1, lane, nbytes, nbits, count); !errors.Is(err, ErrClosed) {
		t.Fatalf("closed shard accepted a batch: %v", err)
	}
}

// TestBatchEncoderShape: the encoder fixes (query, width) at the first
// Append and rejects mixed-query and mixed-width batches at encode time —
// the constraint that makes fixed-stride lanes a same-query guarantee.
func TestBatchEncoderShape(t *testing.T) {
	vec5, err := OneHot(5, 2)
	if err != nil {
		t.Fatal(err)
	}
	vec9, err := OneHot(9, 8)
	if err != nil {
		t.Fatal(err)
	}
	var e BatchEncoder
	if e.Stride() != 0 || e.Count() != 0 {
		t.Fatalf("zero-value encoder: stride=%d count=%d", e.Stride(), e.Count())
	}
	if err := e.Append(&Message{QueryID: 7, Epoch: 1, Answer: vec5}); err != nil {
		t.Fatal(err)
	}
	// Epochs may vary freely within a batch.
	if err := e.Append(&Message{QueryID: 7, Epoch: 2, Answer: vec5}); err != nil {
		t.Fatal(err)
	}
	if err := e.Append(&Message{QueryID: 8, Epoch: 1, Answer: vec5}); !errors.Is(err, ErrBatchShape) {
		t.Fatalf("mixed query: %v", err)
	}
	if err := e.Append(&Message{QueryID: 7, Epoch: 1, Answer: vec9}); !errors.Is(err, ErrBatchShape) {
		t.Fatalf("mixed width: %v", err)
	}
	if err := e.Append(&Message{QueryID: 7, Epoch: 1}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("nil answer: %v", err)
	}
	if e.Count() != 2 || e.Stride() != EncodedLen(5) {
		t.Fatalf("rejected messages altered the lane: count=%d stride=%d", e.Count(), e.Stride())
	}
	// Every accepted slot decodes back to its message.
	lane := e.Bytes()
	if len(lane) != e.Count()*e.Stride() {
		t.Fatalf("lane length %d for %d×%d", len(lane), e.Count(), e.Stride())
	}
	for k := 0; k < e.Count(); k++ {
		var m Message
		if err := m.UnmarshalBinary(lane[k*e.Stride() : (k+1)*e.Stride()]); err != nil {
			t.Fatal(err)
		}
		if m.QueryID != 7 || m.Epoch != uint64(k+1) || !m.Answer.Equal(vec5) {
			t.Fatalf("slot %d decoded to %+v", k, m)
		}
	}
	// Reset clears the shape: a different query is welcome again.
	e.Reset()
	if err := e.Append(&Message{QueryID: 9, Epoch: 3, Answer: vec9}); err != nil {
		t.Fatal(err)
	}
	if e.Stride() != EncodedLen(9) || e.Count() != 1 {
		t.Fatalf("post-reset shape: count=%d stride=%d", e.Count(), e.Stride())
	}
	// The answer lane inside each slot sits at HeaderLen, the offset the
	// batch accumulate path relies on.
	raw := e.Bytes()
	if !bytes.Equal(raw[HeaderLen:HeaderLen+2], vec9.Bytes()) {
		t.Fatal("answer bytes not at HeaderLen inside the slot")
	}
}
