package answer

import (
	"errors"
	"fmt"
	"sync"
)

// ErrClosed reports an Add against an accumulator that has already been
// closed and merged; the caller decides how to account for the answer
// (the aggregator counts it as late-dropped).
var ErrClosed = errors.New("answer: accumulator closed")

// ShardedAccumulator splits per-bucket "Yes" counting across N
// independently locked shards so goroutines decoding different messages
// (routed by message-ID hash) never contend on one counter. Merging the
// shards recovers exactly the counts a single Accumulator would hold:
// Add is integer addition, so the merged result is independent of how
// answers were distributed over shards or interleaved in time.
type ShardedAccumulator struct {
	nbuckets int
	shards   []accShard
}

type accShard struct {
	mu     sync.Mutex
	acc    *Accumulator
	closed bool
	_      [47]byte // pad the struct to 64 bytes so shard locks don't false-share
}

// NewShardedAccumulator returns an accumulator for nbuckets buckets
// split over shards ≥ 1 locks.
func NewShardedAccumulator(nbuckets, shards int) (*ShardedAccumulator, error) {
	if shards < 1 {
		return nil, fmt.Errorf("%w: %d shards", ErrSize, shards)
	}
	s := &ShardedAccumulator{nbuckets: nbuckets, shards: make([]accShard, shards)}
	for i := range s.shards {
		acc, err := NewAccumulator(nbuckets)
		if err != nil {
			return nil, err
		}
		s.shards[i].acc = acc
	}
	return s, nil
}

// Shards returns the shard count.
func (s *ShardedAccumulator) Shards() int { return len(s.shards) }

// Add folds one answer vector into shard i (callers route by message-ID
// hash; any stable assignment yields identical merged counts). Safe for
// concurrent use across shards and within one shard. After
// CloseAndMerge it fails with ErrClosed instead of mutating counts the
// merge no longer sees.
func (s *ShardedAccumulator) Add(shard int, v *BitVector) error {
	if shard < 0 || shard >= len(s.shards) {
		return fmt.Errorf("%w: shard %d of %d", ErrSize, shard, len(s.shards))
	}
	sh := &s.shards[shard]
	sh.mu.Lock()
	if sh.closed {
		sh.mu.Unlock()
		return ErrClosed
	}
	err := sh.acc.Add(v)
	sh.mu.Unlock()
	return err
}

// Merge combines all shards into one fresh Accumulator — the counts a
// single-lock Accumulator fed the same vectors would hold.
func (s *ShardedAccumulator) Merge() (*Accumulator, error) {
	return s.merge(false)
}

// CloseAndMerge merges like Merge but also marks every shard closed
// under its own lock, so an Add racing the merge deterministically
// either lands before its shard is folded in or fails with ErrClosed —
// it can never mutate counts the merge has already read.
func (s *ShardedAccumulator) CloseAndMerge() (*Accumulator, error) {
	return s.merge(true)
}

func (s *ShardedAccumulator) merge(close bool) (*Accumulator, error) {
	out, err := NewAccumulator(s.nbuckets)
	if err != nil {
		return nil, err
	}
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		if close {
			sh.closed = true
		}
		err := out.Merge(sh.acc)
		sh.mu.Unlock()
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// AddCounts folds raw per-bucket counts into one shard — the restore
// path for a checkpointed window. Like Add it fails with ErrClosed once
// the shard has been merged away.
func (s *ShardedAccumulator) AddCounts(shard int, yes []int, n int) error {
	if shard < 0 || shard >= len(s.shards) {
		return fmt.Errorf("%w: shard %d of %d", ErrSize, shard, len(s.shards))
	}
	sh := &s.shards[shard]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.closed {
		return ErrClosed
	}
	return sh.acc.AddCounts(yes, n)
}

// N returns the total number of answers across all shards.
func (s *ShardedAccumulator) N() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		n += sh.acc.N()
		sh.mu.Unlock()
	}
	return n
}
