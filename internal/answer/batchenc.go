package answer

import (
	"errors"
	"fmt"
)

// ErrBatchShape reports a message that does not fit the shape of the
// batch it is being encoded into: a columnar batch has exactly one
// query and one stride, so mixed-query (or mixed-width) batches are
// rejected at encode time rather than detected downstream.
var ErrBatchShape = errors.New("answer: batch shape mismatch")

// BatchEncoder packs same-query messages into one contiguous
// fixed-stride lane, the payload column of the wire-v2 frame and the
// input shape of xorcrypt's batch split. The first Append fixes the
// batch shape (QueryID and bucket count); epochs may vary freely, since
// each slot carries its own epoch in the message header.
type BatchEncoder struct {
	buf   []byte
	qid   uint64
	nbits int
	count int
}

// Append encodes m at the end of the lane.
func (e *BatchEncoder) Append(m *Message) error {
	if m.Answer == nil {
		return fmt.Errorf("%w: nil answer", ErrCorrupt)
	}
	if e.count == 0 {
		e.qid = m.QueryID
		e.nbits = m.Answer.Len()
	} else if m.QueryID != e.qid {
		return fmt.Errorf("%w: query %d in a batch for query %d", ErrBatchShape, m.QueryID, e.qid)
	} else if m.Answer.Len() != e.nbits {
		return fmt.Errorf("%w: %d answer bits in a batch of %d-bit answers", ErrBatchShape, m.Answer.Len(), e.nbits)
	}
	var err error
	e.buf, err = m.AppendBinary(e.buf)
	if err != nil {
		return err
	}
	e.count++
	return nil
}

// Bytes returns the packed lane: Count() slots of Stride() bytes each.
// The slice is valid until the next Append or Reset.
func (e *BatchEncoder) Bytes() []byte { return e.buf }

// Count returns the number of messages in the lane.
func (e *BatchEncoder) Count() int { return e.count }

// Stride returns the wire length of one slot (0 while empty).
func (e *BatchEncoder) Stride() int {
	if e.count == 0 {
		return 0
	}
	return EncodedLen(e.nbits)
}

// Reset empties the encoder, keeping the lane's backing buffer for
// reuse across batches.
func (e *BatchEncoder) Reset() {
	e.buf = e.buf[:0]
	e.qid = 0
	e.nbits = 0
	e.count = 0
}
