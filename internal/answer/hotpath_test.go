package answer

import (
	"bytes"
	"testing"
)

// FuzzMessageRoundTrip checks that the append-encode and both decode
// paths (copying and zero-copy view) agree for arbitrary answers, and
// that corrupt wire bytes are rejected identically by both.
func FuzzMessageRoundTrip(f *testing.F) {
	f.Add(uint64(1), uint64(0), []byte{0x08}, 4)
	f.Add(uint64(9), uint64(42), []byte{0xFF, 0x01}, 9)
	f.Add(uint64(0), uint64(0), []byte{}, 0)
	f.Fuzz(func(t *testing.T, qid, epoch uint64, raw []byte, nbits int) {
		if nbits <= 0 || nbits > 1<<12 || (nbits+7)/8 != len(raw) {
			// Treat raw as wire bytes instead: both decoders must agree
			// on rejection without panicking.
			var a, b Message
			var vec BitVector
			errA := a.UnmarshalBinary(append([]byte(nil), raw...))
			errB := b.UnmarshalBinaryView(append([]byte(nil), raw...), &vec)
			if (errA == nil) != (errB == nil) {
				t.Fatalf("decode paths disagree: copy=%v view=%v", errA, errB)
			}
			return
		}
		vec0, err := FromBytes(raw, nbits)
		if err != nil {
			t.Fatal(err)
		}
		m := Message{QueryID: qid, Epoch: epoch, Answer: vec0}
		wire, err := m.AppendBinary(nil)
		if err != nil {
			t.Fatal(err)
		}
		legacy, err := m.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(wire, legacy) {
			t.Fatal("AppendBinary and MarshalBinary disagree")
		}

		var viaCopy Message
		if err := viaCopy.UnmarshalBinary(wire); err != nil {
			t.Fatal(err)
		}
		var viaView Message
		var view BitVector
		wire2 := append([]byte(nil), wire...)
		if err := viaView.UnmarshalBinaryView(wire2, &view); err != nil {
			t.Fatal(err)
		}
		if viaCopy.QueryID != qid || viaCopy.Epoch != epoch || viaView.QueryID != qid || viaView.Epoch != epoch {
			t.Fatal("header fields did not round-trip")
		}
		if !viaCopy.Answer.Equal(viaView.Answer) {
			t.Fatalf("copy decode %s != view decode %s", viaCopy.Answer, viaView.Answer)
		}
		if !viaCopy.Answer.Equal(vec0) {
			t.Fatalf("round-trip changed answer: %s -> %s", vec0, viaCopy.Answer)
		}
		if viaCopy.Answer.PopCount() != viaView.Answer.PopCount() {
			t.Fatal("popcounts disagree between decode paths")
		}
	})
}

// TestUnmarshalBinaryViewZeroCopy pins that the view decode aliases the
// wire bytes rather than copying them.
func TestUnmarshalBinaryViewZeroCopy(t *testing.T) {
	vec, _ := OneHot(11, 3)
	wire, err := (&Message{QueryID: 1, Epoch: 2, Answer: vec}).AppendBinary(nil)
	if err != nil {
		t.Fatal(err)
	}
	var m Message
	var view BitVector
	if err := m.UnmarshalBinaryView(wire, &view); err != nil {
		t.Fatal(err)
	}
	if &m.Answer.Bytes()[0] != &wire[msgHeaderLen] {
		t.Fatal("view decode copied the payload")
	}
	// Mutating the wire shows through the view (aliasing, by contract).
	wire[msgHeaderLen] ^= 0x01
	if got, _ := m.Answer.Get(0); !got {
		t.Fatal("view does not alias the wire bytes")
	}
}

// TestViewMasksTrailingGarbage: a decrypted-garbage payload with bits
// set past nbits must come out of the view decode with the invariant
// restored, so PopCount/Equal stay exact.
func TestViewMasksTrailingGarbage(t *testing.T) {
	vec, _ := OneHot(9, 0)
	wire, err := (&Message{QueryID: 1, Epoch: 0, Answer: vec}).AppendBinary(nil)
	if err != nil {
		t.Fatal(err)
	}
	wire[len(wire)-1] |= 0xF0 // garbage past bit 9
	var m Message
	var view BitVector
	if err := m.UnmarshalBinaryView(wire, &view); err != nil {
		t.Fatal(err)
	}
	if n := m.Answer.PopCount(); n != 1 {
		t.Fatalf("PopCount = %d after masking, want 1", n)
	}
}

// TestAccumulatorWordLevelMatchesBitLevel cross-checks the set-bit-walk
// accumulate against a straightforward per-bit reference.
func TestAccumulatorWordLevelMatchesBitLevel(t *testing.T) {
	const nbits = 77
	patterns := [][]byte{}
	for seed := byte(1); seed <= 20; seed++ {
		raw := make([]byte, (nbits+7)/8)
		x := seed
		for i := range raw {
			x = x*31 + 17
			raw[i] = x
		}
		patterns = append(patterns, raw)
	}
	fast, _ := NewAccumulator(nbits)
	ref := make([]int, nbits)
	for _, raw := range patterns {
		v, err := FromBytes(raw, nbits)
		if err != nil {
			t.Fatal(err)
		}
		if err := fast.Add(v); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < nbits; i++ {
			if set, _ := v.Get(i); set {
				ref[i]++
			}
		}
	}
	for i := 0; i < nbits; i++ {
		if fast.Yes(i) != ref[i] {
			t.Fatalf("bucket %d: fast %d, ref %d", i, fast.Yes(i), ref[i])
		}
	}
	// Remove must invert Add exactly.
	for _, raw := range patterns {
		v, _ := FromBytes(raw, nbits)
		if err := fast.Remove(v); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < nbits; i++ {
		if fast.Yes(i) != 0 {
			t.Fatalf("bucket %d: %d after removing everything", i, fast.Yes(i))
		}
	}
	if fast.N() != 0 {
		t.Fatalf("N = %d after removing everything", fast.N())
	}
}

// TestAccumulatorAddZeroAllocs pins the allocation contract of the
// accumulate hot path.
func TestAccumulatorAddZeroAllocs(t *testing.T) {
	vec, _ := OneHot(11, 4)
	acc, _ := NewAccumulator(11)
	if allocs := testing.AllocsPerRun(200, func() {
		if err := acc.Add(vec); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Fatalf("Accumulator.Add: %v allocs/op, want 0", allocs)
	}
}

// TestPopCountEqualWordLevel exercises the byte/word kernels across
// sizes that straddle the 8-byte boundary, plus the Reset helper.
func TestPopCountEqualWordLevel(t *testing.T) {
	for _, nbits := range []int{1, 7, 8, 9, 63, 64, 65, 128, 131} {
		v, err := NewBitVector(nbits)
		if err != nil {
			t.Fatal(err)
		}
		want := 0
		for i := 0; i < nbits; i += 3 {
			if err := v.Set(i, true); err != nil {
				t.Fatal(err)
			}
			want++
		}
		if got := v.PopCount(); got != want {
			t.Errorf("nbits=%d: PopCount = %d, want %d", nbits, got, want)
		}
		c := v.Clone()
		if !v.Equal(c) {
			t.Errorf("nbits=%d: clone not Equal", nbits)
		}
		if nbits > 1 {
			c.Set(1, true)
			v.Set(1, false)
			if v.Equal(c) {
				t.Errorf("nbits=%d: Equal missed a differing bit", nbits)
			}
		}
		v.Reset()
		if v.PopCount() != 0 {
			t.Errorf("nbits=%d: PopCount after Reset = %d", nbits, v.PopCount())
		}
		if v.Len() != nbits {
			t.Errorf("nbits=%d: Reset changed Len to %d", nbits, v.Len())
		}
	}
}
