package answer

import (
	"errors"
	"sync"
	"testing"
	"unsafe"
)

// The shard struct is padded so adjacent shard locks sit on separate
// cache lines.
func TestAccShardCacheLineSize(t *testing.T) {
	if size := unsafe.Sizeof(accShard{}); size%64 != 0 {
		t.Errorf("accShard is %d bytes; want a multiple of 64", size)
	}
}

// Concurrent sharded adds must merge to exactly the counts a single
// accumulator sees, for any shard count and interleaving.
func TestShardedAccumulatorMatchesSequential(t *testing.T) {
	const nbuckets = 7
	const vectors = 500
	vecs := make([]*BitVector, vectors)
	for i := range vecs {
		v, err := OneHot(nbuckets, i%nbuckets)
		if err != nil {
			t.Fatal(err)
		}
		if i%3 == 0 {
			// Some multi-bit vectors, as randomized response produces.
			if err := v.Set((i+2)%nbuckets, true); err != nil {
				t.Fatal(err)
			}
		}
		vecs[i] = v
	}

	want, err := NewAccumulator(nbuckets)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range vecs {
		if err := want.Add(v); err != nil {
			t.Fatal(err)
		}
	}

	for _, shards := range []int{1, 2, 8} {
		sharded, err := NewShardedAccumulator(nbuckets, shards)
		if err != nil {
			t.Fatal(err)
		}
		const goroutines = 8
		var wg sync.WaitGroup
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := g; i < vectors; i += goroutines {
					if err := sharded.Add(i%shards, vecs[i]); err != nil {
						t.Error(err)
						return
					}
				}
			}(g)
		}
		wg.Wait()

		if sharded.N() != want.N() {
			t.Errorf("shards=%d: N = %d, want %d", shards, sharded.N(), want.N())
		}
		merged, err := sharded.Merge()
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < nbuckets; i++ {
			if merged.Yes(i) != want.Yes(i) {
				t.Errorf("shards=%d: bucket %d = %d, want %d", shards, i, merged.Yes(i), want.Yes(i))
			}
		}
	}
}

// After CloseAndMerge, racing adds must be refused with ErrClosed
// rather than silently mutating counts the merge no longer sees.
func TestShardedAccumulatorCloseAndMerge(t *testing.T) {
	s, err := NewShardedAccumulator(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	v, _ := OneHot(3, 1)
	if err := s.Add(0, v); err != nil {
		t.Fatal(err)
	}
	merged, err := s.CloseAndMerge()
	if err != nil {
		t.Fatal(err)
	}
	if merged.N() != 1 || merged.Yes(1) != 1 {
		t.Errorf("merged N=%d yes(1)=%d, want 1/1", merged.N(), merged.Yes(1))
	}
	for shard := 0; shard < 2; shard++ {
		if err := s.Add(shard, v); !errors.Is(err, ErrClosed) {
			t.Errorf("Add to closed shard %d = %v, want ErrClosed", shard, err)
		}
	}
	// Plain Merge leaves the accumulator open.
	s2, _ := NewShardedAccumulator(3, 2)
	if _, err := s2.Merge(); err != nil {
		t.Fatal(err)
	}
	if err := s2.Add(0, v); err != nil {
		t.Errorf("Add after plain Merge = %v, want nil", err)
	}
}

func TestShardedAccumulatorValidation(t *testing.T) {
	if _, err := NewShardedAccumulator(3, 0); err == nil {
		t.Error("expected error for zero shards")
	}
	s, err := NewShardedAccumulator(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if s.Shards() != 2 {
		t.Errorf("Shards() = %d", s.Shards())
	}
	v, _ := OneHot(3, 0)
	if err := s.Add(-1, v); err == nil {
		t.Error("expected error for negative shard")
	}
	if err := s.Add(2, v); err == nil {
		t.Error("expected error for out-of-range shard")
	}
	wrong, _ := OneHot(4, 0)
	if err := s.Add(0, wrong); err == nil {
		t.Error("expected size mismatch error")
	}
}
