package answer

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Message is the plaintext a client produces per epoch (paper Eq. 9):
// the query identifier concatenated with the randomized answer vector.
// Its binary encoding is the unit the XOR-based encryption splits into
// shares, so Marshal/Unmarshal must be deterministic and fixed-length
// for a given bucket count (ciphertext and key shares must be
// indistinguishable, which requires uniform message lengths).
type Message struct {
	QueryID uint64
	Epoch   uint64
	Answer  *BitVector
}

// wire layout: qid(8) | epoch(8) | nbits(4) | packed answer bytes.
const msgHeaderLen = 8 + 8 + 4

// ErrCorrupt reports a malformed wire message.
var ErrCorrupt = errors.New("answer: corrupt message")

// EncodedLen returns the wire length of a message carrying nbits answer
// bits.
func EncodedLen(nbits int) int {
	return msgHeaderLen + (nbits+7)/8
}

// MarshalBinary encodes the message into its fixed wire layout.
func (m *Message) MarshalBinary() ([]byte, error) {
	if m.Answer == nil {
		return nil, fmt.Errorf("%w: nil answer", ErrCorrupt)
	}
	buf := make([]byte, EncodedLen(m.Answer.Len()))
	binary.BigEndian.PutUint64(buf[0:8], m.QueryID)
	binary.BigEndian.PutUint64(buf[8:16], m.Epoch)
	binary.BigEndian.PutUint32(buf[16:20], uint32(m.Answer.Len()))
	copy(buf[msgHeaderLen:], m.Answer.Bytes())
	return buf, nil
}

// UnmarshalBinary decodes a wire message produced by MarshalBinary.
func (m *Message) UnmarshalBinary(data []byte) error {
	if len(data) < msgHeaderLen {
		return fmt.Errorf("%w: %d bytes", ErrCorrupt, len(data))
	}
	nbits := int(binary.BigEndian.Uint32(data[16:20]))
	if nbits <= 0 || nbits > 1<<24 {
		return fmt.Errorf("%w: %d answer bits", ErrCorrupt, nbits)
	}
	if len(data) != EncodedLen(nbits) {
		return fmt.Errorf("%w: %d bytes for %d bits", ErrCorrupt, len(data), nbits)
	}
	v, err := FromBytes(data[msgHeaderLen:], nbits)
	if err != nil {
		return err
	}
	m.QueryID = binary.BigEndian.Uint64(data[0:8])
	m.Epoch = binary.BigEndian.Uint64(data[8:16])
	m.Answer = v
	return nil
}

// Accumulator folds decoded answer vectors into per-bucket "Yes" counts,
// the Ry of Eq. 5, tracked per bucket alongside the response total N.
type Accumulator struct {
	yes []int
	n   int
}

// NewAccumulator returns an accumulator for nbuckets buckets.
func NewAccumulator(nbuckets int) (*Accumulator, error) {
	if nbuckets <= 0 {
		return nil, fmt.Errorf("%w: %d buckets", ErrSize, nbuckets)
	}
	return &Accumulator{yes: make([]int, nbuckets)}, nil
}

// Add folds one answer vector in.
func (a *Accumulator) Add(v *BitVector) error {
	if v.Len() != len(a.yes) {
		return fmt.Errorf("%w: vector %d bits, accumulator %d buckets", ErrSize, v.Len(), len(a.yes))
	}
	for i := 0; i < v.Len(); i++ {
		set, _ := v.Get(i)
		if set {
			a.yes[i]++
		}
	}
	a.n++
	return nil
}

// Remove subtracts a previously added vector (used by sliding windows
// when old epochs fall out of the window).
func (a *Accumulator) Remove(v *BitVector) error {
	if v.Len() != len(a.yes) {
		return fmt.Errorf("%w: vector %d bits, accumulator %d buckets", ErrSize, v.Len(), len(a.yes))
	}
	if a.n == 0 {
		return fmt.Errorf("%w: removing from empty accumulator", ErrSize)
	}
	for i := 0; i < v.Len(); i++ {
		set, _ := v.Get(i)
		if set {
			a.yes[i]--
		}
	}
	a.n--
	return nil
}

// Merge folds another accumulator in (same bucket count required).
func (a *Accumulator) Merge(o *Accumulator) error {
	if len(a.yes) != len(o.yes) {
		return fmt.Errorf("%w: %d vs %d buckets", ErrSize, len(a.yes), len(o.yes))
	}
	for i, y := range o.yes {
		a.yes[i] += y
	}
	a.n += o.n
	return nil
}

// Yes returns the observed "Yes" count for bucket i.
func (a *Accumulator) Yes(i int) int { return a.yes[i] }

// N returns the number of answers folded in.
func (a *Accumulator) N() int { return a.n }

// Buckets returns the bucket count.
func (a *Accumulator) Buckets() int { return len(a.yes) }

// YesCounts returns a copy of all per-bucket counts.
func (a *Accumulator) YesCounts() []int {
	out := make([]int, len(a.yes))
	copy(out, a.yes)
	return out
}
