package answer

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/bits"
)

// Message is the plaintext a client produces per epoch (paper Eq. 9):
// the query identifier concatenated with the randomized answer vector.
// Its binary encoding is the unit the XOR-based encryption splits into
// shares, so Marshal/Unmarshal must be deterministic and fixed-length
// for a given bucket count (ciphertext and key shares must be
// indistinguishable, which requires uniform message lengths).
type Message struct {
	QueryID uint64
	Epoch   uint64
	Answer  *BitVector
}

// wire layout: qid(8) | epoch(8) | nbits(4) | packed answer bytes.
const msgHeaderLen = 8 + 8 + 4

// HeaderLen is the fixed wire-header length preceding the packed answer
// bits in every encoded Message. Batch consumers use it to locate the
// answer lane inside a packed slot: in a batch of same-query messages at
// stride EncodedLen(nbits), slot k's answer bytes start at
// k*stride+HeaderLen.
const HeaderLen = msgHeaderLen

// ErrCorrupt reports a malformed wire message.
var ErrCorrupt = errors.New("answer: corrupt message")

// EncodedLen returns the wire length of a message carrying nbits answer
// bits.
func EncodedLen(nbits int) int {
	return msgHeaderLen + (nbits+7)/8
}

// MarshalBinary encodes the message into its fixed wire layout.
func (m *Message) MarshalBinary() ([]byte, error) {
	return m.AppendBinary(make([]byte, 0, EncodedLen(m.answerLen())))
}

func (m *Message) answerLen() int {
	if m.Answer == nil {
		return 0
	}
	return m.Answer.Len()
}

// AppendBinary appends the wire encoding to dst and returns the extended
// slice — the allocation-free encode path: a caller passing
// buf[:0] with sufficient capacity reuses one buffer across epochs.
func (m *Message) AppendBinary(dst []byte) ([]byte, error) {
	if m.Answer == nil {
		return nil, fmt.Errorf("%w: nil answer", ErrCorrupt)
	}
	dst = binary.BigEndian.AppendUint64(dst, m.QueryID)
	dst = binary.BigEndian.AppendUint64(dst, m.Epoch)
	dst = binary.BigEndian.AppendUint32(dst, uint32(m.Answer.Len()))
	return append(dst, m.Answer.Bytes()...), nil
}

// UnmarshalBinary decodes a wire message produced by MarshalBinary. The
// decoded Answer owns a copy of the payload; use UnmarshalBinaryView on
// the hot path to decode without copying.
func (m *Message) UnmarshalBinary(data []byte) error {
	nbits, err := checkWire(data)
	if err != nil {
		return err
	}
	v, err := FromBytes(data[msgHeaderLen:], nbits)
	if err != nil {
		return err
	}
	m.QueryID = binary.BigEndian.Uint64(data[0:8])
	m.Epoch = binary.BigEndian.Uint64(data[8:16])
	m.Answer = v
	return nil
}

// UnmarshalBinaryView decodes like UnmarshalBinary but without copying:
// vec is repointed at the answer bytes inside data (masking trailing
// bits in place) and installed as m.Answer. The caller owns data and
// must keep it unmodified for as long as it uses m — the zero-copy leg
// of the buffer-ownership contract (DESIGN.md §6).
func (m *Message) UnmarshalBinaryView(data []byte, vec *BitVector) error {
	nbits, err := checkWire(data)
	if err != nil {
		return err
	}
	if err := vec.SetView(data[msgHeaderLen:], nbits); err != nil {
		return err
	}
	m.QueryID = binary.BigEndian.Uint64(data[0:8])
	m.Epoch = binary.BigEndian.Uint64(data[8:16])
	m.Answer = vec
	return nil
}

// checkWire validates the fixed layout and returns the answer bit count.
func checkWire(data []byte) (int, error) {
	if len(data) < msgHeaderLen {
		return 0, fmt.Errorf("%w: %d bytes", ErrCorrupt, len(data))
	}
	nbits := int(binary.BigEndian.Uint32(data[16:20]))
	if nbits <= 0 || nbits > 1<<24 {
		return 0, fmt.Errorf("%w: %d answer bits", ErrCorrupt, nbits)
	}
	if len(data) != EncodedLen(nbits) {
		return 0, fmt.Errorf("%w: %d bytes for %d bits", ErrCorrupt, len(data), nbits)
	}
	return nbits, nil
}

// Accumulator folds decoded answer vectors into per-bucket "Yes" counts,
// the Ry of Eq. 5, tracked per bucket alongside the response total N.
type Accumulator struct {
	yes []int
	n   int
}

// NewAccumulator returns an accumulator for nbuckets buckets.
func NewAccumulator(nbuckets int) (*Accumulator, error) {
	if nbuckets <= 0 {
		return nil, fmt.Errorf("%w: %d buckets", ErrSize, nbuckets)
	}
	return &Accumulator{yes: make([]int, nbuckets)}, nil
}

// Add folds one answer vector in. It walks set bits only — whole zero
// bytes are skipped and set bits are found with a trailing-zeros scan —
// so the cost tracks the answer's popcount (one for a truthful one-hot
// answer), not its bucket count. The zeroed-trailing-bits invariant
// guarantees every scanned bit index is a valid bucket.
func (a *Accumulator) Add(v *BitVector) error {
	if err := a.fold(v, 1); err != nil {
		return err
	}
	a.n++
	return nil
}

// Remove subtracts a previously added vector (used by sliding windows
// when old epochs fall out of the window).
func (a *Accumulator) Remove(v *BitVector) error {
	if a.n == 0 {
		return fmt.Errorf("%w: removing from empty accumulator", ErrSize)
	}
	if err := a.fold(v, -1); err != nil {
		return err
	}
	a.n--
	return nil
}

// fold adds delta to the count of every bucket whose bit is set.
func (a *Accumulator) fold(v *BitVector, delta int) error {
	if v.Len() != len(a.yes) {
		return fmt.Errorf("%w: vector %d bits, accumulator %d buckets", ErrSize, v.Len(), len(a.yes))
	}
	v.assertTrailingZeros()
	for bi, b := range v.bits {
		for ; b != 0; b &= b - 1 {
			a.yes[bi*8+bits.TrailingZeros8(b)] += delta
		}
	}
	return nil
}

// Merge folds another accumulator in (same bucket count required).
func (a *Accumulator) Merge(o *Accumulator) error {
	if len(a.yes) != len(o.yes) {
		return fmt.Errorf("%w: %d vs %d buckets", ErrSize, len(a.yes), len(o.yes))
	}
	for i, y := range o.yes {
		a.yes[i] += y
	}
	a.n += o.n
	return nil
}

// Yes returns the observed "Yes" count for bucket i.
func (a *Accumulator) Yes(i int) int { return a.yes[i] }

// N returns the number of answers folded in.
func (a *Accumulator) N() int { return a.n }

// Buckets returns the bucket count.
func (a *Accumulator) Buckets() int { return len(a.yes) }

// YesCounts returns a copy of all per-bucket counts.
func (a *Accumulator) YesCounts() []int {
	out := make([]int, len(a.yes))
	copy(out, a.yes)
	return out
}

// AddCounts folds raw per-bucket counts and a response total in — the
// restore half of YesCounts/N, used when a checkpointed window is
// rebuilt after a crash. Counts must be non-negative and no bucket may
// exceed the total (each answer contributes at most one "Yes" per
// bucket).
func (a *Accumulator) AddCounts(yes []int, n int) error {
	if len(yes) != len(a.yes) {
		return fmt.Errorf("%w: %d counts for %d buckets", ErrSize, len(yes), len(a.yes))
	}
	if n < 0 {
		return fmt.Errorf("%w: %d responses", ErrSize, n)
	}
	for i, y := range yes {
		if y < 0 || y > n {
			return fmt.Errorf("%w: bucket %d count %d of %d responses", ErrSize, i, y, n)
		}
		a.yes[i] += y
	}
	a.n += n
	return nil
}
