package answer

import (
	"privapprox/internal/telemetry"
)

// Package-level kernel counter for the accumulate plane, incremented
// at batch granularity only (AddBatch); the per-message Add stays
// untouched so the single-share submit tail pays nothing. A process
// registers it with telemetry.Registry.RegisterSource
// (telemetry.SourceFunc(Metrics)).
var accumulatedBatchVectors telemetry.Counter

// Metrics appends the package's kernel counters as telemetry samples.
func Metrics(dst []telemetry.Sample) []telemetry.Sample {
	return append(dst, telemetry.Sample{
		Name:  "privapprox_answer_accumulated_batch_vectors_total",
		Value: float64(accumulatedBatchVectors.Load()),
		Kind:  telemetry.KindCounter,
	})
}
