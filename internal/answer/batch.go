package answer

import (
	"fmt"
	"math/bits"
)

// This file is the batch-granular half of the accumulate kernel: where
// Add folds one decoded vector per call, AddBatch strides a contiguous
// lane of count decoded messages and folds every answer in one pass,
// entering the shard lock (ShardedAccumulator.AddBatch) once per batch
// instead of once per message. Folding is integer addition, so a batch
// fold is exactly equivalent to count sequential Add calls.

// AddBatch folds count answer vectors laid out at a fixed stride inside
// lane: slot s occupies lane[s*stride : s*stride+ceil(nbits/8)]. Every
// slot must satisfy the zeroed-trailing-bits invariant (SetView and
// FromBytes establish it; the aggregator decodes each slot before
// accumulating) — like fold, a violation panics rather than silently
// miscounting buckets.
func (a *Accumulator) AddBatch(lane []byte, stride, nbits, count int) error {
	nbytes, err := a.checkBatch(lane, stride, nbits, count)
	if err != nil || count == 0 {
		return err
	}
	mask := trailingMask(nbits)
	yes := a.yes
	for s := 0; s < count; s++ {
		slot := lane[s*stride : s*stride+nbytes]
		if slot[nbytes-1]&^mask != 0 {
			panic("answer: BitVector trailing bits past Len() are set")
		}
		for bi, b := range slot {
			for ; b != 0; b &= b - 1 {
				yes[bi*8+bits.TrailingZeros8(b)]++
			}
		}
	}
	a.n += count
	accumulatedBatchVectors.Add(int64(count))
	return nil
}

// checkBatch validates a lane description and returns the packed byte
// width of one answer vector.
func (a *Accumulator) checkBatch(lane []byte, stride, nbits, count int) (int, error) {
	if count < 0 {
		return 0, fmt.Errorf("%w: batch of %d answers", ErrSize, count)
	}
	if nbits != len(a.yes) {
		return 0, fmt.Errorf("%w: vector %d bits, accumulator %d buckets", ErrSize, nbits, len(a.yes))
	}
	if count == 0 {
		return 0, nil
	}
	nbytes := (nbits + 7) / 8
	if stride < nbytes {
		return 0, fmt.Errorf("%w: stride %d below %d answer bytes", ErrSize, stride, nbytes)
	}
	if need := (count-1)*stride + nbytes; len(lane) < need {
		return 0, fmt.Errorf("%w: %d-byte lane for %d slots of stride %d", ErrSize, len(lane), count, stride)
	}
	return nbytes, nil
}

// trailingMask returns the valid-bit mask of the final packed byte.
func trailingMask(nbits int) byte {
	if rem := nbits % 8; rem != 0 {
		return byte(1)<<rem - 1
	}
	return 0xff
}

// AddBatch folds a whole decoded lane into shard i under one lock
// acquisition. It is all-or-nothing: after CloseAndMerge the entire
// batch fails with ErrClosed and no counts are mutated, mirroring the
// per-message Add contract. Any stable shard assignment yields
// identical merged counts, so batch callers may fold a full segment
// into a single shard.
func (s *ShardedAccumulator) AddBatch(shard int, lane []byte, stride, nbits, count int) error {
	if shard < 0 || shard >= len(s.shards) {
		return fmt.Errorf("%w: shard %d of %d", ErrSize, shard, len(s.shards))
	}
	sh := &s.shards[shard]
	sh.mu.Lock()
	if sh.closed {
		sh.mu.Unlock()
		return ErrClosed
	}
	err := sh.acc.AddBatch(lane, stride, nbits, count)
	sh.mu.Unlock()
	return err
}
