package answer

import (
	"testing"
	"testing/quick"
)

func TestBitVectorSetGet(t *testing.T) {
	v, err := NewBitVector(11)
	if err != nil {
		t.Fatal(err)
	}
	if v.Len() != 11 {
		t.Fatalf("Len = %d", v.Len())
	}
	if err := v.Set(2, true); err != nil {
		t.Fatal(err)
	}
	if err := v.Set(10, true); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 11; i++ {
		got, err := v.Get(i)
		if err != nil {
			t.Fatal(err)
		}
		want := i == 2 || i == 10
		if got != want {
			t.Errorf("bit %d = %v, want %v", i, got, want)
		}
	}
	if v.PopCount() != 2 {
		t.Errorf("PopCount = %d", v.PopCount())
	}
	if err := v.Set(2, false); err != nil {
		t.Fatal(err)
	}
	if v.PopCount() != 1 {
		t.Errorf("PopCount after clear = %d", v.PopCount())
	}
}

func TestBitVectorBounds(t *testing.T) {
	if _, err := NewBitVector(0); err == nil {
		t.Error("expected error for 0 bits")
	}
	v, _ := NewBitVector(8)
	if err := v.Set(8, true); err == nil {
		t.Error("expected error for out-of-range set")
	}
	if _, err := v.Get(-1); err == nil {
		t.Error("expected error for negative get")
	}
}

func TestOneHot(t *testing.T) {
	v, err := OneHot(12, 3)
	if err != nil {
		t.Fatal(err)
	}
	if v.PopCount() != 1 {
		t.Fatalf("PopCount = %d", v.PopCount())
	}
	if got, _ := v.Get(3); !got {
		t.Error("bit 3 not set")
	}
	if _, err := OneHot(4, 9); err == nil {
		t.Error("expected error for index past length")
	}
}

func TestFromBitsAndString(t *testing.T) {
	v, err := FromBits([]bool{true, false, true})
	if err != nil {
		t.Fatal(err)
	}
	if got := v.String(); got != "101" {
		t.Errorf("String = %q", got)
	}
	if _, err := FromBits(nil); err == nil {
		t.Error("expected error for empty bits")
	}
}

func TestFromBytesMasksTrailingBits(t *testing.T) {
	raw := []byte{0xFF, 0xFF}
	v, err := FromBytes(raw, 11)
	if err != nil {
		t.Fatal(err)
	}
	if v.PopCount() != 11 {
		t.Errorf("PopCount = %d, want 11", v.PopCount())
	}
	full, _ := FromBits([]bool{true, true, true, true, true, true, true, true, true, true, true})
	if !v.Equal(full) {
		t.Error("masked vector should equal all-ones of 11 bits")
	}
	if _, err := FromBytes(raw, 20); err == nil {
		t.Error("expected size-mismatch error")
	}
}

func TestCloneIsDeep(t *testing.T) {
	v, _ := NewBitVector(8)
	v.Set(1, true)
	c := v.Clone()
	c.Set(2, true)
	if got, _ := v.Get(2); got {
		t.Error("Clone shares backing storage")
	}
	if !v.Equal(v.Clone()) {
		t.Error("clone not equal to original")
	}
}

func TestEqualDifferentLengths(t *testing.T) {
	a, _ := NewBitVector(8)
	b, _ := NewBitVector(9)
	if a.Equal(b) {
		t.Error("different lengths should not be equal")
	}
}

func TestMessageRoundTrip(t *testing.T) {
	f := func(qid, epoch uint64, bits []bool) bool {
		if len(bits) == 0 {
			bits = []bool{true}
		}
		if len(bits) > 4096 {
			bits = bits[:4096]
		}
		v, err := FromBits(bits)
		if err != nil {
			return false
		}
		m := Message{QueryID: qid, Epoch: epoch, Answer: v}
		raw, err := m.MarshalBinary()
		if err != nil {
			return false
		}
		if len(raw) != EncodedLen(len(bits)) {
			return false
		}
		var got Message
		if err := got.UnmarshalBinary(raw); err != nil {
			return false
		}
		return got.QueryID == qid && got.Epoch == epoch && got.Answer.Equal(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMessageUnmarshalRejectsCorrupt(t *testing.T) {
	var m Message
	if err := m.UnmarshalBinary(nil); err == nil {
		t.Error("expected error for empty input")
	}
	if err := m.UnmarshalBinary(make([]byte, 19)); err == nil {
		t.Error("expected error for short input")
	}
	// Valid header but truncated payload.
	v, _ := NewBitVector(64)
	good, _ := (&Message{QueryID: 1, Epoch: 2, Answer: v}).MarshalBinary()
	if err := m.UnmarshalBinary(good[:len(good)-1]); err == nil {
		t.Error("expected error for truncated payload")
	}
	// Absurd bit count.
	bad := append([]byte(nil), good...)
	bad[16], bad[17], bad[18], bad[19] = 0xFF, 0xFF, 0xFF, 0xFF
	if err := m.UnmarshalBinary(bad); err == nil {
		t.Error("expected error for oversized bit count")
	}
}

func TestMarshalNilAnswer(t *testing.T) {
	m := Message{QueryID: 1}
	if _, err := m.MarshalBinary(); err == nil {
		t.Error("expected error for nil answer")
	}
}

func TestEncodedLenUniformPerBucketCount(t *testing.T) {
	// Indistinguishability requires all messages for a given query to
	// have identical length regardless of content.
	a, _ := OneHot(11, 0)
	b, _ := OneHot(11, 10)
	ma, _ := (&Message{QueryID: 9, Epoch: 1, Answer: a}).MarshalBinary()
	mb, _ := (&Message{QueryID: 9, Epoch: 2, Answer: b}).MarshalBinary()
	if len(ma) != len(mb) {
		t.Errorf("lengths differ: %d vs %d", len(ma), len(mb))
	}
}

func TestAccumulator(t *testing.T) {
	acc, err := NewAccumulator(3)
	if err != nil {
		t.Fatal(err)
	}
	v1, _ := FromBits([]bool{true, false, true})
	v2, _ := FromBits([]bool{true, true, false})
	if err := acc.Add(v1); err != nil {
		t.Fatal(err)
	}
	if err := acc.Add(v2); err != nil {
		t.Fatal(err)
	}
	if acc.N() != 2 || acc.Buckets() != 3 {
		t.Fatalf("N=%d buckets=%d", acc.N(), acc.Buckets())
	}
	want := []int{2, 1, 1}
	for i, w := range want {
		if acc.Yes(i) != w {
			t.Errorf("Yes(%d) = %d, want %d", i, acc.Yes(i), w)
		}
	}
	if err := acc.Remove(v1); err != nil {
		t.Fatal(err)
	}
	if acc.N() != 1 || acc.Yes(0) != 1 || acc.Yes(2) != 0 {
		t.Errorf("after remove: N=%d counts=%v", acc.N(), acc.YesCounts())
	}
}

func TestAccumulatorErrors(t *testing.T) {
	if _, err := NewAccumulator(0); err == nil {
		t.Error("expected error for 0 buckets")
	}
	acc, _ := NewAccumulator(2)
	v3, _ := NewBitVector(3)
	if err := acc.Add(v3); err == nil {
		t.Error("expected size mismatch on Add")
	}
	if err := acc.Remove(v3); err == nil {
		t.Error("expected size mismatch on Remove")
	}
	v2, _ := NewBitVector(2)
	if err := acc.Remove(v2); err == nil {
		t.Error("expected error removing from empty accumulator")
	}
}

func TestAccumulatorMerge(t *testing.T) {
	a, _ := NewAccumulator(2)
	b, _ := NewAccumulator(2)
	v, _ := FromBits([]bool{true, true})
	a.Add(v)
	b.Add(v)
	b.Add(v)
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.N() != 3 || a.Yes(0) != 3 {
		t.Errorf("merged N=%d counts=%v", a.N(), a.YesCounts())
	}
	c, _ := NewAccumulator(3)
	if err := a.Merge(c); err == nil {
		t.Error("expected bucket mismatch error")
	}
}
