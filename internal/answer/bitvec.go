// Package answer implements the client answer representation of the
// paper's query model (§2.2, §3.1): an n-bit vector with one bit per
// histogram bucket ("1" when the client's value falls in that bucket),
// and the wire message M = ⟨QID, RandomizedAnswer⟩ of Eq. 9 that the
// XOR-based encryption operates on.
package answer

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"math/bits"
)

// ErrSize reports a size mismatch or an out-of-range bit index.
var ErrSize = errors.New("answer: size mismatch")

// BitVector is a packed vector of n answer bits, bit i corresponding to
// histogram bucket i.
//
// Invariant: bits past nbits in the final byte are always zero. Every
// constructor and mutator maintains it (FromBytes and SetView mask, Set
// bounds-checks), and PopCount/Equal rely on it to run word-at-a-time
// over whole bytes.
type BitVector struct {
	bits  []byte
	nbits int
}

// NewBitVector returns an all-zero vector of n bits.
func NewBitVector(n int) (*BitVector, error) {
	if n <= 0 {
		return nil, fmt.Errorf("%w: %d bits", ErrSize, n)
	}
	return &BitVector{bits: make([]byte, (n+7)/8), nbits: n}, nil
}

// Len returns the number of answer bits.
func (v *BitVector) Len() int { return v.nbits }

// Set assigns bit i.
func (v *BitVector) Set(i int, b bool) error {
	if i < 0 || i >= v.nbits {
		return fmt.Errorf("%w: bit %d of %d", ErrSize, i, v.nbits)
	}
	if b {
		v.bits[i/8] |= 1 << (i % 8)
	} else {
		v.bits[i/8] &^= 1 << (i % 8)
	}
	return nil
}

// Get reads bit i.
func (v *BitVector) Get(i int) (bool, error) {
	if i < 0 || i >= v.nbits {
		return false, fmt.Errorf("%w: bit %d of %d", ErrSize, i, v.nbits)
	}
	return v.bits[i/8]&(1<<(i%8)) != 0, nil
}

// PopCount returns the number of set bits, eight bytes at a time. It
// relies on the zeroed-trailing-bits invariant: whole bytes can be
// counted because no bit past Len() is ever set.
func (v *BitVector) PopCount() int {
	v.assertTrailingZeros()
	n := 0
	b := v.bits
	for len(b) >= 8 {
		n += bits.OnesCount64(binary.LittleEndian.Uint64(b))
		b = b[8:]
	}
	for _, x := range b {
		n += bits.OnesCount8(x)
	}
	return n
}

// assertTrailingZeros checks the package invariant that bits past Len()
// are zero; a violation means a constructor or caller broke the masking
// contract, so it panics rather than silently miscounting.
func (v *BitVector) assertTrailingZeros() {
	if rem := v.nbits % 8; rem != 0 && len(v.bits) > 0 {
		if v.bits[len(v.bits)-1]&^(byte(1)<<rem-1) != 0 {
			panic("answer: BitVector trailing bits past Len() are set")
		}
	}
}

// Bytes exposes the packed backing bytes; the caller must not mutate bits
// past Len(). Randomized response perturbs the vector through this view.
func (v *BitVector) Bytes() []byte { return v.bits }

// Clone returns a deep copy.
func (v *BitVector) Clone() *BitVector {
	bits := make([]byte, len(v.bits))
	copy(bits, v.bits)
	return &BitVector{bits: bits, nbits: v.nbits}
}

// Equal reports whether both vectors have identical length and bits.
// The byte-wise comparison is exact because of the zeroed-trailing-bits
// invariant: equal answer bits imply equal packed bytes.
func (v *BitVector) Equal(o *BitVector) bool {
	return v.nbits == o.nbits && bytes.Equal(v.bits, o.bits)
}

// Reset clears every bit, keeping the backing buffer.
func (v *BitVector) Reset() {
	clear(v.bits)
}

// FromBits builds a vector from a bool slice.
func FromBits(bits []bool) (*BitVector, error) {
	v, err := NewBitVector(len(bits))
	if err != nil {
		return nil, err
	}
	for i, b := range bits {
		if b {
			v.bits[i/8] |= 1 << (i % 8)
		}
	}
	return v, nil
}

// FromBytes wraps packed bytes as an n-bit vector, copying the input and
// zeroing any trailing bits beyond n so Equal and PopCount stay exact.
func FromBytes(raw []byte, nbits int) (*BitVector, error) {
	if nbits <= 0 || (nbits+7)/8 != len(raw) {
		return nil, fmt.Errorf("%w: %d bytes for %d bits", ErrSize, len(raw), nbits)
	}
	bits := make([]byte, len(raw))
	copy(bits, raw)
	if rem := nbits % 8; rem != 0 {
		bits[len(bits)-1] &= byte(1)<<rem - 1
	}
	return &BitVector{bits: bits, nbits: nbits}, nil
}

// SetView repoints v at raw without copying: the zero-allocation decode
// path. Trailing bits beyond nbits are masked off in place (raw must be
// caller-owned and mutable), restoring the invariant for garbage
// plaintexts. The view stays valid only while raw's bytes do; a caller
// reusing raw as scratch must finish with v before overwriting it.
func (v *BitVector) SetView(raw []byte, nbits int) error {
	if nbits <= 0 || (nbits+7)/8 != len(raw) {
		return fmt.Errorf("%w: %d bytes for %d bits", ErrSize, len(raw), nbits)
	}
	if rem := nbits % 8; rem != 0 {
		raw[len(raw)-1] &= byte(1)<<rem - 1
	}
	v.bits = raw
	v.nbits = nbits
	return nil
}

// OneHot returns a vector of n bits with only bit i set — the shape of a
// truthful numeric answer, which lands in exactly one bucket.
func OneHot(n, i int) (*BitVector, error) {
	v, err := NewBitVector(n)
	if err != nil {
		return nil, err
	}
	if err := v.Set(i, true); err != nil {
		return nil, err
	}
	return v, nil
}

// String renders the vector MSB-last as a 0/1 string, bucket 0 first.
func (v *BitVector) String() string {
	out := make([]byte, v.nbits)
	for i := 0; i < v.nbits; i++ {
		if v.bits[i/8]&(1<<(i%8)) != 0 {
			out[i] = '1'
		} else {
			out[i] = '0'
		}
	}
	return string(out)
}
