package xorcrypt

import (
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
)

// Errors reported by the splitter and joiner.
var (
	ErrShareCount = errors.New("xorcrypt: invalid share count")
	ErrShapes     = errors.New("xorcrypt: mismatched share shapes")
)

// MIDSize is the byte length of a message identifier.
const MIDSize = 16

// MID is the unique message identifier joining a message's shares at the
// aggregator (paper Eq. 12).
type MID [MIDSize]byte

// String renders the identifier in hex.
func (m MID) String() string { return hex.EncodeToString(m[:]) }

// Share is one of the n pieces a message is split into: either the
// encrypted message ME or a key share MKi — by construction the two are
// computationally indistinguishable.
type Share struct {
	MID     MID
	Payload []byte
}

// Splitter splits messages for a fixed number of proxies.
type Splitter struct {
	n      int
	prng   PRNG
	midSrc io.Reader
}

// NewSplitter returns a splitter targeting n ≥ 2 proxies. A nil prng
// defaults to a freshly seeded AES-CTR generator; a nil midSrc defaults
// to crypto/rand.
func NewSplitter(n int, prng PRNG, midSrc io.Reader) (*Splitter, error) {
	if n < 2 {
		return nil, fmt.Errorf("%w: need ≥ 2 proxies, got %d", ErrShareCount, n)
	}
	if prng == nil {
		p, err := NewAESPRNG(nil)
		if err != nil {
			return nil, err
		}
		prng = p
	}
	if midSrc == nil {
		midSrc = rand.Reader
	}
	return &Splitter{n: n, prng: prng, midSrc: midSrc}, nil
}

// Proxies returns the share fan-out n.
func (s *Splitter) Proxies() int { return s.n }

// Split produces the n shares of message (Eq. 10–12): n−1 pseudo-random
// key shares and the ciphertext ME = M ⊕ MK2 ⊕ … ⊕ MKn, all tagged with
// a fresh MID. Share i is destined for proxy i. The input is not
// modified.
func (s *Splitter) Split(message []byte) ([]Share, error) {
	if len(message) == 0 {
		return nil, fmt.Errorf("%w: empty message", ErrShapes)
	}
	var mid MID
	if _, err := io.ReadFull(s.midSrc, mid[:]); err != nil {
		return nil, fmt.Errorf("xorcrypt: mid generation: %w", err)
	}
	shares := make([]Share, s.n)
	cipher := make([]byte, len(message))
	copy(cipher, message)
	for i := 1; i < s.n; i++ {
		key := make([]byte, len(message))
		if err := s.prng.Fill(key); err != nil {
			return nil, err
		}
		xorInto(cipher, key)
		shares[i] = Share{MID: mid, Payload: key}
	}
	shares[0] = Share{MID: mid, Payload: cipher}
	return shares, nil
}

// Join recovers the original message by XOR-ing all share payloads. The
// aggregator cannot tell which share is the ciphertext and does not need
// to (paper §3.2.4). All shares must carry the same MID and length.
func Join(shares []Share) ([]byte, error) {
	if len(shares) < 2 {
		return nil, fmt.Errorf("%w: got %d shares", ErrShareCount, len(shares))
	}
	mid := shares[0].MID
	size := len(shares[0].Payload)
	if size == 0 {
		return nil, fmt.Errorf("%w: empty payload", ErrShapes)
	}
	out := make([]byte, size)
	copy(out, shares[0].Payload)
	for _, sh := range shares[1:] {
		if sh.MID != mid {
			return nil, fmt.Errorf("%w: MID %s vs %s", ErrShapes, sh.MID, mid)
		}
		if len(sh.Payload) != size {
			return nil, fmt.Errorf("%w: payload %d vs %d bytes", ErrShapes, len(sh.Payload), size)
		}
		xorInto(out, sh.Payload)
	}
	return out, nil
}

// xorInto XORs src into dst in place; both must have equal length.
func xorInto(dst, src []byte) {
	// Word-at-a-time XOR: this is the hot path of Table 2.
	n := len(dst)
	i := 0
	for ; i+8 <= n; i += 8 {
		dst[i] ^= src[i]
		dst[i+1] ^= src[i+1]
		dst[i+2] ^= src[i+2]
		dst[i+3] ^= src[i+3]
		dst[i+4] ^= src[i+4]
		dst[i+5] ^= src[i+5]
		dst[i+6] ^= src[i+6]
		dst[i+7] ^= src[i+7]
	}
	for ; i < n; i++ {
		dst[i] ^= src[i]
	}
}
