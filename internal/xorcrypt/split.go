package xorcrypt

import (
	"crypto/subtle"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"sync"
)

// Errors reported by the splitter and joiner.
var (
	ErrShareCount = errors.New("xorcrypt: invalid share count")
	ErrShapes     = errors.New("xorcrypt: mismatched share shapes")
)

// MIDSize is the byte length of a message identifier.
const MIDSize = 16

// MID is the unique message identifier joining a message's shares at the
// aggregator (paper Eq. 12). It is a comparable value type so the
// aggregator can key its join map by MID directly, without a per-share
// string conversion.
type MID [MIDSize]byte

// String renders the identifier in hex.
func (m MID) String() string { return hex.EncodeToString(m[:]) }

// Share is one of the n pieces a message is split into: either the
// encrypted message ME or a key share MKi — by construction the two are
// computationally indistinguishable.
type Share struct {
	MID     MID
	Payload []byte
}

// midBlock is how many MIDs are drawn per generator refill: one bulk
// read every midBlock messages instead of one syscall-backed read per
// message.
const midBlock = 64

// Splitter splits messages for a fixed number of proxies.
//
// A Splitter is not safe for concurrent use: it owns a PRNG stream and
// a MID block buffer. Each client owns its own Splitter.
type Splitter struct {
	n      int
	prng   PRNG
	midSrc io.Reader
	// midPRNG generates MIDs when no midSrc is supplied. It is a
	// separate, independently seeded stream so the public MIDs never
	// reveal bytes of the key-share keystream.
	midPRNG PRNG
	midBuf  [midBlock * MIDSize]byte
	midOff  int // next unread byte; len(midBuf) means exhausted
}

// NewSplitter returns a splitter targeting n ≥ 2 proxies. A nil prng
// defaults to a freshly seeded AES-CTR generator. MIDs are drawn in
// blocks of midBlock: from midSrc when non-nil (deterministic MIDs for
// tests), otherwise from a dedicated freshly seeded AES-CTR generator —
// never from the key-share stream, and never one OS read per message.
func NewSplitter(n int, prng PRNG, midSrc io.Reader) (*Splitter, error) {
	if n < 2 {
		return nil, fmt.Errorf("%w: need ≥ 2 proxies, got %d", ErrShareCount, n)
	}
	if prng == nil {
		p, err := NewAESPRNG(nil)
		if err != nil {
			return nil, err
		}
		prng = p
	}
	s := &Splitter{n: n, prng: prng, midSrc: midSrc}
	s.midOff = len(s.midBuf)
	if midSrc == nil {
		p, err := NewAESPRNG(nil)
		if err != nil {
			return nil, err
		}
		s.midPRNG = p
	}
	return s, nil
}

// Proxies returns the share fan-out n.
func (s *Splitter) Proxies() int { return s.n }

// nextMID hands out the next identifier from the block buffer, refilling
// it in bulk when exhausted.
func (s *Splitter) nextMID() (MID, error) {
	if s.midOff == len(s.midBuf) {
		if s.midSrc != nil {
			if _, err := io.ReadFull(s.midSrc, s.midBuf[:]); err != nil {
				return MID{}, fmt.Errorf("xorcrypt: mid generation: %w", err)
			}
		} else if err := s.midPRNG.Fill(s.midBuf[:]); err != nil {
			return MID{}, fmt.Errorf("xorcrypt: mid generation: %w", err)
		}
		s.midOff = 0
	}
	var mid MID
	copy(mid[:], s.midBuf[s.midOff:s.midOff+MIDSize])
	s.midOff += MIDSize
	return mid, nil
}

// SkipMID draws and discards one identifier, advancing the MID stream
// without splitting a message. Callers that suppress a message after
// the participation decision (overload shedding) and callers replaying
// history (crash-recovery fast-forward) use it to keep a deterministic
// midSrc at the same position an unsuppressed, uninterrupted run would
// reach — the stream position stays a function of participation alone.
func (s *Splitter) SkipMID() error {
	_, err := s.nextMID()
	return err
}

// SplitScratch owns the share slice and payload buffers SplitInto
// reuses across messages. The zero value is ready to use; buffers grow
// on first use and are reused afterwards, so a steady-state split
// performs no allocations.
type SplitScratch struct {
	shares []Share
}

// grow shapes the scratch for n shares of size bytes each, reusing
// buffer capacity from earlier messages.
func (sc *SplitScratch) grow(n, size int) []Share {
	if cap(sc.shares) < n {
		sc.shares = make([]Share, n)
	}
	sc.shares = sc.shares[:n]
	for i := range sc.shares {
		p := sc.shares[i].Payload
		if cap(p) < size {
			p = make([]byte, size)
		}
		sc.shares[i].Payload = p[:size]
	}
	return sc.shares
}

// Split produces the n shares of message (Eq. 10–12): n−1 pseudo-random
// key shares and the ciphertext ME = M ⊕ MK2 ⊕ … ⊕ MKn, all tagged with
// a fresh MID. Share i is destined for proxy i. The input is not
// modified. Every call allocates fresh payload buffers the caller owns;
// the hot path uses SplitInto instead.
func (s *Splitter) Split(message []byte) ([]Share, error) {
	var scratch SplitScratch
	return s.SplitInto(message, &scratch)
}

// SplitInto is Split reusing caller-owned scratch: the returned shares
// and their payloads alias scratch's buffers and stay valid only until
// the next SplitInto with the same scratch. Every sink a share is handed
// to must copy or fully consume the payload before returning (the
// buffer-ownership contract of DESIGN.md §6); the splitter itself never
// aliases bytes between the message and the shares or between shares.
func (s *Splitter) SplitInto(message []byte, scratch *SplitScratch) ([]Share, error) {
	if len(message) == 0 {
		return nil, fmt.Errorf("%w: empty message", ErrShapes)
	}
	mid, err := s.nextMID()
	if err != nil {
		return nil, err
	}
	shares := scratch.grow(s.n, len(message))
	cipher := shares[0].Payload
	copy(cipher, message)
	for i := 1; i < s.n; i++ {
		key := shares[i].Payload
		if err := s.prng.Fill(key); err != nil {
			return nil, err
		}
		xorInto(cipher, key)
		shares[i].MID = mid
	}
	shares[0].MID = mid
	return shares, nil
}

// Join recovers the original message by XOR-ing all share payloads. The
// aggregator cannot tell which share is the ciphertext and does not need
// to (paper §3.2.4). All shares must carry the same MID and length.
func Join(shares []Share) ([]byte, error) {
	return JoinInto(nil, shares)
}

// JoinInto is Join writing the plaintext into dst's backing array
// (grown as needed), so a caller looping over messages reuses one
// buffer. It returns the plaintext slice, which aliases dst's storage.
func JoinInto(dst []byte, shares []Share) ([]byte, error) {
	if len(shares) < 2 {
		return nil, fmt.Errorf("%w: got %d shares", ErrShareCount, len(shares))
	}
	mid := shares[0].MID
	for _, sh := range shares[1:] {
		if sh.MID != mid {
			return nil, fmt.Errorf("%w: MID %s vs %s", ErrShapes, sh.MID, mid)
		}
	}
	pp := payloadPool.Get().(*[][]byte)
	payloads := (*pp)[:0]
	for _, sh := range shares {
		payloads = append(payloads, sh.Payload)
	}
	out, err := JoinPayloadsInto(dst, payloads)
	for i := range payloads {
		payloads[i] = nil
	}
	*pp = payloads
	payloadPool.Put(pp)
	return out, err
}

// JoinPayloadsInto XOR-joins raw share payloads (already grouped by MID,
// as the aggregator's joiner produces them) into dst's backing array and
// returns the plaintext. All payloads must be the same nonzero length.
func JoinPayloadsInto(dst []byte, payloads [][]byte) ([]byte, error) {
	if len(payloads) < 2 {
		return nil, fmt.Errorf("%w: got %d shares", ErrShareCount, len(payloads))
	}
	size := len(payloads[0])
	if size == 0 {
		return nil, fmt.Errorf("%w: empty payload", ErrShapes)
	}
	dst = append(dst[:0], payloads[0]...)
	for _, p := range payloads[1:] {
		if len(p) != size {
			return nil, fmt.Errorf("%w: payload %d vs %d bytes", ErrShapes, len(p), size)
		}
		xorInto(dst, p)
	}
	return dst, nil
}

// payloadPool backs JoinInto's temporary payload-header slices so the
// share-slice form of join stays allocation-free too.
var payloadPool = sync.Pool{New: func() any {
	p := make([][]byte, 0, 8)
	return &p
}}

// xorInto XORs src into dst in place; both must have equal length. The
// word-at-a-time kernel is crypto/subtle's, which the runtime vectorizes
// — this is the hot inner loop of Table 2.
func xorInto(dst, src []byte) {
	subtle.XORBytes(dst, dst, src)
}
