package xorcrypt

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
)

// batchSplitter builds a deterministic splitter for batch tests: AES-CTR
// keystream from a fixed seed, MIDs from a seeded math/rand reader.
func batchSplitter(t *testing.T, n int, seed int64) *Splitter {
	t.Helper()
	key := make([]byte, 32)
	rand.New(rand.NewSource(seed)).Read(key)
	prng, err := NewAESPRNG(key)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := NewSplitter(n, prng, rand.New(rand.NewSource(seed+1)))
	if err != nil {
		t.Fatal(err)
	}
	return sp
}

// packedMsgs returns count distinct size-byte messages packed back to back.
func packedMsgs(count, size int, seed int64) []byte {
	msgs := make([]byte, count*size)
	rand.New(rand.NewSource(seed)).Read(msgs)
	return msgs
}

// TestSplitBatchRoundTrip: joining all lanes of a batch split recovers
// the packed plaintext batch, and each per-message share view joins back
// to its own message.
func TestSplitBatchRoundTrip(t *testing.T) {
	for _, n := range []int{2, 3, 5} {
		sp := batchSplitter(t, n, 42)
		const count, size = 7, 9
		msgs := packedMsgs(count, size, 7)
		var scratch SplitBatchScratch
		cols, err := sp.SplitBatchInto(msgs, size, count, &scratch)
		if err != nil {
			t.Fatal(err)
		}
		if cols.N != n || cols.Count != count || cols.Size != size {
			t.Fatalf("n=%d: cols geometry %d/%d/%d", n, cols.N, cols.Count, cols.Size)
		}
		joined, err := JoinColumnsInto(nil, cols.Lanes)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(joined, msgs) {
			t.Fatalf("n=%d: lane join does not recover the packed batch", n)
		}
		for k := 0; k < count; k++ {
			shares := make([]Share, n)
			for i := 0; i < n; i++ {
				shares[i] = cols.Share(i, k)
			}
			got, err := Join(shares)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, msgs[k*size:(k+1)*size]) {
				t.Fatalf("n=%d: message %d does not survive per-share join", n, k)
			}
			for i := 1; i < n; i++ {
				if shares[i].MID != shares[0].MID {
					t.Fatalf("message %d shares disagree on MID", k)
				}
			}
		}
	}
}

// TestSplitBatchStreamMatchesSequential pins the determinism contract: a
// batch split consumes exactly the key and MID stream bytes of the
// equivalent SplitInto sequence and draws MIDs in the same per-message
// order, so two identically seeded splitters — one batching, one not —
// agree on every MID, every recovered plaintext, and, afterwards, on the
// very next split (identical stream positions).
func TestSplitBatchStreamMatchesSequential(t *testing.T) {
	const n, count, size = 3, 5, 16
	spBatch := batchSplitter(t, n, 99)
	spSeq := batchSplitter(t, n, 99)
	msgs := packedMsgs(count, size, 3)

	var bsc SplitBatchScratch
	cols, err := spBatch.SplitBatchInto(msgs, size, count, &bsc)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < count; k++ {
		shares, err := spSeq.Split(msgs[k*size : (k+1)*size])
		if err != nil {
			t.Fatal(err)
		}
		if shares[0].MID != cols.Share(0, k).MID {
			t.Fatalf("message %d: batch MID diverges from sequential MID", k)
		}
	}
	// Both splitters must now sit at the same stream position: the next
	// split of the same message yields byte-identical shares.
	probe := packedMsgs(1, size, 8)
	a, err := spBatch.Split(probe)
	if err != nil {
		t.Fatal(err)
	}
	b, err := spSeq.Split(probe)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].MID != b[i].MID || !bytes.Equal(a[i].Payload, b[i].Payload) {
			t.Fatalf("share %d diverges after batch vs sequential splitting", i)
		}
	}
}

// TestSplitBatchEdges: empty batches consume no stream bytes, a single
// message batch equals a plain split, and malformed geometry is rejected.
func TestSplitBatchEdges(t *testing.T) {
	var scratch SplitBatchScratch
	spA := batchSplitter(t, 2, 5)
	spB := batchSplitter(t, 2, 5)
	// Empty batch: no-op, stream untouched.
	cols, err := spA.SplitBatchInto(nil, 4, 0, &scratch)
	if err != nil || cols.Count != 0 || len(cols.MIDs) != 0 {
		t.Fatalf("empty batch: cols=%+v err=%v", cols, err)
	}
	msg := []byte{1, 2, 3, 4}
	one, err := spA.SplitBatchInto(msg, 4, 1, &scratch)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := spB.Split(msg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ref {
		got := one.Share(i, 0)
		if got.MID != ref[i].MID || !bytes.Equal(got.Payload, ref[i].Payload) {
			t.Fatalf("single-message batch share %d diverges from Split", i)
		}
	}
	// Geometry errors.
	if _, err := spA.SplitBatchInto(msg, 0, 1, &scratch); !errors.Is(err, ErrShapes) {
		t.Fatalf("zero size: %v", err)
	}
	if _, err := spA.SplitBatchInto(msg, 4, 2, &scratch); !errors.Is(err, ErrShapes) {
		t.Fatalf("count/len mismatch: %v", err)
	}
	if _, err := spA.SplitBatchInto(msg, 4, -1, &scratch); !errors.Is(err, ErrShapes) {
		t.Fatalf("negative count: %v", err)
	}
}

// TestJoinColumnsIntoValidation: the batch join demands ≥2 lanes of
// equal nonzero length, and reuses dst capacity.
func TestJoinColumnsIntoValidation(t *testing.T) {
	if _, err := JoinColumnsInto(nil, [][]byte{{1}}); !errors.Is(err, ErrShareCount) {
		t.Fatalf("one lane: %v", err)
	}
	if _, err := JoinColumnsInto(nil, [][]byte{{}, {}}); !errors.Is(err, ErrShapes) {
		t.Fatalf("empty lanes: %v", err)
	}
	if _, err := JoinColumnsInto(nil, [][]byte{{1, 2}, {3}}); !errors.Is(err, ErrShapes) {
		t.Fatalf("ragged lanes: %v", err)
	}
	dst := make([]byte, 0, 16)
	out, err := JoinColumnsInto(dst, [][]byte{{0xf0, 0x0f}, {0x0f, 0xf0}})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, []byte{0xff, 0xff}) {
		t.Fatalf("join = %x", out)
	}
	if &out[0] != &dst[:1][0] {
		t.Fatal("join did not reuse dst capacity")
	}
}
