package xorcrypt

import "fmt"

// This file is the batch-granular form of the split/join kernels: where
// SplitInto draws one key fill and one XOR per share of one message,
// SplitBatchInto processes a whole packed batch of same-size messages
// with one PRNG fill and one subtle.XORBytes call per proxy lane,
// spanning every message in the batch.
//
// Determinism contract: a batch split consumes exactly as many key and
// MID stream bytes as the equivalent sequence of SplitInto calls, and
// draws MIDs in the same per-message order, so the splitter lands at
// the same stream position either way and FastForward replay stays
// valid. The key bytes are assigned to messages in a different order
// (lane-major instead of message-major), which is invisible downstream:
// keys cancel in the XOR join, so the recovered plaintexts — and every
// result derived from them — are byte-identical to the v1 path.

// ShareColumns is the columnar result of a batch split: Count messages
// of Size bytes fanned out to N proxies as N contiguous lanes. Lane i
// is destined for proxy i; message k's share on proxy i occupies
// Lanes[i][k*Size:(k+1)*Size] and its identifier MIDs[k*MIDSize:...].
// Exactly one lane holds ciphertexts and the rest key streams, and as
// with per-message shares the two are indistinguishable.
type ShareColumns struct {
	N     int
	Count int
	Size  int
	MIDs  []byte
	Lanes [][]byte
}

// Share materializes message k's share for proxy i as a Share view
// aliasing the column storage (no copy).
func (c *ShareColumns) Share(i, k int) Share {
	var sh Share
	copy(sh.MID[:], c.MIDs[k*MIDSize:(k+1)*MIDSize])
	sh.Payload = c.Lanes[i][k*c.Size : (k+1)*c.Size]
	return sh
}

// SplitBatchScratch owns the column storage SplitBatchInto reuses
// across batches. The zero value is ready to use.
type SplitBatchScratch struct {
	cols ShareColumns
}

// grow shapes the scratch for n lanes of count×size bytes plus the MID
// column, reusing capacity from earlier batches.
func (sc *SplitBatchScratch) grow(n, count, size int) *ShareColumns {
	c := &sc.cols
	c.N, c.Count, c.Size = n, count, size
	if cap(c.MIDs) < count*MIDSize {
		c.MIDs = make([]byte, count*MIDSize)
	}
	c.MIDs = c.MIDs[:count*MIDSize]
	if cap(c.Lanes) < n {
		c.Lanes = make([][]byte, n)
	}
	c.Lanes = c.Lanes[:n]
	span := count * size
	for i := range c.Lanes {
		if cap(c.Lanes[i]) < span {
			c.Lanes[i] = make([]byte, span)
		}
		c.Lanes[i] = c.Lanes[i][:span]
	}
	return c
}

// SplitBatchInto splits a packed batch of count same-size messages
// (msgs holds them back to back: message k at msgs[k*size:(k+1)*size])
// into columnar shares. Uniform stride is required by construction —
// mixed-size (hence mixed-query) batches cannot be expressed; callers
// pack the lane with answer.BatchEncoder, which rejects them at encode
// time. A count of 0 yields empty columns and consumes no stream bytes.
// The returned columns alias scratch and stay valid until the next
// SplitBatchInto with the same scratch.
func (s *Splitter) SplitBatchInto(msgs []byte, size, count int, scratch *SplitBatchScratch) (*ShareColumns, error) {
	if size <= 0 {
		return nil, fmt.Errorf("%w: %d-byte message", ErrShapes, size)
	}
	if count < 0 || len(msgs) != count*size {
		return nil, fmt.Errorf("%w: %d bytes for %d messages of %d", ErrShapes, len(msgs), count, size)
	}
	cols := scratch.grow(s.n, count, size)
	for k := 0; k < count; k++ {
		mid, err := s.nextMID()
		if err != nil {
			return nil, err
		}
		copy(cols.MIDs[k*MIDSize:], mid[:])
	}
	if count == 0 {
		return cols, nil
	}
	cipher := cols.Lanes[0]
	copy(cipher, msgs)
	for i := 1; i < s.n; i++ {
		key := cols.Lanes[i]
		if err := s.prng.Fill(key); err != nil {
			return nil, err
		}
		xorInto(cipher, key)
	}
	splitBatchCalls.Inc()
	splitBatchMessages.Add(int64(count))
	return cols, nil
}

// JoinColumnsInto XOR-joins whole share lanes — the batch form of
// JoinPayloadsInto: lanes[i] holds one payload region per source,
// every region the same nonzero length, and the result is the packed
// plaintext batch written into dst's backing array. One XOR pass per
// lane covers every message in the batch.
func JoinColumnsInto(dst []byte, lanes [][]byte) ([]byte, error) {
	if len(lanes) < 2 {
		return nil, fmt.Errorf("%w: got %d share lanes", ErrShareCount, len(lanes))
	}
	span := len(lanes[0])
	if span == 0 {
		return nil, fmt.Errorf("%w: empty share lane", ErrShapes)
	}
	dst = append(dst[:0], lanes[0]...)
	for _, l := range lanes[1:] {
		if len(l) != span {
			return nil, fmt.Errorf("%w: lane %d vs %d bytes", ErrShapes, len(l), span)
		}
		xorInto(dst, l)
	}
	joinBatchCalls.Inc()
	joinBatchBytes.Add(int64(span))
	return dst, nil
}
