package xorcrypt

import (
	"bytes"
	"testing"
)

// FuzzSplitJoinRoundTrip drives the scratch-reusing split/join pair with
// arbitrary messages and share counts: every non-empty message must
// survive SplitInto → JoinInto exactly, through reused scratch.
func FuzzSplitJoinRoundTrip(f *testing.F) {
	f.Add([]byte("seed message"), uint8(2))
	f.Add([]byte{0}, uint8(3))
	f.Add(bytes.Repeat([]byte{0xFF}, 1024), uint8(5))
	f.Fuzz(func(t *testing.T, msg []byte, n uint8) {
		shareN := 2 + int(n%4) // 2..5 proxies
		s, err := NewSplitter(shareN, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		var scratch SplitScratch
		var joinBuf []byte
		if len(msg) == 0 {
			if _, err := s.SplitInto(msg, &scratch); err == nil {
				t.Fatal("empty message must be rejected")
			}
			return
		}
		// Two consecutive splits through the same scratch: the second
		// must not corrupt a copy taken of the first (ownership
		// contract), and both must round-trip.
		shares, err := s.SplitInto(msg, &scratch)
		if err != nil {
			t.Fatal(err)
		}
		firstCopy := make([]Share, len(shares))
		for i, sh := range shares {
			firstCopy[i] = Share{MID: sh.MID, Payload: append([]byte(nil), sh.Payload...)}
		}
		shares2, err := s.SplitInto(msg, &scratch)
		if err != nil {
			t.Fatal(err)
		}
		joinBuf, err = JoinInto(joinBuf, firstCopy)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(joinBuf, msg) {
			t.Fatalf("first split did not round-trip: got %x want %x", joinBuf, msg)
		}
		joinBuf, err = JoinInto(joinBuf, shares2)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(joinBuf, msg) {
			t.Fatalf("second split did not round-trip: got %x want %x", joinBuf, msg)
		}
		if shares2[0].MID == firstCopy[0].MID {
			t.Fatal("MIDs must be fresh per message")
		}
	})
}

// TestSplitIntoScratchIsReused pins the whole point of the scratch API:
// consecutive splits hand back the same backing buffers, so the
// steady-state hot path performs no allocations.
func TestSplitIntoScratchIsReused(t *testing.T) {
	s, err := NewSplitter(3, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	var scratch SplitScratch
	msg := bytes.Repeat([]byte{0xA5}, 40)
	a, err := s.SplitInto(msg, &scratch)
	if err != nil {
		t.Fatal(err)
	}
	ptrs := make([]*byte, len(a))
	for i := range a {
		ptrs[i] = &a[i].Payload[0]
	}
	b, err := s.SplitInto(msg, &scratch)
	if err != nil {
		t.Fatal(err)
	}
	for i := range b {
		if &b[i].Payload[0] != ptrs[i] {
			t.Fatalf("share %d: scratch payload not reused", i)
		}
	}
	if allocs := testing.AllocsPerRun(200, func() {
		if _, err := s.SplitInto(msg, &scratch); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Fatalf("SplitInto: %v allocs/op, want 0", allocs)
	}
}

// TestScratchReuseNeverAliasesAcrossMessages: after the consumer copies
// message A's shares (per the ownership contract), splitting message B
// through the same scratch must leave A's copies joinable to A — no byte
// of B may leak into them — and A's original (now reused) buffers must
// hold B's shares exactly.
func TestScratchReuseNeverAliasesAcrossMessages(t *testing.T) {
	s, err := NewSplitter(2, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	var scratch SplitScratch
	msgA := bytes.Repeat([]byte{0x11}, 64)
	msgB := bytes.Repeat([]byte{0xEE}, 64)

	sharesA, err := s.SplitInto(msgA, &scratch)
	if err != nil {
		t.Fatal(err)
	}
	copyA := make([]Share, len(sharesA))
	for i, sh := range sharesA {
		copyA[i] = Share{MID: sh.MID, Payload: append([]byte(nil), sh.Payload...)}
	}

	sharesB, err := s.SplitInto(msgB, &scratch)
	if err != nil {
		t.Fatal(err)
	}
	gotA, err := Join(copyA)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotA, msgA) {
		t.Error("message A's copied shares were corrupted by splitting B")
	}
	gotB, err := Join(sharesB)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotB, msgB) {
		t.Error("message B did not round-trip through reused scratch")
	}
}

func TestJoinPayloadsInto(t *testing.T) {
	s, _ := NewSplitter(3, nil, nil)
	msg := []byte("payload-level join")
	shares, err := s.Split(msg)
	if err != nil {
		t.Fatal(err)
	}
	payloads := make([][]byte, len(shares))
	for i, sh := range shares {
		payloads[i] = sh.Payload
	}
	var buf []byte
	buf, err = JoinPayloadsInto(buf, payloads)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, msg) {
		t.Fatalf("JoinPayloadsInto = %q, want %q", buf, msg)
	}
	// Reuse must overwrite, not append.
	buf, err = JoinPayloadsInto(buf, payloads)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, msg) {
		t.Fatalf("reused JoinPayloadsInto = %q, want %q", buf, msg)
	}
	if _, err := JoinPayloadsInto(nil, [][]byte{{1}}); err == nil {
		t.Error("expected error for a single payload")
	}
	if _, err := JoinPayloadsInto(nil, [][]byte{{}, {}}); err == nil {
		t.Error("expected error for empty payloads")
	}
	if _, err := JoinPayloadsInto(nil, [][]byte{{1, 2}, {3}}); err == nil {
		t.Error("expected error for mismatched lengths")
	}
}

// TestMIDBlockRefill exhausts several MID blocks and checks freshness
// across refill boundaries.
func TestMIDBlockRefill(t *testing.T) {
	s, err := NewSplitter(2, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	var scratch SplitScratch
	msg := []byte{1, 2, 3}
	seen := make(map[MID]bool)
	for i := 0; i < 3*midBlock+5; i++ {
		shares, err := s.SplitInto(msg, &scratch)
		if err != nil {
			t.Fatal(err)
		}
		if seen[shares[0].MID] {
			t.Fatalf("MID repeated at message %d", i)
		}
		seen[shares[0].MID] = true
	}
}

// TestMIDsFromSuppliedSource pins the block-read behaviour for callers
// that inject a deterministic MID source.
func TestMIDsFromSuppliedSource(t *testing.T) {
	src := bytes.NewReader(bytes.Repeat([]byte{7}, 4*midBlock*MIDSize))
	s, err := NewSplitter(2, nil, src)
	if err != nil {
		t.Fatal(err)
	}
	shares, err := s.Split([]byte{1})
	if err != nil {
		t.Fatal(err)
	}
	want := MID(bytes.Repeat([]byte{7}, MIDSize))
	if shares[0].MID != want {
		t.Fatalf("MID = %v, want all-7s from the supplied source", shares[0].MID)
	}
}
