package xorcrypt

import (
	"privapprox/internal/telemetry"
)

// Package-level kernel counters, incremented at batch granularity only
// — SplitBatchInto and JoinColumnsInto count whole lanes with one
// atomic add each, while the per-message forms (SplitInto, JoinInto)
// stay untouched so the single-share Fig 8 tail pays nothing. A
// process registers them with telemetry.Registry.RegisterSource
// (telemetry.SourceFunc(Metrics)).
var (
	splitBatchMessages telemetry.Counter
	splitBatchCalls    telemetry.Counter
	joinBatchBytes     telemetry.Counter
	joinBatchCalls     telemetry.Counter
)

// Metrics appends the package's kernel counters as telemetry samples.
func Metrics(dst []telemetry.Sample) []telemetry.Sample {
	return append(dst,
		telemetry.Sample{Name: "privapprox_xorcrypt_split_batch_messages_total", Value: float64(splitBatchMessages.Load()), Kind: telemetry.KindCounter},
		telemetry.Sample{Name: "privapprox_xorcrypt_split_batch_calls_total", Value: float64(splitBatchCalls.Load()), Kind: telemetry.KindCounter},
		telemetry.Sample{Name: "privapprox_xorcrypt_join_batch_bytes_total", Value: float64(joinBatchBytes.Load()), Kind: telemetry.KindCounter},
		telemetry.Sample{Name: "privapprox_xorcrypt_join_batch_calls_total", Value: float64(joinBatchCalls.Load()), Kind: telemetry.KindCounter},
	)
}
