// Package xorcrypt implements PrivApprox's XOR-based encryption
// (paper §3.2.3): a client splits each message M into one encrypted
// share ME = M ⊕ MK and n−1 pseudo-random key shares MK2…MKn with
// MK = MK2 ⊕ … ⊕ MKn, tagging all n shares with a random message
// identifier MID. Any n−1 shares are information-theoretically
// independent of M; the aggregator recovers M by XOR-ing all n shares,
// never needing to know which one was the ciphertext.
package xorcrypt

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// ErrPRNG reports keystream generator failures.
var ErrPRNG = errors.New("xorcrypt: prng failure")

// PRNG produces cryptographically strong pseudo-random key shares. The
// paper requires "a cryptographic pseudo-random number generator seeded
// with a cryptographically strong random number".
type PRNG interface {
	// Fill overwrites dst with pseudo-random bytes.
	Fill(dst []byte) error
}

// aesPRNG is an AES-128-CTR keystream: the production generator.
type aesPRNG struct {
	stream cipher.Stream
}

// NewAESPRNG seeds an AES-CTR generator. A nil seed draws 32 bytes from
// crypto/rand; otherwise the seed must be at least 16 bytes (first 16
// become the key, next up to 16 the IV) — deterministic seeding is only
// meant for tests and benchmarks.
func NewAESPRNG(seed []byte) (PRNG, error) {
	if seed == nil {
		seed = make([]byte, 32)
		if _, err := io.ReadFull(rand.Reader, seed); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrPRNG, err)
		}
	}
	if len(seed) < aes.BlockSize {
		return nil, fmt.Errorf("%w: seed must be ≥ %d bytes", ErrPRNG, aes.BlockSize)
	}
	key := seed[:16]
	iv := make([]byte, aes.BlockSize)
	copy(iv, seed[16:])
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrPRNG, err)
	}
	return &aesPRNG{stream: cipher.NewCTR(block, iv)}, nil
}

// Fill writes keystream bytes into dst (XOR of zeros with the stream).
func (p *aesPRNG) Fill(dst []byte) error {
	clear(dst)
	p.stream.XORKeyStream(dst, dst)
	return nil
}

// shaPRNG is a SHA-256 counter-mode generator — the ablation alternative
// benchmarked against AES-CTR (DESIGN.md §5).
type shaPRNG struct {
	seed    [32]byte
	counter uint64
	buf     []byte // unread tail of the last block
}

// NewSHAPRNG seeds a SHA-256 counter-mode generator. A nil seed draws 32
// bytes from crypto/rand.
func NewSHAPRNG(seed []byte) (PRNG, error) {
	p := &shaPRNG{}
	if seed == nil {
		seed = make([]byte, 32)
		if _, err := io.ReadFull(rand.Reader, seed); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrPRNG, err)
		}
	}
	if len(seed) == 0 {
		return nil, fmt.Errorf("%w: empty seed", ErrPRNG)
	}
	p.seed = sha256.Sum256(seed)
	return p, nil
}

// Fill writes keystream bytes: SHA-256(seed || counter) blocks.
func (p *shaPRNG) Fill(dst []byte) error {
	for len(dst) > 0 {
		if len(p.buf) == 0 {
			var block [40]byte
			copy(block[:32], p.seed[:])
			binary.BigEndian.PutUint64(block[32:], p.counter)
			p.counter++
			sum := sha256.Sum256(block[:])
			p.buf = sum[:]
		}
		n := copy(dst, p.buf)
		p.buf = p.buf[n:]
		dst = dst[n:]
	}
	return nil
}

// cryptoRandPRNG reads directly from crypto/rand — the slowest but
// simplest option, used as a correctness oracle in tests.
type cryptoRandPRNG struct{}

// NewCryptoRandPRNG returns a generator backed by the OS entropy source.
func NewCryptoRandPRNG() PRNG { return cryptoRandPRNG{} }

// Fill reads from crypto/rand.
func (cryptoRandPRNG) Fill(dst []byte) error {
	if _, err := io.ReadFull(rand.Reader, dst); err != nil {
		return fmt.Errorf("%w: %v", ErrPRNG, err)
	}
	return nil
}
