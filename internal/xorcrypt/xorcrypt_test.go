package xorcrypt

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

func TestSplitJoinRoundTrip(t *testing.T) {
	for _, n := range []int{2, 3, 5} {
		s, err := NewSplitter(n, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		msg := []byte("QID|randomized-answer-bits")
		shares, err := s.Split(msg)
		if err != nil {
			t.Fatal(err)
		}
		if len(shares) != n {
			t.Fatalf("n=%d: got %d shares", n, len(shares))
		}
		got, err := Join(shares)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, msg) {
			t.Errorf("n=%d: Join = %q, want %q", n, got, msg)
		}
	}
}

func TestSplitJoinProperty(t *testing.T) {
	s, err := NewSplitter(3, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	f := func(msg []byte) bool {
		if len(msg) == 0 {
			msg = []byte{0}
		}
		shares, err := s.Split(msg)
		if err != nil {
			return false
		}
		got, err := Join(shares)
		return err == nil && bytes.Equal(got, msg)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestJoinOrderIndependent(t *testing.T) {
	s, _ := NewSplitter(4, nil, nil)
	msg := []byte("order independent")
	shares, err := s.Split(msg)
	if err != nil {
		t.Fatal(err)
	}
	// The aggregator XORs shares in arrival order, which is arbitrary.
	perm := []Share{shares[2], shares[0], shares[3], shares[1]}
	got, err := Join(perm)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Error("join must be order independent")
	}
}

func TestPartialSharesRevealNothing(t *testing.T) {
	// XOR of any n−1 shares must differ from the message: the missing
	// key share acts as a one-time pad.
	s, _ := NewSplitter(3, nil, nil)
	msg := bytes.Repeat([]byte{0xAB}, 64)
	shares, err := s.Split(msg)
	if err != nil {
		t.Fatal(err)
	}
	for drop := 0; drop < len(shares); drop++ {
		var partial []Share
		for i, sh := range shares {
			if i != drop {
				partial = append(partial, sh)
			}
		}
		got, err := Join(partial)
		if err != nil {
			t.Fatal(err)
		}
		if bytes.Equal(got, msg) {
			t.Errorf("dropping share %d still recovered the message", drop)
		}
	}
}

func TestSharesAreUniformLength(t *testing.T) {
	s, _ := NewSplitter(3, nil, nil)
	msg := make([]byte, 37)
	shares, err := s.Split(msg)
	if err != nil {
		t.Fatal(err)
	}
	for i, sh := range shares {
		if len(sh.Payload) != len(msg) {
			t.Errorf("share %d has %d bytes, want %d", i, len(sh.Payload), len(msg))
		}
		if sh.MID != shares[0].MID {
			t.Errorf("share %d has different MID", i)
		}
	}
}

func TestFreshMIDAndKeysPerSplit(t *testing.T) {
	s, _ := NewSplitter(2, nil, nil)
	msg := []byte("same message twice")
	a, err := s.Split(msg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Split(msg)
	if err != nil {
		t.Fatal(err)
	}
	if a[0].MID == b[0].MID {
		t.Error("MIDs must be fresh per message")
	}
	if bytes.Equal(a[0].Payload, b[0].Payload) {
		t.Error("ciphertexts of identical messages must differ (fresh pad)")
	}
}

// The ciphertext share must look uniformly random even for a degenerate
// all-zero message (indistinguishability from the key shares).
func TestCiphertextLooksUniform(t *testing.T) {
	s, _ := NewSplitter(2, nil, nil)
	const trials = 2000
	msg := make([]byte, 32) // all zeros: ciphertext equals the pad
	ones := 0
	totalBits := 0
	for i := 0; i < trials; i++ {
		shares, err := s.Split(msg)
		if err != nil {
			t.Fatal(err)
		}
		for _, b := range shares[0].Payload {
			for k := 0; k < 8; k++ {
				if b&(1<<k) != 0 {
					ones++
				}
				totalBits++
			}
		}
	}
	frac := float64(ones) / float64(totalBits)
	if math.Abs(frac-0.5) > 0.01 {
		t.Errorf("ciphertext bit bias: %v ones fraction", frac)
	}
}

func TestSplitterValidation(t *testing.T) {
	if _, err := NewSplitter(1, nil, nil); err == nil {
		t.Error("expected error for n < 2")
	}
	s, _ := NewSplitter(2, nil, nil)
	if _, err := s.Split(nil); err == nil {
		t.Error("expected error for empty message")
	}
}

func TestJoinValidation(t *testing.T) {
	if _, err := Join(nil); err == nil {
		t.Error("expected error for no shares")
	}
	var mid1, mid2 MID
	mid2[0] = 1
	mismatchedMID := []Share{
		{MID: mid1, Payload: []byte{1, 2}},
		{MID: mid2, Payload: []byte{3, 4}},
	}
	if _, err := Join(mismatchedMID); err == nil {
		t.Error("expected error for mismatched MIDs")
	}
	mismatchedLen := []Share{
		{MID: mid1, Payload: []byte{1, 2}},
		{MID: mid1, Payload: []byte{3}},
	}
	if _, err := Join(mismatchedLen); err == nil {
		t.Error("expected error for mismatched lengths")
	}
	empty := []Share{{MID: mid1}, {MID: mid1}}
	if _, err := Join(empty); err == nil {
		t.Error("expected error for empty payloads")
	}
}

func TestMIDString(t *testing.T) {
	var mid MID
	mid[0] = 0xAB
	s := mid.String()
	if len(s) != 2*MIDSize || s[:2] != "ab" {
		t.Errorf("String = %q", s)
	}
}

func TestPRNGDeterministicWithSeed(t *testing.T) {
	for _, mk := range []func([]byte) (PRNG, error){NewAESPRNG, NewSHAPRNG} {
		seed := bytes.Repeat([]byte{7}, 32)
		a, err := mk(seed)
		if err != nil {
			t.Fatal(err)
		}
		b, err := mk(seed)
		if err != nil {
			t.Fatal(err)
		}
		bufA := make([]byte, 100)
		bufB := make([]byte, 100)
		if err := a.Fill(bufA); err != nil {
			t.Fatal(err)
		}
		if err := b.Fill(bufB); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(bufA, bufB) {
			t.Error("same seed must produce same stream")
		}
		// The stream must advance.
		if err := a.Fill(bufA); err != nil {
			t.Fatal(err)
		}
		if bytes.Equal(bufA, bufB) {
			t.Error("stream did not advance")
		}
	}
}

func TestPRNGSeedValidation(t *testing.T) {
	if _, err := NewAESPRNG([]byte{1, 2, 3}); err == nil {
		t.Error("expected error for short AES seed")
	}
	if _, err := NewSHAPRNG([]byte{}); err == nil {
		t.Error("expected error for empty SHA seed")
	}
}

func TestPRNGStatisticalSanity(t *testing.T) {
	prngs := map[string]PRNG{}
	a, _ := NewAESPRNG(nil)
	s, _ := NewSHAPRNG(nil)
	prngs["aes"] = a
	prngs["sha"] = s
	prngs["os"] = NewCryptoRandPRNG()
	for name, p := range prngs {
		buf := make([]byte, 1<<16)
		if err := p.Fill(buf); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		ones := 0
		for _, b := range buf {
			for k := 0; k < 8; k++ {
				if b&(1<<k) != 0 {
					ones++
				}
			}
		}
		frac := float64(ones) / float64(len(buf)*8)
		if math.Abs(frac-0.5) > 0.01 {
			t.Errorf("%s: bit bias %v", name, frac)
		}
	}
}

func TestShaPRNGSpansBlocks(t *testing.T) {
	p, err := NewSHAPRNG([]byte("seed"))
	if err != nil {
		t.Fatal(err)
	}
	// Draw sizes that straddle the 32-byte block boundary.
	whole := make([]byte, 100)
	if err := p.Fill(whole); err != nil {
		t.Fatal(err)
	}
	p2, _ := NewSHAPRNG([]byte("seed"))
	pieces := make([]byte, 0, 100)
	for _, sz := range []int{1, 31, 32, 33, 3} {
		chunk := make([]byte, sz)
		if err := p2.Fill(chunk); err != nil {
			t.Fatal(err)
		}
		pieces = append(pieces, chunk...)
	}
	if !bytes.Equal(whole, pieces) {
		t.Error("chunked fills must match one big fill")
	}
}
