package workload

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"privapprox/internal/minisql"
)

func TestTaxiDistanceCalibration(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const n = 200000
	under1 := 0
	for i := 0; i < n; i++ {
		d := TaxiDistance(rng)
		if d <= 0 {
			t.Fatalf("non-positive distance %v", d)
		}
		if d < 1 {
			under1++
		}
	}
	frac := float64(under1) / n
	if math.Abs(frac-TaxiFirstBucketFraction) > 0.01 {
		t.Errorf("P(d<1) = %v, want ≈%v (paper calibration)", frac, TaxiFirstBucketFraction)
	}
}

func TestTaxiBucketsAndQuery(t *testing.T) {
	buckets, err := TaxiBuckets()
	if err != nil {
		t.Fatal(err)
	}
	if len(buckets) != 11 {
		t.Fatalf("buckets = %d, want 11", len(buckets))
	}
	q, err := TaxiQuery("a", 1, time.Second, time.Minute, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if err := q.Validate(); err != nil {
		t.Fatal(err)
	}
	if q.SQL == "" || len(q.Buckets) != 11 {
		t.Error("query malformed")
	}
}

func TestPopulateTaxi(t *testing.T) {
	db := minisql.NewDB()
	rng := rand.New(rand.NewSource(2))
	if err := PopulateTaxi(db, rng, 10, time.Unix(1000, 0), time.Minute); err != nil {
		t.Fatal(err)
	}
	rows, err := db.Query("SELECT distance FROM rides WHERE ts >= 1000")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Rows) != 10 {
		t.Errorf("rows = %d", len(rows.Rows))
	}
}

func TestElectricityUsageShape(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const n = 20000
	var evening, night float64
	for i := 0; i < n; i++ {
		e := ElectricityUsage(rng, 19)
		v := ElectricityUsage(rng, 4)
		if e < 0 || e >= ElectricityMaxKWh || v < 0 || v >= ElectricityMaxKWh {
			t.Fatalf("usage out of range: %v %v", e, v)
		}
		evening += e
		night += v
	}
	if evening <= night {
		t.Errorf("diurnal shape wrong: evening %v ≤ night %v", evening/n, night/n)
	}
}

func TestElectricityBucketsAndQuery(t *testing.T) {
	buckets, err := ElectricityBuckets()
	if err != nil {
		t.Fatal(err)
	}
	if len(buckets) != 6 {
		t.Fatalf("buckets = %d, want 6", len(buckets))
	}
	q, err := ElectricityQuery("a", 2, time.Second, 30*time.Minute, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if err := q.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPopulateElectricity(t *testing.T) {
	db := minisql.NewDB()
	rng := rand.New(rand.NewSource(4))
	if err := PopulateElectricity(db, rng, 8, time.Unix(0, 0)); err != nil {
		t.Fatal(err)
	}
	n, err := db.RowCount("consumption")
	if err != nil || n != 8 {
		t.Errorf("rows = %d, %v", n, err)
	}
}

func TestTrueDistribution(t *testing.T) {
	buckets, _ := TaxiBuckets()
	counts := TrueDistribution(buckets, []float64{0.5, 1.5, 1.7, 25})
	if counts[0] != 1 || counts[1] != 2 || counts[10] != 1 {
		t.Errorf("counts = %v", counts)
	}
}

func TestYesFractionPopulation(t *testing.T) {
	pop := YesFractionPopulation(10, 0.6)
	yes := 0
	for _, b := range pop {
		if b {
			yes++
		}
	}
	if yes != 6 {
		t.Errorf("yes = %d, want 6", yes)
	}
	if len(YesFractionPopulation(0, 0.5)) != 0 {
		t.Error("empty population mishandled")
	}
}
