// Package workload generates the two case-study datasets of the paper's
// §7 evaluation. The originals (the DEBS 2015 NYC taxi trace and a
// household electricity time-of-use dataset) are not redistributable, so
// we synthesize streams with the same shape the experiments depend on:
//
//   - Taxi rides: per-ride trip distances whose marginal distribution is
//     log-normal, calibrated so ~33.57% of rides fall in the first
//     [0, 1)-mile bucket — the fraction the paper reports for its
//     dataset (§6 #IV discussion of Fig. 7).
//   - Household electricity: per-interval kWh consumption following a
//     diurnal load curve with appliance noise, bucketized into the
//     paper's six 0.5 kWh buckets over [0, 3].
//
// See DESIGN.md §2 for the substitution argument.
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"privapprox/internal/minisql"
	"privapprox/internal/query"
)

// Taxi distance distribution: lognormal(μ, σ) with Φ((ln 1 − μ)/σ) =
// 0.3357 at σ = 1 → μ = 0.4242.
const (
	taxiMu    = 0.4242
	taxiSigma = 1.0
	// TaxiFirstBucketFraction is the calibrated P(distance < 1 mile).
	TaxiFirstBucketFraction = 0.3357
)

// TaxiDistance draws one trip distance in miles.
func TaxiDistance(rng *rand.Rand) float64 {
	return math.Exp(taxiMu + taxiSigma*rng.NormFloat64())
}

// TaxiBuckets returns the paper's 11 answer buckets: [0,1) … [9,10)
// miles plus [10, +inf).
func TaxiBuckets() (query.Buckets, error) {
	return query.UniformRanges(0, 10, 10, true)
}

// TaxiQuery builds the case study query "What is the distance
// distribution of taxi rides in New York?" with the given window
// geometry.
func TaxiQuery(analyst string, serial uint64, freq, window, slide time.Duration) (*query.Query, error) {
	buckets, err := TaxiBuckets()
	if err != nil {
		return nil, err
	}
	return &query.Query{
		QID:       query.ID{Analyst: analyst, Serial: serial},
		SQL:       "SELECT distance FROM rides",
		Buckets:   buckets,
		Frequency: freq,
		Window:    window,
		Slide:     slide,
	}, nil
}

// PopulateTaxi creates the rides(ts, distance) table on a client device
// and fills it with rides ending at start + i×interval.
func PopulateTaxi(db *minisql.DB, rng *rand.Rand, rides int, start time.Time, interval time.Duration) error {
	if err := db.CreateTable("rides", []string{"ts", "distance"}); err != nil {
		return err
	}
	for i := 0; i < rides; i++ {
		ts := start.Add(time.Duration(i) * interval)
		row := []minisql.Value{
			minisql.Number(float64(ts.Unix())),
			minisql.Number(TaxiDistance(rng)),
		}
		if err := db.Insert("rides", row); err != nil {
			return err
		}
	}
	return nil
}

// Electricity: base diurnal curve (kWh per 30-minute interval) plus
// appliance spikes, clamped to [0, 3].
const (
	elecBase      = 0.35
	elecDayAmp    = 0.45
	elecSpikeProb = 0.15
	elecSpikeMax  = 1.5
	elecNoise     = 0.08
	// ElectricityMaxKWh caps a 30-minute reading.
	ElectricityMaxKWh = 3.0
)

// ElectricityUsage draws one 30-minute consumption reading for the given
// local hour of day (0–23).
func ElectricityUsage(rng *rand.Rand, hour int) float64 {
	// Peak in the evening (~19:00), trough at night (~04:00).
	phase := 2 * math.Pi * (float64(hour) - 19) / 24
	v := elecBase + elecDayAmp*(0.5+0.5*math.Cos(phase))
	if rng.Float64() < elecSpikeProb {
		v += rng.Float64() * elecSpikeMax
	}
	v += rng.NormFloat64() * elecNoise
	if v < 0 {
		v = 0
	}
	if v >= ElectricityMaxKWh {
		v = ElectricityMaxKWh - 1e-9
	}
	return v
}

// ElectricityBuckets returns the paper's six buckets: [0,0.5), [0.5,1),
// …, [2.5,3).
func ElectricityBuckets() (query.Buckets, error) {
	return query.UniformRanges(0, ElectricityMaxKWh, 6, false)
}

// ElectricityQuery builds the case study query on electricity usage
// over the past 30 minutes.
func ElectricityQuery(analyst string, serial uint64, freq, window, slide time.Duration) (*query.Query, error) {
	buckets, err := ElectricityBuckets()
	if err != nil {
		return nil, err
	}
	return &query.Query{
		QID:       query.ID{Analyst: analyst, Serial: serial},
		SQL:       "SELECT kwh FROM consumption",
		Buckets:   buckets,
		Frequency: freq,
		Window:    window,
		Slide:     slide,
	}, nil
}

// PopulateElectricity creates the consumption(ts, kwh) table and fills
// it with readings every 30 minutes starting at start.
func PopulateElectricity(db *minisql.DB, rng *rand.Rand, readings int, start time.Time) error {
	if err := db.CreateTable("consumption", []string{"ts", "kwh"}); err != nil {
		return err
	}
	for i := 0; i < readings; i++ {
		ts := start.Add(time.Duration(i) * 30 * time.Minute)
		row := []minisql.Value{
			minisql.Number(float64(ts.Unix())),
			minisql.Number(ElectricityUsage(rng, ts.Hour())),
		}
		if err := db.Insert("consumption", row); err != nil {
			return err
		}
	}
	return nil
}

// TrueDistribution computes the exact bucket histogram of a population
// of values — the ground truth experiments compare estimates against.
func TrueDistribution(buckets query.Buckets, values []float64) []int {
	counts := make([]int, len(buckets))
	for _, v := range values {
		if idx := buckets.Index(fmt.Sprintf("%g", v)); idx >= 0 {
			counts[idx]++
		}
	}
	return counts
}

// YesFractionPopulation synthesizes the microbenchmark population used
// throughout §6: n binary answers of which fraction are truthful "Yes".
func YesFractionPopulation(n int, fraction float64) []bool {
	out := make([]bool, n)
	yes := int(math.Round(fraction * float64(n)))
	for i := 0; i < yes && i < n; i++ {
		out[i] = true
	}
	return out
}
