// Package budget implements PrivApprox's query execution budget
// (paper §2.1, §3.1, §5): the analyst attaches a budget — a privacy
// requirement, an accuracy bound, a latency SLA, or a resource cap — and
// the aggregator's initializer module converts it into the system
// parameters: the sampling fraction s and the randomization pair (p, q).
// A feedback controller re-tunes s between epochs when the measured
// error exceeds the target (§5's "feedback mechanism ... to re-tune the
// sampling and randomization parameters").
package budget

import (
	"errors"
	"fmt"
	"math"
	"time"

	"privapprox/internal/rr"
	"privapprox/internal/stats"
)

// Errors reported by budget derivation.
var (
	ErrUnsatisfiable = errors.New("budget: constraints unsatisfiable")
	ErrBadBudget     = errors.New("budget: invalid budget")
)

// Budget is everything the analyst may constrain. Zero values mean
// "unconstrained" except Q and Confidence, which default.
type Budget struct {
	// EpsilonZK is the zero-knowledge privacy requirement: the derived
	// parameters must satisfy ε_zk(s, p, q) ≤ EpsilonZK. Zero means the
	// default of DefaultEpsilonZK.
	EpsilonZK float64
	// P and Q optionally pin the randomization coins; zero picks
	// defaults (P from the privacy requirement, Q = 0.6).
	P, Q float64
	// MaxAccuracyLoss bounds the expected sampling-induced relative
	// error of a bucket count at Confidence (e.g. 0.05 for 5%).
	MaxAccuracyLoss float64
	// Confidence for the accuracy bound; defaults to 0.95.
	Confidence float64
	// MaxLatency is the per-window processing SLA; combined with
	// ThroughputPerSec it caps how many answers may be admitted.
	MaxLatency time.Duration
	// ThroughputPerSec is the measured aggregator capacity in
	// answers/second, used with MaxLatency.
	ThroughputPerSec float64
	// MaxAnswersPerEpoch directly caps the expected number of
	// participating clients (network/resource budget).
	MaxAnswersPerEpoch int
}

// Defaults applied by Derive.
const (
	DefaultEpsilonZK  = 2.0
	DefaultQ          = 0.6
	DefaultConfidence = 0.95
	// maxSamplingForZK keeps s strictly below 1: zero-knowledge privacy
	// requires genuine sampling (the ε_zk bound diverges at s = 1).
	maxSamplingForZK = 0.99
)

// Params is the derived system parameter triple the aggregator forwards
// to clients with the query.
type Params struct {
	S  float64
	RR rr.Params
}

// Validate checks the triple.
func (p Params) Validate() error {
	if p.S <= 0 || p.S > 1 || math.IsNaN(p.S) {
		return fmt.Errorf("%w: s=%v", ErrBadBudget, p.S)
	}
	return p.RR.Validate()
}

// EpsilonZK returns the zero-knowledge privacy level the triple
// provides.
func (p Params) EpsilonZK() (float64, error) {
	return rr.EpsilonZK(p.S, p.RR)
}

// Derive converts the budget into system parameters for a population of
// the given size. Derivation order mirrors the paper: privacy decides
// (p, q) and an upper bound on s; accuracy imposes a lower bound on s;
// latency/resource caps impose upper bounds. An empty feasible interval
// is an error — the analyst must relax the budget.
func (b Budget) Derive(population int) (Params, error) {
	if population <= 0 {
		return Params{}, fmt.Errorf("%w: population %d", ErrBadBudget, population)
	}
	epsZK := b.EpsilonZK
	if epsZK == 0 {
		epsZK = DefaultEpsilonZK
	}
	if epsZK < 0 {
		return Params{}, fmt.Errorf("%w: negative EpsilonZK", ErrBadBudget)
	}
	conf := b.Confidence
	if conf == 0 {
		conf = DefaultConfidence
	}
	if conf <= 0 || conf >= 1 {
		return Params{}, fmt.Errorf("%w: confidence %v", ErrBadBudget, conf)
	}
	q := b.Q
	if q == 0 {
		q = DefaultQ
	}

	// Accuracy: a relative error bound at the given confidence needs at
	// least n0 samples; that is a lower bound on s.
	sMin := 1.0 / float64(population) // at least one expected participant
	if b.MaxAccuracyLoss > 0 {
		n0, err := requiredSampleSize(b.MaxAccuracyLoss, conf, population)
		if err != nil {
			return Params{}, err
		}
		if lower := float64(n0) / float64(population); lower > sMin {
			sMin = lower
		}
	}

	// Candidate first-coin biases: an explicit P, or a utility-first
	// descent — lowering p relaxes the privacy cap on s, so keep trying
	// until the accuracy floor fits under it.
	candidates := []float64{b.P}
	if b.P == 0 {
		candidates = []float64{0.9, 0.8, 0.7, 0.6, 0.5, 0.4, 0.3, 0.2, 0.1}
	}

	var lastErr error
	for _, p := range candidates {
		params := rr.Params{P: p, Q: q}
		if err := params.Validate(); err != nil {
			return Params{}, err
		}
		sMax, err := privacySamplingCap(epsZK, params)
		if err != nil {
			return Params{}, err
		}
		// Latency SLA: the aggregator admits at most capacity×SLA
		// answers per window.
		if b.MaxLatency > 0 && b.ThroughputPerSec > 0 {
			maxAnswers := b.ThroughputPerSec * b.MaxLatency.Seconds()
			if upper := maxAnswers / float64(population); upper < sMax {
				sMax = upper
			}
		}
		// Resource cap.
		if b.MaxAnswersPerEpoch > 0 {
			if upper := float64(b.MaxAnswersPerEpoch) / float64(population); upper < sMax {
				sMax = upper
			}
		}
		if sMax <= 0 {
			return Params{}, fmt.Errorf("%w: latency/resource budget admits no samples", ErrUnsatisfiable)
		}
		if sMin > sMax {
			lastErr = fmt.Errorf("%w: accuracy needs s ≥ %.4f but p=%.2f q=%.2f caps s ≤ %.4f", ErrUnsatisfiable, sMin, p, q, sMax)
			continue
		}
		out := Params{S: sMax, RR: params}
		if err := out.Validate(); err != nil {
			return Params{}, err
		}
		return out, nil
	}
	return Params{}, lastErr
}

// privacySamplingCap returns the largest sampling fraction keeping
// ε_zk(s, p, q) within the budget. ε_zk is increasing in s and spans
// (0, ∞) over s ∈ (0, 1), so the cap is the Eq. 19 inverse, bounded away
// from 1.
func privacySamplingCap(epsZK float64, params rr.Params) (float64, error) {
	s, err := rr.SamplingForEpsilonZK(epsZK, params)
	if err != nil {
		return 0, fmt.Errorf("%w: ε_zk=%v with p=%v q=%v: %v", ErrUnsatisfiable, epsZK, params.P, params.Q, err)
	}
	if s > maxSamplingForZK {
		s = maxSamplingForZK
	}
	return s, nil
}

// requiredSampleSize returns the SRS sample size needed so that the
// margin of error of a proportion estimate (worst case variance 1/4) is
// at most relErr·(population/2) — i.e. the relative error of a typical
// bucket count stays within relErr — with finite population correction.
func requiredSampleSize(relErr, confidence float64, population int) (int, error) {
	if relErr <= 0 || relErr >= 1 {
		return 0, fmt.Errorf("%w: accuracy loss target %v", ErrBadBudget, relErr)
	}
	z, err := stats.NormalQuantile(1 - (1-confidence)/2)
	if err != nil {
		return 0, err
	}
	// Absolute margin on the proportion: relErr × 0.5 (a typical bucket
	// holds about half the population in the worst case).
	e := relErr * 0.5
	n0 := z * z * 0.25 / (e * e)
	// Finite population correction: n = n0 / (1 + (n0-1)/U).
	u := float64(population)
	n := n0 / (1 + (n0-1)/u)
	res := int(math.Ceil(n))
	if res < 1 {
		res = 1
	}
	if res > population {
		res = population
	}
	return res, nil
}

// Controller is the epoch-to-epoch feedback loop: when the measured
// accuracy loss exceeds the target it raises the sampling fraction, and
// when comfortably below it lowers s to reclaim budget, clamped to the
// privacy-derived maximum. Randomization parameters never change — the
// privacy guarantee was promised to users and cannot be weakened by
// utility feedback.
type Controller struct {
	params   Params
	target   float64
	sMin     float64
	sMax     float64
	gainUp   float64
	gainDown float64
}

// NewController bounds s in [sMin, sMax] around the initial parameters.
func NewController(initial Params, targetLoss, sMin, sMax float64) (*Controller, error) {
	if err := initial.Validate(); err != nil {
		return nil, err
	}
	if targetLoss <= 0 || sMin <= 0 || sMax > 1 || sMin > sMax {
		return nil, fmt.Errorf("%w: target=%v bounds=[%v,%v]", ErrBadBudget, targetLoss, sMin, sMax)
	}
	if initial.S < sMin || initial.S > sMax {
		return nil, fmt.Errorf("%w: initial s=%v outside [%v,%v]", ErrBadBudget, initial.S, sMin, sMax)
	}
	return &Controller{
		params:   initial,
		target:   targetLoss,
		sMin:     sMin,
		sMax:     sMax,
		gainUp:   1.5,
		gainDown: 0.9,
	}, nil
}

// Params returns the current parameters.
func (c *Controller) Params() Params { return c.params }

// Update folds in the measured accuracy loss of the last window and
// returns the (possibly adjusted) parameters for the next epoch.
func (c *Controller) Update(measuredLoss float64) Params {
	switch {
	case measuredLoss > c.target:
		c.params.S = math.Min(c.sMax, c.params.S*c.gainUp)
	case measuredLoss < c.target/2:
		c.params.S = math.Max(c.sMin, c.params.S*c.gainDown)
	}
	return c.params
}
