package budget

import (
	"errors"
	"math"
	"testing"
	"time"

	"privapprox/internal/rr"
)

func TestDeriveDefaults(t *testing.T) {
	params, err := Budget{}.Derive(100000)
	if err != nil {
		t.Fatal(err)
	}
	if err := params.Validate(); err != nil {
		t.Fatal(err)
	}
	// The derived triple must respect the default privacy budget.
	ezk, err := params.EpsilonZK()
	if err != nil {
		t.Fatal(err)
	}
	if ezk > DefaultEpsilonZK+1e-9 {
		t.Errorf("ε_zk = %v exceeds default budget %v", ezk, DefaultEpsilonZK)
	}
	if params.RR.Q != DefaultQ {
		t.Errorf("Q = %v, want default %v", params.RR.Q, DefaultQ)
	}
}

func TestDerivePrivacyBindsSampling(t *testing.T) {
	// With pinned p and q, the privacy budget should exactly determine s.
	b := Budget{EpsilonZK: 1.5, P: 0.5, Q: 0.6}
	params, err := b.Derive(100000)
	if err != nil {
		t.Fatal(err)
	}
	wantS, err := rr.SamplingForEpsilonZK(1.5, rr.Params{P: 0.5, Q: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(params.S-wantS) > 1e-9 {
		t.Errorf("s = %v, want %v from Eq. 19", params.S, wantS)
	}
}

func TestDeriveTightPrivacyMeansLowSampling(t *testing.T) {
	// Strong privacy with aggressive randomization parameters: still
	// satisfiable, but only by sampling very few clients.
	b := Budget{EpsilonZK: 0.5, P: 0.9, Q: 0.3}
	params, err := b.Derive(10000)
	if err != nil {
		t.Fatal(err)
	}
	if params.S > 0.05 {
		t.Errorf("s = %v, want tiny under ε_zk=0.5 with p=0.9", params.S)
	}
	ezk, err := params.EpsilonZK()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ezk-0.5) > 1e-9 {
		t.Errorf("ε_zk = %v, want 0.5 exactly (privacy binds)", ezk)
	}
}

func TestDeriveAccuracyFloorSatisfied(t *testing.T) {
	tight := Budget{MaxAccuracyLoss: 0.05, P: 0.5, Q: 0.6, EpsilonZK: 3}
	const population = 5000
	pt, err := tight.Derive(population)
	if err != nil {
		t.Fatal(err)
	}
	n0, err := requiredSampleSize(0.05, 0.95, population)
	if err != nil {
		t.Fatal(err)
	}
	if pt.S*population < float64(n0) {
		t.Errorf("s=%v yields %v expected samples, below floor %d", pt.S, pt.S*population, n0)
	}
}

func TestDeriveLowersPWhenAccuracyConflicts(t *testing.T) {
	// With free choice of p, a tight accuracy floor under a strict
	// privacy budget should force the initializer to pick a smaller p
	// rather than fail.
	b := Budget{EpsilonZK: 1.0, MaxAccuracyLoss: 0.05, Q: 0.6}
	params, err := b.Derive(5000)
	if err != nil {
		t.Fatal(err)
	}
	if params.RR.P >= 0.9 {
		t.Errorf("p = %v, expected the initializer to descend below 0.9", params.RR.P)
	}
	ezk, err := params.EpsilonZK()
	if err != nil {
		t.Fatal(err)
	}
	if ezk > 1.0+1e-9 {
		t.Errorf("ε_zk = %v exceeds budget 1.0", ezk)
	}
}

func TestDeriveAccuracyVsResourceConflict(t *testing.T) {
	// Tight accuracy on a big population, but a resource cap of 10
	// answers: infeasible.
	b := Budget{MaxAccuracyLoss: 0.01, MaxAnswersPerEpoch: 10, P: 0.5, Q: 0.6, EpsilonZK: 3}
	if _, err := b.Derive(1000000); !errors.Is(err, ErrUnsatisfiable) {
		t.Errorf("expected unsatisfiable, got %v", err)
	}
}

func TestDeriveLatencyCapsSampling(t *testing.T) {
	// Capacity 1000 answers/sec × 1s SLA = 1000 answers from 100k
	// clients → s ≤ 0.01.
	b := Budget{
		MaxLatency:       time.Second,
		ThroughputPerSec: 1000,
		P:                0.5, Q: 0.6, EpsilonZK: 3,
	}
	params, err := b.Derive(100000)
	if err != nil {
		t.Fatal(err)
	}
	if params.S > 0.01+1e-12 {
		t.Errorf("s = %v, want ≤ 0.01 under the SLA", params.S)
	}
}

func TestDeriveResourceCap(t *testing.T) {
	b := Budget{MaxAnswersPerEpoch: 500, P: 0.5, Q: 0.6, EpsilonZK: 3}
	params, err := b.Derive(10000)
	if err != nil {
		t.Fatal(err)
	}
	if params.S > 0.05+1e-12 {
		t.Errorf("s = %v, want ≤ 0.05 under the answer cap", params.S)
	}
}

func TestDeriveValidation(t *testing.T) {
	if _, err := (Budget{}).Derive(0); err == nil {
		t.Error("expected error for zero population")
	}
	if _, err := (Budget{EpsilonZK: -1}).Derive(10); err == nil {
		t.Error("expected error for negative epsilon")
	}
	if _, err := (Budget{Confidence: 2}).Derive(10); err == nil {
		t.Error("expected error for confidence > 1")
	}
	if _, err := (Budget{MaxAccuracyLoss: 2, P: 0.5}).Derive(10); err == nil {
		t.Error("expected error for accuracy loss ≥ 1")
	}
	if _, err := (Budget{P: 1.5}).Derive(10); err == nil {
		t.Error("expected error for bad P")
	}
}

func TestParamsValidateAndEpsilon(t *testing.T) {
	good := Params{S: 0.5, RR: rr.Params{P: 0.5, Q: 0.5}}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := good.EpsilonZK(); err != nil {
		t.Fatal(err)
	}
	bad := Params{S: 0, RR: rr.Params{P: 0.5, Q: 0.5}}
	if err := bad.Validate(); err == nil {
		t.Error("expected error for s = 0")
	}
}

func TestRequiredSampleSizeMonotone(t *testing.T) {
	n1, err := requiredSampleSize(0.05, 0.95, 1000000)
	if err != nil {
		t.Fatal(err)
	}
	n2, err := requiredSampleSize(0.01, 0.95, 1000000)
	if err != nil {
		t.Fatal(err)
	}
	if n2 <= n1 {
		t.Errorf("tighter accuracy needs more samples: %d vs %d", n2, n1)
	}
	// Small populations cap at the population size.
	n3, err := requiredSampleSize(0.001, 0.99, 50)
	if err != nil {
		t.Fatal(err)
	}
	if n3 > 50 {
		t.Errorf("sample size %d exceeds population", n3)
	}
}

func TestControllerRaisesOnHighError(t *testing.T) {
	initial := Params{S: 0.2, RR: rr.Params{P: 0.5, Q: 0.6}}
	c, err := NewController(initial, 0.05, 0.01, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	p := c.Update(0.10) // loss above target → raise s
	if p.S <= 0.2 {
		t.Errorf("s = %v, want > 0.2", p.S)
	}
	// Repeated violations saturate at sMax.
	for i := 0; i < 20; i++ {
		p = c.Update(0.10)
	}
	if p.S != 0.9 {
		t.Errorf("s = %v, want clamp at 0.9", p.S)
	}
	// Randomization never changes.
	if p.RR != initial.RR {
		t.Error("controller must not touch randomization parameters")
	}
}

func TestControllerLowersOnLowError(t *testing.T) {
	initial := Params{S: 0.5, RR: rr.Params{P: 0.5, Q: 0.6}}
	c, err := NewController(initial, 0.05, 0.01, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	p := c.Update(0.001) // far below target → reclaim budget
	if p.S >= 0.5 {
		t.Errorf("s = %v, want < 0.5", p.S)
	}
	// In the dead zone nothing moves.
	mid := c.Params().S
	p = c.Update(0.04)
	if p.S != mid {
		t.Errorf("s moved in dead zone: %v -> %v", mid, p.S)
	}
	// Clamp at sMin.
	for i := 0; i < 100; i++ {
		p = c.Update(0.0001)
	}
	if p.S != 0.01 {
		t.Errorf("s = %v, want clamp at 0.01", p.S)
	}
}

func TestControllerValidation(t *testing.T) {
	ok := Params{S: 0.5, RR: rr.Params{P: 0.5, Q: 0.6}}
	if _, err := NewController(ok, 0, 0.01, 0.9); err == nil {
		t.Error("expected error for zero target")
	}
	if _, err := NewController(ok, 0.05, 0.6, 0.9); err == nil {
		t.Error("expected error for initial s below sMin")
	}
	if _, err := NewController(Params{S: 0}, 0.05, 0.01, 0.9); err == nil {
		t.Error("expected error for invalid params")
	}
	if _, err := NewController(ok, 0.05, 0.9, 0.1); err == nil {
		t.Error("expected error for inverted bounds")
	}
}
