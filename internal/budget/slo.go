package budget

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
)

// SLOController is the closed-loop overload controller layered above the
// accuracy feedback Controller: where Controller trades privacy budget
// for accuracy between epochs, SLOController trades *accuracy for
// latency* under overload. It tracks the p95 window-fire latency over a
// sliding window of observations and actuates a shed threshold ∈
// [shedMin, 1]: when p95 exceeds the target the threshold tightens
// multiplicatively (shedding answers and spending approximation), and
// when the system is comfortably under target it relaxes additively
// back toward 1 — the classic AIMD shape, conservative on recovery so
// the loop does not oscillate between shedding and collapse.
//
// It is not safe for concurrent use; core.System drives it under its
// controller lock.
type SLOController struct {
	target  float64 // p95 latency target, in the caller's unit
	shedMin float64
	window  int

	shed float64
	obs  []float64 // ring buffer of recent latencies
	next int       // ring write position
	full bool
}

// SLO controller gains: over target multiplies the threshold by
// sloTighten; under half the target it recovers by ×sloRelax, capped at
// 1 (multiplicative recovery is gentle enough here because shed is
// bounded in [shedMin, 1], a span of at most 1 decade in practice).
const (
	sloTighten = 0.7
	sloRelax   = 1.1
)

// NewSLOController builds a controller targeting the given p95 latency,
// shedding no lower than shedMin, over a sliding window of `window`
// observations.
func NewSLOController(targetP95, shedMin float64, window int) (*SLOController, error) {
	if targetP95 <= 0 || math.IsNaN(targetP95) {
		return nil, fmt.Errorf("%w: SLO target %v", ErrBadBudget, targetP95)
	}
	if !(shedMin > 0) || shedMin > 1 {
		return nil, fmt.Errorf("%w: shed floor %v", ErrBadBudget, shedMin)
	}
	if window < 1 {
		return nil, fmt.Errorf("%w: window %d", ErrBadBudget, window)
	}
	return &SLOController{
		target:  targetP95,
		shedMin: shedMin,
		window:  window,
		shed:    1,
		obs:     make([]float64, window),
	}, nil
}

// Shed returns the current shed threshold ∈ [shedMin, 1].
func (c *SLOController) Shed() float64 { return c.shed }

// Target returns the p95 latency target.
func (c *SLOController) Target() float64 { return c.target }

// P95 returns the 95th percentile over the observation window (0 before
// any observation).
func (c *SLOController) P95() float64 {
	n := c.next
	if c.full {
		n = c.window
	}
	if n == 0 {
		return 0
	}
	sorted := make([]float64, n)
	copy(sorted, c.obs[:n])
	sort.Float64s(sorted)
	// Nearest-rank p95 (1-indexed rank ⌈0.95·n⌉).
	rank := int(math.Ceil(0.95 * float64(n)))
	if rank < 1 {
		rank = 1
	}
	return sorted[rank-1]
}

// Observe folds in one window-fire latency and returns the (possibly
// adjusted) shed threshold for the next epoch: multiplicative tighten
// when p95 is over target, gentle relax when under half the target.
func (c *SLOController) Observe(latency float64) float64 {
	if latency < 0 || math.IsNaN(latency) {
		latency = 0
	}
	c.obs[c.next] = latency
	c.next++
	if c.next == c.window {
		c.next = 0
		c.full = true
	}
	p95 := c.P95()
	switch {
	case p95 > c.target:
		c.shed = math.Max(c.shedMin, c.shed*sloTighten)
	case p95 < c.target/2:
		c.shed = math.Min(1, c.shed*sloRelax)
	}
	return c.shed
}

// AppendState serializes the controller's mutable state (shed threshold
// and observation ring) for a checkpoint. The static configuration —
// target, floor, window size — is not stored: it is re-supplied on
// restore and validated against the ring length.
func (c *SLOController) AppendState(buf []byte) []byte {
	buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(c.shed))
	buf = binary.BigEndian.AppendUint32(buf, uint32(c.next))
	if c.full {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	buf = binary.BigEndian.AppendUint32(buf, uint32(c.window))
	for _, v := range c.obs {
		buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(v))
	}
	return buf
}

// RestoreState reinstalls serialized state produced by AppendState,
// returning the remaining bytes. The stored window length must match
// this controller's configuration — a mismatched restore would silently
// change the loop's time constant.
func (c *SLOController) RestoreState(buf []byte) ([]byte, error) {
	const fixed = 8 + 4 + 1 + 4
	if len(buf) < fixed {
		return nil, fmt.Errorf("%w: SLO state truncated", ErrBadBudget)
	}
	shed := math.Float64frombits(binary.BigEndian.Uint64(buf))
	next := int(binary.BigEndian.Uint32(buf[8:]))
	fullB := buf[12]
	window := int(binary.BigEndian.Uint32(buf[13:]))
	buf = buf[fixed:]
	if window != c.window {
		return nil, fmt.Errorf("%w: SLO state window %d, controller configured for %d", ErrBadBudget, window, c.window)
	}
	if next < 0 || next >= window || fullB > 1 {
		return nil, fmt.Errorf("%w: SLO state corrupt (next=%d full=%d)", ErrBadBudget, next, fullB)
	}
	if !(shed > 0) || shed > 1 {
		return nil, fmt.Errorf("%w: SLO state shed %v", ErrBadBudget, shed)
	}
	if len(buf) < 8*window {
		return nil, fmt.Errorf("%w: SLO state ring truncated", ErrBadBudget)
	}
	for i := 0; i < window; i++ {
		v := math.Float64frombits(binary.BigEndian.Uint64(buf[8*i:]))
		if math.IsNaN(v) || v < 0 {
			return nil, fmt.Errorf("%w: SLO state observation %v", ErrBadBudget, v)
		}
		c.obs[i] = v
	}
	c.shed = shed
	c.next = next
	c.full = fullB == 1
	return buf[8*window:], nil
}
