package budget

import (
	"bytes"
	"testing"
)

func TestSLOControllerValidation(t *testing.T) {
	for _, tc := range []struct {
		target, shedMin float64
		window          int
	}{
		{0, 0.1, 8},
		{-1, 0.1, 8},
		{2, 0, 8},
		{2, 1.5, 8},
		{2, 0.1, 0},
	} {
		if _, err := NewSLOController(tc.target, tc.shedMin, tc.window); err == nil {
			t.Errorf("NewSLOController(%v, %v, %d) accepted", tc.target, tc.shedMin, tc.window)
		}
	}
}

func TestSLOControllerTightensAndRecovers(t *testing.T) {
	c, err := NewSLOController(2.0, 0.05, 4)
	if err != nil {
		t.Fatal(err)
	}
	if c.Shed() != 1 {
		t.Fatalf("initial shed = %v", c.Shed())
	}
	// Sustained overload: p95 far over target → threshold walks down to
	// the floor and no further.
	for i := 0; i < 50; i++ {
		c.Observe(10)
	}
	if c.Shed() != 0.05 {
		t.Fatalf("shed under sustained overload = %v, want floor 0.05", c.Shed())
	}
	if got := c.P95(); got != 10 {
		t.Fatalf("P95 = %v, want 10", got)
	}
	// Recovery: comfortably under half the target → relaxes back to 1,
	// capped there.
	for i := 0; i < 100; i++ {
		c.Observe(0.5)
	}
	if c.Shed() != 1 {
		t.Fatalf("shed after recovery = %v, want 1", c.Shed())
	}
	// In the dead band (between target/2 and target) the threshold
	// holds steady.
	c2, _ := NewSLOController(2.0, 0.05, 4)
	for i := 0; i < 20; i++ {
		if got := c2.Observe(1.5); got != 1 {
			t.Fatalf("dead-band observation moved shed to %v", got)
		}
	}
}

func TestSLOControllerP95Window(t *testing.T) {
	c, err := NewSLOController(100, 0.1, 10)
	if err != nil {
		t.Fatal(err)
	}
	// One outlier in ten observations: the nearest-rank p95 of n=10 is
	// the maximum, so the outlier shows; after it slides out of the
	// window, p95 returns to baseline.
	c.Observe(50)
	for i := 0; i < 8; i++ {
		c.Observe(1)
	}
	c.Observe(1)
	if got := c.P95(); got != 50 {
		t.Fatalf("P95 with outlier in window = %v, want 50", got)
	}
	for i := 0; i < 10; i++ {
		c.Observe(1)
	}
	if got := c.P95(); got != 1 {
		t.Fatalf("P95 after outlier aged out = %v, want 1", got)
	}
}

func TestSLOControllerStateRoundTrip(t *testing.T) {
	c, err := NewSLOController(2.0, 0.05, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i, lat := range []float64{5, 4, 0.1, 6, 7, 3} {
		_ = i
		c.Observe(lat)
	}
	state := c.AppendState(nil)

	r, err := NewSLOController(2.0, 0.05, 8)
	if err != nil {
		t.Fatal(err)
	}
	rest, err := r.RestoreState(state)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 0 {
		t.Fatalf("%d bytes left after restore", len(rest))
	}
	if r.Shed() != c.Shed() || r.P95() != c.P95() {
		t.Fatalf("restored (shed=%v p95=%v), want (%v, %v)", r.Shed(), r.P95(), c.Shed(), c.P95())
	}
	// The restored controller continues identically.
	for _, lat := range []float64{9, 0.2, 4} {
		a, b := c.Observe(lat), r.Observe(lat)
		if a != b {
			t.Fatalf("post-restore divergence: %v vs %v", a, b)
		}
	}
	// Window mismatch is rejected, not silently adopted.
	w, _ := NewSLOController(2.0, 0.05, 16)
	if _, err := w.RestoreState(state); err == nil {
		t.Fatal("restore accepted a mismatched window")
	}
}

// FuzzSLOControllerRestore asserts RestoreState never panics and only
// accepts state that round-trips.
func FuzzSLOControllerRestore(f *testing.F) {
	c, err := NewSLOController(2.0, 0.05, 4)
	if err != nil {
		f.Fatal(err)
	}
	c.Observe(5)
	c.Observe(1)
	f.Add(c.AppendState(nil))
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, 64))
	f.Fuzz(func(t *testing.T, state []byte) {
		r, err := NewSLOController(2.0, 0.05, 4)
		if err != nil {
			t.Fatal(err)
		}
		rest, err := r.RestoreState(state)
		if err != nil {
			return
		}
		// Accepted state must re-serialize to exactly the consumed bytes.
		re := r.AppendState(nil)
		if !bytes.Equal(re, state[:len(state)-len(rest)]) {
			t.Fatalf("accepted state does not round-trip")
		}
	})
}
