package sampling

import (
	"fmt"
	"math"

	"privapprox/internal/stats"
)

// Stratum is one homogeneous sub-population in stratified sampling: its
// total size and the sampled answers drawn from it. The paper's technical
// report extends the client-side SRS with stratification to handle data
// streams whose distributions differ across client groups.
type Stratum struct {
	Name       string
	Population int
	Sample     []float64
}

// StratifiedEstimate is the combined population-sum estimate over all
// strata, with the per-stratum breakdown retained for inspection.
type StratifiedEstimate struct {
	Sum        float64
	Margin     float64
	Confidence float64
	PerStratum []SumEstimate
}

// Interval converts the estimate into a stats.ConfidenceInterval.
func (e StratifiedEstimate) Interval() stats.ConfidenceInterval {
	return stats.ConfidenceInterval{Estimate: e.Sum, Margin: e.Margin, Confidence: e.Confidence}
}

// EstimateStratifiedSum combines the per-stratum SRS estimators:
// τ̂ = Σ_h τ̂_h with V̂ar(τ̂) = Σ_h V̂ar(τ̂_h). The critical value uses
// Σ_h (n_h − 1) degrees of freedom, the standard conservative choice.
func EstimateStratifiedSum(strata []Stratum, confidence float64) (StratifiedEstimate, error) {
	if len(strata) == 0 {
		return StratifiedEstimate{}, ErrEmptySample
	}
	if confidence <= 0 || confidence >= 1 {
		return StratifiedEstimate{}, fmt.Errorf("%w: %v", ErrBadConfidence, confidence)
	}
	out := StratifiedEstimate{Confidence: confidence}
	var varianceSum float64
	df := 0
	for _, st := range strata {
		if len(st.Sample) == 0 {
			return StratifiedEstimate{}, fmt.Errorf("%w: stratum %q", ErrEmptySample, st.Name)
		}
		est, err := EstimateSum(st.Sample, st.Population, confidence)
		if err != nil {
			return StratifiedEstimate{}, fmt.Errorf("stratum %q: %w", st.Name, err)
		}
		out.Sum += est.Sum
		out.PerStratum = append(out.PerStratum, est)
		// Recover the variance from the stratum's margin and its own
		// critical value so we can re-combine with pooled df.
		v, err := varianceOf(st, est)
		if err != nil {
			return StratifiedEstimate{}, err
		}
		varianceSum += v
		if n := len(st.Sample); n > 1 {
			df += n - 1
		}
	}
	if df < 1 {
		out.Margin = math.Inf(1)
		return out, nil
	}
	tcrit, err := stats.TCritical(1-confidence, df)
	if err != nil {
		return StratifiedEstimate{}, err
	}
	out.Margin = tcrit * math.Sqrt(varianceSum)
	return out, nil
}

// varianceOf recomputes the stratum estimator variance from first
// principles (Eq. 4 applied within the stratum).
func varianceOf(st Stratum, est SumEstimate) (float64, error) {
	n := len(st.Sample)
	if n < 2 {
		return 0, nil
	}
	u := float64(st.Population)
	uPrime := float64(n)
	return u * u / uPrime * stats.Variance(st.Sample) * (u - uPrime) / u, nil
}

// ProportionalAllocation splits a total sample budget across strata in
// proportion to their population sizes, guaranteeing at least one sample
// per stratum when the budget allows. It returns the per-stratum sample
// sizes in input order.
func ProportionalAllocation(populations []int, budget int) ([]int, error) {
	if len(populations) == 0 {
		return nil, ErrEmptySample
	}
	if budget < len(populations) {
		return nil, fmt.Errorf("sampling: budget %d below one sample per stratum (%d strata)", budget, len(populations))
	}
	total := 0
	for i, p := range populations {
		if p <= 0 {
			return nil, fmt.Errorf("sampling: stratum %d has population %d", i, p)
		}
		total += p
	}
	out := make([]int, len(populations))
	assigned := 0
	for i, p := range populations {
		out[i] = budget * p / total
		if out[i] == 0 {
			out[i] = 1
		}
		if out[i] > p {
			out[i] = p
		}
		assigned += out[i]
	}
	// Distribute any remainder to the largest strata that still have room.
	for assigned < budget {
		best := -1
		for i, p := range populations {
			if out[i] >= p {
				continue
			}
			if best == -1 || p-out[i] > populations[best]-out[best] {
				best = i
			}
		}
		if best == -1 {
			break // every stratum fully sampled
		}
		out[best]++
		assigned++
	}
	return out, nil
}
