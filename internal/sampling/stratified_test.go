package sampling

import (
	"math"
	"math/rand"
	"testing"
)

func TestStratifiedSumCombines(t *testing.T) {
	strata := []Stratum{
		{Name: "a", Population: 100, Sample: []float64{1, 1, 0, 1}},
		{Name: "b", Population: 50, Sample: []float64{0, 0, 1, 0, 0}},
	}
	est, err := EstimateStratifiedSum(strata, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	// τ̂ = 100/4·3 + 50/5·1 = 75 + 10 = 85.
	if math.Abs(est.Sum-85) > 1e-9 {
		t.Errorf("Sum = %v, want 85", est.Sum)
	}
	if len(est.PerStratum) != 2 {
		t.Fatalf("PerStratum = %d, want 2", len(est.PerStratum))
	}
	if est.Margin <= 0 {
		t.Errorf("Margin = %v, want > 0", est.Margin)
	}
}

func TestStratifiedSumValidation(t *testing.T) {
	if _, err := EstimateStratifiedSum(nil, 0.95); err == nil {
		t.Error("expected error for no strata")
	}
	if _, err := EstimateStratifiedSum([]Stratum{{Population: 10}}, 0.95); err == nil {
		t.Error("expected error for empty stratum sample")
	}
	strata := []Stratum{{Population: 10, Sample: []float64{1}}}
	if _, err := EstimateStratifiedSum(strata, 2); err == nil {
		t.Error("expected error for bad confidence")
	}
}

func TestStratifiedSingleSamplesGiveInfiniteMargin(t *testing.T) {
	strata := []Stratum{
		{Name: "a", Population: 10, Sample: []float64{1}},
		{Name: "b", Population: 10, Sample: []float64{0}},
	}
	est, err := EstimateStratifiedSum(strata, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(est.Margin, 1) {
		t.Errorf("Margin = %v, want +Inf with no df", est.Margin)
	}
}

// Stratified sampling should beat SRS on a strongly clustered population
// (the motivation for the extension in the technical report).
func TestStratifiedBeatsSRSOnSkewedStrata(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	const (
		perStratum = 5000
		sampleEach = 100
		trials     = 60
	)
	// Stratum A answers ~1, stratum B answers ~0: between-strata variance
	// dominates.
	popA := make([]float64, perStratum)
	popB := make([]float64, perStratum)
	trueSum := 0.0
	for i := range popA {
		if rng.Float64() < 0.95 {
			popA[i] = 1
		}
		if rng.Float64() < 0.05 {
			popB[i] = 1
		}
		trueSum += popA[i] + popB[i]
	}
	var srsErr, strErr float64
	for tr := 0; tr < trials; tr++ {
		// SRS: draw 2·sampleEach from the merged population.
		var srsSample []float64
		for i := 0; i < 2*sampleEach; i++ {
			if rng.Intn(2) == 0 {
				srsSample = append(srsSample, popA[rng.Intn(perStratum)])
			} else {
				srsSample = append(srsSample, popB[rng.Intn(perStratum)])
			}
		}
		srs, err := EstimateSum(srsSample, 2*perStratum, 0.95)
		if err != nil {
			t.Fatal(err)
		}
		srsErr += math.Abs(srs.Sum - trueSum)

		sampleOf := func(pop []float64) []float64 {
			s := make([]float64, sampleEach)
			for i := range s {
				s[i] = pop[rng.Intn(perStratum)]
			}
			return s
		}
		str, err := EstimateStratifiedSum([]Stratum{
			{Name: "A", Population: perStratum, Sample: sampleOf(popA)},
			{Name: "B", Population: perStratum, Sample: sampleOf(popB)},
		}, 0.95)
		if err != nil {
			t.Fatal(err)
		}
		strErr += math.Abs(str.Sum - trueSum)
	}
	if strErr >= srsErr {
		t.Errorf("stratified error %v not below SRS error %v", strErr, srsErr)
	}
}

func TestProportionalAllocation(t *testing.T) {
	got, err := ProportionalAllocation([]int{100, 300}, 40)
	if err != nil {
		t.Fatal(err)
	}
	if got[0]+got[1] != 40 {
		t.Errorf("allocation %v does not sum to budget", got)
	}
	if got[1] <= got[0] {
		t.Errorf("larger stratum should get more samples: %v", got)
	}
}

func TestProportionalAllocationMinimumOne(t *testing.T) {
	got, err := ProportionalAllocation([]int{1, 1000000}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] < 1 {
		t.Errorf("tiny stratum starved: %v", got)
	}
}

func TestProportionalAllocationErrors(t *testing.T) {
	if _, err := ProportionalAllocation(nil, 10); err == nil {
		t.Error("expected error for no strata")
	}
	if _, err := ProportionalAllocation([]int{10, 10, 10}, 2); err == nil {
		t.Error("expected error for budget below strata count")
	}
	if _, err := ProportionalAllocation([]int{0}, 2); err == nil {
		t.Error("expected error for zero population")
	}
}

func TestProportionalAllocationCapsAtPopulation(t *testing.T) {
	got, err := ProportionalAllocation([]int{2, 1000}, 500)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] > 2 {
		t.Errorf("allocation %v exceeds stratum population", got)
	}
}
