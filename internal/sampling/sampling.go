// Package sampling implements PrivApprox's client-side Simple Random
// Sampling (paper §3.2.1): each client flips a coin with probability s to
// decide whether it participates in answering a query in the current
// epoch, and the aggregator scales the observed sum back to the
// population with the classical SRS estimator (Eq. 2) and its
// t-distribution error bound (Eq. 3–4).
package sampling

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"

	"privapprox/internal/stats"
)

// Errors returned by the estimators.
var (
	ErrEmptySample   = errors.New("sampling: empty sample")
	ErrBadPopulation = errors.New("sampling: population smaller than sample")
	ErrBadFraction   = errors.New("sampling: fraction must be in (0, 1]")
	ErrBadConfidence = errors.New("sampling: confidence must be in (0, 1)")
)

// Bernoulli draws independent participation decisions with a fixed
// probability, backed by a caller-supplied PRNG so experiments are
// reproducible.
type Bernoulli struct {
	fraction float64
	rng      *rand.Rand
}

// NewBernoulli returns a sampler that participates with probability
// fraction ∈ (0, 1].
func NewBernoulli(fraction float64, rng *rand.Rand) (*Bernoulli, error) {
	if fraction <= 0 || fraction > 1 || math.IsNaN(fraction) {
		return nil, fmt.Errorf("%w: %v", ErrBadFraction, fraction)
	}
	if rng == nil {
		rng = rand.New(rand.NewSource(rand.Int63()))
	}
	return &Bernoulli{fraction: fraction, rng: rng}, nil
}

// Fraction returns the participation probability s.
func (b *Bernoulli) Fraction() float64 { return b.fraction }

// Participate flips the sampling coin.
func (b *Bernoulli) Participate() bool {
	return b.rng.Float64() < b.fraction
}

// HashDecider makes deterministic participation decisions from
// (clientID, epoch, seed). Distributed clients reach the same verdict
// without coordination, and re-running an epoch is reproducible — the
// property the paper's "synchronization-free" architecture relies on.
type HashDecider struct {
	fraction float64
	seed     uint64
}

// NewHashDecider returns a deterministic decider for the given
// participation fraction and seed.
func NewHashDecider(fraction float64, seed uint64) (*HashDecider, error) {
	if fraction <= 0 || fraction > 1 || math.IsNaN(fraction) {
		return nil, fmt.Errorf("%w: %v", ErrBadFraction, fraction)
	}
	return &HashDecider{fraction: fraction, seed: seed}, nil
}

// Fraction returns the participation probability s.
func (d *HashDecider) Fraction() float64 { return d.fraction }

// Uniform maps (clientID, epoch, seed) to a deterministic draw
// u ∈ [0, 1) — the coordinate behind Participate. Exposing it lets a
// shed threshold compose with the per-query fraction on the *same*
// draw: the participants at effective fraction f·shed are exactly the
// subset of the fraction-f participants with the smallest u, so
// tightening shed only removes clients, never swaps one set for
// another (a nested, deterministic shrink — the property that keeps
// shedding an SRS over the population).
func (d *HashDecider) Uniform(clientID string, epoch uint64) float64 {
	h := fnv.New64a()
	var buf [16]byte
	binary.BigEndian.PutUint64(buf[:8], d.seed)
	binary.BigEndian.PutUint64(buf[8:], epoch)
	h.Write(buf[:])
	h.Write([]byte(clientID))
	// FNV-1a's high bits mix poorly on short structured inputs, so run
	// the sum through a strong 64-bit finalizer (MurmurHash3 fmix64)
	// before mapping to [0, 1).
	x := h.Sum64()
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return float64(x>>11) / float64(1<<53)
}

// Participate reports whether the client participates in the epoch. The
// decision is a pure function of (clientID, epoch, seed).
func (d *HashDecider) Participate(clientID string, epoch uint64) bool {
	return d.Uniform(clientID, epoch) < d.fraction
}

// ParticipateShed is Participate at the effective fraction s·shed,
// where shed ∈ (0, 1] is the overload-control threshold. Its
// participants are always a subset of Participate's for the same
// epoch (shed = 1 is exactly Participate), so overload shedding
// composes with per-query sampling without disturbing the coin
// streams of clients that keep participating.
func (d *HashDecider) ParticipateShed(clientID string, epoch uint64, shed float64) bool {
	return d.Uniform(clientID, epoch) < d.fraction*shed
}

// SumEstimate is the approximate sum τ̂ with its error bound (paper
// Eq. 2–4): Sum ± Margin at the given confidence level.
type SumEstimate struct {
	Sum        float64 // τ̂, the scaled estimate of the population sum
	Margin     float64 // error bound at Confidence (Eq. 3)
	Confidence float64 // e.g. 0.95
	SampleSize int     // U′
	Population int     // U
}

// Interval converts the estimate into a stats.ConfidenceInterval.
func (e SumEstimate) Interval() stats.ConfidenceInterval {
	return stats.ConfidenceInterval{Estimate: e.Sum, Margin: e.Margin, Confidence: e.Confidence}
}

// EstimateSum scales the observed sample sum to the population
// (τ̂ = U/U′ · Σ aᵢ, Eq. 2) and attaches the t-distribution error bound
// of Eq. 3 using the estimated variance of Eq. 4 with the finite
// population correction (U−U′)/U.
func EstimateSum(sample []float64, population int, confidence float64) (SumEstimate, error) {
	var acc stats.Running
	for _, v := range sample {
		acc.Add(v)
	}
	return EstimateSumFromMoments(&acc, population, confidence)
}

// EstimateSumFromMoments is EstimateSum for streaming callers that keep a
// running accumulator instead of buffering the sample.
func EstimateSumFromMoments(acc *stats.Running, population int, confidence float64) (SumEstimate, error) {
	n := int(acc.N())
	if n == 0 {
		return SumEstimate{}, ErrEmptySample
	}
	if population < n {
		return SumEstimate{}, fmt.Errorf("%w: U=%d < U'=%d", ErrBadPopulation, population, n)
	}
	if confidence <= 0 || confidence >= 1 {
		return SumEstimate{}, fmt.Errorf("%w: %v", ErrBadConfidence, confidence)
	}
	u := float64(population)
	uPrime := float64(n)
	est := SumEstimate{
		Sum:        u / uPrime * acc.Sum(),
		Confidence: confidence,
		SampleSize: n,
		Population: population,
	}
	if n == 1 {
		// No variance information; the bound is vacuous.
		est.Margin = math.Inf(1)
		return est, nil
	}
	// Eq. 4: V̂ar(τ̂) = U²/U′ · σ² · (U−U′)/U.
	variance := u * u / uPrime * acc.Variance() * (u - uPrime) / u
	tcrit, err := stats.TCritical(1-confidence, n-1)
	if err != nil {
		return SumEstimate{}, err
	}
	est.Margin = tcrit * math.Sqrt(variance) // Eq. 3
	return est, nil
}

// EstimateCount is EstimateSum specialized to 0/1 answers: yes is the
// number of observed "1" bits among n sampled answers.
func EstimateCount(yes, n, population int, confidence float64) (SumEstimate, error) {
	if n < 0 || yes < 0 || yes > n {
		return SumEstimate{}, fmt.Errorf("sampling: invalid counts yes=%d n=%d", yes, n)
	}
	var acc stats.Running
	for i := 0; i < yes; i++ {
		acc.Add(1)
	}
	for i := yes; i < n; i++ {
		acc.Add(0)
	}
	return EstimateSumFromMoments(&acc, population, confidence)
}

// BinomialMoments returns a Running accumulator equivalent to observing
// yes ones and n-yes zeros, without the O(n) loop. Useful for large
// windows at the aggregator.
func BinomialMoments(yes, n int) (*stats.Running, error) {
	if n < 0 || yes < 0 || yes > n {
		return nil, fmt.Errorf("sampling: invalid counts yes=%d n=%d", yes, n)
	}
	var acc stats.Running
	if n == 0 {
		return &acc, nil
	}
	// Construct moments directly: mean = yes/n, M2 = Σ(x-mean)².
	mean := float64(yes) / float64(n)
	m2 := float64(yes)*(1-mean)*(1-mean) + float64(n-yes)*mean*mean
	acc = stats.FromRaw(int64(n), mean, m2, float64(yes), minBit(yes, n), maxBit(yes))
	return &acc, nil
}

func minBit(yes, n int) float64 {
	if yes == n { // all ones
		return 1
	}
	return 0
}

func maxBit(yes int) float64 {
	if yes > 0 {
		return 1
	}
	return 0
}
