package sampling

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewBernoulliValidation(t *testing.T) {
	for _, s := range []float64{0, -0.1, 1.01, math.NaN()} {
		if _, err := NewBernoulli(s, nil); err == nil {
			t.Errorf("NewBernoulli(%v): expected error", s)
		}
	}
	b, err := NewBernoulli(1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if b.Fraction() != 1 {
		t.Errorf("Fraction = %v", b.Fraction())
	}
	for i := 0; i < 100; i++ {
		if !b.Participate() {
			t.Fatal("fraction 1 must always participate")
		}
	}
}

func TestBernoulliRate(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	b, err := NewBernoulli(0.6, rng)
	if err != nil {
		t.Fatal(err)
	}
	const trials = 200000
	hits := 0
	for i := 0; i < trials; i++ {
		if b.Participate() {
			hits++
		}
	}
	rate := float64(hits) / trials
	if math.Abs(rate-0.6) > 0.01 {
		t.Errorf("participation rate = %v, want ≈0.6", rate)
	}
}

func TestHashDeciderDeterministic(t *testing.T) {
	d, err := NewHashDecider(0.5, 42)
	if err != nil {
		t.Fatal(err)
	}
	for epoch := uint64(0); epoch < 10; epoch++ {
		a := d.Participate("client-17", epoch)
		b := d.Participate("client-17", epoch)
		if a != b {
			t.Fatalf("non-deterministic decision at epoch %d", epoch)
		}
	}
}

func TestHashDeciderRateAndIndependence(t *testing.T) {
	d, err := NewHashDecider(0.3, 99)
	if err != nil {
		t.Fatal(err)
	}
	const clients = 100000
	hits := 0
	for i := 0; i < clients; i++ {
		if d.Participate(clientName(i), 1) {
			hits++
		}
	}
	rate := float64(hits) / clients
	if math.Abs(rate-0.3) > 0.01 {
		t.Errorf("rate = %v, want ≈0.3", rate)
	}
	// Different epochs should flip a reasonable share of decisions.
	changed := 0
	for i := 0; i < clients; i++ {
		if d.Participate(clientName(i), 1) != d.Participate(clientName(i), 2) {
			changed++
		}
	}
	if changed == 0 {
		t.Error("decisions never change across epochs")
	}
}

func clientName(i int) string {
	return "c" + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26)) + string(rune('a'+(i/676)%26)) + string(rune('0'+(i/17576)%10))
}

func TestNewHashDeciderValidation(t *testing.T) {
	if _, err := NewHashDecider(0, 1); err == nil {
		t.Error("expected error for fraction 0")
	}
	if _, err := NewHashDecider(1.5, 1); err == nil {
		t.Error("expected error for fraction > 1")
	}
}

func TestEstimateSumExactWhenFullySampled(t *testing.T) {
	sample := []float64{1, 0, 1, 1, 0, 1, 0, 0, 1, 1}
	est, err := EstimateSum(sample, len(sample), 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if est.Sum != 6 {
		t.Errorf("Sum = %v, want 6", est.Sum)
	}
	// Finite population correction makes the margin zero at full sampling.
	if est.Margin != 0 {
		t.Errorf("Margin = %v, want 0 at U=U'", est.Margin)
	}
}

func TestEstimateSumScales(t *testing.T) {
	sample := []float64{2, 2, 2, 2}
	est, err := EstimateSum(sample, 100, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if est.Sum != 200 {
		t.Errorf("Sum = %v, want 200", est.Sum)
	}
	if est.SampleSize != 4 || est.Population != 100 {
		t.Errorf("sizes = %d/%d", est.SampleSize, est.Population)
	}
	if est.Margin != 0 {
		// All values identical: sample variance 0, so margin must be 0.
		t.Errorf("Margin = %v, want 0 for zero-variance sample", est.Margin)
	}
}

func TestEstimateSumErrors(t *testing.T) {
	if _, err := EstimateSum(nil, 10, 0.95); err == nil {
		t.Error("expected error for empty sample")
	}
	if _, err := EstimateSum([]float64{1, 2}, 1, 0.95); err == nil {
		t.Error("expected error for population < sample")
	}
	if _, err := EstimateSum([]float64{1, 2}, 10, 1.5); err == nil {
		t.Error("expected error for bad confidence")
	}
	est, err := EstimateSum([]float64{3}, 10, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(est.Margin, 1) {
		t.Errorf("single-sample margin = %v, want +Inf", est.Margin)
	}
}

// The defining property of a confidence interval: the true sum is covered
// at roughly the nominal rate.
func TestEstimateSumCoverage(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	const (
		population = 10000
		trials     = 300
		conf       = 0.95
	)
	// Fixed population of 0/1 answers with 60% ones, as in the paper's
	// microbenchmarks.
	pop := make([]float64, population)
	trueSum := 0.0
	for i := range pop {
		if rng.Float64() < 0.6 {
			pop[i] = 1
			trueSum++
		}
	}
	covered := 0
	for tr := 0; tr < trials; tr++ {
		var sample []float64
		for _, v := range pop {
			if rng.Float64() < 0.2 {
				sample = append(sample, v)
			}
		}
		est, err := EstimateSum(sample, population, conf)
		if err != nil {
			t.Fatal(err)
		}
		if est.Interval().Contains(trueSum) {
			covered++
		}
	}
	rate := float64(covered) / trials
	if rate < 0.90 {
		t.Errorf("coverage = %v, want ≥ 0.90 at nominal 0.95", rate)
	}
}

func TestEstimateCountMatchesEstimateSum(t *testing.T) {
	f := func(yesRaw, nRaw uint16) bool {
		n := int(nRaw%500) + 2
		yes := int(yesRaw) % (n + 1)
		population := n * 3
		fromCount, err := EstimateCount(yes, n, population, 0.95)
		if err != nil {
			return false
		}
		sample := make([]float64, n)
		for i := 0; i < yes; i++ {
			sample[i] = 1
		}
		fromSum, err := EstimateSum(sample, population, 0.95)
		if err != nil {
			return false
		}
		return math.Abs(fromCount.Sum-fromSum.Sum) < 1e-9 &&
			math.Abs(fromCount.Margin-fromSum.Margin) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEstimateCountValidation(t *testing.T) {
	if _, err := EstimateCount(5, 3, 10, 0.95); err == nil {
		t.Error("expected error for yes > n")
	}
	if _, err := EstimateCount(-1, 3, 10, 0.95); err == nil {
		t.Error("expected error for negative yes")
	}
}

func TestBinomialMomentsMatchesLoop(t *testing.T) {
	f := func(yesRaw, nRaw uint16) bool {
		n := int(nRaw % 1000)
		yes := 0
		if n > 0 {
			yes = int(yesRaw) % (n + 1)
		}
		acc, err := BinomialMoments(yes, n)
		if err != nil {
			return false
		}
		est1, err1 := EstimateSumFromMoments(acc, n*2+10, 0.9)
		est2, err2 := EstimateCount(yes, n, n*2+10, 0.9)
		if n == 0 {
			return err1 != nil && err2 != nil
		}
		if err1 != nil || err2 != nil {
			return false
		}
		return math.Abs(est1.Sum-est2.Sum) < 1e-9 &&
			(math.IsInf(est1.Margin, 1) && math.IsInf(est2.Margin, 1) ||
				math.Abs(est1.Margin-est2.Margin) < 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBinomialMomentsValidation(t *testing.T) {
	if _, err := BinomialMoments(4, 2); err == nil {
		t.Error("expected error for yes > n")
	}
}
