package sampling

import (
	"fmt"
	"math"
	"testing"
)

// TestParticipateShedNested checks the property overload shedding
// rests on: the participant set at shed s is a nested subset of the
// participant set at any s' ≥ s, and shed = 1 is exactly Participate.
func TestParticipateShedNested(t *testing.T) {
	d, err := NewHashDecider(0.5, 42)
	if err != nil {
		t.Fatal(err)
	}
	sheds := []float64{0.1, 0.25, 0.5, 0.75, 1}
	for epoch := uint64(0); epoch < 20; epoch++ {
		for i := 0; i < 500; i++ {
			id := fmt.Sprintf("client-%d", i)
			prev := false
			for j, s := range sheds {
				in := d.ParticipateShed(id, epoch, s)
				if j > 0 && prev && !in {
					t.Fatalf("client %s epoch %d: in at shed %v but out at looser shed %v",
						id, epoch, sheds[j-1], s)
				}
				prev = in
			}
			if d.ParticipateShed(id, epoch, 1) != d.Participate(id, epoch) {
				t.Fatalf("client %s epoch %d: shed=1 differs from Participate", id, epoch)
			}
		}
	}
}

// TestParticipateShedRate checks the realized rate tracks s·shed.
func TestParticipateShedRate(t *testing.T) {
	d, err := NewHashDecider(0.8, 7)
	if err != nil {
		t.Fatal(err)
	}
	const clients = 20000
	shed := 0.5
	in := 0
	for i := 0; i < clients; i++ {
		if d.ParticipateShed(fmt.Sprintf("c%d", i), 3, shed) {
			in++
		}
	}
	want := 0.8 * shed
	got := float64(in) / clients
	// 5σ binomial tolerance.
	tol := 5 * math.Sqrt(want*(1-want)/clients)
	if math.Abs(got-want) > tol {
		t.Fatalf("realized rate %v, want %v ± %v", got, want, tol)
	}
}

// TestEstimatorUnbiasedUnderTimeVaryingShed is the satellite property
// test: with the sampling fraction varying epoch to epoch (the shed
// schedule of an overloaded run), the SRS estimator — which scales by
// the *observed* sample size — stays unbiased. The mean of the per-epoch
// estimates must converge on the true population sum within a CLT
// tolerance built from the per-epoch sampling variances.
func TestEstimatorUnbiasedUnderTimeVaryingShed(t *testing.T) {
	const (
		population = 4000
		fraction   = 0.6
		epochs     = 400
	)
	d, err := NewHashDecider(fraction, 99)
	if err != nil {
		t.Fatal(err)
	}
	// Fixed client values: client i holds 1 iff i%3 == 0 (true sum is
	// independent of the sampling machinery).
	value := func(i int) float64 {
		if i%3 == 0 {
			return 1
		}
		return 0
	}
	trueSum := 0.0
	for i := 0; i < population; i++ {
		trueSum += value(i)
	}
	// Shed schedule tightening and recovering mid-run, as a controller
	// under a surge would drive it.
	shedAt := func(e uint64) float64 {
		switch {
		case e < 100:
			return 1
		case e < 200:
			return 0.5
		case e < 300:
			return 0.25
		default:
			return 0.7
		}
	}
	var meanEst, varSum float64
	for e := uint64(0); e < epochs; e++ {
		shed := shedAt(e)
		yes, n := 0, 0
		for i := 0; i < population; i++ {
			if d.ParticipateShed(fmt.Sprintf("client-%d", i), e, shed) {
				n++
				if value(i) == 1 {
					yes++
				}
			}
		}
		moments, err := BinomialMoments(yes, n)
		if err != nil {
			t.Fatal(err)
		}
		est, err := EstimateSumFromMoments(moments, population, 0.95)
		if err != nil {
			t.Fatalf("epoch %d (n=%d): %v", e, n, err)
		}
		meanEst += est.Sum / epochs
		// Hypergeometric variance of the per-epoch estimate, for the
		// tolerance of the mean.
		u, up := float64(population), float64(n)
		p := trueSum / u
		varSum += u * u / up * p * (1 - p) * (u - up) / u
	}
	sigmaMean := math.Sqrt(varSum) / epochs
	if math.Abs(meanEst-trueSum) > 5*sigmaMean {
		t.Fatalf("mean estimate %v, true sum %v, tolerance %v — estimator biased under time-varying shed",
			meanEst, trueSum, 5*sigmaMean)
	}
}

// TestMarginGrowsAsShedTightens is the CI-width half of the satellite
// property test: at a fixed yes-fraction, tightening the shed threshold
// (shrinking the realized sample) must monotonically widen the reported
// margin — approximation spent shows up as honest error bars.
func TestMarginGrowsAsShedTightens(t *testing.T) {
	const population = 100000
	prevMargin := -1.0
	for _, shed := range []float64{1, 0.8, 0.6, 0.4, 0.2, 0.1, 0.05} {
		n := int(float64(population) * 0.5 * shed) // base fraction 0.5
		yes := n / 4                               // fixed 25% yes-fraction
		moments, err := BinomialMoments(yes, n)
		if err != nil {
			t.Fatal(err)
		}
		est, err := EstimateSumFromMoments(moments, population, 0.95)
		if err != nil {
			t.Fatal(err)
		}
		if est.Margin <= prevMargin {
			t.Fatalf("shed %v: margin %v did not grow past %v", shed, est.Margin, prevMargin)
		}
		prevMargin = est.Margin
	}
}
