// Package surge is the overload test harness: a seeded step-load
// generator driving a core.System through a base → 10×-offered-load →
// base profile with a fixed per-tick drain budget, recording the
// latency/approximation frontier each tick. It exists to compare a
// controlled run (EnableSLO: approximation-aware load shedding) against
// an uncontrolled one under the identical offered-load sequence: the
// controlled system trades CI width for bounded window-fire lag, the
// uncontrolled one's backlog and lag grow without bound for as long as
// the surge lasts.
//
// Everything is deterministic under Config.Seed: the population, the
// sampling and shed coins, the share partition routing (seeded MIDs),
// and the bounded sequential drain. Two runs of the same Config produce
// byte-identical reports, which is what lets `make surge` gate on exact
// numbers rather than thresholds alone.
package surge

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"privapprox/internal/aggregator"
	"privapprox/internal/budget"
	"privapprox/internal/core"
	"privapprox/internal/minisql"
	"privapprox/internal/rr"
	"privapprox/internal/workload"
)

// Config shapes one surge run. The zero value is not runnable; use
// DefaultConfig as the base.
type Config struct {
	// Clients is the population size.
	Clients int
	// Seed drives every random choice in the run.
	Seed int64
	// BaseEpochs and SurgeEpochs are the answer epochs offered per tick
	// in and out of the surge; SurgeEpochs/BaseEpochs is the step
	// multiplier (10× by default).
	BaseEpochs  int
	SurgeEpochs int
	// SurgeStart/SurgeEnd delimit the surge ticks [start, end).
	SurgeStart int
	SurgeEnd   int
	// Ticks is the total tick count.
	Ticks int
	// DrainBudget is the aggregation capacity per tick, in records. It
	// must cover BaseEpochs' offered load (the base load is sustainable)
	// and must not cover SurgeEpochs' (the surge is not).
	DrainBudget int
	// Controlled enables the SLO overload controller.
	Controlled bool
	// TargetLagSlides, ShedMin, Window parameterize the controller.
	TargetLagSlides float64
	ShedMin         float64
	Window          int
}

// DefaultConfig is the `make surge` gate profile: 30 clients, a 10×
// offered-load step over ticks [5, 15) of 30, and a drain budget that
// covers ~1.25× the base load.
func DefaultConfig(controlled bool) Config {
	return Config{
		Clients:         30,
		Seed:            424242,
		BaseEpochs:      1,
		SurgeEpochs:     10,
		SurgeStart:      5,
		SurgeEnd:        15,
		Ticks:           30,
		DrainBudget:     60,
		Controlled:      controlled,
		TargetLagSlides: 4,
		ShedMin:         0.1,
		Window:          3,
	}
}

// TickStat is one tick's observation of the latency/approximation
// frontier.
type TickStat struct {
	Tick     int
	Offered  int   // answer epochs offered this tick
	Drained  int   // records drained
	Pending  int64 // backlog left at the proxies after the drain
	Shed     float64
	Fired    int       // windows fired this tick
	Lags     []float64 // window-fire lag of each fired window, in slides
	RelWidth float64   // worst finite relative CI width among fired windows (0 if none)
}

// Report is a full surge run's record.
type Report struct {
	Config       Config
	Ticks        []TickStat
	PeakPending  int64
	FinalPending int64
	MinShed      float64
	// TailP95Lag is the p95 window-fire lag over the final third of the
	// run — the steady state after the surge ends.
	TailP95Lag float64
	// MaxRelWidth splits the CI-width frontier by phase: the worst
	// finite relative width before the surge and from its start on.
	MaxRelWidthBase  float64
	MaxRelWidthSurge float64
	// Shedded is the total count of shed-suppressed answers.
	Shedded int64
}

// Run executes one surge profile and returns its report.
func Run(cfg Config) (*Report, error) {
	if cfg.Ticks <= 0 || cfg.BaseEpochs <= 0 || cfg.SurgeEpochs < cfg.BaseEpochs ||
		cfg.SurgeStart < 0 || cfg.SurgeEnd < cfg.SurgeStart || cfg.SurgeEnd > cfg.Ticks ||
		cfg.DrainBudget <= 0 || cfg.Clients <= 0 {
		return nil, fmt.Errorf("surge: bad config %+v", cfg)
	}
	q, err := workload.TaxiQuery("analyst", 1, time.Second, 4*time.Second, 2*time.Second)
	if err != nil {
		return nil, err
	}
	params := budget.Params{S: 0.8, RR: rr.Params{P: 0.9, Q: 0.6}}
	origin := time.Unix(1_700_000_000, 0)
	sys, err := core.New(core.Config{
		Clients:    cfg.Clients,
		Proxies:    2,
		Seed:       cfg.Seed,
		Origin:     origin,
		MultiQuery: true,
		Params:     &params,
		// Workers pinned to 1: the surge gate compares exact per-tick
		// records, and the bounded drain's cut point depends on the
		// partition append order, which only Workers == 1 pins.
		Workers: 1,
		Populate: func(i int, db *minisql.DB) error {
			rng := rand.New(rand.NewSource(cfg.Seed + int64(i) + 1))
			return workload.PopulateTaxi(db, rng, 3, time.Unix(1000, 0), time.Minute)
		},
	})
	if err != nil {
		return nil, err
	}
	defer sys.Close()
	if err := sys.Register(q); err != nil {
		return nil, err
	}
	if cfg.Controlled {
		if err := sys.EnableSLO(cfg.TargetLagSlides, cfg.ShedMin, cfg.Window); err != nil {
			return nil, err
		}
	}

	lagOf := func(res aggregator.Result) float64 {
		cur := origin.Add(time.Duration(sys.Epoch()) * q.Frequency)
		return float64(cur.Sub(res.Window.End)) / float64(q.Slide)
	}

	rep := &Report{Config: cfg, MinShed: 1}
	var tailLags []float64
	tailFrom := cfg.Ticks - cfg.Ticks/3
	for tick := 0; tick < cfg.Ticks; tick++ {
		offered := cfg.BaseEpochs
		if tick >= cfg.SurgeStart && tick < cfg.SurgeEnd {
			offered = cfg.SurgeEpochs
		}
		for k := 0; k < offered; k++ {
			if _, err := sys.AnswerEpoch(); err != nil {
				return nil, err
			}
		}
		res, drained, err := sys.DrainUpTo(cfg.DrainBudget)
		if err != nil {
			return nil, err
		}
		pending, err := sys.PendingShares()
		if err != nil {
			return nil, err
		}
		st := TickStat{
			Tick:    tick,
			Offered: offered,
			Drained: drained,
			Pending: pending,
			Shed:    sys.SLOShed(q.QID),
			Fired:   len(res),
		}
		for _, r := range res {
			lag := lagOf(r)
			st.Lags = append(st.Lags, lag)
			if tick >= tailFrom {
				tailLags = append(tailLags, lag)
			}
			for _, b := range r.Buckets {
				if b.Estimate.Estimate == 0 {
					continue
				}
				w := 2 * b.Estimate.Margin / math.Abs(b.Estimate.Estimate)
				if math.IsInf(w, 0) || math.IsNaN(w) {
					continue
				}
				if w > st.RelWidth {
					st.RelWidth = w
				}
			}
		}
		if st.RelWidth > 0 {
			if tick < cfg.SurgeStart {
				if st.RelWidth > rep.MaxRelWidthBase {
					rep.MaxRelWidthBase = st.RelWidth
				}
			} else if st.RelWidth > rep.MaxRelWidthSurge {
				rep.MaxRelWidthSurge = st.RelWidth
			}
		}
		if pending > rep.PeakPending {
			rep.PeakPending = pending
		}
		if st.Shed < rep.MinShed {
			rep.MinShed = st.Shed
		}
		rep.Ticks = append(rep.Ticks, st)
	}
	rep.FinalPending = rep.Ticks[len(rep.Ticks)-1].Pending
	rep.TailP95Lag = p95(tailLags)
	for _, c := range sys.Clients() {
		rep.Shedded += c.Stats().Shedded
	}
	return rep, nil
}

// p95 is the nearest-rank 95th percentile (0 on empty input).
func p95(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	rank := int(math.Ceil(0.95 * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	return sorted[rank-1]
}
