package surge

import (
	"fmt"
	"reflect"
	"testing"
)

// TestSurgeGate is the overload gate `make surge` runs: the same 10×
// offered-load step is driven through a controlled and an uncontrolled
// system, and the controlled one must (a) be bit-for-bit reproducible,
// (b) actually spend approximation — threshold below 1, answers
// suppressed, CI widths widened but finite — and (c) buy bounded lag
// and backlog with it, while the uncontrolled run's backlog keeps
// growing for the whole surge.
func TestSurgeGate(t *testing.T) {
	controlled, err := Run(DefaultConfig(true))
	if err != nil {
		t.Fatal(err)
	}
	again, err := Run(DefaultConfig(true))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(controlled, again) {
		t.Fatalf("surge run is not deterministic:\nfirst  %+v\nsecond %+v", controlled, again)
	}
	uncontrolled, err := Run(DefaultConfig(false))
	if err != nil {
		t.Fatal(err)
	}

	// The uncontrolled system never sheds and its backlog never drains:
	// the surge outruns the budget and the debt persists to the end.
	if uncontrolled.MinShed != 1 {
		t.Errorf("uncontrolled run shed (MinShed = %v)", uncontrolled.MinShed)
	}
	if uncontrolled.Shedded != 0 {
		t.Errorf("uncontrolled run suppressed %d answers", uncontrolled.Shedded)
	}
	if uncontrolled.FinalPending == 0 {
		t.Error("uncontrolled backlog fully drained; the surge was not an overload")
	}

	// The controlled system spends approximation…
	if controlled.MinShed >= 1 {
		t.Errorf("controller never tightened: MinShed = %v", controlled.MinShed)
	}
	if controlled.Shedded == 0 {
		t.Error("controller tightened but no client shed an answer")
	}
	// …and buys recovery with it: the backlog is gone by the end of the
	// run and the tail lag sits at (or under) the SLO target.
	if controlled.FinalPending != 0 {
		t.Errorf("controlled backlog not drained by run end: %d shares pending",
			controlled.FinalPending)
	}
	if got, limit := controlled.TailP95Lag, DefaultConfig(true).TargetLagSlides; got > limit {
		t.Errorf("controlled tail p95 lag = %v slides, want ≤ %v", got, limit)
	}
	if controlled.FinalPending >= uncontrolled.FinalPending {
		t.Errorf("control did not reduce the final backlog: controlled %d, uncontrolled %d",
			controlled.FinalPending, uncontrolled.FinalPending)
	}

	// The cost side of the trade: shedding widens the CIs during the
	// surge, but they stay finite and the windows keep firing.
	if controlled.MaxRelWidthSurge <= controlled.MaxRelWidthBase {
		t.Errorf("shedding did not widen CIs: base %v, surge %v",
			controlled.MaxRelWidthBase, controlled.MaxRelWidthSurge)
	}
	fired := 0
	for _, st := range controlled.Ticks {
		fired += st.Fired
	}
	if fired == 0 {
		t.Error("controlled run fired no windows")
	}
}

// TestSurgeConfigValidation pins the config guard.
func TestSurgeConfigValidation(t *testing.T) {
	bad := []Config{
		{},
		func() Config { c := DefaultConfig(true); c.Ticks = 0; return c }(),
		func() Config { c := DefaultConfig(true); c.DrainBudget = 0; return c }(),
		func() Config { c := DefaultConfig(true); c.SurgeEnd = c.Ticks + 1; return c }(),
		func() Config { c := DefaultConfig(true); c.SurgeEpochs = 0; return c }(),
	}
	for i, cfg := range bad {
		if _, err := Run(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

// BenchmarkOverloadFrontier sweeps the surge multiplier and reports the
// latency/approximation frontier of the controlled system at each load:
// p95 tail lag in slides, the minimum shed threshold reached, and the
// backlog left when the run ends. The numbers land in
// BENCH_overload.json via `make bench-json`.
func BenchmarkOverloadFrontier(b *testing.B) {
	for _, mult := range []int{1, 2, 5, 10} {
		b.Run(fmt.Sprintf("load=%dx", mult), func(b *testing.B) {
			var rep *Report
			for i := 0; i < b.N; i++ {
				cfg := DefaultConfig(true)
				cfg.SurgeEpochs = mult * cfg.BaseEpochs
				if cfg.SurgeEpochs < cfg.BaseEpochs {
					cfg.SurgeEpochs = cfg.BaseEpochs
				}
				r, err := Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
				rep = r
			}
			b.ReportMetric(rep.TailP95Lag, "p95lag-slides")
			b.ReportMetric(rep.MinShed, "min-shed")
			b.ReportMetric(float64(rep.FinalPending), "final-pending")
		})
	}
}
