package wal

import (
	"bytes"
	"fmt"
	"testing"
)

// BenchmarkWALAppend sweeps append throughput across the fsync policies
// at a share-sized payload — the cost a durable broker partition adds to
// every acknowledged publish. bench-json records it in BENCH_wal.json.
func BenchmarkWALAppend(b *testing.B) {
	payload := bytes.Repeat([]byte{0x5A}, 256)
	for _, pol := range []Policy{PolicyNever, PolicyInterval, PolicyEveryBatch} {
		b.Run("policy="+pol.String(), func(b *testing.B) {
			l, err := Open(b.TempDir(), Options{Policy: pol})
			if err != nil {
				b.Fatal(err)
			}
			defer l.Close()
			b.SetBytes(int64(len(payload)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := l.Append(payload); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkWALAppendBatch measures the batched path (one write + one
// policy fsync per batch), the shape an epoch's publish batch takes.
func BenchmarkWALAppendBatch(b *testing.B) {
	payload := bytes.Repeat([]byte{0x5A}, 256)
	for _, batch := range []int{16, 256} {
		payloads := make([][]byte, batch)
		for i := range payloads {
			payloads[i] = payload
		}
		for _, pol := range []Policy{PolicyNever, PolicyEveryBatch} {
			b.Run(fmt.Sprintf("batch=%d/policy=%s", batch, pol), func(b *testing.B) {
				l, err := Open(b.TempDir(), Options{Policy: pol})
				if err != nil {
					b.Fatal(err)
				}
				defer l.Close()
				b.SetBytes(int64(batch * len(payload)))
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := l.AppendBatch(payloads); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkWALRecovery measures the recovery scan (open + full replay)
// against log size — the restart cost of a WAL-backed partition.
func BenchmarkWALRecovery(b *testing.B) {
	payload := bytes.Repeat([]byte{0x5A}, 256)
	for _, records := range []int{1_000, 10_000, 100_000} {
		b.Run(fmt.Sprintf("records=%d", records), func(b *testing.B) {
			dir := b.TempDir()
			l, err := Open(dir, Options{})
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < records; i++ {
				if _, err := l.Append(payload); err != nil {
					b.Fatal(err)
				}
			}
			if err := l.Close(); err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(records * len(payload)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				l, err := Open(dir, Options{})
				if err != nil {
					b.Fatal(err)
				}
				n := 0
				if err := l.Replay(0, func(uint64, []byte) error { n++; return nil }); err != nil {
					b.Fatal(err)
				}
				if n != records {
					b.Fatalf("replayed %d, want %d", n, records)
				}
				l.Close()
			}
		})
	}
}
