// Package wal is the durability substrate under PrivApprox's long-lived
// services: a segmented, checksummed append-only commit log. Broker
// partitions journal every published record through it, consumer-group
// commits and topic metadata ride a meta log, and the aggregator's
// checkpoint/restore cycle serializes its per-query state into it — so a
// SIGKILLed proxy or aggregator restarts from its data directory instead
// of losing every in-flight epoch and registered query.
//
// # Format
//
// A log is a directory of segment files named wal-<firstLSN:016x>.seg.
// Records are framed as
//
//	u32 length | u32 crc32c(payload) | payload
//
// and numbered by a monotonically increasing log sequence number (LSN);
// a segment's file name carries the LSN of its first record, so replay
// and retention work at whole-segment granularity without an index.
//
// # Durability contract
//
// Append writes the frame with a single write(2) before returning, so an
// acknowledged record survives a process crash (SIGKILL) under every
// fsync policy; the policy only decides when data reaches stable storage
// and therefore what an *operating-system* crash can lose:
//
//   - PolicyNever: never fsync (fastest; OS crash may lose the tail).
//   - PolicyInterval: a background goroutine fsyncs every SyncInterval.
//   - PolicyEveryBatch: fsync before every Append/AppendBatch returns.
//
// # Recovery
//
// Open scans the final segment and truncates it at the first torn or
// corrupt frame — a crash mid-write never prevents a restart. A bad
// frame in any non-final segment is real corruption, not a torn tail,
// and Replay fails loudly with ErrCorrupt rather than silently skipping
// records.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"privapprox/internal/telemetry"
)

// Errors reported by the log.
var (
	ErrClosed    = errors.New("wal: closed")
	ErrCorrupt   = errors.New("wal: corrupt record")
	ErrTooLarge  = errors.New("wal: record too large")
	ErrBadPolicy = errors.New("wal: unknown fsync policy")
)

// Policy selects when appends reach stable storage.
type Policy int

const (
	// PolicyNever performs no fsync; the OS flushes the page cache at
	// its leisure. Acknowledged records still survive process crashes.
	PolicyNever Policy = iota
	// PolicyInterval fsyncs from a background goroutine every
	// Options.SyncInterval.
	PolicyInterval
	// PolicyEveryBatch fsyncs before every Append/AppendBatch returns:
	// an acknowledged record survives an OS crash.
	PolicyEveryBatch
)

// String renders the policy in the form ParsePolicy accepts.
func (p Policy) String() string {
	switch p {
	case PolicyNever:
		return "never"
	case PolicyInterval:
		return "interval"
	case PolicyEveryBatch:
		return "every-batch"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// ParsePolicy parses a policy name: "never", "interval", "every-batch".
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "never", "":
		return PolicyNever, nil
	case "interval":
		return PolicyInterval, nil
	case "every-batch":
		return PolicyEveryBatch, nil
	default:
		return 0, fmt.Errorf("%w: %q", ErrBadPolicy, s)
	}
}

// Options tunes a log. The zero value is usable: 8 MiB segments, no
// fsync, unlimited retention.
type Options struct {
	// SegmentBytes rolls the active segment once it exceeds this size
	// (minimum 4 KiB; 0 defaults to 8 MiB).
	SegmentBytes int64
	// Policy is the fsync policy; see the package comment.
	Policy Policy
	// SyncInterval is the PolicyInterval period; 0 defaults to 50ms.
	SyncInterval time.Duration
	// RetainBytes, when > 0, drops the oldest sealed segments once the
	// log exceeds this size. The active segment and the newest sealed
	// segment are never dropped, so the most recent records (e.g. the
	// newest checkpoint) always survive retention.
	RetainBytes int64
	// RetainAge, when > 0, drops sealed segments whose newest record is
	// older than this. The same never-drop-the-newest rule applies.
	RetainAge time.Duration
	// AppendHist/FsyncHist, when non-nil, receive append-call and fsync
	// latencies (SetLatencyHistograms). Many logs may share one pair —
	// a durable fleet's partition logs all feed the same process-level
	// series.
	AppendHist *telemetry.Histogram
	FsyncHist  *telemetry.Histogram
}

// frameHeader is u32 length | u32 crc32c.
const frameHeader = 8

// maxRecordBytes bounds one record so a corrupt length field cannot
// drive a multi-gigabyte allocation during recovery.
const maxRecordBytes = 64 << 20

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Log is a segmented append-only commit log. It is safe for concurrent
// use.
type Log struct {
	dir  string
	opts Options

	mu       sync.Mutex
	seg      *os.File // active segment
	segStart uint64   // LSN of the active segment's first record
	segBytes int64
	firstLSN uint64 // oldest retained LSN
	nextLSN  uint64 // LSN the next append receives
	encBuf   []byte // reusable frame-encoding buffer
	closed   bool
	syncErr  error // sticky background-sync failure, surfaced on the next append
	// failed poisons the log after a short or failed segment write: the
	// tail may hold a torn frame, so accepting further appends would
	// hand out acknowledgments that recovery later truncates away. Only
	// a reopen (which rewinds to the last intact frame) clears it.
	failed error

	stopSync chan struct{}
	syncDone chan struct{}

	// appendLat/fsyncLat, when set, observe append-call and fsync wall
	// times (telemetry.go); nil costs one atomic load per operation.
	appendLat atomic.Pointer[telemetry.Histogram]
	fsyncLat  atomic.Pointer[telemetry.Histogram]
}

// Open creates or recovers a log in dir. Recovery truncates the final
// segment at the first torn or corrupt frame (a crash mid-append must
// never refuse to start) and positions the log to append after the last
// intact record.
func Open(dir string, opts Options) (*Log, error) {
	if opts.SegmentBytes == 0 {
		opts.SegmentBytes = 8 << 20
	}
	if opts.SegmentBytes < 4096 {
		return nil, fmt.Errorf("wal: segment size %d below 4KiB", opts.SegmentBytes)
	}
	if opts.SyncInterval == 0 {
		opts.SyncInterval = 50 * time.Millisecond
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	l := &Log{dir: dir, opts: opts}
	l.SetLatencyHistograms(opts.AppendHist, opts.FsyncHist)
	segs, err := l.segments()
	if err != nil {
		return nil, err
	}
	if len(segs) == 0 {
		if err := l.openSegmentLocked(0); err != nil {
			return nil, err
		}
	} else {
		l.firstLSN = segLSNOf(segs[0])
		last := segs[len(segs)-1]
		start := segLSNOf(last)
		count, good, err := scanTail(last)
		if err != nil {
			return nil, err
		}
		// Truncate the torn tail so the next append lands on a clean
		// frame boundary.
		if err := os.Truncate(last, good); err != nil {
			return nil, fmt.Errorf("wal: truncate torn tail: %w", err)
		}
		f, err := os.OpenFile(last, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, fmt.Errorf("wal: %w", err)
		}
		l.seg = f
		l.segStart = start
		l.segBytes = good
		l.nextLSN = start + uint64(count)
	}
	if opts.Policy == PolicyInterval {
		l.stopSync = make(chan struct{})
		l.syncDone = make(chan struct{})
		go l.syncLoop()
	}
	return l, nil
}

// scanTail walks one segment counting intact records; it returns the
// record count and the byte offset of the first torn/corrupt frame (==
// file size when the segment is clean).
func scanTail(path string) (count int, good int64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, fmt.Errorf("wal: %w", err)
	}
	defer f.Close()
	var hdr [frameHeader]byte
	var payload []byte
	for {
		if _, err := io.ReadFull(f, hdr[:]); err != nil {
			return count, good, nil // clean EOF or torn header
		}
		length := binary.BigEndian.Uint32(hdr[0:4])
		sum := binary.BigEndian.Uint32(hdr[4:8])
		if length > maxRecordBytes {
			return count, good, nil // corrupt length: treat as torn tail
		}
		if cap(payload) < int(length) {
			payload = make([]byte, length)
		}
		payload = payload[:length]
		if _, err := io.ReadFull(f, payload); err != nil {
			return count, good, nil // torn payload
		}
		if crc32.Checksum(payload, castagnoli) != sum {
			return count, good, nil // corrupt payload
		}
		count++
		good += frameHeader + int64(length)
	}
}

// Append writes one record, applying the fsync policy, and returns the
// LSN it was assigned.
func (l *Log) Append(payload []byte) (uint64, error) {
	h := l.appendLat.Load()
	var t0 time.Time
	if h != nil {
		t0 = time.Now()
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	lsn, err := l.appendLocked(payload)
	if err != nil {
		return 0, err
	}
	err = l.policySyncLocked()
	if h != nil && err == nil {
		h.Observe(int64(time.Since(t0)))
	}
	return lsn, err
}

// AppendBatch writes a batch of records with one write(2) and (under
// PolicyEveryBatch) one fsync, returning the LSN of the first. The
// batch lands in one segment, so it replays together.
func (l *Log) AppendBatch(payloads [][]byte) (uint64, error) {
	if len(payloads) == 0 {
		return 0, fmt.Errorf("wal: empty batch")
	}
	h := l.appendLat.Load()
	var t0 time.Time
	if h != nil {
		t0 = time.Now()
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	if err := l.checkUsableLocked(); err != nil {
		return 0, err
	}
	var total int
	for _, p := range payloads {
		if len(p) > maxRecordBytes {
			return 0, fmt.Errorf("%w: %d bytes", ErrTooLarge, len(p))
		}
		total += frameHeader + len(p)
	}
	if l.segBytes > 0 && l.segBytes+int64(total) > l.opts.SegmentBytes {
		if err := l.rotateLocked(); err != nil {
			return 0, err
		}
	}
	buf := l.encBuf[:0]
	for _, p := range payloads {
		buf = appendFrame(buf, p)
	}
	l.encBuf = buf[:0]
	first := l.nextLSN
	n, err := l.seg.Write(buf)
	l.segBytes += int64(n)
	if err != nil {
		return 0, l.failWriteLocked(err)
	}
	l.nextLSN += uint64(len(payloads))
	err = l.policySyncLocked()
	if h != nil && err == nil {
		h.Observe(int64(time.Since(t0)))
	}
	return first, err
}

func (l *Log) appendLocked(payload []byte) (uint64, error) {
	if l.closed {
		return 0, ErrClosed
	}
	if err := l.checkUsableLocked(); err != nil {
		return 0, err
	}
	if len(payload) > maxRecordBytes {
		return 0, fmt.Errorf("%w: %d bytes", ErrTooLarge, len(payload))
	}
	if l.segBytes > 0 && l.segBytes+frameHeader+int64(len(payload)) > l.opts.SegmentBytes {
		if err := l.rotateLocked(); err != nil {
			return 0, err
		}
	}
	buf := appendFrame(l.encBuf[:0], payload)
	l.encBuf = buf[:0]
	lsn := l.nextLSN
	n, err := l.seg.Write(buf)
	l.segBytes += int64(n)
	if err != nil {
		return 0, l.failWriteLocked(err)
	}
	l.nextLSN++
	return lsn, nil
}

// failWriteLocked poisons the log after a short or failed write: the
// segment tail may now hold a torn frame, and any frame appended after
// it would be truncated by the next recovery scan despite having been
// acknowledged. Refusing further appends until a reopen keeps the
// "acknowledged means durable" contract honest.
func (l *Log) failWriteLocked(err error) error {
	l.failed = fmt.Errorf("wal: append failed, log requires reopen: %w", err)
	return l.failed
}

// checkUsableLocked surfaces a poisoned log or a (cleared-on-read)
// background-sync failure.
func (l *Log) checkUsableLocked() error {
	if l.failed != nil {
		return l.failed
	}
	return l.takeSyncErrLocked()
}

func appendFrame(buf, payload []byte) []byte {
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(payload)))
	buf = binary.BigEndian.AppendUint32(buf, crc32.Checksum(payload, castagnoli))
	return append(buf, payload...)
}

// policySyncLocked applies the fsync policy after an append.
func (l *Log) policySyncLocked() error {
	if l.opts.Policy != PolicyEveryBatch {
		return nil
	}
	if err := l.syncSegLocked(); err != nil {
		return fmt.Errorf("wal: sync: %w", err)
	}
	return nil
}

// syncSegLocked fsyncs the active segment, feeding the fsync latency
// histogram when one is attached.
func (l *Log) syncSegLocked() error {
	h := l.fsyncLat.Load()
	if h == nil {
		return l.seg.Sync()
	}
	t0 := time.Now()
	err := l.seg.Sync()
	h.Observe(int64(time.Since(t0)))
	return err
}

// takeSyncErrLocked surfaces (and clears) a background-sync failure.
func (l *Log) takeSyncErrLocked() error {
	err := l.syncErr
	l.syncErr = nil
	return err
}

// Sync flushes the active segment to stable storage.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if err := l.syncSegLocked(); err != nil {
		return fmt.Errorf("wal: sync: %w", err)
	}
	return nil
}

func (l *Log) syncLoop() {
	defer close(l.syncDone)
	t := time.NewTicker(l.opts.SyncInterval)
	defer t.Stop()
	for {
		select {
		case <-l.stopSync:
			return
		case <-t.C:
			l.mu.Lock()
			if !l.closed {
				if err := l.syncSegLocked(); err != nil && l.syncErr == nil {
					l.syncErr = fmt.Errorf("wal: background sync: %w", err)
				}
			}
			l.mu.Unlock()
		}
	}
}

// rotateLocked seals the active segment and opens a fresh one named by
// the next LSN, then applies the retention limits to the sealed set.
func (l *Log) rotateLocked() error {
	if err := l.seg.Sync(); err != nil {
		return fmt.Errorf("wal: seal: %w", err)
	}
	if err := l.seg.Close(); err != nil {
		return fmt.Errorf("wal: seal: %w", err)
	}
	l.seg = nil
	if err := l.openSegmentLocked(l.nextLSN); err != nil {
		return err
	}
	return l.enforceRetentionLocked()
}

func (l *Log) openSegmentLocked(firstLSN uint64) error {
	name := filepath.Join(l.dir, segName(firstLSN))
	f, err := os.OpenFile(name, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("wal: open segment: %w", err)
	}
	l.seg = f
	l.segStart = firstLSN
	l.segBytes = 0
	if l.nextLSN < firstLSN {
		l.nextLSN = firstLSN
	}
	return nil
}

// Replay invokes fn for every record with lsn ≥ from, in LSN order. A
// bad frame anywhere but the (already recovered) tail is interior
// corruption and fails with ErrCorrupt — records are never silently
// skipped. Replay holds the log's lock, so it cannot run concurrently
// with appends; call it before serving traffic.
func (l *Log) Replay(from uint64, fn func(lsn uint64, payload []byte) error) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	segs, err := l.segments()
	if err != nil {
		return err
	}
	for _, seg := range segs {
		if err := l.replaySegment(seg, from, fn); err != nil {
			return err
		}
	}
	return nil
}

func (l *Log) replaySegment(path string, from uint64, fn func(uint64, []byte) error) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	defer f.Close()
	lsn := segLSNOf(path)
	var hdr [frameHeader]byte
	var payload []byte
	for {
		if _, err := io.ReadFull(f, hdr[:]); err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			return fmt.Errorf("%w: torn header at lsn %d in %s", ErrCorrupt, lsn, filepath.Base(path))
		}
		length := binary.BigEndian.Uint32(hdr[0:4])
		sum := binary.BigEndian.Uint32(hdr[4:8])
		if length > maxRecordBytes {
			return fmt.Errorf("%w: %d-byte frame at lsn %d in %s", ErrCorrupt, length, lsn, filepath.Base(path))
		}
		if cap(payload) < int(length) {
			payload = make([]byte, length)
		}
		payload = payload[:length]
		if _, err := io.ReadFull(f, payload); err != nil {
			return fmt.Errorf("%w: torn payload at lsn %d in %s", ErrCorrupt, lsn, filepath.Base(path))
		}
		if crc32.Checksum(payload, castagnoli) != sum {
			return fmt.Errorf("%w: checksum mismatch at lsn %d in %s", ErrCorrupt, lsn, filepath.Base(path))
		}
		if lsn >= from {
			if err := fn(lsn, payload); err != nil {
				return err
			}
		}
		lsn++
	}
}

// FirstLSN returns the oldest retained LSN.
func (l *Log) FirstLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.firstLSN
}

// NextLSN returns the LSN the next append will receive.
func (l *Log) NextLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextLSN
}

// SegmentCount returns the number of on-disk segments.
func (l *Log) SegmentCount() (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	segs, err := l.segments()
	return len(segs), err
}

// TruncateFront drops whole sealed segments every record of which is
// below keepFrom — the explicit retention hook for callers that know
// their low-water mark (e.g. a checkpointer that has superseded older
// state). The active segment is never dropped.
func (l *Log) TruncateFront(keepFrom uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	segs, err := l.segments()
	if err != nil {
		return err
	}
	for i := 0; i+1 < len(segs); i++ {
		// Segment i's records all precede segment i+1's first LSN.
		if segLSNOf(segs[i+1]) > keepFrom {
			break
		}
		if err := l.dropSegmentLocked(segs[i], segLSNOf(segs[i+1])); err != nil {
			return err
		}
	}
	return nil
}

// EnforceRetention applies the size/age limits now (rotation applies
// them automatically).
func (l *Log) EnforceRetention() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	return l.enforceRetentionLocked()
}

func (l *Log) enforceRetentionLocked() error {
	if l.opts.RetainBytes <= 0 && l.opts.RetainAge <= 0 {
		return nil
	}
	segs, err := l.segments()
	if err != nil {
		return err
	}
	// Never drop the active segment or the newest sealed one: the most
	// recent records must survive retention however the limits are set.
	if len(segs) < 3 {
		return nil
	}
	var total int64
	infos := make([]os.FileInfo, len(segs))
	for i, seg := range segs {
		fi, err := os.Stat(seg)
		if err != nil {
			return fmt.Errorf("wal: %w", err)
		}
		infos[i] = fi
		total += fi.Size()
	}
	now := time.Now()
	for i := 0; i+2 < len(segs); i++ {
		tooBig := l.opts.RetainBytes > 0 && total > l.opts.RetainBytes
		tooOld := l.opts.RetainAge > 0 && now.Sub(infos[i].ModTime()) > l.opts.RetainAge
		if !tooBig && !tooOld {
			break
		}
		if err := l.dropSegmentLocked(segs[i], segLSNOf(segs[i+1])); err != nil {
			return err
		}
		total -= infos[i].Size()
	}
	return nil
}

func (l *Log) dropSegmentLocked(path string, nextFirst uint64) error {
	if err := os.Remove(path); err != nil {
		return fmt.Errorf("wal: drop segment: %w", err)
	}
	l.firstLSN = nextFirst
	return nil
}

// Close syncs and closes the log.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	stop := l.stopSync
	l.mu.Unlock()
	if stop != nil {
		close(stop)
		<-l.syncDone
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.seg.Sync(); err != nil {
		l.seg.Close()
		return fmt.Errorf("wal: close: %w", err)
	}
	if err := l.seg.Close(); err != nil {
		return fmt.Errorf("wal: close: %w", err)
	}
	return nil
}

func (l *Log) segments() ([]string, error) {
	segs, err := filepath.Glob(filepath.Join(l.dir, "wal-*.seg"))
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	sort.Strings(segs)
	return segs, nil
}

func segName(firstLSN uint64) string {
	return fmt.Sprintf("wal-%016x.seg", firstLSN)
}

func segLSNOf(path string) uint64 {
	var lsn uint64
	fmt.Sscanf(filepath.Base(path), "wal-%016x.seg", &lsn)
	return lsn
}
