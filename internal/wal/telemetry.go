package wal

import (
	"privapprox/internal/telemetry"
)

// SetLatencyHistograms attaches latency histograms to the log: app
// observes each successful Append/AppendBatch call end to end
// (including any policy fsync), fsync observes each fsync of the
// active segment regardless of which policy triggered it. Either may
// be nil; unset histograms cost one atomic load per operation.
func (l *Log) SetLatencyHistograms(app, fsync *telemetry.Histogram) {
	l.appendLat.Store(app)
	l.fsyncLat.Store(fsync)
}

// AppendSamples implements telemetry.Source over the log's shape: the
// on-disk segment count and the retained LSN range. Latency series
// come from the attached histograms, which live in the registry.
func (l *Log) AppendSamples(dst []telemetry.Sample) []telemetry.Sample {
	segs, err := l.SegmentCount()
	if err == nil {
		dst = append(dst, telemetry.Sample{Name: "privapprox_wal_segments", Value: float64(segs), Kind: telemetry.KindGauge})
	}
	first, next := l.FirstLSN(), l.NextLSN()
	return append(dst,
		telemetry.Sample{Name: "privapprox_wal_first_lsn", Value: float64(first), Kind: telemetry.KindGauge},
		telemetry.Sample{Name: "privapprox_wal_next_lsn", Value: float64(next), Kind: telemetry.KindGauge},
		telemetry.Sample{Name: "privapprox_wal_retained_records", Value: float64(next - first), Kind: telemetry.KindGauge},
	)
}

var _ telemetry.Source = (*Log)(nil)
