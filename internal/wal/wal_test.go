package wal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// collect replays the whole log into a slice.
func collect(t *testing.T, l *Log, from uint64) []struct {
	lsn     uint64
	payload []byte
} {
	t.Helper()
	var out []struct {
		lsn     uint64
		payload []byte
	}
	err := l.Replay(from, func(lsn uint64, payload []byte) error {
		out = append(out, struct {
			lsn     uint64
			payload []byte
		}{lsn, append([]byte(nil), payload...)})
		return nil
	})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	return out
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var want [][]byte
	for i := 0; i < 100; i++ {
		p := []byte(fmt.Sprintf("record-%03d", i))
		want = append(want, p)
		lsn, err := l.Append(p)
		if err != nil {
			t.Fatal(err)
		}
		if lsn != uint64(i) {
			t.Fatalf("append %d got lsn %d", i, lsn)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen and replay: every record intact, in order.
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if got := l2.NextLSN(); got != 100 {
		t.Fatalf("NextLSN after reopen = %d, want 100", got)
	}
	recs := collect(t, l2, 0)
	if len(recs) != 100 {
		t.Fatalf("replayed %d records, want 100", len(recs))
	}
	for i, r := range recs {
		if r.lsn != uint64(i) || !bytes.Equal(r.payload, want[i]) {
			t.Fatalf("record %d: lsn=%d payload=%q", i, r.lsn, r.payload)
		}
	}
	// Partial replay honors the from cursor.
	if n := len(collect(t, l2, 60)); n != 40 {
		t.Fatalf("replay from 60 returned %d records, want 40", n)
	}
}

func TestAppendBatchAssignsContiguousLSNs(t *testing.T) {
	l, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := l.Append([]byte("solo")); err != nil {
		t.Fatal(err)
	}
	first, err := l.AppendBatch([][]byte{[]byte("a"), []byte("b"), []byte("c")})
	if err != nil {
		t.Fatal(err)
	}
	if first != 1 {
		t.Fatalf("batch first lsn = %d, want 1", first)
	}
	if got := l.NextLSN(); got != 4 {
		t.Fatalf("NextLSN = %d, want 4", got)
	}
	recs := collect(t, l, 0)
	if len(recs) != 4 || string(recs[3].payload) != "c" {
		t.Fatalf("unexpected replay: %+v", recs)
	}
}

func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte{0xAB}, 512)
	for i := 0; i < 40; i++ { // ~20 KiB → several segments
		if _, err := l.Append(payload); err != nil {
			t.Fatal(err)
		}
	}
	n, err := l.SegmentCount()
	if err != nil {
		t.Fatal(err)
	}
	if n < 3 {
		t.Fatalf("expected ≥ 3 segments after 20KiB of 4KiB segments, got %d", n)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(dir, Options{SegmentBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if recs := collect(t, l2, 0); len(recs) != 40 {
		t.Fatalf("replayed %d records across segments, want 40", len(recs))
	}
}

// lastSegment returns the path of the newest segment file.
func lastSegment(t *testing.T, dir string) string {
	t.Helper()
	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments in %s (err=%v)", dir, err)
	}
	return segs[len(segs)-1]
}

func TestRecoveryTruncatesTornTail(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := l.Append([]byte(fmt.Sprintf("ok-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate a crash mid-append: write half a frame at the tail.
	seg := lastSegment(t, dir)
	f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x00, 0x00, 0x00, 0x20, 0xDE, 0xAD}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("recovery must never refuse to start: %v", err)
	}
	if got := l2.NextLSN(); got != 5 {
		t.Fatalf("NextLSN after torn-tail recovery = %d, want 5", got)
	}
	// The log must be fully usable again: appends land after the
	// truncation point and replay cleanly.
	if _, err := l2.Append([]byte("after-crash")); err != nil {
		t.Fatal(err)
	}
	recs := collect(t, l2, 0)
	if len(recs) != 6 || string(recs[5].payload) != "after-crash" {
		t.Fatalf("unexpected post-recovery replay: %d records", len(recs))
	}
	l2.Close()
}

func TestRecoveryTornTailMidPayload(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append([]byte("intact")); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// A full header promising 100 bytes, but only 3 bytes of payload.
	seg := lastSegment(t, dir)
	f, _ := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0o644)
	f.Write([]byte{0, 0, 0, 100, 1, 2, 3, 4, 9, 9, 9})
	f.Close()

	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if got := l2.NextLSN(); got != 1 {
		t.Fatalf("NextLSN = %d, want 1", got)
	}
	if recs := collect(t, l2, 0); len(recs) != 1 || string(recs[0].payload) != "intact" {
		t.Fatalf("unexpected replay after mid-payload tear: %+v", recs)
	}
}

func TestRecoveryEmptyFinalSegment(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := l.Append([]byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// A crash right after rotation leaves a fresh, empty segment.
	if err := os.WriteFile(filepath.Join(dir, segName(3)), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("empty final segment must not block recovery: %v", err)
	}
	defer l2.Close()
	if got := l2.NextLSN(); got != 3 {
		t.Fatalf("NextLSN = %d, want 3", got)
	}
	if lsn, err := l2.Append([]byte("resumed")); err != nil || lsn != 3 {
		t.Fatalf("append after empty-segment recovery: lsn=%d err=%v", lsn, err)
	}
	if recs := collect(t, l2, 0); len(recs) != 4 {
		t.Fatalf("replayed %d records, want 4", len(recs))
	}
}

func TestReplayFailsLoudlyOnInteriorCorruption(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte{0x55}, 512)
	for i := 0; i < 20; i++ { // forces ≥ 2 segments
		if _, err := l.Append(payload); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if len(segs) < 2 {
		t.Fatalf("need ≥ 2 segments, got %d", len(segs))
	}
	// Flip one payload byte in the middle of the FIRST (interior)
	// segment: that is real corruption, not a torn tail.
	first := segs[0]
	data, err := os.ReadFile(first)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(first, data, 0o644); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(dir, Options{SegmentBytes: 4096})
	if err != nil {
		t.Fatal(err) // open only recovers the tail; it must still start
	}
	defer l2.Close()
	err = l2.Replay(0, func(uint64, []byte) error { return nil })
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("interior corruption must fail replay loudly, got %v", err)
	}
}

func TestTruncateFrontDropsSealedSegments(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	payload := bytes.Repeat([]byte{1}, 512)
	for i := 0; i < 40; i++ {
		if _, err := l.Append(payload); err != nil {
			t.Fatal(err)
		}
	}
	before, _ := l.SegmentCount()
	if before < 3 {
		t.Fatalf("need ≥ 3 segments, got %d", before)
	}
	if err := l.TruncateFront(l.NextLSN()); err != nil {
		t.Fatal(err)
	}
	after, _ := l.SegmentCount()
	if after >= before {
		t.Fatalf("TruncateFront dropped nothing: %d → %d segments", before, after)
	}
	first := l.FirstLSN()
	if first == 0 {
		t.Fatal("FirstLSN did not advance")
	}
	// Replay from the new low-water mark still works, and the record
	// count is consistent with the retained range.
	recs := collect(t, l, first)
	if uint64(len(recs)) != l.NextLSN()-first {
		t.Fatalf("replayed %d records, want %d", len(recs), l.NextLSN()-first)
	}
}

func TestRetentionBySizeKeepsNewestSealedSegment(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 4096, RetainBytes: 8192})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	payload := bytes.Repeat([]byte{2}, 512)
	for i := 0; i < 80; i++ { // ~40 KiB appended, retention keeps ~8 KiB
		if _, err := l.Append(payload); err != nil {
			t.Fatal(err)
		}
	}
	n, _ := l.SegmentCount()
	if n > 4 {
		t.Fatalf("retention left %d segments for an 8KiB budget of 4KiB segments", n)
	}
	if l.FirstLSN() == 0 {
		t.Fatal("retention never advanced FirstLSN")
	}
	// The newest records always survive.
	recs := collect(t, l, l.FirstLSN())
	if len(recs) == 0 {
		t.Fatal("retention dropped everything")
	}
	last := recs[len(recs)-1]
	if last.lsn != l.NextLSN()-1 {
		t.Fatalf("newest record lsn %d, want %d", last.lsn, l.NextLSN()-1)
	}
}

func TestParsePolicy(t *testing.T) {
	cases := map[string]Policy{"never": PolicyNever, "": PolicyNever, "interval": PolicyInterval, "every-batch": PolicyEveryBatch}
	for s, want := range cases {
		got, err := ParsePolicy(s)
		if err != nil || got != want {
			t.Fatalf("ParsePolicy(%q) = %v, %v", s, got, err)
		}
		if s != "" && got.String() != s {
			t.Fatalf("Policy(%v).String() = %q, want %q", got, got.String(), s)
		}
	}
	if _, err := ParsePolicy("sometimes"); !errors.Is(err, ErrBadPolicy) {
		t.Fatalf("ParsePolicy(sometimes) = %v, want ErrBadPolicy", err)
	}
}

func TestFsyncPolicies(t *testing.T) {
	for _, pol := range []Policy{PolicyNever, PolicyInterval, PolicyEveryBatch} {
		t.Run(pol.String(), func(t *testing.T) {
			dir := t.TempDir()
			l, err := Open(dir, Options{Policy: pol, SyncInterval: 5 * time.Millisecond})
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 10; i++ {
				if _, err := l.Append([]byte("p")); err != nil {
					t.Fatal(err)
				}
			}
			if _, err := l.AppendBatch([][]byte{[]byte("q"), []byte("r")}); err != nil {
				t.Fatal(err)
			}
			if pol == PolicyInterval {
				time.Sleep(20 * time.Millisecond) // let the background sync tick
			}
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}
			l2, err := Open(dir, Options{})
			if err != nil {
				t.Fatal(err)
			}
			defer l2.Close()
			if recs := collect(t, l2, 0); len(recs) != 12 {
				t.Fatalf("policy %v lost records: %d/12", pol, len(recs))
			}
		})
	}
}

func TestConcurrentAppends(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 8192})
	if err != nil {
		t.Fatal(err)
	}
	const workers, per = 8, 200
	var wg sync.WaitGroup
	seen := make([]map[uint64]bool, workers)
	for w := 0; w < workers; w++ {
		seen[w] = make(map[uint64]bool)
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				lsn, err := l.Append([]byte(fmt.Sprintf("w%d-%d", w, i)))
				if err != nil {
					t.Errorf("append: %v", err)
					return
				}
				seen[w][lsn] = true
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	all := make(map[uint64]bool)
	for _, m := range seen {
		for lsn := range m {
			if all[lsn] {
				t.Fatalf("duplicate lsn %d", lsn)
			}
			all[lsn] = true
		}
	}
	if len(all) != workers*per {
		t.Fatalf("%d unique LSNs, want %d", len(all), workers*per)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if recs := collect(t, l2, 0); len(recs) != workers*per {
		t.Fatalf("replayed %d records, want %d", len(recs), workers*per)
	}
}

// FuzzWALRecordRoundTrip fuzzes the record framing: any payload —
// including empty and binary-garbage ones — must survive an
// append/close/reopen/replay cycle bit for bit.
func FuzzWALRecordRoundTrip(f *testing.F) {
	f.Add([]byte(nil))
	f.Add([]byte(""))
	f.Add([]byte("hello"))
	f.Add(bytes.Repeat([]byte{0xFF}, 1000))
	f.Add([]byte{0, 0, 0, 4, 0xDE, 0xAD, 0xBE, 0xEF}) // looks like a frame header
	f.Fuzz(func(t *testing.T, payload []byte) {
		dir := t.TempDir()
		l, err := Open(dir, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := l.Append([]byte("pre")); err != nil {
			t.Fatal(err)
		}
		lsn, err := l.Append(payload)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := l.Append([]byte("post")); err != nil {
			t.Fatal(err)
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		l2, err := Open(dir, Options{})
		if err != nil {
			t.Fatal(err)
		}
		defer l2.Close()
		var got []byte
		found := false
		err = l2.Replay(0, func(rlsn uint64, p []byte) error {
			if rlsn == lsn {
				got = append([]byte(nil), p...)
				found = true
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if !found || !bytes.Equal(got, payload) {
			t.Fatalf("payload did not round-trip: found=%v got=%x want=%x", found, got, payload)
		}
	})
}
