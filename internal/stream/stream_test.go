package stream

import (
	"context"
	"errors"
	"testing"
	"testing/quick"
	"time"
)

func TestSlidingAssignerValidation(t *testing.T) {
	if _, err := NewSlidingAssigner(0, time.Second); err == nil {
		t.Error("expected error for zero size")
	}
	if _, err := NewSlidingAssigner(time.Second, 0); err == nil {
		t.Error("expected error for zero slide")
	}
	if _, err := NewSlidingAssigner(time.Second, 2*time.Second); err == nil {
		t.Error("expected error for slide > size")
	}
}

func TestSlidingAssignerPaperGeometry(t *testing.T) {
	// The paper's example: 10-minute window sliding every minute — every
	// event belongs to exactly 10 windows.
	a, err := NewSlidingAssigner(10*time.Minute, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	at := time.Unix(3600, 0)
	ws := a.WindowsFor(at)
	if len(ws) != 10 {
		t.Fatalf("got %d windows, want 10", len(ws))
	}
	for i, w := range ws {
		if !w.Contains(at) {
			t.Errorf("window %d %v does not contain event", i, w)
		}
		if i > 0 && !ws[i-1].Start.Before(w.Start) {
			t.Errorf("windows not sorted at %d", i)
		}
		if w.End.Sub(w.Start) != 10*time.Minute {
			t.Errorf("window %d length %v", i, w.End.Sub(w.Start))
		}
	}
}

func TestTumblingDegenerate(t *testing.T) {
	a, err := NewSlidingAssigner(time.Minute, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	ws := a.WindowsFor(time.Unix(90, 0))
	if len(ws) != 1 {
		t.Fatalf("tumbling got %d windows", len(ws))
	}
	if ws[0].Start.Unix() != 60 || ws[0].End.Unix() != 120 {
		t.Errorf("window = %v", ws[0])
	}
}

// Property: every assigned window contains the event, and the count is
// ceil(size/slide) for slide-aligned geometry.
func TestSlidingAssignerProperty(t *testing.T) {
	f := func(tsRaw int64, sizeRaw, slideRaw uint8) bool {
		slide := time.Duration(int64(slideRaw%20)+1) * time.Second
		k := int64(sizeRaw%10) + 1
		size := time.Duration(k) * slide
		a, err := NewSlidingAssigner(size, slide)
		if err != nil {
			return false
		}
		at := time.Unix(tsRaw%100000, 0)
		ws := a.WindowsFor(at)
		if int64(len(ws)) != k {
			return false
		}
		for _, w := range ws {
			if !w.Contains(at) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestOriginAlignedWindows(t *testing.T) {
	origin := time.Unix(1_700_000_000, 0) // not a multiple of 3s
	a, err := NewSlidingAssignerAt(3*time.Second, 3*time.Second, origin)
	if err != nil {
		t.Fatal(err)
	}
	// Epochs 0, 1, 2 (origin + 0s, 1s, 2s) must share one window that
	// starts exactly at the origin.
	for e := 0; e < 3; e++ {
		ws := a.WindowsFor(origin.Add(time.Duration(e) * time.Second))
		if len(ws) != 1 {
			t.Fatalf("epoch %d: %d windows", e, len(ws))
		}
		if !ws[0].Start.Equal(origin) {
			t.Errorf("epoch %d window starts %v, want origin", e, ws[0].Start)
		}
	}
	// Epoch 3 starts the next window.
	ws := a.WindowsFor(origin.Add(3 * time.Second))
	if !ws[0].Start.Equal(origin.Add(3 * time.Second)) {
		t.Errorf("epoch 3 window starts %v", ws[0].Start)
	}
}

func TestWindowContainsAndString(t *testing.T) {
	w := Window{Start: time.Unix(0, 0), End: time.Unix(10, 0)}
	if !w.Contains(time.Unix(0, 0)) || !w.Contains(time.Unix(9, int64(time.Second-1))) {
		t.Error("window should contain start and interior")
	}
	if w.Contains(time.Unix(10, 0)) {
		t.Error("window must exclude its end")
	}
	if w.String() == "" {
		t.Error("empty String")
	}
}

func TestWatermarkTracker(t *testing.T) {
	wm := NewWatermarkTracker(2 * time.Second)
	if !wm.Current().IsZero() {
		t.Error("watermark before events should be zero")
	}
	if wm.IsLate(time.Unix(0, 0)) {
		t.Error("nothing is late before the first event")
	}
	wm.Observe(time.Unix(10, 0))
	if got := wm.Current(); got.Unix() != 8 {
		t.Errorf("watermark = %v", got)
	}
	if !wm.IsLate(time.Unix(7, 0)) {
		t.Error("t=7 should be late behind watermark 8")
	}
	if wm.IsLate(time.Unix(9, 0)) {
		t.Error("t=9 within lateness should not be late")
	}
	// Watermark never regresses.
	wm.Observe(time.Unix(5, 0))
	if got := wm.Current(); got.Unix() != 8 {
		t.Errorf("watermark regressed to %v", got)
	}
}

func TestShareJoinerCompletesGroups(t *testing.T) {
	j, err := NewShareJoiner(3, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	now := time.Unix(100, 0)
	if g, err := j.Add("mid1", 0, []byte("a"), now); err != nil || g != nil {
		t.Fatalf("first share: %v, %v", g, err)
	}
	if g, err := j.Add("mid1", 1, []byte("b"), now); err != nil || g != nil {
		t.Fatalf("second share: %v, %v", g, err)
	}
	// A replayed share from an already-contributing source is rejected.
	if _, err := j.Add("mid1", 0, []byte("dup"), now); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("same-source replay: %v", err)
	}
	g, err := j.Add("mid1", 2, []byte("c"), now)
	if err != nil {
		t.Fatal(err)
	}
	if g == nil || len(g.Payloads) != 3 || g.Key != "mid1" {
		t.Fatalf("joined = %+v", g)
	}
	if j.PendingCount() != 0 {
		t.Errorf("pending = %d", j.PendingCount())
	}
	// Replay of a completed key is rejected.
	if _, err := j.Add("mid1", 1, []byte("x"), now); !errors.Is(err, ErrDuplicate) {
		t.Errorf("replay: %v", err)
	}
	// Source index out of range is an error.
	if _, err := j.Add("mid9", 9, []byte("x"), now); !errors.Is(err, ErrJoinArity) {
		t.Errorf("bad source: %v", err)
	}
}

func TestShareJoinerInterleavedKeys(t *testing.T) {
	j, _ := NewShareJoiner(2, time.Minute)
	now := time.Unix(0, 0)
	j.Add("a", 0, []byte("a1"), now)
	j.Add("b", 0, []byte("b1"), now)
	ga, err := j.Add("a", 1, []byte("a2"), now)
	if err != nil || ga == nil || ga.Key != "a" {
		t.Fatalf("group a = %v, %v", ga, err)
	}
	gb, err := j.Add("b", 1, []byte("b2"), now)
	if err != nil || gb == nil || gb.Key != "b" {
		t.Fatalf("group b = %v, %v", gb, err)
	}
}

func TestShareJoinerSweep(t *testing.T) {
	j, _ := NewShareJoiner(2, time.Second)
	j.Add("stale", 0, []byte("x"), time.Unix(0, 0))
	j.Add("fresh", 0, []byte("y"), time.Unix(100, 0))
	dropped := j.Sweep(time.Unix(50, 0))
	if dropped != 1 || j.PendingCount() != 1 {
		t.Errorf("dropped=%d pending=%d", dropped, j.PendingCount())
	}
	// Completed-key memory also expires past the retain horizon.
	g, err := j.Add("done", 0, []byte("1"), time.Unix(100, 0))
	if g != nil || err != nil {
		t.Fatal("unexpected join")
	}
	if g, err := j.Add("done", 1, []byte("2"), time.Unix(100, 0)); err != nil || g == nil {
		t.Fatal("join should complete")
	}
	j.Sweep(time.Unix(200, 0))
	// After expiry the key can be reused (a fresh MID collision).
	if _, err := j.Add("done", 0, []byte("again"), time.Unix(200, 0)); err != nil {
		t.Errorf("post-expiry add: %v", err)
	}
}

func TestShareJoinerValidation(t *testing.T) {
	if _, err := NewShareJoiner(1, time.Second); !errors.Is(err, ErrJoinArity) {
		t.Errorf("arity: %v", err)
	}
}

func sumAgg() Aggregation[int, int, int] {
	return Aggregation[int, int, int]{
		New:    func() int { return 0 },
		Add:    func(acc, v int) int { return acc + v },
		Result: func(acc int) int { return acc },
	}
}

func TestWindowedOpFiresOnWatermark(t *testing.T) {
	assigner, _ := NewSlidingAssigner(10*time.Second, 10*time.Second)
	op := NewWindowedOp(assigner, 0, sumAgg())
	// Three events inside [0, 10).
	for i, v := range []int{1, 2, 3} {
		res := op.Process(Event[int]{Time: time.Unix(int64(i*2), 0), Value: v})
		if len(res) != 0 {
			t.Fatalf("premature fire: %v", res)
		}
	}
	// An event at t=10 advances the watermark to 10, closing [0, 10).
	res := op.Process(Event[int]{Time: time.Unix(10, 0), Value: 100})
	if len(res) != 1 {
		t.Fatalf("fired %d windows, want 1", len(res))
	}
	if res[0].Value != 6 {
		t.Errorf("window sum = %d, want 6", res[0].Value)
	}
	if res[0].Window.Start.Unix() != 0 {
		t.Errorf("window start = %v", res[0].Window.Start)
	}
}

func TestWindowedOpSlidingDoubleCount(t *testing.T) {
	// 4s windows sliding every 2s: an event contributes to 2 windows.
	assigner, _ := NewSlidingAssigner(4*time.Second, 2*time.Second)
	op := NewWindowedOp(assigner, 0, sumAgg())
	op.Process(Event[int]{Time: time.Unix(5, 0), Value: 10})
	results := op.Flush()
	if len(results) != 2 {
		t.Fatalf("flush fired %d windows, want 2", len(results))
	}
	for _, r := range results {
		if r.Value != 10 {
			t.Errorf("window %v sum = %d", r.Window, r.Value)
		}
	}
}

func TestWindowedOpDropsLate(t *testing.T) {
	assigner, _ := NewSlidingAssigner(10*time.Second, 10*time.Second)
	op := NewWindowedOp(assigner, time.Second, sumAgg())
	op.Process(Event[int]{Time: time.Unix(100, 0), Value: 1})
	op.Process(Event[int]{Time: time.Unix(50, 0), Value: 1}) // far behind watermark 99
	if op.Dropped() != 1 {
		t.Errorf("Dropped = %d, want 1", op.Dropped())
	}
}

func TestWindowedOpAdvanceTo(t *testing.T) {
	assigner, _ := NewSlidingAssigner(10*time.Second, 10*time.Second)
	op := NewWindowedOp(assigner, 0, sumAgg())
	op.Process(Event[int]{Time: time.Unix(3, 0), Value: 7})
	if op.OpenWindows() != 1 {
		t.Fatalf("open = %d", op.OpenWindows())
	}
	res := op.AdvanceTo(time.Unix(20, 0))
	if len(res) != 1 || res[0].Value != 7 {
		t.Errorf("AdvanceTo fired %v", res)
	}
	if op.OpenWindows() != 0 {
		t.Errorf("open after fire = %d", op.OpenWindows())
	}
}

func TestPipelineStages(t *testing.T) {
	ctx := context.Background()
	in := make(chan Event[int])
	go func() {
		for i := 1; i <= 6; i++ {
			in <- Event[int]{Time: time.Unix(int64(i), 0), Value: i}
		}
		close(in)
	}()
	doubled := Map(ctx, in, func(v int) int { return v * 2 })
	evens := Filter(ctx, doubled, func(v int) bool { return v%4 == 0 })
	got := Collect(evens)
	// doubled: 2,4,6,8,10,12 → multiples of 4: 4,8,12.
	if len(got) != 3 || got[0].Value != 4 || got[2].Value != 12 {
		t.Errorf("pipeline = %v", got)
	}
}

func TestFanInMergesAll(t *testing.T) {
	ctx := context.Background()
	mk := func(vals ...int) <-chan Event[int] {
		ch := make(chan Event[int])
		go func() {
			for _, v := range vals {
				ch <- Event[int]{Value: v}
			}
			close(ch)
		}()
		return ch
	}
	merged := Collect(FanIn(ctx, mk(1, 2), mk(3), mk(4, 5, 6)))
	if len(merged) != 6 {
		t.Errorf("merged %d events, want 6", len(merged))
	}
}

func TestWindowStageEndToEnd(t *testing.T) {
	ctx := context.Background()
	assigner, _ := NewSlidingAssigner(10*time.Second, 10*time.Second)
	op := NewWindowedOp(assigner, 0, sumAgg())
	in := make(chan Event[int])
	go func() {
		in <- Event[int]{Time: time.Unix(1, 0), Value: 5}
		in <- Event[int]{Time: time.Unix(2, 0), Value: 6}
		in <- Event[int]{Time: time.Unix(11, 0), Value: 7} // closes [0,10)
		close(in)                                          // flush closes [10,20)
	}()
	results := Collect(WindowStage(ctx, in, op))
	if len(results) != 2 {
		t.Fatalf("got %d windows", len(results))
	}
	if results[0].Value != 11 || results[1].Value != 7 {
		t.Errorf("windows = %v", results)
	}
}

func TestPipelineContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	in := make(chan Event[int])
	out := Map(ctx, in, func(v int) int { return v })
	in <- Event[int]{Value: 1}
	<-out
	cancel()
	// The stage must stop consuming; this send would block forever if the
	// goroutine still forwarded, but it exits on ctx.Done while trying to
	// send. Feed one more and ensure the output channel closes.
	in <- Event[int]{Value: 2}
	close(in)
	for range out {
	}
}
