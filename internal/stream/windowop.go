package stream

import (
	"sort"
	"time"
)

// Event is a timestamped record flowing through operators.
type Event[T any] struct {
	Time  time.Time
	Value T
}

// WindowResult is an aggregate emitted when a window closes.
type WindowResult[Out any] struct {
	Window Window
	Value  Out
}

// Aggregation folds events of type In into a per-window state of type
// Acc and extracts a result of type Out when the window fires.
type Aggregation[In, Acc, Out any] struct {
	New    func() Acc
	Add    func(Acc, In) Acc
	Result func(Acc) Out
}

// WindowedOp assigns events to sliding windows, drops late records
// behind the watermark, and fires windows whose end has passed the
// watermark — the per-window computation of paper §3.2.4. It is the
// generic single-threaded operator; the aggregator forks these exact
// semantics into a sharded, concurrency-safe form (see
// aggregator.Aggregator.ingest), so a semantic change here must be
// mirrored there.
type WindowedOp[In, Acc, Out any] struct {
	assigner *SlidingAssigner
	wm       *WatermarkTracker
	agg      Aggregation[In, Acc, Out]
	windows  map[int64]windowState[Acc] // keyed by window start UnixNano
	dropped  int64
}

type windowState[Acc any] struct {
	window Window
	acc    Acc
}

// NewWindowedOp wires an assigner, a lateness bound, and an aggregation.
func NewWindowedOp[In, Acc, Out any](assigner *SlidingAssigner, lateness time.Duration, agg Aggregation[In, Acc, Out]) *WindowedOp[In, Acc, Out] {
	return &WindowedOp[In, Acc, Out]{
		assigner: assigner,
		wm:       NewWatermarkTracker(lateness),
		agg:      agg,
		windows:  make(map[int64]windowState[Acc]),
	}
}

// Process folds one event in and returns any windows that fired as a
// consequence of the watermark advancing, earliest first. Late events
// (behind the watermark) are counted and dropped.
func (op *WindowedOp[In, Acc, Out]) Process(ev Event[In]) []WindowResult[Out] {
	if op.wm.IsLate(ev.Time) {
		op.dropped++
		return op.fire()
	}
	for _, w := range op.assigner.WindowsFor(ev.Time) {
		key := w.Start.UnixNano()
		st, ok := op.windows[key]
		if !ok {
			st = windowState[Acc]{window: w, acc: op.agg.New()}
		}
		st.acc = op.agg.Add(st.acc, ev.Value)
		op.windows[key] = st
	}
	op.wm.Observe(ev.Time)
	return op.fire()
}

// AdvanceTo moves the watermark forward without an event (idle-source
// progress) and returns any windows that fire.
func (op *WindowedOp[In, Acc, Out]) AdvanceTo(t time.Time) []WindowResult[Out] {
	op.wm.Observe(t)
	return op.fire()
}

// Flush fires every open window regardless of the watermark — used at
// end of stream.
func (op *WindowedOp[In, Acc, Out]) Flush() []WindowResult[Out] {
	var out []WindowResult[Out]
	for key, st := range op.windows {
		out = append(out, WindowResult[Out]{Window: st.window, Value: op.agg.Result(st.acc)})
		delete(op.windows, key)
	}
	sortResults(out)
	return out
}

// Dropped returns the number of late-discarded events.
func (op *WindowedOp[In, Acc, Out]) Dropped() int64 { return op.dropped }

// OpenWindows returns the number of windows still accumulating.
func (op *WindowedOp[In, Acc, Out]) OpenWindows() int { return len(op.windows) }

func (op *WindowedOp[In, Acc, Out]) fire() []WindowResult[Out] {
	wm := op.wm.Current()
	var out []WindowResult[Out]
	for key, st := range op.windows {
		if !st.window.End.After(wm) {
			out = append(out, WindowResult[Out]{Window: st.window, Value: op.agg.Result(st.acc)})
			delete(op.windows, key)
		}
	}
	sortResults(out)
	return out
}

func sortResults[Out any](rs []WindowResult[Out]) {
	sort.Slice(rs, func(i, j int) bool { return rs[i].Window.Start.Before(rs[j].Window.Start) })
}
