// Package stream is the stream-processing substrate standing in for
// Apache Flink at the aggregator (paper §5): event-time records,
// sliding/tumbling window assignment, watermark tracking, a keyed join
// for the XOR share streams, and windowed aggregation operators that
// fire when the watermark passes a window's end.
package stream

import (
	"errors"
	"fmt"
	"time"
)

// ErrWindow reports invalid window geometry.
var ErrWindow = errors.New("stream: invalid window")

// Window is the half-open event-time interval [Start, End).
type Window struct {
	Start time.Time
	End   time.Time
}

// Contains reports whether t falls inside the window.
func (w Window) Contains(t time.Time) bool {
	return !t.Before(w.Start) && t.Before(w.End)
}

// String renders the window for logs and tests.
func (w Window) String() string {
	return fmt.Sprintf("[%s,%s)", w.Start.Format(time.RFC3339Nano), w.End.Format(time.RFC3339Nano))
}

// SlidingAssigner maps an event time to every sliding window containing
// it: windows of length Size starting every Slide, aligned to Origin
// (the query's start; zero means Unix-epoch alignment). Size == Slide
// degenerates to tumbling windows.
type SlidingAssigner struct {
	Size   time.Duration
	Slide  time.Duration
	Origin time.Time
}

// NewSlidingAssigner validates the geometry (paper §2.2 requires
// δ ≤ w; the aggregator updates results every slide interval).
func NewSlidingAssigner(size, slide time.Duration) (*SlidingAssigner, error) {
	if size <= 0 || slide <= 0 {
		return nil, fmt.Errorf("%w: size %v slide %v", ErrWindow, size, slide)
	}
	if slide > size {
		return nil, fmt.Errorf("%w: slide %v exceeds size %v", ErrWindow, slide, size)
	}
	return &SlidingAssigner{Size: size, Slide: slide}, nil
}

// NewSlidingAssignerAt is NewSlidingAssigner with window boundaries
// aligned to origin, so the first window of a query covers exactly its
// first Size of epochs.
func NewSlidingAssignerAt(size, slide time.Duration, origin time.Time) (*SlidingAssigner, error) {
	a, err := NewSlidingAssigner(size, slide)
	if err != nil {
		return nil, err
	}
	a.Origin = origin
	return a, nil
}

// WindowsFor returns every window containing t, earliest first.
func (a *SlidingAssigner) WindowsFor(t time.Time) []Window {
	return a.AppendWindowsFor(nil, t)
}

// AppendWindowsFor appends every window containing t to dst, earliest
// first, and returns the extended slice — the allocation-free variant
// for callers that assign windows per record.
func (a *SlidingAssigner) AppendWindowsFor(dst []Window, t time.Time) []Window {
	var off int64
	if !a.Origin.IsZero() {
		off = a.Origin.UnixNano()
	}
	ts := t.UnixNano() - off
	slide := int64(a.Slide)
	size := int64(a.Size)
	last := ts - mod(ts, slide) // latest window start ≤ t
	base := len(dst)
	for start := last; start > ts-size; start -= slide {
		dst = append(dst, Window{
			Start: time.Unix(0, start+off),
			End:   time.Unix(0, start+size+off),
		})
	}
	// Reverse the appended tail into earliest-first order.
	for i, j := base, len(dst)-1; i < j; i, j = i+1, j-1 {
		dst[i], dst[j] = dst[j], dst[i]
	}
	return dst
}

// mod is a floored modulo that behaves for negative timestamps.
func mod(a, b int64) int64 {
	m := a % b
	if m < 0 {
		m += b
	}
	return m
}

// WatermarkTracker derives the event-time watermark as the maximum
// observed event time minus an allowed lateness; records older than the
// watermark are dropped by the windowed operators, matching the paper's
// "removing all old data items" step in §3.2.4.
type WatermarkTracker struct {
	maxEvent time.Time
	lateness time.Duration
	seen     bool
}

// NewWatermarkTracker allows records to arrive up to lateness behind the
// newest observed event time.
func NewWatermarkTracker(lateness time.Duration) *WatermarkTracker {
	return &WatermarkTracker{lateness: lateness}
}

// Observe folds in an event time and returns the current watermark.
func (w *WatermarkTracker) Observe(t time.Time) time.Time {
	if !w.seen || t.After(w.maxEvent) {
		w.maxEvent = t
		w.seen = true
	}
	return w.Current()
}

// Current returns the watermark, or the zero time before any event.
func (w *WatermarkTracker) Current() time.Time {
	if !w.seen {
		return time.Time{}
	}
	return w.maxEvent.Add(-w.lateness)
}

// IsLate reports whether an event time is behind the watermark.
func (w *WatermarkTracker) IsLate(t time.Time) bool {
	return w.seen && t.Before(w.Current())
}
