package stream

import (
	"errors"
	"fmt"
	"time"
)

// Errors reported by the share joiner.
var (
	ErrJoinArity = errors.New("stream: invalid join arity")
	ErrDuplicate = errors.New("stream: duplicate share")
)

// Joined is a completed join group: all n share payloads for one message
// identifier, in source order. Groups handed out by Add remain owned by
// the joiner's pool: the caller must consume the payloads (or copy them)
// and then hand the group back with Recycle; a group is never touched by
// the joiner between Add returning it and Recycle.
type Joined[K comparable] struct {
	Key      K
	Payloads [][]byte

	// join bookkeeping while the group is pending.
	filled int
	first  time.Time
}

// KeyedShareJoiner implements the aggregator's first stage (paper
// §3.2.4): it pairs the encrypted answer stream with the n−1 key streams
// by message identifier. A group completes when one share has arrived
// from each of the Expect source streams; stale partial groups can be
// swept out (messages whose shares were lost at a proxy).
//
// The key type is generic so the aggregator can join on the raw 16-byte
// MID value directly — hashing an array key costs nothing per share,
// where the former string key cost a hex encoding allocation.
//
// Duplicate suppression is source-aware: a second share from the same
// proxy stream for the same key is rejected (a replayed share would
// otherwise pair with itself and XOR to garbage), and arrivals for a
// recently completed key are rejected too, bounding the damage of a
// client replaying shares to distort results (the paper defers to
// triple-splitting [26] for the full defense).
type KeyedShareJoiner[K comparable] struct {
	expect   int
	pending  map[K]*Joined[K]
	complete map[K]time.Time // recently completed, for duplicate detection
	retain   time.Duration
	// free recycles completed groups (and their payload-pointer slices)
	// so the steady-state join path performs no allocations.
	free []*Joined[K]
}

// ShareJoiner is the string-keyed joiner, kept for callers joining on
// opaque keys.
type ShareJoiner = KeyedShareJoiner[string]

// NewShareJoiner expects one share from each of expect ≥ 2 source
// streams per message and remembers completed keys for retain to reject
// replays.
func NewShareJoiner(expect int, retain time.Duration) (*ShareJoiner, error) {
	return NewKeyedShareJoiner[string](expect, retain)
}

// NewKeyedShareJoiner is NewShareJoiner for an arbitrary comparable key
// type.
func NewKeyedShareJoiner[K comparable](expect int, retain time.Duration) (*KeyedShareJoiner[K], error) {
	if expect < 2 {
		return nil, fmt.Errorf("%w: %d", ErrJoinArity, expect)
	}
	return &KeyedShareJoiner[K]{
		expect:   expect,
		pending:  make(map[K]*Joined[K]),
		complete: make(map[K]time.Time),
		retain:   retain,
	}, nil
}

// Add folds in one share from the given source stream (0 ≤ source <
// expect). It returns a non-nil Joined when the group completes, and
// ErrDuplicate when the key already completed or this source already
// contributed. The returned group must be handed back via Recycle once
// its payloads are consumed.
func (j *KeyedShareJoiner[K]) Add(key K, source int, payload []byte, at time.Time) (*Joined[K], error) {
	if source < 0 || source >= j.expect {
		return nil, fmt.Errorf("%w: source %d of %d", ErrJoinArity, source, j.expect)
	}
	if _, done := j.complete[key]; done {
		return nil, fmt.Errorf("%w: %v", ErrDuplicate, key)
	}
	g, ok := j.pending[key]
	if !ok {
		g = j.getGroup()
		g.first = at
		j.pending[key] = g
	}
	if g.Payloads[source] != nil {
		return nil, fmt.Errorf("%w: %v from source %d", ErrDuplicate, key, source)
	}
	g.Payloads[source] = payload
	g.filled++
	if g.filled < j.expect {
		return nil, nil
	}
	delete(j.pending, key)
	j.complete[key] = at
	g.Key = key
	return g, nil
}

// Recycle returns a completed group to the joiner's pool, dropping its
// payload references. Only groups returned by this joiner's Add may be
// recycled, each at most once.
func (j *KeyedShareJoiner[K]) Recycle(g *Joined[K]) {
	if g == nil {
		return
	}
	clear(g.Payloads)
	g.filled = 0
	var zero K
	g.Key = zero
	j.free = append(j.free, g)
}

// getGroup pops a pooled group or builds a fresh one.
func (j *KeyedShareJoiner[K]) getGroup() *Joined[K] {
	if n := len(j.free); n > 0 {
		g := j.free[n-1]
		j.free[n-1] = nil
		j.free = j.free[:n-1]
		return g
	}
	return &Joined[K]{Payloads: make([][]byte, j.expect)}
}

// SetRetain adjusts how long completed keys are remembered past the
// sweep cutoff — the multi-query aggregator re-derives it as the
// maximum window over the active query set whenever that set changes.
func (j *KeyedShareJoiner[K]) SetRetain(d time.Duration) { j.retain = d }

// PendingCount returns the number of incomplete groups.
func (j *KeyedShareJoiner[K]) PendingCount() int { return len(j.pending) }

// PendingGroups invokes fn for every incomplete group with its per-source
// payloads (nil where a source has not contributed) and the arrival time
// of its first share — the export half of a checkpoint. The payload
// slices are the joiner's own; fn must not retain or mutate them past
// its return. Iteration order is unspecified.
func (j *KeyedShareJoiner[K]) PendingGroups(fn func(key K, payloads [][]byte, first time.Time)) {
	for key, g := range j.pending {
		fn(key, g.Payloads, g.first)
	}
}

// RestorePending re-creates one incomplete group from checkpointed
// state: payloads holds one entry per source (nil where no share had
// arrived). The payload bytes are copied, so the caller keeps ownership
// of its decode buffers. Restoring a key that is already pending or
// completed is rejected as a duplicate.
func (j *KeyedShareJoiner[K]) RestorePending(key K, payloads [][]byte, first time.Time) error {
	if len(payloads) != j.expect {
		return fmt.Errorf("%w: %d payloads for %d sources", ErrJoinArity, len(payloads), j.expect)
	}
	if _, done := j.complete[key]; done {
		return fmt.Errorf("%w: %v", ErrDuplicate, key)
	}
	if _, ok := j.pending[key]; ok {
		return fmt.Errorf("%w: %v", ErrDuplicate, key)
	}
	filled := 0
	for _, p := range payloads {
		if p != nil {
			filled++
		}
	}
	if filled == 0 || filled >= j.expect {
		return fmt.Errorf("%w: %d of %d shares is not a pending group", ErrJoinArity, filled, j.expect)
	}
	g := j.getGroup()
	g.first = first
	for i, p := range payloads {
		if p != nil {
			g.Payloads[i] = append([]byte(nil), p...)
		}
	}
	g.filled = filled
	j.pending[key] = g
	return nil
}

// CompletedKeys invokes fn for every recently completed key with its
// completion time — exported alongside PendingGroups so a restored
// joiner keeps rejecting replays of keys that completed before the
// checkpoint. Iteration order is unspecified.
func (j *KeyedShareJoiner[K]) CompletedKeys(fn func(key K, at time.Time)) {
	for key, at := range j.complete {
		fn(key, at)
	}
}

// RestoreCompleted re-marks one key as completed at the given time.
func (j *KeyedShareJoiner[K]) RestoreCompleted(key K, at time.Time) {
	delete(j.pending, key)
	j.complete[key] = at
}

// Sweep drops incomplete groups whose first share arrived before cutoff
// and forgets completed keys older than the retain horizon. It returns
// the number of dropped incomplete groups.
func (j *KeyedShareJoiner[K]) Sweep(cutoff time.Time) int {
	dropped := 0
	for key, g := range j.pending {
		if g.first.Before(cutoff) {
			delete(j.pending, key)
			j.Recycle(g)
			dropped++
		}
	}
	retainCutoff := cutoff.Add(-j.retain)
	for key, at := range j.complete {
		if at.Before(retainCutoff) {
			delete(j.complete, key)
		}
	}
	return dropped
}
