package stream

import (
	"errors"
	"fmt"
	"time"
)

// Errors reported by the share joiner.
var (
	ErrJoinArity = errors.New("stream: invalid join arity")
	ErrDuplicate = errors.New("stream: duplicate share")
)

// Joined is a completed join group: all n share payloads for one message
// identifier, in arrival order.
type Joined struct {
	Key      string
	Payloads [][]byte
}

// ShareJoiner implements the aggregator's first stage (paper §3.2.4):
// it pairs the encrypted answer stream with the n−1 key streams by
// message identifier. A group completes when one share has arrived from
// each of the Expect source streams; stale partial groups can be swept
// out (messages whose shares were lost at a proxy).
//
// Duplicate suppression is source-aware: a second share from the same
// proxy stream for the same key is rejected (a replayed share would
// otherwise pair with itself and XOR to garbage), and arrivals for a
// recently completed key are rejected too, bounding the damage of a
// client replaying shares to distort results (the paper defers to
// triple-splitting [26] for the full defense).
type ShareJoiner struct {
	expect   int
	pending  map[string]*pendingGroup
	complete map[string]time.Time // recently completed, for duplicate detection
	retain   time.Duration
}

type pendingGroup struct {
	payloads [][]byte
	filled   int
	first    time.Time
}

// NewShareJoiner expects one share from each of expect ≥ 2 source
// streams per message and remembers completed keys for retain to reject
// replays.
func NewShareJoiner(expect int, retain time.Duration) (*ShareJoiner, error) {
	if expect < 2 {
		return nil, fmt.Errorf("%w: %d", ErrJoinArity, expect)
	}
	return &ShareJoiner{
		expect:   expect,
		pending:  make(map[string]*pendingGroup),
		complete: make(map[string]time.Time),
		retain:   retain,
	}, nil
}

// Add folds in one share from the given source stream (0 ≤ source <
// expect). It returns a non-nil Joined when the group completes, and
// ErrDuplicate when the key already completed or this source already
// contributed.
func (j *ShareJoiner) Add(key string, source int, payload []byte, at time.Time) (*Joined, error) {
	if source < 0 || source >= j.expect {
		return nil, fmt.Errorf("%w: source %d of %d", ErrJoinArity, source, j.expect)
	}
	if _, done := j.complete[key]; done {
		return nil, fmt.Errorf("%w: %q", ErrDuplicate, key)
	}
	g, ok := j.pending[key]
	if !ok {
		g = &pendingGroup{payloads: make([][]byte, j.expect), first: at}
		j.pending[key] = g
	}
	if g.payloads[source] != nil {
		return nil, fmt.Errorf("%w: %q from source %d", ErrDuplicate, key, source)
	}
	g.payloads[source] = payload
	g.filled++
	if g.filled < j.expect {
		return nil, nil
	}
	delete(j.pending, key)
	j.complete[key] = at
	return &Joined{Key: key, Payloads: g.payloads}, nil
}

// PendingCount returns the number of incomplete groups.
func (j *ShareJoiner) PendingCount() int { return len(j.pending) }

// Sweep drops incomplete groups whose first share arrived before cutoff
// and forgets completed keys older than the retain horizon. It returns
// the number of dropped incomplete groups.
func (j *ShareJoiner) Sweep(cutoff time.Time) int {
	dropped := 0
	for key, g := range j.pending {
		if g.first.Before(cutoff) {
			delete(j.pending, key)
			dropped++
		}
	}
	retainCutoff := cutoff.Add(-j.retain)
	for key, at := range j.complete {
		if at.Before(retainCutoff) {
			delete(j.complete, key)
		}
	}
	return dropped
}
