package stream

import (
	"testing"
	"time"
)

// TestKeyedShareJoinerMIDStyleKey drives the joiner with an array key,
// the form the aggregator uses (xorcrypt.MID), and checks the recycle
// pool: a recycled group's storage is handed out again, with no payload
// leakage between groups.
func TestKeyedShareJoinerMIDStyleKey(t *testing.T) {
	type mid [16]byte
	j, err := NewKeyedShareJoiner[mid](2, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	now := time.Unix(0, 0)
	k1 := mid{1}
	k2 := mid{2}
	if _, err := j.Add(k1, 0, []byte("a1"), now); err != nil {
		t.Fatal(err)
	}
	g1, err := j.Add(k1, 1, []byte("a2"), now)
	if err != nil || g1 == nil {
		t.Fatalf("group 1: %v, %v", g1, err)
	}
	if g1.Key != k1 || string(g1.Payloads[0]) != "a1" || string(g1.Payloads[1]) != "a2" {
		t.Fatalf("group 1 = %+v", g1)
	}
	j.Recycle(g1)

	// The recycled group must come back for the next message with its
	// payload slots cleared.
	if _, err := j.Add(k2, 1, []byte("b2"), now); err != nil {
		t.Fatal(err)
	}
	g2, err := j.Add(k2, 0, []byte("b1"), now)
	if err != nil || g2 == nil {
		t.Fatalf("group 2: %v, %v", g2, err)
	}
	if g2 != g1 {
		t.Error("completed group was not recycled through the pool")
	}
	if string(g2.Payloads[0]) != "b1" || string(g2.Payloads[1]) != "b2" {
		t.Fatalf("recycled group leaked payloads: %q %q", g2.Payloads[0], g2.Payloads[1])
	}
	// Duplicate suppression still works on the array key.
	if _, err := j.Add(k1, 0, []byte("replay"), now); err == nil {
		t.Error("completed-key replay must be rejected")
	}
}

// TestShareJoinerSteadyStateAllocs: once the pool is primed, the
// add-complete-recycle cycle must not allocate for the group itself
// (map bookkeeping for the completed-key set is the only remaining
// cost, and it is amortized by Sweep).
func TestShareJoinerSweepRecyclesPending(t *testing.T) {
	j, err := NewKeyedShareJoiner[[16]byte](2, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j.Add([16]byte{9}, 0, []byte("x"), time.Unix(0, 0)); err != nil {
		t.Fatal(err)
	}
	if dropped := j.Sweep(time.Unix(50, 0)); dropped != 1 {
		t.Fatalf("dropped = %d", dropped)
	}
	if len(j.free) != 1 {
		t.Fatalf("swept group not recycled: pool size %d", len(j.free))
	}
	if j.free[0].Payloads[0] != nil {
		t.Fatal("recycled group retains a payload reference")
	}
}
