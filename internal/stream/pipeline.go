package stream

import (
	"context"
	"sync"
)

// Pipeline pieces: small composable dataflow stages over channels, the
// shape Flink jobs take. Each stage runs in its own goroutine and stops
// on context cancellation or upstream close.

// Map applies f to every event; it owns and closes the output channel.
func Map[In, Out any](ctx context.Context, in <-chan Event[In], f func(In) Out) <-chan Event[Out] {
	out := make(chan Event[Out])
	go func() {
		defer close(out)
		for ev := range in {
			select {
			case out <- Event[Out]{Time: ev.Time, Value: f(ev.Value)}:
			case <-ctx.Done():
				return
			}
		}
	}()
	return out
}

// Filter forwards events whose value satisfies pred.
func Filter[T any](ctx context.Context, in <-chan Event[T], pred func(T) bool) <-chan Event[T] {
	out := make(chan Event[T])
	go func() {
		defer close(out)
		for ev := range in {
			if !pred(ev.Value) {
				continue
			}
			select {
			case out <- ev:
			case <-ctx.Done():
				return
			}
		}
	}()
	return out
}

// FanIn merges several event streams into one; the output closes when
// every input has closed.
func FanIn[T any](ctx context.Context, ins ...<-chan Event[T]) <-chan Event[T] {
	out := make(chan Event[T])
	var wg sync.WaitGroup
	wg.Add(len(ins))
	for _, in := range ins {
		go func(in <-chan Event[T]) {
			defer wg.Done()
			for ev := range in {
				select {
				case out <- ev:
				case <-ctx.Done():
					return
				}
			}
		}(in)
	}
	go func() {
		wg.Wait()
		close(out)
	}()
	return out
}

// WindowStage runs a WindowedOp over a stream, emitting fired window
// results downstream and flushing open windows at end of input.
func WindowStage[In, Acc, Out any](ctx context.Context, in <-chan Event[In], op *WindowedOp[In, Acc, Out]) <-chan WindowResult[Out] {
	out := make(chan WindowResult[Out])
	go func() {
		defer close(out)
		emit := func(rs []WindowResult[Out]) bool {
			for _, r := range rs {
				select {
				case out <- r:
				case <-ctx.Done():
					return false
				}
			}
			return true
		}
		for ev := range in {
			if !emit(op.Process(ev)) {
				return
			}
		}
		emit(op.Flush())
	}()
	return out
}

// Collect drains a channel into a slice (a test/batch sink).
func Collect[T any](ch <-chan T) []T {
	var out []T
	for v := range ch {
		out = append(out, v)
	}
	return out
}
