package chaos_test

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"privapprox/internal/chaos"
	"privapprox/internal/pubsub"
)

func gateMsgs(n int) []pubsub.Message {
	msgs := make([]pubsub.Message, n)
	for i := range msgs {
		msgs[i] = pubsub.Message{
			Key:   []byte(fmt.Sprintf("key-%03d", i)),
			Value: []byte(fmt.Sprintf("val-%03d", i)),
		}
	}
	return msgs
}

func newWrapped(t *testing.T, plan chaos.Plan) (*pubsub.Broker, *chaos.Transport) {
	t.Helper()
	b := pubsub.NewBroker()
	t.Cleanup(b.Close)
	if err := b.CreateTopic("answer", 2); err != nil {
		t.Fatal(err)
	}
	ct, err := chaos.Wrap(b, plan)
	if err != nil {
		t.Fatal(err)
	}
	return b, ct
}

func TestPlanValidate(t *testing.T) {
	for _, bad := range []chaos.Plan{
		{Reset: -0.1},
		{AckDrop: 1.5},
		{Reset: 0.5, AckDrop: 0.3, Duplicate: 0.3},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("plan %+v validated", bad)
		}
	}
	if err := (chaos.Plan{Reset: 0.25, AckDrop: 0.25, Duplicate: 0.25, Delay: 0.25}).Validate(); err != nil {
		t.Errorf("valid plan rejected: %v", err)
	}
}

// TestFaultReset: the call never reaches the broker, and the error is
// retryable — a producer with attempts to spare delivers exactly once.
func TestFaultReset(t *testing.T) {
	b, ct := newWrapped(t, chaos.Plan{Reset: 1})
	prod := pubsub.NewProducer(ct, pubsub.RetryPolicy{Attempts: 1})
	err := prod.PublishBatch("answer", gateMsgs(4))
	if !errors.Is(err, chaos.ErrInjectedReset) {
		t.Fatalf("err = %v, want injected reset", err)
	}
	if st := b.Stats(); st.MessagesIn != 0 {
		t.Fatalf("reset fault leaked %d messages to the broker", st.MessagesIn)
	}
	if st := ct.Stats(); st.Resets != 1 || st.Injected() != 1 {
		t.Fatalf("stats = %+v, want one reset", st)
	}
}

// TestFaultAckDrop: the batch lands, the caller sees ErrAmbiguous, and
// every deduplicated retry lands as broker duplicates — never as extra
// records.
func TestFaultAckDrop(t *testing.T) {
	b, ct := newWrapped(t, chaos.Plan{AckDrop: 1})
	prod := pubsub.NewProducer(ct, pubsub.RetryPolicy{Attempts: 3, Backoff: time.Microsecond})
	err := prod.PublishBatch("answer", gateMsgs(4))
	if !errors.Is(err, pubsub.ErrAmbiguous) {
		t.Fatalf("err = %v, want ErrAmbiguous", err)
	}
	st := b.Stats()
	if st.MessagesIn != 4 {
		t.Fatalf("MessagesIn = %d, want 4 (batch applied exactly once)", st.MessagesIn)
	}
	if st.Duplicates != 8 {
		t.Fatalf("Duplicates = %d, want 8 (two deduplicated retries)", st.Duplicates)
	}
}

// TestFaultDuplicate: the injected redelivery is absorbed by the
// broker's session dedup and the caller sees clean success.
func TestFaultDuplicate(t *testing.T) {
	b, ct := newWrapped(t, chaos.Plan{Duplicate: 1})
	prod := pubsub.NewProducer(ct, pubsub.RetryPolicy{})
	if err := prod.PublishBatch("answer", gateMsgs(4)); err != nil {
		t.Fatalf("publish: %v", err)
	}
	st := b.Stats()
	if st.MessagesIn != 4 || st.Duplicates != 4 {
		t.Fatalf("MessagesIn = %d, Duplicates = %d; want 4 and 4", st.MessagesIn, st.Duplicates)
	}
}

// TestScheduleDeterminism: the same plan over the same call sequence
// draws the same faults.
func TestScheduleDeterminism(t *testing.T) {
	plan := chaos.Plan{Seed: 42, Reset: 0.2, AckDrop: 0.2, Duplicate: 0.2, Delay: 0.2, DelayFor: time.Microsecond}
	run := func() chaos.Stats {
		_, ct := newWrapped(t, plan)
		prod := pubsub.NewProducer(ct, pubsub.RetryPolicy{Attempts: 4, Backoff: time.Microsecond})
		for i := 0; i < 50; i++ {
			prod.PublishBatch("answer", gateMsgs(2))
		}
		return ct.Stats()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
	if a.Injected() == 0 {
		t.Fatalf("schedule injected nothing: %+v", a)
	}
}

// TestPassthroughUnfaulted: plain (non-session) operations are never
// perturbed, whatever the plan says.
func TestPassthroughUnfaulted(t *testing.T) {
	b, ct := newWrapped(t, chaos.Plan{Reset: 1})
	if _, _, err := ct.Publish("answer", []byte("k"), []byte("v")); err != nil {
		t.Fatalf("plain publish faulted: %v", err)
	}
	if _, err := ct.PublishBatch("answer", gateMsgs(2)); err != nil {
		t.Fatalf("plain batch faulted: %v", err)
	}
	if st := ct.Stats(); st.Calls != 0 {
		t.Fatalf("plain publishes drew faults: %+v", st)
	}
	if st := b.Stats(); st.MessagesIn != 3 {
		t.Fatalf("MessagesIn = %d, want 3", st.MessagesIn)
	}
}
