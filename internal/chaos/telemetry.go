package chaos

import (
	"privapprox/internal/telemetry"
)

// AppendSamples implements telemetry.Source over the transport's fault
// counters — the same numbers Stats() snapshots, which remains as the
// compat surface.
func (t *Transport) AppendSamples(dst []telemetry.Sample) []telemetry.Sample {
	s := t.Stats()
	return append(dst,
		telemetry.Sample{Name: "privapprox_chaos_calls_total", Value: float64(s.Calls), Kind: telemetry.KindCounter},
		telemetry.Sample{Name: "privapprox_chaos_resets_total", Value: float64(s.Resets), Kind: telemetry.KindCounter},
		telemetry.Sample{Name: "privapprox_chaos_ack_drops_total", Value: float64(s.AckDrops), Kind: telemetry.KindCounter},
		telemetry.Sample{Name: "privapprox_chaos_duplicates_total", Value: float64(s.Duplicates), Kind: telemetry.KindCounter},
		telemetry.Sample{Name: "privapprox_chaos_delays_total", Value: float64(s.Delays), Kind: telemetry.KindCounter},
		telemetry.Sample{Name: "privapprox_chaos_injected_total", Value: float64(s.Injected()), Kind: telemetry.KindCounter},
	)
}

var _ telemetry.Source = (*Transport)(nil)
