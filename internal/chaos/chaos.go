// Package chaos injects seeded faults into the data-plane publish path.
// It is netsim.Link's live sibling: where Link models an adversarial
// delivery schedule for the control plane offline, chaos.Transport
// wraps a real pubsub transport and perturbs the session publish calls
// as they happen — synthetic connection resets (the request never
// executes), dropped acks (the request executes but the caller sees an
// ambiguous failure), duplicated deliveries (the request executes
// twice), and delays. Under a fixed seed the fault schedule is a pure
// function of the call sequence, so a chaos run is reproducible and a
// gate can assert that results under faults are byte-identical to the
// fault-free run (the broker's producer-session dedup and the client's
// retry policy absorb every injected fault).
//
// Faults target only the SessionPublisher surface: those are the calls
// with an exactly-once contract to stress. Plain publishes pass through
// untouched — without broker dedup, a replayed or duplicated share
// would XOR the aggregator's MID join into silent garbage, which is the
// bug class the session layer exists to prevent, not a behavior worth
// simulating here.
package chaos

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"privapprox/internal/pubsub"
)

// Fault identifies one injected fault kind.
type Fault int

const (
	// FaultNone: the call passes through untouched.
	FaultNone Fault = iota
	// FaultReset fails the call before it reaches the inner transport —
	// a connection reset on send. The operation did not execute;
	// retrying cannot double-publish even without dedup.
	FaultReset
	// FaultAckDrop executes the call, then reports an ambiguous failure
	// — the broker applied the batch but the ack never arrived. Only a
	// deduplicating retry recovers this without double-publishing.
	FaultAckDrop
	// FaultDuplicate executes the call twice with the same producer ID
	// and sequence — a duplicated delivery the broker must dedup.
	FaultDuplicate
	// FaultDelay sleeps briefly, then executes the call normally.
	FaultDelay
)

// String names the fault kind.
func (f Fault) String() string {
	switch f {
	case FaultNone:
		return "none"
	case FaultReset:
		return "reset"
	case FaultAckDrop:
		return "ack-drop"
	case FaultDuplicate:
		return "duplicate"
	case FaultDelay:
		return "delay"
	}
	return fmt.Sprintf("fault(%d)", int(f))
}

// ErrInjectedReset is the synthetic pre-execution failure. It is not a
// pubsub sentinel, so pubsub.Producer treats it as a retryable
// transport error — exactly like a real dial failure or reset.
var ErrInjectedReset = errors.New("chaos: injected connection reset")

// Plan is one seeded fault schedule: per-call probabilities for each
// fault kind (at most one fault fires per call, drawn in the order
// reset, ack-drop, duplicate, delay from a single uniform variate).
// The zero Plan injects nothing.
type Plan struct {
	// Seed fixes the schedule; the same seed and call sequence always
	// yield the same faults. Seed 0 is a valid (distinct) schedule.
	Seed int64
	// Reset, AckDrop, Duplicate, Delay are per-call probabilities in
	// [0, 1]; their sum must not exceed 1.
	Reset     float64
	AckDrop   float64
	Duplicate float64
	Delay     float64
	// DelayFor is the FaultDelay sleep (default 200µs).
	DelayFor time.Duration
}

// Validate checks the probabilities.
func (p Plan) Validate() error {
	for _, v := range []float64{p.Reset, p.AckDrop, p.Duplicate, p.Delay} {
		if v < 0 || v > 1 {
			return fmt.Errorf("chaos: probability %v outside [0, 1]", v)
		}
	}
	if sum := p.Reset + p.AckDrop + p.Duplicate + p.Delay; sum > 1 {
		return fmt.Errorf("chaos: fault probabilities sum to %v > 1", sum)
	}
	return nil
}

func (p Plan) delayFor() time.Duration {
	if p.DelayFor > 0 {
		return p.DelayFor
	}
	return 200 * time.Microsecond
}

// Stats counts the faults a Transport injected.
type Stats struct {
	Calls      int64 // session publish calls seen
	Resets     int64
	AckDrops   int64
	Duplicates int64
	Delays     int64
}

// Injected returns the total number of faults fired.
func (s Stats) Injected() int64 { return s.Resets + s.AckDrops + s.Duplicates + s.Delays }

// Transport wraps a pubsub transport with fault injection on the
// session publish path; every other call passes straight through. It
// implements the same optional surfaces as the wrapped transport's
// common case (WaitPublisher, ColumnPublisher, SessionPublisher), so a
// pubsub.Producer built over it negotiates sessions exactly as it would
// over the bare transport.
type Transport struct {
	inner pubsub.Transport
	sp    pubsub.SessionPublisher // nil when inner lacks sessions
	plan  Plan

	mu    sync.Mutex
	rng   *rand.Rand
	stats Stats
}

// Wrap builds a fault-injecting view of inner under the given plan.
func Wrap(inner pubsub.Transport, plan Plan) (*Transport, error) {
	if inner == nil {
		return nil, fmt.Errorf("chaos: nil transport")
	}
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	t := &Transport{inner: inner, plan: plan, rng: rand.New(rand.NewSource(plan.Seed))}
	t.sp, _ = inner.(pubsub.SessionPublisher)
	return t, nil
}

// Stats returns the fault counters so far.
func (t *Transport) Stats() Stats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.stats
}

// draw picks at most one fault for the current call and counts it.
func (t *Transport) draw() Fault {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.stats.Calls++
	r := t.rng.Float64()
	switch {
	case r < t.plan.Reset:
		t.stats.Resets++
		return FaultReset
	case r < t.plan.Reset+t.plan.AckDrop:
		t.stats.AckDrops++
		return FaultAckDrop
	case r < t.plan.Reset+t.plan.AckDrop+t.plan.Duplicate:
		t.stats.Duplicates++
		return FaultDuplicate
	case r < t.plan.Reset+t.plan.AckDrop+t.plan.Duplicate+t.plan.Delay:
		t.stats.Delays++
		return FaultDelay
	}
	return FaultNone
}

// sessionCall runs one session publish under the drawn fault.
func (t *Transport) sessionCall(send func() ([]pubsub.PubResult, error)) ([]pubsub.PubResult, error) {
	switch t.draw() {
	case FaultReset:
		return nil, ErrInjectedReset
	case FaultAckDrop:
		if _, err := send(); err != nil {
			return nil, err
		}
		// The batch landed; report the ack lost. Wrapping ErrAmbiguous
		// states the truth — the caller cannot know the outcome — and
		// routes the producer onto its deduplicated retry path.
		return nil, fmt.Errorf("%w: chaos: injected ack drop", pubsub.ErrAmbiguous)
	case FaultDuplicate:
		res, err := send()
		if err != nil {
			return nil, err
		}
		// Redeliver with the same (pid, seq); the broker must dedup.
		// An error from the duplicate is swallowed — the first delivery
		// already succeeded and its results stand.
		send()
		return res, nil
	case FaultDelay:
		time.Sleep(t.plan.delayFor())
	}
	return send()
}

// PublishBatchSession injects a fault (per the plan) around the inner
// session publish.
func (t *Transport) PublishBatchSession(topic string, msgs []pubsub.Message, pid, seq uint64) ([]pubsub.PubResult, error) {
	if t.sp == nil {
		return nil, pubsub.ErrNoSession
	}
	return t.sessionCall(func() ([]pubsub.PubResult, error) {
		return t.sp.PublishBatchSession(topic, msgs, pid, seq)
	})
}

// PublishColumnsSession injects a fault (per the plan) around the inner
// columnar session publish.
func (t *Transport) PublishColumnsSession(topic string, cols pubsub.Columns, pid, seq uint64) ([]pubsub.PubResult, error) {
	if t.sp == nil {
		return nil, pubsub.ErrNoSession
	}
	return t.sessionCall(func() ([]pubsub.PubResult, error) {
		return t.sp.PublishColumnsSession(topic, cols, pid, seq)
	})
}

// --- fault-free passthroughs -------------------------------------------

func (t *Transport) CreateTopic(topic string, partitions int) error {
	return t.inner.CreateTopic(topic, partitions)
}

func (t *Transport) Partitions(topic string) (int, error) { return t.inner.Partitions(topic) }

func (t *Transport) Publish(topic string, key, value []byte) (int, int64, error) {
	return t.inner.Publish(topic, key, value)
}

func (t *Transport) PublishBatch(topic string, msgs []pubsub.Message) ([]pubsub.PubResult, error) {
	return t.inner.PublishBatch(topic, msgs)
}

func (t *Transport) FetchWait(topic string, partition int, offset int64, max int, wait time.Duration) ([]pubsub.Record, error) {
	return t.inner.FetchWait(topic, partition, offset, max, wait)
}

func (t *Transport) EndOffset(topic string, partition int) (int64, error) {
	return t.inner.EndOffset(topic, partition)
}

func (t *Transport) CommitOffset(group, topic string, partition int, offset int64) error {
	return t.inner.CommitOffset(group, topic, partition, offset)
}

func (t *Transport) CommittedOffset(group, topic string, partition int) (int64, error) {
	return t.inner.CommittedOffset(group, topic, partition)
}

func (t *Transport) PublishWait(topic string, key, value []byte, timeout time.Duration) (int, int64, error) {
	if wp, ok := t.inner.(pubsub.WaitPublisher); ok {
		return wp.PublishWait(topic, key, value, timeout)
	}
	return t.inner.Publish(topic, key, value)
}

func (t *Transport) PublishBatchWait(topic string, msgs []pubsub.Message, timeout time.Duration) ([]pubsub.PubResult, error) {
	if wp, ok := t.inner.(pubsub.WaitPublisher); ok {
		return wp.PublishBatchWait(topic, msgs, timeout)
	}
	return t.inner.PublishBatch(topic, msgs)
}

func (t *Transport) PublishColumns(topic string, cols pubsub.Columns) ([]pubsub.PubResult, error) {
	if cp, ok := t.inner.(pubsub.ColumnPublisher); ok {
		return cp.PublishColumns(topic, cols)
	}
	return nil, fmt.Errorf("chaos: inner transport has no columnar surface")
}

func (t *Transport) PublishColumnsWait(topic string, cols pubsub.Columns, timeout time.Duration) ([]pubsub.PubResult, error) {
	if cp, ok := t.inner.(pubsub.ColumnPublisher); ok {
		return cp.PublishColumnsWait(topic, cols, timeout)
	}
	return nil, fmt.Errorf("chaos: inner transport has no columnar surface")
}

var (
	_ pubsub.Transport        = (*Transport)(nil)
	_ pubsub.WaitPublisher    = (*Transport)(nil)
	_ pubsub.ColumnPublisher  = (*Transport)(nil)
	_ pubsub.SessionPublisher = (*Transport)(nil)
)
