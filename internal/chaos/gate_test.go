package chaos_test

import (
	"crypto/ed25519"
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"privapprox/internal/aggregator"
	"privapprox/internal/budget"
	"privapprox/internal/chaos"
	"privapprox/internal/client"
	"privapprox/internal/engine"
	"privapprox/internal/minisql"
	"privapprox/internal/proxy"
	"privapprox/internal/pubsub"
	"privapprox/internal/query"
	"privapprox/internal/rr"
	"privapprox/internal/wal"
	"privapprox/internal/workload"
	"privapprox/internal/xorcrypt"
)

// TestChaosGate is the make-chaos gate: the full multi-proxy TCP
// pipeline runs once fault-free, then once per seeded fault schedule —
// injected connection resets, dropped acks, duplicated deliveries, and
// a proxy stop/restart mid-run — and every faulted run must produce
// results byte-identical to the fault-free run. The producer sessions'
// broker-side dedup plus the client-side retry policy are what make
// that hold; the gate also asserts the brokers actually deduplicated
// replays (Stats.Duplicates > 0), so the schedules are known to have
// exercised the machinery rather than passing vacuously.
func TestChaosGate(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos gate is a long test")
	}
	baseline := runPipeline(t, "baseline", chaos.Plan{}, false)
	if baseline.decoded == 0 || baseline.results == "" {
		t.Fatalf("fault-free run produced no results (decoded=%d)", baseline.decoded)
	}

	schedules := []struct {
		name string
		plan chaos.Plan
		kill bool
	}{
		{"resets-a", chaos.Plan{Seed: 101, Reset: 0.4}, false},
		{"resets-b", chaos.Plan{Seed: 102, Reset: 0.4}, false},
		{"ackdrops-a", chaos.Plan{Seed: 201, AckDrop: 0.4}, false},
		{"ackdrops-b", chaos.Plan{Seed: 202, AckDrop: 0.4}, false},
		{"duplicates-a", chaos.Plan{Seed: 301, Duplicate: 0.45}, false},
		{"duplicates-b", chaos.Plan{Seed: 302, Duplicate: 0.45}, false},
		{"mixed-a", chaos.Plan{Seed: 401, Reset: 0.15, AckDrop: 0.15, Duplicate: 0.15, Delay: 0.15}, false},
		{"mixed-b", chaos.Plan{Seed: 402, Reset: 0.15, AckDrop: 0.15, Duplicate: 0.15, Delay: 0.15}, false},
		{"proxy-restart", chaos.Plan{Seed: 501, AckDrop: 0.2, Duplicate: 0.2}, true},
	}
	var totalDuplicates int64
	for _, sc := range schedules {
		out := runPipeline(t, sc.name, sc.plan, sc.kill)
		if out.injected == 0 {
			t.Errorf("%s: schedule injected no faults; raise probabilities or change the seed", sc.name)
		}
		if out.decoded != baseline.decoded {
			t.Errorf("%s: decoded %d answers, fault-free run decoded %d", sc.name, out.decoded, baseline.decoded)
		}
		if out.results != baseline.results {
			t.Errorf("%s: results diverged from fault-free run\n--- fault-free ---\n%s--- %s ---\n%s",
				sc.name, baseline.results, sc.name, out.results)
		}
		totalDuplicates += out.duplicates
		t.Logf("%s: faults=%d broker-dedup=%d decoded=%d", sc.name, out.injected, out.duplicates, out.decoded)
	}
	if totalDuplicates == 0 {
		t.Errorf("no schedule drove the brokers to dedup a replay; the gate did not exercise idempotence")
	}
}

const (
	gateSeed    = int64(1)
	gateClients = 6
	gateEpochs  = 4
	gateQueries = 2
	gateParts   = 2
)

var gateOrigin = time.Unix(1_700_000_000, 0)

type runOutput struct {
	results    string
	decoded    int64
	duplicates int64 // broker-side dedup count across proxies at the end
	injected   int64 // chaos faults fired across proxies
}

// proxyProc is one in-process "proxy process": a durable broker served
// over TCP, stoppable and restartable on the same address and journal
// directory — the in-process analog of the crash harness's SIGKILLed
// node (whose WAL-durability half is covered by the crash gate; here
// the stop is graceful so byte-identity is about delivery, not fsync).
type proxyProc struct {
	index  int
	dir    string
	addr   string
	broker *pubsub.Broker
	srv    *pubsub.Server
}

func startProxy(t *testing.T, index int, dir, addr string) *proxyProc {
	t.Helper()
	b, err := pubsub.OpenBroker(dir, wal.Options{})
	if err != nil {
		t.Fatalf("open broker %d: %v", index, err)
	}
	if err := b.CreateTopic(proxy.TopicFor(index), gateParts); err != nil && !errors.Is(err, pubsub.ErrTopicExists) {
		t.Fatalf("create topic: %v", err)
	}
	if err := b.CreateTopic(proxy.TopicControl, 1); err != nil && !errors.Is(err, pubsub.ErrTopicExists) {
		t.Fatalf("create control topic: %v", err)
	}
	srv, err := pubsub.Serve(b, addr)
	if err != nil {
		t.Fatalf("serve proxy %d: %v", index, err)
	}
	return &proxyProc{index: index, dir: dir, addr: srv.Addr(), broker: b, srv: srv}
}

func (p *proxyProc) stop(t *testing.T) {
	t.Helper()
	if err := p.srv.Close(); err != nil {
		t.Fatalf("close proxy %d server: %v", p.index, err)
	}
	p.broker.Close()
}

func (p *proxyProc) restart(t *testing.T) {
	t.Helper()
	np := startProxy(t, p.index, p.dir, p.addr)
	p.broker, p.srv = np.broker, np.srv
}

func gateAnalystKey() (string, ed25519.PrivateKey) {
	const analyst = "chaos-analyst"
	var seed [ed25519.SeedSize]byte
	copy(seed[:], analyst)
	return analyst, ed25519.NewKeyFromSeed(seed[:])
}

// runPipeline drives one full run — announce, answer epochs through
// chaos-wrapped transports, drain, flush — and returns the canonical
// result text plus the fault and dedup counters.
func runPipeline(t *testing.T, name string, plan chaos.Plan, kill bool) runOutput {
	t.Helper()
	dir := t.TempDir()

	procs := make([]*proxyProc, 2)
	addrs := make([]string, len(procs))
	for i := range procs {
		procs[i] = startProxy(t, i, filepath.Join(dir, fmt.Sprintf("proxy-%d", i)), "127.0.0.1:0")
		addrs[i] = procs[i].addr
	}
	defer func() {
		for _, p := range procs {
			p.srv.Close()
			p.broker.Close()
		}
	}()

	// Client-side transports: a pooled TCP client per proxy, wrapped in
	// the fault injector. Each proxy gets its own derived schedule seed
	// so the two fault streams are independent of call interleaving.
	var tcps []*pubsub.Client
	defer func() {
		for _, c := range tcps {
			c.Close()
		}
	}()
	transports := make([]pubsub.Transport, len(procs))
	injectors := make([]*chaos.Transport, len(procs))
	for i, addr := range addrs {
		cli, err := pubsub.DialOptions(addr, pubsub.Options{Conns: 2, Seed: gateSeed + int64(i)})
		if err != nil {
			t.Fatalf("%s: dial proxy %d: %v", name, i, err)
		}
		tcps = append(tcps, cli)
		p := plan
		p.Seed = plan.Seed + int64(i)*7919
		ct, err := chaos.Wrap(cli, p)
		if err != nil {
			t.Fatalf("%s: wrap transport: %v", name, err)
		}
		injectors[i] = ct
		transports[i] = ct
	}
	fleet, err := proxy.AttachFleet(transports)
	if err != nil {
		t.Fatalf("%s: attach fleet: %v", name, err)
	}
	// Generous attempts: the gate's fault probabilities make several
	// consecutive injected failures on one batch plausible, and a lost
	// batch would (correctly) break byte-identity.
	fleet.SetRetryPolicy(pubsub.RetryPolicy{
		Attempts:   12,
		Backoff:    time.Millisecond,
		MaxBackoff: 20 * time.Millisecond,
		Seed:       gateSeed,
	})

	// Announce the query set through every proxy's control topic.
	analyst, priv := gateAnalystKey()
	reg := engine.NewRegistry()
	if err := reg.Trust(analyst, priv.Public().(ed25519.PublicKey)); err != nil {
		t.Fatalf("%s: trust: %v", name, err)
	}
	if err := reg.AttachSink(fleet); err != nil {
		t.Fatalf("%s: attach sink: %v", name, err)
	}
	params := budget.Params{S: 0.9, RR: rr.Params{P: 0.9, Q: 0.6}}
	signedQueries := make([]*query.Signed, gateQueries)
	for i := range signedQueries {
		q, err := workload.TaxiQuery(analyst, uint64(i+1), time.Second, 4*time.Second, 4*time.Second)
		if err != nil {
			t.Fatalf("%s: build query: %v", name, err)
		}
		signed, err := query.Sign(q, priv)
		if err != nil {
			t.Fatalf("%s: sign: %v", name, err)
		}
		if err := reg.Register(signed, params); err != nil {
			t.Fatalf("%s: register: %v", name, err)
		}
		signedQueries[i] = signed
	}

	// Clients: one batcher per proxy, epoch flushes as single frames.
	batchers := make([]*client.Batcher, fleet.Size())
	sinks := make([]client.ShareSink, fleet.Size())
	for i := range batchers {
		batchers[i] = client.NewBatcher(fleet.Proxy(i), 0)
		sinks[i] = batchers[i]
	}
	clients := make([]*client.Client, gateClients)
	subs := make([]engine.Subscriber, gateClients)
	for j := range clients {
		db := minisql.NewDB()
		rng := rand.New(rand.NewSource(int64(j) + 1))
		if err := workload.PopulateTaxi(db, rng, 3, time.Unix(0, 0), time.Minute); err != nil {
			t.Fatalf("%s: populate: %v", name, err)
		}
		c, err := client.New(client.Config{
			ID:    fmt.Sprintf("client-%06d", j),
			DB:    db,
			Sinks: sinks,
			Seed:  gateSeed + int64(j) + 2,
		})
		if err != nil {
			t.Fatalf("%s: client: %v", name, err)
		}
		clients[j] = c
		subs[j] = c
	}
	cc, err := fleet.Proxy(0).ControlConsumer("chaos-clients")
	if err != nil {
		t.Fatalf("%s: control consumer: %v", name, err)
	}
	follower := engine.NewFollower(cc, engine.NewApplier(subs...))
	if err := follower.WaitActive(gateQueries, 10*time.Second); err != nil {
		t.Fatalf("%s: wait for announcements: %v", name, err)
	}

	for e := uint64(0); e < gateEpochs; e++ {
		if _, err := follower.Sync(); err != nil {
			t.Fatalf("%s: epoch %d sync: %v", name, e, err)
		}
		for _, c := range clients {
			if _, err := c.AnswerOnce(e); err != nil {
				t.Fatalf("%s: epoch %d answer: %v", name, e, err)
			}
		}
		for i, b := range batchers {
			if err := b.Flush(); err != nil {
				t.Fatalf("%s: epoch %d flush proxy %d: %v", name, e, i, err)
			}
		}
		if kill && e == 1 {
			// Stop and restart proxy 1 on the same address and journal
			// between epochs: the journal replay must restore both the
			// share stream and the producer-session dedup state, and the
			// clients' next flush must redial and carry on.
			procs[1].stop(t)
			procs[1].restart(t)
		}
	}
	var sent int64
	for _, c := range clients {
		sent += c.Stats().AnswersSent
	}

	// Aggregator side: clean (fault-free) transports to the same
	// proxies, the same drain loop the node's aggregator role runs.
	var aggTcps []*pubsub.Client
	defer func() {
		for _, c := range aggTcps {
			c.Close()
		}
	}()
	aggTransports := make([]pubsub.Transport, len(procs))
	for i, addr := range addrs {
		cli, err := pubsub.DialOptions(addr, pubsub.Options{Conns: 2})
		if err != nil {
			t.Fatalf("%s: dial aggregator transport %d: %v", name, i, err)
		}
		aggTcps = append(aggTcps, cli)
		aggTransports[i] = cli
	}
	aggFleet, err := proxy.AttachFleet(aggTransports)
	if err != nil {
		t.Fatalf("%s: attach aggregator fleet: %v", name, err)
	}
	agg, err := aggregator.NewMulti(aggregator.Config{
		Population: gateClients,
		Proxies:    fleet.Size(),
		Origin:     gateOrigin,
		Seed:       gateSeed + 1,
	})
	if err != nil {
		t.Fatalf("%s: aggregator: %v", name, err)
	}
	for _, signed := range signedQueries {
		if err := agg.AddQuery(aggregator.QuerySpec{Query: signed.Query, Params: params}); err != nil {
			t.Fatalf("%s: add query: %v", name, err)
		}
	}
	consumers, err := aggFleet.Consumers("chaos-aggregator")
	if err != nil {
		t.Fatalf("%s: consumers: %v", name, err)
	}
	var results []aggregator.Result
	var shares []xorcrypt.Share
	deadline := time.Now().Add(30 * time.Second)
	for agg.Decoded() < sent {
		if !time.Now().Before(deadline) {
			t.Fatalf("%s: decoded %d of %d sent answers before deadline", name, agg.Decoded(), sent)
		}
		for src, c := range consumers {
			recs, err := c.PollWait(4096, 50*time.Millisecond)
			if err != nil {
				t.Fatalf("%s: poll proxy %d: %v", name, src, err)
			}
			shares = shares[:0]
			for _, rec := range recs {
				share, err := proxy.DecodeRecord(rec)
				if err != nil {
					t.Fatalf("%s: decode record: %v", name, err)
				}
				shares = append(shares, share)
			}
			res, err := agg.SubmitShareBatch(shares, src, time.Now())
			if err != nil {
				t.Fatalf("%s: submit shares: %v", name, err)
			}
			results = append(results, res...)
		}
	}
	final, err := agg.Flush()
	if err != nil {
		t.Fatalf("%s: flush: %v", name, err)
	}
	results = append(results, final...)

	out := runOutput{results: canonicalResults(results), decoded: agg.Decoded()}
	for _, p := range procs {
		out.duplicates += p.broker.Stats().Duplicates
	}
	for _, inj := range injectors {
		out.injected += inj.Stats().Injected()
	}
	return out
}

// canonicalResults renders fired windows in a stable order so two runs
// compare byte for byte regardless of drain batching.
func canonicalResults(results []aggregator.Result) string {
	lines := make([]string, 0, len(results))
	for _, res := range results {
		var b strings.Builder
		fmt.Fprintf(&b, "query %s window [%s → %s): %d answers\n",
			res.Query, res.Window.Start.Format(time.RFC3339), res.Window.End.Format(time.RFC3339), res.Responses)
		for _, bk := range res.Buckets {
			fmt.Fprintf(&b, "  %-12s %10.4f ± %.4f\n", bk.Label, bk.Estimate.Estimate, bk.Estimate.Margin)
		}
		lines = append(lines, b.String())
	}
	sort.Strings(lines)
	return strings.Join(lines, "")
}
