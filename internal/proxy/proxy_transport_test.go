package proxy

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"privapprox/internal/pubsub"
	"privapprox/internal/xorcrypt"
)

func TestSubmitBatchRoundTrip(t *testing.T) {
	p, err := New("p", 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	shares := make([]xorcrypt.Share, 32)
	for i := range shares {
		shares[i] = randomShare(t, []byte{byte(i)})
	}
	if err := p.SubmitBatch(shares); err != nil {
		t.Fatal(err)
	}
	if err := p.SubmitBatch(nil); err != nil {
		t.Fatal(err)
	}
	c, err := p.Consumer("agg")
	if err != nil {
		t.Fatal(err)
	}
	recs, err := c.PollWait(100, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(shares) {
		t.Fatalf("polled %d records, want %d", len(recs), len(shares))
	}
	if st := p.Stats(); st.MessagesIn != int64(len(shares)) {
		t.Errorf("MessagesIn = %d", st.MessagesIn)
	}
}

// An attached proxy over a live TCP server behaves like a local one:
// same topics, same submit/consume surface.
func TestAttachOverTCP(t *testing.T) {
	broker := pubsub.NewBroker()
	if err := broker.CreateTopic(TopicAnswer, 2); err != nil {
		t.Fatal(err)
	}
	srv, err := pubsub.Serve(broker, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli, err := pubsub.DialPool(srv.Addr(), 2)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	p, err := Attach("remote-0", 0, cli)
	if err != nil {
		t.Fatal(err)
	}
	if p.Topic() != TopicAnswer {
		t.Errorf("topic = %q", p.Topic())
	}
	share := randomShare(t, []byte("over-the-wire"))
	if err := p.Submit(share); err != nil {
		t.Fatal(err)
	}
	if err := p.SubmitBatch([]xorcrypt.Share{randomShare(t, []byte("b0")), randomShare(t, []byte("b1"))}); err != nil {
		t.Fatal(err)
	}
	c, err := p.Consumer("agg")
	if err != nil {
		t.Fatal(err)
	}
	recs, err := c.PollWait(10, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("polled %d records, want 3", len(recs))
	}
	found := false
	for _, rec := range recs {
		got, err := DecodeRecord(rec)
		if err != nil {
			t.Fatal(err)
		}
		if got.MID == share.MID && bytes.Equal(got.Payload, share.Payload) {
			found = true
		}
	}
	if !found {
		t.Error("submitted share not found in consumed records")
	}
	// Attaching to a topic the remote never created must fail.
	if _, err := Attach("remote-1", 1, cli); err == nil {
		t.Error("Attach to a missing topic succeeded")
	}
	// Close on an attached proxy must not shut the remote broker down.
	p.Close()
	if err := p.Submit(randomShare(t, []byte("after-close"))); err != nil {
		t.Errorf("remote broker closed by attached proxy Close: %v", err)
	}
}

// Regression: a mid-loop constructor failure must close the proxies
// already built instead of leaking their brokers.
func TestFleetBuildFailureClosesBuiltProxies(t *testing.T) {
	var built []*Proxy
	_, err := newFleet(3, func(i int) (*Proxy, error) {
		if i == 2 {
			return nil, fmt.Errorf("injected failure at %d", i)
		}
		p, err := New(fmt.Sprintf("p%d", i), i, 1)
		if err == nil {
			built = append(built, p)
		}
		return p, err
	})
	if err == nil {
		t.Fatal("expected fleet build error")
	}
	if len(built) != 2 {
		t.Fatalf("built %d proxies before the failure", len(built))
	}
	for i, p := range built {
		if err := p.Submit(randomShare(t, []byte("x"))); err == nil {
			t.Errorf("proxy %d still accepts submissions: its broker leaked", i)
		}
	}
}

func TestAttachFleet(t *testing.T) {
	// Two in-process brokers stand in for two remote proxy processes.
	var transports []pubsub.Transport
	for i := 0; i < 2; i++ {
		b := pubsub.NewBroker()
		if err := b.CreateTopic(TopicFor(i), 2); err != nil {
			t.Fatal(err)
		}
		transports = append(transports, b)
	}
	f, err := AttachFleet(transports)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if f.Size() != 2 || f.Proxy(0).Topic() != TopicAnswer || f.Proxy(1).Topic() != TopicKey {
		t.Fatalf("fleet roles wrong: %q %q", f.Proxy(0).Topic(), f.Proxy(1).Topic())
	}
	sh := randomShare(t, []byte("fan"))
	for i := 0; i < 2; i++ {
		if err := f.Proxy(i).Submit(sh); err != nil {
			t.Fatal(err)
		}
	}
	seen := 0
	err = f.Drain("agg", 0, func(idx int, share xorcrypt.Share) error {
		seen++
		return nil
	})
	if err != nil || seen != 2 {
		t.Fatalf("drained %d shares, err %v", seen, err)
	}
	if _, err := AttachFleet(transports[:1]); err == nil {
		t.Error("one-transport fleet accepted")
	}
}
