package proxy

import (
	"bytes"
	"crypto/rand"
	"testing"
	"time"

	"privapprox/internal/pubsub"
	"privapprox/internal/xorcrypt"
)

func randomShare(t *testing.T, payload []byte) xorcrypt.Share {
	t.Helper()
	var mid xorcrypt.MID
	if _, err := rand.Read(mid[:]); err != nil {
		t.Fatal(err)
	}
	return xorcrypt.Share{MID: mid, Payload: payload}
}

func TestNewProxyTopics(t *testing.T) {
	p0, err := New("p0", 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer p0.Close()
	if p0.Topic() != TopicAnswer {
		t.Errorf("proxy 0 topic = %q", p0.Topic())
	}
	p1, err := New("p1", 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer p1.Close()
	if p1.Topic() != TopicKey {
		t.Errorf("proxy 1 topic = %q", p1.Topic())
	}
	if p0.Name() != "p0" {
		t.Errorf("Name = %q", p0.Name())
	}
	if _, err := New("bad", 0, 0); err == nil {
		t.Error("expected error for zero partitions")
	}
}

func TestSubmitConsumeRoundTrip(t *testing.T) {
	p, err := New("p", 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	share := randomShare(t, []byte("payload-bytes"))
	if err := p.Submit(share); err != nil {
		t.Fatal(err)
	}
	c, err := p.Consumer("agg")
	if err != nil {
		t.Fatal(err)
	}
	recs, err := c.PollWait(10, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("polled %d records", len(recs))
	}
	got, err := DecodeRecord(recs[0])
	if err != nil {
		t.Fatal(err)
	}
	if got.MID != share.MID || !bytes.Equal(got.Payload, share.Payload) {
		t.Errorf("decoded = %+v", got)
	}
}

func TestDecodeRecordRejectsBadKey(t *testing.T) {
	if _, err := DecodeRecord(pubsub.Record{Key: []byte("short")}); err == nil {
		t.Error("expected error for malformed key")
	}
}

func TestFleetValidationAndRoles(t *testing.T) {
	if _, err := NewFleet(1, 1); err == nil {
		t.Error("expected error for one-proxy fleet")
	}
	f, err := NewFleet(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if f.Size() != 3 {
		t.Fatalf("Size = %d", f.Size())
	}
	if f.Proxy(0).Topic() != TopicAnswer || f.Proxy(1).Topic() != TopicKey || f.Proxy(2).Topic() != TopicKey {
		t.Error("fleet roles wrong")
	}
	if len(f.Sinks()) != 3 {
		t.Error("Sinks size wrong")
	}
}

func TestFleetDrainDeliversEverything(t *testing.T) {
	f, err := NewFleet(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	const messages = 50
	want := map[string]bool{}
	for i := 0; i < messages; i++ {
		sh := randomShare(t, []byte{byte(i)})
		want[sh.MID.String()] = true
		// Same MID goes to both proxies, as a client would send.
		if err := f.Proxy(0).Submit(sh); err != nil {
			t.Fatal(err)
		}
		if err := f.Proxy(1).Submit(sh); err != nil {
			t.Fatal(err)
		}
	}
	got := map[string]int{}
	err = f.Drain("agg", 10*time.Millisecond, func(idx int, share xorcrypt.Share) error {
		got[share.MID.String()]++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != messages {
		t.Fatalf("drained %d distinct MIDs, want %d", len(got), messages)
	}
	for mid, n := range got {
		if n != 2 {
			t.Errorf("MID %s seen %d times, want 2", mid, n)
		}
	}
}

func TestFleetTotalStats(t *testing.T) {
	f, err := NewFleet(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sh := randomShare(t, []byte("abcd"))
	f.Proxy(0).Submit(sh)
	f.Proxy(1).Submit(sh)
	st := f.TotalStats()
	if st.MessagesIn != 2 {
		t.Errorf("MessagesIn = %d", st.MessagesIn)
	}
	wantBytes := int64(2 * (len(sh.Payload) + xorcrypt.MIDSize))
	if st.BytesIn != wantBytes {
		t.Errorf("BytesIn = %d, want %d", st.BytesIn, wantBytes)
	}
}
