// Package proxy implements PrivApprox's anonymizing proxies (paper
// §3.2.3, §5): thin, synchronization-free forwarders built on the
// pub/sub substrate. Each proxy owns one broker topic; clients submit
// one XOR share per proxy, and the aggregator consumes every proxy's
// stream. A proxy cannot tell an encrypted answer from a key share —
// both are fixed-length pseudo-random payloads keyed by the message
// identifier.
//
// A Proxy runs over any pubsub.Transport: New builds an in-process
// broker (the single-process pipeline), while Attach binds the same
// Proxy type to a broker served elsewhere — typically a pubsub.Client
// dialed at a remote proxy process — so clients and the aggregator use
// identical code in both deployment shapes (paper Fig. 3).
package proxy

import (
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"time"

	"privapprox/internal/pubsub"
	"privapprox/internal/wal"
	"privapprox/internal/xorcrypt"
)

// ErrClosed reports operations on a closed proxy.
var ErrClosed = errors.New("proxy: closed")

// Topic names mirror the paper's two Kafka topics: "answer" carries the
// encrypted answer stream on the first proxy, "key" carries key shares
// on all others. Functionally identical — the names only document
// roles. Every proxy additionally serves the "control" topic, the
// channel signed queries are distributed to clients through (paper
// §3.1: queries reach clients via the proxies); it is single-partition
// so announcements keep a total order.
const (
	TopicAnswer  = "answer"
	TopicKey     = "key"
	TopicControl = "control"
	// TopicLineage is the provenance sidecar: clients publish one
	// compact origin stamp per batch flush, the aggregator folds them
	// into per-window result cards. Single-partition, advisory — the
	// share plane never blocks on it.
	TopicLineage = "lineage"
)

// TopicFor returns the topic a proxy at the given fleet index serves.
func TopicFor(index int) string {
	if index == 0 {
		return TopicAnswer
	}
	return TopicKey
}

// Proxy is one forwarding node.
type Proxy struct {
	name  string
	topic string
	t     pubsub.Transport
	// broker is non-nil only for proxies built by New, which own their
	// in-process broker; attached proxies leave lifecycle and stats to
	// the remote process.
	broker *pubsub.Broker
	// submitTimeout > 0 switches Submit/SubmitBatch to the blocking
	// publish path: on pubsub.ErrPartitionFull the publish retries until
	// the record lands or the deadline passes, instead of failing the
	// client's flush outright. Set before the proxy is shared; not
	// synchronized against concurrent Submit calls.
	submitTimeout time.Duration
	// prod is the idempotent batch front-end: SubmitBatch/SubmitColumns
	// go through a producer session, so a retry after an ambiguous
	// transport failure is deduplicated by the broker instead of
	// double-publishing shares (a duplicated share would XOR the MID
	// join into garbage). retry is the policy SetRetryPolicy installed,
	// kept so SetSubmitTimeout can re-derive the effective policy.
	prod  *pubsub.Producer
	retry pubsub.RetryPolicy
}

// New builds a proxy with its own broker and a single topic. Index 0 is
// conventionally the answer proxy; every other index forwards key
// shares.
func New(name string, index, partitions int) (*Proxy, error) {
	return newWithBroker(name, index, partitions, pubsub.NewBroker())
}

// NewDurable builds a proxy whose broker journals partitions, commits,
// and topic metadata to write-ahead logs under dir — a killed proxy
// restarted on the same directory replays its share streams and its
// control topic, so in-flight epochs and distributed query sets survive
// (the topics already exist after a replay; creation is idempotent
// here).
func NewDurable(name string, index, partitions int, dir string, opts wal.Options) (*Proxy, error) {
	b, err := pubsub.OpenBroker(dir, opts)
	if err != nil {
		return nil, err
	}
	return newWithBroker(name, index, partitions, b)
}

func newWithBroker(name string, index, partitions int, b *pubsub.Broker) (*Proxy, error) {
	if partitions <= 0 {
		b.Close()
		return nil, fmt.Errorf("proxy: %d partitions", partitions)
	}
	topic := TopicFor(index)
	if err := b.CreateTopic(topic, partitions); err != nil && !errors.Is(err, pubsub.ErrTopicExists) {
		b.Close()
		return nil, err
	}
	if err := b.CreateTopic(TopicControl, 1); err != nil && !errors.Is(err, pubsub.ErrTopicExists) {
		b.Close()
		return nil, err
	}
	if err := b.CreateTopic(TopicLineage, 1); err != nil && !errors.Is(err, pubsub.ErrTopicExists) {
		b.Close()
		return nil, err
	}
	p := &Proxy{name: name, topic: topic, t: b, broker: b}
	p.prod = pubsub.NewProducer(b, pubsub.RetryPolicy{})
	return p, nil
}

// Attach binds a proxy handle to an already-running broker reachable
// through t — e.g. a pubsub.Client dialed at a networked proxy process
// that created its topic at startup. The topic must already exist.
func Attach(name string, index int, t pubsub.Transport) (*Proxy, error) {
	if t == nil {
		return nil, fmt.Errorf("proxy: nil transport")
	}
	topic := TopicFor(index)
	if _, err := t.Partitions(topic); err != nil {
		return nil, fmt.Errorf("proxy: attach %s: %w", name, err)
	}
	p := &Proxy{name: name, topic: topic, t: t}
	p.prod = pubsub.NewProducer(t, pubsub.RetryPolicy{})
	return p, nil
}

// AttachLazy is Attach without the topic probe: the handle binds even
// while the remote proxy is unreachable, and a missing topic surfaces
// on first submit instead. Degraded-mode clients use this (paired with
// pubsub.Options.LazyDial) to come up while a proxy is down.
func AttachLazy(name string, index int, t pubsub.Transport) (*Proxy, error) {
	if t == nil {
		return nil, fmt.Errorf("proxy: nil transport")
	}
	p := &Proxy{name: name, topic: TopicFor(index), t: t}
	p.prod = pubsub.NewProducer(t, pubsub.RetryPolicy{})
	return p, nil
}

// Name returns the proxy name.
func (p *Proxy) Name() string { return p.name }

// Topic returns the proxy's stream name.
func (p *Proxy) Topic() string { return p.topic }

// SetSubmitTimeout configures how long Submit and SubmitBatch block
// waiting for space when the proxy's topic is bounded and full. Zero
// (the default) fails fast with pubsub.ErrPartitionFull; the caller —
// typically a client under backpressure — decides whether to shed.
// Configure before serving traffic.
func (p *Proxy) SetSubmitTimeout(d time.Duration) {
	p.submitTimeout = d
	pol := p.retry
	pol.FullWait = d
	p.prod.SetPolicy(pol)
}

// SetRetryPolicy installs the at-least-once retry policy the batched
// submit path (SubmitBatch/SubmitColumns) runs under. Retried batches
// are deduplicated by the broker's producer sessions, so Attempts > 1
// is safe against double-publish; over a transport without session
// support the producer degrades to single attempts. A zero FullWait
// inherits the submit timeout. Configure before serving traffic.
func (p *Proxy) SetRetryPolicy(pol pubsub.RetryPolicy) {
	p.retry = pol
	if pol.FullWait <= 0 {
		pol.FullWait = p.submitTimeout
	}
	p.prod.SetPolicy(pol)
}

// SetCapacity bounds the backlog of every partition of this proxy's
// share topic (see pubsub.Broker.SetTopicCapacity). Only proxies that
// own their broker can be bounded locally; attached proxies return an
// error — bound the remote broker in its own process.
func (p *Proxy) SetCapacity(capacity int) error {
	if p.broker == nil {
		return fmt.Errorf("proxy: %s is attached; set capacity on the remote broker", p.name)
	}
	return p.broker.SetTopicCapacity(p.topic, capacity)
}

// Submit accepts one share from a client: the processing at a
// PrivApprox proxy is exactly one publish — no noise addition, no
// inter-proxy coordination (the property Fig. 6 measures). The payload
// is copied (broker) or serialized (TCP) before Submit returns, per the
// ShareSink ownership contract.
func (p *Proxy) Submit(share xorcrypt.Share) error {
	mid := share.MID
	if p.submitTimeout > 0 {
		if wp, ok := p.t.(pubsub.WaitPublisher); ok {
			_, _, err := wp.PublishWait(p.topic, mid[:], share.Payload, p.submitTimeout)
			return err
		}
	}
	_, _, err := p.t.Publish(p.topic, mid[:], share.Payload)
	return err
}

// batchMsgPool recycles the pubsub.Message header slices SubmitBatch
// builds, so an epoch's batch flush does not allocate a fresh slice per
// (client, proxy) pair.
var batchMsgPool = sync.Pool{New: func() any {
	s := make([]pubsub.Message, 0, 256)
	return &s
}}

// SubmitBatch accepts many shares in one transport call. Over TCP the
// whole batch travels as one frame — one round-trip per (client, proxy)
// per epoch instead of one per share, the batching lever the paper's
// scalability results depend on. The shares (and their payloads) are
// consumed before SubmitBatch returns.
func (p *Proxy) SubmitBatch(shares []xorcrypt.Share) error {
	if len(shares) == 0 {
		return nil
	}
	mp := batchMsgPool.Get().(*[]pubsub.Message)
	msgs := (*mp)[:0]
	for i := range shares {
		// Key the record by the share's own MID array; the transport
		// copies or serializes it before PublishBatch returns.
		msgs = append(msgs, pubsub.Message{Key: shares[i].MID[:], Value: shares[i].Payload})
	}
	// The producer session makes the batch idempotent: under the retry
	// policy an ambiguous transport failure is retried, and the broker
	// dedups any slice that already landed.
	err := p.prod.PublishBatch(p.topic, msgs)
	for i := range msgs {
		msgs[i] = pubsub.Message{}
	}
	*mp = msgs
	batchMsgPool.Put(mp)
	return err
}

// SubmitColumns accepts a columnar batch of count shares: a contiguous
// MID lane (count × xorcrypt.MIDSize bytes) and a contiguous payload
// lane at a fixed size-byte stride — one segment of a client's arena
// batcher, one wire-v2 frame over TCP. Transports that implement
// pubsub.ColumnPublisher carry the lanes without per-share re-slicing;
// for any other transport the lanes are materialized into pooled
// per-share messages, so every transport keeps working. Both lanes are
// fully consumed before SubmitColumns returns (DESIGN.md §6, §10).
func (p *Proxy) SubmitColumns(mids, payloads []byte, count, size int) error {
	if count == 0 {
		return nil
	}
	// The producer owns the columnar-vs-row decision: session transports
	// get tagged columnar frames, plain ColumnPublishers the wire-v2
	// path, and row-only transports a materialized batch.
	return p.prod.PublishColumns(p.topic, pubsub.Columns{
		Count:  count,
		KeyLen: xorcrypt.MIDSize,
		ValLen: size,
		Keys:   mids,
		Vals:   payloads,
	})
}

// Consumer returns an aggregator-side consumer over this proxy's stream.
func (p *Proxy) Consumer(group string) (*pubsub.Consumer, error) {
	if p.broker != nil {
		return pubsub.NewConsumer(p.broker, group, p.topic)
	}
	return pubsub.NewTransportConsumer(p.t, group, p.topic)
}

// Announce publishes one control-plane payload (a serialized query-set
// announcement) to this proxy's control topic. The proxy forwards the
// opaque bytes like any other record; clients verify the analyst
// signatures themselves, so a proxy cannot tamper with an announced
// query undetected (forgery under a fresh key is only ruled out when
// clients pin analyst keys — see engine.Applier.Trust).
func (p *Proxy) Announce(payload []byte) error {
	_, _, err := p.t.Publish(TopicControl, nil, payload)
	return err
}

// ControlConsumer returns a consumer over this proxy's control topic —
// the client-side end of query distribution.
func (p *Proxy) ControlConsumer(group string) (*pubsub.Consumer, error) {
	if p.broker != nil {
		return pubsub.NewConsumer(p.broker, group, TopicControl)
	}
	return pubsub.NewTransportConsumer(p.t, group, TopicControl)
}

// SupportsLineage reports whether this proxy's transport hosts the
// provenance sidecar topic. Owned brokers always do; remote transports
// answer from their negotiated feature mask (one cached opFeatures
// probe), and transports predating the capability report false.
func (p *Proxy) SupportsLineage() bool {
	lp, ok := p.t.(interface{ SupportsLineage() bool })
	return ok && lp.SupportsLineage()
}

// SubmitStamp publishes one encoded batch origin stamp to the lineage
// sidecar. Stamps are advisory observability data: against a peer or
// transport without provenance support — a v1 broker, a wrapped
// transport that hides the capability, a broker without the topic —
// the stamp is silently dropped and the share plane is unaffected.
func (p *Proxy) SubmitStamp(payload []byte) error {
	if !p.SupportsLineage() {
		return nil
	}
	_, _, err := p.t.Publish(TopicLineage, nil, payload)
	if errors.Is(err, pubsub.ErrNoTopic) {
		return nil
	}
	return err
}

// LineageConsumer returns an aggregator-side consumer over this
// proxy's lineage sidecar topic, or nil (no error) when the transport
// has no provenance support — the caller just has no stamps to drain.
func (p *Proxy) LineageConsumer(group string) (*pubsub.Consumer, error) {
	if !p.SupportsLineage() {
		return nil, nil
	}
	if p.broker != nil {
		return pubsub.NewConsumer(p.broker, group, TopicLineage)
	}
	return pubsub.NewTransportConsumer(p.t, group, TopicLineage)
}

// Stats exposes the underlying broker's traffic counters. Attached
// (remote) proxies report zero — the counters live in the remote
// process.
func (p *Proxy) Stats() pubsub.Stats {
	if p.broker == nil {
		return pubsub.Stats{}
	}
	return p.broker.Stats()
}

// Broker returns the proxy's in-process broker, nil for attached
// (remote) proxies — the telemetry plane uses it to hook publish
// latency histograms and backlog gauges onto owned brokers.
func (p *Proxy) Broker() *pubsub.Broker { return p.broker }

// Close shuts the underlying broker down when this proxy owns it; for
// attached proxies the remote process owns the lifecycle and Close is a
// no-op.
func (p *Proxy) Close() {
	if p.broker != nil {
		p.broker.Close()
	}
}

// DecodeRecord converts a consumed pub/sub record back into the share a
// client submitted.
func DecodeRecord(rec pubsub.Record) (xorcrypt.Share, error) {
	if len(rec.Key) != xorcrypt.MIDSize {
		return xorcrypt.Share{}, fmt.Errorf("proxy: record key has %d bytes, want %d", len(rec.Key), xorcrypt.MIDSize)
	}
	var mid xorcrypt.MID
	copy(mid[:], rec.Key)
	return xorcrypt.Share{MID: mid, Payload: rec.Value}, nil
}

// Fleet is the set of n ≥ 2 proxies a deployment runs. The threat model
// (paper §2.2) requires at least two non-colluding proxies.
type Fleet struct {
	proxies []*Proxy
}

// NewFleet builds n in-process proxies with the given partition count
// each.
func NewFleet(n, partitions int) (*Fleet, error) {
	return newFleet(n, func(i int) (*Proxy, error) {
		return New(fmt.Sprintf("proxy-%d", i), i, partitions)
	})
}

// NewDurableFleet builds n in-process proxies whose brokers journal to
// WALs under dir (one subdirectory per proxy); reopening the same dir
// replays every proxy's topics.
func NewDurableFleet(n, partitions int, dir string, opts wal.Options) (*Fleet, error) {
	return newFleet(n, func(i int) (*Proxy, error) {
		return NewDurable(fmt.Sprintf("proxy-%d", i), i, partitions,
			filepath.Join(dir, fmt.Sprintf("proxy-%d", i)), opts)
	})
}

// AttachFleet binds a fleet handle to one remote proxy per transport,
// transport i serving the index-i topic.
func AttachFleet(transports []pubsub.Transport) (*Fleet, error) {
	return newFleet(len(transports), func(i int) (*Proxy, error) {
		return Attach(fmt.Sprintf("proxy-%d", i), i, transports[i])
	})
}

// AttachFleetLazy is AttachFleet via AttachLazy: no startup probes, so
// the fleet binds while some proxies are still unreachable.
func AttachFleetLazy(transports []pubsub.Transport) (*Fleet, error) {
	return newFleet(len(transports), func(i int) (*Proxy, error) {
		return AttachLazy(fmt.Sprintf("proxy-%d", i), i, transports[i])
	})
}

// newFleet assembles n proxies from build, closing any already-built
// proxies when a later one fails so no broker leaks.
func newFleet(n int, build func(i int) (*Proxy, error)) (*Fleet, error) {
	if n < 2 {
		return nil, fmt.Errorf("proxy: fleet needs ≥ 2 proxies, got %d", n)
	}
	f := &Fleet{}
	for i := 0; i < n; i++ {
		p, err := build(i)
		if err != nil {
			f.Close()
			return nil, err
		}
		f.proxies = append(f.proxies, p)
	}
	return f, nil
}

// Size returns the number of proxies.
func (f *Fleet) Size() int { return len(f.proxies) }

// Proxy returns proxy i.
func (f *Fleet) Proxy(i int) *Proxy { return f.proxies[i] }

// Sinks adapts the fleet to the client's ShareSink slice (share i goes
// to proxy i).
func (f *Fleet) Sinks() []ShareSink {
	out := make([]ShareSink, len(f.proxies))
	for i, p := range f.proxies {
		out[i] = p
	}
	return out
}

// ShareSink mirrors client.ShareSink without importing it (both packages
// stay independent; the core package wires them).
type ShareSink interface {
	Submit(share xorcrypt.Share) error
}

// Consumers returns one aggregator consumer per proxy.
func (f *Fleet) Consumers(group string) ([]*pubsub.Consumer, error) {
	out := make([]*pubsub.Consumer, len(f.proxies))
	for i, p := range f.proxies {
		c, err := p.Consumer(group)
		if err != nil {
			return nil, err
		}
		out[i] = c
	}
	return out, nil
}

// LineageConsumers returns one lineage consumer per proxy that
// supports the provenance plane; proxies without it are skipped, so
// the slice may be shorter than the fleet (empty against an all-v1
// fleet — the aggregator then simply sees no stamps).
func (f *Fleet) LineageConsumers(group string) ([]*pubsub.Consumer, error) {
	var out []*pubsub.Consumer
	for _, p := range f.proxies {
		c, err := p.LineageConsumer(group)
		if err != nil {
			return nil, err
		}
		if c != nil {
			out = append(out, c)
		}
	}
	return out, nil
}

// Announce publishes one control payload to every proxy's control
// topic, so a client following any single proxy sees the full
// announcement stream (clients need not trust any one proxy to be
// honest about the query set — signatures travel with the queries).
func (f *Fleet) Announce(payload []byte) error {
	for _, p := range f.proxies {
		if err := p.Announce(payload); err != nil {
			return fmt.Errorf("proxy: announce via %s: %w", p.Name(), err)
		}
	}
	return nil
}

// SetCapacity bounds every owned proxy's share-topic backlog (attached
// proxies are skipped — their brokers live elsewhere).
func (f *Fleet) SetCapacity(capacity int) error {
	for _, p := range f.proxies {
		if p.broker == nil {
			continue
		}
		if err := p.SetCapacity(capacity); err != nil {
			return err
		}
	}
	return nil
}

// SetSubmitTimeout sets the blocking-publish deadline on every proxy.
func (f *Fleet) SetSubmitTimeout(d time.Duration) {
	for _, p := range f.proxies {
		p.SetSubmitTimeout(d)
	}
}

// SetRetryPolicy installs one at-least-once retry policy on every
// proxy's batched submit path.
func (f *Fleet) SetRetryPolicy(pol pubsub.RetryPolicy) {
	for _, p := range f.proxies {
		p.SetRetryPolicy(pol)
	}
}

// TotalStats sums traffic over the fleet. MaxBacklog is the fleet-wide
// maximum, not a sum — it answers "how far behind is the worst
// partition anywhere".
func (f *Fleet) TotalStats() pubsub.Stats {
	var total pubsub.Stats
	for _, p := range f.proxies {
		s := p.Stats()
		total.MessagesIn += s.MessagesIn
		total.BytesIn += s.BytesIn
		total.MessagesOut += s.MessagesOut
		total.BytesOut += s.BytesOut
		total.Rejected += s.Rejected
		total.Duplicates += s.Duplicates
		total.TotalBacklog += s.TotalBacklog
		if s.MaxBacklog > total.MaxBacklog {
			total.MaxBacklog = s.MaxBacklog
		}
	}
	return total
}

// Close shuts every proxy down.
func (f *Fleet) Close() {
	for _, p := range f.proxies {
		p.Close()
	}
}

// Drain polls every proxy until no records arrive for the settle
// duration, forwarding each decoded share to fn. It is the synchronous
// helper the in-process experiments use.
func (f *Fleet) Drain(group string, settle time.Duration, fn func(proxyIndex int, share xorcrypt.Share) error) error {
	consumers, err := f.Consumers(group)
	if err != nil {
		return err
	}
	for {
		any := false
		for i, c := range consumers {
			recs, err := c.Poll(4096)
			if err != nil {
				return err
			}
			for _, rec := range recs {
				share, err := DecodeRecord(rec)
				if err != nil {
					return err
				}
				if err := fn(i, share); err != nil {
					return err
				}
			}
			if len(recs) > 0 {
				any = true
			}
		}
		if !any {
			if settle <= 0 {
				return nil
			}
			time.Sleep(settle)
			more := false
			for _, c := range consumers {
				lag, err := c.Lag()
				if err != nil {
					return err
				}
				if lag > 0 {
					more = true
					break
				}
			}
			if !more {
				return nil
			}
		}
	}
}
