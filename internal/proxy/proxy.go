// Package proxy implements PrivApprox's anonymizing proxies (paper
// §3.2.3, §5): thin, synchronization-free forwarders built on the
// pub/sub substrate. Each proxy owns one broker topic; clients submit
// one XOR share per proxy, and the aggregator consumes every proxy's
// stream. A proxy cannot tell an encrypted answer from a key share —
// both are fixed-length pseudo-random payloads keyed by the message
// identifier.
package proxy

import (
	"errors"
	"fmt"
	"time"

	"privapprox/internal/pubsub"
	"privapprox/internal/xorcrypt"
)

// ErrClosed reports operations on a closed proxy.
var ErrClosed = errors.New("proxy: closed")

// Topic names mirror the paper's two Kafka topics: "answer" carries the
// encrypted answer stream on the first proxy, "key" carries key shares
// on all others. Functionally identical — the names only document roles.
const (
	TopicAnswer = "answer"
	TopicKey    = "key"
)

// Proxy is one forwarding node.
type Proxy struct {
	name   string
	topic  string
	broker *pubsub.Broker
}

// New builds a proxy with its own broker and a single topic. Index 0 is
// conventionally the answer proxy; every other index forwards key
// shares.
func New(name string, index, partitions int) (*Proxy, error) {
	if partitions <= 0 {
		return nil, fmt.Errorf("proxy: %d partitions", partitions)
	}
	topic := TopicKey
	if index == 0 {
		topic = TopicAnswer
	}
	b := pubsub.NewBroker()
	if err := b.CreateTopic(topic, partitions); err != nil {
		return nil, err
	}
	return &Proxy{name: name, topic: topic, broker: b}, nil
}

// Name returns the proxy name.
func (p *Proxy) Name() string { return p.name }

// Topic returns the proxy's stream name.
func (p *Proxy) Topic() string { return p.topic }

// Submit accepts one share from a client: the processing at a
// PrivApprox proxy is exactly one publish — no noise addition, no
// inter-proxy coordination (the property Fig. 6 measures).
func (p *Proxy) Submit(share xorcrypt.Share) error {
	mid := share.MID
	_, _, err := p.broker.Publish(p.topic, mid[:], share.Payload)
	return err
}

// Consumer returns an aggregator-side consumer over this proxy's stream.
func (p *Proxy) Consumer(group string) (*pubsub.Consumer, error) {
	return pubsub.NewConsumer(p.broker, group, p.topic)
}

// Stats exposes the underlying broker's traffic counters.
func (p *Proxy) Stats() pubsub.Stats { return p.broker.Stats() }

// Close shuts the underlying broker down.
func (p *Proxy) Close() { p.broker.Close() }

// DecodeRecord converts a consumed pub/sub record back into the share a
// client submitted.
func DecodeRecord(rec pubsub.Record) (xorcrypt.Share, error) {
	if len(rec.Key) != xorcrypt.MIDSize {
		return xorcrypt.Share{}, fmt.Errorf("proxy: record key has %d bytes, want %d", len(rec.Key), xorcrypt.MIDSize)
	}
	var mid xorcrypt.MID
	copy(mid[:], rec.Key)
	return xorcrypt.Share{MID: mid, Payload: rec.Value}, nil
}

// Fleet is the set of n ≥ 2 proxies a deployment runs. The threat model
// (paper §2.2) requires at least two non-colluding proxies.
type Fleet struct {
	proxies []*Proxy
}

// NewFleet builds n proxies with the given partition count each.
func NewFleet(n, partitions int) (*Fleet, error) {
	if n < 2 {
		return nil, fmt.Errorf("proxy: fleet needs ≥ 2 proxies, got %d", n)
	}
	f := &Fleet{}
	for i := 0; i < n; i++ {
		p, err := New(fmt.Sprintf("proxy-%d", i), i, partitions)
		if err != nil {
			return nil, err
		}
		f.proxies = append(f.proxies, p)
	}
	return f, nil
}

// Size returns the number of proxies.
func (f *Fleet) Size() int { return len(f.proxies) }

// Proxy returns proxy i.
func (f *Fleet) Proxy(i int) *Proxy { return f.proxies[i] }

// Sinks adapts the fleet to the client's ShareSink slice (share i goes
// to proxy i).
func (f *Fleet) Sinks() []ShareSink {
	out := make([]ShareSink, len(f.proxies))
	for i, p := range f.proxies {
		out[i] = p
	}
	return out
}

// ShareSink mirrors client.ShareSink without importing it (both packages
// stay independent; the core package wires them).
type ShareSink interface {
	Submit(share xorcrypt.Share) error
}

// Consumers returns one aggregator consumer per proxy.
func (f *Fleet) Consumers(group string) ([]*pubsub.Consumer, error) {
	out := make([]*pubsub.Consumer, len(f.proxies))
	for i, p := range f.proxies {
		c, err := p.Consumer(group)
		if err != nil {
			return nil, err
		}
		out[i] = c
	}
	return out, nil
}

// TotalStats sums traffic over the fleet.
func (f *Fleet) TotalStats() pubsub.Stats {
	var total pubsub.Stats
	for _, p := range f.proxies {
		s := p.Stats()
		total.MessagesIn += s.MessagesIn
		total.BytesIn += s.BytesIn
		total.MessagesOut += s.MessagesOut
		total.BytesOut += s.BytesOut
	}
	return total
}

// Close shuts every proxy down.
func (f *Fleet) Close() {
	for _, p := range f.proxies {
		p.Close()
	}
}

// Drain polls every proxy until no records arrive for the settle
// duration, forwarding each decoded share to fn. It is the synchronous
// helper the in-process experiments use.
func (f *Fleet) Drain(group string, settle time.Duration, fn func(proxyIndex int, share xorcrypt.Share) error) error {
	consumers, err := f.Consumers(group)
	if err != nil {
		return err
	}
	for {
		any := false
		for i, c := range consumers {
			recs, err := c.Poll(4096)
			if err != nil {
				return err
			}
			for _, rec := range recs {
				share, err := DecodeRecord(rec)
				if err != nil {
					return err
				}
				if err := fn(i, share); err != nil {
					return err
				}
			}
			if len(recs) > 0 {
				any = true
			}
		}
		if !any {
			if settle <= 0 {
				return nil
			}
			time.Sleep(settle)
			more := false
			for _, c := range consumers {
				lag, err := c.Lag()
				if err != nil {
					return err
				}
				if lag > 0 {
					more = true
					break
				}
			}
			if !more {
				return nil
			}
		}
	}
}
