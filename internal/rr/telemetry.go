package rr

import (
	"privapprox/internal/telemetry"
)

// Package-level kernel counters for the randomized-response plane:
// answer vectors randomized, counted per call on the epoch-granular
// client path (RespondBits) and per batch on the vectorized path
// (RespondBitsBatch) — never per bit. A process registers them with
// telemetry.Registry.RegisterSource(telemetry.SourceFunc(Metrics)).
var respondedVectors telemetry.Counter

// Metrics appends the package's kernel counters as telemetry samples.
func Metrics(dst []telemetry.Sample) []telemetry.Sample {
	return append(dst, telemetry.Sample{
		Name:  "privapprox_rr_responded_vectors_total",
		Value: float64(respondedVectors.Load()),
		Kind:  telemetry.KindCounter,
	})
}
