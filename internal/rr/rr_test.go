package rr

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestParamsValidate(t *testing.T) {
	valid := []Params{{P: 0.3, Q: 0.6}, {P: 1, Q: 0}, {P: 0.01, Q: 1}}
	for _, p := range valid {
		if err := p.Validate(); err != nil {
			t.Errorf("Validate(%+v) = %v, want nil", p, err)
		}
	}
	invalid := []Params{{P: 0, Q: 0.5}, {P: -0.1, Q: 0.5}, {P: 1.1, Q: 0.5},
		{P: 0.5, Q: -0.1}, {P: 0.5, Q: 1.1}, {P: math.NaN(), Q: 0.5}}
	for _, p := range invalid {
		if err := p.Validate(); err == nil {
			t.Errorf("Validate(%+v) = nil, want error", p)
		}
	}
}

func TestInvertParams(t *testing.T) {
	p := Params{P: 0.7, Q: 0.9}
	inv := p.Invert()
	if inv.P != 0.7 || math.Abs(inv.Q-0.1) > 1e-15 {
		t.Errorf("Invert = %+v", inv)
	}
}

func TestRespondDeterministicCases(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	// p=1: always truthful.
	rz, err := NewRandomizer(Params{P: 1, Q: 0.5}, rng)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if rz.Respond(true) != true || rz.Respond(false) != false {
			t.Fatal("p=1 must echo the truth")
		}
	}
}

func TestResponseYesProbabilityMatchesEmpirical(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	params := Params{P: 0.3, Q: 0.6}
	rz, err := NewRandomizer(params, rng)
	if err != nil {
		t.Fatal(err)
	}
	const trials = 300000
	var yesTrue, yesFalse int
	for i := 0; i < trials; i++ {
		if rz.Respond(true) {
			yesTrue++
		}
		if rz.Respond(false) {
			yesFalse++
		}
	}
	gotTrue := float64(yesTrue) / trials
	gotFalse := float64(yesFalse) / trials
	if math.Abs(gotTrue-ResponseYesProbability(params, true)) > 0.005 {
		t.Errorf("Pr[Yes|true] = %v, want %v", gotTrue, ResponseYesProbability(params, true))
	}
	if math.Abs(gotFalse-ResponseYesProbability(params, false)) > 0.005 {
		t.Errorf("Pr[Yes|false] = %v, want %v", gotFalse, ResponseYesProbability(params, false))
	}
}

func TestEstimateYesUnbiased(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	params := Params{P: 0.6, Q: 0.6}
	rz, err := NewRandomizer(params, rng)
	if err != nil {
		t.Fatal(err)
	}
	const n = 10000
	const actualYes = 6000
	const rounds = 50
	var sum float64
	for r := 0; r < rounds; r++ {
		observed := 0
		for i := 0; i < n; i++ {
			if rz.Respond(i < actualYes) {
				observed++
			}
		}
		est, err := EstimateYes(params, observed, n)
		if err != nil {
			t.Fatal(err)
		}
		sum += est
	}
	mean := sum / rounds
	if math.Abs(mean-actualYes)/actualYes > 0.01 {
		t.Errorf("mean estimate = %v, want ≈%v", mean, actualYes)
	}
}

func TestEstimateYesExactInversion(t *testing.T) {
	// With the analytic response probability the estimator recovers the
	// exact truthful count.
	params := Params{P: 0.3, Q: 0.9}
	n := 10000
	actualYes := 2500
	expectedObserved := float64(actualYes)*ResponseYesProbability(params, true) +
		float64(n-actualYes)*ResponseYesProbability(params, false)
	est, err := EstimateYes(params, int(math.Round(expectedObserved)), n)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est-float64(actualYes)) > 2 {
		t.Errorf("estimate = %v, want ≈%v", est, actualYes)
	}
}

func TestEstimateYesValidation(t *testing.T) {
	params := Params{P: 0.5, Q: 0.5}
	if _, err := EstimateYes(params, 1, 0); err == nil {
		t.Error("expected error for n = 0")
	}
	if _, err := EstimateYes(params, 5, 3); err == nil {
		t.Error("expected error for Ry > n")
	}
	if _, err := EstimateYes(Params{P: 0, Q: 0.5}, 1, 2); err == nil {
		t.Error("expected error for invalid params")
	}
}

func TestEstimateNoComplementsEstimateYes(t *testing.T) {
	// En ≡ n − Ey, and equals the direct inverted-mechanism estimator
	// (Rn − (1−p)(1−q)n)/p.
	f := func(pRaw, qRaw, obsRaw uint8) bool {
		params := Params{
			P: 0.05 + 0.9*float64(pRaw)/255,
			Q: 0.05 + 0.9*float64(qRaw)/255,
		}
		n := 10000
		obs := int(float64(n) * float64(obsRaw) / 255)
		en, err1 := EstimateNo(params, obs, n)
		ey, err2 := EstimateYes(params, obs, n)
		if err1 != nil || err2 != nil {
			return false
		}
		direct := (float64(n-obs) - (1-params.P)*(1-params.Q)*float64(n)) / params.P
		return math.Abs(en-(float64(n)-ey)) < 1e-6 && math.Abs(en-direct) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// The Fig. 5a effect: at a low truthful-"Yes" fraction the inverted
// query's relative loss is far below the native query's for the same
// absolute estimation error.
func TestInversionReducesRelativeLoss(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	params := Params{P: 0.9, Q: 0.6}
	rz, err := NewRandomizer(params, rng)
	if err != nil {
		t.Fatal(err)
	}
	const n = 10000
	actualYes := 1000 // 10% "Yes" fraction, far from q = 0.6
	var lossNative, lossInverse float64
	const rounds = 30
	for r := 0; r < rounds; r++ {
		obs := 0
		for i := 0; i < n; i++ {
			if rz.Respond(i < actualYes) {
				obs++
			}
		}
		ey, err := EstimateYes(params, obs, n)
		if err != nil {
			t.Fatal(err)
		}
		en, err := EstimateNo(params, obs, n)
		if err != nil {
			t.Fatal(err)
		}
		ln, err := AccuracyLoss(float64(actualYes), ey)
		if err != nil {
			t.Fatal(err)
		}
		li, err := AccuracyLoss(float64(n-actualYes), en)
		if err != nil {
			t.Fatal(err)
		}
		lossNative += ln / rounds
		lossInverse += li / rounds
	}
	if lossInverse >= lossNative {
		t.Errorf("inverse loss %v not below native loss %v", lossInverse, lossNative)
	}
}

func TestAccuracyLoss(t *testing.T) {
	loss, err := AccuracyLoss(100, 110)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(loss-0.1) > 1e-12 {
		t.Errorf("loss = %v, want 0.1", loss)
	}
	if _, err := AccuracyLoss(0, 5); err == nil {
		t.Error("expected error for zero actual")
	}
}

// Paper Table 1 privacy levels: the table reports the zero-knowledge ε
// (technical report Eq. 19) at the experiment's sampling fraction s=0.6.
// All nine printed values must match to their 4 decimals.
func TestEpsilonZKMatchesPaperTable1(t *testing.T) {
	cases := []struct {
		p, q, want float64
	}{
		{0.3, 0.3, 1.7047},
		{0.3, 0.6, 1.3862},
		{0.3, 0.9, 1.2527},
		{0.6, 0.3, 2.5649},
		{0.6, 0.6, 2.0476},
		{0.6, 0.9, 1.7917},
		{0.9, 0.3, 4.1820},
		{0.9, 0.6, 3.5263},
		{0.9, 0.9, 3.1570},
	}
	for _, c := range cases {
		got, err := EpsilonZK(0.6, Params{P: c.p, Q: c.q})
		if err != nil {
			t.Fatalf("EpsilonZK(0.6, %v, %v): %v", c.p, c.q, err)
		}
		if math.Abs(got-c.want) > 1e-4 {
			t.Errorf("EpsilonZK(0.6, %v, %v) = %v, want %v", c.p, c.q, got, c.want)
		}
	}
}

func TestEpsilonDPKnownValues(t *testing.T) {
	// Direct checks of Eq. 8.
	cases := []struct {
		p, q, want float64
	}{
		{0.3, 0.6, math.Log(0.72 / 0.42)},
		{0.9, 0.6, math.Log(16)},
		{0.5, 0.5, math.Log(3)},
	}
	for _, c := range cases {
		got, err := EpsilonDP(Params{P: c.p, Q: c.q})
		if err != nil {
			t.Fatalf("EpsilonDP(%v, %v): %v", c.p, c.q, err)
		}
		if math.Abs(got-c.want) > 1e-12 {
			t.Errorf("EpsilonDP(%v, %v) = %v, want %v", c.p, c.q, got, c.want)
		}
	}
}

func TestEpsilonDPDegenerate(t *testing.T) {
	got, err := EpsilonDP(Params{P: 1, Q: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(got, 1) {
		t.Errorf("EpsilonDP(p=1) = %v, want +Inf", got)
	}
	got, err = EpsilonDP(Params{P: 0.5, Q: 0})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(got, 1) {
		t.Errorf("EpsilonDP(q=0) = %v, want +Inf", got)
	}
}

func TestEpsilonZKProperties(t *testing.T) {
	params := Params{P: 0.5, Q: 0.5}
	// Monotone increasing in s, diverging at s=1.
	prev := 0.0
	for _, s := range []float64{0.1, 0.2, 0.4, 0.6, 0.8, 0.9} {
		ezk, err := EpsilonZK(s, params)
		if err != nil {
			t.Fatal(err)
		}
		if ezk <= prev {
			t.Errorf("EpsilonZK not increasing at s=%v: %v <= %v", s, ezk, prev)
		}
		prev = ezk
	}
	ezk1, err := EpsilonZK(1, params)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(ezk1, 1) {
		t.Errorf("EpsilonZK(1) = %v, want +Inf (ZK needs sampling)", ezk1)
	}
}

func TestEpsilonZKValidation(t *testing.T) {
	if _, err := EpsilonZK(0, Params{P: 0.5, Q: 0.5}); err == nil {
		t.Error("expected error for s = 0")
	}
	if _, err := EpsilonZK(1.2, Params{P: 0.5, Q: 0.5}); err == nil {
		t.Error("expected error for s > 1")
	}
}

func TestEpsilonDPSampledProperties(t *testing.T) {
	params := Params{P: 0.5, Q: 0.5}
	edp, err := EpsilonDP(params)
	if err != nil {
		t.Fatal(err)
	}
	// At s=1 the amplified bound equals ε_dp (Fig. 5c's meeting point).
	e1, err := EpsilonDPSampled(1, params)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(e1-edp) > 1e-12 {
		t.Errorf("EpsilonDPSampled(1) = %v, want ε_dp = %v", e1, edp)
	}
	// Monotone increasing in s and strictly below ε_dp for s < 1.
	prev := 0.0
	for _, s := range []float64{0.1, 0.4, 0.6, 0.9} {
		e, err := EpsilonDPSampled(s, params)
		if err != nil {
			t.Fatal(err)
		}
		if e <= prev || e >= edp {
			t.Errorf("EpsilonDPSampled(%v) = %v out of order (prev %v, ε_dp %v)", s, e, prev, edp)
		}
		prev = e
	}
	if _, err := EpsilonDPSampled(0, params); err == nil {
		t.Error("expected error for s = 0")
	}
}

func TestSamplingForEpsilonZKRoundTrip(t *testing.T) {
	f := func(sRaw, pRaw, qRaw uint8) bool {
		s := 0.05 + 0.9*float64(sRaw)/255
		params := Params{
			P: 0.05 + 0.9*float64(pRaw)/255,
			Q: 0.05 + 0.9*float64(qRaw)/255,
		}
		ezk, err := EpsilonZK(s, params)
		if err != nil {
			return false
		}
		got, err := SamplingForEpsilonZK(ezk, params)
		if err != nil {
			return false
		}
		return math.Abs(got-s) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSamplingForEpsilonZKValidation(t *testing.T) {
	if _, err := SamplingForEpsilonZK(-1, Params{P: 0.5, Q: 0.5}); err == nil {
		t.Error("expected error for negative target")
	}
	if _, err := SamplingForEpsilonZK(1, Params{P: 1, Q: 0.5}); err == nil {
		t.Error("expected error for infinite ε_dp")
	}
}

func TestParamsForEpsilonRoundTrip(t *testing.T) {
	f := func(epsRaw, qRaw uint8) bool {
		eps := 0.1 + 5*float64(epsRaw)/255
		q := 0.05 + 0.9*float64(qRaw)/255
		params, err := ParamsForEpsilon(eps, q)
		if err != nil {
			return false
		}
		got, err := EpsilonDP(params)
		if err != nil {
			return false
		}
		return math.Abs(got-eps) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParamsForEpsilonValidation(t *testing.T) {
	if _, err := ParamsForEpsilon(-1, 0.5); err == nil {
		t.Error("expected error for negative eps")
	}
	if _, err := ParamsForEpsilon(1, 0); err == nil {
		t.Error("expected error for q = 0")
	}
}

func TestRespondBits(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	rz, err := NewRandomizer(Params{P: 1, Q: 0.5}, rng)
	if err != nil {
		t.Fatal(err)
	}
	bits := []byte{0b10110010, 0b00000001}
	orig := append([]byte(nil), bits...)
	rz.RespondBits(bits, 9)
	// p=1 keeps every bit.
	for i := range bits {
		if bits[i] != orig[i] {
			t.Fatalf("p=1 changed bits: %08b -> %08b", orig[i], bits[i])
		}
	}
	// p→0, q=1 forces all answered bits to 1.
	rz2, err := NewRandomizer(Params{P: 1e-12, Q: 1}, rng)
	if err != nil {
		t.Fatal(err)
	}
	zero := make([]byte, 2)
	rz2.RespondBits(zero, 9)
	if zero[0] != 0xFF || zero[1] != 0x01 {
		t.Errorf("forced-yes bits = %08b %08b", zero[0], zero[1])
	}
	// Bits beyond nbits must stay untouched.
	if zero[1]&0xFE != 0 {
		t.Error("bits beyond nbits were modified")
	}
}

func TestSimulateAccuracyLossSmallForHighP(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	lossHigh, err := SimulateAccuracyLoss(Params{P: 0.9, Q: 0.6}, 0.6, 10000, 20, rng)
	if err != nil {
		t.Fatal(err)
	}
	lossLow, err := SimulateAccuracyLoss(Params{P: 0.3, Q: 0.6}, 0.6, 10000, 20, rng)
	if err != nil {
		t.Fatal(err)
	}
	if lossHigh >= lossLow {
		t.Errorf("loss(p=0.9)=%v should beat loss(p=0.3)=%v", lossHigh, lossLow)
	}
	if lossHigh > 0.05 {
		t.Errorf("loss(p=0.9)=%v unexpectedly large", lossHigh)
	}
}

func TestSimulateAccuracyLossValidation(t *testing.T) {
	if _, err := SimulateAccuracyLoss(Params{P: 0.5, Q: 0.5}, -0.1, 100, 1, nil); err == nil {
		t.Error("expected error for bad fraction")
	}
	if _, err := SimulateAccuracyLoss(Params{P: 0.5, Q: 0.5}, 0.5, 0, 1, nil); err == nil {
		t.Error("expected error for n = 0")
	}
	if _, err := SimulateAccuracyLoss(Params{P: 0.5, Q: 0.5}, 0, 100, 1, nil); err == nil {
		t.Error("expected error for zero yes answers")
	}
}
