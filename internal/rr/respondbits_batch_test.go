package rr

import (
	"bytes"
	"math/rand"
	"testing"
)

// TestRespondBitsBatchMatchesSequential pins the batch kernel's stream
// contract: RespondBitsBatch consumes PRNG words in vector-major order,
// exactly as count sequential RespondBits calls, so two identically
// seeded randomizers produce byte-identical lanes — including
// non-byte-aligned widths, strides with slack, and the preserved bits
// past nbits in the final partial byte.
func TestRespondBitsBatchMatchesSequential(t *testing.T) {
	for _, nbits := range []int{1, 8, 11, 63} {
		for _, pad := range []int{0, 5} {
			nbytes := (nbits + 7) / 8
			stride := nbytes + pad
			const count = 9
			src := rand.New(rand.NewSource(77))
			laneBatch := make([]byte, count*stride)
			src.Read(laneBatch)
			// Zero each slot's bits past nbits (the caller invariant), but
			// leave the inter-slot padding bytes as garbage: the kernel must
			// not touch them.
			for s := 0; s < count; s++ {
				slot := laneBatch[s*stride : s*stride+nbytes]
				if rem := nbits % 8; rem != 0 {
					slot[nbytes-1] &= byte(1)<<rem - 1
				}
			}
			laneSeq := append([]byte(nil), laneBatch...)

			rzBatch, err := NewRandomizer(Params{P: 0.4, Q: 0.7}, rand.New(rand.NewSource(13)))
			if err != nil {
				t.Fatal(err)
			}
			rzSeq, err := NewRandomizer(Params{P: 0.4, Q: 0.7}, rand.New(rand.NewSource(13)))
			if err != nil {
				t.Fatal(err)
			}
			rzBatch.RespondBitsBatch(laneBatch, stride, nbits, count)
			for s := 0; s < count; s++ {
				rzSeq.RespondBits(laneSeq[s*stride:s*stride+nbytes], nbits)
			}
			if !bytes.Equal(laneBatch, laneSeq) {
				t.Fatalf("nbits=%d stride=%d: batch lane diverges from sequential", nbits, stride)
			}
		}
	}
}

// TestRespondBitsBatchEdges: empty and degenerate batches are no-ops
// that leave the PRNG stream untouched, and a single-slot batch equals
// one RespondBits call.
func TestRespondBitsBatchEdges(t *testing.T) {
	newRZ := func() *Randomizer {
		rz, err := NewRandomizer(Params{P: 0.5, Q: 0.5}, rand.New(rand.NewSource(21)))
		if err != nil {
			t.Fatal(err)
		}
		return rz
	}
	a, b := newRZ(), newRZ()
	a.RespondBitsBatch(nil, 4, 11, 0) // empty batch
	a.RespondBitsBatch(nil, 4, 0, 3)  // zero-width vectors
	buf1 := []byte{0x05, 0x02}
	buf2 := append([]byte(nil), buf1...)
	a.RespondBitsBatch(buf1, 2, 11, 1)
	b.RespondBits(buf2, 11)
	if !bytes.Equal(buf1, buf2) {
		t.Fatal("no-op batches advanced the PRNG stream or single-slot batch diverged")
	}
}
