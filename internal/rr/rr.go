// Package rr implements PrivApprox's randomized response mechanism
// (paper §3.2.2): each participating client flips a first coin with
// probability p of heads — heads means answering truthfully — and
// otherwise flips a second coin with probability q of heads, answering
// "Yes" on heads and "No" on tails. The aggregator inverts the mechanism
// with the unbiased estimator of Eq. 5, and the privacy level follows
// Eq. 8 (differential privacy) amplified by client-side sampling into the
// zero-knowledge bound.
package rr

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// Errors reported by parameter validation and the estimators.
var (
	ErrBadParam = errors.New("rr: parameter out of range")
	ErrNoData   = errors.New("rr: no responses")
)

// Params are the two randomization coin biases. P is the probability the
// first coin comes up heads (answer truthfully); Q is the probability the
// second coin comes up heads (forced "Yes").
type Params struct {
	P float64
	Q float64
}

// Validate checks that both probabilities are within [0, 1] and that the
// mechanism is invertible (P > 0: otherwise responses carry no signal).
func (pr Params) Validate() error {
	if math.IsNaN(pr.P) || pr.P <= 0 || pr.P > 1 {
		return fmt.Errorf("%w: p=%v (need 0 < p ≤ 1)", ErrBadParam, pr.P)
	}
	if math.IsNaN(pr.Q) || pr.Q < 0 || pr.Q > 1 {
		return fmt.Errorf("%w: q=%v (need 0 ≤ q ≤ 1)", ErrBadParam, pr.Q)
	}
	return nil
}

// Invert returns the parameters of the inverted query (paper §3.3.2):
// tracking truthful "No" answers instead of truthful "Yes" answers means
// the forced answer becomes "No" with probability q, i.e. the second coin
// bias flips to 1−q. The first coin is unchanged.
func (pr Params) Invert() Params {
	return Params{P: pr.P, Q: 1 - pr.Q}
}

// Randomizer applies the two-coin mechanism with a caller-supplied PRNG.
type Randomizer struct {
	params Params
	rng    *rand.Rand
	// thTrue and thFalse are the truth-conditioned "Yes" probabilities
	// scaled to uint64 thresholds, so the batched RespondBits spends one
	// PRNG word per bit instead of one or two Float64 conversions:
	// Pr[Yes | truth] = p + (1−p)q, Pr[Yes | ¬truth] = (1−p)q.
	thTrue  uint64
	thFalse uint64
}

// NewRandomizer validates the parameters and returns a Randomizer. A nil
// rng gets a private, randomly-seeded source.
func NewRandomizer(params Params, rng *rand.Rand) (*Randomizer, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if rng == nil {
		rng = rand.New(rand.NewSource(rand.Int63()))
	}
	return &Randomizer{
		params:  params,
		rng:     rng,
		thTrue:  probThreshold(ResponseYesProbability(params, true)),
		thFalse: probThreshold(ResponseYesProbability(params, false)),
	}, nil
}

// probThreshold maps a probability to the uint64 threshold t such that a
// uniform word u answers "Yes" iff u < t (with t = MaxUint64 reserved to
// mean "always", keeping p = 1 exact).
func probThreshold(p float64) uint64 {
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		return math.MaxUint64
	}
	return uint64(p * (1 << 63) * 2)
}

// yesFromWord applies a threshold to one uniform PRNG word.
func yesFromWord(u, threshold uint64) bool {
	if threshold == math.MaxUint64 {
		return true
	}
	return u < threshold
}

// Params returns the randomization parameters.
func (r *Randomizer) Params() Params { return r.params }

// Respond randomizes one truthful bit.
func (r *Randomizer) Respond(truth bool) bool {
	if r.rng.Float64() < r.params.P {
		return truth
	}
	return r.rng.Float64() < r.params.Q
}

// RespondBits randomizes every bit of a packed bit vector of nbits bits
// independently, in place. Each bucket of a query answer is perturbed on
// its own, exactly as the paper's per-bucket binary answers require.
//
// The mechanism is the same two-coin process as Respond, collapsed to
// one uniform PRNG word per bit: conditioned on the truthful bit, the
// response is "Yes" with probability p + (1−p)q (truthful "Yes") or
// (1−p)q (truthful "No"), so a single threshold comparison per bit
// reproduces the exact per-bit response distribution — see the
// chi-square and unbiasedness tests. It performs no allocations and no
// floating-point conversions on the hot path.
func (r *Randomizer) RespondBits(bits []byte, nbits int) {
	r.respondVec(bits, nbits)
	respondedVectors.Inc()
}

// RespondBitsBatch randomizes count packed answer vectors laid out at a
// fixed stride inside lane (slot s at lane[s*stride:]), in place — one
// pass over the PRNG stream for a whole epoch's worth of answers. It
// consumes PRNG words in vector-major order, exactly as count sequential
// RespondBits calls would, so the output bits, the stream position, and
// Skip-based fast-forward are all identical to the per-message path.
func (r *Randomizer) RespondBitsBatch(lane []byte, stride, nbits, count int) {
	if nbits <= 0 || count <= 0 {
		return
	}
	nbytes := (nbits + 7) / 8
	for s := 0; s < count; s++ {
		r.respondVec(lane[s*stride:s*stride+nbytes], nbits)
	}
	respondedVectors.Add(int64(count))
}

// respondVec is the single-vector kernel behind RespondBits and
// RespondBitsBatch.
func (r *Randomizer) respondVec(bits []byte, nbits int) {
	rng, thTrue, thFalse := r.rng, r.thTrue, r.thFalse
	for i := 0; i < nbits; i += 8 {
		byteIdx := i >> 3
		b := bits[byteIdx]
		n := nbits - i
		if n > 8 {
			n = 8
		}
		var out byte
		for k := 0; k < n; k++ {
			th := thFalse
			if b&(1<<k) != 0 {
				th = thTrue
			}
			if yesFromWord(rng.Uint64(), th) {
				out |= 1 << k
			}
		}
		// Preserve bits past nbits in the final partial byte (the
		// caller's zeroed-trailing-bits invariant).
		if n < 8 {
			mask := byte(1)<<n - 1
			out |= b &^ mask
		}
		bits[byteIdx] = out
	}
}

// Skip draws and discards exactly the randomness RespondBits(·, nbits)
// would consume — one PRNG word per bit. A client resuming mid-stream
// after a restart fast-forwards each subscription's randomizer through
// the epochs it answered in a previous life, so the coins it flips from
// here on are the ones an uninterrupted run would have flipped.
func (r *Randomizer) Skip(nbits int) {
	for i := 0; i < nbits; i++ {
		r.rng.Uint64()
	}
}

// EstimateYes inverts the mechanism: given Ry observed "Yes" responses
// among n randomized responses, it returns the unbiased estimate of the
// number of truthful "Yes" answers (Eq. 5):
//
//	Ey = (Ry − (1−p)·q·n) / p
func EstimateYes(params Params, observedYes, n int) (float64, error) {
	if err := params.Validate(); err != nil {
		return 0, err
	}
	if n <= 0 {
		return 0, ErrNoData
	}
	if observedYes < 0 || observedYes > n {
		return 0, fmt.Errorf("%w: Ry=%d of n=%d", ErrBadParam, observedYes, n)
	}
	return (float64(observedYes) - (1-params.P)*params.Q*float64(n)) / params.P, nil
}

// EstimateNo estimates the number of truthful "No" answers — the
// quantity the inverted query of §3.3.2 reports. Under the two-coin
// mechanism Pr[No | truth=No] = p + (1−p)(1−q), so
//
//	En = (Rn − (1−p)·(1−q)·n) / p,  Rn = n − Ry.
//
// Algebraically En ≡ n − Ey, so inversion does not change the point
// estimate of either count; what changes is the *relative* accuracy
// loss: when few clients truthfully answer "Yes", |An − En|/An is far
// smaller than |Ay − Ey|/Ay for the same absolute error, which is
// exactly the Fig. 5a effect.
func EstimateNo(params Params, observedYes, n int) (float64, error) {
	ey, err := EstimateYes(params, observedYes, n)
	if err != nil {
		return 0, err
	}
	return float64(n) - ey, nil
}

// AccuracyLoss is the paper's utility metric (Eq. 6):
// η = |actual − estimated| / actual. The actual count must be nonzero.
func AccuracyLoss(actual, estimated float64) (float64, error) {
	if actual == 0 {
		return 0, fmt.Errorf("%w: actual count is zero", ErrBadParam)
	}
	return math.Abs(actual-estimated) / math.Abs(actual), nil
}

// EpsilonDP returns the differential privacy level of the randomized
// response mechanism (Eq. 8):
//
//	ε = ln( (p + (1−p)·q) / ((1−p)·q) )
//
// It is +Inf when the mechanism is deterministic for truthful "Yes"
// holders ((1−p)·q = 0), i.e. no privacy.
func EpsilonDP(params Params) (float64, error) {
	if err := params.Validate(); err != nil {
		return 0, err
	}
	denom := (1 - params.P) * params.Q
	if denom == 0 {
		return math.Inf(1), nil
	}
	return math.Log((params.P + denom) / denom), nil
}

// EpsilonZK returns the zero-knowledge privacy level of the combined
// sampling-then-randomized-response mechanism at sampling fraction s
// (the technical report's Eq. 19, which Table 1 and Fig. 7b report):
//
//	ε_zk = ln( (1 + s·(2−s)·(e^{ε_dp} − 1)) / (1−s) )
//
// The closed form was recovered by exact fit against all nine Table 1
// entries at the paper's stated s = 0.6 (every entry matches to the
// printed 4 decimals). Zero-knowledge privacy requires genuine sampling:
// the bound diverges as s → 1, matching the paper's plots, which stop at
// a 90% sampling fraction.
func EpsilonZK(s float64, params Params) (float64, error) {
	if math.IsNaN(s) || s <= 0 || s > 1 {
		return 0, fmt.Errorf("%w: s=%v (need 0 < s ≤ 1)", ErrBadParam, s)
	}
	eps, err := EpsilonDP(params)
	if err != nil {
		return 0, err
	}
	if s == 1 || math.IsInf(eps, 1) {
		return math.Inf(1), nil
	}
	return math.Log((1 + s*(2-s)*(math.Exp(eps)-1)) / (1 - s)), nil
}

// EpsilonDPSampled returns the differential privacy level of the
// combined mechanism under the standard privacy-amplification-by-
// subsampling bound:
//
//	ε'_dp = ln(1 + s·(e^{ε_dp} − 1))
//
// This is the quantity Fig. 5c plots when comparing PrivApprox against
// RAPPOR: it equals ε_dp at s = 1 and tends to 0 as s → 0.
func EpsilonDPSampled(s float64, params Params) (float64, error) {
	if math.IsNaN(s) || s <= 0 || s > 1 {
		return 0, fmt.Errorf("%w: s=%v (need 0 < s ≤ 1)", ErrBadParam, s)
	}
	eps, err := EpsilonDP(params)
	if err != nil {
		return 0, err
	}
	if math.IsInf(eps, 1) {
		return math.Inf(1), nil
	}
	return math.Log(1 + s*(math.Exp(eps)-1)), nil
}

// SamplingForEpsilonZK inverts EpsilonZK: it returns the sampling
// fraction s ∈ (0, 1) that achieves the target zero-knowledge level for
// fixed randomization parameters (the paper's Fig. 7 sweep computes s
// from Eq. 19 this way). It returns an error when the target is not
// achievable, i.e. below the s→0 limit ln(1) = 0 or when ε_dp is +Inf.
func SamplingForEpsilonZK(epsZK float64, params Params) (float64, error) {
	if math.IsNaN(epsZK) || epsZK <= 0 {
		return 0, fmt.Errorf("%w: epsZK=%v", ErrBadParam, epsZK)
	}
	eps, err := EpsilonDP(params)
	if err != nil {
		return 0, err
	}
	if math.IsInf(eps, 1) {
		return 0, fmt.Errorf("%w: ε_dp is infinite, no sampling fraction achieves a ZK bound", ErrBadParam)
	}
	// Solve E(1−s) = 1 + s(2−s)A for s, where A = e^{ε_dp}−1, E = e^{ε_zk}:
	// As² − (2A+E)s + (E−1) = 0, taking the root in (0, 1).
	a := math.Exp(eps) - 1
	e := math.Exp(epsZK)
	if a == 0 {
		// Perfectly private core: ε_zk = ln(1/(1−s)) ⇒ s = 1 − e^{−ε_zk}.
		return 1 - 1/e, nil
	}
	disc := (2*a+e)*(2*a+e) - 4*a*(e-1)
	if disc < 0 {
		return 0, fmt.Errorf("%w: target ε_zk=%v unreachable for %+v", ErrBadParam, epsZK, params)
	}
	s := ((2*a + e) - math.Sqrt(disc)) / (2 * a)
	if s <= 0 || s >= 1 {
		return 0, fmt.Errorf("%w: target ε_zk=%v maps to s=%v outside (0,1)", ErrBadParam, epsZK, s)
	}
	return s, nil
}

// ParamsForEpsilon returns the first-coin bias p that achieves the target
// differential privacy level eps for a fixed second-coin bias q:
// solving Eq. 8 for p gives p = q(e^ε−1) / (1 + q(e^ε−1)).
func ParamsForEpsilon(eps, q float64) (Params, error) {
	if math.IsNaN(eps) || eps <= 0 {
		return Params{}, fmt.Errorf("%w: eps=%v", ErrBadParam, eps)
	}
	if q <= 0 || q > 1 {
		return Params{}, fmt.Errorf("%w: q=%v (need 0 < q ≤ 1)", ErrBadParam, q)
	}
	g := q * (math.Exp(eps) - 1)
	return Params{P: g / (1 + g), Q: q}, nil
}

// ResponseYesProbability returns Pr[response = Yes] for a client whose
// truthful answer is truth. Useful for analytical tests and the SplitX /
// RAPPOR comparisons.
func ResponseYesProbability(params Params, truth bool) float64 {
	if truth {
		return params.P + (1-params.P)*params.Q
	}
	return (1 - params.P) * params.Q
}

// SimulateAccuracyLoss reproduces the paper's "experimental method" for
// estimating the accuracy loss of the randomized response process
// (§3.2.4): it runs rounds micro-benchmarks over a synthetic population
// of n answers with the given truthful-"Yes" fraction, and returns the
// mean accuracy loss (Eq. 6) across rounds. Sampling is not applied,
// matching the paper's setup.
func SimulateAccuracyLoss(params Params, yesFraction float64, n, rounds int, rng *rand.Rand) (float64, error) {
	if err := params.Validate(); err != nil {
		return 0, err
	}
	if yesFraction < 0 || yesFraction > 1 {
		return 0, fmt.Errorf("%w: yesFraction=%v", ErrBadParam, yesFraction)
	}
	if n <= 0 || rounds <= 0 {
		return 0, fmt.Errorf("%w: n=%d rounds=%d", ErrBadParam, n, rounds)
	}
	if rng == nil {
		rng = rand.New(rand.NewSource(rand.Int63()))
	}
	rz, err := NewRandomizer(params, rng)
	if err != nil {
		return 0, err
	}
	actualYes := int(math.Round(yesFraction * float64(n)))
	if actualYes == 0 {
		return 0, fmt.Errorf("%w: zero truthful yes answers", ErrBadParam)
	}
	var total float64
	for round := 0; round < rounds; round++ {
		observed := 0
		for i := 0; i < n; i++ {
			if rz.Respond(i < actualYes) {
				observed++
			}
		}
		est, err := EstimateYes(params, observed, n)
		if err != nil {
			return 0, err
		}
		loss, err := AccuracyLoss(float64(actualYes), est)
		if err != nil {
			return 0, err
		}
		total += loss
	}
	return total / float64(rounds), nil
}
