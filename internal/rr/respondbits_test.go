package rr

import (
	"math"
	"math/rand"
	"testing"
)

// chiSquare1 returns the 1-degree-of-freedom chi-square statistic for an
// observed yes-count against an expected probability.
func chiSquare1(yes, n int, p float64) float64 {
	if p <= 0 || p >= 1 {
		return 0
	}
	expYes := p * float64(n)
	expNo := (1 - p) * float64(n)
	dYes := float64(yes) - expYes
	dNo := float64(n-yes) - expNo
	return dYes*dYes/expYes + dNo*dNo/expNo
}

// TestRespondBitsChiSquare checks, per (p, q) setting, that the batched
// word-drawing RespondBits reproduces the mechanism's exact conditional
// response distribution: Pr[Yes | truth] = p + (1−p)q and
// Pr[Yes | ¬truth] = (1−p)q. Each conditional is tested with a 1-dof
// chi-square; 10.83 is the 0.1% critical value, and the seeds are fixed,
// so the test is deterministic.
func TestRespondBitsChiSquare(t *testing.T) {
	const (
		rounds  = 2000
		nbits   = 64
		critval = 10.83
	)
	for _, pr := range []Params{
		{P: 0.3, Q: 0.3}, {P: 0.3, Q: 0.9}, {P: 0.6, Q: 0.6},
		{P: 0.9, Q: 0.3}, {P: 0.9, Q: 0.9}, {P: 0.5, Q: 0.0},
	} {
		rng := rand.New(rand.NewSource(42))
		rz, err := NewRandomizer(pr, rng)
		if err != nil {
			t.Fatal(err)
		}
		// Truth pattern 0b00001111...: half the bits truthful "Yes".
		truth := make([]byte, nbits/8)
		for i := range truth {
			truth[i] = 0x0F
		}
		buf := make([]byte, len(truth))
		yesTrue, yesFalse, nTrue, nFalse := 0, 0, 0, 0
		for r := 0; r < rounds; r++ {
			copy(buf, truth)
			rz.RespondBits(buf, nbits)
			for i := 0; i < nbits; i++ {
				wasSet := truth[i/8]&(1<<(i%8)) != 0
				isSet := buf[i/8]&(1<<(i%8)) != 0
				if wasSet {
					nTrue++
					if isSet {
						yesTrue++
					}
				} else {
					nFalse++
					if isSet {
						yesFalse++
					}
				}
			}
		}
		pTrue := ResponseYesProbability(pr, true)
		pFalse := ResponseYesProbability(pr, false)
		if chi := chiSquare1(yesTrue, nTrue, pTrue); chi > critval {
			t.Errorf("%+v: truthful-yes chi-square %.2f (observed %d/%d, want p=%.3f)",
				pr, chi, yesTrue, nTrue, pTrue)
		}
		if chi := chiSquare1(yesFalse, nFalse, pFalse); chi > critval {
			t.Errorf("%+v: truthful-no chi-square %.2f (observed %d/%d, want p=%.3f)",
				pr, chi, yesFalse, nFalse, pFalse)
		}
		// Degenerate conditionals must be exact, not just close.
		if pFalse == 0 && yesFalse != 0 {
			t.Errorf("%+v: forced-no produced %d yes answers", pr, yesFalse)
		}
	}
}

// TestRespondBitsEstimatorUnbiased feeds RespondBits output through the
// paper's Eq. 5 estimator: averaged over many randomized windows, the
// estimate must recover the actual truthful-"Yes" count within a few
// standard errors.
func TestRespondBitsEstimatorUnbiased(t *testing.T) {
	const (
		nbits     = 1000
		actualYes = 250
		rounds    = 400
	)
	for _, pr := range []Params{{P: 0.3, Q: 0.6}, {P: 0.6, Q: 0.3}, {P: 0.9, Q: 0.9}} {
		rng := rand.New(rand.NewSource(7))
		rz, err := NewRandomizer(pr, rng)
		if err != nil {
			t.Fatal(err)
		}
		truth := make([]byte, (nbits+7)/8)
		for i := 0; i < actualYes; i++ {
			truth[i/8] |= 1 << (i % 8)
		}
		buf := make([]byte, len(truth))
		var sum float64
		for r := 0; r < rounds; r++ {
			copy(buf, truth)
			rz.RespondBits(buf, nbits)
			yes := 0
			for i := 0; i < nbits; i++ {
				if buf[i/8]&(1<<(i%8)) != 0 {
					yes++
				}
			}
			est, err := EstimateYes(pr, yes, nbits)
			if err != nil {
				t.Fatal(err)
			}
			sum += est
		}
		mean := sum / rounds
		// Std-error of the mean estimate is bounded by
		// sqrt(n)/(2p·sqrt(rounds)); allow 4 of them.
		tol := 4 * math.Sqrt(nbits) / (2 * pr.P * math.Sqrt(rounds))
		if math.Abs(mean-actualYes) > tol {
			t.Errorf("%+v: mean estimate %.2f, want %d ± %.2f", pr, mean, actualYes, tol)
		}
	}
}

// TestRespondBitsZeroAllocs pins the allocation contract of the batched
// path.
func TestRespondBitsZeroAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	rz, err := NewRandomizer(Params{P: 0.9, Q: 0.6}, rng)
	if err != nil {
		t.Fatal(err)
	}
	bits := make([]byte, 16)
	if allocs := testing.AllocsPerRun(200, func() {
		rz.RespondBits(bits, 121)
	}); allocs != 0 {
		t.Fatalf("RespondBits: %v allocs/op, want 0", allocs)
	}
}

// TestRespondAndRespondBitsAgreeOnMarginals: the scalar Respond and the
// batched RespondBits must implement the same mechanism — equal response
// marginals for both truth values, checked empirically.
func TestRespondAndRespondBitsAgreeOnMarginals(t *testing.T) {
	pr := Params{P: 0.6, Q: 0.3}
	const trials = 200000
	rzA, _ := NewRandomizer(pr, rand.New(rand.NewSource(1)))
	rzB, _ := NewRandomizer(pr, rand.New(rand.NewSource(2)))
	for _, truth := range []bool{true, false} {
		yesScalar := 0
		for i := 0; i < trials; i++ {
			if rzA.Respond(truth) {
				yesScalar++
			}
		}
		yesBatch := 0
		var b [1]byte
		for i := 0; i < trials; i++ {
			b[0] = 0
			if truth {
				b[0] = 1
			}
			rzB.RespondBits(b[:], 1)
			if b[0]&1 != 0 {
				yesBatch++
			}
		}
		pScalar := float64(yesScalar) / trials
		pBatch := float64(yesBatch) / trials
		if math.Abs(pScalar-pBatch) > 0.01 {
			t.Errorf("truth=%v: scalar marginal %.4f vs batched %.4f", truth, pScalar, pBatch)
		}
	}
}
