// Package netsim models cluster scaling for the paper's Fig. 8: the
// evaluation ran proxies and the aggregator on a 44-node cluster we do
// not have, so scale-up is measured on real cores and scale-out is
// projected with a calibrated cluster model (see DESIGN.md §2). The
// model combines Amdahl-style intra-node serialization with a per-node
// coordination efficiency for scale-out — the standard first-order
// shape of shared-nothing stream systems.
package netsim

import (
	"errors"
	"fmt"
	"math"
)

// ErrModel reports invalid model parameters.
var ErrModel = errors.New("netsim: invalid model")

// ClusterModel projects throughput from a single measured core.
type ClusterModel struct {
	// PerCoreOpsPerSec is the calibrated single-core throughput.
	PerCoreOpsPerSec float64
	// SerialFraction is the Amdahl serial share within one node
	// (lock/allocator contention); 0.05 means 5% serialized.
	SerialFraction float64
	// ScaleOutEfficiency is the per-added-node multiplicative efficiency
	// (network partitioning and coordination overhead); 0.97 means each
	// added node delivers 97% of the previous marginal node.
	ScaleOutEfficiency float64
	// CoresPerNode for node-level projections.
	CoresPerNode int
}

// Validate checks ranges.
func (m ClusterModel) Validate() error {
	if m.PerCoreOpsPerSec <= 0 || math.IsNaN(m.PerCoreOpsPerSec) {
		return fmt.Errorf("%w: per-core rate %v", ErrModel, m.PerCoreOpsPerSec)
	}
	if m.SerialFraction < 0 || m.SerialFraction >= 1 {
		return fmt.Errorf("%w: serial fraction %v", ErrModel, m.SerialFraction)
	}
	if m.ScaleOutEfficiency <= 0 || m.ScaleOutEfficiency > 1 {
		return fmt.Errorf("%w: efficiency %v", ErrModel, m.ScaleOutEfficiency)
	}
	if m.CoresPerNode <= 0 {
		return fmt.Errorf("%w: %d cores per node", ErrModel, m.CoresPerNode)
	}
	return nil
}

// ScaleUp returns the projected throughput of one node using the given
// number of cores (Amdahl's law).
func (m ClusterModel) ScaleUp(cores int) (float64, error) {
	if err := m.Validate(); err != nil {
		return 0, err
	}
	if cores <= 0 {
		return 0, fmt.Errorf("%w: %d cores", ErrModel, cores)
	}
	speedup := float64(cores) / (1 + m.SerialFraction*float64(cores-1))
	return m.PerCoreOpsPerSec * speedup, nil
}

// ScaleOut returns the projected cluster throughput of the given number
// of full nodes: each added node contributes the full-node rate times a
// geometric coordination efficiency.
func (m ClusterModel) ScaleOut(nodes int) (float64, error) {
	if nodes <= 0 {
		return 0, fmt.Errorf("%w: %d nodes", ErrModel, nodes)
	}
	nodeRate, err := m.ScaleUp(m.CoresPerNode)
	if err != nil {
		return 0, err
	}
	total := 0.0
	marginal := nodeRate
	for i := 0; i < nodes; i++ {
		total += marginal
		marginal *= m.ScaleOutEfficiency
	}
	return total, nil
}

// Calibrate builds a model from a measured single-core rate with the
// default shape parameters used by the Fig. 8 harness.
func Calibrate(perCoreOpsPerSec float64, coresPerNode int) (ClusterModel, error) {
	m := ClusterModel{
		PerCoreOpsPerSec:   perCoreOpsPerSec,
		SerialFraction:     0.05,
		ScaleOutEfficiency: 0.97,
		CoresPerNode:       coresPerNode,
	}
	if err := m.Validate(); err != nil {
		return ClusterModel{}, err
	}
	return m, nil
}

// TrafficAccount accumulates bytes for the Fig. 9 bandwidth experiment.
type TrafficAccount struct {
	bytes int64
}

// Add records transmitted bytes.
func (t *TrafficAccount) Add(n int64) { t.bytes += n }

// TotalBytes returns the accumulated volume.
func (t *TrafficAccount) TotalBytes() int64 { return t.bytes }

// TotalGB returns the volume in gigabytes.
func (t *TrafficAccount) TotalGB() float64 { return float64(t.bytes) / 1e9 }
