// Package netsim models cluster scaling for the paper's Fig. 8: the
// evaluation ran proxies and the aggregator on a 44-node cluster we do
// not have, so scale-up is measured on real cores and scale-out is
// projected with a calibrated cluster model (see DESIGN.md §2). The
// model combines Amdahl-style intra-node serialization with a per-node
// coordination efficiency for scale-out — the standard first-order
// shape of shared-nothing stream systems.
package netsim

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// ErrModel reports invalid model parameters.
var ErrModel = errors.New("netsim: invalid model")

// ClusterModel projects throughput from a single measured core.
type ClusterModel struct {
	// PerCoreOpsPerSec is the calibrated single-core throughput.
	PerCoreOpsPerSec float64
	// SerialFraction is the Amdahl serial share within one node
	// (lock/allocator contention); 0.05 means 5% serialized.
	SerialFraction float64
	// ScaleOutEfficiency is the per-added-node multiplicative efficiency
	// (network partitioning and coordination overhead); 0.97 means each
	// added node delivers 97% of the previous marginal node.
	ScaleOutEfficiency float64
	// CoresPerNode for node-level projections.
	CoresPerNode int
}

// Validate checks ranges.
func (m ClusterModel) Validate() error {
	if m.PerCoreOpsPerSec <= 0 || math.IsNaN(m.PerCoreOpsPerSec) {
		return fmt.Errorf("%w: per-core rate %v", ErrModel, m.PerCoreOpsPerSec)
	}
	if m.SerialFraction < 0 || m.SerialFraction >= 1 {
		return fmt.Errorf("%w: serial fraction %v", ErrModel, m.SerialFraction)
	}
	if m.ScaleOutEfficiency <= 0 || m.ScaleOutEfficiency > 1 {
		return fmt.Errorf("%w: efficiency %v", ErrModel, m.ScaleOutEfficiency)
	}
	if m.CoresPerNode <= 0 {
		return fmt.Errorf("%w: %d cores per node", ErrModel, m.CoresPerNode)
	}
	return nil
}

// ScaleUp returns the projected throughput of one node using the given
// number of cores (Amdahl's law).
func (m ClusterModel) ScaleUp(cores int) (float64, error) {
	if err := m.Validate(); err != nil {
		return 0, err
	}
	if cores <= 0 {
		return 0, fmt.Errorf("%w: %d cores", ErrModel, cores)
	}
	speedup := float64(cores) / (1 + m.SerialFraction*float64(cores-1))
	return m.PerCoreOpsPerSec * speedup, nil
}

// ScaleOut returns the projected cluster throughput of the given number
// of full nodes: each added node contributes the full-node rate times a
// geometric coordination efficiency.
func (m ClusterModel) ScaleOut(nodes int) (float64, error) {
	if nodes <= 0 {
		return 0, fmt.Errorf("%w: %d nodes", ErrModel, nodes)
	}
	nodeRate, err := m.ScaleUp(m.CoresPerNode)
	if err != nil {
		return 0, err
	}
	total := 0.0
	marginal := nodeRate
	for i := 0; i < nodes; i++ {
		total += marginal
		marginal *= m.ScaleOutEfficiency
	}
	return total, nil
}

// Calibrate builds a model from a measured single-core rate with the
// default shape parameters used by the Fig. 8 harness.
func Calibrate(perCoreOpsPerSec float64, coresPerNode int) (ClusterModel, error) {
	m := ClusterModel{
		PerCoreOpsPerSec:   perCoreOpsPerSec,
		SerialFraction:     0.05,
		ScaleOutEfficiency: 0.97,
		CoresPerNode:       coresPerNode,
	}
	if err := m.Validate(); err != nil {
		return ClusterModel{}, err
	}
	return m, nil
}

// Link is a deterministic adversarial delivery model for control-plane
// distribution tests: given a sequence of published messages, it
// produces the subsequence (with duplicates) one subscriber actually
// observes — dropping, duplicating, and locally reordering messages
// under a seeded RNG. It models a consumer's view of a durable
// pub/sub topic under transient failures: individual poll batches may
// be missed or observed out of order, but the log itself is durable,
// so a final catch-up poll always observes the tail. Receivers built on
// versioned snapshots must converge under any such delivery.
type Link struct {
	// Drop is the probability a message is not observed in its slot.
	Drop float64
	// Dup is the probability an observed message is observed twice.
	Dup float64
	// ReorderWindow bounds how far an observed message may be displaced
	// from its publish position (0 = in-order delivery).
	ReorderWindow int
	// Seed fixes the delivery schedule; the same seed always yields the
	// same delivery.
	Seed int64
}

// Validate checks the link parameters.
func (l Link) Validate() error {
	if l.Drop < 0 || l.Drop >= 1 || math.IsNaN(l.Drop) {
		return fmt.Errorf("%w: drop %v", ErrModel, l.Drop)
	}
	if l.Dup < 0 || l.Dup >= 1 || math.IsNaN(l.Dup) {
		return fmt.Errorf("%w: dup %v", ErrModel, l.Dup)
	}
	if l.ReorderWindow < 0 {
		return fmt.Errorf("%w: reorder window %d", ErrModel, l.ReorderWindow)
	}
	return nil
}

// Deliver returns the observed sequence for one subscriber. The final
// published message is always observed last (the durable-log catch-up:
// a consumer that keeps polling eventually reads the tail), so
// convergence does not depend on luck; everything before it may be
// dropped, duplicated, or displaced by up to ReorderWindow positions.
func (l Link) Deliver(msgs [][]byte) ([][]byte, error) {
	if err := l.Validate(); err != nil {
		return nil, err
	}
	if len(msgs) == 0 {
		return nil, nil
	}
	rng := rand.New(rand.NewSource(l.Seed))
	var observed [][]byte
	for _, m := range msgs[:len(msgs)-1] {
		if rng.Float64() < l.Drop {
			continue
		}
		observed = append(observed, m)
		if rng.Float64() < l.Dup {
			observed = append(observed, m)
		}
	}
	// Local reordering: displace each message within the window.
	if l.ReorderWindow > 0 {
		for i := range observed {
			j := i + rng.Intn(l.ReorderWindow+1)
			if j >= len(observed) {
				j = len(observed) - 1
			}
			observed[i], observed[j] = observed[j], observed[i]
		}
	}
	return append(observed, msgs[len(msgs)-1]), nil
}

// TrafficAccount accumulates bytes for the Fig. 9 bandwidth experiment.
type TrafficAccount struct {
	bytes int64
}

// Add records transmitted bytes.
func (t *TrafficAccount) Add(n int64) { t.bytes += n }

// TotalBytes returns the accumulated volume.
func (t *TrafficAccount) TotalBytes() int64 { return t.bytes }

// TotalGB returns the volume in gigabytes.
func (t *TrafficAccount) TotalGB() float64 { return float64(t.bytes) / 1e9 }
