package netsim

import (
	"testing"
)

func TestCalibrateAndValidate(t *testing.T) {
	m, err := Calibrate(100000, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := Calibrate(0, 8); err == nil {
		t.Error("expected error for zero rate")
	}
	bad := m
	bad.SerialFraction = 1
	if err := bad.Validate(); err == nil {
		t.Error("expected error for serial fraction 1")
	}
	bad = m
	bad.ScaleOutEfficiency = 0
	if err := bad.Validate(); err == nil {
		t.Error("expected error for zero efficiency")
	}
}

func TestScaleUpMonotoneSublinear(t *testing.T) {
	m, _ := Calibrate(100000, 8)
	prev := 0.0
	for _, cores := range []int{1, 2, 4, 8} {
		tp, err := m.ScaleUp(cores)
		if err != nil {
			t.Fatal(err)
		}
		if tp <= prev {
			t.Errorf("throughput not increasing at %d cores", cores)
		}
		if tp > float64(cores)*m.PerCoreOpsPerSec+1e-9 {
			t.Errorf("superlinear speedup at %d cores: %v", cores, tp)
		}
		prev = tp
	}
	one, _ := m.ScaleUp(1)
	if one != m.PerCoreOpsPerSec {
		t.Errorf("1 core = %v, want per-core rate", one)
	}
	if _, err := m.ScaleUp(0); err == nil {
		t.Error("expected error for zero cores")
	}
}

func TestScaleOutMonotoneSublinear(t *testing.T) {
	m, _ := Calibrate(100000, 8)
	nodeRate, _ := m.ScaleUp(8)
	prev := 0.0
	for _, nodes := range []int{1, 2, 4, 10, 20} {
		tp, err := m.ScaleOut(nodes)
		if err != nil {
			t.Fatal(err)
		}
		if tp <= prev {
			t.Errorf("throughput not increasing at %d nodes", nodes)
		}
		if tp > float64(nodes)*nodeRate+1e-6 {
			t.Errorf("superlinear scale-out at %d nodes", nodes)
		}
		prev = tp
	}
	one, _ := m.ScaleOut(1)
	if one != nodeRate {
		t.Errorf("1 node = %v, want node rate %v", one, nodeRate)
	}
	if _, err := m.ScaleOut(0); err == nil {
		t.Error("expected error for zero nodes")
	}
}

func TestTrafficAccount(t *testing.T) {
	var acc TrafficAccount
	acc.Add(500_000_000)
	acc.Add(1_500_000_000)
	if acc.TotalBytes() != 2_000_000_000 {
		t.Errorf("TotalBytes = %d", acc.TotalBytes())
	}
	if acc.TotalGB() != 2.0 {
		t.Errorf("TotalGB = %v", acc.TotalGB())
	}
}

func TestLinkDeterministicDelivery(t *testing.T) {
	msgs := make([][]byte, 20)
	for i := range msgs {
		msgs[i] = []byte{byte(i)}
	}
	link := Link{Drop: 0.4, Dup: 0.3, ReorderWindow: 3, Seed: 7}
	a, err := link.Deliver(msgs)
	if err != nil {
		t.Fatal(err)
	}
	b, err := link.Deliver(msgs)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("same seed delivered %d vs %d messages", len(a), len(b))
	}
	for i := range a {
		if a[i][0] != b[i][0] {
			t.Fatalf("same seed diverged at position %d", i)
		}
	}
	// The tail is always delivered last (the durable-log catch-up).
	if a[len(a)-1][0] != msgs[len(msgs)-1][0] {
		t.Errorf("tail message not delivered last")
	}
	// A different seed yields a different schedule (overwhelmingly).
	other := Link{Drop: 0.4, Dup: 0.3, ReorderWindow: 3, Seed: 8}
	c, err := other.Deliver(msgs)
	if err != nil {
		t.Fatal(err)
	}
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i][0] != c[i][0] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical delivery")
	}
	// Parameter validation.
	if _, err := (Link{Drop: 1.5}).Deliver(msgs); err == nil {
		t.Error("invalid drop accepted")
	}
	if _, err := (Link{ReorderWindow: -1}).Deliver(msgs); err == nil {
		t.Error("negative reorder window accepted")
	}
}
