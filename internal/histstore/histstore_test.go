package histstore

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func openTemp(t *testing.T, maxSeg int64) *Store {
	t.Helper()
	s, err := Open(t.TempDir(), maxSeg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestAppendScanRoundTrip(t *testing.T) {
	s := openTemp(t, 0)
	base := time.Unix(1000, 0)
	for i := 0; i < 10; i++ {
		if err := s.Append(base.Add(time.Duration(i)*time.Second), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	var got []byte
	st, err := s.Scan(base, base.Add(time.Hour), func(ts time.Time, payload []byte) error {
		got = append(got, payload...)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Records != 10 || st.CorruptTail != 0 {
		t.Errorf("stats = %+v", st)
	}
	if !bytes.Equal(got, []byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}) {
		t.Errorf("payloads = %v", got)
	}
}

func TestScanRangeFilter(t *testing.T) {
	s := openTemp(t, 0)
	base := time.Unix(0, 0)
	for i := 0; i < 10; i++ {
		if err := s.Append(base.Add(time.Duration(i)*time.Second), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// [3s, 7s): records 3..6. The range is inclusive-exclusive.
	var got []byte
	st, err := s.Scan(base.Add(3*time.Second), base.Add(7*time.Second), func(ts time.Time, p []byte) error {
		got = append(got, p...)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Records != 4 || !bytes.Equal(got, []byte{3, 4, 5, 6}) {
		t.Errorf("range scan = %v (%+v)", got, st)
	}
}

func TestSegmentRolling(t *testing.T) {
	s := openTemp(t, 4096)
	payload := make([]byte, 1024)
	for i := 0; i < 20; i++ {
		if err := s.Append(time.Unix(int64(i), 0), payload); err != nil {
			t.Fatal(err)
		}
	}
	n, err := s.SegmentCount()
	if err != nil {
		t.Fatal(err)
	}
	if n < 3 {
		t.Errorf("segments = %d, want several", n)
	}
	st, err := s.Scan(time.Unix(0, 0), time.Unix(100, 0), func(time.Time, []byte) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if st.Records != 20 {
		t.Errorf("records across segments = %d", st.Records)
	}
}

func TestReopenContinues(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Append(time.Unix(1, 0), []byte("a")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if err := s2.Append(time.Unix(2, 0), []byte("b")); err != nil {
		t.Fatal(err)
	}
	st, err := s2.Scan(time.Unix(0, 0), time.Unix(10, 0), func(time.Time, []byte) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if st.Records != 2 {
		t.Errorf("records after reopen = %d, want 2", st.Records)
	}
}

func TestCorruptTailRecovery(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := s.Append(time.Unix(int64(i), 0), []byte(fmt.Sprintf("rec%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-write: truncate the tail of the segment.
	segs, _ := filepath.Glob(filepath.Join(dir, "seg-*.log"))
	if len(segs) != 1 {
		t.Fatalf("segments = %d", len(segs))
	}
	info, err := os.Stat(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(segs[0], info.Size()-3); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	var got []string
	st, err := s2.Scan(time.Unix(0, 0), time.Unix(100, 0), func(_ time.Time, p []byte) error {
		got = append(got, string(p))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Records != 4 || st.CorruptTail != 1 {
		t.Errorf("stats = %+v", st)
	}
	if len(got) != 4 || got[3] != "rec3" {
		t.Errorf("recovered = %v", got)
	}
}

func TestCorruptChecksumStopsSegment(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	s.Append(time.Unix(1, 0), []byte("good"))
	s.Append(time.Unix(2, 0), []byte("bad!"))
	s.Close()
	segs, _ := filepath.Glob(filepath.Join(dir, "seg-*.log"))
	raw, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0xFF // flip a payload byte of the second record
	if err := os.WriteFile(segs[0], raw, 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	st, err := s2.Scan(time.Unix(0, 0), time.Unix(10, 0), func(time.Time, []byte) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if st.Records != 1 || st.CorruptTail != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestScanCallbackErrorPropagates(t *testing.T) {
	s := openTemp(t, 0)
	s.Append(time.Unix(1, 0), []byte("x"))
	boom := errors.New("boom")
	_, err := s.Scan(time.Unix(0, 0), time.Unix(10, 0), func(time.Time, []byte) error { return boom })
	if !errors.Is(err, boom) {
		t.Errorf("err = %v", err)
	}
}

func TestClosedStoreRejectsAppend(t *testing.T) {
	s := openTemp(t, 0)
	s.Close()
	if err := s.Append(time.Unix(1, 0), []byte("x")); !errors.Is(err, ErrClosed) {
		t.Errorf("append after close: %v", err)
	}
	if err := s.Sync(); !errors.Is(err, ErrClosed) {
		t.Errorf("sync after close: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
}

func TestOpenValidation(t *testing.T) {
	if _, err := Open(t.TempDir(), 100); err == nil {
		t.Error("expected error for tiny segment size")
	}
}

func TestScanSeesUnsyncedWrites(t *testing.T) {
	s := openTemp(t, 0)
	s.Append(time.Unix(1, 0), []byte("fresh"))
	st, err := s.Scan(time.Unix(0, 0), time.Unix(10, 0), func(time.Time, []byte) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if st.Records != 1 {
		t.Errorf("records = %d, want freshly appended data visible", st.Records)
	}
}
