// Package histstore is the fault-tolerant response store backing
// PrivApprox's historical analytics (paper §3.3.1): the aggregator
// appends every decoded randomized answer, and batch queries later scan
// a time range. It stands in for HDFS with local segmented append-only
// files: fixed-header records with CRC32 checksums, segment rolling, and
// crash recovery that tolerates a torn final record.
package histstore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

// Errors reported by the store.
var (
	ErrClosed  = errors.New("histstore: closed")
	ErrCorrupt = errors.New("histstore: corrupt record")
)

// record layout: ts(8) | len(4) | crc32(4) | payload.
const recordHeader = 16

// Store is a segmented append-only record store.
type Store struct {
	dir         string
	maxSegBytes int64

	mu      sync.Mutex
	seg     *os.File
	segSize int64
	segSeq  int
	closed  bool
}

// Open creates or reopens a store in dir. Segments roll after
// maxSegBytes (minimum 4 KiB; 0 defaults to 64 MiB).
func Open(dir string, maxSegBytes int64) (*Store, error) {
	if maxSegBytes == 0 {
		maxSegBytes = 64 << 20
	}
	if maxSegBytes < 4096 {
		return nil, fmt.Errorf("histstore: segment size %d below 4KiB", maxSegBytes)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("histstore: %w", err)
	}
	s := &Store{dir: dir, maxSegBytes: maxSegBytes}
	segs, err := s.segments()
	if err != nil {
		return nil, err
	}
	if len(segs) > 0 {
		s.segSeq = segSeqOf(segs[len(segs)-1]) + 1
	}
	return s, nil
}

// Append writes one record with the given timestamp.
func (s *Store) Append(ts time.Time, payload []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if s.seg == nil || s.segSize >= s.maxSegBytes {
		if err := s.rollLocked(); err != nil {
			return err
		}
	}
	buf := make([]byte, recordHeader+len(payload))
	binary.BigEndian.PutUint64(buf[0:8], uint64(ts.UnixNano()))
	binary.BigEndian.PutUint32(buf[8:12], uint32(len(payload)))
	binary.BigEndian.PutUint32(buf[12:16], crc32.ChecksumIEEE(payload))
	copy(buf[recordHeader:], payload)
	n, err := s.seg.Write(buf)
	s.segSize += int64(n)
	if err != nil {
		return fmt.Errorf("histstore: append: %w", err)
	}
	return nil
}

// Sync flushes the active segment to stable storage.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if s.seg == nil {
		return nil
	}
	return s.seg.Sync()
}

// Close syncs and closes the store.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if s.seg != nil {
		if err := s.seg.Sync(); err != nil {
			s.seg.Close()
			return err
		}
		return s.seg.Close()
	}
	return nil
}

// Scan replays every intact record with from ≤ ts < to, in append
// order, stopping early if fn returns a non-nil error. A torn or
// corrupt record ends that segment's scan (crash-recovery semantics)
// without failing the overall scan; CorruptTail reports how many
// segments ended early.
type ScanStats struct {
	Records     int
	CorruptTail int
}

// Scan iterates records in [from, to).
func (s *Store) Scan(from, to time.Time, fn func(ts time.Time, payload []byte) error) (ScanStats, error) {
	s.mu.Lock()
	if s.seg != nil {
		// Make everything written so far visible to the reader below.
		if err := s.seg.Sync(); err != nil {
			s.mu.Unlock()
			return ScanStats{}, err
		}
	}
	segs, err := s.segments()
	s.mu.Unlock()
	if err != nil {
		return ScanStats{}, err
	}
	var st ScanStats
	for _, seg := range segs {
		corrupt, err := scanSegment(seg, from, to, &st, fn)
		if err != nil {
			return st, err
		}
		if corrupt {
			st.CorruptTail++
		}
	}
	return st, nil
}

func scanSegment(path string, from, to time.Time, st *ScanStats, fn func(time.Time, []byte) error) (corrupt bool, err error) {
	f, err := os.Open(path)
	if err != nil {
		return false, fmt.Errorf("histstore: %w", err)
	}
	defer f.Close()
	hdr := make([]byte, recordHeader)
	for {
		if _, err := io.ReadFull(f, hdr); err != nil {
			if errors.Is(err, io.EOF) {
				return false, nil
			}
			return true, nil // torn header
		}
		ts := time.Unix(0, int64(binary.BigEndian.Uint64(hdr[0:8])))
		length := binary.BigEndian.Uint32(hdr[8:12])
		sum := binary.BigEndian.Uint32(hdr[12:16])
		if length > 64<<20 {
			return true, nil
		}
		payload := make([]byte, length)
		if _, err := io.ReadFull(f, payload); err != nil {
			return true, nil // torn payload
		}
		if crc32.ChecksumIEEE(payload) != sum {
			return true, nil
		}
		if (ts.Equal(from) || ts.After(from)) && ts.Before(to) {
			st.Records++
			if err := fn(ts, payload); err != nil {
				return false, err
			}
		}
	}
}

// SegmentCount returns the number of on-disk segments.
func (s *Store) SegmentCount() (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	segs, err := s.segments()
	return len(segs), err
}

func (s *Store) rollLocked() error {
	if s.seg != nil {
		if err := s.seg.Sync(); err != nil {
			return err
		}
		if err := s.seg.Close(); err != nil {
			return err
		}
	}
	name := filepath.Join(s.dir, fmt.Sprintf("seg-%08d.log", s.segSeq))
	s.segSeq++
	f, err := os.OpenFile(name, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("histstore: roll: %w", err)
	}
	s.seg = f
	s.segSize = 0
	return nil
}

func (s *Store) segments() ([]string, error) {
	entries, err := filepath.Glob(filepath.Join(s.dir, "seg-*.log"))
	if err != nil {
		return nil, fmt.Errorf("histstore: %w", err)
	}
	sort.Strings(entries)
	return entries, nil
}

func segSeqOf(path string) int {
	var seq int
	fmt.Sscanf(filepath.Base(path), "seg-%08d.log", &seq)
	return seq
}
