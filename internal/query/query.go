package query

import (
	"crypto/ed25519"
	"encoding/binary"
	"errors"
	"fmt"
	"time"
)

// Errors reported by query validation and signature checking.
var (
	ErrInvalidQuery = errors.New("query: invalid query")
	ErrBadSignature = errors.New("query: signature verification failed")
)

// ID identifies a query: the analyst identifier concatenated with a
// serial number unique to that analyst (paper §3.1).
type ID struct {
	Analyst string
	Serial  uint64
}

// String renders the identifier as analyst:serial.
func (id ID) String() string { return fmt.Sprintf("%s:%d", id.Analyst, id.Serial) }

// Uint64 derives the compact on-the-wire query identifier carried inside
// answer messages (FNV-1a over the textual form).
func (id ID) Uint64() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, c := range []byte(id.String()) {
		h ^= uint64(c)
		h *= prime64
	}
	return h
}

// Query is the paper's Eq. 1 tuple ⟨QID, SQL, A[n], f, w, δ⟩: the SQL
// text executed at each client, the answer bucket layout, the answer
// frequency, and the sliding window geometry.
type Query struct {
	QID       ID
	SQL       string
	Buckets   Buckets       // A[n]: one bit per bucket
	Frequency time.Duration // f: how often clients answer
	Window    time.Duration // w: sliding window length
	Slide     time.Duration // δ: sliding interval
	Inverted  bool          // §3.3.2 query inversion flag
}

// Validate checks structural sanity: non-empty SQL, at least one bucket,
// positive timing parameters, and a window no shorter than the slide.
func (q *Query) Validate() error {
	if q.SQL == "" {
		return fmt.Errorf("%w: empty SQL", ErrInvalidQuery)
	}
	if len(q.Buckets) == 0 {
		return fmt.Errorf("%w: no answer buckets", ErrInvalidQuery)
	}
	if q.Frequency <= 0 {
		return fmt.Errorf("%w: frequency %v", ErrInvalidQuery, q.Frequency)
	}
	if q.Window <= 0 || q.Slide <= 0 {
		return fmt.Errorf("%w: window %v slide %v", ErrInvalidQuery, q.Window, q.Slide)
	}
	if q.Slide > q.Window {
		return fmt.Errorf("%w: slide %v exceeds window %v", ErrInvalidQuery, q.Slide, q.Window)
	}
	return nil
}

// Invert returns a copy with the inversion flag toggled (paper §3.3.2):
// the analyst flips a low-utility query into its complement, counting
// truthful "No" answers instead.
func (q *Query) Invert() *Query {
	out := *q
	out.Inverted = !q.Inverted
	return &out
}

// EpochOf maps an event time to the query's epoch number: epochs advance
// every Frequency starting from the epochStart origin.
func (q *Query) EpochOf(origin, at time.Time) uint64 {
	if at.Before(origin) {
		return 0
	}
	return uint64(at.Sub(origin) / q.Frequency)
}

// signingPayload serializes the fields covered by the analyst signature.
// Buckets are covered through their labels; timing is in nanoseconds.
func (q *Query) signingPayload() []byte {
	var buf []byte
	appendString := func(s string) {
		var l [4]byte
		binary.BigEndian.PutUint32(l[:], uint32(len(s)))
		buf = append(buf, l[:]...)
		buf = append(buf, s...)
	}
	appendString(q.QID.Analyst)
	var serial [8]byte
	binary.BigEndian.PutUint64(serial[:], q.QID.Serial)
	buf = append(buf, serial[:]...)
	appendString(q.SQL)
	var n [4]byte
	binary.BigEndian.PutUint32(n[:], uint32(len(q.Buckets)))
	buf = append(buf, n[:]...)
	for _, b := range q.Buckets {
		appendString(b.Label())
	}
	var timing [24]byte
	binary.BigEndian.PutUint64(timing[0:8], uint64(q.Frequency))
	binary.BigEndian.PutUint64(timing[8:16], uint64(q.Window))
	binary.BigEndian.PutUint64(timing[16:24], uint64(q.Slide))
	buf = append(buf, timing[:]...)
	if q.Inverted {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	return buf
}

// Signed is a query plus the analyst's ed25519 signature, giving the
// paper's non-repudiation property: clients verify the query really came
// from the claimed analyst before answering.
type Signed struct {
	Query     *Query
	Signature []byte
}

// Sign validates and signs the query with the analyst's private key.
func Sign(q *Query, key ed25519.PrivateKey) (*Signed, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if len(key) != ed25519.PrivateKeySize {
		return nil, fmt.Errorf("%w: bad private key size %d", ErrInvalidQuery, len(key))
	}
	return &Signed{Query: q, Signature: ed25519.Sign(key, q.signingPayload())}, nil
}

// Verify checks the signature against the analyst's public key.
func (s *Signed) Verify(pub ed25519.PublicKey) error {
	if len(pub) != ed25519.PublicKeySize {
		return fmt.Errorf("%w: bad public key size %d", ErrBadSignature, len(pub))
	}
	if !ed25519.Verify(pub, s.Query.signingPayload(), s.Signature) {
		return ErrBadSignature
	}
	return nil
}
