// Package query implements PrivApprox's query model (paper §2.2, §3.1):
// an analyst-signed streaming SQL query whose per-client answer is an
// n-bit histogram bucket vector, executed periodically as a sliding
// window computation. Buckets cover numeric ranges for numeric queries
// and regular-expression matching rules for non-numeric queries.
package query

import (
	"errors"
	"fmt"
	"math"
	"regexp"
	"strconv"
)

// ErrBucket reports an invalid bucket specification.
var ErrBucket = errors.New("query: invalid bucket")

// Bucket decides whether a query answer value falls into one histogram
// bucket. Numeric buckets receive the value parsed as float64;
// non-numeric buckets receive the raw string.
type Bucket interface {
	// Match reports whether the value belongs to this bucket.
	Match(value string) bool
	// Label returns a human-readable description for result tables.
	Label() string
}

// RangeBucket matches numeric values in the half-open interval [Lo, Hi).
// Use math.Inf for open endpoints, e.g. [10, +Inf) for the paper's
// "10+ miles" taxi bucket.
type RangeBucket struct {
	Lo, Hi float64
}

// Match parses value as a float and tests Lo ≤ v < Hi.
func (b RangeBucket) Match(value string) bool {
	v, err := strconv.ParseFloat(value, 64)
	if err != nil {
		return false
	}
	return v >= b.Lo && v < b.Hi
}

// Label renders the interval.
func (b RangeBucket) Label() string {
	switch {
	case math.IsInf(b.Hi, 1):
		return fmt.Sprintf("[%g,+inf)", b.Lo)
	case math.IsInf(b.Lo, -1):
		return fmt.Sprintf("(-inf,%g)", b.Hi)
	default:
		return fmt.Sprintf("[%g,%g)", b.Lo, b.Hi)
	}
}

// PatternBucket matches string values against a compiled regular
// expression — the paper's "matching rule" for non-numeric queries.
type PatternBucket struct {
	re    *regexp.Regexp
	label string
}

// NewPatternBucket compiles the pattern.
func NewPatternBucket(pattern string) (*PatternBucket, error) {
	re, err := regexp.Compile(pattern)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBucket, err)
	}
	return &PatternBucket{re: re, label: pattern}, nil
}

// Match runs the regular expression against the raw value.
func (b *PatternBucket) Match(value string) bool { return b.re.MatchString(value) }

// Label returns the source pattern.
func (b *PatternBucket) Label() string { return b.label }

// Buckets is an ordered bucket set defining the answer format A[n].
type Buckets []Bucket

// UniformRanges builds n equal-width numeric buckets covering [lo, hi),
// optionally appending a final [hi, +Inf) overflow bucket.
func UniformRanges(lo, hi float64, n int, overflow bool) (Buckets, error) {
	if n <= 0 || hi <= lo || math.IsNaN(lo) || math.IsNaN(hi) {
		return nil, fmt.Errorf("%w: %d ranges over [%g,%g)", ErrBucket, n, lo, hi)
	}
	width := (hi - lo) / float64(n)
	out := make(Buckets, 0, n+1)
	for i := 0; i < n; i++ {
		out = append(out, RangeBucket{Lo: lo + float64(i)*width, Hi: lo + float64(i+1)*width})
	}
	if overflow {
		out = append(out, RangeBucket{Lo: hi, Hi: math.Inf(1)})
	}
	return out, nil
}

// Index returns the first bucket matching value, or -1 when none match.
func (bs Buckets) Index(value string) int {
	for i, b := range bs {
		if b.Match(value) {
			return i
		}
	}
	return -1
}

// Labels returns the per-bucket labels in order.
func (bs Buckets) Labels() []string {
	out := make([]string, len(bs))
	for i, b := range bs {
		out[i] = b.Label()
	}
	return out
}
