package query

import (
	"crypto/ed25519"
	"crypto/rand"
	"math"
	"testing"
	"time"
)

func taxiBuckets(t *testing.T) Buckets {
	t.Helper()
	bs, err := UniformRanges(0, 10, 10, true)
	if err != nil {
		t.Fatal(err)
	}
	return bs
}

func validQuery(t *testing.T) *Query {
	t.Helper()
	return &Query{
		QID:       ID{Analyst: "alice", Serial: 7},
		SQL:       "SELECT distance FROM rides",
		Buckets:   taxiBuckets(t),
		Frequency: time.Second,
		Window:    10 * time.Minute,
		Slide:     time.Minute,
	}
}

func TestRangeBucket(t *testing.T) {
	b := RangeBucket{Lo: 1, Hi: 2}
	cases := map[string]bool{
		"1":    true,
		"1.99": true,
		"2":    false, // half-open
		"0.99": false,
		"abc":  false,
	}
	for in, want := range cases {
		if got := b.Match(in); got != want {
			t.Errorf("Match(%q) = %v, want %v", in, got, want)
		}
	}
	if b.Label() != "[1,2)" {
		t.Errorf("Label = %q", b.Label())
	}
	inf := RangeBucket{Lo: 10, Hi: math.Inf(1)}
	if !inf.Match("1000000") {
		t.Error("overflow bucket should match large values")
	}
	if inf.Label() != "[10,+inf)" {
		t.Errorf("Label = %q", inf.Label())
	}
	neg := RangeBucket{Lo: math.Inf(-1), Hi: 0}
	if neg.Label() != "(-inf,0)" {
		t.Errorf("Label = %q", neg.Label())
	}
}

func TestPatternBucket(t *testing.T) {
	b, err := NewPatternBucket(`^San Francisco$`)
	if err != nil {
		t.Fatal(err)
	}
	if !b.Match("San Francisco") || b.Match("San Jose") {
		t.Error("pattern matching wrong")
	}
	if b.Label() != "^San Francisco$" {
		t.Errorf("Label = %q", b.Label())
	}
	if _, err := NewPatternBucket("("); err == nil {
		t.Error("expected error for bad regexp")
	}
}

func TestUniformRanges(t *testing.T) {
	bs, err := UniformRanges(0, 10, 10, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(bs) != 11 {
		t.Fatalf("len = %d, want 11", len(bs))
	}
	// The paper's taxi example: 0.5 miles → bucket 0; 9.9 → bucket 9;
	// 10+ → overflow bucket 10.
	if got := bs.Index("0.5"); got != 0 {
		t.Errorf("Index(0.5) = %d", got)
	}
	if got := bs.Index("9.9"); got != 9 {
		t.Errorf("Index(9.9) = %d", got)
	}
	if got := bs.Index("15"); got != 10 {
		t.Errorf("Index(15) = %d", got)
	}
	if got := bs.Index("-1"); got != -1 {
		t.Errorf("Index(-1) = %d, want -1", got)
	}
	if got := len(bs.Labels()); got != 11 {
		t.Errorf("Labels len = %d", got)
	}
	if _, err := UniformRanges(5, 5, 3, false); err == nil {
		t.Error("expected error for empty range")
	}
	if _, err := UniformRanges(0, 1, 0, false); err == nil {
		t.Error("expected error for zero buckets")
	}
}

func TestQueryValidate(t *testing.T) {
	q := validQuery(t)
	if err := q.Validate(); err != nil {
		t.Fatalf("valid query rejected: %v", err)
	}
	broken := []func(*Query){
		func(q *Query) { q.SQL = "" },
		func(q *Query) { q.Buckets = nil },
		func(q *Query) { q.Frequency = 0 },
		func(q *Query) { q.Window = 0 },
		func(q *Query) { q.Slide = 0 },
		func(q *Query) { q.Slide = q.Window + 1 },
	}
	for i, mutate := range broken {
		q := validQuery(t)
		mutate(q)
		if err := q.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestIDStringAndHash(t *testing.T) {
	id := ID{Analyst: "alice", Serial: 42}
	if id.String() != "alice:42" {
		t.Errorf("String = %q", id.String())
	}
	other := ID{Analyst: "alice", Serial: 43}
	if id.Uint64() == other.Uint64() {
		t.Error("different serials should hash differently")
	}
	if id.Uint64() != (ID{Analyst: "alice", Serial: 42}).Uint64() {
		t.Error("hash must be deterministic")
	}
}

func TestInvertToggles(t *testing.T) {
	q := validQuery(t)
	inv := q.Invert()
	if !inv.Inverted || q.Inverted {
		t.Error("Invert should toggle a copy only")
	}
	if back := inv.Invert(); back.Inverted {
		t.Error("double inversion should restore")
	}
}

func TestEpochOf(t *testing.T) {
	q := validQuery(t)
	origin := time.Unix(1000, 0)
	if got := q.EpochOf(origin, origin); got != 0 {
		t.Errorf("epoch at origin = %d", got)
	}
	if got := q.EpochOf(origin, origin.Add(2500*time.Millisecond)); got != 2 {
		t.Errorf("epoch at +2.5s = %d, want 2", got)
	}
	if got := q.EpochOf(origin, origin.Add(-time.Hour)); got != 0 {
		t.Errorf("epoch before origin = %d, want 0", got)
	}
}

func TestSignVerify(t *testing.T) {
	pub, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	signed, err := Sign(validQuery(t), priv)
	if err != nil {
		t.Fatal(err)
	}
	if err := signed.Verify(pub); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	// Any field tamper must break the signature.
	signed.Query.SQL = "SELECT speed FROM rides"
	if err := signed.Verify(pub); err == nil {
		t.Error("tampered SQL accepted")
	}
	signed.Query.SQL = "SELECT distance FROM rides"
	signed.Query.Inverted = true
	if err := signed.Verify(pub); err == nil {
		t.Error("tampered inversion flag accepted")
	}
	signed.Query.Inverted = false
	if err := signed.Verify(pub); err != nil {
		t.Error("restored query should verify again")
	}
	// Wrong key.
	otherPub, _, _ := ed25519.GenerateKey(rand.Reader)
	if err := signed.Verify(otherPub); err == nil {
		t.Error("wrong public key accepted")
	}
	if err := signed.Verify(nil); err == nil {
		t.Error("nil public key accepted")
	}
}

func TestSignRejectsInvalid(t *testing.T) {
	_, priv, _ := ed25519.GenerateKey(rand.Reader)
	q := validQuery(t)
	q.SQL = ""
	if _, err := Sign(q, priv); err == nil {
		t.Error("expected validation error")
	}
	if _, err := Sign(validQuery(t), nil); err == nil {
		t.Error("expected bad-key error")
	}
}
