package pubsub

import (
	"bytes"
	"errors"
	"testing"
)

// colMsgs builds count uniform-stride messages with distinct keys and
// values for columnar tests.
func colMsgs(count, keyLen, valLen int) []Message {
	msgs := make([]Message, count)
	for i := range msgs {
		key := make([]byte, keyLen)
		val := make([]byte, valLen)
		for j := range key {
			key[j] = byte(i*31 + j)
		}
		for j := range val {
			val[j] = byte(i*17 + j + 1)
		}
		msgs[i] = Message{Key: key, Value: val}
	}
	return msgs
}

// fetchAll drains every partition of a broker topic.
func fetchAll(t *testing.T, b *Broker, topic string) [][]Record {
	t.Helper()
	n, err := b.Partitions(topic)
	if err != nil {
		t.Fatal(err)
	}
	out := make([][]Record, n)
	for p := 0; p < n; p++ {
		recs, err := b.Fetch(topic, p, 0, 1<<20)
		if err != nil {
			t.Fatal(err)
		}
		out[p] = recs
	}
	return out
}

// sameRecords compares two per-partition record sets on key, value,
// partition, and offset (timestamps differ across publishes).
func sameRecords(t *testing.T, got, want [][]Record) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("partition counts diverge: %d vs %d", len(got), len(want))
	}
	for p := range want {
		if len(got[p]) != len(want[p]) {
			t.Fatalf("partition %d: %d records vs %d", p, len(got[p]), len(want[p]))
		}
		for i := range want[p] {
			g, w := got[p][i], want[p][i]
			if !bytes.Equal(g.Key, w.Key) || !bytes.Equal(g.Value, w.Value) ||
				g.Partition != w.Partition || g.Offset != w.Offset {
				t.Fatalf("partition %d record %d: %+v vs %+v", p, i, g, w)
			}
		}
	}
}

// TestBrokerPublishColumnsMatchesPublishBatch: the columnar publish must
// be observationally identical to the row publish — same routing, same
// per-record results, same stored records.
func TestBrokerPublishColumnsMatchesPublishBatch(t *testing.T) {
	msgs := colMsgs(23, 16, 21)
	cols, err := appendColumns(msgs)
	if err != nil {
		t.Fatal(err)
	}

	rowB := newTestBroker(t, "answers")
	colB := newTestBroker(t, "answers")
	rowRes, err := rowB.PublishBatch("answers", msgs)
	if err != nil {
		t.Fatal(err)
	}
	colRes, err := colB.PublishColumns("answers", cols)
	if err != nil {
		t.Fatal(err)
	}
	if len(rowRes) != len(colRes) {
		t.Fatalf("result counts diverge: %d vs %d", len(rowRes), len(colRes))
	}
	for i := range rowRes {
		if rowRes[i] != colRes[i] {
			t.Fatalf("record %d landed at %+v columnar vs %+v row", i, colRes[i], rowRes[i])
		}
	}
	sameRecords(t, fetchAll(t, colB, "answers"), fetchAll(t, rowB, "answers"))

	// Records fetched from the columnar path must be deep copies: mutating
	// them cannot corrupt the shared lane copy backing sibling records.
	recs := fetchAll(t, colB, "answers")
	for _, p := range recs {
		for i := range p {
			for j := range p[i].Value {
				p[i].Value[j] = 0xee
			}
		}
	}
	sameRecords(t, fetchAll(t, colB, "answers"), fetchAll(t, rowB, "answers"))
}

// TestBrokerPublishColumnsAllOrNothing: a columnar batch overflowing any
// target partition is refused whole — no partial append, full rejection
// accounting.
func TestBrokerPublishColumnsAllOrNothing(t *testing.T) {
	b := newTestBroker(t, "answers")
	if err := b.SetTopicCapacity("answers", 4); err != nil {
		t.Fatal(err)
	}
	msgs := colMsgs(30, 8, 8)
	cols, err := appendColumns(msgs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.PublishColumns("answers", cols); !errors.Is(err, ErrPartitionFull) {
		t.Fatalf("oversized batch: %v", err)
	}
	for p, recs := range fetchAll(t, b, "answers") {
		if len(recs) != 0 {
			t.Fatalf("partition %d holds %d records after refused batch", p, len(recs))
		}
	}
	small, err := appendColumns(msgs[:3])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.PublishColumns("answers", small); err != nil {
		t.Fatal(err)
	}
}

// TestColumnsValidate: lane geometry checks.
func TestColumnsValidate(t *testing.T) {
	for _, tc := range []struct {
		name string
		cols Columns
		ok   bool
	}{
		{"empty", Columns{}, true},
		{"valid", Columns{Count: 2, KeyLen: 1, ValLen: 2, Keys: []byte{1, 2}, Vals: []byte{1, 2, 3, 4}}, true},
		{"negative count", Columns{Count: -1}, false},
		{"zero key stride", Columns{Count: 1, ValLen: 1, Vals: []byte{1}}, false},
		{"zero val stride", Columns{Count: 1, KeyLen: 1, Keys: []byte{1}}, false},
		{"short key lane", Columns{Count: 2, KeyLen: 2, ValLen: 1, Keys: []byte{1}, Vals: []byte{1, 2}}, false},
		{"long val lane", Columns{Count: 1, KeyLen: 1, ValLen: 1, Keys: []byte{1}, Vals: []byte{1, 2}}, false},
	} {
		err := tc.cols.Validate()
		if tc.ok && err != nil {
			t.Errorf("%s: unexpected error %v", tc.name, err)
		}
		if !tc.ok && !errors.Is(err, ErrWire) {
			t.Errorf("%s: err=%v", tc.name, err)
		}
	}
}

// TestAppendColumnsMixedStride: the lane builder enforces the uniform
// stride columns require — a mixed-size batch is rejected before it can
// reach the wire.
func TestAppendColumnsMixedStride(t *testing.T) {
	msgs := colMsgs(3, 4, 4)
	msgs[2].Value = msgs[2].Value[:3]
	if _, err := appendColumns(msgs); !errors.Is(err, ErrWire) {
		t.Fatalf("mixed value stride: %v", err)
	}
	msgs = colMsgs(3, 4, 4)
	msgs[1].Key = append(msgs[1].Key, 9)
	if _, err := appendColumns(msgs); !errors.Is(err, ErrWire) {
		t.Fatalf("mixed key stride: %v", err)
	}
	cols, err := appendColumns(nil)
	if err != nil || cols.Count != 0 {
		t.Fatalf("empty batch: %+v, %v", cols, err)
	}
}

// TestClientPublishColumnsTCP: wire v2 end-to-end — the client probes
// features once, caches the v2 verdict, and the records a consumer sees
// are identical to the row-oriented path against a separate broker.
func TestClientPublishColumnsTCP(t *testing.T) {
	_, _, cli := startServer(t)
	if err := cli.CreateTopic("answers", 4); err != nil {
		t.Fatal(err)
	}
	mask, err := cli.Features()
	if err != nil {
		t.Fatal(err)
	}
	if mask&featureColumnarV2 == 0 {
		t.Fatalf("server mask %x lacks columnar bit", mask)
	}
	msgs := colMsgs(19, 16, 22)
	cols, err := appendColumns(msgs)
	if err != nil {
		t.Fatal(err)
	}
	res, err := cli.PublishColumns("answers", cols)
	if err != nil {
		t.Fatal(err)
	}
	if got := cli.features.Load(); got != featV2 {
		t.Fatalf("negotiation cached %d, want featV2", got)
	}

	refB := newTestBroker(t, "answers")
	refRes, err := refB.PublishBatch("answers", msgs)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != len(refRes) {
		t.Fatalf("%d results vs %d", len(res), len(refRes))
	}
	for i := range res {
		if res[i] != refRes[i] {
			t.Fatalf("record %d landed at %+v over v2 vs %+v in-process", i, res[i], refRes[i])
		}
	}
	for p := 0; p < 4; p++ {
		got, err := cli.Fetch("answers", p, 0, 1<<20, 0)
		if err != nil {
			t.Fatal(err)
		}
		want, err := refB.Fetch("answers", p, 0, 1<<20)
		if err != nil {
			t.Fatal(err)
		}
		sameRecords(t, [][]Record{got}, [][]Record{want})
	}
}

// TestClientPublishColumnsLegacyFallback: against a v1-only server the
// feature probe fails with the wire error, the client caches the v1
// verdict, and PublishColumns transparently degrades to PublishBatch —
// same records, same results, no v2 frame ever accepted.
func TestClientPublishColumnsLegacyFallback(t *testing.T) {
	b := NewBroker()
	srv, err := Serve(b, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv.legacyV1 = true
	t.Cleanup(func() { srv.Close() })
	cli, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cli.Close() })

	if err := cli.CreateTopic("answers", 4); err != nil {
		t.Fatal(err)
	}
	if _, err := cli.Features(); !errors.Is(err, ErrWire) {
		t.Fatalf("v1 server feature probe: %v", err)
	}
	msgs := colMsgs(19, 16, 22)
	cols, err := appendColumns(msgs)
	if err != nil {
		t.Fatal(err)
	}
	res, err := cli.PublishColumns("answers", cols)
	if err != nil {
		t.Fatal(err)
	}
	if got := cli.features.Load(); got != featV1Only {
		t.Fatalf("negotiation cached %d, want featV1Only", got)
	}

	refB := newTestBroker(t, "answers")
	refRes, err := refB.PublishBatch("answers", msgs)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != len(refRes) {
		t.Fatalf("%d results vs %d", len(res), len(refRes))
	}
	for i := range res {
		if res[i] != refRes[i] {
			t.Fatalf("record %d landed at %+v via fallback vs %+v in-process", i, res[i], refRes[i])
		}
	}
	sameRecords(t, fetchAll(t, b, "answers"), fetchAll(t, refB, "answers"))
}

// FuzzFrameV2RoundTrip drives the server-side wire-v2 decoder two ways:
// arbitrary bytes must never panic (only answer with a status frame),
// and well-formed frames built from fuzzed geometry must round-trip —
// the decoded batch lands exactly as an in-process PublishColumns of the
// same lanes.
func FuzzFrameV2RoundTrip(f *testing.F) {
	// A valid two-record frame as a seed.
	seedMsgs := colMsgs(2, 3, 4)
	seedCols, err := appendColumns(seedMsgs)
	if err != nil {
		f.Fatal(err)
	}
	var e enc
	e.str("answers")
	e.uint32(uint32(seedCols.Count))
	e.uint32(uint32(seedCols.KeyLen))
	e.uint32(uint32(seedCols.ValLen))
	e.bytes(seedCols.Keys)
	e.bytes(seedCols.Vals)
	f.Add(e.buf)
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	// A lying header: count claims more records than the lanes hold.
	var lie enc
	lie.str("answers")
	lie.uint32(1 << 30)
	lie.uint32(3)
	lie.uint32(4)
	lie.bytes(seedCols.Keys)
	lie.bytes(seedCols.Vals)
	f.Add(lie.buf)

	f.Fuzz(func(t *testing.T, data []byte) {
		// Arbitrary payload bytes through the v2 handler: must not panic,
		// must always produce a status frame. A dedicated broker, because
		// a fuzz input that happens to be a valid frame lands for real.
		chaos := NewBroker()
		if err := chaos.CreateTopic("answers", 3); err != nil {
			t.Fatal(err)
		}
		resp := (&Server{broker: chaos}).handle(append([]byte{opPublishBatchV2}, data...))
		if len(resp) == 0 {
			t.Fatal("v2 handler returned an empty response")
		}

		b := NewBroker()
		if err := b.CreateTopic("answers", 3); err != nil {
			t.Fatal(err)
		}
		s := &Server{broker: b}

		// Structured round trip: reinterpret the fuzz input as lane
		// geometry plus lane bytes and build a well-formed frame.
		if len(data) < 3 {
			return
		}
		keyLen := int(data[0]%8) + 1
		valLen := int(data[1]%8) + 1
		count := int(data[2] % 16)
		lanes := data[3:]
		if len(lanes) < count*(keyLen+valLen) {
			count = len(lanes) / (keyLen + valLen)
		}
		cols := Columns{
			Count:  count,
			KeyLen: keyLen,
			ValLen: valLen,
			Keys:   lanes[:count*keyLen],
			Vals:   lanes[count*keyLen : count*(keyLen+valLen)],
		}
		if err := cols.Validate(); err != nil {
			t.Fatalf("fuzz-built columns invalid: %v", err)
		}
		var e enc
		e.byte(opPublishBatchV2)
		e.str("answers")
		e.uint32(uint32(cols.Count))
		e.uint32(uint32(cols.KeyLen))
		e.uint32(uint32(cols.ValLen))
		e.bytes(cols.Keys)
		e.bytes(cols.Vals)
		resp = s.handle(e.buf)
		if len(resp) < 1 || resp[0] != 0 {
			t.Fatalf("well-formed v2 frame rejected: % x", resp)
		}
		d := &dec{buf: resp[1:]}
		got, err := d.uint32()
		if err != nil || int(got) != count {
			t.Fatalf("acked %d of %d records (err=%v)", got, count, err)
		}

		// The wire path must agree with the in-process columnar publish.
		ref := NewBroker()
		if err := ref.CreateTopic("answers", 3); err != nil {
			t.Fatal(err)
		}
		refRes, err := ref.PublishColumns("answers", cols)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < count; i++ {
			part, err1 := d.uint32()
			off, err2 := d.uint64()
			if err1 != nil || err2 != nil {
				t.Fatalf("short result list at %d", i)
			}
			if int(part) != refRes[i].Partition || int64(off) != refRes[i].Offset {
				t.Fatalf("record %d: wire (%d,%d) vs in-process %+v", i, part, off, refRes[i])
			}
		}
		sameRecords(t, fetchAll(t, b, "answers"), fetchAll(t, ref, "answers"))
	})
}
