package pubsub

import (
	"errors"
	"sort"
	"sync"
	"time"
)

// Registry is the Zookeeper stand-in: a membership service brokers
// register with and heartbeat against. Members that miss heartbeats past
// the TTL are expired; the member with the smallest ID acts as leader
// (Kafka's controller-election role).
type Registry struct {
	mu      sync.Mutex
	ttl     time.Duration
	members map[string]memberState
	now     func() time.Time // injectable clock for tests
}

type memberState struct {
	addr     string
	lastBeat time.Time
}

// ErrUnknownMember reports a heartbeat from an unregistered member.
var ErrUnknownMember = errors.New("pubsub: unknown member")

// Member is a registered broker.
type Member struct {
	ID   string
	Addr string
}

// NewRegistry returns a registry expiring members after ttl without a
// heartbeat.
func NewRegistry(ttl time.Duration) *Registry {
	return &Registry{
		ttl:     ttl,
		members: make(map[string]memberState),
		now:     time.Now,
	}
}

// Register adds or refreshes a member.
func (r *Registry) Register(id, addr string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.members[id] = memberState{addr: addr, lastBeat: r.now()}
}

// Heartbeat refreshes a member's lease.
func (r *Registry) Heartbeat(id string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	m, ok := r.members[id]
	if !ok {
		return ErrUnknownMember
	}
	m.lastBeat = r.now()
	r.members[id] = m
	return nil
}

// Deregister removes a member immediately.
func (r *Registry) Deregister(id string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.members, id)
}

// Members returns live members sorted by ID, expiring stale ones.
func (r *Registry) Members() []Member {
	r.mu.Lock()
	defer r.mu.Unlock()
	cutoff := r.now().Add(-r.ttl)
	var out []Member
	for id, m := range r.members {
		if m.lastBeat.Before(cutoff) {
			delete(r.members, id)
			continue
		}
		out = append(out, Member{ID: id, Addr: m.addr})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Leader returns the live member with the smallest ID, or false when the
// registry is empty.
func (r *Registry) Leader() (Member, bool) {
	ms := r.Members()
	if len(ms) == 0 {
		return Member{}, false
	}
	return ms[0], true
}
