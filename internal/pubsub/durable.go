package pubsub

import (
	"encoding/binary"
	"errors"
	"fmt"
	"path/filepath"
	"time"

	"privapprox/internal/wal"
)

// ErrDurable reports a malformed journal record or data directory.
var ErrDurable = errors.New("pubsub: durable broker")

// Meta-journal record types.
const (
	metaTopic  = byte(0x01) // topic created: topic, partitions
	metaCommit = byte(0x02) // consumer commit: group, topic, partition, offset
)

// durability is a broker's connection to its data directory: one meta
// WAL journaling topic creation and consumer-group commits, plus one WAL
// per partition (held by the partitionLog) journaling published records.
// Meta appends are serialized by the broker mutex every caller already
// holds.
type durability struct {
	dir  string
	opts wal.Options
	meta *wal.Log
}

// OpenBroker opens (or creates) a durable broker rooted at dir: topics,
// partition contents, and consumer-group offsets are journaled to
// write-ahead logs under dir and replayed on the next OpenBroker, so a
// killed broker restarts with every acknowledged record and commit
// intact. opts sets the fsync policy and segment size; the retention
// limits are ignored for broker logs, because partition offsets are
// dense from zero and truncating a log's head would orphan them.
func OpenBroker(dir string, opts wal.Options) (*Broker, error) {
	if dir == "" {
		return nil, fmt.Errorf("%w: empty data directory", ErrDurable)
	}
	// See the doc comment: head truncation would break offset addressing.
	opts.RetainBytes = 0
	opts.RetainAge = 0
	meta, err := wal.Open(filepath.Join(dir, "meta"), opts)
	if err != nil {
		return nil, err
	}
	b := NewBroker()
	b.dur = &durability{dir: dir, opts: opts, meta: meta}
	if err := b.replayMeta(); err != nil {
		// Close every partition WAL replay managed to open (and its
		// PolicyInterval sync goroutine) before reporting the failure,
		// so a supervisor retrying OpenBroker doesn't leak handles.
		for _, t := range b.topics {
			for _, p := range t.partitions {
				if p.w != nil {
					p.w.Close()
				}
			}
		}
		meta.Close()
		return nil, err
	}
	return b, nil
}

// DataDir returns the broker's data directory, empty for an in-memory
// broker.
func (b *Broker) DataDir() string {
	if b.dur == nil {
		return ""
	}
	return b.dur.dir
}

// replayMeta rebuilds topics and committed offsets from the meta
// journal, loading each re-created partition from its own WAL.
func (b *Broker) replayMeta() error {
	return b.dur.meta.Replay(0, func(_ uint64, payload []byte) error {
		if len(payload) == 0 {
			return fmt.Errorf("%w: empty meta record", ErrDurable)
		}
		switch payload[0] {
		case metaTopic:
			topic, partitions, err := decodeMetaTopic(payload)
			if err != nil {
				return err
			}
			return b.restoreTopic(topic, partitions)
		case metaCommit:
			group, topic, partition, offset, err := decodeMetaCommit(payload)
			if err != nil {
				return err
			}
			// Commits replay in journal order; the monotonic rule makes
			// the restored value the newest committed offset.
			gt, ok := b.offsets[group]
			if !ok {
				gt = make(map[string]map[int]int64)
				b.offsets[group] = gt
			}
			tp, ok := gt[topic]
			if !ok {
				tp = make(map[int]int64)
				gt[topic] = tp
			}
			if offset > tp[partition] {
				tp[partition] = offset
			}
			return nil
		default:
			return fmt.Errorf("%w: unknown meta record %#x", ErrDurable, payload[0])
		}
	})
}

// restoreTopic re-creates one topic from its partition WALs.
func (b *Broker) restoreTopic(name string, partitions int) error {
	if _, ok := b.topics[name]; ok {
		// A re-journaled create (crash between journal and WAL setup on
		// an earlier life) is idempotent.
		return nil
	}
	t := &topicLog{name: name, partitions: make([]*partitionLog, partitions)}
	closeOpened := func(upTo int) {
		for _, p := range t.partitions[:upTo] {
			p.w.Close()
		}
	}
	for i := range t.partitions {
		p := newPartitionLog()
		w, err := b.dur.openPartitionWAL(name, i)
		if err != nil {
			closeOpened(i)
			return err
		}
		p.w = w
		err = w.Replay(0, func(lsn uint64, payload []byte) error {
			ts, key, value, pid, seq, err := decodePartitionRecord(payload)
			if err != nil {
				return err
			}
			if int64(lsn) != int64(len(p.records)) {
				return fmt.Errorf("%w: %s/%d: lsn %d for offset %d", ErrDurable, name, i, lsn, len(p.records))
			}
			offset := int64(len(p.records))
			if pid != 0 {
				// Rebuild the session-dedup slot from the record's own tag:
				// a slice's records replay contiguously, so same-(pid, seq)
				// records extend the slot and a newer sequence restarts it.
				if slot, ok := p.producers[pid]; ok && slot.seq == seq {
					slot.count++
					p.producers[pid] = slot
				} else {
					p.recordSlice(pid, seq, offset, 1)
				}
			}
			p.records = append(p.records, Record{
				Topic:     name,
				Partition: i,
				Offset:    offset,
				Key:       key,
				Value:     value,
				Timestamp: ts,
			})
			return nil
		})
		if err != nil {
			w.Close()
			closeOpened(i)
			return err
		}
		t.partitions[i] = p
	}
	b.topics[name] = t
	return nil
}

// validTopicName restricts durable topic names to characters that are
// safe as directory names.
func validTopicName(name string) bool {
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '_', r == '-':
		default:
			return false
		}
	}
	return name != "" && name != "." && name != ".."
}

func (d *durability) openPartitionWAL(topic string, partition int) (*wal.Log, error) {
	if !validTopicName(topic) {
		return nil, fmt.Errorf("%w: topic %q is not a valid directory name", ErrDurable, topic)
	}
	return wal.Open(filepath.Join(d.dir, "topic-"+topic, fmt.Sprintf("p%04d", partition)), d.opts)
}

// journalTopic records a topic creation. Callers hold the broker mutex,
// which serializes meta appends.
func (d *durability) journalTopic(topic string, partitions int) error {
	if !validTopicName(topic) {
		return fmt.Errorf("%w: topic %q is not a valid directory name", ErrDurable, topic)
	}
	buf := []byte{metaTopic}
	buf = appendLenBytes(buf, []byte(topic))
	buf = binary.BigEndian.AppendUint32(buf, uint32(partitions))
	_, err := d.meta.Append(buf)
	return err
}

// journalCommit records a consumer-group commit. Callers hold the
// broker mutex.
func (d *durability) journalCommit(group, topic string, partition int, offset int64) error {
	buf := []byte{metaCommit}
	buf = appendLenBytes(buf, []byte(group))
	buf = appendLenBytes(buf, []byte(topic))
	buf = binary.BigEndian.AppendUint32(buf, uint32(partition))
	buf = binary.BigEndian.AppendUint64(buf, uint64(offset))
	_, err := d.meta.Append(buf)
	return err
}

func (d *durability) close() {
	d.meta.Close()
}

// appendPartitionRecord frames one published record for the partition
// WAL: u64 timestamp | u32 key length | key | value (the value's length
// is the frame remainder).
func appendPartitionRecord(buf []byte, ts time.Time, key, value []byte) []byte {
	buf = binary.BigEndian.AppendUint64(buf, uint64(ts.UnixNano()))
	buf = appendLenBytes(buf, key)
	return append(buf, value...)
}

// sessionTag marks a partition record published through a producer
// session: sessionTag | u64 producer id | u64 sequence, prefixed to the
// plain record framing. The tag byte is unambiguous against untagged
// records, whose first byte is the high byte of a big-endian UnixNano
// timestamp — 0xF5 there would be a nonsensical (negative, far-future)
// time no real publish produces. Journaling the tag with the record
// itself keeps dedup state and data in one atomic WAL unit: there is no
// ordering between "record durable" and "dedup state durable" to get
// wrong across a crash.
const sessionTag = byte(0xF5)

// sessionTagLen is the tagged prefix length: tag byte + pid + seq.
const sessionTagLen = 17

// appendSessionTag prefixes the session tag when pid is nonzero; plain
// publishes (pid 0) keep the v1 framing byte-for-byte.
func appendSessionTag(buf []byte, pid, seq uint64) []byte {
	if pid == 0 {
		return buf
	}
	buf = append(buf, sessionTag)
	buf = binary.BigEndian.AppendUint64(buf, pid)
	return binary.BigEndian.AppendUint64(buf, seq)
}

func decodePartitionRecord(payload []byte) (ts time.Time, key, value []byte, pid, seq uint64, err error) {
	if len(payload) > 0 && payload[0] == sessionTag {
		if len(payload) < sessionTagLen {
			return time.Time{}, nil, nil, 0, 0, fmt.Errorf("%w: %d-byte session tag", ErrDurable, len(payload))
		}
		pid = binary.BigEndian.Uint64(payload[1:9])
		seq = binary.BigEndian.Uint64(payload[9:17])
		if pid == 0 {
			return time.Time{}, nil, nil, 0, 0, fmt.Errorf("%w: session tag with zero producer id", ErrDurable)
		}
		payload = payload[sessionTagLen:]
	}
	if len(payload) < 12 {
		return time.Time{}, nil, nil, 0, 0, fmt.Errorf("%w: %d-byte partition record", ErrDurable, len(payload))
	}
	ts = time.Unix(0, int64(binary.BigEndian.Uint64(payload[0:8])))
	klen := binary.BigEndian.Uint32(payload[8:12])
	rest := payload[12:]
	if uint32(len(rest)) < klen {
		return time.Time{}, nil, nil, 0, 0, fmt.Errorf("%w: key length %d beyond record", ErrDurable, klen)
	}
	if klen > 0 {
		key = append([]byte(nil), rest[:klen]...)
	}
	value = append([]byte(nil), rest[klen:]...)
	return ts, key, value, pid, seq, nil
}

// journalBatch frames and appends one partition's slice of a publish
// batch as a single WAL batch (one write, one policy fsync). The caller
// holds the partition lock.
func journalBatch(p *partitionLog, now time.Time, msgs []Message, idxs []int, pid, seq uint64) error {
	tagLen := 0
	if pid != 0 {
		tagLen = sessionTagLen
	}
	total := 0
	for _, i := range idxs {
		total += tagLen + 12 + len(msgs[i].Key) + len(msgs[i].Value)
	}
	// Grow the scratch once up front: the per-record sub-slices handed
	// to AppendBatch must all point into the same backing array.
	if cap(p.encBuf) < total {
		p.encBuf = make([]byte, 0, total)
	}
	enc := p.encBuf[:0]
	payloads := make([][]byte, 0, len(idxs))
	for _, i := range idxs {
		start := len(enc)
		enc = appendSessionTag(enc, pid, seq)
		enc = appendPartitionRecord(enc, now, msgs[i].Key, msgs[i].Value)
		payloads = append(payloads, enc[start:len(enc):len(enc)])
	}
	p.encBuf = enc[:0]
	_, err := p.w.AppendBatch(payloads)
	return err
}

func appendLenBytes(buf, b []byte) []byte {
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(b)))
	return append(buf, b...)
}

func decodeMetaTopic(payload []byte) (topic string, partitions int, err error) {
	d := payload[1:]
	t, d, err := readLenBytes(d)
	if err != nil {
		return "", 0, err
	}
	if len(d) != 4 {
		return "", 0, fmt.Errorf("%w: malformed topic record", ErrDurable)
	}
	n := int(binary.BigEndian.Uint32(d))
	if n <= 0 {
		return "", 0, fmt.Errorf("%w: topic %q with %d partitions", ErrDurable, t, n)
	}
	return string(t), n, nil
}

func decodeMetaCommit(payload []byte) (group, topic string, partition int, offset int64, err error) {
	d := payload[1:]
	g, d, err := readLenBytes(d)
	if err != nil {
		return "", "", 0, 0, err
	}
	t, d, err := readLenBytes(d)
	if err != nil {
		return "", "", 0, 0, err
	}
	if len(d) != 12 {
		return "", "", 0, 0, fmt.Errorf("%w: malformed commit record", ErrDurable)
	}
	partition = int(binary.BigEndian.Uint32(d[0:4]))
	offset = int64(binary.BigEndian.Uint64(d[4:12]))
	return string(g), string(t), partition, offset, nil
}

func readLenBytes(d []byte) ([]byte, []byte, error) {
	if len(d) < 4 {
		return nil, nil, fmt.Errorf("%w: short meta record", ErrDurable)
	}
	n := binary.BigEndian.Uint32(d)
	d = d[4:]
	if uint32(len(d)) < n {
		return nil, nil, fmt.Errorf("%w: short meta record", ErrDurable)
	}
	return d[:n], d[n:], nil
}
