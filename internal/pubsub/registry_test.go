package pubsub

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// fakeClock is an injectable, manually advanced clock.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func newTestRegistry(ttl time.Duration) (*Registry, *fakeClock) {
	r := NewRegistry(ttl)
	c := &fakeClock{now: time.Unix(1_700_000_000, 0)}
	r.now = c.Now
	return r, c
}

func TestRegistryExpiresStaleMembers(t *testing.T) {
	r, clock := newTestRegistry(time.Second)
	r.Register("a", "addr-a")
	r.Register("b", "addr-b")

	// Heartbeats inside the TTL keep both alive.
	clock.Advance(600 * time.Millisecond)
	if err := r.Heartbeat("a"); err != nil {
		t.Fatal(err)
	}
	clock.Advance(600 * time.Millisecond)
	ms := r.Members()
	if len(ms) != 1 || ms[0].ID != "a" {
		t.Fatalf("members after b's lease lapsed = %+v, want [a]", ms)
	}

	// An expired member is really gone: its heartbeat now fails, and it
	// must re-register to return.
	if err := r.Heartbeat("b"); !errors.Is(err, ErrUnknownMember) {
		t.Fatalf("heartbeat for expired member: %v, want ErrUnknownMember", err)
	}
	r.Register("b", "addr-b2")
	ms = r.Members()
	if len(ms) != 2 || ms[1].Addr != "addr-b2" {
		t.Fatalf("re-registration did not revive b: %+v", ms)
	}

	// Everyone expires without heartbeats; leadership disappears.
	clock.Advance(2 * time.Second)
	if ms := r.Members(); len(ms) != 0 {
		t.Fatalf("members past TTL = %+v, want none", ms)
	}
	if _, ok := r.Leader(); ok {
		t.Fatal("expired registry still has a leader")
	}
}

func TestRegistryHeartbeatRefreshesLease(t *testing.T) {
	r, clock := newTestRegistry(time.Second)
	r.Register("a", "addr")
	for i := 0; i < 5; i++ {
		clock.Advance(900 * time.Millisecond)
		if err := r.Heartbeat("a"); err != nil {
			t.Fatalf("heartbeat %d: %v", i, err)
		}
	}
	// 4.5s of wall time but never a TTL-long silence: still a member.
	if ms := r.Members(); len(ms) != 1 {
		t.Fatalf("heartbeats failed to refresh the lease: %+v", ms)
	}
}

// TestRegistryConcurrentAccess hammers Register/Heartbeat/Deregister/
// Members/Leader from many goroutines; run under -race (the pubsub
// package is in the CI race gate) it proves the registry is ready to
// back broker failover.
func TestRegistryConcurrentAccess(t *testing.T) {
	r := NewRegistry(50 * time.Millisecond)
	const workers = 8
	const rounds = 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			id := fmt.Sprintf("m-%d", w)
			for i := 0; i < rounds; i++ {
				r.Register(id, "addr")
				if err := r.Heartbeat(id); err != nil && !errors.Is(err, ErrUnknownMember) {
					t.Errorf("heartbeat: %v", err)
					return
				}
				r.Members()
				r.Leader()
				if i%10 == 9 {
					r.Deregister(id)
				}
			}
			r.Register(id, "addr")
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	// Every worker re-registered at the end and nothing has expired at
	// a 50ms TTL within this in-process window... unless the scheduler
	// stalled; assert only sortedness and membership of survivors.
	ms := r.Members()
	for i := 1; i < len(ms); i++ {
		if ms[i-1].ID >= ms[i].ID {
			t.Fatalf("members unsorted: %+v", ms)
		}
	}
}
