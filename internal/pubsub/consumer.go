package pubsub

import (
	"fmt"
	"sort"
	"time"
)

// Consumer reads one or more topics on behalf of a consumer group,
// tracking in-memory positions and committing them to the broker on
// demand — the subset of Kafka's consumer API the aggregator needs. It
// works over any Transport, so the same consumer code drains an
// in-process broker or a remote TCP proxy.
type Consumer struct {
	t         Transport
	group     string
	positions map[string]map[int]int64 // topic → partition → next offset
	// closed, when non-nil, reports that the backing broker shut down;
	// PollWait uses it to stop instead of spinning until its deadline.
	closed func() bool
}

// NewConsumer subscribes a group member to an in-process broker's
// topics, resuming from the group's committed offsets.
func NewConsumer(b *Broker, group string, topics ...string) (*Consumer, error) {
	c, err := NewTransportConsumer(b, group, topics...)
	if err != nil {
		return nil, err
	}
	c.closed = b.isClosed
	return c, nil
}

// NewTransportConsumer subscribes a group member to the given topics
// over any Transport, resuming from the group's committed offsets.
func NewTransportConsumer(t Transport, group string, topics ...string) (*Consumer, error) {
	if group == "" {
		return nil, fmt.Errorf("pubsub: empty consumer group")
	}
	if len(topics) == 0 {
		return nil, fmt.Errorf("pubsub: no topics to subscribe")
	}
	c := &Consumer{t: t, group: group, positions: make(map[string]map[int]int64)}
	for _, topic := range topics {
		nparts, err := t.Partitions(topic)
		if err != nil {
			return nil, err
		}
		pos := make(map[int]int64, nparts)
		for p := 0; p < nparts; p++ {
			off, err := t.CommittedOffset(group, topic, p)
			if err != nil {
				return nil, err
			}
			pos[p] = off
		}
		c.positions[topic] = pos
	}
	return c, nil
}

// Poll returns up to max records across all subscribed partitions,
// advancing in-memory positions. It returns immediately with whatever is
// available; an empty slice means the consumer is caught up.
func (c *Consumer) Poll(max int) ([]Record, error) {
	if max <= 0 {
		return nil, fmt.Errorf("pubsub: non-positive poll size %d", max)
	}
	var out []Record
	for _, topic := range c.sortedTopics() {
		pos := c.positions[topic]
		for _, p := range sortedPartitions(pos) {
			if len(out) >= max {
				return out, nil
			}
			recs, err := c.t.FetchWait(topic, p, pos[p], max-len(out), 0)
			if err != nil {
				return nil, err
			}
			if len(recs) > 0 {
				pos[p] = recs[len(recs)-1].Offset + 1
				out = append(out, recs...)
			}
		}
	}
	return out, nil
}

// PollWait is Poll that blocks up to timeout for the first record.
// After an empty sweep it parks in a sliced blocking fetch on its
// first subscribed partition rather than spinning — over the TCP
// transport that is one round-trip per wait slice instead of one per
// partition per spin (a record arriving on another partition is picked
// up by the re-sweep after at most one slice).
func (c *Consumer) PollWait(max int, timeout time.Duration) ([]Record, error) {
	const slice = 20 * time.Millisecond
	deadline := time.Now().Add(timeout)
	for {
		recs, err := c.Poll(max)
		if err != nil || len(recs) > 0 {
			return recs, err
		}
		remain := time.Until(deadline)
		if remain <= 0 {
			return nil, nil
		}
		if c.closed != nil && c.closed() {
			return nil, ErrClosed
		}
		if remain > slice {
			remain = slice
		}
		topic := c.sortedTopics()[0]
		pos := c.positions[topic]
		p := sortedPartitions(pos)[0]
		recs, err = c.t.FetchWait(topic, p, pos[p], max, remain)
		if err != nil {
			return nil, err
		}
		if len(recs) > 0 {
			pos[p] = recs[len(recs)-1].Offset + 1
			return recs, nil
		}
	}
}

// Commit persists the current positions to the broker so another group
// member can resume after a failure.
func (c *Consumer) Commit() error {
	for topic, pos := range c.positions {
		for p, off := range pos {
			if err := c.t.CommitOffset(c.group, topic, p, off); err != nil {
				return err
			}
		}
	}
	return nil
}

// Lag returns the total number of unread records across subscriptions.
func (c *Consumer) Lag() (int64, error) {
	var lag int64
	for topic, pos := range c.positions {
		for p, off := range pos {
			end, err := c.t.EndOffset(topic, p)
			if err != nil {
				return 0, err
			}
			lag += end - off
		}
	}
	return lag, nil
}

func (c *Consumer) sortedTopics() []string {
	out := make([]string, 0, len(c.positions))
	for t := range c.positions {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

func sortedPartitions(pos map[int]int64) []int {
	out := make([]int, 0, len(pos))
	for p := range pos {
		out = append(out, p)
	}
	sort.Ints(out)
	return out
}
