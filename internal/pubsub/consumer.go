package pubsub

import (
	"fmt"
	"sort"
	"time"
)

// Consumer reads one or more topics on behalf of a consumer group,
// tracking in-memory positions and committing them to the broker on
// demand — the subset of Kafka's consumer API the aggregator needs.
type Consumer struct {
	broker    *Broker
	group     string
	positions map[string]map[int]int64 // topic → partition → next offset
}

// NewConsumer subscribes a group member to the given topics, resuming
// from the group's committed offsets.
func NewConsumer(b *Broker, group string, topics ...string) (*Consumer, error) {
	if group == "" {
		return nil, fmt.Errorf("pubsub: empty consumer group")
	}
	if len(topics) == 0 {
		return nil, fmt.Errorf("pubsub: no topics to subscribe")
	}
	c := &Consumer{broker: b, group: group, positions: make(map[string]map[int]int64)}
	for _, topic := range topics {
		nparts, err := b.Partitions(topic)
		if err != nil {
			return nil, err
		}
		pos := make(map[int]int64, nparts)
		for p := 0; p < nparts; p++ {
			off, err := b.CommittedOffset(group, topic, p)
			if err != nil {
				return nil, err
			}
			pos[p] = off
		}
		c.positions[topic] = pos
	}
	return c, nil
}

// Poll returns up to max records across all subscribed partitions,
// advancing in-memory positions. It returns immediately with whatever is
// available; an empty slice means the consumer is caught up.
func (c *Consumer) Poll(max int) ([]Record, error) {
	if max <= 0 {
		return nil, fmt.Errorf("pubsub: non-positive poll size %d", max)
	}
	var out []Record
	for _, topic := range c.sortedTopics() {
		pos := c.positions[topic]
		for _, p := range sortedPartitions(pos) {
			if len(out) >= max {
				return out, nil
			}
			recs, err := c.broker.Fetch(topic, p, pos[p], max-len(out))
			if err != nil {
				return nil, err
			}
			if len(recs) > 0 {
				pos[p] = recs[len(recs)-1].Offset + 1
				out = append(out, recs...)
			}
		}
	}
	return out, nil
}

// PollWait is Poll that blocks up to timeout for the first record.
func (c *Consumer) PollWait(max int, timeout time.Duration) ([]Record, error) {
	deadline := time.Now().Add(timeout)
	for {
		recs, err := c.Poll(max)
		if err != nil || len(recs) > 0 {
			return recs, err
		}
		if !time.Now().Before(deadline) {
			return nil, nil
		}
		if c.broker.isClosed() {
			return nil, ErrClosed
		}
		time.Sleep(200 * time.Microsecond)
	}
}

// Commit persists the current positions to the broker so another group
// member can resume after a failure.
func (c *Consumer) Commit() error {
	for topic, pos := range c.positions {
		for p, off := range pos {
			if err := c.broker.CommitOffset(c.group, topic, p, off); err != nil {
				return err
			}
		}
	}
	return nil
}

// Lag returns the total number of unread records across subscriptions.
func (c *Consumer) Lag() (int64, error) {
	var lag int64
	for topic, pos := range c.positions {
		for p, off := range pos {
			end, err := c.broker.EndOffset(topic, p)
			if err != nil {
				return 0, err
			}
			lag += end - off
		}
	}
	return lag, nil
}

func (c *Consumer) sortedTopics() []string {
	out := make([]string, 0, len(c.positions))
	for t := range c.positions {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

func sortedPartitions(pos map[int]int64) []int {
	out := make([]int, 0, len(pos))
	for p := range pos {
		out = append(out, p)
	}
	sort.Ints(out)
	return out
}
