package pubsub

import (
	"encoding/binary"
	"fmt"
	"sort"
	"time"
)

// Consumer reads one or more topics on behalf of a consumer group,
// tracking in-memory positions and committing them to the broker on
// demand — the subset of Kafka's consumer API the aggregator needs. It
// works over any Transport, so the same consumer code drains an
// in-process broker or a remote TCP proxy.
type Consumer struct {
	t         Transport
	group     string
	positions map[string]map[int]int64 // topic → partition → next offset
	// closed, when non-nil, reports that the backing broker shut down;
	// PollWait uses it to stop instead of spinning until its deadline.
	closed func() bool
}

// NewConsumer subscribes a group member to an in-process broker's
// topics, resuming from the group's committed offsets.
func NewConsumer(b *Broker, group string, topics ...string) (*Consumer, error) {
	c, err := NewTransportConsumer(b, group, topics...)
	if err != nil {
		return nil, err
	}
	c.closed = b.isClosed
	return c, nil
}

// NewTransportConsumer subscribes a group member to the given topics
// over any Transport, resuming from the group's committed offsets.
func NewTransportConsumer(t Transport, group string, topics ...string) (*Consumer, error) {
	if group == "" {
		return nil, fmt.Errorf("pubsub: empty consumer group")
	}
	if len(topics) == 0 {
		return nil, fmt.Errorf("pubsub: no topics to subscribe")
	}
	c := &Consumer{t: t, group: group, positions: make(map[string]map[int]int64)}
	for _, topic := range topics {
		nparts, err := t.Partitions(topic)
		if err != nil {
			return nil, err
		}
		pos := make(map[int]int64, nparts)
		for p := 0; p < nparts; p++ {
			off, err := t.CommittedOffset(group, topic, p)
			if err != nil {
				return nil, err
			}
			pos[p] = off
		}
		c.positions[topic] = pos
	}
	return c, nil
}

// Poll returns up to max records across all subscribed partitions,
// advancing in-memory positions. It returns immediately with whatever is
// available; an empty slice means the consumer is caught up.
func (c *Consumer) Poll(max int) ([]Record, error) {
	if max <= 0 {
		return nil, fmt.Errorf("pubsub: non-positive poll size %d", max)
	}
	var out []Record
	for _, topic := range c.sortedTopics() {
		pos := c.positions[topic]
		for _, p := range sortedPartitions(pos) {
			if len(out) >= max {
				return out, nil
			}
			recs, err := c.t.FetchWait(topic, p, pos[p], max-len(out), 0)
			if err != nil {
				return nil, err
			}
			if len(recs) > 0 {
				pos[p] = recs[len(recs)-1].Offset + 1
				out = append(out, recs...)
			}
		}
	}
	return out, nil
}

// PollWait is Poll that blocks up to timeout for the first record.
// After an empty sweep it parks in a sliced blocking fetch on its
// first subscribed partition rather than spinning — over the TCP
// transport that is one round-trip per wait slice instead of one per
// partition per spin (a record arriving on another partition is picked
// up by the re-sweep after at most one slice).
func (c *Consumer) PollWait(max int, timeout time.Duration) ([]Record, error) {
	const slice = 20 * time.Millisecond
	deadline := time.Now().Add(timeout)
	for {
		recs, err := c.Poll(max)
		if err != nil || len(recs) > 0 {
			return recs, err
		}
		remain := time.Until(deadline)
		if remain <= 0 {
			return nil, nil
		}
		if c.closed != nil && c.closed() {
			return nil, ErrClosed
		}
		if remain > slice {
			remain = slice
		}
		topic := c.sortedTopics()[0]
		pos := c.positions[topic]
		p := sortedPartitions(pos)[0]
		recs, err = c.t.FetchWait(topic, p, pos[p], max, remain)
		if err != nil {
			return nil, err
		}
		if len(recs) > 0 {
			pos[p] = recs[len(recs)-1].Offset + 1
			return recs, nil
		}
	}
}

// Positions returns a deep copy of the consumer's next-read offsets —
// the cut a checkpointer records alongside the state derived from
// everything below it.
func (c *Consumer) Positions() map[string]map[int]int64 {
	out := make(map[string]map[int]int64, len(c.positions))
	for topic, pos := range c.positions {
		tp := make(map[int]int64, len(pos))
		for p, off := range pos {
			tp[p] = off
		}
		out[topic] = tp
	}
	return out
}

// Seek overrides the next-read offset of one subscribed partition — the
// restore half of Positions: a restarted consumer resumes from a
// checkpoint's recorded cut instead of the broker's committed offsets.
func (c *Consumer) Seek(topic string, partition int, offset int64) error {
	pos, ok := c.positions[topic]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoTopic, topic)
	}
	if _, ok := pos[partition]; !ok {
		return fmt.Errorf("%w: %d", ErrNoPartition, partition)
	}
	if offset < 0 {
		return fmt.Errorf("%w: %d", ErrBadOffset, offset)
	}
	pos[partition] = offset
	return nil
}

// AppendPositions serializes the consumer's next-read offsets to buf in
// a deterministic order (topics sorted, partitions ascending) — the
// checkpoint-record form of Positions, decoded by SeekPositions. Both
// the in-process System checkpoint and the privapprox-node aggregator
// checkpoint use this one codec.
func (c *Consumer) AppendPositions(buf []byte) []byte {
	topics := c.sortedTopics()
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(topics)))
	for _, topic := range topics {
		pos := c.positions[topic]
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(topic)))
		buf = append(buf, topic...)
		parts := sortedPartitions(pos)
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(parts)))
		for _, p := range parts {
			buf = binary.BigEndian.AppendUint32(buf, uint32(p))
			buf = binary.BigEndian.AppendUint64(buf, uint64(pos[p]))
		}
	}
	return buf
}

// SeekPositions decodes an AppendPositions section, seeks every
// recorded partition, and returns the unconsumed remainder of data.
func (c *Consumer) SeekPositions(data []byte) ([]byte, error) {
	if len(data) < 4 {
		return nil, fmt.Errorf("pubsub: short positions record")
	}
	ntopics := binary.BigEndian.Uint32(data)
	data = data[4:]
	for t := uint32(0); t < ntopics; t++ {
		if len(data) < 4 {
			return nil, fmt.Errorf("pubsub: short positions record")
		}
		tlen := binary.BigEndian.Uint32(data)
		data = data[4:]
		if uint32(len(data)) < tlen+4 {
			return nil, fmt.Errorf("pubsub: short positions record")
		}
		topic := string(data[:tlen])
		data = data[tlen:]
		nparts := binary.BigEndian.Uint32(data)
		data = data[4:]
		for p := uint32(0); p < nparts; p++ {
			if len(data) < 12 {
				return nil, fmt.Errorf("pubsub: short positions record")
			}
			part := binary.BigEndian.Uint32(data)
			off := int64(binary.BigEndian.Uint64(data[4:12]))
			data = data[12:]
			if err := c.Seek(topic, int(part), off); err != nil {
				return nil, err
			}
		}
	}
	return data, nil
}

// Commit persists the current positions to the broker so another group
// member can resume after a failure.
func (c *Consumer) Commit() error {
	for topic, pos := range c.positions {
		for p, off := range pos {
			if err := c.t.CommitOffset(c.group, topic, p, off); err != nil {
				return err
			}
		}
	}
	return nil
}

// Lag returns the total number of unread records across subscriptions.
func (c *Consumer) Lag() (int64, error) {
	var lag int64
	for topic, pos := range c.positions {
		for p, off := range pos {
			end, err := c.t.EndOffset(topic, p)
			if err != nil {
				return 0, err
			}
			lag += end - off
		}
	}
	return lag, nil
}

func (c *Consumer) sortedTopics() []string {
	out := make([]string, 0, len(c.positions))
	for t := range c.positions {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

func sortedPartitions(pos map[int]int64) []int {
	out := make([]int, 0, len(pos))
	for p := range pos {
		out = append(out, p)
	}
	sort.Ints(out)
	return out
}
