package pubsub

import (
	crand "crypto/rand"
	"encoding/binary"
	"errors"
	"sync"
	"sync/atomic"
	"time"
)

// RetryPolicy shapes a Producer's at-least-once delivery. The zero
// value means one attempt, no blocking on full partitions — exactly the
// pre-session publish behavior.
type RetryPolicy struct {
	// Attempts is the number of tries per batch chunk (<= 0 means 1).
	// Retries fire only for retryable failures: ErrAmbiguous (the
	// request may have applied — safe to retry because the broker
	// dedups) and transport-level errors like dial failures and
	// connection resets. Broker verdicts (ErrNoTopic, ErrClosed, wire
	// violations) never retry.
	Attempts int
	// Backoff is the sleep before the first retry, doubling per retry up
	// to MaxBackoff. Defaults: 10ms → 500ms.
	Backoff    time.Duration
	MaxBackoff time.Duration
	// FullWait, when > 0, bounds how long ErrPartitionFull is retried
	// (the backpressure wait, not counted against Attempts); zero fails
	// fast on a full partition.
	FullWait time.Duration
	// Pacing is the sleep between full-partition retries (default: the
	// broker's fullRetryInterval).
	Pacing time.Duration
	// Seed, when nonzero, enables deterministic ±50% jitter on backoff
	// and pacing so a fleet of producers does not retry in lockstep.
	Seed int64
}

func (r RetryPolicy) withDefaults() RetryPolicy {
	if r.Attempts <= 0 {
		r.Attempts = 1
	}
	if r.Backoff <= 0 {
		r.Backoff = 10 * time.Millisecond
	}
	if r.MaxBackoff <= 0 {
		r.MaxBackoff = 500 * time.Millisecond
	}
	if r.Pacing <= 0 {
		r.Pacing = fullRetryInterval
	}
	return r
}

// Producer is the idempotent publish front-end over any Transport: it
// tags every batch with a producer ID and a per-topic sequence number,
// and retries ambiguous failures safely — the broker's per-partition
// session slots turn a replayed batch into Stats.Duplicates instead of
// double-published records. Against a transport without session support
// it degrades to plain publishes with no ambiguous retry (a blind retry
// could double-publish), still honoring FullWait backpressure.
//
// A Producer serializes its publishes (one in-flight batch per
// producer), which the dedup contract requires: sequences must reach
// the broker in order. Concurrent callers share the one lane.
type Producer struct {
	t  Transport
	id uint64

	mu   sync.Mutex
	pol  RetryPolicy
	seqs map[string]uint64
	// session is false once the transport definitively lacks session
	// support (no SessionPublisher surface, or ErrNoSession from
	// feature negotiation).
	session bool
	sp      SessionPublisher
	jitter  atomic.Uint64
}

// NewProducer wraps t with a fresh producer session. The producer ID is
// drawn from crypto/rand (collision odds over 64 bits are negligible;
// no broker-side registration is needed).
func NewProducer(t Transport, pol RetryPolicy) *Producer {
	p := &Producer{t: t, seqs: make(map[string]uint64)}
	p.sp, p.session = t.(SessionPublisher)
	var b [8]byte
	for {
		if _, err := crand.Read(b[:]); err != nil {
			// crypto/rand failing is effectively fatal elsewhere in the
			// system too; fall back to a time-derived ID rather than
			// panicking in a constructor.
			binary.BigEndian.PutUint64(b[:], uint64(time.Now().UnixNano()))
		}
		if p.id = binary.BigEndian.Uint64(b[:]); p.id != 0 {
			break
		}
	}
	p.SetPolicy(pol)
	return p
}

// ID returns the producer's session ID.
func (p *Producer) ID() uint64 { return p.id }

// SetPolicy replaces the retry policy. Safe to call between publishes;
// a publish in flight finishes under the policy it started with.
func (p *Producer) SetPolicy(pol RetryPolicy) {
	p.mu.Lock()
	p.pol = pol.withDefaults()
	p.jitter.Store(jitterState(p.pol.Seed))
	p.mu.Unlock()
}

// Policy returns the current retry policy.
func (p *Producer) Policy() RetryPolicy {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.pol
}

// retryablePublishErr reports whether a failed publish may be retried
// under a session: ambiguous outcomes (the broker dedups a replay) and
// transport-level failures (dial errors, resets — the request never got
// a broker verdict) are retryable; definite broker and protocol
// verdicts are not.
func retryablePublishErr(err error) bool {
	if errors.Is(err, ErrAmbiguous) {
		return true
	}
	for _, s := range []error{
		ErrNoTopic, ErrTopicExists, ErrNoPartition, ErrBadOffset,
		ErrClosed, ErrPartitionFull, ErrWire, ErrDurable, ErrNoSession,
	} {
		if errors.Is(err, s) {
			return false
		}
	}
	return true
}

// PublishBatch publishes msgs to topic with at-least-once retries and
// exactly-once effect (given session support). Batches above
// maxBatchBytes are split into chunks, each tagged with its own
// sequence; all-or-nothing holds per chunk. Results are not returned:
// a deduplicated replay of an old chunk cannot reconstruct original
// placements, so session callers treat placement as broker-internal.
func (p *Producer) PublishBatch(topic string, msgs []Message) error {
	if len(msgs) == 0 {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.session {
		return p.plainRowsLocked(topic, msgs)
	}
	for start := 0; start < len(msgs); {
		n := 0
		size := 0
		for i := start; i < len(msgs); i++ {
			m := msgs[i]
			if n > 0 && size+len(m.Key)+len(m.Value)+9 > maxBatchBytes {
				break
			}
			size += len(m.Key) + len(m.Value) + 9
			n++
		}
		chunk := msgs[start : start+n]
		err := p.sendLocked(topic, func(seq uint64) error {
			_, err := p.sp.PublishBatchSession(topic, chunk, p.id, seq)
			return err
		})
		if err != nil {
			if errors.Is(err, ErrNoSession) {
				p.session = false
				return p.plainRowsLocked(topic, msgs[start:])
			}
			return err
		}
		start += n
	}
	return nil
}

// PublishColumns is the columnar PublishBatch: chunked by rows past
// maxBatchBytes, one sequence per chunk.
func (p *Producer) PublishColumns(topic string, cols Columns) error {
	if err := cols.Validate(); err != nil {
		return err
	}
	if cols.Count == 0 {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.session {
		return p.plainColsLocked(topic, cols)
	}
	stride := cols.KeyLen + cols.ValLen
	rows := maxBatchBytes / stride
	if rows < 1 {
		rows = 1
	}
	for start := 0; start < cols.Count; start += rows {
		n := cols.Count - start
		if n > rows {
			n = rows
		}
		chunk := Columns{
			Count:  n,
			KeyLen: cols.KeyLen,
			ValLen: cols.ValLen,
			Keys:   cols.Keys[start*cols.KeyLen : (start+n)*cols.KeyLen],
			Vals:   cols.Vals[start*cols.ValLen : (start+n)*cols.ValLen],
		}
		err := p.sendLocked(topic, func(seq uint64) error {
			_, err := p.sp.PublishColumnsSession(topic, chunk, p.id, seq)
			return err
		})
		if err != nil {
			if errors.Is(err, ErrNoSession) {
				p.session = false
				rest := Columns{
					Count:  cols.Count - start,
					KeyLen: cols.KeyLen,
					ValLen: cols.ValLen,
					Keys:   cols.Keys[start*cols.KeyLen:],
					Vals:   cols.Vals[start*cols.ValLen:],
				}
				return p.plainColsLocked(topic, rest)
			}
			return err
		}
	}
	return nil
}

// sendLocked assigns the chunk its sequence and runs the retry loop:
// retryable failures consume attempts with exponential backoff;
// ErrPartitionFull retries against the FullWait deadline without
// consuming attempts. Caller holds p.mu.
func (p *Producer) sendLocked(topic string, send func(seq uint64) error) error {
	seq := p.seqs[topic] + 1
	p.seqs[topic] = seq
	pol := p.pol
	var fullDeadline time.Time
	if pol.FullWait > 0 {
		fullDeadline = time.Now().Add(pol.FullWait)
	}
	backoff := pol.Backoff
	var lastErr error
	for attempt := 0; attempt < pol.Attempts; {
		err := send(seq)
		if err == nil {
			return nil
		}
		lastErr = err
		if errors.Is(err, ErrPartitionFull) {
			if pol.FullWait <= 0 || !time.Now().Before(fullDeadline) {
				return err
			}
			time.Sleep(jitterDur(&p.jitter, pol.Pacing))
			continue // backpressure does not consume attempts
		}
		if !retryablePublishErr(err) {
			return err
		}
		attempt++
		if attempt >= pol.Attempts {
			break
		}
		time.Sleep(jitterDur(&p.jitter, backoff))
		if backoff *= 2; backoff > pol.MaxBackoff {
			backoff = pol.MaxBackoff
		}
	}
	return lastErr
}

// plainRowsLocked is the degraded path for session-less transports: one
// attempt (no ambiguous retry), FullWait honored through the Wait
// variants. Caller holds p.mu.
func (p *Producer) plainRowsLocked(topic string, msgs []Message) error {
	if p.pol.FullWait > 0 {
		if wp, ok := p.t.(WaitPublisher); ok {
			_, err := wp.PublishBatchWait(topic, msgs, p.pol.FullWait)
			return err
		}
	}
	_, err := p.t.PublishBatch(topic, msgs)
	return err
}

func (p *Producer) plainColsLocked(topic string, cols Columns) error {
	if cp, ok := p.t.(ColumnPublisher); ok {
		if p.pol.FullWait > 0 {
			_, err := cp.PublishColumnsWait(topic, cols, p.pol.FullWait)
			return err
		}
		_, err := cp.PublishColumns(topic, cols)
		return err
	}
	msgs := make([]Message, cols.Count)
	for i := range msgs {
		msgs[i] = Message{Key: cols.Key(i), Value: cols.Val(i)}
	}
	return p.plainRowsLocked(topic, msgs)
}
