package pubsub

import (
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"
)

// waitConnDead polls until cc has detached its connection (the read
// loop noticed the death) or the deadline passes.
func waitConnDead(t *testing.T, cc *clientConn) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		cc.mu.Lock()
		dead := cc.conn == nil
		cc.mu.Unlock()
		if dead {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("connection never detected as dead")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestReconnectAfterServerRestart: a client survives its server going
// away and coming back on the same address — requests during the outage
// fail (ambiguously if in flight, plainly if the dial fails), and the
// first request after the restart redials and succeeds without a new
// Client.
func TestReconnectAfterServerRestart(t *testing.T) {
	b := NewBroker()
	t.Cleanup(b.Close)
	srv, err := Serve(b, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()
	cli, err := DialOptions(addr, Options{Conns: 1, RedialBackoff: time.Millisecond, RedialBackoffMax: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cli.Close() })
	if err := cli.CreateTopic("t", 1); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	waitConnDead(t, cli.conns[0])

	srv2, err := Serve(b, addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv2.Close() })
	// The redial backoff window from any failed attempt is short; a few
	// tries must get through.
	var lastErr error
	for i := 0; i < 50; i++ {
		if _, _, lastErr = cli.Publish("t", []byte("k"), []byte("v")); lastErr == nil {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if lastErr != nil {
		t.Fatalf("publish never succeeded after restart: %v", lastErr)
	}
	if end, err := cli.EndOffset("t", 0); err != nil || end != 1 {
		t.Fatalf("EndOffset = %d, %v; want 1", end, err)
	}
}

// TestInFlightFailsAmbiguous: a request that reached the wire before
// the connection died must fail wrapping ErrAmbiguous — the caller
// cannot know whether the broker applied it.
func TestInFlightFailsAmbiguous(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	accepted := make(chan net.Conn, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		accepted <- conn
	}()
	cli, err := DialOptions(ln.Addr().String(), Options{Conns: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cli.Close() })
	srvConn := <-accepted
	// Sever the connection after the request frame arrives, before any
	// response: the client's waiter must observe ErrAmbiguous.
	go func() {
		buf := make([]byte, 8)
		for {
			if _, err := srvConn.Read(buf); err != nil {
				return
			}
			srvConn.Close()
			return
		}
	}()
	_, _, err = cli.Publish("t", []byte("k"), []byte("v"))
	if !errors.Is(err, ErrAmbiguous) {
		t.Fatalf("in-flight failure: %v, want ErrAmbiguous", err)
	}
}

// TestDialFailureIsUnambiguous: when no connection can be established,
// nothing reached the wire, so the error must NOT claim ambiguity.
func TestDialFailureIsUnambiguous(t *testing.T) {
	b := NewBroker()
	t.Cleanup(b.Close)
	srv, err := Serve(b, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cli, err := DialOptions(srv.Addr(), Options{Conns: 1, RedialBackoff: 30 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cli.Close() })
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	waitConnDead(t, cli.conns[0])
	// First attempt dials (refused — plain error); an immediate second
	// attempt is inside the backoff window and fails fast.
	_, _, err = cli.Publish("t", []byte("k"), []byte("v"))
	if err == nil || errors.Is(err, ErrAmbiguous) {
		t.Fatalf("dial failure: %v, want a plain (unambiguous) error", err)
	}
	_, _, err = cli.Publish("t", []byte("k"), []byte("v"))
	if err == nil || !strings.Contains(err.Error(), "backing off") {
		t.Fatalf("within backoff window: %v, want fast redial-backoff failure", err)
	}
	if errors.Is(err, ErrAmbiguous) {
		t.Fatalf("backoff failure claims ambiguity: %v", err)
	}
}

// TestLazyDialComesUpWithServerDown: with LazyDial a client is usable
// before its server exists — requests fail fast (plainly, under
// backoff) while it's down, and succeed via on-demand redial once it
// arrives. Without LazyDial the same dial fails outright.
func TestLazyDialComesUpWithServerDown(t *testing.T) {
	// Reserve an address with no listener behind it.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	if _, err := DialOptions(addr, Options{Conns: 1}); err == nil {
		t.Fatal("eager dial to a dead address succeeded")
	}
	cli, err := DialOptions(addr, Options{Conns: 1, LazyDial: true, RedialBackoff: time.Millisecond, RedialBackoffMax: 5 * time.Millisecond})
	if err != nil {
		t.Fatalf("lazy dial to a dead address failed: %v", err)
	}
	t.Cleanup(func() { cli.Close() })
	if _, _, err := cli.Publish("t", []byte("k"), []byte("v")); err == nil {
		t.Fatal("publish with server still down succeeded")
	} else if errors.Is(err, ErrAmbiguous) {
		t.Fatalf("nothing reached the wire, yet error claims ambiguity: %v", err)
	}

	b := NewBroker()
	t.Cleanup(b.Close)
	srv, err := Serve(b, addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	var lastErr error
	for i := 0; i < 50; i++ {
		if lastErr = cli.CreateTopic("t", 1); lastErr == nil {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if lastErr != nil {
		t.Fatalf("lazy client never recovered once the server came up: %v", lastErr)
	}
	if _, _, err := cli.Publish("t", []byte("k"), []byte("v")); err != nil {
		t.Fatalf("publish after recovery: %v", err)
	}
}

// TestDialPoolSurvivesConnDeath is the regression test for the dead-
// pool-member bug: one pool connection dies mid-pipeline and every
// subsequent request must keep succeeding — first routed around the
// corpse while other conns live, and via on-demand redial once the
// whole pool is down.
func TestDialPoolSurvivesConnDeath(t *testing.T) {
	b := NewBroker()
	t.Cleanup(b.Close)
	srv, err := Serve(b, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	cli, err := DialOptions(srv.Addr(), Options{Conns: 3, RedialBackoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cli.Close() })
	if err := cli.CreateTopic("t", 2); err != nil {
		t.Fatal(err)
	}

	// Publish through a producer session while a goroutine murders one
	// connection mid-stream: the batches in flight on the dying conn
	// fail ambiguously and the producer's retry lands them exactly once.
	prod := NewProducer(cli, RetryPolicy{Attempts: 8, Backoff: time.Millisecond})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		time.Sleep(2 * time.Millisecond)
		cc := cli.conns[0]
		cc.mu.Lock()
		conn := cc.conn
		cc.mu.Unlock()
		if conn != nil {
			conn.Close()
		}
	}()
	const batches, per = 40, 5
	for i := 0; i < batches; i++ {
		if err := prod.PublishBatch("t", sessionMsgs(fmt.Sprintf("b%02d", i), per)); err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
	}
	wg.Wait()
	if end := topicEnd(t, cli, "t"); end != batches*per {
		t.Fatalf("topic holds %d records, want %d (exactly-once through conn death)", end, batches*per)
	}

	// Kill every connection: the next request has no live conn to prefer
	// and must redial on demand.
	for _, cc := range cli.conns {
		cc.mu.Lock()
		conn := cc.conn
		cc.mu.Unlock()
		if conn != nil {
			conn.Close()
		}
		waitConnDead(t, cc)
	}
	var lastErr error
	for i := 0; i < 50; i++ {
		if _, lastErr = cli.Partitions("t"); lastErr == nil {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if lastErr != nil {
		t.Fatalf("whole-pool redial never recovered: %v", lastErr)
	}
}

// TestPickPrefersLiveConns: with one member down, no request may be
// routed onto the corpse while siblings live (the pre-fix behavior sent
// it the least-loaded share of traffic, which all failed).
func TestPickPrefersLiveConns(t *testing.T) {
	b := NewBroker()
	t.Cleanup(b.Close)
	srv, err := Serve(b, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	cli, err := DialOptions(srv.Addr(), Options{Conns: 2, RedialBackoff: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cli.Close() })
	if err := cli.CreateTopic("t", 1); err != nil {
		t.Fatal(err)
	}
	cc := cli.conns[0]
	cc.mu.Lock()
	conn := cc.conn
	cc.mu.Unlock()
	conn.Close()
	waitConnDead(t, cc)
	// With a one-minute redial backoff the dead conn cannot recover
	// during the loop, so any request routed to it would fail.
	for i := 0; i < 100; i++ {
		if _, _, err := cli.Publish("t", []byte("k"), []byte("v")); err != nil {
			t.Fatalf("publish %d routed to the dead conn: %v", i, err)
		}
	}
}
