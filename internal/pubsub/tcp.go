package pubsub

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// Server exposes a Broker over TCP with the frame protocol in wire.go,
// so proxies and the aggregator can run as separate processes.
type Server struct {
	broker *Broker
	ln     net.Listener
	wg     sync.WaitGroup
	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
}

// Serve starts serving the broker on addr (e.g. "127.0.0.1:0") and
// returns immediately; Addr reports the bound address.
func Serve(b *Broker, addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("pubsub: listen: %w", err)
	}
	s := &Server{broker: b, ln: ln, conns: make(map[net.Conn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listening address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the listener and all connections.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	err := s.ln.Close()
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	for {
		req, err := readFrame(conn)
		if err != nil {
			return
		}
		resp := s.handle(req)
		if err := writeFrame(conn, resp); err != nil {
			return
		}
	}
}

func respErr(err error) []byte {
	var e enc
	e.byte(1)
	e.str(err.Error())
	return e.buf
}

func (s *Server) handle(req []byte) []byte {
	d := &dec{buf: req}
	op, err := d.byte()
	if err != nil {
		return respErr(err)
	}
	switch op {
	case opCreateTopic:
		topic, err := d.str()
		if err != nil {
			return respErr(err)
		}
		parts, err := d.uint32()
		if err != nil {
			return respErr(err)
		}
		if err := s.broker.CreateTopic(topic, int(parts)); err != nil {
			return respErr(err)
		}
		return []byte{0}
	case opPublish:
		topic, err := d.str()
		if err != nil {
			return respErr(err)
		}
		hasKey, err := d.byte()
		if err != nil {
			return respErr(err)
		}
		var key []byte
		if hasKey == 1 {
			if key, err = d.bytes(); err != nil {
				return respErr(err)
			}
		}
		val, err := d.bytes()
		if err != nil {
			return respErr(err)
		}
		part, off, err := s.broker.Publish(topic, key, val)
		if err != nil {
			return respErr(err)
		}
		var e enc
		e.byte(0)
		e.uint32(uint32(part))
		e.uint64(uint64(off))
		return e.buf
	case opFetch:
		topic, err := d.str()
		if err != nil {
			return respErr(err)
		}
		part, err := d.uint32()
		if err != nil {
			return respErr(err)
		}
		off, err := d.uint64()
		if err != nil {
			return respErr(err)
		}
		max, err := d.uint32()
		if err != nil {
			return respErr(err)
		}
		waitMs, err := d.uint32()
		if err != nil {
			return respErr(err)
		}
		var recs []Record
		if waitMs > 0 {
			recs, err = s.broker.WaitFetch(topic, int(part), int64(off), int(max), time.Duration(waitMs)*time.Millisecond)
		} else {
			recs, err = s.broker.Fetch(topic, int(part), int64(off), int(max))
		}
		if err != nil {
			return respErr(err)
		}
		var e enc
		e.byte(0)
		e.uint32(uint32(len(recs)))
		for _, r := range recs {
			e.uint32(uint32(r.Partition))
			e.uint64(uint64(r.Offset))
			e.uint64(uint64(r.Timestamp.UnixNano()))
			e.bytes(r.Key)
			e.bytes(r.Value)
		}
		return e.buf
	case opEndOffset:
		topic, err := d.str()
		if err != nil {
			return respErr(err)
		}
		part, err := d.uint32()
		if err != nil {
			return respErr(err)
		}
		off, err := s.broker.EndOffset(topic, int(part))
		if err != nil {
			return respErr(err)
		}
		var e enc
		e.byte(0)
		e.uint64(uint64(off))
		return e.buf
	case opCommit:
		group, err := d.str()
		if err != nil {
			return respErr(err)
		}
		topic, err := d.str()
		if err != nil {
			return respErr(err)
		}
		part, err := d.uint32()
		if err != nil {
			return respErr(err)
		}
		off, err := d.uint64()
		if err != nil {
			return respErr(err)
		}
		if err := s.broker.CommitOffset(group, topic, int(part), int64(off)); err != nil {
			return respErr(err)
		}
		return []byte{0}
	case opCommitted:
		group, err := d.str()
		if err != nil {
			return respErr(err)
		}
		topic, err := d.str()
		if err != nil {
			return respErr(err)
		}
		part, err := d.uint32()
		if err != nil {
			return respErr(err)
		}
		off, err := s.broker.CommittedOffset(group, topic, int(part))
		if err != nil {
			return respErr(err)
		}
		var e enc
		e.byte(0)
		e.uint64(uint64(off))
		return e.buf
	case opPartitions:
		topic, err := d.str()
		if err != nil {
			return respErr(err)
		}
		n, err := s.broker.Partitions(topic)
		if err != nil {
			return respErr(err)
		}
		var e enc
		e.byte(0)
		e.uint32(uint32(n))
		return e.buf
	default:
		return respErr(fmt.Errorf("%w: unknown opcode %d", ErrWire, op))
	}
}

// Client is a remote handle on a broker served over TCP. It is safe for
// concurrent use; requests are serialized on one connection.
type Client struct {
	mu   sync.Mutex
	conn net.Conn
}

// Dial connects to a broker server.
func Dial(addr string) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, fmt.Errorf("pubsub: dial %s: %w", addr, err)
	}
	return &Client{conn: conn}, nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

func (c *Client) roundTrip(req []byte) (*dec, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := writeFrame(c.conn, req); err != nil {
		return nil, err
	}
	resp, err := readFrame(c.conn)
	if err != nil {
		return nil, err
	}
	d := &dec{buf: resp}
	status, err := d.byte()
	if err != nil {
		return nil, err
	}
	if status != 0 {
		msg, err := d.str()
		if err != nil {
			return nil, err
		}
		return nil, errors.New(msg)
	}
	return d, nil
}

// CreateTopic mirrors Broker.CreateTopic.
func (c *Client) CreateTopic(topic string, partitions int) error {
	var e enc
	e.byte(opCreateTopic)
	e.str(topic)
	e.uint32(uint32(partitions))
	_, err := c.roundTrip(e.buf)
	return err
}

// Publish mirrors Broker.Publish.
func (c *Client) Publish(topic string, key, value []byte) (int, int64, error) {
	var e enc
	e.byte(opPublish)
	e.str(topic)
	if key != nil {
		e.byte(1)
		e.bytes(key)
	} else {
		e.byte(0)
	}
	e.bytes(value)
	d, err := c.roundTrip(e.buf)
	if err != nil {
		return 0, 0, err
	}
	part, err := d.uint32()
	if err != nil {
		return 0, 0, err
	}
	off, err := d.uint64()
	if err != nil {
		return 0, 0, err
	}
	return int(part), int64(off), nil
}

// Fetch mirrors Broker.Fetch; wait > 0 turns it into WaitFetch with that
// timeout.
func (c *Client) Fetch(topic string, partition int, offset int64, max int, wait time.Duration) ([]Record, error) {
	var e enc
	e.byte(opFetch)
	e.str(topic)
	e.uint32(uint32(partition))
	e.uint64(uint64(offset))
	e.uint32(uint32(max))
	e.uint32(uint32(wait / time.Millisecond))
	d, err := c.roundTrip(e.buf)
	if err != nil {
		return nil, err
	}
	n, err := d.uint32()
	if err != nil {
		return nil, err
	}
	out := make([]Record, 0, n)
	for i := uint32(0); i < n; i++ {
		part, err := d.uint32()
		if err != nil {
			return nil, err
		}
		off, err := d.uint64()
		if err != nil {
			return nil, err
		}
		ts, err := d.uint64()
		if err != nil {
			return nil, err
		}
		key, err := d.bytes()
		if err != nil {
			return nil, err
		}
		val, err := d.bytes()
		if err != nil {
			return nil, err
		}
		out = append(out, Record{
			Topic:     topic,
			Partition: int(part),
			Offset:    int64(off),
			Timestamp: time.Unix(0, int64(ts)),
			Key:       key,
			Value:     val,
		})
	}
	return out, nil
}

// EndOffset mirrors Broker.EndOffset.
func (c *Client) EndOffset(topic string, partition int) (int64, error) {
	var e enc
	e.byte(opEndOffset)
	e.str(topic)
	e.uint32(uint32(partition))
	d, err := c.roundTrip(e.buf)
	if err != nil {
		return 0, err
	}
	off, err := d.uint64()
	return int64(off), err
}

// Partitions mirrors Broker.Partitions.
func (c *Client) Partitions(topic string) (int, error) {
	var e enc
	e.byte(opPartitions)
	e.str(topic)
	d, err := c.roundTrip(e.buf)
	if err != nil {
		return 0, err
	}
	n, err := d.uint32()
	return int(n), err
}

// CommitOffset mirrors Broker.CommitOffset.
func (c *Client) CommitOffset(group, topic string, partition int, offset int64) error {
	var e enc
	e.byte(opCommit)
	e.str(group)
	e.str(topic)
	e.uint32(uint32(partition))
	e.uint64(uint64(offset))
	_, err := c.roundTrip(e.buf)
	return err
}

// CommittedOffset mirrors Broker.CommittedOffset.
func (c *Client) CommittedOffset(group, topic string, partition int) (int64, error) {
	var e enc
	e.byte(opCommitted)
	e.str(group)
	e.str(topic)
	e.uint32(uint32(partition))
	d, err := c.roundTrip(e.buf)
	if err != nil {
		return 0, err
	}
	off, err := d.uint64()
	return int64(off), err
}
