package pubsub

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Server exposes a Broker over TCP with the frame protocol in wire.go,
// so proxies and the aggregator can run as separate processes. Requests
// on one connection are handled strictly in order and answered in the
// same order — clients may pipeline any number of requests without
// waiting for responses, and match responses to requests FIFO.
type Server struct {
	broker *Broker
	ln     net.Listener
	wg     sync.WaitGroup
	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	// legacyV1 makes the server reject the wire-v2 opcodes (opFeatures,
	// opPublishBatchV2) exactly like a pre-v2 build, for interop tests
	// exercising the client's negotiation fallback. Set before clients
	// connect.
	legacyV1 bool
}

// Serve starts serving the broker on addr (e.g. "127.0.0.1:0") and
// returns immediately; Addr reports the bound address.
func Serve(b *Broker, addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("pubsub: listen: %w", err)
	}
	s := &Server{broker: b, ln: ln, conns: make(map[net.Conn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listening address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the listener and all connections. Handlers blocked in a
// server-side WaitFetch observe the close within one wait slice, so
// Close returns promptly even with long client fetch timeouts in
// flight.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	err := s.ln.Close()
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
	return err
}

func (s *Server) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	for {
		req, err := readFrame(conn)
		if err != nil {
			// Includes oversized frames: the payload was never read, so
			// the stream cannot be resynchronized — drop the connection.
			return
		}
		resp := s.handle(req)
		if err := writeFrame(conn, resp); err != nil {
			return
		}
	}
}

func respErr(err error) []byte {
	var e enc
	e.byte(1)
	e.str(err.Error())
	return e.buf
}

func (s *Server) handle(req []byte) []byte {
	d := &dec{buf: req}
	op, err := d.byte()
	if err != nil {
		return respErr(err)
	}
	if s.legacyV1 && (op == opFeatures || op == opPublishBatchV2) {
		return respErr(fmt.Errorf("%w: unknown opcode %d", ErrWire, op))
	}
	switch op {
	case opCreateTopic:
		topic, err := d.str()
		if err != nil {
			return respErr(err)
		}
		parts, err := d.uint32()
		if err != nil {
			return respErr(err)
		}
		if err := s.broker.CreateTopic(topic, int(parts)); err != nil {
			return respErr(err)
		}
		return []byte{0}
	case opPublish:
		topic, err := d.str()
		if err != nil {
			return respErr(err)
		}
		key, err := decodeOptBytes(d)
		if err != nil {
			return respErr(err)
		}
		val, err := d.bytes()
		if err != nil {
			return respErr(err)
		}
		part, off, err := s.broker.Publish(topic, key, val)
		if err != nil {
			return respErr(err)
		}
		var e enc
		e.byte(0)
		e.uint32(uint32(part))
		e.uint64(uint64(off))
		return e.buf
	case opPublishBatch:
		topic, err := d.str()
		if err != nil {
			return respErr(err)
		}
		n, err := d.uint32()
		if err != nil {
			return respErr(err)
		}
		// The frame is already bounded by maxFrame; cap the initial
		// allocation so a lying count cannot balloon memory before the
		// short-frame check trips.
		msgs := make([]Message, 0, min(int(n), 4096))
		for i := uint32(0); i < n; i++ {
			key, err := decodeOptBytes(d)
			if err != nil {
				return respErr(err)
			}
			val, err := d.bytes()
			if err != nil {
				return respErr(err)
			}
			msgs = append(msgs, Message{Key: key, Value: val})
		}
		results, err := s.broker.PublishBatch(topic, msgs)
		if err != nil {
			return respErr(err)
		}
		var e enc
		e.byte(0)
		e.uint32(uint32(len(results)))
		for _, r := range results {
			e.uint32(uint32(r.Partition))
			e.uint64(uint64(r.Offset))
		}
		return e.buf
	case opFetch:
		topic, err := d.str()
		if err != nil {
			return respErr(err)
		}
		part, err := d.uint32()
		if err != nil {
			return respErr(err)
		}
		off, err := d.uint64()
		if err != nil {
			return respErr(err)
		}
		max, err := d.uint32()
		if err != nil {
			return respErr(err)
		}
		waitMs, err := d.uint32()
		if err != nil {
			return respErr(err)
		}
		var recs []Record
		if waitMs > 0 {
			recs, err = s.waitFetch(topic, int(part), int64(off), int(max), time.Duration(waitMs)*time.Millisecond)
		} else {
			recs, err = s.broker.Fetch(topic, int(part), int64(off), int(max))
		}
		if err != nil {
			return respErr(err)
		}
		var e enc
		e.byte(0)
		e.uint32(uint32(len(recs)))
		for _, r := range recs {
			e.uint32(uint32(r.Partition))
			e.uint64(uint64(r.Offset))
			e.uint64(uint64(r.Timestamp.UnixNano()))
			e.bytes(r.Key)
			e.bytes(r.Value)
		}
		return e.buf
	case opEndOffset:
		topic, err := d.str()
		if err != nil {
			return respErr(err)
		}
		part, err := d.uint32()
		if err != nil {
			return respErr(err)
		}
		off, err := s.broker.EndOffset(topic, int(part))
		if err != nil {
			return respErr(err)
		}
		var e enc
		e.byte(0)
		e.uint64(uint64(off))
		return e.buf
	case opCommit:
		group, err := d.str()
		if err != nil {
			return respErr(err)
		}
		topic, err := d.str()
		if err != nil {
			return respErr(err)
		}
		part, err := d.uint32()
		if err != nil {
			return respErr(err)
		}
		off, err := d.uint64()
		if err != nil {
			return respErr(err)
		}
		if err := s.broker.CommitOffset(group, topic, int(part), int64(off)); err != nil {
			return respErr(err)
		}
		return []byte{0}
	case opCommitted:
		group, err := d.str()
		if err != nil {
			return respErr(err)
		}
		topic, err := d.str()
		if err != nil {
			return respErr(err)
		}
		part, err := d.uint32()
		if err != nil {
			return respErr(err)
		}
		off, err := s.broker.CommittedOffset(group, topic, int(part))
		if err != nil {
			return respErr(err)
		}
		var e enc
		e.byte(0)
		e.uint64(uint64(off))
		return e.buf
	case opPartitions:
		topic, err := d.str()
		if err != nil {
			return respErr(err)
		}
		n, err := s.broker.Partitions(topic)
		if err != nil {
			return respErr(err)
		}
		var e enc
		e.byte(0)
		e.uint32(uint32(n))
		return e.buf
	case opFeatures:
		return s.handleFeatures()
	case opPublishBatchV2:
		return s.handlePublishColumns(d)
	default:
		return respErr(fmt.Errorf("%w: unknown opcode %d", ErrWire, op))
	}
}

// waitFetch is the server side of a blocking fetch. The wait is sliced
// so a handler parked in the broker's WaitFetch observes Server.Close
// within one slice instead of pinning Close for the client's full
// timeout.
func (s *Server) waitFetch(topic string, part int, off int64, max int, wait time.Duration) ([]Record, error) {
	const slice = 20 * time.Millisecond
	deadline := time.Now().Add(wait)
	for {
		remain := time.Until(deadline)
		if remain <= 0 {
			return s.broker.Fetch(topic, part, off, max)
		}
		if remain > slice {
			remain = slice
		}
		recs, err := s.broker.WaitFetch(topic, part, off, max, remain)
		if err != nil || len(recs) > 0 {
			return recs, err
		}
		if s.isClosed() {
			return nil, ErrClosed
		}
	}
}

// decodeOptBytes reads the hasKey-prefixed optional byte string used by
// the publish opcodes: a 0 marker means nil, a 1 marker is followed by
// a length-prefixed value.
func decodeOptBytes(d *dec) ([]byte, error) {
	has, err := d.byte()
	if err != nil {
		return nil, err
	}
	switch has {
	case 0:
		return nil, nil
	case 1:
		return d.bytes()
	default:
		return nil, fmt.Errorf("%w: bad optional-bytes marker %d", ErrWire, has)
	}
}

func encodeOptBytes(e *enc, b []byte) {
	if b != nil {
		e.byte(1)
		e.bytes(b)
	} else {
		e.byte(0)
	}
}

// Client is a remote handle on a broker served over TCP. It is safe for
// concurrent use and pipelines: a request is written and its response
// awaited without blocking other goroutines' requests, which flow on
// the same connections back to back. Dial opens a single connection;
// DialPool spreads requests over a small pool so a server-side blocking
// fetch parked on one connection does not stall unrelated requests.
type Client struct {
	conns []*clientConn
	rr    atomic.Uint64
	// features caches the wire-v2 negotiation verdict (see
	// supportsColumns): featUnknown until probed, then featV2 or
	// featV1Only for the life of the client.
	features atomic.Int32
}

// DefaultPoolConns is the pool size DialPool uses for conns <= 0.
const DefaultPoolConns = 4

// Dial connects to a broker server with a single connection.
func Dial(addr string) (*Client, error) { return DialPool(addr, 1) }

// DialPool connects to a broker server with a pool of conns
// connections (DefaultPoolConns when conns <= 0). Requests pick the
// least-loaded connection, so blocking fetches and bulk publishes
// spread out instead of queueing head-of-line.
func DialPool(addr string, conns int) (*Client, error) {
	if conns <= 0 {
		conns = DefaultPoolConns
	}
	c := &Client{conns: make([]*clientConn, 0, conns)}
	for i := 0; i < conns; i++ {
		conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("pubsub: dial %s: %w", addr, err)
		}
		cc := &clientConn{conn: conn}
		c.conns = append(c.conns, cc)
		go cc.readLoop()
	}
	return c, nil
}

// Close closes all connections; outstanding requests fail.
func (c *Client) Close() error {
	var err error
	for _, cc := range c.conns {
		if e := cc.conn.Close(); e != nil && err == nil {
			err = e
		}
	}
	return err
}

// clientConn is one pipelined connection: requests are framed under mu
// (which also fixes their FIFO position in queue), and a dedicated
// reader goroutine matches each response frame to the oldest waiter.
type clientConn struct {
	conn  net.Conn
	mu    sync.Mutex
	queue []chan connResult
	err   error
}

type connResult struct {
	resp []byte
	err  error
}

func (cc *clientConn) pending() int {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	return len(cc.queue)
}

// fail poisons the connection, closing it and delivering err to every
// waiter still in the queue.
func (cc *clientConn) fail(err error) {
	cc.mu.Lock()
	if cc.err == nil {
		cc.err = err
	}
	waiters := cc.queue
	cc.queue = nil
	cc.mu.Unlock()
	cc.conn.Close()
	for _, ch := range waiters {
		ch <- connResult{err: err}
	}
}

func (cc *clientConn) readLoop() {
	for {
		resp, err := readFrame(cc.conn)
		if err != nil {
			cc.fail(err)
			return
		}
		cc.mu.Lock()
		var ch chan connResult
		if len(cc.queue) > 0 {
			ch = cc.queue[0]
			cc.queue = cc.queue[1:]
		}
		cc.mu.Unlock()
		if ch == nil {
			cc.fail(fmt.Errorf("%w: unsolicited response", ErrWire))
			return
		}
		ch <- connResult{resp: resp}
	}
}

func (cc *clientConn) roundTrip(req []byte) (*dec, error) {
	ch := make(chan connResult, 1)
	cc.mu.Lock()
	if cc.err != nil {
		err := cc.err
		cc.mu.Unlock()
		return nil, err
	}
	cc.queue = append(cc.queue, ch)
	err := writeFrame(cc.conn, req)
	cc.mu.Unlock()
	if err != nil {
		// The request may be half-framed on the wire; the stream is
		// unusable. fail() wakes every waiter, including our ch.
		cc.fail(err)
		return nil, err
	}
	r := <-ch
	if r.err != nil {
		return nil, r.err
	}
	d := &dec{buf: r.resp}
	status, err := d.byte()
	if err != nil {
		return nil, err
	}
	if status != 0 {
		msg, err := d.str()
		if err != nil {
			return nil, err
		}
		return nil, wireError(msg)
	}
	return d, nil
}

// wireSentinels are the broker errors re-attached on the client side of
// the TCP transport: the server serializes an error as its message
// string, and the matching sentinel is recovered by prefix so
// errors.Is keeps working across the wire — most importantly for
// ErrPartitionFull, which publishers must distinguish from fatal
// errors to retry (PublishWait) instead of failing.
var wireSentinels = []error{
	ErrPartitionFull, ErrNoTopic, ErrTopicExists, ErrNoPartition, ErrBadOffset, ErrClosed,
	// ErrWire crosses the wire too so the client can recognize a v1
	// server's "unknown opcode" rejection during feature negotiation.
	ErrWire,
}

func wireError(msg string) error {
	for _, s := range wireSentinels {
		text := s.Error()
		if msg == text {
			return s
		}
		if strings.HasPrefix(msg, text+":") {
			return fmt.Errorf("%w%s", s, msg[len(text):])
		}
	}
	return errors.New(msg)
}

// pick returns the connection with the fewest in-flight requests,
// breaking ties round-robin.
func (c *Client) pick() *clientConn {
	if len(c.conns) == 1 {
		return c.conns[0]
	}
	start := int(c.rr.Add(1))
	best := c.conns[start%len(c.conns)]
	bestLoad := best.pending()
	for i := 1; i < len(c.conns) && bestLoad > 0; i++ {
		cc := c.conns[(start+i)%len(c.conns)]
		if load := cc.pending(); load < bestLoad {
			best, bestLoad = cc, load
		}
	}
	return best
}

func (c *Client) roundTrip(req []byte) (*dec, error) {
	return c.pick().roundTrip(req)
}

// CreateTopic mirrors Broker.CreateTopic.
func (c *Client) CreateTopic(topic string, partitions int) error {
	var e enc
	e.byte(opCreateTopic)
	e.str(topic)
	e.uint32(uint32(partitions))
	_, err := c.roundTrip(e.buf)
	return err
}

// Publish mirrors Broker.Publish. The request frame is encoded into a
// pooled buffer that is recycled once the frame is on the wire; key and
// value are consumed before Publish returns.
func (c *Client) Publish(topic string, key, value []byte) (int, int64, error) {
	e := getEnc()
	e.byte(opPublish)
	e.str(topic)
	encodeOptBytes(e, key)
	e.bytes(value)
	d, err := c.roundTrip(e.buf)
	putEnc(e)
	if err != nil {
		return 0, 0, err
	}
	part, err := d.uint32()
	if err != nil {
		return 0, 0, err
	}
	off, err := d.uint64()
	if err != nil {
		return 0, 0, err
	}
	return int(part), int64(off), nil
}

// maxBatchBytes caps one batched publish frame well under maxFrame;
// larger batches are split transparently.
const maxBatchBytes = 8 << 20

// PublishBatch mirrors Broker.PublishBatch: the whole batch travels as
// one frame (split only past maxBatchBytes) and costs one round-trip,
// instead of one per message.
func (c *Client) PublishBatch(topic string, msgs []Message) ([]PubResult, error) {
	if len(msgs) == 0 {
		return nil, nil
	}
	out := make([]PubResult, 0, len(msgs))
	e := getEnc()
	defer putEnc(e)
	for start := 0; start < len(msgs); {
		// Reuse the pooled frame buffer across chunks; the previous
		// chunk's frame was fully written before roundTrip returned.
		e.buf = e.buf[:0]
		e.byte(opPublishBatch)
		e.str(topic)
		countAt := len(e.buf)
		e.uint32(0) // patched with the chunk's message count below
		n := 0
		for i := start; i < len(msgs); i++ {
			m := msgs[i]
			if n > 0 && len(e.buf)+len(m.Key)+len(m.Value)+9 > maxBatchBytes {
				break
			}
			encodeOptBytes(e, m.Key)
			e.bytes(m.Value)
			n++
		}
		binary.BigEndian.PutUint32(e.buf[countAt:], uint32(n))
		d, err := c.roundTrip(e.buf)
		if err != nil {
			return nil, err
		}
		cnt, err := d.uint32()
		if err != nil {
			return nil, err
		}
		if int(cnt) != n {
			return nil, fmt.Errorf("%w: batch acked %d of %d messages", ErrWire, cnt, n)
		}
		for i := 0; i < n; i++ {
			part, err := d.uint32()
			if err != nil {
				return nil, err
			}
			off, err := d.uint64()
			if err != nil {
				return nil, err
			}
			out = append(out, PubResult{Partition: int(part), Offset: int64(off)})
		}
		start += n
	}
	return out, nil
}

// PublishWait mirrors Broker.PublishWait: the client retries while the
// remote partition reports ErrPartitionFull, until the timeout. The
// server holds no blocked publisher state — each retry is a fresh
// round-trip — so a slow publisher cannot pin a server handler.
func (c *Client) PublishWait(topic string, key, value []byte, timeout time.Duration) (int, int64, error) {
	return publishWait(c, topic, key, value, timeout)
}

// PublishBatchWait mirrors Broker.PublishBatchWait. Note the atomicity
// grain: batches above maxBatchBytes are split into chunked frames, and
// all-or-nothing holds per chunk (each chunk is one broker batch), not
// across chunks.
func (c *Client) PublishBatchWait(topic string, msgs []Message, timeout time.Duration) ([]PubResult, error) {
	return publishBatchWait(c, topic, msgs, timeout)
}

// waitToMillis converts a fetch wait to whole milliseconds for the
// wire, rounding up so a sub-millisecond wait stays a blocking wait
// instead of silently degrading into a non-blocking fetch.
func waitToMillis(d time.Duration) uint32 {
	if d <= 0 {
		return 0
	}
	// Clamp before rounding so the ceiling addition cannot overflow.
	if d >= math.MaxUint32*time.Millisecond {
		return math.MaxUint32
	}
	return uint32((d + time.Millisecond - 1) / time.Millisecond)
}

// Fetch mirrors Broker.Fetch; wait > 0 turns it into WaitFetch with
// that timeout.
func (c *Client) Fetch(topic string, partition int, offset int64, max int, wait time.Duration) ([]Record, error) {
	var e enc
	e.byte(opFetch)
	e.str(topic)
	e.uint32(uint32(partition))
	e.uint64(uint64(offset))
	e.uint32(uint32(max))
	e.uint32(waitToMillis(wait))
	d, err := c.roundTrip(e.buf)
	if err != nil {
		return nil, err
	}
	n, err := d.uint32()
	if err != nil {
		return nil, err
	}
	out := make([]Record, 0, n)
	for i := uint32(0); i < n; i++ {
		part, err := d.uint32()
		if err != nil {
			return nil, err
		}
		off, err := d.uint64()
		if err != nil {
			return nil, err
		}
		ts, err := d.uint64()
		if err != nil {
			return nil, err
		}
		key, err := d.bytes()
		if err != nil {
			return nil, err
		}
		val, err := d.bytes()
		if err != nil {
			return nil, err
		}
		out = append(out, Record{
			Topic:     topic,
			Partition: int(part),
			Offset:    int64(off),
			Timestamp: time.Unix(0, int64(ts)),
			Key:       key,
			Value:     val,
		})
	}
	return out, nil
}

// FetchWait aliases Fetch to satisfy the Transport interface.
func (c *Client) FetchWait(topic string, partition int, offset int64, max int, wait time.Duration) ([]Record, error) {
	return c.Fetch(topic, partition, offset, max, wait)
}

// EndOffset mirrors Broker.EndOffset.
func (c *Client) EndOffset(topic string, partition int) (int64, error) {
	var e enc
	e.byte(opEndOffset)
	e.str(topic)
	e.uint32(uint32(partition))
	d, err := c.roundTrip(e.buf)
	if err != nil {
		return 0, err
	}
	off, err := d.uint64()
	return int64(off), err
}

// Partitions mirrors Broker.Partitions.
func (c *Client) Partitions(topic string) (int, error) {
	var e enc
	e.byte(opPartitions)
	e.str(topic)
	d, err := c.roundTrip(e.buf)
	if err != nil {
		return 0, err
	}
	n, err := d.uint32()
	return int(n), err
}

// CommitOffset mirrors Broker.CommitOffset.
func (c *Client) CommitOffset(group, topic string, partition int, offset int64) error {
	var e enc
	e.byte(opCommit)
	e.str(group)
	e.str(topic)
	e.uint32(uint32(partition))
	e.uint64(uint64(offset))
	_, err := c.roundTrip(e.buf)
	return err
}

// CommittedOffset mirrors Broker.CommittedOffset.
func (c *Client) CommittedOffset(group, topic string, partition int) (int64, error) {
	var e enc
	e.byte(opCommitted)
	e.str(group)
	e.str(topic)
	e.uint32(uint32(partition))
	d, err := c.roundTrip(e.buf)
	if err != nil {
		return 0, err
	}
	off, err := d.uint64()
	return int64(off), err
}
