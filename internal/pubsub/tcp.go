package pubsub

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Server exposes a Broker over TCP with the frame protocol in wire.go,
// so proxies and the aggregator can run as separate processes. Requests
// on one connection are handled strictly in order and answered in the
// same order — clients may pipeline any number of requests without
// waiting for responses, and match responses to requests FIFO.
type Server struct {
	broker *Broker
	ln     net.Listener
	wg     sync.WaitGroup
	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	// legacyV1 makes the server reject the wire-v2 opcodes (opFeatures,
	// opPublishBatchV2) exactly like a pre-v2 build, for interop tests
	// exercising the client's negotiation fallback. Set before clients
	// connect.
	legacyV1 bool
}

// Serve starts serving the broker on addr (e.g. "127.0.0.1:0") and
// returns immediately; Addr reports the bound address.
func Serve(b *Broker, addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("pubsub: listen: %w", err)
	}
	s := &Server{broker: b, ln: ln, conns: make(map[net.Conn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listening address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the listener and all connections. Handlers blocked in a
// server-side WaitFetch observe the close within one wait slice, so
// Close returns promptly even with long client fetch timeouts in
// flight.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	err := s.ln.Close()
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
	return err
}

func (s *Server) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	for {
		req, err := readFrame(conn)
		if err != nil {
			// Includes oversized frames: the payload was never read, so
			// the stream cannot be resynchronized — drop the connection.
			return
		}
		resp := s.handle(req)
		if err := writeFrame(conn, resp); err != nil {
			return
		}
	}
}

func respErr(err error) []byte {
	var e enc
	e.byte(1)
	e.str(err.Error())
	return e.buf
}

func (s *Server) handle(req []byte) []byte {
	d := &dec{buf: req}
	op, err := d.byte()
	if err != nil {
		return respErr(err)
	}
	if s.legacyV1 && (op == opFeatures || op == opPublishBatchV2 ||
		op == opPublishBatchSession || op == opPublishColumnsSession) {
		return respErr(fmt.Errorf("%w: unknown opcode %d", ErrWire, op))
	}
	switch op {
	case opCreateTopic:
		topic, err := d.str()
		if err != nil {
			return respErr(err)
		}
		parts, err := d.uint32()
		if err != nil {
			return respErr(err)
		}
		if err := s.broker.CreateTopic(topic, int(parts)); err != nil {
			return respErr(err)
		}
		return []byte{0}
	case opPublish:
		topic, err := d.str()
		if err != nil {
			return respErr(err)
		}
		key, err := decodeOptBytes(d)
		if err != nil {
			return respErr(err)
		}
		val, err := d.bytes()
		if err != nil {
			return respErr(err)
		}
		part, off, err := s.broker.Publish(topic, key, val)
		if err != nil {
			return respErr(err)
		}
		var e enc
		e.byte(0)
		e.uint32(uint32(part))
		e.uint64(uint64(off))
		return e.buf
	case opPublishBatch:
		topic, err := d.str()
		if err != nil {
			return respErr(err)
		}
		n, err := d.uint32()
		if err != nil {
			return respErr(err)
		}
		// The frame is already bounded by maxFrame; cap the initial
		// allocation so a lying count cannot balloon memory before the
		// short-frame check trips.
		msgs := make([]Message, 0, min(int(n), 4096))
		for i := uint32(0); i < n; i++ {
			key, err := decodeOptBytes(d)
			if err != nil {
				return respErr(err)
			}
			val, err := d.bytes()
			if err != nil {
				return respErr(err)
			}
			msgs = append(msgs, Message{Key: key, Value: val})
		}
		results, err := s.broker.PublishBatch(topic, msgs)
		if err != nil {
			return respErr(err)
		}
		var e enc
		e.byte(0)
		e.uint32(uint32(len(results)))
		for _, r := range results {
			e.uint32(uint32(r.Partition))
			e.uint64(uint64(r.Offset))
		}
		return e.buf
	case opFetch:
		topic, err := d.str()
		if err != nil {
			return respErr(err)
		}
		part, err := d.uint32()
		if err != nil {
			return respErr(err)
		}
		off, err := d.uint64()
		if err != nil {
			return respErr(err)
		}
		max, err := d.uint32()
		if err != nil {
			return respErr(err)
		}
		waitMs, err := d.uint32()
		if err != nil {
			return respErr(err)
		}
		var recs []Record
		if waitMs > 0 {
			recs, err = s.waitFetch(topic, int(part), int64(off), int(max), time.Duration(waitMs)*time.Millisecond)
		} else {
			recs, err = s.broker.Fetch(topic, int(part), int64(off), int(max))
		}
		if err != nil {
			return respErr(err)
		}
		var e enc
		e.byte(0)
		e.uint32(uint32(len(recs)))
		for _, r := range recs {
			e.uint32(uint32(r.Partition))
			e.uint64(uint64(r.Offset))
			e.uint64(uint64(r.Timestamp.UnixNano()))
			e.bytes(r.Key)
			e.bytes(r.Value)
		}
		return e.buf
	case opEndOffset:
		topic, err := d.str()
		if err != nil {
			return respErr(err)
		}
		part, err := d.uint32()
		if err != nil {
			return respErr(err)
		}
		off, err := s.broker.EndOffset(topic, int(part))
		if err != nil {
			return respErr(err)
		}
		var e enc
		e.byte(0)
		e.uint64(uint64(off))
		return e.buf
	case opCommit:
		group, err := d.str()
		if err != nil {
			return respErr(err)
		}
		topic, err := d.str()
		if err != nil {
			return respErr(err)
		}
		part, err := d.uint32()
		if err != nil {
			return respErr(err)
		}
		off, err := d.uint64()
		if err != nil {
			return respErr(err)
		}
		if err := s.broker.CommitOffset(group, topic, int(part), int64(off)); err != nil {
			return respErr(err)
		}
		return []byte{0}
	case opCommitted:
		group, err := d.str()
		if err != nil {
			return respErr(err)
		}
		topic, err := d.str()
		if err != nil {
			return respErr(err)
		}
		part, err := d.uint32()
		if err != nil {
			return respErr(err)
		}
		off, err := s.broker.CommittedOffset(group, topic, int(part))
		if err != nil {
			return respErr(err)
		}
		var e enc
		e.byte(0)
		e.uint64(uint64(off))
		return e.buf
	case opPartitions:
		topic, err := d.str()
		if err != nil {
			return respErr(err)
		}
		n, err := s.broker.Partitions(topic)
		if err != nil {
			return respErr(err)
		}
		var e enc
		e.byte(0)
		e.uint32(uint32(n))
		return e.buf
	case opFeatures:
		return s.handleFeatures()
	case opPublishBatchV2:
		return s.handlePublishColumns(d)
	case opPublishBatchSession:
		return s.handlePublishBatchSession(d)
	case opPublishColumnsSession:
		return s.handlePublishColumnsSession(d)
	default:
		return respErr(fmt.Errorf("%w: unknown opcode %d", ErrWire, op))
	}
}

// waitFetch is the server side of a blocking fetch. The wait is sliced
// so a handler parked in the broker's WaitFetch observes Server.Close
// within one slice instead of pinning Close for the client's full
// timeout.
func (s *Server) waitFetch(topic string, part int, off int64, max int, wait time.Duration) ([]Record, error) {
	const slice = 20 * time.Millisecond
	deadline := time.Now().Add(wait)
	for {
		remain := time.Until(deadline)
		if remain <= 0 {
			return s.broker.Fetch(topic, part, off, max)
		}
		if remain > slice {
			remain = slice
		}
		recs, err := s.broker.WaitFetch(topic, part, off, max, remain)
		if err != nil || len(recs) > 0 {
			return recs, err
		}
		if s.isClosed() {
			return nil, ErrClosed
		}
	}
}

// decodeOptBytes reads the hasKey-prefixed optional byte string used by
// the publish opcodes: a 0 marker means nil, a 1 marker is followed by
// a length-prefixed value.
func decodeOptBytes(d *dec) ([]byte, error) {
	has, err := d.byte()
	if err != nil {
		return nil, err
	}
	switch has {
	case 0:
		return nil, nil
	case 1:
		return d.bytes()
	default:
		return nil, fmt.Errorf("%w: bad optional-bytes marker %d", ErrWire, has)
	}
}

func encodeOptBytes(e *enc, b []byte) {
	if b != nil {
		e.byte(1)
		e.bytes(b)
	} else {
		e.byte(0)
	}
}

// ErrAmbiguous reports a request whose outcome is unknown: it was
// written (at least partially) to a connection that died before its
// response arrived. The broker may or may not have applied it. Blind
// retries of ambiguous publishes can double-publish; retry them only
// through an idempotent path (Producer sessions), or treat the data as
// possibly lost. Requests that failed before anything reached the wire
// (dial failure, closed client) return plain errors, never ErrAmbiguous.
var ErrAmbiguous = errors.New("pubsub: request outcome unknown")

// Options configures the TCP client transport. The zero value of every
// field selects a default that preserves the historical behavior: a 5 s
// dial timeout, 25 ms→1 s redial backoff, the fixed 1 ms full-partition
// retry pacing, and no jitter.
type Options struct {
	// Conns is the connection pool size (DefaultPoolConns when <= 0 via
	// DialPool; DialOptions treats <= 0 as 1).
	Conns int
	// DialTimeout bounds each dial attempt (initial and redials).
	DialTimeout time.Duration
	// RedialBackoff / RedialBackoffMax shape the capped exponential
	// backoff between redial attempts after a connection failure: while
	// a conn is backing off, requests routed to it fail fast with the
	// last dial error instead of stacking up behind a dial.
	RedialBackoff    time.Duration
	RedialBackoffMax time.Duration
	// RetryPacing is the sleep between full-partition retries in the
	// Wait publish variants (the configurable form of the broker's
	// fullRetryInterval).
	RetryPacing time.Duration
	// Seed, when nonzero, enables deterministic jitter (±50%) on redial
	// backoff and retry pacing, so a fleet of clients does not retry in
	// lockstep. Zero keeps every delay fixed.
	Seed int64
	// LazyDial tolerates initial dial failures: the connection is kept
	// in its dead state (requests fail fast and redial on demand under
	// backoff) instead of failing DialOptions. Degraded-mode callers
	// use this to come up while a proxy is still down.
	LazyDial bool
}

func (o Options) withDefaults() Options {
	if o.Conns <= 0 {
		o.Conns = 1
	}
	if o.DialTimeout <= 0 {
		o.DialTimeout = 5 * time.Second
	}
	if o.RedialBackoff <= 0 {
		o.RedialBackoff = 25 * time.Millisecond
	}
	if o.RedialBackoffMax <= 0 {
		o.RedialBackoffMax = time.Second
	}
	if o.RetryPacing <= 0 {
		o.RetryPacing = fullRetryInterval
	}
	return o
}

// jitterState seeds the shared xorshift jitter stream; zero (no Seed)
// disables jitter.
func jitterState(seed int64) uint64 {
	if seed == 0 {
		return 0
	}
	// SplitMix64 scramble so nearby seeds give unrelated streams.
	z := uint64(seed) + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	if z == 0 {
		z = 1
	}
	return z
}

// jitterDur spreads d over [d/2, 3d/2) using the shared xorshift state;
// a zero state returns d unchanged.
func jitterDur(state *atomic.Uint64, d time.Duration) time.Duration {
	if d <= 0 {
		return d
	}
	for {
		old := state.Load()
		if old == 0 {
			return d
		}
		x := old
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		if state.CompareAndSwap(old, x) {
			return d/2 + time.Duration(x%uint64(d))
		}
	}
}

// Client is a remote handle on a broker served over TCP. It is safe for
// concurrent use and pipelines: a request is written and its response
// awaited without blocking other goroutines' requests, which flow on
// the same connections back to back. Dial opens a single connection;
// DialPool spreads requests over a small pool so a server-side blocking
// fetch parked on one connection does not stall unrelated requests.
//
// Connections self-heal: when one dies, its in-flight requests fail
// with ErrAmbiguous (they were on the wire; the outcome is unknown) and
// the conn redials on the next request, with capped exponential backoff
// between failed dial attempts. Close is final — a closed client never
// redials.
type Client struct {
	conns []*clientConn
	rr    atomic.Uint64
	opts  Options
	// jitter is the shared xorshift state for backoff/pacing jitter;
	// zero when Options.Seed is unset.
	jitter atomic.Uint64
	// features caches the wire-v2 negotiation verdict (see
	// supportsColumns): featUnknown until probed, then featV2 or
	// featV1Only for the life of the client. sessions caches the
	// producer-session verdict the same way.
	features atomic.Int32
	sessions atomic.Int32
	// lineage caches the provenance-plane verdict the same way.
	lineage atomic.Int32
}

// SupportsLineage reports whether the server hosts the lineage
// provenance plane (featureLineage in its capability mask), probing
// once via opFeatures and caching a definite verdict like
// supportsColumns. Against a v1 peer, or on transport failure, it
// reports false — callers skip stamping rather than erroring.
func (c *Client) SupportsLineage() bool {
	switch c.lineage.Load() {
	case featV2:
		return true
	case featV1Only:
		return false
	}
	mask, err := c.Features()
	if err != nil {
		if errors.Is(err, ErrWire) {
			c.lineage.Store(featV1Only)
		}
		return false
	}
	if mask&featureLineage != 0 {
		c.lineage.Store(featV2)
		return true
	}
	c.lineage.Store(featV1Only)
	return false
}

// DefaultPoolConns is the pool size DialPool uses for conns <= 0.
const DefaultPoolConns = 4

// Dial connects to a broker server with a single connection.
func Dial(addr string) (*Client, error) { return DialOptions(addr, Options{Conns: 1}) }

// DialPool connects to a broker server with a pool of conns
// connections (DefaultPoolConns when conns <= 0). Requests pick the
// least-loaded connection, so blocking fetches and bulk publishes
// spread out instead of queueing head-of-line.
func DialPool(addr string, conns int) (*Client, error) {
	if conns <= 0 {
		conns = DefaultPoolConns
	}
	return DialOptions(addr, Options{Conns: conns})
}

// DialOptions connects with explicit transport options. Every
// connection is dialed eagerly, so an unreachable server fails the call
// rather than the first request.
func DialOptions(addr string, opts Options) (*Client, error) {
	opts = opts.withDefaults()
	c := &Client{conns: make([]*clientConn, 0, opts.Conns), opts: opts}
	c.jitter.Store(jitterState(opts.Seed))
	for i := 0; i < opts.Conns; i++ {
		cc := &clientConn{addr: addr, opts: &c.opts, jitter: &c.jitter}
		if err := cc.redial(); err != nil && !opts.LazyDial {
			c.Close()
			return nil, err
		}
		c.conns = append(c.conns, cc)
	}
	return c, nil
}

// pace yields one (jittered) full-partition retry sleep.
func (c *Client) pace() time.Duration {
	return jitterDur(&c.jitter, c.opts.RetryPacing)
}

// Close closes all connections; outstanding requests fail and no
// connection redials afterwards.
func (c *Client) Close() error {
	var err error
	for _, cc := range c.conns {
		if e := cc.close(); e != nil && err == nil {
			err = e
		}
	}
	return err
}

// clientConn is one pipelined connection: requests are framed under mu
// (which also fixes their FIFO position in queue), and a dedicated
// reader goroutine per live conn matches each response frame to the
// oldest waiter. conn is nil between a failure and the next successful
// redial; the conn value doubles as a generation token so a stale
// reader (or a late fail) of a replaced conn cannot touch the new one's
// queue.
type clientConn struct {
	addr   string
	opts   *Options
	jitter *atomic.Uint64

	// dialMu serializes redials so only one goroutine dials while others
	// fail fast; it is never held together with mu across a blocking
	// call, so pick()/pending() stay responsive during a slow dial.
	dialMu sync.Mutex

	mu        sync.Mutex
	conn      net.Conn
	queue     []chan connResult
	closed    bool
	lastErr   error
	dialFails int
	nextDial  time.Time
}

type connResult struct {
	resp []byte
	err  error
}

func (cc *clientConn) pending() int {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	return len(cc.queue)
}

// fail retires one dead connection generation: if conn is still
// current, it is detached and closed, and every queued waiter — whose
// request was already on the wire — fails with ErrAmbiguous. A fail for
// a stale generation is a no-op.
func (cc *clientConn) fail(conn net.Conn, err error) {
	cc.mu.Lock()
	if cc.conn != conn {
		cc.mu.Unlock()
		return
	}
	cc.conn = nil
	cc.lastErr = err
	waiters := cc.queue
	cc.queue = nil
	cc.mu.Unlock()
	conn.Close()
	werr := fmt.Errorf("%w: %v", ErrAmbiguous, err)
	for _, ch := range waiters {
		ch <- connResult{err: werr}
	}
}

// close shuts the conn down for good: in-flight requests fail
// (ambiguously — they were written), and subsequent roundTrips return
// ErrClosed instead of redialing.
func (cc *clientConn) close() error {
	cc.mu.Lock()
	cc.closed = true
	conn := cc.conn
	cc.conn = nil
	waiters := cc.queue
	cc.queue = nil
	cc.mu.Unlock()
	var err error
	if conn != nil {
		err = conn.Close()
	}
	werr := fmt.Errorf("%w: %v", ErrAmbiguous, ErrClosed)
	for _, ch := range waiters {
		ch <- connResult{err: werr}
	}
	return err
}

// redial establishes a fresh connection if none is live, honoring the
// backoff window: during the window it fails fast with the last error
// so callers (and their retry policies) pace themselves instead of
// stacking up behind a dial.
func (cc *clientConn) redial() error {
	cc.dialMu.Lock()
	defer cc.dialMu.Unlock()
	cc.mu.Lock()
	if cc.closed {
		cc.mu.Unlock()
		return ErrClosed
	}
	if cc.conn != nil {
		cc.mu.Unlock()
		return nil
	}
	if !cc.nextDial.IsZero() && time.Now().Before(cc.nextDial) {
		err := cc.lastErr
		cc.mu.Unlock()
		return fmt.Errorf("pubsub: %s: redial backing off: %w", cc.addr, err)
	}
	timeout := cc.opts.DialTimeout
	cc.mu.Unlock()
	conn, err := net.DialTimeout("tcp", cc.addr, timeout)
	cc.mu.Lock()
	defer cc.mu.Unlock()
	if cc.closed {
		if err == nil {
			conn.Close()
		}
		return ErrClosed
	}
	if err != nil {
		cc.dialFails++
		cc.lastErr = err
		cc.nextDial = time.Now().Add(cc.backoffLocked())
		return fmt.Errorf("pubsub: dial %s: %w", cc.addr, err)
	}
	cc.dialFails = 0
	cc.nextDial = time.Time{}
	cc.lastErr = nil
	cc.conn = conn
	go cc.readLoop(conn)
	return nil
}

// backoffLocked returns the next redial backoff: base << failures,
// capped, jittered. Caller holds cc.mu.
func (cc *clientConn) backoffLocked() time.Duration {
	d := cc.opts.RedialBackoff
	for i := 1; i < cc.dialFails && d < cc.opts.RedialBackoffMax; i++ {
		d *= 2
	}
	if d > cc.opts.RedialBackoffMax {
		d = cc.opts.RedialBackoffMax
	}
	return jitterDur(cc.jitter, d)
}

func (cc *clientConn) readLoop(conn net.Conn) {
	for {
		resp, err := readFrame(conn)
		if err != nil {
			cc.fail(conn, err)
			return
		}
		cc.mu.Lock()
		if cc.conn != conn {
			// A failure raced us and this generation is already retired;
			// the response matches a waiter that was failed. Drop it.
			cc.mu.Unlock()
			return
		}
		var ch chan connResult
		if len(cc.queue) > 0 {
			ch = cc.queue[0]
			cc.queue = cc.queue[1:]
		}
		cc.mu.Unlock()
		if ch == nil {
			cc.fail(conn, fmt.Errorf("%w: unsolicited response", ErrWire))
			return
		}
		ch <- connResult{resp: resp}
	}
}

func (cc *clientConn) roundTrip(req []byte) (*dec, error) {
	ch := make(chan connResult, 1)
	cc.mu.Lock()
	for cc.conn == nil {
		if cc.closed {
			cc.mu.Unlock()
			return nil, ErrClosed
		}
		cc.mu.Unlock()
		// Nothing has reached the wire yet, so a dial failure here is
		// unambiguous: the request was definitely not applied.
		if err := cc.redial(); err != nil {
			return nil, err
		}
		cc.mu.Lock()
	}
	conn := cc.conn
	cc.queue = append(cc.queue, ch)
	err := writeFrame(conn, req)
	cc.mu.Unlock()
	if err != nil {
		// The request may be half-framed on the wire; this generation is
		// unusable. fail() wakes every waiter — including our ch — with
		// ErrAmbiguous (a concurrent failure may already have done so).
		cc.fail(conn, err)
	}
	r := <-ch
	if r.err != nil {
		return nil, r.err
	}
	d := &dec{buf: r.resp}
	status, err := d.byte()
	if err != nil {
		return nil, err
	}
	if status != 0 {
		msg, err := d.str()
		if err != nil {
			return nil, err
		}
		return nil, wireError(msg)
	}
	return d, nil
}

// wireSentinels are the broker errors re-attached on the client side of
// the TCP transport: the server serializes an error as its message
// string, and the matching sentinel is recovered by prefix so
// errors.Is keeps working across the wire — most importantly for
// ErrPartitionFull, which publishers must distinguish from fatal
// errors to retry (PublishWait) instead of failing.
var wireSentinels = []error{
	ErrPartitionFull, ErrNoTopic, ErrTopicExists, ErrNoPartition, ErrBadOffset, ErrClosed,
	// ErrWire crosses the wire too so the client can recognize a v1
	// server's "unknown opcode" rejection during feature negotiation.
	ErrWire,
}

func wireError(msg string) error {
	for _, s := range wireSentinels {
		text := s.Error()
		if msg == text {
			return s
		}
		if strings.HasPrefix(msg, text+":") {
			return fmt.Errorf("%w%s", s, msg[len(text):])
		}
	}
	return errors.New(msg)
}

// pick returns the live connection with the fewest in-flight requests,
// breaking ties round-robin. Dead conns (failed, awaiting redial) are
// passed over while any live conn exists, so one dead pool member never
// swallows least-loaded traffic; with the whole pool down, a dead conn
// is returned and its roundTrip redials on demand.
func (c *Client) pick() *clientConn {
	if len(c.conns) == 1 {
		return c.conns[0]
	}
	start := int(c.rr.Add(1))
	var best *clientConn
	bestLoad := -1
	for i := 0; i < len(c.conns); i++ {
		cc := c.conns[(start+i)%len(c.conns)]
		cc.mu.Lock()
		live := cc.conn != nil
		load := len(cc.queue)
		cc.mu.Unlock()
		if !live {
			continue
		}
		if bestLoad < 0 || load < bestLoad {
			best, bestLoad = cc, load
			if load == 0 {
				break
			}
		}
	}
	if best == nil {
		return c.conns[start%len(c.conns)]
	}
	return best
}

func (c *Client) roundTrip(req []byte) (*dec, error) {
	return c.pick().roundTrip(req)
}

// CreateTopic mirrors Broker.CreateTopic.
func (c *Client) CreateTopic(topic string, partitions int) error {
	var e enc
	e.byte(opCreateTopic)
	e.str(topic)
	e.uint32(uint32(partitions))
	_, err := c.roundTrip(e.buf)
	return err
}

// Publish mirrors Broker.Publish. The request frame is encoded into a
// pooled buffer that is recycled once the frame is on the wire; key and
// value are consumed before Publish returns.
func (c *Client) Publish(topic string, key, value []byte) (int, int64, error) {
	e := getEnc()
	e.byte(opPublish)
	e.str(topic)
	encodeOptBytes(e, key)
	e.bytes(value)
	d, err := c.roundTrip(e.buf)
	putEnc(e)
	if err != nil {
		return 0, 0, err
	}
	part, err := d.uint32()
	if err != nil {
		return 0, 0, err
	}
	off, err := d.uint64()
	if err != nil {
		return 0, 0, err
	}
	return int(part), int64(off), nil
}

// maxBatchBytes caps one batched publish frame well under maxFrame;
// larger batches are split transparently.
const maxBatchBytes = 8 << 20

// PublishBatch mirrors Broker.PublishBatch: the whole batch travels as
// one frame (split only past maxBatchBytes) and costs one round-trip,
// instead of one per message.
func (c *Client) PublishBatch(topic string, msgs []Message) ([]PubResult, error) {
	if len(msgs) == 0 {
		return nil, nil
	}
	out := make([]PubResult, 0, len(msgs))
	e := getEnc()
	defer putEnc(e)
	for start := 0; start < len(msgs); {
		// Reuse the pooled frame buffer across chunks; the previous
		// chunk's frame was fully written before roundTrip returned.
		e.buf = e.buf[:0]
		e.byte(opPublishBatch)
		e.str(topic)
		countAt := len(e.buf)
		e.uint32(0) // patched with the chunk's message count below
		n := 0
		for i := start; i < len(msgs); i++ {
			m := msgs[i]
			if n > 0 && len(e.buf)+len(m.Key)+len(m.Value)+9 > maxBatchBytes {
				break
			}
			encodeOptBytes(e, m.Key)
			e.bytes(m.Value)
			n++
		}
		binary.BigEndian.PutUint32(e.buf[countAt:], uint32(n))
		d, err := c.roundTrip(e.buf)
		if err != nil {
			return nil, err
		}
		cnt, err := d.uint32()
		if err != nil {
			return nil, err
		}
		if int(cnt) != n {
			return nil, fmt.Errorf("%w: batch acked %d of %d messages", ErrWire, cnt, n)
		}
		for i := 0; i < n; i++ {
			part, err := d.uint32()
			if err != nil {
				return nil, err
			}
			off, err := d.uint64()
			if err != nil {
				return nil, err
			}
			out = append(out, PubResult{Partition: int(part), Offset: int64(off)})
		}
		start += n
	}
	return out, nil
}

// PublishWait mirrors Broker.PublishWait: the client retries while the
// remote partition reports ErrPartitionFull, until the timeout. The
// server holds no blocked publisher state — each retry is a fresh
// round-trip — so a slow publisher cannot pin a server handler.
func (c *Client) PublishWait(topic string, key, value []byte, timeout time.Duration) (int, int64, error) {
	return publishWait(c, topic, key, value, timeout, c.pace)
}

// PublishBatchWait mirrors Broker.PublishBatchWait. Note the atomicity
// grain: batches above maxBatchBytes are split into chunked frames, and
// all-or-nothing holds per chunk (each chunk is one broker batch), not
// across chunks.
func (c *Client) PublishBatchWait(topic string, msgs []Message, timeout time.Duration) ([]PubResult, error) {
	return publishBatchWait(c, topic, msgs, timeout, c.pace)
}

// waitToMillis converts a fetch wait to whole milliseconds for the
// wire, rounding up so a sub-millisecond wait stays a blocking wait
// instead of silently degrading into a non-blocking fetch.
func waitToMillis(d time.Duration) uint32 {
	if d <= 0 {
		return 0
	}
	// Clamp before rounding so the ceiling addition cannot overflow.
	if d >= math.MaxUint32*time.Millisecond {
		return math.MaxUint32
	}
	return uint32((d + time.Millisecond - 1) / time.Millisecond)
}

// Fetch mirrors Broker.Fetch; wait > 0 turns it into WaitFetch with
// that timeout.
func (c *Client) Fetch(topic string, partition int, offset int64, max int, wait time.Duration) ([]Record, error) {
	var e enc
	e.byte(opFetch)
	e.str(topic)
	e.uint32(uint32(partition))
	e.uint64(uint64(offset))
	e.uint32(uint32(max))
	e.uint32(waitToMillis(wait))
	d, err := c.roundTrip(e.buf)
	if err != nil {
		return nil, err
	}
	n, err := d.uint32()
	if err != nil {
		return nil, err
	}
	out := make([]Record, 0, n)
	for i := uint32(0); i < n; i++ {
		part, err := d.uint32()
		if err != nil {
			return nil, err
		}
		off, err := d.uint64()
		if err != nil {
			return nil, err
		}
		ts, err := d.uint64()
		if err != nil {
			return nil, err
		}
		key, err := d.bytes()
		if err != nil {
			return nil, err
		}
		val, err := d.bytes()
		if err != nil {
			return nil, err
		}
		out = append(out, Record{
			Topic:     topic,
			Partition: int(part),
			Offset:    int64(off),
			Timestamp: time.Unix(0, int64(ts)),
			Key:       key,
			Value:     val,
		})
	}
	return out, nil
}

// FetchWait aliases Fetch to satisfy the Transport interface.
func (c *Client) FetchWait(topic string, partition int, offset int64, max int, wait time.Duration) ([]Record, error) {
	return c.Fetch(topic, partition, offset, max, wait)
}

// EndOffset mirrors Broker.EndOffset.
func (c *Client) EndOffset(topic string, partition int) (int64, error) {
	var e enc
	e.byte(opEndOffset)
	e.str(topic)
	e.uint32(uint32(partition))
	d, err := c.roundTrip(e.buf)
	if err != nil {
		return 0, err
	}
	off, err := d.uint64()
	return int64(off), err
}

// Partitions mirrors Broker.Partitions.
func (c *Client) Partitions(topic string) (int, error) {
	var e enc
	e.byte(opPartitions)
	e.str(topic)
	d, err := c.roundTrip(e.buf)
	if err != nil {
		return 0, err
	}
	n, err := d.uint32()
	return int(n), err
}

// CommitOffset mirrors Broker.CommitOffset.
func (c *Client) CommitOffset(group, topic string, partition int, offset int64) error {
	var e enc
	e.byte(opCommit)
	e.str(group)
	e.str(topic)
	e.uint32(uint32(partition))
	e.uint64(uint64(offset))
	_, err := c.roundTrip(e.buf)
	return err
}

// CommittedOffset mirrors Broker.CommittedOffset.
func (c *Client) CommittedOffset(group, topic string, partition int) (int64, error) {
	var e enc
	e.byte(opCommitted)
	e.str(group)
	e.str(topic)
	e.uint32(uint32(partition))
	d, err := c.roundTrip(e.buf)
	if err != nil {
		return 0, err
	}
	off, err := d.uint64()
	return int64(off), err
}
