// Package pubsub is the Kafka substitute PrivApprox proxies are built
// on (paper §5): a topic-based publish/subscribe broker with partitioned
// append-only logs, committed consumer-group offsets, blocking polls,
// and an optional TCP transport. The proxies create two topics — key and
// answer — and forward client shares through them to the aggregator.
package pubsub

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"privapprox/internal/telemetry"
	"privapprox/internal/wal"
)

// Errors reported by the broker.
var (
	ErrNoTopic     = errors.New("pubsub: no such topic")
	ErrTopicExists = errors.New("pubsub: topic already exists")
	ErrNoPartition = errors.New("pubsub: no such partition")
	ErrBadOffset   = errors.New("pubsub: offset out of range")
	ErrClosed      = errors.New("pubsub: broker closed")
	// ErrPartitionFull is the backpressure signal of a bounded partition
	// (SetTopicCapacity): the publish would push the partition's
	// unconsumed backlog — records past the slowest committed consumer
	// offset — beyond its capacity. The publish (or the whole batch, for
	// PublishBatch: a full batch is refused all-or-nothing, never
	// partially applied) had no effect; the publisher may retry after
	// consumers commit progress, or use PublishWait/PublishBatchWait to
	// block with a deadline. The sentinel survives the TCP transport:
	// errors.Is(err, ErrPartitionFull) holds on the remote publisher too.
	ErrPartitionFull = errors.New("pubsub: partition full")
)

// Record is one log entry, the unit producers publish and consumers
// poll.
type Record struct {
	Topic     string
	Partition int
	Offset    int64
	Key       []byte
	Value     []byte
	Timestamp time.Time
}

// Stats counts broker traffic; Fig. 9's network accounting reads these.
// The backlog fields surface consumer lag at snapshot time, the signal
// overload control acts on.
type Stats struct {
	MessagesIn  int64
	BytesIn     int64
	MessagesOut int64
	BytesOut    int64
	// Rejected counts publish attempts refused with ErrPartitionFull
	// (each message of a refused batch counts once per attempt).
	Rejected int64
	// Duplicates counts messages discarded by producer-session
	// deduplication: a retried session batch whose (producer, sequence)
	// tag the partition had already applied. Nonzero Duplicates under
	// fault injection is the proof that at-least-once retries were
	// actually deduplicated rather than silently double-published.
	Duplicates int64
	// TotalBacklog is the number of unconsumed records summed over all
	// partitions at snapshot time: per partition, end offset minus the
	// slowest committed consumer offset (the full log length before any
	// group commits).
	TotalBacklog int64
	// MaxBacklog is the largest single-partition backlog at snapshot
	// time.
	MaxBacklog int64
}

type partitionLog struct {
	mu      sync.Mutex
	cond    *sync.Cond
	records []Record
	// capacity, when > 0, bounds the partition's unconsumed backlog:
	// a publish that would leave more than capacity records past the
	// slowest committed consumer offset fails with ErrPartitionFull.
	capacity int
	// w, when non-nil, is the partition's write-ahead log: every publish
	// journals its record here — before the in-memory append, before the
	// ack — so an acknowledged record survives a broker restart. The WAL
	// LSN of a record equals its partition offset. encBuf is the frame
	// scratch, touched only under mu.
	w      *wal.Log
	encBuf []byte
	// producers is the partition's session-dedup state, lazily allocated
	// on the first session publish: producer ID → the newest applied
	// sequence and where its slice of records landed. The state is
	// journaled with the records themselves (every record of a session
	// slice carries its producer tag), so it survives a restart in
	// exactly the same atomic unit as the data it guards.
	producers map[uint64]producerSlot
}

// producerSlot remembers the newest batch one producer session applied
// to one partition: a retry carrying the same sequence is a duplicate
// and returns the stored offsets instead of appending again.
type producerSlot struct {
	seq   uint64
	first int64 // offset of the slice's first record
	count int   // records in the slice
}

func newPartitionLog() *partitionLog {
	p := &partitionLog{}
	p.cond = sync.NewCond(&p.mu)
	return p
}

type topicLog struct {
	name       string
	partitions []*partitionLog
}

// Broker is an in-memory, concurrency-safe message broker. A broker
// opened with OpenBroker additionally journals partitions, consumer
// commits, and topic metadata to write-ahead logs under a data
// directory, and rebuilds itself from them on restart.
type Broker struct {
	mu      sync.RWMutex
	topics  map[string]*topicLog
	offsets map[string]map[string]map[int]int64 // group → topic → partition → next offset
	stats   Stats
	statsMu sync.Mutex
	closed  bool
	rr      uint64      // round-robin counter for keyless publishes
	dur     *durability // nil for a purely in-memory broker
	// pubLat, when set, observes the wall time of each successful
	// publish call (batch-granular on the batch paths); nil costs one
	// atomic load per publish. See telemetry.go.
	pubLat atomic.Pointer[telemetry.Histogram]
}

// NewBroker returns an empty broker.
func NewBroker() *Broker {
	return &Broker{
		topics:  make(map[string]*topicLog),
		offsets: make(map[string]map[string]map[int]int64),
	}
}

// SupportsLineage reports provenance-plane support: an in-process
// broker always hosts the lineage sidecar topic (the Client mirrors
// this by probing the server's opFeatures mask).
func (b *Broker) SupportsLineage() bool { return true }

// CreateTopic registers a topic with the given partition count.
func (b *Broker) CreateTopic(name string, partitions int) error {
	if name == "" || partitions <= 0 {
		return fmt.Errorf("pubsub: invalid topic %q with %d partitions", name, partitions)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return ErrClosed
	}
	if _, ok := b.topics[name]; ok {
		return fmt.Errorf("%w: %q", ErrTopicExists, name)
	}
	if b.dur != nil {
		// Journal the topic before creating it, then bind a WAL to every
		// partition; a crash between the two replays the metadata record
		// and re-creates the (empty) partition logs idempotently.
		if err := b.dur.journalTopic(name, partitions); err != nil {
			return err
		}
	}
	t := &topicLog{name: name, partitions: make([]*partitionLog, partitions)}
	for i := range t.partitions {
		t.partitions[i] = newPartitionLog()
		if b.dur != nil {
			w, err := b.dur.openPartitionWAL(name, i)
			if err != nil {
				for _, p := range t.partitions[:i] {
					p.w.Close()
				}
				return err
			}
			t.partitions[i].w = w
		}
	}
	b.topics[name] = t
	return nil
}

// Topics lists topic names.
func (b *Broker) Topics() []string {
	b.mu.RLock()
	defer b.mu.RUnlock()
	out := make([]string, 0, len(b.topics))
	for name := range b.topics {
		out = append(out, name)
	}
	return out
}

// Partitions returns a topic's partition count.
func (b *Broker) Partitions(topic string) (int, error) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	t, ok := b.topics[topic]
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrNoTopic, topic)
	}
	return len(t.partitions), nil
}

// SetTopicCapacity bounds every partition of a topic to at most
// capacity unconsumed records. A publish that would push a partition's
// backlog — records past the slowest committed consumer offset —
// beyond the bound fails with ErrPartitionFull instead of growing the
// log without limit. capacity <= 0 removes the bound. Partition logs
// are append-only, so the bound is on the *unconsumed* suffix: a
// partition frees space when its slowest consumer group commits
// progress, not when records are deleted.
func (b *Broker) SetTopicCapacity(topic string, capacity int) error {
	b.mu.RLock()
	t, ok := b.topics[topic]
	b.mu.RUnlock()
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoTopic, topic)
	}
	if capacity < 0 {
		capacity = 0
	}
	for _, p := range t.partitions {
		p.mu.Lock()
		p.capacity = capacity
		p.mu.Unlock()
	}
	return nil
}

// committedFloor returns the slowest committed consumer offset for one
// partition — 0 when no group has committed yet, so a bounded partition
// admits at most capacity records until its first consumer commit.
func (b *Broker) committedFloor(topic string, partition int) int64 {
	b.mu.RLock()
	defer b.mu.RUnlock()
	floor := int64(-1)
	for _, gt := range b.offsets {
		tp, ok := gt[topic]
		if !ok {
			continue
		}
		off, ok := tp[partition]
		if !ok {
			continue
		}
		if floor < 0 || off < floor {
			floor = off
		}
	}
	if floor < 0 {
		return 0
	}
	return floor
}

// overCapacity reports whether appending n records would overflow the
// bounded partition. Caller holds p.mu; floor was read before the lock,
// which is safe because commits only advance — a stale floor can only
// make the check more conservative.
func (p *partitionLog) overCapacity(n int, floor int64) bool {
	return p.capacity > 0 && int64(len(p.records))+int64(n)-floor > int64(p.capacity)
}

// Publish appends a record. A non-nil key selects the partition by hash
// (records with equal keys stay ordered); a nil key round-robins. On a
// bounded partition at capacity the record is refused with
// ErrPartitionFull (see SetTopicCapacity).
func (b *Broker) Publish(topic string, key, value []byte) (int, int64, error) {
	h := b.pubLat.Load()
	var t0 time.Time
	if h != nil {
		t0 = time.Now()
	}
	b.mu.RLock()
	if b.closed {
		b.mu.RUnlock()
		return 0, 0, ErrClosed
	}
	t, ok := b.topics[topic]
	b.mu.RUnlock()
	if !ok {
		return 0, 0, fmt.Errorf("%w: %q", ErrNoTopic, topic)
	}
	var part int
	if key != nil {
		h := fnv.New32a()
		h.Write(key)
		part = int(h.Sum32()) % len(t.partitions)
		if part < 0 {
			part += len(t.partitions)
		}
	} else {
		b.statsMu.Lock()
		part = int(b.rr % uint64(len(t.partitions)))
		b.rr++
		b.statsMu.Unlock()
	}
	p := t.partitions[part]
	floor := b.committedFloor(topic, part)
	p.mu.Lock()
	if p.overCapacity(1, floor) {
		capacity := p.capacity
		p.mu.Unlock()
		b.statsMu.Lock()
		b.stats.Rejected++
		b.statsMu.Unlock()
		return 0, 0, fmt.Errorf("%w: topic %q partition %d at capacity %d", ErrPartitionFull, topic, part, capacity)
	}
	offset := int64(len(p.records))
	now := time.Now()
	if p.w != nil {
		// Durability before visibility: the record reaches the WAL (per
		// the fsync policy) before it is appended in memory, broadcast to
		// consumers, or acknowledged to the publisher.
		p.encBuf = appendPartitionRecord(p.encBuf[:0], now, key, value)
		if _, err := p.w.Append(p.encBuf); err != nil {
			p.mu.Unlock()
			return 0, 0, err
		}
	}
	rec := Record{
		Topic:     topic,
		Partition: part,
		Offset:    offset,
		Key:       append([]byte(nil), key...),
		Value:     append([]byte(nil), value...),
		Timestamp: now,
	}
	p.records = append(p.records, rec)
	p.cond.Broadcast()
	p.mu.Unlock()

	b.statsMu.Lock()
	b.stats.MessagesIn++
	b.stats.BytesIn += int64(len(key) + len(value))
	b.statsMu.Unlock()
	if h != nil {
		h.Observe(int64(time.Since(t0)))
	}
	return part, offset, nil
}

// PublishBatch appends a batch of records in one call, amortizing lock
// acquisitions: messages are grouped by destination partition, each
// partition is locked once, and the traffic counters are updated once
// for the whole batch. Results are returned in input order. Partition
// selection matches Publish (key hash, nil key round-robins).
//
// The batch is all-or-nothing: every target partition's capacity is
// checked (and every partition journaled) before any in-memory append,
// so a batch spanning several partitions of a bounded topic is either
// fully applied or refused with ErrPartitionFull having published
// nothing — a partially applied batch would break the publisher's
// retry (retrying would duplicate the partitions that did land).
func (b *Broker) PublishBatch(topic string, msgs []Message) ([]PubResult, error) {
	return b.publishRows(topic, msgs, 0, 0)
}

// PublishBatchSession is PublishBatch tagged with a producer session:
// pid identifies the producer (nonzero), seq its per-topic batch
// sequence, strictly increasing across a producer's batches to one
// topic. A partition that has already applied a sequence at or above
// seq skips its slice of the batch (counting Stats.Duplicates) and, for
// an exact replay of the newest batch, returns the offsets the original
// landed at — so a retry after an ambiguous failure is exactly-once.
// Every message must carry a key: keyless routing is round-robin, which
// would route a retry differently and defeat per-partition dedup.
func (b *Broker) PublishBatchSession(topic string, msgs []Message, pid, seq uint64) ([]PubResult, error) {
	if pid == 0 {
		return nil, fmt.Errorf("%w: zero producer id", ErrWire)
	}
	for i := range msgs {
		if msgs[i].Key == nil {
			return nil, fmt.Errorf("%w: keyless message in session batch", ErrWire)
		}
	}
	return b.publishRows(topic, msgs, pid, seq)
}

// dupSlices collects, per locked target partition, the session slot
// proving that partition already applied this (pid, seq) — the caller
// then skips capacity checks, journaling, and appends for it. Caller
// holds every partition lock in parts.
func dupSlices(t *topicLog, parts []int, pid, seq uint64) map[int]producerSlot {
	if pid == 0 {
		return nil
	}
	var dup map[int]producerSlot
	for _, part := range parts {
		if slot, ok := t.partitions[part].producers[pid]; ok && seq <= slot.seq {
			if dup == nil {
				dup = make(map[int]producerSlot)
			}
			dup[part] = slot
		}
	}
	return dup
}

// recordSlice notes a freshly applied session slice in the partition's
// dedup state. Caller holds p.mu.
func (p *partitionLog) recordSlice(pid, seq uint64, first int64, count int) {
	if pid == 0 {
		return
	}
	if p.producers == nil {
		p.producers = make(map[uint64]producerSlot)
	}
	p.producers[pid] = producerSlot{seq: seq, first: first, count: count}
}

// fillDupResults reconstructs a duplicate slice's results: an exact
// replay of the newest applied sequence gets the original offsets (the
// slice was appended contiguously); older sequences get zero offsets —
// their placement is no longer tracked, and session publishers treat
// results of deduplicated batches as advisory.
func fillDupResults(results []PubResult, idxs []int, slot producerSlot, seq uint64) {
	if slot.seq != seq || slot.count != len(idxs) {
		return
	}
	for j, i := range idxs {
		results[i].Offset = slot.first + int64(j)
	}
}

func (b *Broker) publishRows(topic string, msgs []Message, pid, seq uint64) ([]PubResult, error) {
	if len(msgs) == 0 {
		return nil, nil
	}
	h := b.pubLat.Load()
	var t0 time.Time
	if h != nil {
		t0 = time.Now()
	}
	b.mu.RLock()
	if b.closed {
		b.mu.RUnlock()
		return nil, ErrClosed
	}
	t, ok := b.topics[topic]
	b.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoTopic, topic)
	}

	// Route every message to its partition.
	results := make([]PubResult, len(msgs))
	byPart := make(map[int][]int) // partition → indexes into msgs
	var keyless []int
	var bytesIn int64
	for i, m := range msgs {
		bytesIn += int64(len(m.Key) + len(m.Value))
		if m.Key != nil {
			h := fnv.New32a()
			h.Write(m.Key)
			part := int(h.Sum32()) % len(t.partitions)
			if part < 0 {
				part += len(t.partitions)
			}
			results[i].Partition = part
			byPart[part] = append(byPart[part], i)
		} else {
			keyless = append(keyless, i)
		}
	}
	if len(keyless) > 0 {
		b.statsMu.Lock()
		rr := b.rr
		b.rr += uint64(len(keyless))
		b.statsMu.Unlock()
		for j, i := range keyless {
			part := int((rr + uint64(j)) % uint64(len(t.partitions)))
			results[i].Partition = part
			byPart[part] = append(byPart[part], i)
		}
	}

	// Two-phase apply: lock every target partition (in ascending order,
	// so concurrent batches cannot deadlock), check all capacities, then
	// journal and append. No partition's memory log is touched until the
	// whole batch is known to fit and is journaled.
	parts := make([]int, 0, len(byPart))
	for part := range byPart {
		parts = append(parts, part)
	}
	sort.Ints(parts)
	floors := make([]int64, len(parts))
	for i, part := range parts {
		floors[i] = b.committedFloor(topic, part)
	}
	locked := 0
	unlockAll := func() {
		for _, part := range parts[:locked] {
			t.partitions[part].mu.Unlock()
		}
	}
	for _, part := range parts {
		t.partitions[part].mu.Lock()
		locked++
	}
	// Partitions that already applied this (producer, sequence) — a retry
	// of a batch whose first attempt died after some partitions journaled
	// — are skipped wholesale: no capacity check, no journal, no append.
	dup := dupSlices(t, parts, pid, seq)
	now := time.Now()
	for i, part := range parts {
		if _, isDup := dup[part]; isDup {
			continue
		}
		p := t.partitions[part]
		if p.overCapacity(len(byPart[part]), floors[i]) {
			capacity := p.capacity
			unlockAll()
			b.statsMu.Lock()
			b.stats.Rejected += int64(len(msgs))
			b.statsMu.Unlock()
			return nil, fmt.Errorf("%w: topic %q partition %d at capacity %d (batch of %d refused whole)",
				ErrPartitionFull, topic, part, capacity, len(msgs))
		}
	}
	for _, part := range parts {
		if _, isDup := dup[part]; isDup {
			continue
		}
		p := t.partitions[part]
		if p.w != nil {
			if err := journalBatch(p, now, msgs, byPart[part], pid, seq); err != nil {
				unlockAll()
				return nil, err
			}
		}
	}
	var duplicates int64
	for _, part := range parts {
		p := t.partitions[part]
		idxs := byPart[part]
		if slot, isDup := dup[part]; isDup {
			fillDupResults(results, idxs, slot, seq)
			duplicates += int64(len(idxs))
			for _, i := range idxs {
				bytesIn -= int64(len(msgs[i].Key) + len(msgs[i].Value))
			}
			continue
		}
		first := int64(len(p.records))
		for _, i := range idxs {
			offset := int64(len(p.records))
			results[i].Offset = offset
			p.records = append(p.records, Record{
				Topic:     topic,
				Partition: part,
				Offset:    offset,
				Key:       append([]byte(nil), msgs[i].Key...),
				Value:     append([]byte(nil), msgs[i].Value...),
				Timestamp: now,
			})
		}
		p.recordSlice(pid, seq, first, len(idxs))
		p.cond.Broadcast()
	}
	unlockAll()

	b.statsMu.Lock()
	b.stats.MessagesIn += int64(len(msgs)) - duplicates
	b.stats.BytesIn += bytesIn
	b.stats.Duplicates += duplicates
	b.statsMu.Unlock()
	if h != nil {
		h.Observe(int64(time.Since(t0)))
	}
	return results, nil
}

// PublishWait is Publish with a deadline-bounded retry on backpressure:
// while the target partition is full it retries until a publish lands
// or the timeout passes, then returns the last ErrPartitionFull. Errors
// other than ErrPartitionFull return immediately.
func (b *Broker) PublishWait(topic string, key, value []byte, timeout time.Duration) (int, int64, error) {
	return publishWait(b, topic, key, value, timeout, defaultPace)
}

// PublishBatchWait is PublishBatch with the same deadline-bounded retry
// as PublishWait; the all-or-nothing batch contract makes the retry
// safe (a refused batch published nothing).
func (b *Broker) PublishBatchWait(topic string, msgs []Message, timeout time.Duration) ([]PubResult, error) {
	return publishBatchWait(b, topic, msgs, timeout, defaultPace)
}

// fullRetryInterval is the default pacing between blocked publishers'
// retries: capacity frees only when the slowest consumer group commits,
// so a tight spin would just burn the locks the consumers need. The TCP
// client can override (and jitter) it via Options.RetryPacing.
const fullRetryInterval = time.Millisecond

// pace yields successive sleeps between full-partition retries. The
// default is the fixed fullRetryInterval; transports with configured
// pacing supply a jittered source so a fleet of blocked publishers does
// not retry in lockstep.
type pace func() time.Duration

func defaultPace() time.Duration { return fullRetryInterval }

// publishWait implements the blocking publish over any Transport (the
// in-process broker and the TCP client share it).
func publishWait(t Transport, topic string, key, value []byte, timeout time.Duration, next pace) (int, int64, error) {
	deadline := time.Now().Add(timeout)
	for {
		part, off, err := t.Publish(topic, key, value)
		if err == nil || !errors.Is(err, ErrPartitionFull) {
			return part, off, err
		}
		if !time.Now().Before(deadline) {
			return 0, 0, err
		}
		time.Sleep(next())
	}
}

func publishBatchWait(t Transport, topic string, msgs []Message, timeout time.Duration, next pace) ([]PubResult, error) {
	deadline := time.Now().Add(timeout)
	for {
		res, err := t.PublishBatch(topic, msgs)
		if err == nil || !errors.Is(err, ErrPartitionFull) {
			return res, err
		}
		if !time.Now().Before(deadline) {
			return nil, err
		}
		time.Sleep(next())
	}
}

// Fetch returns up to max records from a partition starting at offset.
// It never blocks; an offset at the log end returns an empty slice.
func (b *Broker) Fetch(topic string, partition int, offset int64, max int) ([]Record, error) {
	p, err := b.partition(topic, partition)
	if err != nil {
		return nil, err
	}
	if offset < 0 {
		return nil, fmt.Errorf("%w: %d", ErrBadOffset, offset)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if offset > int64(len(p.records)) {
		return nil, fmt.Errorf("%w: %d beyond end %d", ErrBadOffset, offset, len(p.records))
	}
	end := offset + int64(max)
	if end > int64(len(p.records)) {
		end = int64(len(p.records))
	}
	out := make([]Record, end-offset)
	copy(out, p.records[offset:end])
	// Deep-copy payloads so callers cannot mutate the log.
	for i := range out {
		out[i].Key = append([]byte(nil), out[i].Key...)
		out[i].Value = append([]byte(nil), out[i].Value...)
	}

	b.statsMu.Lock()
	b.stats.MessagesOut += int64(len(out))
	for _, r := range out {
		b.stats.BytesOut += int64(len(r.Key) + len(r.Value))
	}
	b.statsMu.Unlock()
	return out, nil
}

// WaitFetch is Fetch that blocks until at least one record is available
// or the deadline passes (returning an empty slice on timeout).
func (b *Broker) WaitFetch(topic string, partition int, offset int64, max int, timeout time.Duration) ([]Record, error) {
	p, err := b.partition(topic, partition)
	if err != nil {
		return nil, err
	}
	deadline := time.Now().Add(timeout)
	p.mu.Lock()
	for int64(len(p.records)) <= offset {
		if b.isClosed() {
			p.mu.Unlock()
			return nil, ErrClosed
		}
		if !time.Now().Before(deadline) {
			p.mu.Unlock()
			return nil, nil
		}
		// Wake periodically to observe the deadline; Broadcast on
		// publish wakes us immediately in the common case.
		waitWithTimeout(p.cond, 5*time.Millisecond)
	}
	p.mu.Unlock()
	return b.Fetch(topic, partition, offset, max)
}

// FetchWait unifies Fetch and WaitFetch behind the Transport interface:
// wait <= 0 is a non-blocking Fetch, wait > 0 blocks like WaitFetch.
func (b *Broker) FetchWait(topic string, partition int, offset int64, max int, wait time.Duration) ([]Record, error) {
	if wait > 0 {
		return b.WaitFetch(topic, partition, offset, max, wait)
	}
	return b.Fetch(topic, partition, offset, max)
}

// waitWithTimeout waits on cond for at most d. The caller must hold the
// cond's lock.
func waitWithTimeout(cond *sync.Cond, d time.Duration) {
	timer := time.AfterFunc(d, cond.Broadcast)
	cond.Wait()
	timer.Stop()
}

// EndOffset returns the next offset to be written in a partition.
func (b *Broker) EndOffset(topic string, partition int) (int64, error) {
	p, err := b.partition(topic, partition)
	if err != nil {
		return 0, err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return int64(len(p.records)), nil
}

// CommitOffset durably records a consumer group's next-to-read offset.
// Commits are monotonic per (group, topic, partition): an offset at or
// below the committed one is ignored, so a lagging committer can never
// rewind the group and cause replays.
func (b *Broker) CommitOffset(group, topic string, partition int, offset int64) error {
	if _, err := b.partition(topic, partition); err != nil {
		return err
	}
	if offset < 0 {
		return fmt.Errorf("%w: %d", ErrBadOffset, offset)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	gt, ok := b.offsets[group]
	if !ok {
		gt = make(map[string]map[int]int64)
		b.offsets[group] = gt
	}
	tp, ok := gt[topic]
	if !ok {
		tp = make(map[int]int64)
		gt[topic] = tp
	}
	if offset <= tp[partition] {
		return nil
	}
	if b.dur != nil {
		// Journal before updating memory; replay applies commits in
		// journal order, so the restored offset is the newest committed.
		if err := b.dur.journalCommit(group, topic, partition, offset); err != nil {
			return err
		}
	}
	tp[partition] = offset
	return nil
}

// CommittedOffset returns a group's committed offset, 0 when none.
func (b *Broker) CommittedOffset(group, topic string, partition int) (int64, error) {
	if _, err := b.partition(topic, partition); err != nil {
		return 0, err
	}
	b.mu.RLock()
	defer b.mu.RUnlock()
	if gt, ok := b.offsets[group]; ok {
		if tp, ok := gt[topic]; ok {
			return tp[partition], nil
		}
	}
	return 0, nil
}

// Stats returns a snapshot of the traffic counters plus consumer-lag
// accounting: TotalBacklog/MaxBacklog are computed at snapshot time
// from the partition logs and the committed consumer offsets.
func (b *Broker) Stats() Stats {
	b.statsMu.Lock()
	s := b.stats
	b.statsMu.Unlock()
	b.mu.RLock()
	topics := make([]*topicLog, 0, len(b.topics))
	for _, t := range b.topics {
		topics = append(topics, t)
	}
	b.mu.RUnlock()
	for _, t := range topics {
		for i, p := range t.partitions {
			p.mu.Lock()
			end := int64(len(p.records))
			p.mu.Unlock()
			backlog := end - b.committedFloor(t.name, i)
			s.TotalBacklog += backlog
			if backlog > s.MaxBacklog {
				s.MaxBacklog = backlog
			}
		}
	}
	return s
}

// Backlog returns one topic's total unconsumed records: the sum over
// partitions of end offset minus the slowest committed consumer offset.
func (b *Broker) Backlog(topic string) (int64, error) {
	b.mu.RLock()
	t, ok := b.topics[topic]
	b.mu.RUnlock()
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrNoTopic, topic)
	}
	var total int64
	for i, p := range t.partitions {
		p.mu.Lock()
		end := int64(len(p.records))
		p.mu.Unlock()
		total += end - b.committedFloor(t.name, i)
	}
	return total, nil
}

// Close marks the broker closed; publishes fail and blocked polls wake.
func (b *Broker) Close() {
	b.mu.Lock()
	b.closed = true
	topics := make([]*topicLog, 0, len(b.topics))
	for _, t := range b.topics {
		topics = append(topics, t)
	}
	b.mu.Unlock()
	for _, t := range topics {
		for _, p := range t.partitions {
			p.mu.Lock()
			p.cond.Broadcast()
			if p.w != nil {
				p.w.Close()
				p.w = nil
			}
			p.mu.Unlock()
		}
	}
	if b.dur != nil {
		b.dur.close()
	}
}

func (b *Broker) isClosed() bool {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.closed
}

func (b *Broker) partition(topic string, partition int) (*partitionLog, error) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	t, ok := b.topics[topic]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoTopic, topic)
	}
	if partition < 0 || partition >= len(t.partitions) {
		return nil, fmt.Errorf("%w: %d of %d", ErrNoPartition, partition, len(t.partitions))
	}
	return t.partitions[partition], nil
}
