package pubsub

import (
	"errors"
	"fmt"
	"sort"
	"time"
)

// This file is the columnar half of the publish path — wire v2. A batch
// of N same-stride records travels and lands as two contiguous lanes
// (keys, values) instead of N (key, value) pairs: the TCP frame is one
// header plus two lane writes, the server hands the lanes to the broker
// as views into the request frame, and the broker's in-memory append
// copies each lane exactly once, storing records as subslices — the
// whole path performs a constant number of copies per batch where v1
// performs a constant number per message.

// fnv1a32 is FNV-1a over b, matching hash/fnv's New32a exactly (the
// routing function of Publish/PublishBatch) without constructing a
// hasher per record.
func fnv1a32(b []byte) uint32 {
	h := uint32(2166136261)
	for _, c := range b {
		h ^= uint32(c)
		h *= 16777619
	}
	return h
}

// PublishColumns appends a columnar batch in one call — the lane form
// of PublishBatch, with the same routing (key-lane FNV hash; columnar
// records always carry keys) and the same all-or-nothing contract: the
// batch is fully applied or refused whole with ErrPartitionFull.
// Results are returned in record order. Both lanes are fully consumed
// before the call returns.
func (b *Broker) PublishColumns(topic string, cols Columns) ([]PubResult, error) {
	return b.publishCols(topic, cols, 0, 0)
}

// PublishColumnsSession is PublishColumns tagged with a producer
// session — the columnar form of PublishBatchSession, with the same
// per-partition dedup contract. Columnar records always carry keys, so
// no keyless check is needed.
func (b *Broker) PublishColumnsSession(topic string, cols Columns, pid, seq uint64) ([]PubResult, error) {
	if pid == 0 {
		return nil, fmt.Errorf("%w: zero producer id", ErrWire)
	}
	return b.publishCols(topic, cols, pid, seq)
}

func (b *Broker) publishCols(topic string, cols Columns, pid, seq uint64) ([]PubResult, error) {
	if err := cols.Validate(); err != nil {
		return nil, err
	}
	if cols.Count == 0 {
		return nil, nil
	}
	h := b.pubLat.Load()
	var t0 time.Time
	if h != nil {
		t0 = time.Now()
	}
	b.mu.RLock()
	if b.closed {
		b.mu.RUnlock()
		return nil, ErrClosed
	}
	t, ok := b.topics[topic]
	b.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoTopic, topic)
	}

	results := make([]PubResult, cols.Count)
	byPart := make(map[int][]int) // partition → record indexes
	for i := 0; i < cols.Count; i++ {
		part := int(fnv1a32(cols.Key(i))) % len(t.partitions)
		if part < 0 {
			part += len(t.partitions)
		}
		results[i].Partition = part
		byPart[part] = append(byPart[part], i)
	}

	// Two-phase apply, exactly as PublishBatch: lock every target
	// partition in ascending order, check all capacities, journal, then
	// append.
	parts := make([]int, 0, len(byPart))
	for part := range byPart {
		parts = append(parts, part)
	}
	sort.Ints(parts)
	floors := make([]int64, len(parts))
	for i, part := range parts {
		floors[i] = b.committedFloor(topic, part)
	}
	locked := 0
	unlockAll := func() {
		for _, part := range parts[:locked] {
			t.partitions[part].mu.Unlock()
		}
	}
	for _, part := range parts {
		t.partitions[part].mu.Lock()
		locked++
	}
	// Skip partitions that already applied this (producer, sequence) —
	// see publishRows.
	dup := dupSlices(t, parts, pid, seq)
	now := time.Now()
	for i, part := range parts {
		if _, isDup := dup[part]; isDup {
			continue
		}
		p := t.partitions[part]
		if p.overCapacity(len(byPart[part]), floors[i]) {
			capacity := p.capacity
			unlockAll()
			b.statsMu.Lock()
			b.stats.Rejected += int64(cols.Count)
			b.statsMu.Unlock()
			return nil, fmt.Errorf("%w: topic %q partition %d at capacity %d (batch of %d refused whole)",
				ErrPartitionFull, topic, part, capacity, cols.Count)
		}
	}
	for _, part := range parts {
		if _, isDup := dup[part]; isDup {
			continue
		}
		p := t.partitions[part]
		if p.w != nil {
			if err := journalColumns(p, now, cols, byPart[part], pid, seq); err != nil {
				unlockAll()
				return nil, err
			}
		}
	}
	// One copy per lane for the whole batch; the stored records are
	// subslices of the copies. Fetch deep-copies on the way out, so the
	// shared backing arrays are never exposed to consumers.
	keys := append([]byte(nil), cols.Keys...)
	vals := append([]byte(nil), cols.Vals...)
	var duplicates int64
	for _, part := range parts {
		p := t.partitions[part]
		idxs := byPart[part]
		if slot, isDup := dup[part]; isDup {
			fillDupResults(results, idxs, slot, seq)
			duplicates += int64(len(idxs))
			continue
		}
		first := int64(len(p.records))
		for _, i := range idxs {
			offset := int64(len(p.records))
			results[i].Offset = offset
			p.records = append(p.records, Record{
				Topic:     topic,
				Partition: part,
				Offset:    offset,
				Key:       keys[i*cols.KeyLen : (i+1)*cols.KeyLen : (i+1)*cols.KeyLen],
				Value:     vals[i*cols.ValLen : (i+1)*cols.ValLen : (i+1)*cols.ValLen],
				Timestamp: now,
			})
		}
		p.recordSlice(pid, seq, first, len(idxs))
		p.cond.Broadcast()
	}
	unlockAll()

	b.statsMu.Lock()
	b.stats.MessagesIn += int64(cols.Count) - duplicates
	b.stats.BytesIn += int64(cols.Count-int(duplicates)) * int64(cols.KeyLen+cols.ValLen)
	b.stats.Duplicates += duplicates
	b.statsMu.Unlock()
	if h != nil {
		h.Observe(int64(time.Since(t0)))
	}
	return results, nil
}

// PublishColumnsWait is PublishColumns with the deadline-bounded retry
// of PublishBatchWait; the all-or-nothing contract makes it safe.
func (b *Broker) PublishColumnsWait(topic string, cols Columns, timeout time.Duration) ([]PubResult, error) {
	return publishColumnsWait(b.PublishColumns, topic, cols, timeout, defaultPace)
}

func publishColumnsWait(pub func(string, Columns) ([]PubResult, error), topic string, cols Columns, timeout time.Duration, next pace) ([]PubResult, error) {
	deadline := time.Now().Add(timeout)
	for {
		res, err := pub(topic, cols)
		if err == nil || !errors.Is(err, ErrPartitionFull) {
			return res, err
		}
		if !time.Now().Before(deadline) {
			return nil, err
		}
		time.Sleep(next())
	}
}

// journalColumns frames and appends one partition's slice of a columnar
// batch as a single WAL batch, producing byte-identical journal records
// to journalBatch for the same (key, value) sequence — replay cannot
// tell which publish form wrote a record. The caller holds the
// partition lock.
func journalColumns(p *partitionLog, now time.Time, cols Columns, idxs []int, pid, seq uint64) error {
	per := 12 + cols.KeyLen + cols.ValLen
	if pid != 0 {
		per += sessionTagLen
	}
	total := len(idxs) * per
	if cap(p.encBuf) < total {
		p.encBuf = make([]byte, 0, total)
	}
	enc := p.encBuf[:0]
	payloads := make([][]byte, 0, len(idxs))
	for _, i := range idxs {
		start := len(enc)
		enc = appendSessionTag(enc, pid, seq)
		enc = appendPartitionRecord(enc, now, cols.Key(i), cols.Val(i))
		payloads = append(payloads, enc[start:len(enc):len(enc)])
	}
	p.encBuf = enc[:0]
	_, err := p.w.AppendBatch(payloads)
	return err
}

// Client-side negotiation state, cached per Client (one probe per
// pool): 0 = unprobed, 1 = server speaks wire v2, -1 = v1-only server.
const (
	featUnknown = int32(0)
	featV2      = int32(1)
	featV1Only  = int32(-1)
)

// Features asks the server for its capability mask. Against a v1
// server the request itself fails with the "unknown opcode" wire error
// (the connection survives); callers treat that as an empty mask.
func (c *Client) Features() (uint64, error) {
	var e enc
	e.byte(opFeatures)
	d, err := c.roundTrip(e.buf)
	if err != nil {
		return 0, err
	}
	return d.uint64()
}

// supportsColumns reports whether the server accepts opPublishBatchV2,
// probing once via opFeatures and caching the verdict. Only a definite
// protocol answer is cached — a transport failure leaves the state
// unprobed so a later call retries.
func (c *Client) supportsColumns() bool {
	switch c.features.Load() {
	case featV2:
		return true
	case featV1Only:
		return false
	}
	mask, err := c.Features()
	if err != nil {
		if errors.Is(err, ErrWire) {
			// The server parsed the frame and rejected the opcode: a v1
			// peer. Remember and fall back for the life of this client.
			c.features.Store(featV1Only)
		}
		return false
	}
	if mask&featureColumnarV2 != 0 {
		c.features.Store(featV2)
		return true
	}
	c.features.Store(featV1Only)
	return false
}

// PublishColumns mirrors Broker.PublishColumns over TCP: the whole
// batch travels as one opPublishBatchV2 frame — header plus two lane
// writes, no per-message slicing (chunked by rows only past
// maxBatchBytes). Against a v1 server it transparently falls back to
// the row-oriented PublishBatch, materializing per-record views of the
// lanes; either way both lanes are fully consumed before the call
// returns.
func (c *Client) PublishColumns(topic string, cols Columns) ([]PubResult, error) {
	if err := cols.Validate(); err != nil {
		return nil, err
	}
	if cols.Count == 0 {
		return nil, nil
	}
	if !c.supportsColumns() {
		msgs := make([]Message, cols.Count)
		for i := range msgs {
			msgs[i] = Message{Key: cols.Key(i), Value: cols.Val(i)}
		}
		return c.PublishBatch(topic, msgs)
	}
	stride := cols.KeyLen + cols.ValLen
	rows := maxBatchBytes / stride
	if rows < 1 {
		rows = 1
	}
	out := make([]PubResult, 0, cols.Count)
	e := getEnc()
	defer putEnc(e)
	for start := 0; start < cols.Count; start += rows {
		n := cols.Count - start
		if n > rows {
			n = rows
		}
		e.buf = e.buf[:0]
		e.byte(opPublishBatchV2)
		e.str(topic)
		e.uint32(uint32(n))
		e.uint32(uint32(cols.KeyLen))
		e.uint32(uint32(cols.ValLen))
		e.bytes(cols.Keys[start*cols.KeyLen : (start+n)*cols.KeyLen])
		e.bytes(cols.Vals[start*cols.ValLen : (start+n)*cols.ValLen])
		d, err := c.roundTrip(e.buf)
		if err != nil {
			return nil, err
		}
		cnt, err := d.uint32()
		if err != nil {
			return nil, err
		}
		if int(cnt) != n {
			return nil, fmt.Errorf("%w: columnar batch acked %d of %d records", ErrWire, cnt, n)
		}
		for i := 0; i < n; i++ {
			part, err := d.uint32()
			if err != nil {
				return nil, err
			}
			off, err := d.uint64()
			if err != nil {
				return nil, err
			}
			out = append(out, PubResult{Partition: int(part), Offset: int64(off)})
		}
	}
	return out, nil
}

// PublishColumnsWait mirrors Broker.PublishColumnsWait. As with
// PublishBatchWait, all-or-nothing holds per chunk for batches split
// past maxBatchBytes.
func (c *Client) PublishColumnsWait(topic string, cols Columns, timeout time.Duration) ([]PubResult, error) {
	return publishColumnsWait(c.PublishColumns, topic, cols, timeout, c.pace)
}

// handleFeatures answers the capability probe.
func (s *Server) handleFeatures() []byte {
	var e enc
	e.byte(0)
	e.uint64(featureColumnarV2 | featureIdempotent | featureLineage)
	return e.buf
}

// handlePublishColumns decodes an opPublishBatchV2 frame. The lanes are
// views into the request frame (no copy); the broker copies each lane
// once during its in-memory append.
func (s *Server) handlePublishColumns(d *dec) []byte {
	topic, err := d.str()
	if err != nil {
		return respErr(err)
	}
	count, err := d.uint32()
	if err != nil {
		return respErr(err)
	}
	keyLen, err := d.uint32()
	if err != nil {
		return respErr(err)
	}
	valLen, err := d.uint32()
	if err != nil {
		return respErr(err)
	}
	keys, err := d.view()
	if err != nil {
		return respErr(err)
	}
	vals, err := d.view()
	if err != nil {
		return respErr(err)
	}
	cols := Columns{
		Count:  int(count),
		KeyLen: int(keyLen),
		ValLen: int(valLen),
		Keys:   keys,
		Vals:   vals,
	}
	// Validate re-checks lane geometry against the declared strides, so
	// a lying count or stride is caught here (the lane lengths on the
	// wire are the real bound, and the frame itself is capped).
	if err := cols.Validate(); err != nil {
		return respErr(err)
	}
	results, err := s.broker.PublishColumns(topic, cols)
	if err != nil {
		return respErr(err)
	}
	var e enc
	e.byte(0)
	e.uint32(uint32(len(results)))
	for _, r := range results {
		e.uint32(uint32(r.Partition))
		e.uint64(uint64(r.Offset))
	}
	return e.buf
}

// appendColumns is a test/tooling helper materializing a []Message into
// columnar lanes; it returns an error unless every key and value has
// the uniform stride columns require.
func appendColumns(msgs []Message) (Columns, error) {
	cols := Columns{Count: len(msgs)}
	if len(msgs) == 0 {
		return cols, nil
	}
	cols.KeyLen = len(msgs[0].Key)
	cols.ValLen = len(msgs[0].Value)
	for _, m := range msgs {
		if len(m.Key) != cols.KeyLen || len(m.Value) != cols.ValLen {
			return Columns{}, fmt.Errorf("%w: mixed strides in columnar batch", ErrWire)
		}
		cols.Keys = append(cols.Keys, m.Key...)
		cols.Vals = append(cols.Vals, m.Value...)
	}
	return cols, nil
}
