package pubsub

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"net"
	"strings"
	"sync"
	"testing"
	"time"
)

// --- Batched publish over the wire. ---

func TestTCPPublishBatch(t *testing.T) {
	b, _, cli := startServer(t)
	if err := cli.CreateTopic("t", 3); err != nil {
		t.Fatal(err)
	}
	msgs := make([]Message, 100)
	for i := range msgs {
		msgs[i] = Message{Key: []byte(fmt.Sprintf("k%03d", i)), Value: []byte(fmt.Sprintf("v%03d", i))}
	}
	results, err := cli.PublishBatch("t", msgs)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(msgs) {
		t.Fatalf("got %d results, want %d", len(results), len(msgs))
	}
	// Every message must be findable at the reported (partition, offset)
	// with its payload intact.
	for i, r := range results {
		recs, err := b.Fetch("t", r.Partition, r.Offset, 1)
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) != 1 || !bytes.Equal(recs[0].Value, msgs[i].Value) || !bytes.Equal(recs[0].Key, msgs[i].Key) {
			t.Fatalf("msg %d at part %d off %d: got %+v", i, r.Partition, r.Offset, recs)
		}
	}
	// Batch and singleton publishes must agree on partition routing.
	part, _, err := cli.Publish("t", []byte("k000"), []byte("again"))
	if err != nil {
		t.Fatal(err)
	}
	if part != results[0].Partition {
		t.Errorf("batch routed k000 to %d, singleton to %d", results[0].Partition, part)
	}
}

func TestTCPPublishBatchNilAndEmptyKeys(t *testing.T) {
	b, _, cli := startServer(t)
	if err := cli.CreateTopic("t", 2); err != nil {
		t.Fatal(err)
	}
	results, err := cli.PublishBatch("t", []Message{
		{Key: nil, Value: []byte("roundrobin")},
		{Key: []byte{}, Value: []byte("emptykey")},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("results = %+v", results)
	}
	recs, err := b.Fetch("t", results[1].Partition, results[1].Offset, 1)
	if err != nil {
		t.Fatal(err)
	}
	// An empty (non-nil) key is hashed, not round-robined, and survives
	// the wire as zero-length.
	if len(recs) != 1 || len(recs[0].Key) != 0 {
		t.Errorf("empty-key record = %+v", recs)
	}
}

func TestTCPPublishBatchEmpty(t *testing.T) {
	_, _, cli := startServer(t)
	results, err := cli.PublishBatch("missing", nil)
	if err != nil || results != nil {
		t.Fatalf("empty batch = %v, %v", results, err)
	}
}

func TestTCPPublishBatchSplitsOversized(t *testing.T) {
	b, _, cli := startServer(t)
	if err := cli.CreateTopic("t", 1); err != nil {
		t.Fatal(err)
	}
	// 6 messages of ~3MB against an 8MB frame cap forces several chunks.
	val := make([]byte, 3<<20)
	msgs := make([]Message, 6)
	for i := range msgs {
		msgs[i] = Message{Key: []byte{byte(i)}, Value: val}
	}
	results, err := cli.PublishBatch("t", msgs)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(msgs) {
		t.Fatalf("got %d results", len(results))
	}
	end, err := b.EndOffset("t", 0)
	if err != nil || end != int64(len(msgs)) {
		t.Fatalf("EndOffset = %d, %v", end, err)
	}
}

func TestTCPPublishBatchErrorPropagates(t *testing.T) {
	_, _, cli := startServer(t)
	if _, err := cli.PublishBatch("missing", []Message{{Value: []byte("v")}}); err == nil ||
		!strings.Contains(err.Error(), "no such topic") {
		t.Errorf("missing-topic batch error = %v", err)
	}
}

// --- Pipelining and the connection pool. ---

func TestTCPPipelinedConcurrentRequests(t *testing.T) {
	_, srv, _ := startServer(t)
	cli, err := DialPool(srv.Addr(), 3)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if err := cli.CreateTopic("t", 4); err != nil {
		t.Fatal(err)
	}
	const goroutines = 16
	const each = 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				key := []byte(fmt.Sprintf("g%d-%d", g, i))
				if _, _, err := cli.Publish("t", key, []byte("v")); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	total := 0
	for p := 0; p < 4; p++ {
		end, err := cli.EndOffset("t", p)
		if err != nil {
			t.Fatal(err)
		}
		total += int(end)
	}
	if total != goroutines*each {
		t.Errorf("total = %d, want %d", total, goroutines*each)
	}
}

// A blocking fetch parked on one pool connection must not stall a
// publish issued through the same Client.
func TestTCPPoolBlockingFetchDoesNotStallPublishes(t *testing.T) {
	_, srv, _ := startServer(t)
	cli, err := DialPool(srv.Addr(), 2)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if err := cli.CreateTopic("t", 1); err != nil {
		t.Fatal(err)
	}
	done := make(chan []Record, 1)
	go func() {
		recs, err := cli.Fetch("t", 0, 0, 10, 10*time.Second)
		if err != nil {
			t.Error(err)
		}
		done <- recs
	}()
	time.Sleep(30 * time.Millisecond) // let the fetch park server-side
	if _, _, err := cli.Publish("t", nil, []byte("unstick")); err != nil {
		t.Fatal(err)
	}
	select {
	case recs := <-done:
		if len(recs) != 1 {
			t.Errorf("parked fetch = %v", recs)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("publish did not unpark the blocking fetch")
	}
}

// --- Satellite: sub-millisecond waits must stay blocking. ---

func TestWaitToMillisRoundsUp(t *testing.T) {
	cases := []struct {
		in   time.Duration
		want uint32
	}{
		{0, 0},
		{-time.Second, 0},
		{time.Nanosecond, 1},
		{200 * time.Microsecond, 1},
		{999 * time.Microsecond, 1},
		{time.Millisecond, 1},
		{time.Millisecond + 1, 2},
		{1500 * time.Millisecond, 1500},
		{math.MaxInt64, math.MaxUint32},
	}
	for _, c := range cases {
		if got := waitToMillis(c.in); got != c.want {
			t.Errorf("waitToMillis(%v) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestTCPSubMillisecondWaitBlocks(t *testing.T) {
	_, _, cli := startServer(t)
	if err := cli.CreateTopic("t", 1); err != nil {
		t.Fatal(err)
	}
	// A 500µs wait on an empty partition must block (for its rounded-up
	// 1ms) instead of degrading into an instant non-blocking fetch. The
	// elapsed lower bound is what the old truncating code violated.
	start := time.Now()
	recs, err := cli.Fetch("t", 0, 0, 10, 500*time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("records on empty topic: %v", recs)
	}
	if elapsed := time.Since(start); elapsed < 500*time.Microsecond {
		t.Errorf("sub-ms wait returned after %v, want a blocking wait", elapsed)
	}
}

// --- Satellite: server error paths. ---

// rawConn dials the server for hand-rolled frames.
func rawConn(t *testing.T, addr string) net.Conn {
	t.Helper()
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return conn
}

func readStatusError(t *testing.T, conn net.Conn) string {
	t.Helper()
	resp, err := readFrame(conn)
	if err != nil {
		t.Fatalf("reading response: %v", err)
	}
	d := &dec{buf: resp}
	status, err := d.byte()
	if err != nil {
		t.Fatal(err)
	}
	if status != 1 {
		t.Fatalf("status = %d, want error", status)
	}
	msg, err := d.str()
	if err != nil {
		t.Fatal(err)
	}
	return msg
}

func TestTCPServerEmptyFrame(t *testing.T) {
	_, srv, _ := startServer(t)
	conn := rawConn(t, srv.Addr())
	if err := writeFrame(conn, nil); err != nil {
		t.Fatal(err)
	}
	if msg := readStatusError(t, conn); !strings.Contains(msg, "short frame") {
		t.Errorf("empty frame error = %q", msg)
	}
}

func TestTCPServerUnknownOpcode(t *testing.T) {
	_, srv, _ := startServer(t)
	conn := rawConn(t, srv.Addr())
	if err := writeFrame(conn, []byte{0xFF}); err != nil {
		t.Fatal(err)
	}
	if msg := readStatusError(t, conn); !strings.Contains(msg, "unknown opcode") {
		t.Errorf("unknown opcode error = %q", msg)
	}
	// The connection survives a bad opcode: a valid request still works.
	var e enc
	e.byte(opPartitions)
	e.str("missing")
	if err := writeFrame(conn, e.buf); err != nil {
		t.Fatal(err)
	}
	if msg := readStatusError(t, conn); !strings.Contains(msg, "no such topic") {
		t.Errorf("post-recovery error = %q", msg)
	}
}

func TestTCPServerShortPayloads(t *testing.T) {
	_, srv, _ := startServer(t)
	cases := map[string][]byte{
		// opPublish with a key length pointing past the frame end.
		"truncated publish key": {opPublish, 0, 0, 0, 1, 't', 1, 0, 0, 0, 99},
		// opCreateTopic with a topic-name length but no bytes.
		"truncated topic name": {opCreateTopic, 0, 0, 0, 10},
		// opFetch cut off before the offset.
		"truncated fetch": {opFetch, 0, 0, 0, 1, 't', 0, 0, 0, 0},
		// opPublishBatch whose count promises more messages than framed.
		"lying batch count": {opPublishBatch, 0, 0, 0, 1, 't', 0, 0, 0, 5, 0, 0, 0, 0, 1, 'v'},
		// opPublish with an invalid optional-key marker.
		"bad key marker": {opPublish, 0, 0, 0, 1, 't', 7},
	}
	for name, payload := range cases {
		t.Run(name, func(t *testing.T) {
			conn := rawConn(t, srv.Addr())
			if err := writeFrame(conn, payload); err != nil {
				t.Fatal(err)
			}
			msg := readStatusError(t, conn)
			if !strings.Contains(msg, "wire protocol error") && !strings.Contains(msg, "short frame") {
				t.Errorf("error = %q, want a wire protocol error", msg)
			}
		})
	}
}

func TestTCPServerOversizedFrameClosesConn(t *testing.T) {
	_, srv, _ := startServer(t)
	conn := rawConn(t, srv.Addr())
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], maxFrame+1)
	if _, err := conn.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	// The stream cannot be resynchronized, so the server must hang up
	// rather than answer.
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err != io.EOF {
		t.Errorf("read after oversized frame = %v, want EOF", err)
	}
}

func TestTCPServerCloseDuringInflightWaitFetch(t *testing.T) {
	_, srv, cli := startServer(t)
	if err := cli.CreateTopic("t", 1); err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() {
		_, err := cli.Fetch("t", 0, 0, 10, 30*time.Second)
		errc <- err
	}()
	time.Sleep(50 * time.Millisecond) // let the fetch park server-side
	closed := make(chan struct{})
	go func() {
		srv.Close()
		close(closed)
	}()
	// Close must not be pinned for the fetch's full 30s timeout: the
	// server-side wait is sliced and observes the close promptly.
	select {
	case <-closed:
	case <-time.After(5 * time.Second):
		t.Fatal("Server.Close stuck behind an in-flight WaitFetch")
	}
	select {
	case err := <-errc:
		if err == nil {
			t.Error("in-flight WaitFetch returned no error after Close")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight WaitFetch never returned after Close")
	}
}

func TestTCPClientCloseFailsOutstandingRequests(t *testing.T) {
	_, srv, _ := startServer(t)
	cli, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if err := cli.CreateTopic("t", 1); err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() {
		_, err := cli.Fetch("t", 0, 0, 10, 30*time.Second)
		errc <- err
	}()
	time.Sleep(50 * time.Millisecond)
	cli.Close()
	select {
	case err := <-errc:
		if err == nil {
			t.Error("outstanding request survived client Close")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("outstanding request never unblocked after client Close")
	}
}

// --- Transport symmetry: consumers run unchanged over TCP. ---

func TestTransportConsumerOverTCP(t *testing.T) {
	_, _, cli := startServer(t)
	if err := cli.CreateTopic("t", 2); err != nil {
		t.Fatal(err)
	}
	msgs := make([]Message, 20)
	for i := range msgs {
		msgs[i] = Message{Key: []byte{byte(i)}, Value: []byte{byte(i)}}
	}
	if _, err := cli.PublishBatch("t", msgs); err != nil {
		t.Fatal(err)
	}
	c, err := NewTransportConsumer(cli, "g", "t")
	if err != nil {
		t.Fatal(err)
	}
	recs, err := c.PollWait(100, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(msgs) {
		t.Fatalf("polled %d records, want %d", len(recs), len(msgs))
	}
	if err := c.Commit(); err != nil {
		t.Fatal(err)
	}
	// A second consumer in the same group resumes past everything.
	c2, err := NewTransportConsumer(cli, "g", "t")
	if err != nil {
		t.Fatal(err)
	}
	recs, err = c2.Poll(100)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Errorf("committed consumer re-read %d records", len(recs))
	}
	lag, err := c2.Lag()
	if err != nil || lag != 0 {
		t.Errorf("Lag = %d, %v", lag, err)
	}
}
