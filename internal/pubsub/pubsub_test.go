package pubsub

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func newTestBroker(t *testing.T, topics ...string) *Broker {
	t.Helper()
	b := NewBroker()
	for _, topic := range topics {
		if err := b.CreateTopic(topic, 4); err != nil {
			t.Fatal(err)
		}
	}
	return b
}

func TestCreateTopicValidation(t *testing.T) {
	b := NewBroker()
	if err := b.CreateTopic("", 1); err == nil {
		t.Error("expected error for empty name")
	}
	if err := b.CreateTopic("t", 0); err == nil {
		t.Error("expected error for zero partitions")
	}
	if err := b.CreateTopic("t", 2); err != nil {
		t.Fatal(err)
	}
	if err := b.CreateTopic("t", 2); !errors.Is(err, ErrTopicExists) {
		t.Errorf("duplicate create: %v", err)
	}
	if n, err := b.Partitions("t"); err != nil || n != 2 {
		t.Errorf("Partitions = %d, %v", n, err)
	}
	if _, err := b.Partitions("missing"); !errors.Is(err, ErrNoTopic) {
		t.Errorf("missing topic: %v", err)
	}
	if got := b.Topics(); len(got) != 1 || got[0] != "t" {
		t.Errorf("Topics = %v", got)
	}
}

func TestPublishFetchOrderWithinPartition(t *testing.T) {
	b := newTestBroker(t, "answer")
	key := []byte("same-key")
	for i := 0; i < 10; i++ {
		if _, _, err := b.Publish("answer", key, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// All records share a partition (same key) and must be in order.
	part, _, err := b.Publish("answer", key, []byte{99})
	if err != nil {
		t.Fatal(err)
	}
	recs, err := b.Fetch("answer", part, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 11 {
		t.Fatalf("got %d records", len(recs))
	}
	for i, r := range recs {
		if r.Offset != int64(i) {
			t.Errorf("record %d offset = %d", i, r.Offset)
		}
	}
	if recs[5].Value[0] != 5 {
		t.Errorf("order violated: %v", recs[5].Value)
	}
}

func TestPublishRoundRobinCoversPartitions(t *testing.T) {
	b := newTestBroker(t, "t")
	seen := map[int]bool{}
	for i := 0; i < 16; i++ {
		p, _, err := b.Publish("t", nil, []byte("v"))
		if err != nil {
			t.Fatal(err)
		}
		seen[p] = true
	}
	if len(seen) != 4 {
		t.Errorf("round robin hit %d of 4 partitions", len(seen))
	}
}

func TestFetchValidation(t *testing.T) {
	b := newTestBroker(t, "t")
	if _, err := b.Fetch("missing", 0, 0, 1); !errors.Is(err, ErrNoTopic) {
		t.Errorf("missing topic: %v", err)
	}
	if _, err := b.Fetch("t", 9, 0, 1); !errors.Is(err, ErrNoPartition) {
		t.Errorf("bad partition: %v", err)
	}
	if _, err := b.Fetch("t", 0, -1, 1); !errors.Is(err, ErrBadOffset) {
		t.Errorf("negative offset: %v", err)
	}
	if _, err := b.Fetch("t", 0, 5, 1); !errors.Is(err, ErrBadOffset) {
		t.Errorf("past-end offset: %v", err)
	}
	recs, err := b.Fetch("t", 0, 0, 10)
	if err != nil || len(recs) != 0 {
		t.Errorf("empty fetch = %v, %v", recs, err)
	}
}

func TestFetchReturnsCopies(t *testing.T) {
	b := newTestBroker(t, "t")
	if _, _, err := b.Publish("t", []byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	part, _, _ := b.Publish("t", []byte("k"), []byte("w"))
	recs, err := b.Fetch("t", part, 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	recs[0].Value[0] = 'X'
	again, _ := b.Fetch("t", part, 0, 10)
	if again[0].Value[0] == 'X' {
		t.Error("Fetch must return copies")
	}
}

func TestWaitFetchWakesOnPublish(t *testing.T) {
	b := newTestBroker(t, "t")
	done := make(chan []Record, 1)
	go func() {
		recs, err := b.WaitFetch("t", 0, 0, 10, 5*time.Second)
		if err != nil {
			t.Error(err)
		}
		done <- recs
	}()
	time.Sleep(20 * time.Millisecond)
	// Publish directly into partition 0 by probing keys.
	for i := 0; ; i++ {
		key := []byte(fmt.Sprintf("k%d", i))
		p, _, err := b.Publish("t", key, []byte("wake"))
		if err != nil {
			t.Fatal(err)
		}
		if p == 0 {
			break
		}
	}
	select {
	case recs := <-done:
		if len(recs) == 0 {
			t.Error("WaitFetch returned empty after publish")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("WaitFetch never woke")
	}
}

func TestWaitFetchTimesOut(t *testing.T) {
	b := newTestBroker(t, "t")
	start := time.Now()
	recs, err := b.WaitFetch("t", 0, 0, 10, 30*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Error("expected empty result on timeout")
	}
	if time.Since(start) < 25*time.Millisecond {
		t.Error("returned before the timeout")
	}
}

func TestOffsetsCommit(t *testing.T) {
	b := newTestBroker(t, "t")
	if off, err := b.CommittedOffset("g", "t", 0); err != nil || off != 0 {
		t.Errorf("fresh committed offset = %d, %v", off, err)
	}
	if err := b.CommitOffset("g", "t", 0, 7); err != nil {
		t.Fatal(err)
	}
	if off, _ := b.CommittedOffset("g", "t", 0); off != 7 {
		t.Errorf("committed = %d, want 7", off)
	}
	if err := b.CommitOffset("g", "t", 0, -1); !errors.Is(err, ErrBadOffset) {
		t.Errorf("negative commit: %v", err)
	}
	if err := b.CommitOffset("g", "missing", 0, 1); !errors.Is(err, ErrNoTopic) {
		t.Errorf("missing topic commit: %v", err)
	}
}

func TestStatsAccounting(t *testing.T) {
	b := newTestBroker(t, "t")
	part, _, err := b.Publish("t", []byte("kk"), []byte("vvv"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Fetch("t", part, 0, 10); err != nil {
		t.Fatal(err)
	}
	st := b.Stats()
	if st.MessagesIn != 1 || st.BytesIn != 5 {
		t.Errorf("in stats = %+v", st)
	}
	if st.MessagesOut != 1 || st.BytesOut != 5 {
		t.Errorf("out stats = %+v", st)
	}
}

func TestCloseStopsPublishAndWakesWaiters(t *testing.T) {
	b := newTestBroker(t, "t")
	errc := make(chan error, 1)
	go func() {
		_, err := b.WaitFetch("t", 0, 0, 1, 10*time.Second)
		errc <- err
	}()
	time.Sleep(10 * time.Millisecond)
	b.Close()
	select {
	case err := <-errc:
		if !errors.Is(err, ErrClosed) {
			t.Errorf("WaitFetch after close: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("WaitFetch not woken by Close")
	}
	if _, _, err := b.Publish("t", nil, []byte("x")); !errors.Is(err, ErrClosed) {
		t.Errorf("Publish after close: %v", err)
	}
}

func TestConcurrentPublishersKeepAllRecords(t *testing.T) {
	b := newTestBroker(t, "t")
	const writers = 8
	const perWriter = 500
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				if _, _, err := b.Publish("t", nil, []byte{byte(w), byte(i)}); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	total := int64(0)
	for p := 0; p < 4; p++ {
		end, err := b.EndOffset("t", p)
		if err != nil {
			t.Fatal(err)
		}
		total += end
	}
	if total != writers*perWriter {
		t.Errorf("total records = %d, want %d", total, writers*perWriter)
	}
}

func TestConsumerPollAndCommitResume(t *testing.T) {
	b := newTestBroker(t, "answer", "key")
	for i := 0; i < 20; i++ {
		if _, _, err := b.Publish("answer", nil, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
		if _, _, err := b.Publish("key", nil, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	c, err := NewConsumer(b, "agg", "answer", "key")
	if err != nil {
		t.Fatal(err)
	}
	var got []Record
	for {
		recs, err := c.Poll(7)
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) == 0 {
			break
		}
		got = append(got, recs...)
	}
	if len(got) != 40 {
		t.Fatalf("polled %d records, want 40", len(got))
	}
	if lag, _ := c.Lag(); lag != 0 {
		t.Errorf("lag = %d, want 0", lag)
	}
	if err := c.Commit(); err != nil {
		t.Fatal(err)
	}
	// A new group member resumes with nothing to read.
	c2, err := NewConsumer(b, "agg", "answer", "key")
	if err != nil {
		t.Fatal(err)
	}
	recs, err := c2.Poll(100)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Errorf("resumed consumer read %d records, want 0", len(recs))
	}
	// A different group starts from zero.
	c3, err := NewConsumer(b, "other", "answer")
	if err != nil {
		t.Fatal(err)
	}
	recs, err = c3.Poll(100)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 20 {
		t.Errorf("fresh group read %d records, want 20", len(recs))
	}
}

func TestConsumerValidation(t *testing.T) {
	b := newTestBroker(t, "t")
	if _, err := NewConsumer(b, "", "t"); err == nil {
		t.Error("expected error for empty group")
	}
	if _, err := NewConsumer(b, "g"); err == nil {
		t.Error("expected error for no topics")
	}
	if _, err := NewConsumer(b, "g", "missing"); err == nil {
		t.Error("expected error for missing topic")
	}
	c, _ := NewConsumer(b, "g", "t")
	if _, err := c.Poll(0); err == nil {
		t.Error("expected error for poll size 0")
	}
}

func TestConsumerPollWait(t *testing.T) {
	b := newTestBroker(t, "t")
	c, err := NewConsumer(b, "g", "t")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		time.Sleep(20 * time.Millisecond)
		b.Publish("t", nil, []byte("late"))
	}()
	recs, err := c.PollWait(10, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || !bytes.Equal(recs[0].Value, []byte("late")) {
		t.Errorf("PollWait = %v", recs)
	}
	// Timeout path.
	recs, err = c.PollWait(10, 20*time.Millisecond)
	if err != nil || len(recs) != 0 {
		t.Errorf("PollWait timeout = %v, %v", recs, err)
	}
}

// Property: every published record is fetched exactly once across
// partitions, regardless of key distribution.
func TestPublishFetchExactlyOnceProperty(t *testing.T) {
	f := func(keys [][]byte) bool {
		if len(keys) == 0 {
			return true
		}
		if len(keys) > 200 {
			keys = keys[:200]
		}
		b := NewBroker()
		if err := b.CreateTopic("t", 3); err != nil {
			return false
		}
		for i, k := range keys {
			if len(k) == 0 {
				k = []byte{byte(i)}
			}
			if _, _, err := b.Publish("t", k, []byte{byte(i)}); err != nil {
				return false
			}
		}
		seen := 0
		for p := 0; p < 3; p++ {
			recs, err := b.Fetch("t", p, 0, len(keys)+1)
			if err != nil {
				return false
			}
			seen += len(recs)
		}
		return seen == len(keys)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestRegistryMembershipAndLeader(t *testing.T) {
	r := NewRegistry(time.Minute)
	if _, ok := r.Leader(); ok {
		t.Error("empty registry should have no leader")
	}
	r.Register("b2", "addr2")
	r.Register("b1", "addr1")
	ms := r.Members()
	if len(ms) != 2 || ms[0].ID != "b1" {
		t.Errorf("Members = %v", ms)
	}
	leader, ok := r.Leader()
	if !ok || leader.ID != "b1" {
		t.Errorf("Leader = %v, %v", leader, ok)
	}
	r.Deregister("b1")
	leader, ok = r.Leader()
	if !ok || leader.ID != "b2" {
		t.Errorf("Leader after deregister = %v, %v", leader, ok)
	}
	if err := r.Heartbeat("ghost"); !errors.Is(err, ErrUnknownMember) {
		t.Errorf("Heartbeat(ghost) = %v", err)
	}
}

func TestRegistryExpiry(t *testing.T) {
	r := NewRegistry(50 * time.Millisecond)
	now := time.Unix(1000, 0)
	r.now = func() time.Time { return now }
	r.Register("b1", "addr1")
	r.Register("b2", "addr2")
	now = now.Add(40 * time.Millisecond)
	if err := r.Heartbeat("b1"); err != nil {
		t.Fatal(err)
	}
	now = now.Add(30 * time.Millisecond) // b2 is now 70ms stale, b1 30ms
	ms := r.Members()
	if len(ms) != 1 || ms[0].ID != "b1" {
		t.Errorf("Members after expiry = %v", ms)
	}
}
