package pubsub

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func startServer(t *testing.T) (*Broker, *Server, *Client) {
	t.Helper()
	b := NewBroker()
	srv, err := Serve(b, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	cli, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cli.Close() })
	return b, srv, cli
}

func TestTCPCreatePublishFetch(t *testing.T) {
	_, _, cli := startServer(t)
	if err := cli.CreateTopic("answer", 2); err != nil {
		t.Fatal(err)
	}
	if n, err := cli.Partitions("answer"); err != nil || n != 2 {
		t.Fatalf("Partitions = %d, %v", n, err)
	}
	part, off, err := cli.Publish("answer", []byte("mid-1"), []byte("payload"))
	if err != nil {
		t.Fatal(err)
	}
	if off != 0 {
		t.Errorf("first offset = %d", off)
	}
	recs, err := cli.Fetch("answer", part, 0, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || !bytes.Equal(recs[0].Value, []byte("payload")) || !bytes.Equal(recs[0].Key, []byte("mid-1")) {
		t.Errorf("Fetch = %+v", recs)
	}
	if recs[0].Timestamp.IsZero() {
		t.Error("timestamp not carried over the wire")
	}
	end, err := cli.EndOffset("answer", part)
	if err != nil || end != 1 {
		t.Errorf("EndOffset = %d, %v", end, err)
	}
}

func TestTCPErrorsPropagate(t *testing.T) {
	_, _, cli := startServer(t)
	if err := cli.CreateTopic("t", 1); err != nil {
		t.Fatal(err)
	}
	if err := cli.CreateTopic("t", 1); err == nil || !strings.Contains(err.Error(), "exists") {
		t.Errorf("duplicate create over TCP: %v", err)
	}
	if _, _, err := cli.Publish("missing", nil, []byte("v")); err == nil {
		t.Error("expected missing-topic error over TCP")
	}
	if _, err := cli.Fetch("t", 5, 0, 1, 0); err == nil {
		t.Error("expected bad-partition error over TCP")
	}
}

func TestTCPNilKeyPublish(t *testing.T) {
	_, _, cli := startServer(t)
	if err := cli.CreateTopic("t", 1); err != nil {
		t.Fatal(err)
	}
	if _, _, err := cli.Publish("t", nil, []byte("nokey")); err != nil {
		t.Fatal(err)
	}
	recs, err := cli.Fetch("t", 0, 0, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || len(recs[0].Key) != 0 {
		t.Errorf("nil-key record = %+v", recs)
	}
}

func TestTCPWaitFetch(t *testing.T) {
	_, srv, cli := startServer(t)
	if err := cli.CreateTopic("t", 1); err != nil {
		t.Fatal(err)
	}
	cli2, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli2.Close()
	done := make(chan []Record, 1)
	go func() {
		recs, err := cli2.Fetch("t", 0, 0, 10, 5*time.Second)
		if err != nil {
			t.Error(err)
		}
		done <- recs
	}()
	time.Sleep(20 * time.Millisecond)
	if _, _, err := cli.Publish("t", nil, []byte("wake")); err != nil {
		t.Fatal(err)
	}
	select {
	case recs := <-done:
		if len(recs) != 1 {
			t.Errorf("blocking fetch = %v", recs)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("blocking fetch never returned")
	}
}

func TestTCPCommitOffsets(t *testing.T) {
	_, _, cli := startServer(t)
	if err := cli.CreateTopic("t", 1); err != nil {
		t.Fatal(err)
	}
	if err := cli.CommitOffset("g", "t", 0, 5); err != nil {
		t.Fatal(err)
	}
	off, err := cli.CommittedOffset("g", "t", 0)
	if err != nil || off != 5 {
		t.Errorf("CommittedOffset = %d, %v", off, err)
	}
}

func TestTCPConcurrentClients(t *testing.T) {
	b, srv, _ := startServer(t)
	if err := b.CreateTopic("t", 4); err != nil {
		t.Fatal(err)
	}
	const clients = 8
	const each = 100
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cli, err := Dial(srv.Addr())
			if err != nil {
				t.Error(err)
				return
			}
			defer cli.Close()
			for j := 0; j < each; j++ {
				key := []byte(fmt.Sprintf("c%d-%d", i, j))
				if _, _, err := cli.Publish("t", key, []byte("v")); err != nil {
					t.Error(err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	total := int64(0)
	for p := 0; p < 4; p++ {
		end, err := b.EndOffset("t", p)
		if err != nil {
			t.Fatal(err)
		}
		total += end
	}
	if total != clients*each {
		t.Errorf("total = %d, want %d", total, clients*each)
	}
}

func TestServerCloseDisconnectsClients(t *testing.T) {
	_, srv, cli := startServer(t)
	if err := cli.CreateTopic("t", 1); err != nil {
		t.Fatal(err)
	}
	srv.Close()
	if _, _, err := cli.Publish("t", nil, []byte("x")); err == nil {
		t.Error("expected error after server close")
	}
}
