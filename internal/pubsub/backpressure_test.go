package pubsub

import (
	"errors"
	"fmt"
	"hash/fnv"
	"testing"
	"time"
)

// partitionForKey mirrors the broker's key → partition routing so tests
// can craft keys that land on chosen partitions.
func partitionForKey(key []byte, partitions int) int {
	h := fnv.New32a()
	h.Write(key)
	part := int(h.Sum32()) % partitions
	if part < 0 {
		part += partitions
	}
	return part
}

// keyFor brute-forces a key routed to the wanted partition.
func keyFor(t *testing.T, partitions, want int) []byte {
	t.Helper()
	for i := 0; i < 100000; i++ {
		k := []byte(fmt.Sprintf("key-%d", i))
		if partitionForKey(k, partitions) == want {
			return k
		}
	}
	t.Fatalf("no key found for partition %d/%d", want, partitions)
	return nil
}

func TestPublishCapacityReject(t *testing.T) {
	b := NewBroker()
	defer b.Close()
	if err := b.CreateTopic("answer", 1); err != nil {
		t.Fatal(err)
	}
	if err := b.SetTopicCapacity("answer", 3); err != nil {
		t.Fatal(err)
	}
	key := keyFor(t, 1, 0)
	for i := 0; i < 3; i++ {
		if _, _, err := b.Publish("answer", key, []byte("v")); err != nil {
			t.Fatalf("publish %d within capacity: %v", i, err)
		}
	}
	_, _, err := b.Publish("answer", key, []byte("v"))
	if !errors.Is(err, ErrPartitionFull) {
		t.Fatalf("publish beyond capacity: got %v, want ErrPartitionFull", err)
	}
	if end, _ := b.EndOffset("answer", 0); end != 3 {
		t.Fatalf("end offset after reject = %d, want 3", end)
	}
	if s := b.Stats(); s.Rejected != 1 {
		t.Fatalf("Stats.Rejected = %d, want 1", s.Rejected)
	}
}

func TestCommitFreesCapacity(t *testing.T) {
	b := NewBroker()
	defer b.Close()
	if err := b.CreateTopic("answer", 1); err != nil {
		t.Fatal(err)
	}
	if err := b.SetTopicCapacity("answer", 2); err != nil {
		t.Fatal(err)
	}
	key := keyFor(t, 1, 0)
	for i := 0; i < 2; i++ {
		if _, _, err := b.Publish("answer", key, []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := b.Publish("answer", key, []byte("v")); !errors.Is(err, ErrPartitionFull) {
		t.Fatalf("expected full, got %v", err)
	}
	// Consuming alone does not free space; committing does. With two
	// groups, the *slowest* committed offset is the floor.
	if err := b.CommitOffset("fast", "answer", 0, 2); err != nil {
		t.Fatal(err)
	}
	if err := b.CommitOffset("slow", "answer", 0, 1); err != nil {
		t.Fatal(err)
	}
	// Floor is 1 → backlog 1 → room for exactly 1 more.
	if _, _, err := b.Publish("answer", key, []byte("v")); err != nil {
		t.Fatalf("publish after commit freed space: %v", err)
	}
	if _, _, err := b.Publish("answer", key, []byte("v")); !errors.Is(err, ErrPartitionFull) {
		t.Fatalf("expected full again, got %v", err)
	}
}

// TestPublishBatchAllOrNothing is the regression test for the
// mixed-partition batch case: a batch spanning a full partition and an
// empty one must publish nothing at all.
func TestPublishBatchAllOrNothing(t *testing.T) {
	const parts = 4
	b := NewBroker()
	defer b.Close()
	if err := b.CreateTopic("answer", parts); err != nil {
		t.Fatal(err)
	}
	if err := b.SetTopicCapacity("answer", 2); err != nil {
		t.Fatal(err)
	}
	fullKey := keyFor(t, parts, 1)
	emptyKey := keyFor(t, parts, 2)
	// Fill partition 1 to capacity.
	for i := 0; i < 2; i++ {
		if _, _, err := b.Publish("answer", fullKey, []byte("fill")); err != nil {
			t.Fatal(err)
		}
	}
	batch := []Message{
		{Key: emptyKey, Value: []byte("a")}, // would land on empty partition 2
		{Key: fullKey, Value: []byte("b")},  // refused: partition 1 full
		{Key: emptyKey, Value: []byte("c")},
	}
	_, err := b.PublishBatch("answer", batch)
	if !errors.Is(err, ErrPartitionFull) {
		t.Fatalf("mixed batch: got %v, want ErrPartitionFull", err)
	}
	// Nothing from the batch may have landed anywhere.
	wantEnds := map[int]int64{0: 0, 1: 2, 2: 0, 3: 0}
	for p := 0; p < parts; p++ {
		end, err := b.EndOffset("answer", p)
		if err != nil {
			t.Fatal(err)
		}
		if end != wantEnds[p] {
			t.Errorf("partition %d end = %d, want %d (batch partially applied)", p, end, wantEnds[p])
		}
	}
	if s := b.Stats(); s.Rejected != int64(len(batch)) {
		t.Errorf("Stats.Rejected = %d, want %d", s.Rejected, len(batch))
	}
	// After freeing space the identical batch retries cleanly — the
	// all-or-nothing contract is what makes blind retry duplicate-free.
	if err := b.CommitOffset("g", "answer", 1, 2); err != nil {
		t.Fatal(err)
	}
	res, err := b.PublishBatch("answer", batch)
	if err != nil {
		t.Fatalf("retry after commit: %v", err)
	}
	if len(res) != len(batch) {
		t.Fatalf("retry results = %d, want %d", len(res), len(batch))
	}
}

func TestPublishWaitSucceedsAfterCommit(t *testing.T) {
	b := NewBroker()
	defer b.Close()
	if err := b.CreateTopic("answer", 1); err != nil {
		t.Fatal(err)
	}
	if err := b.SetTopicCapacity("answer", 1); err != nil {
		t.Fatal(err)
	}
	key := keyFor(t, 1, 0)
	if _, _, err := b.Publish("answer", key, []byte("v")); err != nil {
		t.Fatal(err)
	}
	go func() {
		time.Sleep(20 * time.Millisecond)
		b.CommitOffset("g", "answer", 0, 1)
	}()
	if _, _, err := b.PublishWait("answer", key, []byte("v"), 5*time.Second); err != nil {
		t.Fatalf("PublishWait after commit: %v", err)
	}
}

func TestPublishWaitDeadline(t *testing.T) {
	b := NewBroker()
	defer b.Close()
	if err := b.CreateTopic("answer", 1); err != nil {
		t.Fatal(err)
	}
	if err := b.SetTopicCapacity("answer", 1); err != nil {
		t.Fatal(err)
	}
	key := keyFor(t, 1, 0)
	if _, _, err := b.Publish("answer", key, []byte("v")); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, _, err := b.PublishWait("answer", key, []byte("v"), 30*time.Millisecond)
	if !errors.Is(err, ErrPartitionFull) {
		t.Fatalf("PublishWait on stuck partition: got %v, want ErrPartitionFull", err)
	}
	if elapsed := time.Since(start); elapsed < 30*time.Millisecond {
		t.Fatalf("PublishWait returned after %v, before the deadline", elapsed)
	}
	// A non-full error must return immediately, not retry to deadline.
	start = time.Now()
	if _, _, err := b.PublishWait("nope", key, []byte("v"), 5*time.Second); !errors.Is(err, ErrNoTopic) {
		t.Fatalf("PublishWait unknown topic: %v", err)
	} else if time.Since(start) > time.Second {
		t.Fatal("PublishWait retried a non-full error")
	}
}

func TestStatsBacklog(t *testing.T) {
	b := NewBroker()
	defer b.Close()
	if err := b.CreateTopic("answer", 2); err != nil {
		t.Fatal(err)
	}
	k0 := keyFor(t, 2, 0)
	k1 := keyFor(t, 2, 1)
	for i := 0; i < 3; i++ {
		if _, _, err := b.Publish("answer", k0, []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := b.Publish("answer", k1, []byte("v")); err != nil {
		t.Fatal(err)
	}
	s := b.Stats()
	if s.TotalBacklog != 4 {
		t.Fatalf("TotalBacklog = %d, want 4", s.TotalBacklog)
	}
	if s.MaxBacklog != 3 {
		t.Fatalf("MaxBacklog = %d, want 3", s.MaxBacklog)
	}
	if lag, err := b.Backlog("answer"); err != nil || lag != 4 {
		t.Fatalf("Backlog = %d, %v; want 4", lag, err)
	}
	if err := b.CommitOffset("g", "answer", 0, 2); err != nil {
		t.Fatal(err)
	}
	s = b.Stats()
	if s.TotalBacklog != 2 {
		t.Fatalf("TotalBacklog after commit = %d, want 2", s.TotalBacklog)
	}
	if s.MaxBacklog != 1 {
		t.Fatalf("MaxBacklog after commit = %d, want 1", s.MaxBacklog)
	}
	if _, err := b.Backlog("nope"); !errors.Is(err, ErrNoTopic) {
		t.Fatalf("Backlog unknown topic: %v", err)
	}
}

func TestSetTopicCapacityErrors(t *testing.T) {
	b := NewBroker()
	defer b.Close()
	if err := b.SetTopicCapacity("nope", 5); !errors.Is(err, ErrNoTopic) {
		t.Fatalf("SetTopicCapacity unknown topic: %v", err)
	}
	if err := b.CreateTopic("answer", 1); err != nil {
		t.Fatal(err)
	}
	if err := b.SetTopicCapacity("answer", 1); err != nil {
		t.Fatal(err)
	}
	key := keyFor(t, 1, 0)
	if _, _, err := b.Publish("answer", key, []byte("v")); err != nil {
		t.Fatal(err)
	}
	if _, _, err := b.Publish("answer", key, []byte("v")); !errors.Is(err, ErrPartitionFull) {
		t.Fatalf("expected full, got %v", err)
	}
	// capacity <= 0 removes the bound.
	if err := b.SetTopicCapacity("answer", 0); err != nil {
		t.Fatal(err)
	}
	if _, _, err := b.Publish("answer", key, []byte("v")); err != nil {
		t.Fatalf("publish after unbounding: %v", err)
	}
}

// TestTCPPartitionFullSentinel checks the ErrPartitionFull contract
// across the wire: the sentinel must survive serialization so remote
// publishers can errors.Is on it, and the client-side Wait variants must
// retry on it.
func TestTCPPartitionFullSentinel(t *testing.T) {
	b, _, cli := startServer(t)
	if err := cli.CreateTopic("answer", 1); err != nil {
		t.Fatal(err)
	}
	if err := b.SetTopicCapacity("answer", 1); err != nil {
		t.Fatal(err)
	}
	key := keyFor(t, 1, 0)
	if _, _, err := cli.Publish("answer", key, []byte("v")); err != nil {
		t.Fatal(err)
	}
	_, _, err := cli.Publish("answer", key, []byte("v"))
	if !errors.Is(err, ErrPartitionFull) {
		t.Fatalf("remote publish beyond capacity: got %v, want ErrPartitionFull", err)
	}
	if _, err := cli.PublishBatch("answer", []Message{{Key: key, Value: []byte("v")}}); !errors.Is(err, ErrPartitionFull) {
		t.Fatalf("remote batch beyond capacity: got %v, want ErrPartitionFull", err)
	}
	// Client-side blocking publish: commit on the broker frees space,
	// the client retry lands.
	go func() {
		time.Sleep(20 * time.Millisecond)
		b.CommitOffset("g", "answer", 0, 1)
	}()
	if _, err := cli.PublishBatchWait("answer", []Message{{Key: key, Value: []byte("v")}}, 5*time.Second); err != nil {
		t.Fatalf("PublishBatchWait over TCP: %v", err)
	}
	// Other sentinels survive the wire too.
	if _, err := cli.Partitions("ghost"); !errors.Is(err, ErrNoTopic) {
		t.Fatalf("remote unknown topic: got %v, want ErrNoTopic", err)
	}
}
