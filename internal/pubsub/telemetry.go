package pubsub

import (
	"privapprox/internal/telemetry"
)

// SetPublishHistogram attaches a latency histogram to the broker's
// publish paths: each successful publish call (single, row batch, or
// columnar batch — one observation per call, not per message) records
// its wall time. Nil detaches; an unset histogram costs one atomic
// pointer load per publish.
func (b *Broker) SetPublishHistogram(h *telemetry.Histogram) {
	b.pubLat.Store(h)
}

// AppendSamples implements telemetry.Source over the broker's traffic
// counters and snapshot-time consumer-lag accounting — the same
// numbers Stats() reports, which remains as the compat surface.
func (b *Broker) AppendSamples(dst []telemetry.Sample) []telemetry.Sample {
	return AppendStatsSamples(dst, b.Stats())
}

// AppendStatsSamples renders one Stats snapshot as broker series. It is
// the shared renderer behind Broker.AppendSamples and fleet-level
// aggregation (core sums many brokers into one snapshot first, because
// the series carry no per-broker label and would otherwise collide).
func AppendStatsSamples(dst []telemetry.Sample, s Stats) []telemetry.Sample {
	return append(dst,
		telemetry.Sample{Name: "privapprox_broker_messages_in_total", Value: float64(s.MessagesIn), Kind: telemetry.KindCounter},
		telemetry.Sample{Name: "privapprox_broker_bytes_in_total", Value: float64(s.BytesIn), Kind: telemetry.KindCounter},
		telemetry.Sample{Name: "privapprox_broker_messages_out_total", Value: float64(s.MessagesOut), Kind: telemetry.KindCounter},
		telemetry.Sample{Name: "privapprox_broker_bytes_out_total", Value: float64(s.BytesOut), Kind: telemetry.KindCounter},
		telemetry.Sample{Name: "privapprox_broker_rejected_total", Value: float64(s.Rejected), Kind: telemetry.KindCounter},
		telemetry.Sample{Name: "privapprox_broker_duplicates_total", Value: float64(s.Duplicates), Kind: telemetry.KindCounter},
		telemetry.Sample{Name: "privapprox_broker_backlog", Value: float64(s.TotalBacklog), Kind: telemetry.KindGauge},
		telemetry.Sample{Name: "privapprox_broker_backlog_max", Value: float64(s.MaxBacklog), Kind: telemetry.KindGauge},
	)
}

var _ telemetry.Source = (*Broker)(nil)
