package pubsub

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"
)

// The TCP transport speaks length-prefixed binary frames. Each request
// frame starts with a one-byte opcode; each response frame starts with a
// one-byte status (0 = ok, 1 = error followed by a message string).

// maxFrame bounds a frame to keep a misbehaving peer from ballooning
// memory.
const maxFrame = 64 << 20

// ErrWire reports a transport protocol violation.
var ErrWire = errors.New("pubsub: wire protocol error")

// Opcodes.
const (
	opCreateTopic = byte(iota + 1)
	opPublish
	opFetch
	opEndOffset
	opCommit
	opCommitted
	opPartitions
	opPublishBatch
	opFeatures
	opPublishBatchV2
	opPublishBatchSession
	opPublishColumnsSession
)

// featureColumnarV2 is the capability bit a server advertises in its
// opFeatures response when it accepts the columnar opPublishBatchV2
// frame. A v1 server answers opFeatures itself with "unknown opcode"
// (connections survive unknown opcodes), which the client reads as an
// empty feature mask — that error-as-answer is the whole negotiation.
const featureColumnarV2 = uint64(1) << 0

// featureIdempotent advertises the producer-session publish opcodes
// (opPublishBatchSession, opPublishColumnsSession): batches tagged with
// a producer ID and per-topic sequence number that the broker
// deduplicates, so a retry after an ambiguous failure cannot
// double-publish.
const featureIdempotent = uint64(1) << 1

// featureLineage advertises the provenance plane: the broker hosts a
// lineage sidecar topic and accepts batch origin stamps on it. Clients
// that don't see the bit simply skip stamping — stamps are advisory
// observability data, so the fallback is silence, not an error.
const featureLineage = uint64(1) << 2

func writeFrame(w io.Writer, payload []byte) error {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

func readFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrame {
		return nil, fmt.Errorf("%w: frame of %d bytes", ErrWire, n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// enc is an append-only payload builder.
type enc struct{ buf []byte }

// encPool recycles frame-encode buffers across requests: the publish
// hot path reuses one grown buffer per connectionful of traffic instead
// of allocating a frame per call. A pooled enc may be reused only after
// the frame is fully written (roundTrip writes before returning).
var encPool = sync.Pool{New: func() any { return new(enc) }}

func getEnc() *enc {
	e := encPool.Get().(*enc)
	e.buf = e.buf[:0]
	return e
}

func putEnc(e *enc) { encPool.Put(e) }

func (e *enc) byte(b byte)     { e.buf = append(e.buf, b) }
func (e *enc) uint32(v uint32) { e.buf = binary.BigEndian.AppendUint32(e.buf, v) }
func (e *enc) uint64(v uint64) { e.buf = binary.BigEndian.AppendUint64(e.buf, v) }
func (e *enc) bytes(b []byte) {
	e.uint32(uint32(len(b)))
	e.buf = append(e.buf, b...)
}
func (e *enc) str(s string) { e.bytes([]byte(s)) }

// dec is a sequential payload reader.
type dec struct{ buf []byte }

func (d *dec) byte() (byte, error) {
	if len(d.buf) < 1 {
		return 0, fmt.Errorf("%w: short frame", ErrWire)
	}
	b := d.buf[0]
	d.buf = d.buf[1:]
	return b, nil
}

func (d *dec) uint32() (uint32, error) {
	if len(d.buf) < 4 {
		return 0, fmt.Errorf("%w: short frame", ErrWire)
	}
	v := binary.BigEndian.Uint32(d.buf)
	d.buf = d.buf[4:]
	return v, nil
}

func (d *dec) uint64() (uint64, error) {
	if len(d.buf) < 8 {
		return 0, fmt.Errorf("%w: short frame", ErrWire)
	}
	v := binary.BigEndian.Uint64(d.buf)
	d.buf = d.buf[8:]
	return v, nil
}

func (d *dec) bytes() ([]byte, error) {
	n, err := d.uint32()
	if err != nil {
		return nil, err
	}
	if uint32(len(d.buf)) < n {
		return nil, fmt.Errorf("%w: short frame", ErrWire)
	}
	out := make([]byte, n)
	copy(out, d.buf[:n])
	d.buf = d.buf[n:]
	return out, nil
}

func (d *dec) str() (string, error) {
	b, err := d.bytes()
	return string(b), err
}

// view reads a length-prefixed byte string like bytes but without
// copying: the returned slice aliases the frame buffer and is valid
// only while the frame is. The columnar publish handler uses it to pass
// whole lanes straight to the broker, which copies them once.
func (d *dec) view() ([]byte, error) {
	n, err := d.uint32()
	if err != nil {
		return nil, err
	}
	if uint32(len(d.buf)) < n {
		return nil, fmt.Errorf("%w: short frame", ErrWire)
	}
	out := d.buf[:n:n]
	d.buf = d.buf[n:]
	return out, nil
}
