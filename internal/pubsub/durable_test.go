package pubsub

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"privapprox/internal/wal"
)

func TestDurableBrokerReplaysPartitions(t *testing.T) {
	dir := t.TempDir()
	b, err := OpenBroker(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.CreateTopic("answer", 4); err != nil {
		t.Fatal(err)
	}
	if err := b.CreateTopic("control", 1); err != nil {
		t.Fatal(err)
	}
	type pub struct {
		part int
		off  int64
		key  []byte
		val  []byte
	}
	var pubs []pub
	for i := 0; i < 50; i++ {
		key := []byte(fmt.Sprintf("key-%02d", i))
		val := []byte(fmt.Sprintf("value-%02d", i))
		part, off, err := b.Publish("answer", key, val)
		if err != nil {
			t.Fatal(err)
		}
		pubs = append(pubs, pub{part, off, key, val})
	}
	// Keyless publishes on the control topic (nil keys must survive the
	// round trip as nil-or-empty, matching in-memory behavior).
	if _, _, err := b.Publish("control", nil, []byte("announcement-1")); err != nil {
		t.Fatal(err)
	}
	if err := b.CommitOffset("agg", "answer", 2, 7); err != nil {
		t.Fatal(err)
	}
	b.Close()

	// A fresh OpenBroker sees everything the killed one acknowledged.
	b2, err := OpenBroker(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer b2.Close()
	if n, err := b2.Partitions("answer"); err != nil || n != 4 {
		t.Fatalf("replayed topic: %d partitions, err %v", n, err)
	}
	for _, p := range pubs {
		recs, err := b2.Fetch("answer", p.part, p.off, 1)
		if err != nil || len(recs) != 1 {
			t.Fatalf("fetch %d/%d: %v (%d recs)", p.part, p.off, err, len(recs))
		}
		if !bytes.Equal(recs[0].Key, p.key) || !bytes.Equal(recs[0].Value, p.val) {
			t.Fatalf("record %d/%d did not round-trip: key=%q value=%q", p.part, p.off, recs[0].Key, recs[0].Value)
		}
	}
	recs, err := b2.Fetch("control", 0, 0, 10)
	if err != nil || len(recs) != 1 || string(recs[0].Value) != "announcement-1" {
		t.Fatalf("control topic did not replay: %v / %+v", err, recs)
	}
	if len(recs[0].Key) != 0 {
		t.Fatalf("nil key came back as %q", recs[0].Key)
	}
	off, err := b2.CommittedOffset("agg", "answer", 2)
	if err != nil || off != 7 {
		t.Fatalf("committed offset did not replay: %d, %v", off, err)
	}

	// The restarted broker appends at the right offsets.
	_, off2, err := b2.Publish("control", nil, []byte("announcement-2"))
	if err != nil || off2 != 1 {
		t.Fatalf("post-restart publish landed at offset %d, err %v", off2, err)
	}
}

func TestDurableBrokerReplaysBatchesAndTimestamps(t *testing.T) {
	dir := t.TempDir()
	b, err := OpenBroker(dir, wal.Options{Policy: wal.PolicyEveryBatch})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.CreateTopic("key", 3); err != nil {
		t.Fatal(err)
	}
	msgs := make([]Message, 32)
	for i := range msgs {
		msgs[i] = Message{Key: []byte{byte(i)}, Value: []byte(fmt.Sprintf("v%d", i))}
	}
	results, err := b.PublishBatch("key", msgs)
	if err != nil {
		t.Fatal(err)
	}
	var wantRecs []Record
	for i, r := range results {
		recs, err := b.Fetch("key", r.Partition, r.Offset, 1)
		if err != nil || len(recs) != 1 {
			t.Fatalf("fetch %d: %v", i, err)
		}
		wantRecs = append(wantRecs, recs[0])
	}
	b.Close()

	b2, err := OpenBroker(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer b2.Close()
	for _, want := range wantRecs {
		recs, err := b2.Fetch("key", want.Partition, want.Offset, 1)
		if err != nil || len(recs) != 1 {
			t.Fatal(err)
		}
		got := recs[0]
		if !bytes.Equal(got.Key, want.Key) || !bytes.Equal(got.Value, want.Value) {
			t.Fatalf("batch record did not round-trip at %d/%d", want.Partition, want.Offset)
		}
		// Timestamps are journaled at nanosecond precision.
		if !got.Timestamp.Equal(want.Timestamp) {
			t.Fatalf("timestamp drifted: %v → %v", want.Timestamp, got.Timestamp)
		}
	}
}

func TestDurableBrokerRejectsUnsafeTopicName(t *testing.T) {
	b, err := OpenBroker(t.TempDir(), wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if err := b.CreateTopic("../escape", 1); !errors.Is(err, ErrDurable) {
		t.Fatalf("path-traversal topic accepted: %v", err)
	}
	if err := b.CreateTopic("ok-topic.v1", 1); err != nil {
		t.Fatalf("safe topic rejected: %v", err)
	}
}

// TestCommitOffsetMonotonic is the regression test for the rewind bug:
// a lagging committer writing a lower offset must not rewind the group.
func TestCommitOffsetMonotonic(t *testing.T) {
	b := NewBroker()
	defer b.Close()
	if err := b.CreateTopic("answer", 2); err != nil {
		t.Fatal(err)
	}
	if err := b.CommitOffset("g", "answer", 0, 10); err != nil {
		t.Fatal(err)
	}
	// The laggard: a lower commit is ignored, not an error.
	if err := b.CommitOffset("g", "answer", 0, 4); err != nil {
		t.Fatal(err)
	}
	if off, _ := b.CommittedOffset("g", "answer", 0); off != 10 {
		t.Fatalf("lagging commit rewound the group: %d, want 10", off)
	}
	// Equal commits are idempotent; higher ones advance.
	if err := b.CommitOffset("g", "answer", 0, 10); err != nil {
		t.Fatal(err)
	}
	if err := b.CommitOffset("g", "answer", 0, 11); err != nil {
		t.Fatal(err)
	}
	if off, _ := b.CommittedOffset("g", "answer", 0); off != 11 {
		t.Fatalf("higher commit did not advance: %d, want 11", off)
	}
	// Other partitions and groups are independent.
	if err := b.CommitOffset("g", "answer", 1, 3); err != nil {
		t.Fatal(err)
	}
	if off, _ := b.CommittedOffset("g", "answer", 1); off != 3 {
		t.Fatalf("partition 1 commit lost: %d", off)
	}
	if err := b.CommitOffset("h", "answer", 0, 2); err != nil {
		t.Fatal(err)
	}
	if off, _ := b.CommittedOffset("h", "answer", 0); off != 2 {
		t.Fatalf("group h commit lost: %d", off)
	}
}

func TestDurableCommitMonotonicAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	b, err := OpenBroker(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.CreateTopic("answer", 1); err != nil {
		t.Fatal(err)
	}
	for _, off := range []int64{5, 9, 3, 12, 6} { // journal order, with laggards
		if err := b.CommitOffset("g", "answer", 0, off); err != nil {
			t.Fatal(err)
		}
	}
	b.Close()
	b2, err := OpenBroker(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer b2.Close()
	if off, _ := b2.CommittedOffset("g", "answer", 0); off != 12 {
		t.Fatalf("restored offset %d, want 12", off)
	}
}

func TestDurableBrokerSurvivesTornPartitionTail(t *testing.T) {
	dir := t.TempDir()
	b, err := OpenBroker(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.CreateTopic("answer", 1); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, _, err := b.Publish("answer", nil, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	b.Close()

	// Corrupt the partition log's tail the way a crash mid-write would:
	// append half a frame straight to the newest segment file.
	segs, err := filepath.Glob(filepath.Join(dir, "topic-answer", "p0000", "wal-*.seg"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments: %v", err)
	}
	sort.Strings(segs)
	f, err := os.OpenFile(segs[len(segs)-1], os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0, 0, 1, 0, 0xBA, 0xD0}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	b2, err := OpenBroker(dir, wal.Options{})
	if err != nil {
		t.Fatalf("torn partition tail must not prevent restart: %v", err)
	}
	defer b2.Close()
	end, err := b2.EndOffset("answer", 0)
	if err != nil || end != 10 {
		t.Fatalf("end offset after torn-tail recovery: %d, %v", end, err)
	}
	// Publishing resumes at the recovered offset.
	_, off, err := b2.Publish("answer", nil, []byte("resumed"))
	if err != nil || off != 10 {
		t.Fatalf("post-recovery publish: offset %d, err %v", off, err)
	}
}

func TestConsumerSeekAndPositions(t *testing.T) {
	b := NewBroker()
	defer b.Close()
	if err := b.CreateTopic("answer", 2); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if _, _, err := b.Publish("answer", nil, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	c, err := NewConsumer(b, "g", "answer")
	if err != nil {
		t.Fatal(err)
	}
	recs, err := c.Poll(100)
	if err != nil || len(recs) != 6 {
		t.Fatalf("poll: %d recs, %v", len(recs), err)
	}
	pos := c.Positions()
	if pos["answer"][0]+pos["answer"][1] != 6 {
		t.Fatalf("positions don't cover the log: %+v", pos)
	}
	// Positions is a snapshot: mutating it must not move the consumer.
	pos["answer"][0] = 0
	if again, _ := c.Poll(100); len(again) != 0 {
		t.Fatal("mutating the Positions snapshot moved the consumer")
	}
	// Seek rewinds for a re-read.
	if err := c.Seek("answer", 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := c.Seek("answer", 1, 0); err != nil {
		t.Fatal(err)
	}
	if again, _ := c.Poll(100); len(again) != 6 {
		t.Fatal("Seek(0) did not rewind the consumer")
	}
	if err := c.Seek("nope", 0, 0); !errors.Is(err, ErrNoTopic) {
		t.Fatalf("seek on unknown topic: %v", err)
	}
	if err := c.Seek("answer", 9, 0); !errors.Is(err, ErrNoPartition) {
		t.Fatalf("seek on unknown partition: %v", err)
	}
	if err := c.Seek("answer", 0, -1); !errors.Is(err, ErrBadOffset) {
		t.Fatalf("negative seek: %v", err)
	}
}
