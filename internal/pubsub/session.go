package pubsub

import (
	"errors"
	"fmt"
)

// This file is the wire half of producer sessions (idempotent
// at-least-once publish): the client-side session opcodes and their
// server handlers. The broker half — per-partition (producer, sequence)
// dedup slots journaled with the records — lives in broker.go,
// columnar.go, and durable.go; the retrying front-end is Producer.

// ErrNoSession reports a transport without producer-session support: a
// pre-session server (feature negotiation said so) or a Transport that
// never implemented SessionPublisher. Producer reacts by falling back
// to plain publishes with no ambiguous-failure retry, since a blind
// retry without broker dedup could double-publish.
var ErrNoSession = errors.New("pubsub: producer sessions unsupported by transport")

// supportsSessions probes the server's feature mask once and caches a
// definite verdict, exactly like supportsColumns; a transport failure
// leaves the state unprobed and is returned so the caller can retry.
func (c *Client) supportsSessions() (bool, error) {
	switch c.sessions.Load() {
	case featV2:
		return true, nil
	case featV1Only:
		return false, nil
	}
	mask, err := c.Features()
	if err != nil {
		if errors.Is(err, ErrWire) {
			c.sessions.Store(featV1Only)
			return false, nil
		}
		return false, err
	}
	if mask&featureIdempotent != 0 {
		c.sessions.Store(featV2)
		return true, nil
	}
	c.sessions.Store(featV1Only)
	return false, nil
}

// decodePubResults reads the count-prefixed PubResult list every batch
// publish response carries, checking the ack count against want.
func decodePubResults(d *dec, want int) ([]PubResult, error) {
	cnt, err := d.uint32()
	if err != nil {
		return nil, err
	}
	if int(cnt) != want {
		return nil, fmt.Errorf("%w: batch acked %d of %d messages", ErrWire, cnt, want)
	}
	out := make([]PubResult, 0, want)
	for i := 0; i < want; i++ {
		part, err := d.uint32()
		if err != nil {
			return nil, err
		}
		off, err := d.uint64()
		if err != nil {
			return nil, err
		}
		out = append(out, PubResult{Partition: int(part), Offset: int64(off)})
	}
	return out, nil
}

// PublishBatchSession mirrors Broker.PublishBatchSession over TCP. The
// whole batch travels as exactly one frame — a session sequence covers
// one atomic broker batch, so this method never chunks; callers
// (Producer) bound batch size and assign one sequence per chunk.
// Against a pre-session server it returns ErrNoSession.
func (c *Client) PublishBatchSession(topic string, msgs []Message, pid, seq uint64) ([]PubResult, error) {
	if len(msgs) == 0 {
		return nil, nil
	}
	ok, err := c.supportsSessions()
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, ErrNoSession
	}
	e := getEnc()
	defer putEnc(e)
	e.byte(opPublishBatchSession)
	e.str(topic)
	e.uint64(pid)
	e.uint64(seq)
	e.uint32(uint32(len(msgs)))
	for i := range msgs {
		encodeOptBytes(e, msgs[i].Key)
		e.bytes(msgs[i].Value)
	}
	d, err := c.roundTrip(e.buf)
	if err != nil {
		return nil, err
	}
	return decodePubResults(d, len(msgs))
}

// PublishColumnsSession mirrors Broker.PublishColumnsSession over TCP —
// one frame, never chunked, ErrNoSession against a pre-session server.
func (c *Client) PublishColumnsSession(topic string, cols Columns, pid, seq uint64) ([]PubResult, error) {
	if err := cols.Validate(); err != nil {
		return nil, err
	}
	if cols.Count == 0 {
		return nil, nil
	}
	ok, err := c.supportsSessions()
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, ErrNoSession
	}
	e := getEnc()
	defer putEnc(e)
	e.byte(opPublishColumnsSession)
	e.str(topic)
	e.uint64(pid)
	e.uint64(seq)
	e.uint32(uint32(cols.Count))
	e.uint32(uint32(cols.KeyLen))
	e.uint32(uint32(cols.ValLen))
	e.bytes(cols.Keys)
	e.bytes(cols.Vals)
	d, err := c.roundTrip(e.buf)
	if err != nil {
		return nil, err
	}
	return decodePubResults(d, cols.Count)
}

// handlePublishBatchSession decodes an opPublishBatchSession frame:
// topic | u64 pid | u64 seq | u32 count | (optional key, value)*.
func (s *Server) handlePublishBatchSession(d *dec) []byte {
	topic, err := d.str()
	if err != nil {
		return respErr(err)
	}
	pid, err := d.uint64()
	if err != nil {
		return respErr(err)
	}
	seq, err := d.uint64()
	if err != nil {
		return respErr(err)
	}
	n, err := d.uint32()
	if err != nil {
		return respErr(err)
	}
	msgs := make([]Message, 0, min(int(n), 4096))
	for i := uint32(0); i < n; i++ {
		key, err := decodeOptBytes(d)
		if err != nil {
			return respErr(err)
		}
		val, err := d.bytes()
		if err != nil {
			return respErr(err)
		}
		msgs = append(msgs, Message{Key: key, Value: val})
	}
	results, err := s.broker.PublishBatchSession(topic, msgs, pid, seq)
	if err != nil {
		return respErr(err)
	}
	return encodePubResults(results)
}

// handlePublishColumnsSession decodes an opPublishColumnsSession frame:
// topic | u64 pid | u64 seq | u32 count | u32 keyLen | u32 valLen |
// keys | vals. The lanes are views into the request frame, exactly like
// the plain columnar handler.
func (s *Server) handlePublishColumnsSession(d *dec) []byte {
	topic, err := d.str()
	if err != nil {
		return respErr(err)
	}
	pid, err := d.uint64()
	if err != nil {
		return respErr(err)
	}
	seq, err := d.uint64()
	if err != nil {
		return respErr(err)
	}
	count, err := d.uint32()
	if err != nil {
		return respErr(err)
	}
	keyLen, err := d.uint32()
	if err != nil {
		return respErr(err)
	}
	valLen, err := d.uint32()
	if err != nil {
		return respErr(err)
	}
	keys, err := d.view()
	if err != nil {
		return respErr(err)
	}
	vals, err := d.view()
	if err != nil {
		return respErr(err)
	}
	cols := Columns{
		Count:  int(count),
		KeyLen: int(keyLen),
		ValLen: int(valLen),
		Keys:   keys,
		Vals:   vals,
	}
	if err := cols.Validate(); err != nil {
		return respErr(err)
	}
	results, err := s.broker.PublishColumnsSession(topic, cols, pid, seq)
	if err != nil {
		return respErr(err)
	}
	return encodePubResults(results)
}

func encodePubResults(results []PubResult) []byte {
	var e enc
	e.byte(0)
	e.uint32(uint32(len(results)))
	for _, r := range results {
		e.uint32(uint32(r.Partition))
		e.uint64(uint64(r.Offset))
	}
	return e.buf
}
