package pubsub

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"privapprox/internal/wal"
)

func sessionMsgs(tag string, n int) []Message {
	msgs := make([]Message, n)
	for i := range msgs {
		msgs[i] = Message{
			Key:   []byte(fmt.Sprintf("%s-key-%03d", tag, i)),
			Value: []byte(fmt.Sprintf("%s-val-%03d", tag, i)),
		}
	}
	return msgs
}

func topicEnd(t *testing.T, pub Transport, topic string) int64 {
	t.Helper()
	parts, err := pub.Partitions(topic)
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for p := 0; p < parts; p++ {
		end, err := pub.EndOffset(topic, p)
		if err != nil {
			t.Fatal(err)
		}
		total += end
	}
	return total
}

func TestSessionDedupExactReplay(t *testing.T) {
	b := NewBroker()
	defer b.Close()
	if err := b.CreateTopic("t", 3); err != nil {
		t.Fatal(err)
	}
	msgs := sessionMsgs("a", 10)
	first, err := b.PublishBatchSession("t", msgs, 7, 1)
	if err != nil {
		t.Fatal(err)
	}
	replay, err := b.PublishBatchSession("t", msgs, 7, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range first {
		if first[i] != replay[i] {
			t.Fatalf("replay result %d = %+v, original %+v", i, replay[i], first[i])
		}
	}
	st := b.Stats()
	if st.MessagesIn != 10 || st.Duplicates != 10 {
		t.Fatalf("MessagesIn=%d Duplicates=%d, want 10 and 10", st.MessagesIn, st.Duplicates)
	}
	if end := topicEnd(t, b, "t"); end != 10 {
		t.Fatalf("topic holds %d records, want 10", end)
	}
	// A newer sequence appends; an older one is still deduplicated.
	if _, err := b.PublishBatchSession("t", sessionMsgs("b", 5), 7, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := b.PublishBatchSession("t", msgs, 7, 1); err != nil {
		t.Fatal(err)
	}
	if end := topicEnd(t, b, "t"); end != 15 {
		t.Fatalf("topic holds %d records, want 15", end)
	}
	// Distinct producers never collide.
	if _, err := b.PublishBatchSession("t", msgs, 8, 1); err != nil {
		t.Fatal(err)
	}
	if end := topicEnd(t, b, "t"); end != 25 {
		t.Fatalf("topic holds %d records after second producer, want 25", end)
	}
}

func TestSessionRejectsKeylessAndZeroPID(t *testing.T) {
	b := NewBroker()
	defer b.Close()
	if err := b.CreateTopic("t", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := b.PublishBatchSession("t", []Message{{Value: []byte("v")}}, 7, 1); !errors.Is(err, ErrWire) {
		t.Fatalf("keyless session batch: %v, want ErrWire", err)
	}
	if _, err := b.PublishBatchSession("t", sessionMsgs("a", 1), 0, 1); !errors.Is(err, ErrWire) {
		t.Fatalf("pid 0: %v, want ErrWire", err)
	}
	cols := Columns{Count: 1, KeyLen: 2, ValLen: 2, Keys: []byte("ab"), Vals: []byte("cd")}
	if _, err := b.PublishColumnsSession("t", cols, 0, 1); !errors.Is(err, ErrWire) {
		t.Fatalf("columnar pid 0: %v, want ErrWire", err)
	}
}

func TestSessionColumnsDedup(t *testing.T) {
	b := NewBroker()
	defer b.Close()
	if err := b.CreateTopic("t", 2); err != nil {
		t.Fatal(err)
	}
	cols := Columns{
		Count:  4,
		KeyLen: 4,
		ValLen: 3,
		Keys:   []byte("aaaabbbbccccdddd"),
		Vals:   []byte("v00v11v22v33"),
	}
	if _, err := b.PublishColumnsSession("t", cols, 5, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := b.PublishColumnsSession("t", cols, 5, 1); err != nil {
		t.Fatal(err)
	}
	st := b.Stats()
	if st.MessagesIn != 4 || st.Duplicates != 4 {
		t.Fatalf("MessagesIn=%d Duplicates=%d, want 4 and 4", st.MessagesIn, st.Duplicates)
	}
	if end := topicEnd(t, b, "t"); end != 4 {
		t.Fatalf("topic holds %d records, want 4", end)
	}
}

// TestSessionDedupSurvivesRestart pins the WAL half of idempotence: the
// per-partition (producer, sequence) slots are journaled with the
// records, so a broker restarted from its journal still recognizes a
// replay of a pre-crash batch.
func TestSessionDedupSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	b, err := OpenBroker(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.CreateTopic("t", 3); err != nil {
		t.Fatal(err)
	}
	batches := [][]Message{sessionMsgs("a", 6), sessionMsgs("b", 6), sessionMsgs("c", 6)}
	for i, msgs := range batches {
		if _, err := b.PublishBatchSession("t", msgs, 9, uint64(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	cols := Columns{Count: 2, KeyLen: 4, ValLen: 2, Keys: []byte("colAcolB"), Vals: []byte("x0x1")}
	if _, err := b.PublishColumnsSession("t", cols, 9, 4); err != nil {
		t.Fatal(err)
	}
	endBefore := topicEnd(t, b, "t")
	b.Close()

	b2, err := OpenBroker(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer b2.Close()
	if end := topicEnd(t, b2, "t"); end != endBefore {
		t.Fatalf("replayed topic holds %d records, want %d", end, endBefore)
	}
	// Replays of every pre-restart sequence must dedup against the
	// journal-restored slots.
	for i, msgs := range batches {
		if _, err := b2.PublishBatchSession("t", msgs, 9, uint64(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := b2.PublishColumnsSession("t", cols, 9, 4); err != nil {
		t.Fatal(err)
	}
	if end := topicEnd(t, b2, "t"); end != endBefore {
		t.Fatalf("replays appended: topic holds %d records, want %d", topicEnd(t, b2, "t"), endBefore)
	}
	if st := b2.Stats(); st.Duplicates != int64(6*len(batches))+2 {
		t.Fatalf("Duplicates = %d, want %d", st.Duplicates, 6*len(batches)+2)
	}
	// A fresh sequence still appends after the restart.
	if _, err := b2.PublishBatchSession("t", sessionMsgs("d", 3), 9, 5); err != nil {
		t.Fatal(err)
	}
	if end := topicEnd(t, b2, "t"); end != endBefore+3 {
		t.Fatalf("new sequence: topic holds %d records, want %d", end, endBefore+3)
	}
}

// TestPlainJournalUntouchedBySessions: records published without a
// session keep the v1 journal framing — a pid-0 publish is byte-for-
// byte what a pre-session broker wrote, so old journals replay and
// mixed-version fleets interoperate.
func TestPlainJournalUntouchedBySessions(t *testing.T) {
	dir := t.TempDir()
	b, err := OpenBroker(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.PublishBatch("t", sessionMsgs("plain", 4)); err == nil {
		t.Fatal("publish to missing topic succeeded")
	}
	if err := b.CreateTopic("t", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := b.PublishBatch("t", sessionMsgs("plain", 4)); err != nil {
		t.Fatal(err)
	}
	b.Close()
	b2, err := OpenBroker(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer b2.Close()
	recs, err := b2.Fetch("t", 0, 0, 10)
	if err != nil || len(recs) != 4 {
		t.Fatalf("Fetch after replay = %d recs, %v", len(recs), err)
	}
}

func TestSessionOverTCP(t *testing.T) {
	b, _, cli := startServer(t)
	if err := cli.CreateTopic("t", 2); err != nil {
		t.Fatal(err)
	}
	msgs := sessionMsgs("tcp", 8)
	if _, err := cli.PublishBatchSession("t", msgs, 11, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := cli.PublishBatchSession("t", msgs, 11, 1); err != nil {
		t.Fatal(err)
	}
	cols := Columns{Count: 2, KeyLen: 4, ValLen: 2, Keys: []byte("colAcolB"), Vals: []byte("x0x1")}
	if _, err := cli.PublishColumnsSession("t", cols, 11, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := cli.PublishColumnsSession("t", cols, 11, 2); err != nil {
		t.Fatal(err)
	}
	st := b.Stats()
	if st.MessagesIn != 10 || st.Duplicates != 10 {
		t.Fatalf("MessagesIn=%d Duplicates=%d, want 10 and 10", st.MessagesIn, st.Duplicates)
	}
}

// TestSessionLegacyServer: a pre-session server rejects the session
// opcodes; the client caches the verdict and reports ErrNoSession, and
// a Producer on top downgrades to plain publishes.
func TestSessionLegacyServer(t *testing.T) {
	b := NewBroker()
	t.Cleanup(b.Close)
	srv, err := Serve(b, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	srv.legacyV1 = true
	cli, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cli.Close() })
	if err := cli.CreateTopic("t", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := cli.PublishBatchSession("t", sessionMsgs("x", 2), 3, 1); !errors.Is(err, ErrNoSession) {
		t.Fatalf("session publish against legacy server: %v, want ErrNoSession", err)
	}
	prod := NewProducer(cli, RetryPolicy{Attempts: 3, Backoff: time.Microsecond})
	if err := prod.PublishBatch("t", sessionMsgs("y", 4)); err != nil {
		t.Fatalf("producer against legacy server: %v", err)
	}
	if end := topicEnd(t, cli, "t"); end != 4 {
		t.Fatalf("topic holds %d records, want 4", end)
	}
}

// flakySession wraps a broker and fails the first failures session
// publishes after the broker applied them — the ambiguous ack-loss
// shape the producer must retry through.
type flakySession struct {
	*Broker
	failures int
}

func (f *flakySession) PublishBatchSession(topic string, msgs []Message, pid, seq uint64) ([]PubResult, error) {
	res, err := f.Broker.PublishBatchSession(topic, msgs, pid, seq)
	if err != nil {
		return nil, err
	}
	if f.failures > 0 {
		f.failures--
		return nil, fmt.Errorf("%w: flaky test transport", ErrAmbiguous)
	}
	return res, nil
}

func (f *flakySession) PublishColumnsSession(topic string, cols Columns, pid, seq uint64) ([]PubResult, error) {
	return f.Broker.PublishColumnsSession(topic, cols, pid, seq)
}

func TestProducerRetriesAmbiguousExactlyOnce(t *testing.T) {
	b := NewBroker()
	defer b.Close()
	if err := b.CreateTopic("t", 2); err != nil {
		t.Fatal(err)
	}
	ft := &flakySession{Broker: b, failures: 2}
	prod := NewProducer(ft, RetryPolicy{Attempts: 5, Backoff: time.Microsecond})
	if err := prod.PublishBatch("t", sessionMsgs("r", 6)); err != nil {
		t.Fatalf("publish through flaky transport: %v", err)
	}
	st := b.Stats()
	if st.MessagesIn != 6 {
		t.Fatalf("MessagesIn = %d, want 6 (exactly-once effect)", st.MessagesIn)
	}
	if st.Duplicates != 12 {
		t.Fatalf("Duplicates = %d, want 12 (two deduplicated retries)", st.Duplicates)
	}
	// Attempts exhausted before the transport heals → the error surfaces.
	ft.failures = 5
	prod2 := NewProducer(ft, RetryPolicy{Attempts: 2, Backoff: time.Microsecond})
	if err := prod2.PublishBatch("t", sessionMsgs("s", 2)); !errors.Is(err, ErrAmbiguous) {
		t.Fatalf("exhausted retries: %v, want ErrAmbiguous", err)
	}
}

func TestProducerSequencesPerTopic(t *testing.T) {
	b := NewBroker()
	defer b.Close()
	for _, topic := range []string{"t1", "t2"} {
		if err := b.CreateTopic(topic, 1); err != nil {
			t.Fatal(err)
		}
	}
	prod := NewProducer(b, RetryPolicy{})
	if prod.ID() == 0 {
		t.Fatal("producer ID is zero")
	}
	for i := 0; i < 3; i++ {
		if err := prod.PublishBatch("t1", sessionMsgs(fmt.Sprintf("a%d", i), 2)); err != nil {
			t.Fatal(err)
		}
		if err := prod.PublishBatch("t2", sessionMsgs(fmt.Sprintf("b%d", i), 2)); err != nil {
			t.Fatal(err)
		}
	}
	if st := b.Stats(); st.MessagesIn != 12 || st.Duplicates != 0 {
		t.Fatalf("MessagesIn=%d Duplicates=%d, want 12 and 0", st.MessagesIn, st.Duplicates)
	}
}
