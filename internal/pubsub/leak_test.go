package pubsub

import (
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"
)

// TestMain adds a package-wide goroutine-leak gate: after every test
// has run (and its Cleanup closed its servers and clients), no
// transport goroutine — connection read loops, server accept/serve
// loops — may still be alive. A leak here means some Close path leaves
// a goroutine behind, which long-lived deployments would accumulate.
func TestMain(m *testing.M) {
	code := m.Run()
	if code == 0 {
		if leaked := waitNoTransportGoroutines(3 * time.Second); leaked != "" {
			fmt.Fprintf(os.Stderr, "transport goroutine leak after pubsub tests:\n\n%s\n", leaked)
			code = 1
		}
	}
	os.Exit(code)
}

// transportFuncs are the goroutine entry points Close must reap.
var transportFuncs = []string{
	"pubsub.(*clientConn).readLoop",
	"pubsub.(*Server).acceptLoop",
	"pubsub.(*Server).serveConn",
}

// waitNoTransportGoroutines polls for lingering transport goroutines,
// tolerating the short teardown window, and returns their stacks if any
// survive the grace period.
func waitNoTransportGoroutines(grace time.Duration) string {
	deadline := time.Now().Add(grace)
	for {
		leaked := transportGoroutines()
		if len(leaked) == 0 {
			return ""
		}
		if time.Now().After(deadline) {
			return strings.Join(leaked, "\n\n")
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func transportGoroutines() []string {
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	var leaked []string
	for _, g := range strings.Split(string(buf[:n]), "\n\n") {
		for _, fn := range transportFuncs {
			if strings.Contains(g, fn) {
				leaked = append(leaked, g)
				break
			}
		}
	}
	return leaked
}
