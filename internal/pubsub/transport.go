package pubsub

import (
	"fmt"
	"time"
)

// Message is one record to publish, the unit of the batched publish
// path: a client flushes an epoch's worth of shares to a proxy as one
// []Message in a single broker call (and, over TCP, a single frame).
type Message struct {
	Key   []byte
	Value []byte
}

// PubResult reports where one published message landed.
type PubResult struct {
	Partition int
	Offset    int64
}

// Transport is the broker surface the rest of the system builds on.
// Both the in-process *Broker and the TCP *Client implement it, so
// proxies and the aggregator's consumers run unchanged over either
// backend — the in-process pipeline and the networked Fig. 3 deployment
// are the same code with a different Transport plugged in.
type Transport interface {
	// CreateTopic registers a topic with the given partition count.
	CreateTopic(topic string, partitions int) error
	// Partitions returns a topic's partition count.
	Partitions(topic string) (int, error)
	// Publish appends one record; a non-nil key selects the partition
	// by hash, a nil key round-robins.
	Publish(topic string, key, value []byte) (int, int64, error)
	// PublishBatch appends a batch of records in one call, returning
	// one PubResult per message in input order.
	PublishBatch(topic string, msgs []Message) ([]PubResult, error)
	// FetchWait reads up to max records from a partition starting at
	// offset. wait <= 0 returns immediately with whatever is available;
	// wait > 0 blocks until at least one record arrives or the wait
	// elapses (returning an empty slice on timeout).
	FetchWait(topic string, partition int, offset int64, max int, wait time.Duration) ([]Record, error)
	// EndOffset returns the next offset to be written in a partition.
	EndOffset(topic string, partition int) (int64, error)
	// CommitOffset durably records a consumer group's next-read offset.
	CommitOffset(group, topic string, partition int, offset int64) error
	// CommittedOffset returns a group's committed offset, 0 when none.
	CommittedOffset(group, topic string, partition int) (int64, error)
}

// Columns is the columnar form of a publish batch: Count fixed-stride
// records laid out as two contiguous lanes, record i's key at
// Keys[i*KeyLen:(i+1)*KeyLen] and its value at Vals[i*ValLen:...]. It
// is the shape wire v2 (opPublishBatchV2) carries in one frame — one
// header plus two lane copies, never re-sliced per message — and the
// shape xorcrypt's batch split produces. The fixed stride is a
// same-query constraint by construction: batches mixing message sizes
// cannot be expressed and are rejected before they reach the wire.
//
// The lanes are borrowed, not taken over: a publisher fully consumes
// (copies or encodes) both lanes before PublishColumns returns, so the
// caller may reuse them immediately — the same ownership rule as
// Message keys/values (DESIGN.md §6, §10).
type Columns struct {
	Count  int
	KeyLen int
	ValLen int
	Keys   []byte
	Vals   []byte
}

// Validate checks the lane geometry.
func (c Columns) Validate() error {
	if c.Count < 0 {
		return fmt.Errorf("%w: %d records", ErrWire, c.Count)
	}
	if c.Count == 0 {
		return nil
	}
	if c.KeyLen <= 0 || c.ValLen <= 0 {
		return fmt.Errorf("%w: key stride %d, value stride %d", ErrWire, c.KeyLen, c.ValLen)
	}
	if len(c.Keys) != c.Count*c.KeyLen {
		return fmt.Errorf("%w: %d-byte key lane for %d×%d", ErrWire, len(c.Keys), c.Count, c.KeyLen)
	}
	if len(c.Vals) != c.Count*c.ValLen {
		return fmt.Errorf("%w: %d-byte value lane for %d×%d", ErrWire, len(c.Vals), c.Count, c.ValLen)
	}
	return nil
}

// Key returns record i's key as a view into the key lane.
func (c Columns) Key(i int) []byte { return c.Keys[i*c.KeyLen : (i+1)*c.KeyLen : (i+1)*c.KeyLen] }

// Val returns record i's value as a view into the value lane.
func (c Columns) Val(i int) []byte { return c.Vals[i*c.ValLen : (i+1)*c.ValLen : (i+1)*c.ValLen] }

// ColumnPublisher is the optional columnar publish surface. Both the
// in-process *Broker and the TCP *Client implement it; the client
// negotiates per connection pool and transparently falls back to the
// row-oriented PublishBatch against a v1 server, so callers may always
// prefer the columnar call when they hold lane-shaped data.
type ColumnPublisher interface {
	PublishColumns(topic string, cols Columns) ([]PubResult, error)
	PublishColumnsWait(topic string, cols Columns, timeout time.Duration) ([]PubResult, error)
}

// WaitPublisher is the optional blocking-publish surface bounded
// (backpressured) topics call for: a publisher that must not drop on
// transient ErrPartitionFull uses the Wait variants, which retry until
// the record lands or the timeout passes. Both the in-process *Broker
// and the TCP *Client implement it.
type WaitPublisher interface {
	PublishWait(topic string, key, value []byte, timeout time.Duration) (int, int64, error)
	PublishBatchWait(topic string, msgs []Message, timeout time.Duration) ([]PubResult, error)
}

// SessionPublisher is the idempotent (producer-session) publish
// surface: batches tagged with a producer ID and a per-topic sequence
// number, deduplicated per partition by the broker so an at-least-once
// retry has exactly-once effect. Both the in-process *Broker and the
// TCP *Client implement it; the client negotiates per pool and returns
// ErrNoSession against a pre-session server. Callers normally go
// through Producer, which owns ID and sequence management plus the
// retry policy.
type SessionPublisher interface {
	PublishBatchSession(topic string, msgs []Message, pid, seq uint64) ([]PubResult, error)
	PublishColumnsSession(topic string, cols Columns, pid, seq uint64) ([]PubResult, error)
}

var (
	_ Transport        = (*Broker)(nil)
	_ Transport        = (*Client)(nil)
	_ WaitPublisher    = (*Broker)(nil)
	_ WaitPublisher    = (*Client)(nil)
	_ ColumnPublisher  = (*Broker)(nil)
	_ ColumnPublisher  = (*Client)(nil)
	_ SessionPublisher = (*Broker)(nil)
	_ SessionPublisher = (*Client)(nil)
)
