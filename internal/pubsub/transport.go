package pubsub

import "time"

// Message is one record to publish, the unit of the batched publish
// path: a client flushes an epoch's worth of shares to a proxy as one
// []Message in a single broker call (and, over TCP, a single frame).
type Message struct {
	Key   []byte
	Value []byte
}

// PubResult reports where one published message landed.
type PubResult struct {
	Partition int
	Offset    int64
}

// Transport is the broker surface the rest of the system builds on.
// Both the in-process *Broker and the TCP *Client implement it, so
// proxies and the aggregator's consumers run unchanged over either
// backend — the in-process pipeline and the networked Fig. 3 deployment
// are the same code with a different Transport plugged in.
type Transport interface {
	// CreateTopic registers a topic with the given partition count.
	CreateTopic(topic string, partitions int) error
	// Partitions returns a topic's partition count.
	Partitions(topic string) (int, error)
	// Publish appends one record; a non-nil key selects the partition
	// by hash, a nil key round-robins.
	Publish(topic string, key, value []byte) (int, int64, error)
	// PublishBatch appends a batch of records in one call, returning
	// one PubResult per message in input order.
	PublishBatch(topic string, msgs []Message) ([]PubResult, error)
	// FetchWait reads up to max records from a partition starting at
	// offset. wait <= 0 returns immediately with whatever is available;
	// wait > 0 blocks until at least one record arrives or the wait
	// elapses (returning an empty slice on timeout).
	FetchWait(topic string, partition int, offset int64, max int, wait time.Duration) ([]Record, error)
	// EndOffset returns the next offset to be written in a partition.
	EndOffset(topic string, partition int) (int64, error)
	// CommitOffset durably records a consumer group's next-read offset.
	CommitOffset(group, topic string, partition int, offset int64) error
	// CommittedOffset returns a group's committed offset, 0 when none.
	CommittedOffset(group, topic string, partition int) (int64, error)
}

// WaitPublisher is the optional blocking-publish surface bounded
// (backpressured) topics call for: a publisher that must not drop on
// transient ErrPartitionFull uses the Wait variants, which retry until
// the record lands or the timeout passes. Both the in-process *Broker
// and the TCP *Client implement it.
type WaitPublisher interface {
	PublishWait(topic string, key, value []byte, timeout time.Duration) (int, int64, error)
	PublishBatchWait(topic string, msgs []Message, timeout time.Duration) ([]PubResult, error)
}

var (
	_ Transport     = (*Broker)(nil)
	_ Transport     = (*Client)(nil)
	_ WaitPublisher = (*Broker)(nil)
	_ WaitPublisher = (*Client)(nil)
)
