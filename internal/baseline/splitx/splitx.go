// Package splitx reproduces the latency comparison baseline of the
// paper's Fig. 6: SplitX (Chen et al., SIGCOMM 2013), a
// privacy-preserving analytics system whose proxies must *synchronize*
// to process answers — adding noise, exchanging and intersecting answer
// batches, and shuffling — whereas PrivApprox proxies only forward.
//
// Both pipelines run on the same pub/sub substrate so the measured gap
// reflects the architectural difference, not implementation bias: a
// PrivApprox proxy performs one publish+consume per answer; SplitX
// proxies additionally exchange every answer with each other (a second
// and third transmission), intersect the two proxies' message-ID sets,
// add calibrated noise, and shuffle the batch before forwarding, with a
// synchronization barrier between phases.
package splitx

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"privapprox/internal/pubsub"
)

// Components breaks a SplitX batch latency into the phases Fig. 6
// plots.
type Components struct {
	Transmission time.Duration
	Computation  time.Duration // noise addition + intersection
	Shuffling    time.Duration
	Total        time.Duration
}

// answerValue synthesizes an n-byte payload.
func answerValue(bytes int, i int) []byte {
	v := make([]byte, bytes)
	for j := range v {
		v[j] = byte(i + j)
	}
	return v
}

func key(i int) []byte {
	return []byte(fmt.Sprintf("mid-%010d", i))
}

// RunPrivApprox measures the proxy-stage latency of n answers of the
// given size through a PrivApprox proxy: publish, then consume —
// nothing else happens at the proxy.
func RunPrivApprox(n, answerBytes int) (time.Duration, error) {
	broker := pubsub.NewBroker()
	if err := broker.CreateTopic("answer", 1); err != nil {
		return 0, err
	}
	start := time.Now()
	for i := 0; i < n; i++ {
		if _, _, err := broker.Publish("answer", key(i), answerValue(answerBytes, i)); err != nil {
			return 0, err
		}
	}
	consumed := 0
	for consumed < n {
		recs, err := broker.Fetch("answer", 0, int64(consumed), 4096)
		if err != nil {
			return 0, err
		}
		consumed += len(recs)
	}
	return time.Since(start), nil
}

// RunSplitX measures the proxy-stage latency of n answers through the
// SplitX pipeline on the same substrate. Phases are sequential — the
// synchronization the paper's §6 #VIII blames for SplitX's latency.
func RunSplitX(n, answerBytes int, rng *rand.Rand) (Components, error) {
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}
	var comp Components

	// Phase 1 — transmission: clients send answer shares to two proxies.
	brokerA := pubsub.NewBroker()
	brokerB := pubsub.NewBroker()
	for _, b := range []*pubsub.Broker{brokerA, brokerB} {
		if err := b.CreateTopic("in", 1); err != nil {
			return comp, err
		}
		if err := b.CreateTopic("exchange", 1); err != nil {
			return comp, err
		}
	}
	start := time.Now()
	for i := 0; i < n; i++ {
		v := answerValue(answerBytes, i)
		if _, _, err := brokerA.Publish("in", key(i), v); err != nil {
			return comp, err
		}
		if _, _, err := brokerB.Publish("in", key(i), v); err != nil {
			return comp, err
		}
	}
	batchA, err := fetchAll(brokerA, "in", n)
	if err != nil {
		return comp, err
	}
	batchB, err := fetchAll(brokerB, "in", n)
	if err != nil {
		return comp, err
	}
	comp.Transmission = time.Since(start)

	// Phase 2 — computation: the proxies exchange their batches (another
	// full transmission each), intersect the message-ID sets, and add
	// noise to the counts. This is where SplitX synchronizes.
	start = time.Now()
	for _, rec := range batchA {
		if _, _, err := brokerB.Publish("exchange", rec.Key, rec.Value); err != nil {
			return comp, err
		}
	}
	for _, rec := range batchB {
		if _, _, err := brokerA.Publish("exchange", rec.Key, rec.Value); err != nil {
			return comp, err
		}
	}
	exchA, err := fetchAll(brokerA, "exchange", n)
	if err != nil {
		return comp, err
	}
	if _, err := fetchAll(brokerB, "exchange", n); err != nil {
		return comp, err
	}
	// Intersection of the two ID sets.
	seen := make(map[string]struct{}, len(batchA))
	for _, rec := range batchA {
		seen[string(rec.Key)] = struct{}{}
	}
	matched := 0
	for _, rec := range exchA {
		if _, ok := seen[string(rec.Key)]; ok {
			matched++
		}
	}
	if matched != n {
		return comp, fmt.Errorf("splitx: intersection lost answers: %d of %d", matched, n)
	}
	// Calibrated Laplace noise per answer slot.
	noise := 0.0
	for i := 0; i < n; i++ {
		noise += laplace(rng, 1)
	}
	_ = noise
	comp.Computation = time.Since(start)

	// Phase 3 — shuffling: Fisher–Yates over the batch, then forward to
	// the aggregator.
	start = time.Now()
	rng.Shuffle(len(batchA), func(i, j int) { batchA[i], batchA[j] = batchA[j], batchA[i] })
	out := pubsub.NewBroker()
	if err := out.CreateTopic("agg", 1); err != nil {
		return comp, err
	}
	for _, rec := range batchA {
		if _, _, err := out.Publish("agg", rec.Key, rec.Value); err != nil {
			return comp, err
		}
	}
	if _, err := fetchAll(out, "agg", n); err != nil {
		return comp, err
	}
	comp.Shuffling = time.Since(start)

	comp.Total = comp.Transmission + comp.Computation + comp.Shuffling
	return comp, nil
}

func fetchAll(b *pubsub.Broker, topic string, n int) ([]pubsub.Record, error) {
	out := make([]pubsub.Record, 0, n)
	for len(out) < n {
		recs, err := b.Fetch(topic, 0, int64(len(out)), 8192)
		if err != nil {
			return nil, err
		}
		if len(recs) == 0 {
			return nil, fmt.Errorf("splitx: missing records: %d of %d", len(out), n)
		}
		out = append(out, recs...)
	}
	return out, nil
}

// laplace draws Laplace(0, scale) noise — SplitX's per-count noise.
func laplace(rng *rand.Rand, scale float64) float64 {
	u := rng.Float64() - 0.5
	return -scale * sign(u) * math.Log(1-2*math.Abs(u))
}

func sign(x float64) float64 {
	if x < 0 {
		return -1
	}
	return 1
}

// Extrapolate scales a measured latency at nMeasured answers linearly
// to nTarget answers — how the Fig. 6 harness reaches 10⁸ clients
// without running 10⁸ messages (latency is linear in n for both
// systems; measured points confirm it over the feasible range).
func Extrapolate(measured time.Duration, nMeasured, nTarget int) time.Duration {
	if nMeasured <= 0 {
		return 0
	}
	return time.Duration(float64(measured) * float64(nTarget) / float64(nMeasured))
}
