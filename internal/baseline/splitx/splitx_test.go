package splitx

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

func TestRunPrivApproxCompletes(t *testing.T) {
	d, err := RunPrivApprox(500, 32)
	if err != nil {
		t.Fatal(err)
	}
	if d <= 0 {
		t.Errorf("latency = %v", d)
	}
}

func TestRunSplitXComponents(t *testing.T) {
	comp, err := RunSplitX(500, 32, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if comp.Transmission <= 0 || comp.Computation <= 0 || comp.Shuffling <= 0 {
		t.Errorf("components = %+v", comp)
	}
	if comp.Total != comp.Transmission+comp.Computation+comp.Shuffling {
		t.Errorf("total %v != sum of components", comp.Total)
	}
}

// The Fig. 6 shape: SplitX's synchronized pipeline costs a multiple of
// PrivApprox's forward-only proxies on the same substrate.
func TestSplitXSlowerThanPrivApprox(t *testing.T) {
	const n = 3000
	// Median of 3 runs to de-noise CI machines.
	ratio := func() float64 {
		pa, err := RunPrivApprox(n, 32)
		if err != nil {
			t.Fatal(err)
		}
		sx, err := RunSplitX(n, 32, rand.New(rand.NewSource(2)))
		if err != nil {
			t.Fatal(err)
		}
		return float64(sx.Total) / float64(pa)
	}
	rs := []float64{ratio(), ratio(), ratio()}
	sortFloats(rs)
	if rs[1] < 1.5 {
		t.Errorf("SplitX/PrivApprox latency ratio = %v, want ≥ 1.5", rs[1])
	}
}

func sortFloats(xs []float64) {
	for i := range xs {
		for j := i + 1; j < len(xs); j++ {
			if xs[j] < xs[i] {
				xs[i], xs[j] = xs[j], xs[i]
			}
		}
	}
}

func TestLatencyRoughlyLinear(t *testing.T) {
	small, err := RunPrivApprox(1000, 32)
	if err != nil {
		t.Fatal(err)
	}
	big, err := RunPrivApprox(4000, 32)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(big) / float64(small)
	// Linear extrapolation is what the Fig. 6 harness relies on; allow a
	// generous band around 4×.
	if ratio < 1.5 || ratio > 12 {
		t.Errorf("4× answers took %v× time; extrapolation assumption broken", ratio)
	}
}

func TestExtrapolate(t *testing.T) {
	if got := Extrapolate(time.Second, 1000, 4000); got != 4*time.Second {
		t.Errorf("Extrapolate = %v", got)
	}
	if got := Extrapolate(time.Second, 0, 100); got != 0 {
		t.Errorf("Extrapolate with zero base = %v", got)
	}
}

func TestLaplaceCentered(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += laplace(rng, 1)
	}
	if math.Abs(sum/n) > 0.05 {
		t.Errorf("laplace mean = %v, want ≈0", sum/n)
	}
}
