// Package rappor implements Google's RAPPOR mechanism (Erlingsson et
// al., CCS 2014) — the privacy comparison baseline of the paper's
// Fig. 5c. It provides the full encoder (Bloom filter, permanent
// randomized response, instantaneous randomized response) plus the ε
// accounting used for the comparison, where the paper maps PrivApprox
// parameters p = 1−f, q = 0.5, h = 1 so both systems share the same
// randomized response process.
package rappor

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
)

// ErrParams reports invalid RAPPOR parameters.
var ErrParams = errors.New("rappor: invalid parameters")

// Params configures an encoder.
type Params struct {
	K int     // Bloom filter size in bits
	H int     // hash functions per value
	F float64 // permanent randomized response noise fraction
	P float64 // instantaneous: Pr[report 1 | permanent bit 0]
	Q float64 // instantaneous: Pr[report 1 | permanent bit 1]
}

// Validate checks ranges.
func (p Params) Validate() error {
	if p.K <= 0 || p.H <= 0 || p.H > p.K {
		return fmt.Errorf("%w: k=%d h=%d", ErrParams, p.K, p.H)
	}
	if p.F < 0 || p.F > 1 || p.P < 0 || p.P > 1 || p.Q < 0 || p.Q > 1 {
		return fmt.Errorf("%w: f=%v p=%v q=%v", ErrParams, p.F, p.P, p.Q)
	}
	return nil
}

// Encoder produces RAPPOR reports for one client. The permanent
// randomized response is memoized per value, as the original design
// requires (a client's noisy Bloom bits for a value never change).
type Encoder struct {
	params    Params
	rng       *rand.Rand
	permanent map[string][]byte
}

// NewEncoder validates parameters and builds an encoder.
func NewEncoder(params Params, rng *rand.Rand) (*Encoder, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if rng == nil {
		rng = rand.New(rand.NewSource(rand.Int63()))
	}
	return &Encoder{params: params, rng: rng, permanent: make(map[string][]byte)}, nil
}

// BloomBits returns the h bit positions for a value.
func (e *Encoder) BloomBits(value string) []int {
	out := make([]int, e.params.H)
	for i := 0; i < e.params.H; i++ {
		h := fnv.New64a()
		fmt.Fprintf(h, "%d|%s", i, value)
		out[i] = int(h.Sum64() % uint64(e.params.K))
	}
	return out
}

// Encode produces one instantaneous report for a value: Bloom encode,
// apply the (memoized) permanent randomized response, then the
// instantaneous randomized response. The report is a packed bit string
// of K bits.
func (e *Encoder) Encode(value string) []byte {
	perm := e.permanentBits(value)
	k := e.params.K
	report := make([]byte, (k+7)/8)
	for i := 0; i < k; i++ {
		bit := perm[i/8]&(1<<(i%8)) != 0
		var prob float64
		if bit {
			prob = e.params.Q
		} else {
			prob = e.params.P
		}
		if e.rng.Float64() < prob {
			report[i/8] |= 1 << (i % 8)
		}
	}
	return report
}

// permanentBits memoizes the permanent randomized response per value.
func (e *Encoder) permanentBits(value string) []byte {
	if b, ok := e.permanent[value]; ok {
		return b
	}
	k := e.params.K
	truth := make([]byte, (k+7)/8)
	for _, pos := range e.BloomBits(value) {
		truth[pos/8] |= 1 << (pos % 8)
	}
	perm := make([]byte, (k+7)/8)
	f := e.params.F
	for i := 0; i < k; i++ {
		r := e.rng.Float64()
		var bit bool
		switch {
		case r < f/2:
			bit = true
		case r < f:
			bit = false
		default:
			bit = truth[i/8]&(1<<(i%8)) != 0
		}
		if bit {
			perm[i/8] |= 1 << (i % 8)
		}
	}
	e.permanent[value] = perm
	return perm
}

// EffectiveRates returns (p*, q*): the end-to-end probabilities that a
// reported bit is 1 given the true Bloom bit is 0 or 1, folding the
// permanent and instantaneous stages together.
func EffectiveRates(params Params) (pStar, qStar float64) {
	half := params.F / 2
	pStar = half*(params.P+params.Q) + (1-params.F)*params.P
	qStar = half*(params.P+params.Q) + (1-params.F)*params.Q
	return pStar, qStar
}

// EstimateTrueBitCount inverts the mechanism for one bit position: given
// observedOnes among n reports, it estimates how many clients truly had
// the bit set.
func EstimateTrueBitCount(params Params, observedOnes, n int) (float64, error) {
	if err := params.Validate(); err != nil {
		return 0, err
	}
	if n <= 0 || observedOnes < 0 || observedOnes > n {
		return 0, fmt.Errorf("%w: ones=%d n=%d", ErrParams, observedOnes, n)
	}
	pStar, qStar := EffectiveRates(params)
	if qStar == pStar {
		return 0, fmt.Errorf("%w: degenerate q*=p*", ErrParams)
	}
	return (float64(observedOnes) - pStar*float64(n)) / (qStar - pStar), nil
}

// EpsilonOneTime is the differential privacy level of RAPPOR's
// randomized response with parameter f for a single report with h hash
// functions:
//
//	ε = h · ln((1 − f/2) / (f/2))
//
// This is the quantity Fig. 5c compares against: with h = 1 it equals
// PrivApprox's ε_dp under the paper's mapping p = 1−f, q = 0.5 at s = 1.
func EpsilonOneTime(f float64, h int) (float64, error) {
	if f <= 0 || f >= 2 || h <= 0 {
		return 0, fmt.Errorf("%w: f=%v h=%d", ErrParams, f, h)
	}
	return float64(h) * math.Log((1-f/2)/(f/2)), nil
}

// EpsilonPermanent is the longitudinal bound of the RAPPOR paper for
// the permanent randomized response: ε∞ = 2h · ln((1−f/2)/(f/2)).
func EpsilonPermanent(f float64, h int) (float64, error) {
	eps, err := EpsilonOneTime(f, h)
	if err != nil {
		return 0, err
	}
	return 2 * eps, nil
}
