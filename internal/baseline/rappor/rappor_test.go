package rappor

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"privapprox/internal/rr"
)

func testParams() Params {
	return Params{K: 32, H: 2, F: 0.5, P: 0.25, Q: 0.75}
}

func TestParamsValidate(t *testing.T) {
	if err := testParams().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Params{
		{K: 0, H: 1},
		{K: 8, H: 0},
		{K: 8, H: 9},
		{K: 8, H: 1, F: -0.1},
		{K: 8, H: 1, F: 0.5, P: 1.5},
		{K: 8, H: 1, F: 0.5, P: 0.5, Q: -1},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestBloomBitsDeterministic(t *testing.T) {
	e, err := NewEncoder(testParams(), rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	a := e.BloomBits("value-x")
	b := e.BloomBits("value-x")
	if len(a) != 2 {
		t.Fatalf("positions = %v", a)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Error("bloom positions not deterministic")
		}
		if a[i] < 0 || a[i] >= 32 {
			t.Errorf("position %d out of range", a[i])
		}
	}
}

func TestPermanentResponseMemoized(t *testing.T) {
	e, err := NewEncoder(testParams(), rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	p1 := e.permanentBits("v")
	p2 := e.permanentBits("v")
	if !bytes.Equal(p1, p2) {
		t.Error("permanent bits must be memoized per value")
	}
}

func TestInstantaneousReportsVary(t *testing.T) {
	e, err := NewEncoder(testParams(), rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	r1 := e.Encode("v")
	different := false
	for i := 0; i < 20; i++ {
		if !bytes.Equal(e.Encode("v"), r1) {
			different = true
			break
		}
	}
	if !different {
		t.Error("instantaneous reports never vary")
	}
}

func TestEstimateTrueBitCountUnbiased(t *testing.T) {
	params := Params{K: 8, H: 1, F: 0.5, P: 0.25, Q: 0.75}
	rng := rand.New(rand.NewSource(4))
	const n = 40000
	const trueOnes = 24000 // 60% of clients have the bit set
	pStar, qStar := EffectiveRates(params)
	ones := 0
	for i := 0; i < n; i++ {
		prob := pStar
		if i < trueOnes {
			prob = qStar
		}
		if rng.Float64() < prob {
			ones++
		}
	}
	est, err := EstimateTrueBitCount(params, ones, n)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est-trueOnes)/trueOnes > 0.05 {
		t.Errorf("estimate = %v, want ≈%v", est, trueOnes)
	}
}

func TestEstimateValidation(t *testing.T) {
	if _, err := EstimateTrueBitCount(testParams(), 5, 0); err == nil {
		t.Error("expected error for n=0")
	}
	degenerate := Params{K: 8, H: 1, F: 1, P: 0.5, Q: 0.5}
	if _, err := EstimateTrueBitCount(degenerate, 1, 2); err == nil {
		t.Error("expected error for q*=p*")
	}
}

func TestEpsilonOneTimeMatchesPaperMapping(t *testing.T) {
	// The Fig. 5c mapping: with p = 1−f, q = 0.5, h = 1, RAPPOR's ε
	// equals PrivApprox's ε_dp.
	for _, f := range []float64{0.25, 0.5, 0.75} {
		rapporEps, err := EpsilonOneTime(f, 1)
		if err != nil {
			t.Fatal(err)
		}
		privEps, err := rr.EpsilonDP(rr.Params{P: 1 - f, Q: 0.5})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(rapporEps-privEps) > 1e-12 {
			t.Errorf("f=%v: RAPPOR ε=%v vs PrivApprox ε_dp=%v", f, rapporEps, privEps)
		}
	}
}

func TestEpsilonPermanentDoubles(t *testing.T) {
	one, err := EpsilonOneTime(0.5, 2)
	if err != nil {
		t.Fatal(err)
	}
	perm, err := EpsilonPermanent(0.5, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(perm-2*one) > 1e-12 {
		t.Errorf("permanent = %v, want 2×%v", perm, one)
	}
	if _, err := EpsilonOneTime(0, 1); err == nil {
		t.Error("expected error for f=0")
	}
	if _, err := EpsilonOneTime(0.5, 0); err == nil {
		t.Error("expected error for h=0")
	}
}

// PrivApprox with sampling is strictly below RAPPOR at every s < 1 and
// meets it at s = 1 — the Fig. 5c curves.
func TestFig5cOrdering(t *testing.T) {
	const f = 0.5
	rapporEps, err := EpsilonOneTime(f, 1)
	if err != nil {
		t.Fatal(err)
	}
	params := rr.Params{P: 1 - f, Q: 0.5}
	for _, s := range []float64{0.1, 0.4, 0.8, 0.99} {
		priv, err := rr.EpsilonDPSampled(s, params)
		if err != nil {
			t.Fatal(err)
		}
		if priv >= rapporEps {
			t.Errorf("s=%v: PrivApprox ε=%v not below RAPPOR ε=%v", s, priv, rapporEps)
		}
	}
	at1, err := rr.EpsilonDPSampled(1, params)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(at1-rapporEps) > 1e-12 {
		t.Errorf("curves must meet at s=1: %v vs %v", at1, rapporEps)
	}
}
