package cryptobench

import (
	"bytes"
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
)

// Small keys keep unit tests fast; the benchmarks use 1024-bit keys as
// in the paper.
const testKeyBits = 256

func testRand() *rand.Rand { return rand.New(rand.NewSource(42)) }

func TestGMRoundTripBits(t *testing.T) {
	key, err := GenerateGMKey(testKeyBits, testRand())
	if err != nil {
		t.Fatal(err)
	}
	for _, bit := range []bool{false, true} {
		c, err := key.EncryptBit(bit, testRand())
		if err != nil {
			t.Fatal(err)
		}
		got, err := key.DecryptBit(c)
		if err != nil {
			t.Fatal(err)
		}
		if got != bit {
			t.Errorf("bit %v decrypted as %v", bit, got)
		}
	}
}

func TestGMRoundTripBitString(t *testing.T) {
	key, err := GenerateGMKey(testKeyBits, testRand())
	if err != nil {
		t.Fatal(err)
	}
	f := func(raw []byte) bool {
		if len(raw) == 0 {
			raw = []byte{0xA5}
		}
		if len(raw) > 8 {
			raw = raw[:8]
		}
		nbits := len(raw) * 8
		cs, err := key.EncryptBits(raw, nbits, testRand())
		if err != nil {
			return false
		}
		got, err := key.DecryptBits(cs)
		if err != nil {
			return false
		}
		return bytes.Equal(got, raw)
	}
	cfg := &quick.Config{MaxCount: 10}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestGMCiphertextsRandomized(t *testing.T) {
	key, err := GenerateGMKey(testKeyBits, testRand())
	if err != nil {
		t.Fatal(err)
	}
	c1, err := key.EncryptBit(true, nil)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := key.EncryptBit(true, nil)
	if err != nil {
		t.Fatal(err)
	}
	if c1.Cmp(c2) == 0 {
		t.Error("GM must be probabilistic")
	}
}

func TestGMHomomorphicXOR(t *testing.T) {
	key, err := GenerateGMKey(testKeyBits, testRand())
	if err != nil {
		t.Fatal(err)
	}
	for _, pair := range [][2]bool{{false, false}, {false, true}, {true, false}, {true, true}} {
		c1, _ := key.EncryptBit(pair[0], testRand())
		c2, _ := key.EncryptBit(pair[1], testRand())
		prod := key.HomomorphicXOR(c1, c2)
		got, err := key.DecryptBit(prod)
		if err != nil {
			t.Fatal(err)
		}
		want := pair[0] != pair[1]
		if got != want {
			t.Errorf("XOR(%v,%v) decrypted as %v", pair[0], pair[1], got)
		}
	}
}

func TestGMValidation(t *testing.T) {
	if _, err := GenerateGMKey(4, testRand()); err == nil {
		t.Error("expected error for tiny key")
	}
	key, _ := GenerateGMKey(testKeyBits, testRand())
	if _, err := key.DecryptBit(nil); err == nil {
		t.Error("expected error for nil ciphertext")
	}
	if _, err := key.DecryptBit(new(big.Int).Add(key.N, bigOne)); err == nil {
		t.Error("expected error for out-of-range ciphertext")
	}
	if _, err := key.EncryptBits([]byte{1}, 100, testRand()); err == nil {
		t.Error("expected error for bit count past buffer")
	}
}

func TestPaillierRoundTrip(t *testing.T) {
	key, err := GeneratePaillierKey(testKeyBits, testRand())
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []int64{0, 1, 42, 255, 65535} {
		c, err := key.Encrypt(big.NewInt(m), testRand())
		if err != nil {
			t.Fatal(err)
		}
		got, err := key.Decrypt(c)
		if err != nil {
			t.Fatal(err)
		}
		if got.Int64() != m {
			t.Errorf("m=%d decrypted as %v", m, got)
		}
	}
}

func TestPaillierHomomorphicAdd(t *testing.T) {
	key, err := GeneratePaillierKey(testKeyBits, testRand())
	if err != nil {
		t.Fatal(err)
	}
	f := func(a, b uint16) bool {
		ca, err := key.Encrypt(big.NewInt(int64(a)), testRand())
		if err != nil {
			return false
		}
		cb, err := key.Encrypt(big.NewInt(int64(b)), testRand())
		if err != nil {
			return false
		}
		sum, err := key.Decrypt(key.HomomorphicAdd(ca, cb))
		if err != nil {
			return false
		}
		return sum.Int64() == int64(a)+int64(b)
	}
	cfg := &quick.Config{MaxCount: 10}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestPaillierValidation(t *testing.T) {
	key, err := GeneratePaillierKey(testKeyBits, testRand())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := key.Encrypt(big.NewInt(-1), testRand()); err == nil {
		t.Error("expected error for negative message")
	}
	if _, err := key.Encrypt(key.N, testRand()); err == nil {
		t.Error("expected error for message ≥ N")
	}
	if _, err := key.Decrypt(nil); err == nil {
		t.Error("expected error for nil ciphertext")
	}
	if _, err := GeneratePaillierKey(4, testRand()); err == nil {
		t.Error("expected error for tiny key")
	}
}

func TestPaillierCiphertextsRandomized(t *testing.T) {
	key, err := GeneratePaillierKey(testKeyBits, testRand())
	if err != nil {
		t.Fatal(err)
	}
	m := big.NewInt(7)
	c1, _ := key.Encrypt(m, nil)
	c2, _ := key.Encrypt(m, nil)
	if c1.Cmp(c2) == 0 {
		t.Error("Paillier must be probabilistic")
	}
}

func TestRSARoundTrip(t *testing.T) {
	c, err := NewRSACipher(1024, nil)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("qid|answer-bits-18-bytes")
	ct, err := c.Encrypt(msg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Decrypt(ct)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Errorf("Decrypt = %q, want %q", got, msg)
	}
	if c.MaxMessageLen() != 128-11 {
		t.Errorf("MaxMessageLen = %d", c.MaxMessageLen())
	}
}

func TestRSAValidation(t *testing.T) {
	if _, err := NewRSACipher(128, nil); err == nil {
		t.Error("expected error for short key")
	}
	c, err := NewRSACipher(1024, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Encrypt(make([]byte, 1000)); err == nil {
		t.Error("expected error for oversized message")
	}
	if _, err := c.Decrypt([]byte("not a ciphertext")); err == nil {
		t.Error("expected error for bogus ciphertext")
	}
}

func TestDeviceProfiles(t *testing.T) {
	ds := Devices()
	if len(ds) != 3 {
		t.Fatalf("Devices = %d, want 3", len(ds))
	}
	if ds[0].Scale >= ds[1].Scale || ds[1].Scale >= ds[2].Scale {
		t.Error("device scales must be ordered phone < laptop < server")
	}
	// 1000 ns/op on the server host = 1e6 ops/sec at scale 1.
	if got := DeviceServer.OpsPerSec(1000); got != 1e6 {
		t.Errorf("OpsPerSec = %v", got)
	}
	if got := DeviceServer.OpsPerSec(0); got != 0 {
		t.Errorf("OpsPerSec(0) = %v, want 0", got)
	}
}
