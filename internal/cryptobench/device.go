package cryptobench

// DeviceProfile models one of the paper's three measurement platforms
// (Table 2, Table 3). We measure on the host we run on and rescale by a
// per-device CPU factor calibrated from the paper's XOR-encryption row
// (phone 15,026 — laptop 943,902 — server 1,351,937 ops/sec). This
// preserves the paper's cross-device *shape* without the actual
// hardware; see DESIGN.md §2.
type DeviceProfile struct {
	Name  string
	Scale float64 // multiplier on host-measured throughput
}

// The three platforms of the paper's Tables 2 and 3, normalized so the
// server equals the measurement host.
var (
	DevicePhone  = DeviceProfile{Name: "Phone", Scale: 15026.0 / 1351937.0}
	DeviceLaptop = DeviceProfile{Name: "Laptop", Scale: 943902.0 / 1351937.0}
	DeviceServer = DeviceProfile{Name: "Server", Scale: 1.0}
)

// Devices lists the profiles in the paper's column order.
func Devices() []DeviceProfile {
	return []DeviceProfile{DevicePhone, DeviceLaptop, DeviceServer}
}

// OpsPerSec converts a host-measured ns/op cost into the profile's
// estimated operations per second.
func (d DeviceProfile) OpsPerSec(nsPerOp float64) float64 {
	if nsPerOp <= 0 {
		return 0
	}
	return 1e9 / nsPerOp * d.Scale
}
