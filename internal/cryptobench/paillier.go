package cryptobench

import (
	"crypto/rand"
	"fmt"
	"io"
	"math/big"
)

// PaillierPublicKey holds the modulus N and its square; g is fixed to
// N+1, the standard efficient choice.
type PaillierPublicKey struct {
	N  *big.Int
	N2 *big.Int
}

// PaillierPrivateKey adds λ = lcm(p−1, q−1) and the precomputed
// μ = (L(g^λ mod N²))⁻¹ mod N.
type PaillierPrivateKey struct {
	PaillierPublicKey
	Lambda *big.Int
	Mu     *big.Int
}

// GeneratePaillierKey creates a Paillier key pair with an n-bit modulus.
func GeneratePaillierKey(bits int, rng io.Reader) (*PaillierPrivateKey, error) {
	if bits < 16 {
		return nil, fmt.Errorf("%w: %d bits", ErrKeySize, bits)
	}
	if rng == nil {
		rng = rand.Reader
	}
	var p, q *big.Int
	var err error
	for {
		p, err = rand.Prime(rng, bits/2)
		if err != nil {
			return nil, fmt.Errorf("cryptobench: prime generation: %w", err)
		}
		q, err = rand.Prime(rng, bits-bits/2)
		if err != nil {
			return nil, fmt.Errorf("cryptobench: prime generation: %w", err)
		}
		if p.Cmp(q) != 0 {
			break
		}
	}
	n := new(big.Int).Mul(p, q)
	n2 := new(big.Int).Mul(n, n)
	pm1 := new(big.Int).Sub(p, bigOne)
	qm1 := new(big.Int).Sub(q, bigOne)
	gcd := new(big.Int).GCD(nil, nil, pm1, qm1)
	lambda := new(big.Int).Mul(pm1, qm1)
	lambda.Div(lambda, gcd)

	priv := &PaillierPrivateKey{
		PaillierPublicKey: PaillierPublicKey{N: n, N2: n2},
		Lambda:            lambda,
	}
	// μ = (L((N+1)^λ mod N²))⁻¹ mod N.
	g := new(big.Int).Add(n, bigOne)
	u := new(big.Int).Exp(g, lambda, n2)
	l := priv.lFunc(u)
	mu := new(big.Int).ModInverse(l, n)
	if mu == nil {
		return nil, fmt.Errorf("cryptobench: degenerate paillier key")
	}
	priv.Mu = mu
	return priv, nil
}

// lFunc is L(u) = (u − 1) / N.
func (priv *PaillierPrivateKey) lFunc(u *big.Int) *big.Int {
	l := new(big.Int).Sub(u, bigOne)
	return l.Div(l, priv.N)
}

// Encrypt encrypts m ∈ [0, N): c = (N+1)^m · r^N mod N². Using g = N+1
// reduces g^m to (1 + m·N) mod N².
func (pub *PaillierPublicKey) Encrypt(m *big.Int, rng io.Reader) (*big.Int, error) {
	if m == nil || m.Sign() < 0 || m.Cmp(pub.N) >= 0 {
		return nil, ErrMessage
	}
	if rng == nil {
		rng = rand.Reader
	}
	r, err := randomCoprime(pub.N, rng)
	if err != nil {
		return nil, err
	}
	// g^m = 1 + mN mod N².
	gm := new(big.Int).Mul(m, pub.N)
	gm.Add(gm, bigOne)
	gm.Mod(gm, pub.N2)
	rn := new(big.Int).Exp(r, pub.N, pub.N2)
	c := gm.Mul(gm, rn)
	return c.Mod(c, pub.N2), nil
}

// Decrypt recovers m = L(c^λ mod N²) · μ mod N.
func (priv *PaillierPrivateKey) Decrypt(c *big.Int) (*big.Int, error) {
	if c == nil || c.Sign() <= 0 || c.Cmp(priv.N2) >= 0 {
		return nil, ErrCiphertext
	}
	u := new(big.Int).Exp(c, priv.Lambda, priv.N2)
	m := priv.lFunc(u)
	m.Mul(m, priv.Mu)
	return m.Mod(m, priv.N), nil
}

// HomomorphicAdd multiplies ciphertexts, yielding an encryption of the
// plaintext sum — the aggregation primitive of [66] in the paper.
func (pub *PaillierPublicKey) HomomorphicAdd(c1, c2 *big.Int) *big.Int {
	out := new(big.Int).Mul(c1, c2)
	return out.Mod(out, pub.N2)
}
