// Package cryptobench implements the three public-key cryptosystems the
// paper benchmarks XOR-based encryption against in Table 2: RSA (via the
// standard library), and Goldwasser–Micali and Paillier built from
// scratch on math/big. They exist to reproduce the crypto-overhead
// comparison, and the homomorphic properties are implemented and tested
// because prior systems ([27] and [66] in the paper) rely on them.
package cryptobench

import (
	"crypto/rand"
	"errors"
	"fmt"
	"io"
	"math/big"
)

// Errors reported by the cryptosystems.
var (
	ErrKeySize    = errors.New("cryptobench: invalid key size")
	ErrCiphertext = errors.New("cryptobench: invalid ciphertext")
	ErrMessage    = errors.New("cryptobench: invalid message")
)

var (
	bigOne  = big.NewInt(1)
	bigTwo  = big.NewInt(2)
	bigFour = big.NewInt(4)
)

// GMPublicKey is a Goldwasser–Micali public key: the modulus N and a
// quadratic non-residue x with Jacobi symbol +1.
type GMPublicKey struct {
	N *big.Int
	X *big.Int
}

// GMPrivateKey adds the factorization, which decides quadratic
// residuosity.
type GMPrivateKey struct {
	GMPublicKey
	P *big.Int
	Q *big.Int
}

// GenerateGMKey creates a Goldwasser–Micali key pair with an n-bit
// modulus built from two Blum primes (p ≡ q ≡ 3 mod 4), for which
// x = N−1 is a quadratic non-residue with Jacobi symbol +1.
func GenerateGMKey(bits int, rng io.Reader) (*GMPrivateKey, error) {
	if bits < 16 {
		return nil, fmt.Errorf("%w: %d bits", ErrKeySize, bits)
	}
	if rng == nil {
		rng = rand.Reader
	}
	p, err := blumPrime(bits/2, rng)
	if err != nil {
		return nil, err
	}
	var q *big.Int
	for {
		q, err = blumPrime(bits-bits/2, rng)
		if err != nil {
			return nil, err
		}
		if p.Cmp(q) != 0 {
			break
		}
	}
	n := new(big.Int).Mul(p, q)
	x := new(big.Int).Sub(n, bigOne) // −1 mod N: QNR for Blum primes
	return &GMPrivateKey{
		GMPublicKey: GMPublicKey{N: n, X: x},
		P:           p,
		Q:           q,
	}, nil
}

// blumPrime returns a prime ≡ 3 (mod 4).
func blumPrime(bits int, rng io.Reader) (*big.Int, error) {
	for {
		p, err := rand.Prime(rng, bits)
		if err != nil {
			return nil, fmt.Errorf("cryptobench: prime generation: %w", err)
		}
		if new(big.Int).Mod(p, bigFour).Cmp(big.NewInt(3)) == 0 {
			return p, nil
		}
	}
}

// EncryptBit encrypts one bit: c = y²·x^b mod N for random y coprime
// to N.
func (pub *GMPublicKey) EncryptBit(bit bool, rng io.Reader) (*big.Int, error) {
	if rng == nil {
		rng = rand.Reader
	}
	y, err := randomCoprime(pub.N, rng)
	if err != nil {
		return nil, err
	}
	c := new(big.Int).Mul(y, y)
	c.Mod(c, pub.N)
	if bit {
		c.Mul(c, pub.X)
		c.Mod(c, pub.N)
	}
	return c, nil
}

// DecryptBit recovers the bit: 0 iff c is a quadratic residue mod P,
// decided by the Legendre symbol c^((P−1)/2) mod P.
func (priv *GMPrivateKey) DecryptBit(c *big.Int) (bool, error) {
	if c == nil || c.Sign() <= 0 || c.Cmp(priv.N) >= 0 {
		return false, ErrCiphertext
	}
	exp := new(big.Int).Sub(priv.P, bigOne)
	exp.Div(exp, bigTwo)
	leg := new(big.Int).Exp(c, exp, priv.P)
	return leg.Cmp(bigOne) != 0, nil
}

// EncryptBits encrypts a packed bit string of nbits bits, producing one
// ciphertext per bit — the cost structure Table 2 measures.
func (pub *GMPublicKey) EncryptBits(bits []byte, nbits int, rng io.Reader) ([]*big.Int, error) {
	if nbits <= 0 || (nbits+7)/8 > len(bits) {
		return nil, fmt.Errorf("%w: %d bits in %d bytes", ErrMessage, nbits, len(bits))
	}
	out := make([]*big.Int, nbits)
	for i := 0; i < nbits; i++ {
		b := bits[i/8]&(1<<(i%8)) != 0
		c, err := pub.EncryptBit(b, rng)
		if err != nil {
			return nil, err
		}
		out[i] = c
	}
	return out, nil
}

// DecryptBits reverses EncryptBits into a packed bit string.
func (priv *GMPrivateKey) DecryptBits(cs []*big.Int) ([]byte, error) {
	out := make([]byte, (len(cs)+7)/8)
	for i, c := range cs {
		b, err := priv.DecryptBit(c)
		if err != nil {
			return nil, err
		}
		if b {
			out[i/8] |= 1 << (i % 8)
		}
	}
	return out, nil
}

// HomomorphicXOR multiplies two ciphertexts, yielding an encryption of
// the XOR of the plaintext bits — the property [27] builds aggregation
// on.
func (pub *GMPublicKey) HomomorphicXOR(c1, c2 *big.Int) *big.Int {
	out := new(big.Int).Mul(c1, c2)
	return out.Mod(out, pub.N)
}

// randomCoprime draws a uniform element of (Z/NZ)* in [2, N).
func randomCoprime(n *big.Int, rng io.Reader) (*big.Int, error) {
	gcd := new(big.Int)
	for {
		y, err := rand.Int(rng, n)
		if err != nil {
			return nil, fmt.Errorf("cryptobench: random element: %w", err)
		}
		if y.Cmp(bigTwo) < 0 {
			continue
		}
		if gcd.GCD(nil, nil, y, n).Cmp(bigOne) == 0 {
			return y, nil
		}
	}
}
