package cryptobench

import (
	"crypto/rand"
	"crypto/rsa"
	"fmt"
	"io"
)

// RSACipher wraps the standard library RSA with the paper's Table 2
// setup: a 1024-bit key encrypting short answer messages with PKCS#1
// v1.5 padding (the scheme used by [10] in the paper).
type RSACipher struct {
	key *rsa.PrivateKey
}

// NewRSACipher generates a fresh key of the given modulus size.
func NewRSACipher(bits int, rng io.Reader) (*RSACipher, error) {
	if bits < 512 {
		return nil, fmt.Errorf("%w: %d bits", ErrKeySize, bits)
	}
	if rng == nil {
		rng = rand.Reader
	}
	key, err := rsa.GenerateKey(rng, bits)
	if err != nil {
		return nil, fmt.Errorf("cryptobench: rsa keygen: %w", err)
	}
	return &RSACipher{key: key}, nil
}

// Encrypt encrypts msg under the public key.
func (c *RSACipher) Encrypt(msg []byte) ([]byte, error) {
	out, err := rsa.EncryptPKCS1v15(rand.Reader, &c.key.PublicKey, msg)
	if err != nil {
		return nil, fmt.Errorf("cryptobench: rsa encrypt: %w", err)
	}
	return out, nil
}

// Decrypt reverses Encrypt.
func (c *RSACipher) Decrypt(ct []byte) ([]byte, error) {
	out, err := rsa.DecryptPKCS1v15(rand.Reader, c.key, ct)
	if err != nil {
		return nil, fmt.Errorf("cryptobench: rsa decrypt: %w", err)
	}
	return out, nil
}

// MaxMessageLen returns the largest message PKCS#1 v1.5 can carry.
func (c *RSACipher) MaxMessageLen() int {
	return c.key.PublicKey.Size() - 11
}
