// Package client implements the PrivApprox client runtime (paper §5):
// each client stores the user's private data in an embedded database,
// verifies and subscribes to analyst queries, and every epoch runs the
// four client-side steps — sampling decision (§3.2.1), local query
// execution and randomized response (§3.2.2), and XOR-based share
// transmission to the proxies (§3.2.3).
//
// A client holds any number of concurrent subscriptions — the paper's
// normal operating mode has many analysts' queries running over the
// same population — and answers every active query each epoch. Each
// subscription owns its own deterministic randomness (derived from the
// client seed, the query's wire identifier, and a per-query
// subscription generation), so a query's coin flips never depend on
// which other queries happen to be active: query Q answered alongside
// nine others produces exactly the bits it would produce running alone.
package client

import (
	"crypto/ed25519"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sync/atomic"
	"time"

	"privapprox/internal/answer"
	"privapprox/internal/budget"
	"privapprox/internal/minisql"
	"privapprox/internal/query"
	"privapprox/internal/rr"
	"privapprox/internal/sampling"
	"privapprox/internal/xorcrypt"
)

// Errors reported by the client runtime.
var (
	ErrNotSubscribed = errors.New("client: no active subscription")
	ErrBadConfig     = errors.New("client: invalid configuration")
)

// ShareSink accepts one XOR share — each of the n proxies is one sink.
//
// Ownership contract: Submit must copy or fully consume share.Payload
// before returning. The client splits every epoch's message into
// caller-owned scratch and reuses those buffers for the next epoch, so
// a sink that retains the slice uncopied would see its bytes change
// underneath it. The in-process broker copies on publish, the TCP
// transport serializes into its frame before returning, and the Batcher
// copies into its arena — all three satisfy the contract.
type ShareSink interface {
	Submit(share xorcrypt.Share) error
}

// Reducer folds the rows the local query returned into the client's
// single answer value for this epoch (e.g. the latest reading). The
// boolean is false when the client has no value this epoch; it still
// answers with an all-zero truthful vector so that non-participation
// never leaks query-dependent information.
type Reducer func(rows *minisql.Rows) (string, bool)

// ReduceLast returns the first column of the last row.
func ReduceLast(rows *minisql.Rows) (string, bool) {
	if len(rows.Rows) == 0 {
		return "", false
	}
	return rows.Rows[len(rows.Rows)-1][0].String(), true
}

// ReduceSum sums the first column over all rows.
func ReduceSum(rows *minisql.Rows) (string, bool) {
	if len(rows.Rows) == 0 {
		return "", false
	}
	total := 0.0
	for _, r := range rows.Rows {
		f, err := r[0].AsNumber()
		if err != nil {
			continue
		}
		total += f
	}
	return minisql.Number(total).String(), true
}

// ReduceMean averages the first column over all rows.
func ReduceMean(rows *minisql.Rows) (string, bool) {
	if len(rows.Rows) == 0 {
		return "", false
	}
	total, n := 0.0, 0
	for _, r := range rows.Rows {
		f, err := r[0].AsNumber()
		if err != nil {
			continue
		}
		total += f
		n++
	}
	if n == 0 {
		return "", false
	}
	return minisql.Number(total / float64(n)).String(), true
}

// ReduceCount counts rows.
func ReduceCount(rows *minisql.Rows) (string, bool) {
	return minisql.Number(float64(len(rows.Rows))).String(), true
}

// Stats counts client-side work for the Table 3 and Fig. 9 experiments.
// With multiple subscriptions, Participated and AnswersSent count
// per-(query, epoch) events while EpochsSeen counts epochs.
type Stats struct {
	EpochsSeen   int64
	Participated int64
	AnswersSent  int64
	BytesSent    int64
	// Shedded counts (query, epoch) events where the base sampling coin
	// said participate but the overload shed threshold suppressed the
	// answer — approximation spent instead of backlog grown.
	Shedded int64
}

// Config assembles a client.
type Config struct {
	ID         string
	DB         *minisql.DB
	AnalystKey ed25519.PublicKey
	Sinks      []ShareSink
	Reducer    Reducer // defaults to ReduceLast
	Seed       int64   // deterministic randomness for experiments
	// MIDSource optionally supplies the splitter's message-identifier
	// bytes (16 per answer). MIDs are the pub/sub partition keys, so a
	// seeded source makes partition routing — and therefore bounded,
	// mid-stream drains — reproducible across runs; nil keeps the
	// default crypto-random generator (the right choice for deployments,
	// where MIDs must be unlinkable across runs).
	MIDSource io.Reader
}

// Client is one user device.
type Client struct {
	id      string
	db      *minisql.DB
	analyst ed25519.PublicKey
	sinks   []ShareSink
	reducer Reducer
	seed    int64

	// subs holds the active subscriptions in registration order; byWire
	// indexes them by the query's wire identifier. gens counts how many
	// times each wire QID has been (re-)subscribed, so a feedback-driven
	// re-subscription draws a fresh, deterministic coin stream instead of
	// replaying the old one.
	subs   []*subscription
	byWire map[uint64]int
	gens   map[uint64]uint64

	splitter *xorcrypt.Splitter

	// Per-epoch scratch, reused across epochs so the steady-state
	// answering path allocates nothing: the encoded message and the
	// split-share buffers (the truthful answer vector lives per
	// subscription — bucket counts differ across queries). Safe because
	// every ShareSink copies or consumes before returning (see
	// ShareSink).
	msgBuf  []byte
	scratch xorcrypt.SplitScratch

	epochsSeen   atomic.Int64
	participated atomic.Int64
	answersSent  atomic.Int64
	bytesSent    atomic.Int64
	shedded      atomic.Int64
}

type subscription struct {
	query    *query.Query
	prepared *minisql.SelectStmt
	params   budget.Params
	decider  *sampling.HashDecider
	rz       *rr.Randomizer
	qidWire  uint64
	vec      *answer.BitVector // per-subscription truthful-answer scratch
	// shed ∈ (0, 1] is the overload-control threshold: the effective
	// participation fraction this epoch is params.S·shed. Unlike a
	// re-subscription it does NOT redraw the coin stream — a
	// shed-suppressed client still consumes its randomized-response
	// draws (see answerQuery), so the stream stays independent of the
	// shed history and crash recovery needs no shed replay.
	shed float64
}

// New validates the configuration and builds a client.
func New(cfg Config) (*Client, error) {
	if cfg.ID == "" || cfg.DB == nil {
		return nil, fmt.Errorf("%w: need ID and DB", ErrBadConfig)
	}
	if len(cfg.Sinks) < 2 {
		return nil, fmt.Errorf("%w: need ≥ 2 proxies, got %d", ErrBadConfig, len(cfg.Sinks))
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = rand.Int63()
	}
	reducer := cfg.Reducer
	if reducer == nil {
		reducer = ReduceLast
	}
	splitter, err := xorcrypt.NewSplitter(len(cfg.Sinks), nil, cfg.MIDSource)
	if err != nil {
		return nil, err
	}
	return &Client{
		id:       cfg.ID,
		db:       cfg.DB,
		analyst:  cfg.AnalystKey,
		sinks:    cfg.Sinks,
		reducer:  reducer,
		seed:     seed,
		byWire:   make(map[uint64]int),
		gens:     make(map[uint64]uint64),
		splitter: splitter,
	}, nil
}

// ID returns the client identifier.
func (c *Client) ID() string { return c.id }

// splitmix64 is the SplitMix64 finalizer, used to mix the client seed
// with per-subscription coordinates.
func splitmix64(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// subSeed derives the deterministic randomizer seed for one
// subscription: a pure function of (client seed, wire QID, subscribe
// generation). Every code path that activates a query — the legacy
// single-query Subscribe, the multi-query SubscribeQuery, in-process or
// via the control topic — lands on the same derivation, which is what
// makes a query's randomized responses identical whether it runs alone
// or alongside others.
func subSeed(seed int64, qidWire, gen uint64) int64 {
	z := splitmix64(uint64(seed) ^ qidWire)
	return int64(splitmix64(z + gen))
}

// Subscribe verifies the analyst's signature (when a key is configured)
// and activates the query with the system parameters the aggregator
// derived from the budget. Subscribe keeps the single-query contract of
// the original runtime: the new subscription replaces the entire active
// set. Use SubscribeQuery to add a query alongside others.
func (c *Client) Subscribe(signed *query.Signed, params budget.Params) error {
	sub, err := c.buildSubscription(signed, c.analyst, params)
	if err != nil {
		return err
	}
	c.subs = c.subs[:0]
	clear(c.byWire)
	c.byWire[sub.qidWire] = 0
	c.subs = append(c.subs, sub)
	return nil
}

// SubscribeQuery activates one query alongside any others already
// active (upserting by wire QID: re-subscribing an active query swaps
// its parameters in place and redraws its coin stream). The signature
// is verified against analystKey when non-nil, falling back to the
// client's configured analyst key when one was set.
func (c *Client) SubscribeQuery(signed *query.Signed, analystKey ed25519.PublicKey, params budget.Params) error {
	key := analystKey
	if key == nil {
		key = c.analyst
	}
	sub, err := c.buildSubscription(signed, key, params)
	if err != nil {
		return err
	}
	if i, ok := c.byWire[sub.qidWire]; ok {
		// Re-subscription swaps parameters and redraws coins but keeps
		// the overload-control threshold — shedding is a property of the
		// query's standing load, not of one parameter revision.
		sub.shed = c.subs[i].shed
		c.subs[i] = sub
		return nil
	}
	c.byWire[sub.qidWire] = len(c.subs)
	c.subs = append(c.subs, sub)
	return nil
}

// UnsubscribeQuery deactivates a query, reporting whether it was
// active. The wire-QID generation counter survives, so a later
// re-subscription still draws a fresh coin stream.
func (c *Client) UnsubscribeQuery(id query.ID) bool {
	wire := id.Uint64()
	i, ok := c.byWire[wire]
	if !ok {
		return false
	}
	c.subs = append(c.subs[:i], c.subs[i+1:]...)
	delete(c.byWire, wire)
	for j := i; j < len(c.subs); j++ {
		c.byWire[c.subs[j].qidWire] = j
	}
	return true
}

// buildSubscription validates and assembles one subscription, drawing
// the next generation's deterministic randomness for the query.
func (c *Client) buildSubscription(signed *query.Signed, key ed25519.PublicKey, params budget.Params) (*subscription, error) {
	if key != nil {
		if err := signed.Verify(key); err != nil {
			return nil, err
		}
	}
	q := signed.Query
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if err := params.Validate(); err != nil {
		return nil, err
	}
	stmt, err := minisql.Parse(q.SQL)
	if err != nil {
		return nil, fmt.Errorf("client: query SQL: %w", err)
	}
	sel, ok := stmt.(*minisql.SelectStmt)
	if !ok {
		return nil, fmt.Errorf("client: query must be a SELECT")
	}
	wire := q.QID.Uint64()
	decider, err := sampling.NewHashDecider(params.S, wire)
	if err != nil {
		return nil, err
	}
	gen := c.gens[wire]
	c.gens[wire] = gen + 1
	rng := rand.New(rand.NewSource(subSeed(c.seed, wire, gen)))
	rz, err := rr.NewRandomizer(params.RR, rng)
	if err != nil {
		return nil, err
	}
	return &subscription{
		query:    q,
		prepared: sel,
		params:   params,
		decider:  decider,
		rz:       rz,
		qidWire:  wire,
		shed:     1,
	}, nil
}

// SetShed sets a query's shed threshold ∈ (0, 1] — 1 means no shedding.
// It reports whether the query was an active subscription. Setting the
// threshold touches neither the subscription generation nor the
// randomizer, so it is safe to call between epochs at any frequency:
// the coin streams are untouched and determinism per (client, query,
// epoch, shed-schedule) holds.
func (c *Client) SetShed(id query.ID, shed float64) bool {
	i, ok := c.byWire[id.Uint64()]
	if !ok {
		return false
	}
	if !(shed > 0) || shed > 1 {
		shed = 1
	}
	c.subs[i].shed = shed
	return true
}

// FastForward advances every active subscription's deterministic
// randomness through epochs [0, epochs) without answering them — the
// client-side half of crash recovery. A client process restarted to
// resume at epoch e subscribes as usual (same seed, same generation)
// and fast-forwards to e; from there each subscription's coin stream is
// exactly the one an uninterrupted run would produce, because the
// randomness a subscription consumes per epoch is a deterministic
// function of the participation decision (hash-based, rng-free) and
// the query's bucket count (RespondBits draws one word per bit).
//
// FastForward assumes every subscription was live from epoch 0; for
// queries registered mid-run use FastForwardQuery with the query's
// registration epoch (core.System.Restore does exactly that from its
// checkpointed registration table).
//
// Call it once, immediately after the subscriptions are in place and
// before the first AnswerOnce. Stats are not advanced: they count the
// work of this process, not of the crashed one.
func (c *Client) FastForward(epochs uint64) {
	for _, sub := range c.subs {
		c.fastForwardSub(sub, 0, epochs)
	}
}

// FastForwardQuery advances one subscription's randomness through
// epochs [from, to) — from is the epoch the query was registered at, so
// a mid-run query skips exactly the epochs it actually answered in the
// previous life and no others. It reports whether the query was an
// active subscription.
func (c *Client) FastForwardQuery(id query.ID, from, to uint64) bool {
	i, ok := c.byWire[id.Uint64()]
	if !ok {
		return false
	}
	c.fastForwardSub(c.subs[i], from, to)
	return true
}

func (c *Client) fastForwardSub(sub *subscription, from, to uint64) {
	nbits := len(sub.query.Buckets)
	for e := from; e < to; e++ {
		if sub.decider.Participate(c.id, e) {
			sub.rz.Skip(nbits)
			// One message identifier per base-participating epoch: answered
			// and shed epochs consume a MID alike (see answerQuery), so the
			// splitter's MID stream needs no shed history either. The skip
			// order across subscriptions differs from the live run's
			// epoch-major order, but only the stream position matters.
			_ = c.splitter.SkipMID()
		}
	}
}

// Query returns the first active query, or nil — the legacy single-query
// accessor.
func (c *Client) Query() *query.Query {
	if len(c.subs) == 0 {
		return nil
	}
	return c.subs[0].query
}

// ActiveQueries returns the active queries in registration order.
func (c *Client) ActiveQueries() []*query.Query {
	out := make([]*query.Query, len(c.subs))
	for i, sub := range c.subs {
		out[i] = sub.query
	}
	return out
}

// Subscriptions returns the number of active subscriptions.
func (c *Client) Subscriptions() int { return len(c.subs) }

// AnswerOnce runs one epoch of the query answering process for every
// active subscription, one local minisql evaluation and one
// split-and-transmit per query; shares for all queries flow through the
// same sinks, so a Batcher-backed deployment carries the whole epoch in
// one flush per proxy. It returns whether the client participated in at
// least one query (the §3.2.1 sampling coin, drawn independently per
// query).
func (c *Client) AnswerOnce(epoch uint64) (bool, error) {
	if len(c.subs) == 0 {
		return false, ErrNotSubscribed
	}
	c.epochsSeen.Add(1)
	any := false
	for _, sub := range c.subs {
		ok, err := c.answerQuery(sub, epoch)
		if err != nil {
			return any, err
		}
		if ok {
			any = true
		}
	}
	return any, nil
}

// answerQuery runs the sample → local query → randomize → split →
// transmit pipeline for one subscription.
//
// The participation gate is three-way. Non-participants (the base
// sampling coin says no) consume nothing. Shed-suppressed clients —
// base-participating but above the effective fraction S·shed — skip
// the query and transmission but still consume exactly the randomness
// a full answer would (rz.Skip), so the coin stream's position is a
// function of the base participation pattern alone: FastForward and
// crash recovery never need to know the shed history.
func (c *Client) answerQuery(sub *subscription, epoch uint64) (bool, error) {
	if !sub.decider.Participate(c.id, epoch) {
		return false, nil
	}
	if sub.shed < 1 && !sub.decider.ParticipateShed(c.id, epoch, sub.shed) {
		// A shed answer still consumes its randomized-response draws AND
		// its message identifier, so both streams' positions stay
		// functions of base participation alone — crash recovery can
		// fast-forward them without replaying the shed history.
		sub.rz.Skip(len(sub.query.Buckets))
		if err := c.splitter.SkipMID(); err != nil {
			return false, err
		}
		c.shedded.Add(1)
		return false, nil
	}
	c.participated.Add(1)

	// Step II part 1: execute the query on the local private data.
	rows, err := c.db.QueryPrepared(sub.prepared)
	if err != nil {
		return false, fmt.Errorf("client: local query: %w", err)
	}
	vec, err := c.truthVector(sub, rows)
	if err != nil {
		return false, err
	}

	// Step II part 2: randomized response over every bucket bit.
	sub.rz.RespondBits(vec.Bytes(), vec.Len())

	// Step III: encode, split, transmit — all through per-client
	// scratch buffers reused across epochs and subscriptions.
	msg := answer.Message{QueryID: sub.qidWire, Epoch: epoch, Answer: vec}
	raw, err := msg.AppendBinary(c.msgBuf[:0])
	if err != nil {
		return false, err
	}
	c.msgBuf = raw
	shares, err := c.splitter.SplitInto(raw, &c.scratch)
	if err != nil {
		return false, err
	}
	for i, share := range shares {
		if err := c.sinks[i].Submit(share); err != nil {
			return false, fmt.Errorf("client: proxy %d: %w", i, err)
		}
		c.bytesSent.Add(int64(len(share.Payload) + xorcrypt.MIDSize))
	}
	c.answersSent.Add(1)
	return true, nil
}

// truthVector bucketizes the reduced answer value into the
// subscription's reusable vector. No value, or a value outside every
// bucket, yields the all-zero vector: participating clients always
// transmit, so silence never correlates with data.
func (c *Client) truthVector(sub *subscription, rows *minisql.Rows) (*answer.BitVector, error) {
	n := len(sub.query.Buckets)
	if sub.vec == nil || sub.vec.Len() != n {
		v, err := answer.NewBitVector(n)
		if err != nil {
			return nil, err
		}
		sub.vec = v
	}
	sub.vec.Reset()
	value, ok := c.reducer(rows)
	if !ok {
		return sub.vec, nil
	}
	idx := sub.query.Buckets.Index(value)
	if idx < 0 {
		return sub.vec, nil
	}
	if err := sub.vec.Set(idx, true); err != nil {
		return nil, err
	}
	return sub.vec, nil
}

// Stats returns a snapshot of the client counters.
func (c *Client) Stats() Stats {
	return Stats{
		EpochsSeen:   c.epochsSeen.Load(),
		Participated: c.participated.Load(),
		AnswersSent:  c.answersSent.Load(),
		BytesSent:    c.bytesSent.Load(),
		Shedded:      c.shedded.Load(),
	}
}

// PruneBefore deletes local rows whose first column (the timestamp
// convention used by the workload generators) is older than cutoff,
// bounding device storage.
func (c *Client) PruneBefore(tableName string, cutoff time.Time) (int, error) {
	cut := float64(cutoff.Unix())
	return c.db.DeleteWhere(tableName, func(row []minisql.Value) bool {
		if len(row) == 0 || row[0].Kind != minisql.KindNumber {
			return false
		}
		return row[0].Num < cut
	})
}
