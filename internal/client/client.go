// Package client implements the PrivApprox client runtime (paper §5):
// each client stores the user's private data in an embedded database,
// verifies and subscribes to analyst queries, and every epoch runs the
// four client-side steps — sampling decision (§3.2.1), local query
// execution and randomized response (§3.2.2), and XOR-based share
// transmission to the proxies (§3.2.3).
package client

import (
	"crypto/ed25519"
	"errors"
	"fmt"
	"math/rand"
	"sync/atomic"
	"time"

	"privapprox/internal/answer"
	"privapprox/internal/budget"
	"privapprox/internal/minisql"
	"privapprox/internal/query"
	"privapprox/internal/rr"
	"privapprox/internal/sampling"
	"privapprox/internal/xorcrypt"
)

// Errors reported by the client runtime.
var (
	ErrNotSubscribed = errors.New("client: no active subscription")
	ErrBadConfig     = errors.New("client: invalid configuration")
)

// ShareSink accepts one XOR share — each of the n proxies is one sink.
//
// Ownership contract: Submit must copy or fully consume share.Payload
// before returning. The client splits every epoch's message into
// caller-owned scratch and reuses those buffers for the next epoch, so
// a sink that retains the slice uncopied would see its bytes change
// underneath it. The in-process broker copies on publish, the TCP
// transport serializes into its frame before returning, and the Batcher
// copies into its arena — all three satisfy the contract.
type ShareSink interface {
	Submit(share xorcrypt.Share) error
}

// Reducer folds the rows the local query returned into the client's
// single answer value for this epoch (e.g. the latest reading). The
// boolean is false when the client has no value this epoch; it still
// answers with an all-zero truthful vector so that non-participation
// never leaks query-dependent information.
type Reducer func(rows *minisql.Rows) (string, bool)

// ReduceLast returns the first column of the last row.
func ReduceLast(rows *minisql.Rows) (string, bool) {
	if len(rows.Rows) == 0 {
		return "", false
	}
	return rows.Rows[len(rows.Rows)-1][0].String(), true
}

// ReduceSum sums the first column over all rows.
func ReduceSum(rows *minisql.Rows) (string, bool) {
	if len(rows.Rows) == 0 {
		return "", false
	}
	total := 0.0
	for _, r := range rows.Rows {
		f, err := r[0].AsNumber()
		if err != nil {
			continue
		}
		total += f
	}
	return minisql.Number(total).String(), true
}

// ReduceMean averages the first column over all rows.
func ReduceMean(rows *minisql.Rows) (string, bool) {
	if len(rows.Rows) == 0 {
		return "", false
	}
	total, n := 0.0, 0
	for _, r := range rows.Rows {
		f, err := r[0].AsNumber()
		if err != nil {
			continue
		}
		total += f
		n++
	}
	if n == 0 {
		return "", false
	}
	return minisql.Number(total / float64(n)).String(), true
}

// ReduceCount counts rows.
func ReduceCount(rows *minisql.Rows) (string, bool) {
	return minisql.Number(float64(len(rows.Rows))).String(), true
}

// Stats counts client-side work for the Table 3 and Fig. 9 experiments.
type Stats struct {
	EpochsSeen   int64
	Participated int64
	AnswersSent  int64
	BytesSent    int64
}

// Config assembles a client.
type Config struct {
	ID         string
	DB         *minisql.DB
	AnalystKey ed25519.PublicKey
	Sinks      []ShareSink
	Reducer    Reducer // defaults to ReduceLast
	Seed       int64   // deterministic randomness for experiments
}

// Client is one user device.
type Client struct {
	id      string
	db      *minisql.DB
	analyst ed25519.PublicKey
	sinks   []ShareSink
	reducer Reducer

	sub      *subscription
	rng      *rand.Rand
	splitter *xorcrypt.Splitter

	// Per-epoch scratch, reused across epochs so the steady-state
	// answering path allocates nothing: the truthful answer vector, the
	// encoded message, and the split-share buffers. Safe because every
	// ShareSink copies or consumes before returning (see ShareSink).
	vec     *answer.BitVector
	msgBuf  []byte
	scratch xorcrypt.SplitScratch

	epochsSeen   atomic.Int64
	participated atomic.Int64
	answersSent  atomic.Int64
	bytesSent    atomic.Int64
}

type subscription struct {
	query    *query.Query
	prepared *minisql.SelectStmt
	params   budget.Params
	decider  *sampling.HashDecider
	rz       *rr.Randomizer
	qidWire  uint64
}

// New validates the configuration and builds a client.
func New(cfg Config) (*Client, error) {
	if cfg.ID == "" || cfg.DB == nil {
		return nil, fmt.Errorf("%w: need ID and DB", ErrBadConfig)
	}
	if len(cfg.Sinks) < 2 {
		return nil, fmt.Errorf("%w: need ≥ 2 proxies, got %d", ErrBadConfig, len(cfg.Sinks))
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = rand.Int63()
	}
	reducer := cfg.Reducer
	if reducer == nil {
		reducer = ReduceLast
	}
	splitter, err := xorcrypt.NewSplitter(len(cfg.Sinks), nil, nil)
	if err != nil {
		return nil, err
	}
	return &Client{
		id:       cfg.ID,
		db:       cfg.DB,
		analyst:  cfg.AnalystKey,
		sinks:    cfg.Sinks,
		reducer:  reducer,
		rng:      rand.New(rand.NewSource(seed)),
		splitter: splitter,
	}, nil
}

// ID returns the client identifier.
func (c *Client) ID() string { return c.id }

// Subscribe verifies the analyst's signature (when a key is configured)
// and activates the query with the system parameters the aggregator
// derived from the budget.
func (c *Client) Subscribe(signed *query.Signed, params budget.Params) error {
	if c.analyst != nil {
		if err := signed.Verify(c.analyst); err != nil {
			return err
		}
	}
	q := signed.Query
	if err := q.Validate(); err != nil {
		return err
	}
	if err := params.Validate(); err != nil {
		return err
	}
	stmt, err := minisql.Parse(q.SQL)
	if err != nil {
		return fmt.Errorf("client: query SQL: %w", err)
	}
	sel, ok := stmt.(*minisql.SelectStmt)
	if !ok {
		return fmt.Errorf("client: query must be a SELECT")
	}
	decider, err := sampling.NewHashDecider(params.S, q.QID.Uint64())
	if err != nil {
		return err
	}
	rz, err := rr.NewRandomizer(params.RR, c.rng)
	if err != nil {
		return err
	}
	c.sub = &subscription{
		query:    q,
		prepared: sel,
		params:   params,
		decider:  decider,
		rz:       rz,
		qidWire:  q.QID.Uint64(),
	}
	return nil
}

// Query returns the active query, or nil.
func (c *Client) Query() *query.Query {
	if c.sub == nil {
		return nil
	}
	return c.sub.query
}

// AnswerOnce runs one epoch of the query answering process. It returns
// whether the client participated (the §3.2.1 sampling coin).
func (c *Client) AnswerOnce(epoch uint64) (bool, error) {
	sub := c.sub
	if sub == nil {
		return false, ErrNotSubscribed
	}
	c.epochsSeen.Add(1)
	if !sub.decider.Participate(c.id, epoch) {
		return false, nil
	}
	c.participated.Add(1)

	// Step II part 1: execute the query on the local private data.
	rows, err := c.db.QueryPrepared(sub.prepared)
	if err != nil {
		return false, fmt.Errorf("client: local query: %w", err)
	}
	vec, err := c.truthVector(sub, rows)
	if err != nil {
		return false, err
	}

	// Step II part 2: randomized response over every bucket bit.
	sub.rz.RespondBits(vec.Bytes(), vec.Len())

	// Step III: encode, split, transmit — all through per-client
	// scratch buffers reused across epochs.
	msg := answer.Message{QueryID: sub.qidWire, Epoch: epoch, Answer: vec}
	raw, err := msg.AppendBinary(c.msgBuf[:0])
	if err != nil {
		return false, err
	}
	c.msgBuf = raw
	shares, err := c.splitter.SplitInto(raw, &c.scratch)
	if err != nil {
		return false, err
	}
	for i, share := range shares {
		if err := c.sinks[i].Submit(share); err != nil {
			return false, fmt.Errorf("client: proxy %d: %w", i, err)
		}
		c.bytesSent.Add(int64(len(share.Payload) + xorcrypt.MIDSize))
	}
	c.answersSent.Add(1)
	return true, nil
}

// truthVector bucketizes the reduced answer value into the client's
// reusable vector. No value, or a value outside every bucket, yields
// the all-zero vector: participating clients always transmit, so
// silence never correlates with data.
func (c *Client) truthVector(sub *subscription, rows *minisql.Rows) (*answer.BitVector, error) {
	n := len(sub.query.Buckets)
	if c.vec == nil || c.vec.Len() != n {
		v, err := answer.NewBitVector(n)
		if err != nil {
			return nil, err
		}
		c.vec = v
	}
	c.vec.Reset()
	value, ok := c.reducer(rows)
	if !ok {
		return c.vec, nil
	}
	idx := sub.query.Buckets.Index(value)
	if idx < 0 {
		return c.vec, nil
	}
	if err := c.vec.Set(idx, true); err != nil {
		return nil, err
	}
	return c.vec, nil
}

// Stats returns a snapshot of the client counters.
func (c *Client) Stats() Stats {
	return Stats{
		EpochsSeen:   c.epochsSeen.Load(),
		Participated: c.participated.Load(),
		AnswersSent:  c.answersSent.Load(),
		BytesSent:    c.bytesSent.Load(),
	}
}

// PruneBefore deletes local rows whose first column (the timestamp
// convention used by the workload generators) is older than cutoff,
// bounding device storage.
func (c *Client) PruneBefore(tableName string, cutoff time.Time) (int, error) {
	cut := float64(cutoff.Unix())
	return c.db.DeleteWhere(tableName, func(row []minisql.Value) bool {
		if len(row) == 0 || row[0].Kind != minisql.KindNumber {
			return false
		}
		return row[0].Num < cut
	})
}
