package client

import (
	"sync"

	"privapprox/internal/xorcrypt"
)

// BatchSink accepts many shares in one call — proxy.Proxy implements it
// over both the in-process broker and the TCP transport, where a batch
// is one wire frame.
type BatchSink interface {
	SubmitBatch(shares []xorcrypt.Share) error
}

// Batcher is a ShareSink that buffers submitted shares and forwards
// them to the underlying BatchSink in batches: automatically whenever
// limit shares have accumulated (0 means no automatic flush), and on
// Flush. It is safe for concurrent use, so a worker pool of clients can
// share one Batcher per proxy; the epoch driver calls Flush once after
// all clients answered, turning an epoch's O(N) proxy round-trips into
// O(1).
type Batcher struct {
	sink  BatchSink
	limit int

	mu  sync.Mutex
	buf []xorcrypt.Share
}

// NewBatcher wraps sink in a Batcher that auto-flushes every limit
// shares (limit <= 0 disables auto-flush; every share then waits for an
// explicit Flush).
func NewBatcher(sink BatchSink, limit int) *Batcher {
	return &Batcher{sink: sink, limit: limit}
}

// Submit buffers one share, flushing if the batch limit is reached.
func (b *Batcher) Submit(share xorcrypt.Share) error {
	b.mu.Lock()
	b.buf = append(b.buf, share)
	if b.limit > 0 && len(b.buf) >= b.limit {
		return b.flushLocked()
	}
	b.mu.Unlock()
	return nil
}

// Flush forwards everything buffered to the sink as one batch.
func (b *Batcher) Flush() error {
	b.mu.Lock()
	return b.flushLocked()
}

// Pending returns the number of buffered shares.
func (b *Batcher) Pending() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.buf)
}

// flushLocked sends the buffer and releases b.mu. The send happens
// outside the lock so a slow sink does not serialize other submitters;
// the buffer swap keeps batches disjoint.
func (b *Batcher) flushLocked() error {
	buf := b.buf
	b.buf = nil
	b.mu.Unlock()
	if len(buf) == 0 {
		return nil
	}
	return b.sink.SubmitBatch(buf)
}

var _ ShareSink = (*Batcher)(nil)
