package client

import (
	"sync"

	"privapprox/internal/xorcrypt"
)

// BatchSink accepts many shares in one call — proxy.Proxy implements it
// over both the in-process broker and the TCP transport, where a batch
// is one wire frame. SubmitBatch must copy or fully consume the shares
// before returning; the slice and every payload belong to the caller.
type BatchSink interface {
	SubmitBatch(shares []xorcrypt.Share) error
}

// Batcher is a ShareSink that buffers submitted shares and forwards
// them to the underlying BatchSink in batches: automatically whenever
// limit shares have accumulated (0 means no automatic flush), and on
// Flush. It is safe for concurrent use, so a worker pool of clients can
// share one Batcher per proxy; the epoch driver calls Flush once after
// all clients answered, turning an epoch's O(N) proxy round-trips into
// O(1).
//
// Submit copies each share's payload into a batch-owned arena, so it
// honours the ShareSink ownership contract (clients reuse their split
// scratch immediately) without holding references into caller buffers.
// Batch buffers — the share slice and the arena — are recycled through
// a free list once the sink consumed them, so steady-state epochs reuse
// the same memory instead of reallocating it.
type Batcher struct {
	sink  BatchSink
	limit int

	mu   sync.Mutex
	cur  *batchBuf
	free []*batchBuf
}

// batchBuf is one batch in flight: the share headers plus the arena
// their payload bytes were copied into.
type batchBuf struct {
	shares []xorcrypt.Share
	arena  []byte
}

// NewBatcher wraps sink in a Batcher that auto-flushes every limit
// shares (limit <= 0 disables auto-flush; every share then waits for an
// explicit Flush).
func NewBatcher(sink BatchSink, limit int) *Batcher {
	return &Batcher{sink: sink, limit: limit}
}

// Submit copies one share into the current batch, flushing if the batch
// limit is reached. The caller keeps ownership of share.Payload.
func (b *Batcher) Submit(share xorcrypt.Share) error {
	b.mu.Lock()
	buf := b.cur
	if buf == nil {
		buf = b.getBufLocked()
		b.cur = buf
	}
	off := len(buf.arena)
	buf.arena = append(buf.arena, share.Payload...)
	// Full-slice expression: the stored payload can never grow into a
	// neighbour's bytes. (Arena growth may reallocate; earlier payload
	// headers keep pointing at the old array, whose bytes are already
	// final — the arena is append-only until recycled.)
	buf.shares = append(buf.shares, xorcrypt.Share{
		MID:     share.MID,
		Payload: buf.arena[off:len(buf.arena):len(buf.arena)],
	})
	if b.limit > 0 && len(buf.shares) >= b.limit {
		return b.flushLocked()
	}
	b.mu.Unlock()
	return nil
}

// Flush forwards everything buffered to the sink as one batch.
func (b *Batcher) Flush() error {
	b.mu.Lock()
	return b.flushLocked()
}

// Pending returns the number of buffered shares.
func (b *Batcher) Pending() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.cur == nil {
		return 0
	}
	return len(b.cur.shares)
}

// flushLocked sends the current batch and releases b.mu. The send
// happens outside the lock so a slow sink does not serialize other
// submitters; swapping the whole batchBuf (shares and arena together)
// keeps batches disjoint. Once the sink returns — having copied or
// consumed the batch per the BatchSink contract — the buffer goes back
// on the free list for the next epoch.
func (b *Batcher) flushLocked() error {
	buf := b.cur
	b.cur = nil
	b.mu.Unlock()
	if buf == nil || len(buf.shares) == 0 {
		if buf != nil {
			b.putBuf(buf)
		}
		return nil
	}
	err := b.sink.SubmitBatch(buf.shares)
	b.putBuf(buf)
	return err
}

// getBufLocked pops a recycled batch buffer or builds a fresh one; the
// caller holds b.mu.
func (b *Batcher) getBufLocked() *batchBuf {
	if n := len(b.free); n > 0 {
		buf := b.free[n-1]
		b.free[n-1] = nil
		b.free = b.free[:n-1]
		return buf
	}
	return &batchBuf{}
}

// putBuf resets a consumed batch buffer and returns it to the free
// list.
func (b *Batcher) putBuf(buf *batchBuf) {
	for i := range buf.shares {
		buf.shares[i].Payload = nil
	}
	buf.shares = buf.shares[:0]
	buf.arena = buf.arena[:0]
	b.mu.Lock()
	b.free = append(b.free, buf)
	b.mu.Unlock()
}

var _ ShareSink = (*Batcher)(nil)
