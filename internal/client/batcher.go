package client

import (
	"sync"
	"sync/atomic"
	"time"

	"privapprox/internal/xorcrypt"
)

// BatchSink accepts many shares in one call — proxy.Proxy implements it
// over both the in-process broker and the TCP transport, where a batch
// is one wire frame. SubmitBatch must copy or fully consume the shares
// before returning; the slice and every payload belong to the caller.
type BatchSink interface {
	SubmitBatch(shares []xorcrypt.Share) error
}

// ColumnSink is the columnar flush surface — proxy.Proxy implements it
// on top of the wire-v2 publish path. A call hands over count shares as
// two contiguous lanes: MIDs at a xorcrypt.MIDSize stride and payloads
// at a size-byte stride. Like SubmitBatch, the sink must fully consume
// both lanes before returning; they belong to the caller.
type ColumnSink interface {
	SubmitColumns(mids, payloads []byte, count, size int) error
}

// Batcher is a ShareSink that buffers submitted shares and forwards
// them to the underlying sink in batches: automatically whenever limit
// shares have accumulated (0 means no automatic flush), and on Flush.
// It is safe for concurrent use, so a worker pool of clients can share
// one Batcher per proxy; the epoch driver calls Flush once after all
// clients answered, turning an epoch's O(N) proxy round-trips into
// O(1).
//
// Submit copies each share directly into the columnar layout wire v2
// carries: per payload size, one contiguous MID lane and one contiguous
// payload lane (the arena). Fixed stride is a per-segment property, so
// a batch mixing query shapes simply fills one segment per shape, in
// first-seen order. Flush hands whole segments to a ColumnSink without
// re-slicing; for a sink without the columnar surface it materializes
// per-share views of the lanes and falls back to SubmitBatch. Either
// way the ShareSink ownership contract holds: callers reuse their split
// scratch immediately, and batch buffers are recycled through a free
// list once the sink consumed them.
type Batcher struct {
	sink  BatchSink
	limit int
	// degraded makes Flush tolerate a dead sink: a batch the sink (after
	// its own retries) could not accept is dropped and counted instead
	// of failing the epoch — the client's other shares for those answers
	// are orphaned at the aggregator, which simply never completes their
	// joins, so the estimator sees the realized (smaller) sample and
	// widens margins honestly.
	degraded bool
	dropped  atomic.Int64

	// stamper, when set, receives one provenance callback per
	// successfully flushed batch (see SetStamper); epoch and seq tag
	// the stamps. The callback itself builds and publishes the lineage
	// stamp, so the Batcher stays free of wire dependencies.
	stamper Stamper
	epoch   atomic.Uint64
	seq     atomic.Uint64

	mu   sync.Mutex
	cur  *batchBuf
	free []*batchBuf
}

// Stamper is the provenance hook: called once per successfully flushed
// batch — off the submit hot path, after the sink consumed the shares —
// with the epoch the flush belongs to, the flush sequence number within
// this Batcher, the number of shares sent, and the wall-clock
// nanosecond the flush began.
type Stamper func(epoch, seq uint64, shares int, flushStartNs int64)

// batchBuf is one batch in flight: columnar segments (segs[:nseg]
// active; entries past nseg keep recycled lane capacity from earlier
// epochs, since a steady-state batch repeats the same shape) plus a
// scratch share slice for the row-view fallback.
type batchBuf struct {
	segs   []colSeg
	nseg   int
	count  int
	shares []xorcrypt.Share
}

// colSeg is one fixed-stride segment: count shares of size-byte
// payloads, laid out as two contiguous lanes.
type colSeg struct {
	size  int
	count int
	mids  []byte
	vals  []byte
}

// seg returns the segment for payloads of the given size, reusing a
// recycled entry's lane capacity when possible.
func (buf *batchBuf) seg(size int) *colSeg {
	for i := range buf.segs[:buf.nseg] {
		if buf.segs[i].size == size {
			return &buf.segs[i]
		}
	}
	if buf.nseg == len(buf.segs) {
		buf.segs = append(buf.segs, colSeg{})
	}
	s := &buf.segs[buf.nseg]
	s.size = size
	buf.nseg++
	return s
}

// NewBatcher wraps sink in a Batcher that auto-flushes every limit
// shares (limit <= 0 disables auto-flush; every share then waits for an
// explicit Flush).
func NewBatcher(sink BatchSink, limit int) *Batcher {
	return &Batcher{sink: sink, limit: limit}
}

// Submit copies one share into the current batch's columnar lanes,
// flushing if the batch limit is reached. The caller keeps ownership of
// share.Payload. (Lane growth may reallocate; that is safe because the
// lanes are append-only until the batch is flushed and recycled.)
func (b *Batcher) Submit(share xorcrypt.Share) error {
	b.mu.Lock()
	buf := b.cur
	if buf == nil {
		buf = b.getBufLocked()
		b.cur = buf
	}
	seg := buf.seg(len(share.Payload))
	seg.mids = append(seg.mids, share.MID[:]...)
	seg.vals = append(seg.vals, share.Payload...)
	seg.count++
	buf.count++
	if b.limit > 0 && buf.count >= b.limit {
		return b.flushLocked()
	}
	b.mu.Unlock()
	return nil
}

// Flush forwards everything buffered to the sink as one batch (one
// columnar call per segment, or one SubmitBatch for row sinks).
func (b *Batcher) Flush() error {
	b.mu.Lock()
	return b.flushLocked()
}

// Pending returns the number of buffered shares.
func (b *Batcher) Pending() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.cur == nil {
		return 0
	}
	return b.cur.count
}

// flushLocked sends the current batch and releases b.mu. The send
// happens outside the lock so a slow sink does not serialize other
// submitters; swapping the whole batchBuf keeps batches disjoint. Once
// the sink returns — having copied or consumed the batch per its
// contract — the buffer goes back on the free list for the next epoch.
func (b *Batcher) flushLocked() error {
	buf := b.cur
	b.cur = nil
	degraded := b.degraded
	b.mu.Unlock()
	if buf == nil || buf.count == 0 {
		if buf != nil {
			b.putBuf(buf)
		}
		return nil
	}
	var flushStart int64
	if b.stamper != nil {
		flushStart = time.Now().UnixNano()
	}
	sent := buf.count
	var err error
	lost := 0
	if cs, ok := b.sink.(ColumnSink); ok {
		for i := range buf.segs[:buf.nseg] {
			seg := &buf.segs[i]
			if err = cs.SubmitColumns(seg.mids, seg.vals, seg.count, seg.size); err != nil {
				// Count this segment and every unsent one as dropped;
				// the sink may have landed part of the failing segment,
				// which over-counts drops slightly — the safe direction.
				for _, s := range buf.segs[i:buf.nseg] {
					lost += s.count
				}
				break
			}
		}
	} else {
		shares := buf.shares[:0]
		for i := range buf.segs[:buf.nseg] {
			seg := &buf.segs[i]
			for k := 0; k < seg.count; k++ {
				var sh xorcrypt.Share
				copy(sh.MID[:], seg.mids[k*xorcrypt.MIDSize:])
				sh.Payload = seg.vals[k*seg.size : (k+1)*seg.size : (k+1)*seg.size]
				shares = append(shares, sh)
			}
		}
		buf.shares = shares
		if err = b.sink.SubmitBatch(shares); err != nil {
			lost = len(shares)
		}
	}
	b.putBuf(buf)
	if err == nil && b.stamper != nil {
		b.stamper(b.epoch.Load(), b.seq.Add(1)-1, sent, flushStart)
	}
	if err != nil && degraded {
		b.dropped.Add(int64(lost))
		return nil
	}
	return err
}

// SetStamper installs the provenance callback. Install before the
// Batcher is shared across goroutines; a nil stamper (the default)
// costs the flush path nothing, not even a clock read.
func (b *Batcher) SetStamper(fn Stamper) { b.stamper = fn }

// BeginEpoch tags subsequent flushes as carrying epoch e's shares. The
// epoch driver calls it alongside its own per-epoch bookkeeping.
func (b *Batcher) BeginEpoch(e uint64) { b.epoch.Store(e) }

// SetDegraded toggles degraded mode: when on, a failed flush drops the
// batch (counted by Dropped) instead of returning the error, so an
// epoch proceeds while a proxy is down. Set it before the Batcher is
// shared across goroutines.
func (b *Batcher) SetDegraded(on bool) {
	b.mu.Lock()
	b.degraded = on
	b.mu.Unlock()
}

// Dropped returns the number of shares discarded by degraded-mode
// flushes since the Batcher was created.
func (b *Batcher) Dropped() int64 { return b.dropped.Load() }

// getBufLocked pops a recycled batch buffer or builds a fresh one; the
// caller holds b.mu.
func (b *Batcher) getBufLocked() *batchBuf {
	if n := len(b.free); n > 0 {
		buf := b.free[n-1]
		b.free[n-1] = nil
		b.free = b.free[:n-1]
		return buf
	}
	return &batchBuf{}
}

// putBuf resets a consumed batch buffer — truncating every segment's
// lanes in place so their capacity survives — and returns it to the
// free list.
func (b *Batcher) putBuf(buf *batchBuf) {
	for i := range buf.segs[:buf.nseg] {
		seg := &buf.segs[i]
		seg.mids = seg.mids[:0]
		seg.vals = seg.vals[:0]
		seg.count = 0
	}
	buf.nseg = 0
	buf.count = 0
	for i := range buf.shares {
		buf.shares[i].Payload = nil
	}
	buf.shares = buf.shares[:0]
	b.mu.Lock()
	b.free = append(b.free, buf)
	b.mu.Unlock()
}

var _ ShareSink = (*Batcher)(nil)
