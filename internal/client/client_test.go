package client

import (
	"bytes"
	"crypto/ed25519"
	"crypto/rand"
	"errors"
	"sync"
	"testing"
	"time"

	"privapprox/internal/answer"
	"privapprox/internal/budget"
	"privapprox/internal/minisql"
	"privapprox/internal/query"
	"privapprox/internal/rr"
	"privapprox/internal/xorcrypt"
)

// captureSink records submitted shares.
type captureSink struct {
	mu     sync.Mutex
	shares []xorcrypt.Share
	fail   bool
}

func (s *captureSink) Submit(share xorcrypt.Share) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.fail {
		return errors.New("sink down")
	}
	s.shares = append(s.shares, share)
	return nil
}

func (s *captureSink) count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.shares)
}

func testQuery(t *testing.T) *query.Query {
	t.Helper()
	buckets, err := query.UniformRanges(0, 10, 10, true)
	if err != nil {
		t.Fatal(err)
	}
	return &query.Query{
		QID:       query.ID{Analyst: "a", Serial: 1},
		SQL:       "SELECT distance FROM rides",
		Buckets:   buckets,
		Frequency: time.Second,
		Window:    10 * time.Second,
		Slide:     time.Second,
	}
}

func testDB(t *testing.T, distances ...float64) *minisql.DB {
	t.Helper()
	db := minisql.NewDB()
	if err := db.CreateTable("rides", []string{"distance"}); err != nil {
		t.Fatal(err)
	}
	for _, d := range distances {
		if err := db.Insert("rides", []minisql.Value{minisql.Number(d)}); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func testClient(t *testing.T, db *minisql.DB, params budget.Params) (*Client, []*captureSink) {
	t.Helper()
	sinks := []*captureSink{{}, {}}
	c, err := New(Config{
		ID:    "client-1",
		DB:    db,
		Sinks: []ShareSink{sinks[0], sinks[1]},
		Seed:  7,
	})
	if err != nil {
		t.Fatal(err)
	}
	signed := &query.Signed{Query: testQuery(t)}
	if err := c.Subscribe(signed, params); err != nil {
		t.Fatal(err)
	}
	return c, sinks
}

func truthfulParams() budget.Params {
	// p=1 disables randomization so tests can assert the exact vector.
	return budget.Params{S: 1, RR: rr.Params{P: 1, Q: 0.5}}
}

func TestNewValidation(t *testing.T) {
	db := testDB(t)
	if _, err := New(Config{DB: db, Sinks: []ShareSink{&captureSink{}, &captureSink{}}}); err == nil {
		t.Error("expected error for missing ID")
	}
	if _, err := New(Config{ID: "x", Sinks: []ShareSink{&captureSink{}, &captureSink{}}}); err == nil {
		t.Error("expected error for missing DB")
	}
	if _, err := New(Config{ID: "x", DB: db, Sinks: []ShareSink{&captureSink{}}}); err == nil {
		t.Error("expected error for a single proxy")
	}
}

func TestAnswerWithoutSubscription(t *testing.T) {
	db := testDB(t, 1)
	c, err := New(Config{ID: "c", DB: db, Sinks: []ShareSink{&captureSink{}, &captureSink{}}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.AnswerOnce(0); !errors.Is(err, ErrNotSubscribed) {
		t.Errorf("AnswerOnce = %v", err)
	}
	if c.Query() != nil {
		t.Error("Query should be nil before Subscribe")
	}
}

func TestSubscribeVerifiesSignature(t *testing.T) {
	pub, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	db := testDB(t, 1)
	c, err := New(Config{ID: "c", DB: db, AnalystKey: pub,
		Sinks: []ShareSink{&captureSink{}, &captureSink{}}})
	if err != nil {
		t.Fatal(err)
	}
	signed, err := query.Sign(testQuery(t), priv)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Subscribe(signed, truthfulParams()); err != nil {
		t.Fatalf("valid signature rejected: %v", err)
	}
	// Tampered query must be rejected.
	signed.Query.SQL = "SELECT distance FROM rides WHERE distance > 5"
	if err := c.Subscribe(signed, truthfulParams()); err == nil {
		t.Error("tampered query accepted")
	}
}

func TestSubscribeRejectsBadInputs(t *testing.T) {
	db := testDB(t, 1)
	c, _ := New(Config{ID: "c", DB: db, Sinks: []ShareSink{&captureSink{}, &captureSink{}}})
	q := testQuery(t)
	q.SQL = "INSERT INTO rides VALUES (1)"
	if err := c.Subscribe(&query.Signed{Query: q}, truthfulParams()); err == nil {
		t.Error("non-SELECT accepted")
	}
	q2 := testQuery(t)
	q2.SQL = "SELECT FROM"
	if err := c.Subscribe(&query.Signed{Query: q2}, truthfulParams()); err == nil {
		t.Error("unparseable SQL accepted")
	}
	if err := c.Subscribe(&query.Signed{Query: testQuery(t)}, budget.Params{}); err == nil {
		t.Error("invalid params accepted")
	}
}

func TestAnswerOnceProducesDecodableOneHot(t *testing.T) {
	db := testDB(t, 3.5) // bucket [3,4) → index 3
	c, sinks := testClient(t, db, truthfulParams())
	ok, err := c.AnswerOnce(5)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("s=1 client must participate")
	}
	if sinks[0].count() != 1 || sinks[1].count() != 1 {
		t.Fatalf("shares: %d + %d", sinks[0].count(), sinks[1].count())
	}
	plain, err := xorcrypt.Join([]xorcrypt.Share{sinks[0].shares[0], sinks[1].shares[0]})
	if err != nil {
		t.Fatal(err)
	}
	var msg answer.Message
	if err := msg.UnmarshalBinary(plain); err != nil {
		t.Fatal(err)
	}
	if msg.Epoch != 5 {
		t.Errorf("epoch = %d", msg.Epoch)
	}
	if msg.QueryID != testQuery(t).QID.Uint64() {
		t.Error("wire query ID mismatch")
	}
	if msg.Answer.PopCount() != 1 {
		t.Fatalf("truthful answer should be one-hot, got %s", msg.Answer)
	}
	if set, _ := msg.Answer.Get(3); !set {
		t.Errorf("expected bucket 3, vector %s", msg.Answer)
	}
}

func TestAnswerUsesLastRowByDefault(t *testing.T) {
	db := testDB(t, 1.0, 9.5) // last row → bucket 9
	c, sinks := testClient(t, db, truthfulParams())
	if _, err := c.AnswerOnce(0); err != nil {
		t.Fatal(err)
	}
	plain, _ := xorcrypt.Join([]xorcrypt.Share{sinks[0].shares[0], sinks[1].shares[0]})
	var msg answer.Message
	if err := msg.UnmarshalBinary(plain); err != nil {
		t.Fatal(err)
	}
	if set, _ := msg.Answer.Get(9); !set {
		t.Errorf("expected bucket 9, vector %s", msg.Answer)
	}
}

func TestAnswerEmptyDBStillSendsZeroVector(t *testing.T) {
	db := testDB(t) // no rows
	c, sinks := testClient(t, db, truthfulParams())
	ok, err := c.AnswerOnce(0)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("participation must not depend on data presence")
	}
	plain, _ := xorcrypt.Join([]xorcrypt.Share{sinks[0].shares[0], sinks[1].shares[0]})
	var msg answer.Message
	if err := msg.UnmarshalBinary(plain); err != nil {
		t.Fatal(err)
	}
	if msg.Answer.PopCount() != 0 {
		t.Errorf("no-data answer should be all-zero, got %s", msg.Answer)
	}
}

func TestSamplingControlsParticipation(t *testing.T) {
	db := testDB(t, 1)
	params := budget.Params{S: 0.3, RR: rr.Params{P: 1, Q: 0.5}}
	c, _ := testClient(t, db, params)
	const epochs = 5000
	participated := 0
	for e := uint64(0); e < epochs; e++ {
		ok, err := c.AnswerOnce(e)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			participated++
		}
	}
	rate := float64(participated) / epochs
	if rate < 0.25 || rate > 0.35 {
		t.Errorf("participation rate = %v, want ≈0.3", rate)
	}
	st := c.Stats()
	if st.EpochsSeen != epochs || st.Participated != int64(participated) || st.AnswersSent != int64(participated) {
		t.Errorf("stats = %+v", st)
	}
	if st.BytesSent == 0 {
		t.Error("BytesSent not counted")
	}
}

func TestSinkFailurePropagates(t *testing.T) {
	db := testDB(t, 1)
	failing := &captureSink{fail: true}
	c, err := New(Config{ID: "c", DB: db, Sinks: []ShareSink{&captureSink{}, failing}, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Subscribe(&query.Signed{Query: testQuery(t)}, truthfulParams()); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AnswerOnce(0); err == nil {
		t.Error("expected sink failure to surface")
	}
}

func TestReducers(t *testing.T) {
	rows := &minisql.Rows{Rows: [][]minisql.Value{
		{minisql.Number(2)}, {minisql.Number(4)}, {minisql.Number(6)},
	}}
	if v, ok := ReduceLast(rows); !ok || v != "6" {
		t.Errorf("ReduceLast = %q, %v", v, ok)
	}
	if v, ok := ReduceSum(rows); !ok || v != "12" {
		t.Errorf("ReduceSum = %q, %v", v, ok)
	}
	if v, ok := ReduceMean(rows); !ok || v != "4" {
		t.Errorf("ReduceMean = %q, %v", v, ok)
	}
	if v, ok := ReduceCount(rows); !ok || v != "3" {
		t.Errorf("ReduceCount = %q, %v", v, ok)
	}
	empty := &minisql.Rows{}
	if _, ok := ReduceLast(empty); ok {
		t.Error("ReduceLast on empty should report no value")
	}
	if _, ok := ReduceSum(empty); ok {
		t.Error("ReduceSum on empty should report no value")
	}
	if v, ok := ReduceCount(empty); !ok || v != "0" {
		t.Errorf("ReduceCount empty = %q, %v", v, ok)
	}
	// Non-numeric rows are skipped by mean.
	mixed := &minisql.Rows{Rows: [][]minisql.Value{{minisql.Text("x")}}}
	if _, ok := ReduceMean(mixed); ok {
		t.Error("ReduceMean with no numeric rows should report no value")
	}
}

func TestPruneBefore(t *testing.T) {
	db := minisql.NewDB()
	if err := db.CreateTable("rides", []string{"ts", "distance"}); err != nil {
		t.Fatal(err)
	}
	for _, ts := range []float64{100, 200, 300} {
		if err := db.Insert("rides", []minisql.Value{minisql.Number(ts), minisql.Number(1)}); err != nil {
			t.Fatal(err)
		}
	}
	c, err := New(Config{ID: "c", DB: db, Sinks: []ShareSink{&captureSink{}, &captureSink{}}})
	if err != nil {
		t.Fatal(err)
	}
	removed, err := c.PruneBefore("rides", time.Unix(250, 0))
	if err != nil {
		t.Fatal(err)
	}
	if removed != 2 {
		t.Errorf("removed = %d, want 2", removed)
	}
	n, _ := db.RowCount("rides")
	if n != 1 {
		t.Errorf("remaining = %d", n)
	}
}

// copySink deep-copies submitted share payloads (the client reuses its
// split scratch across epochs, so retaining the slices would alias).
type copySink struct {
	payloads [][]byte
}

func (s *copySink) Submit(share xorcrypt.Share) error {
	s.payloads = append(s.payloads, append([]byte(nil), share.Payload...))
	return nil
}

// joinedAnswers XOR-joins the two sinks' share streams pairwise,
// recovering the plaintext answer message of each participating epoch.
func joinedAnswers(t *testing.T, a, b *copySink) [][]byte {
	t.Helper()
	if len(a.payloads) != len(b.payloads) {
		t.Fatalf("share streams diverge: %d vs %d", len(a.payloads), len(b.payloads))
	}
	out := make([][]byte, len(a.payloads))
	for i := range a.payloads {
		if len(a.payloads[i]) != len(b.payloads[i]) {
			t.Fatalf("share %d length mismatch", i)
		}
		j := make([]byte, len(a.payloads[i]))
		for k := range j {
			j[k] = a.payloads[i][k] ^ b.payloads[i][k]
		}
		out[i] = j
	}
	return out
}

// TestFastForwardReproducesCoinStream: a client restarted at epoch k and
// fast-forwarded must produce, for epochs k.., exactly the randomized
// answers the uninterrupted client produces — including across epochs
// the sampling decision skips (which consume no randomness).
func TestFastForwardReproducesCoinStream(t *testing.T) {
	// s < 1 exercises non-participating epochs; p < 1 makes the
	// randomizer actually consume coins.
	params := budget.Params{S: 0.7, RR: rr.Params{P: 0.9, Q: 0.6}}
	const epochs, resumeAt = 8, 3

	build := func() (*Client, []*copySink) {
		sinks := []*copySink{{}, {}}
		c, err := New(Config{
			ID:    "client-ff",
			DB:    testDB(t, 4.2),
			Sinks: []ShareSink{sinks[0], sinks[1]},
			Seed:  7,
		})
		if err != nil {
			t.Fatal(err)
		}
		_, priv, err := ed25519.GenerateKey(rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		signed, err := query.Sign(testQuery(t), priv)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.SubscribeQuery(signed, priv.Public().(ed25519.PublicKey), params); err != nil {
			t.Fatal(err)
		}
		return c, sinks
	}

	// Uninterrupted run over all epochs.
	full, fullSinks := build()
	participated := make([]bool, epochs)
	for e := uint64(0); e < epochs; e++ {
		ok, err := full.AnswerOnce(e)
		if err != nil {
			t.Fatal(err)
		}
		participated[e] = ok
	}
	fullJoined := joinedAnswers(t, fullSinks[0], fullSinks[1])

	// How many answers belong to the epochs before the resume point?
	skipAnswers := 0
	anySkipped := false
	for e := 0; e < resumeAt; e++ {
		if participated[e] {
			skipAnswers++
		} else {
			anySkipped = true
		}
	}
	for e := resumeAt; e < epochs; e++ {
		if !participated[e] {
			anySkipped = true
		}
	}
	if !anySkipped {
		t.Fatal("test never exercised a skipped epoch; lower S")
	}

	// Restarted run: subscribe fresh, fast-forward, answer the rest.
	resumed, resumedSinks := build()
	resumed.FastForward(resumeAt)
	for e := uint64(resumeAt); e < epochs; e++ {
		ok, err := resumed.AnswerOnce(e)
		if err != nil {
			t.Fatal(err)
		}
		if ok != participated[e] {
			t.Fatalf("epoch %d participation diverged after fast-forward", e)
		}
	}
	resumedJoined := joinedAnswers(t, resumedSinks[0], resumedSinks[1])

	want := fullJoined[skipAnswers:]
	if len(resumedJoined) != len(want) {
		t.Fatalf("resumed run sent %d answers, want %d", len(resumedJoined), len(want))
	}
	for i := range want {
		if !bytes.Equal(resumedJoined[i], want[i]) {
			t.Fatalf("answer %d after fast-forward differs from uninterrupted run", i)
		}
	}

	// Without the fast-forward the coin streams must diverge somewhere —
	// otherwise this test proves nothing.
	cold, coldSinks := build()
	for e := uint64(resumeAt); e < epochs; e++ {
		if _, err := cold.AnswerOnce(e); err != nil {
			t.Fatal(err)
		}
	}
	coldJoined := joinedAnswers(t, coldSinks[0], coldSinks[1])
	same := len(coldJoined) == len(want)
	if same {
		for i := range want {
			if !bytes.Equal(coldJoined[i], want[i]) {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("skipping FastForward changed nothing; the test workload is degenerate")
	}
}

// TestShedPreservesCoinStream is the client-side determinism property
// of load shedding: a shed-suppressed epoch must consume exactly the
// randomness a full answer would, so on every epoch the shedding client
// *does* answer, its transmitted plaintext is identical to an unshed
// twin's. (Shares are compared post-join — the XOR keystream is not
// seed-derived, only the plaintext is.)
func TestShedPreservesCoinStream(t *testing.T) {
	params := budget.Params{S: 0.8, RR: rr.Params{P: 0.75, Q: 0.5}}
	id := testQuery(t).QID
	build := func() (*Client, []*copySink) {
		sinks := []*copySink{{}, {}}
		c, err := New(Config{
			ID:    "client-1",
			DB:    testDB(t, 3.5),
			Sinks: []ShareSink{sinks[0], sinks[1]},
			Seed:  7,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Subscribe(&query.Signed{Query: testQuery(t)}, params); err != nil {
			t.Fatal(err)
		}
		return c, sinks
	}
	shedder, shedSinks := build()
	plain, plainSinks := build()
	if !shedder.SetShed(id, 0.4) {
		t.Fatal("SetShed on active query returned false")
	}
	if shedder.SetShed(query.ID{Analyst: "ghost", Serial: 1}, 0.4) {
		t.Fatal("SetShed on unknown query returned true")
	}
	shedder.SetShed(id, 1)

	const epochs = 40
	shedFrom, shedTo := uint64(10), uint64(25)
	for e := uint64(0); e < epochs; e++ {
		if e == shedFrom {
			shedder.SetShed(id, 0.4)
		}
		if e == shedTo {
			shedder.SetShed(id, 1)
		}
		if _, err := shedder.AnswerOnce(e); err != nil {
			t.Fatal(err)
		}
		if _, err := plain.AnswerOnce(e); err != nil {
			t.Fatal(err)
		}
	}

	shedStats, plainStats := shedder.Stats(), plain.Stats()
	if shedStats.Shedded == 0 {
		t.Fatal("shed window suppressed nothing — test is vacuous")
	}
	if shedStats.AnswersSent+shedStats.Shedded != plainStats.AnswersSent {
		t.Fatalf("shedder sent %d + shed %d, plain sent %d — base participation diverged",
			shedStats.AnswersSent, shedStats.Shedded, plainStats.AnswersSent)
	}

	decodeByEpoch := func(joined [][]byte) map[uint64][]byte {
		out := make(map[uint64][]byte, len(joined))
		for _, raw := range joined {
			var msg answer.Message
			if err := msg.UnmarshalBinary(raw); err != nil {
				t.Fatalf("joined plaintext undecodable: %v", err)
			}
			out[msg.Epoch] = raw
		}
		return out
	}
	shedAnswers := decodeByEpoch(joinedAnswers(t, shedSinks[0], shedSinks[1]))
	plainAnswers := decodeByEpoch(joinedAnswers(t, plainSinks[0], plainSinks[1]))
	if len(shedAnswers) >= len(plainAnswers) {
		t.Fatalf("shed run answered %d epochs, unshed %d — shedding removed nothing",
			len(shedAnswers), len(plainAnswers))
	}
	for e, raw := range shedAnswers {
		want, ok := plainAnswers[e]
		if !ok {
			t.Fatalf("epoch %d: shed run answered but unshed run did not — shed set not nested", e)
		}
		if !bytes.Equal(raw, want) {
			t.Fatalf("epoch %d: shed run's answer differs from unshed twin — rz stream shifted", e)
		}
	}
}
