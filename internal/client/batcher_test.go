package client

import (
	"sync"
	"testing"

	"privapprox/internal/xorcrypt"
)

// recordingSink counts batches and shares it receives, deep-copying
// each batch per the BatchSink contract (the Batcher recycles the slice
// and arena after SubmitBatch returns).
type recordingSink struct {
	mu      sync.Mutex
	batches [][]xorcrypt.Share
}

func (r *recordingSink) SubmitBatch(shares []xorcrypt.Share) error {
	cp := make([]xorcrypt.Share, len(shares))
	for i, sh := range shares {
		cp[i] = xorcrypt.Share{MID: sh.MID, Payload: append([]byte(nil), sh.Payload...)}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.batches = append(r.batches, cp)
	return nil
}

func (r *recordingSink) totals() (batches, shares int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, b := range r.batches {
		shares += len(b)
	}
	return len(r.batches), shares
}

func share(i int) xorcrypt.Share {
	var mid xorcrypt.MID
	mid[0], mid[1] = byte(i), byte(i>>8)
	return xorcrypt.Share{MID: mid, Payload: []byte{byte(i)}}
}

func TestBatcherFlushDelivesEverythingInOneBatch(t *testing.T) {
	sink := &recordingSink{}
	b := NewBatcher(sink, 0)
	const n = 37
	for i := 0; i < n; i++ {
		if err := b.Submit(share(i)); err != nil {
			t.Fatal(err)
		}
	}
	if got := b.Pending(); got != n {
		t.Fatalf("Pending = %d", got)
	}
	if err := b.Flush(); err != nil {
		t.Fatal(err)
	}
	batches, shares := sink.totals()
	if batches != 1 || shares != n {
		t.Fatalf("sink saw %d batches / %d shares, want 1 / %d", batches, shares, n)
	}
	// Empty flush is a no-op, not an empty batch.
	if err := b.Flush(); err != nil {
		t.Fatal(err)
	}
	if batches, _ := sink.totals(); batches != 1 {
		t.Errorf("empty Flush produced a batch")
	}
}

func TestBatcherAutoFlushAtLimit(t *testing.T) {
	sink := &recordingSink{}
	b := NewBatcher(sink, 8)
	for i := 0; i < 20; i++ {
		if err := b.Submit(share(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Flush(); err != nil {
		t.Fatal(err)
	}
	batches, shares := sink.totals()
	if shares != 20 {
		t.Fatalf("shares = %d", shares)
	}
	if batches != 3 { // 8 + 8 + 4
		t.Errorf("batches = %d, want 3", batches)
	}
}

func TestBatcherConcurrentSubmitters(t *testing.T) {
	sink := &recordingSink{}
	b := NewBatcher(sink, 16)
	const goroutines = 8
	const each = 100
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				if err := b.Submit(share(g*each + i)); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if err := b.Flush(); err != nil {
		t.Fatal(err)
	}
	_, shares := sink.totals()
	if shares != goroutines*each {
		t.Fatalf("shares = %d, want %d", shares, goroutines*each)
	}
}

// TestBatcherCopiesPayloadOnSubmit pins the ownership contract: the
// caller may overwrite its payload buffer immediately after Submit
// returns, and the flushed batch must still carry the original bytes.
func TestBatcherCopiesPayloadOnSubmit(t *testing.T) {
	sink := &recordingSink{}
	b := NewBatcher(sink, 0)
	buf := []byte{1, 2, 3, 4}
	var mid xorcrypt.MID
	if err := b.Submit(xorcrypt.Share{MID: mid, Payload: buf}); err != nil {
		t.Fatal(err)
	}
	copy(buf, []byte{9, 9, 9, 9}) // caller reuses its scratch
	if err := b.Flush(); err != nil {
		t.Fatal(err)
	}
	sink.mu.Lock()
	defer sink.mu.Unlock()
	got := sink.batches[0][0].Payload
	if string(got) != string([]byte{1, 2, 3, 4}) {
		t.Fatalf("batch saw %v; Submit must copy the payload", got)
	}
}

// TestBatcherRecyclesBuffers: after a flush cycle the next epoch's
// batch must reuse the same lane storage instead of growing fresh
// arenas.
func TestBatcherRecyclesBuffers(t *testing.T) {
	sink := &recordingSink{}
	b := NewBatcher(sink, 0)
	fill := func() {
		for i := 0; i < 10; i++ {
			if err := b.Submit(share(i)); err != nil {
				t.Fatal(err)
			}
		}
	}
	lane := func() (*byte, *byte) {
		b.mu.Lock()
		defer b.mu.Unlock()
		seg := &b.cur.segs[0]
		return &seg.mids[0], &seg.vals[0]
	}
	fill()
	firstMIDs, firstVals := lane()
	if err := b.Flush(); err != nil {
		t.Fatal(err)
	}
	fill()
	secondMIDs, secondVals := lane()
	if firstMIDs != secondMIDs || firstVals != secondVals {
		t.Error("batch lanes were not recycled across flushes")
	}
	if err := b.Flush(); err != nil {
		t.Fatal(err)
	}
}
