package client

import (
	"privapprox/internal/telemetry"
)

// AppendSamples implements telemetry.Source over the batcher's
// degraded-mode accounting: shares dropped because a dead sink
// (after its own retries) refused a flush, and shares currently
// buffered. Per-client answer counters are fleet-scale, so they are
// aggregated by whoever owns the fleet (core.System, the node client
// role) rather than exported one source per client.
func (b *Batcher) AppendSamples(dst []telemetry.Sample) []telemetry.Sample {
	return append(dst,
		telemetry.Sample{Name: "privapprox_batcher_dropped_total", Value: float64(b.Dropped()), Kind: telemetry.KindCounter},
		telemetry.Sample{Name: "privapprox_batcher_pending", Value: float64(b.Pending()), Kind: telemetry.KindGauge},
	)
}

var _ telemetry.Source = (*Batcher)(nil)

// SumStats folds many clients' counters into one fleet-level snapshot
// — the aggregation registries export instead of per-client series.
func SumStats(clients []*Client) Stats {
	var s Stats
	for _, c := range clients {
		cs := c.Stats()
		s.EpochsSeen += cs.EpochsSeen
		s.Participated += cs.Participated
		s.AnswersSent += cs.AnswersSent
		s.BytesSent += cs.BytesSent
		s.Shedded += cs.Shedded
	}
	return s
}

// AppendFleetSamples renders a fleet-level client snapshot as
// telemetry samples.
func AppendFleetSamples(dst []telemetry.Sample, s Stats) []telemetry.Sample {
	return append(dst,
		telemetry.Sample{Name: "privapprox_client_epochs_seen_total", Value: float64(s.EpochsSeen), Kind: telemetry.KindCounter},
		telemetry.Sample{Name: "privapprox_client_participated_total", Value: float64(s.Participated), Kind: telemetry.KindCounter},
		telemetry.Sample{Name: "privapprox_client_answers_sent_total", Value: float64(s.AnswersSent), Kind: telemetry.KindCounter},
		telemetry.Sample{Name: "privapprox_client_bytes_sent_total", Value: float64(s.BytesSent), Kind: telemetry.KindCounter},
		telemetry.Sample{Name: "privapprox_client_shedded_total", Value: float64(s.Shedded), Kind: telemetry.KindCounter},
	)
}
