package stats

import (
	"fmt"
	"math"
	"strings"
)

// Histogram is a fixed-bucket counter used for query results: bucket i
// holds the (estimated) number of answers that fell in range i.
type Histogram struct {
	counts []float64
}

// NewHistogram returns a histogram with n buckets, all zero.
func NewHistogram(n int) *Histogram {
	return &Histogram{counts: make([]float64, n)}
}

// Buckets returns the number of buckets.
func (h *Histogram) Buckets() int { return len(h.counts) }

// Add increments bucket i by delta.
func (h *Histogram) Add(i int, delta float64) {
	h.counts[i] += delta
}

// Count returns the value of bucket i.
func (h *Histogram) Count(i int) float64 { return h.counts[i] }

// SetCount overwrites bucket i.
func (h *Histogram) SetCount(i int, v float64) { h.counts[i] = v }

// Counts returns a copy of the per-bucket values.
func (h *Histogram) Counts() []float64 {
	out := make([]float64, len(h.counts))
	copy(out, h.counts)
	return out
}

// Total returns the sum over all buckets.
func (h *Histogram) Total() float64 {
	s := 0.0
	for _, c := range h.counts {
		s += c
	}
	return s
}

// Normalize returns per-bucket fractions that sum to 1 (or all zeros when
// the histogram is empty).
func (h *Histogram) Normalize() []float64 {
	out := make([]float64, len(h.counts))
	tot := h.Total()
	if tot == 0 {
		return out
	}
	for i, c := range h.counts {
		out[i] = c / tot
	}
	return out
}

// MergeFrom adds every bucket of o into h. The histograms must have the
// same number of buckets.
func (h *Histogram) MergeFrom(o *Histogram) error {
	if len(h.counts) != len(o.counts) {
		return fmt.Errorf("stats: merging histograms with %d and %d buckets", len(h.counts), len(o.counts))
	}
	for i, c := range o.counts {
		h.counts[i] += c
	}
	return nil
}

// MeanAbsRelativeError returns the mean over buckets of the relative error
// between the estimated and exact histograms, skipping exact-zero buckets.
// This is the per-histogram generalization of the paper's accuracy loss.
func MeanAbsRelativeError(estimate, exact *Histogram) (float64, error) {
	if estimate.Buckets() != exact.Buckets() {
		return 0, fmt.Errorf("stats: comparing histograms with %d and %d buckets", estimate.Buckets(), exact.Buckets())
	}
	var sum float64
	var n int
	for i := range exact.counts {
		if exact.counts[i] == 0 {
			continue
		}
		sum += math.Abs(estimate.counts[i]-exact.counts[i]) / math.Abs(exact.counts[i])
		n++
	}
	if n == 0 {
		return 0, nil
	}
	return sum / float64(n), nil
}

// String renders the histogram as one line of counts, handy in examples.
func (h *Histogram) String() string {
	var b strings.Builder
	b.WriteByte('[')
	for i, c := range h.counts {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%.1f", c)
	}
	b.WriteByte(']')
	return b.String()
}
