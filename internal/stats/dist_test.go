package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestNormalCDFKnownValues(t *testing.T) {
	cases := []struct {
		x, want float64
	}{
		{0, 0.5},
		{1.959963984540054, 0.975},
		{-1.959963984540054, 0.025},
		{1, 0.8413447460685429},
		{-2.5758293035489004, 0.005},
	}
	for _, c := range cases {
		if got := NormalCDF(c.x); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("NormalCDF(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestNormalQuantileKnownValues(t *testing.T) {
	cases := []struct {
		p, want float64
	}{
		{0.5, 0},
		{0.975, 1.959963984540054},
		{0.025, -1.959963984540054},
		{0.995, 2.5758293035489004},
		{0.05, -1.6448536269514722},
		{0.999999, 4.753424308822899},
	}
	for _, c := range cases {
		got, err := NormalQuantile(c.p)
		if err != nil {
			t.Fatalf("NormalQuantile(%v): %v", c.p, err)
		}
		if !almostEqual(got, c.want, 1e-9) {
			t.Errorf("NormalQuantile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestNormalQuantileRejectsDomain(t *testing.T) {
	for _, p := range []float64{0, 1, -0.5, 1.5, math.NaN()} {
		if _, err := NormalQuantile(p); err == nil {
			t.Errorf("NormalQuantile(%v): expected error", p)
		}
	}
}

func TestNormalQuantileInvertsCDF(t *testing.T) {
	f := func(raw float64) bool {
		p := math.Mod(math.Abs(raw), 0.98) + 0.01 // map into (0.01, 0.99)
		x, err := NormalQuantile(p)
		if err != nil {
			return false
		}
		return almostEqual(NormalCDF(x), p, 1e-10)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRegIncBetaKnownValues(t *testing.T) {
	cases := []struct {
		a, b, x, want float64
	}{
		{1, 1, 0.3, 0.3},                  // uniform
		{2, 2, 0.5, 0.5},                  // symmetric
		{0.5, 0.5, 0.5, 0.5},              // arcsine distribution median
		{2, 3, 0.4, 0.5248},               // I_0.4(2,3) = 1-(1-x)^3(1+3x) ... check below
		{5, 1, 0.9, math.Pow(0.9, 5)},     // I_x(a,1) = x^a
		{1, 5, 0.1, 1 - math.Pow(0.9, 5)}, // I_x(1,b) = 1-(1-x)^b
	}
	for _, c := range cases {
		got, err := RegIncBeta(c.a, c.b, c.x)
		if err != nil {
			t.Fatalf("RegIncBeta(%v,%v,%v): %v", c.a, c.b, c.x, err)
		}
		if !almostEqual(got, c.want, 1e-4) {
			t.Errorf("RegIncBeta(%v,%v,%v) = %v, want %v", c.a, c.b, c.x, got, c.want)
		}
	}
}

func TestRegIncBetaBounds(t *testing.T) {
	if v, _ := RegIncBeta(3, 4, 0); v != 0 {
		t.Errorf("I_0 = %v, want 0", v)
	}
	if v, _ := RegIncBeta(3, 4, 1); v != 1 {
		t.Errorf("I_1 = %v, want 1", v)
	}
	if _, err := RegIncBeta(-1, 1, 0.5); err == nil {
		t.Error("expected error for a <= 0")
	}
}

func TestStudentTCDFSymmetry(t *testing.T) {
	f := func(raw float64, dfRaw uint8) bool {
		x := math.Mod(math.Abs(raw), 10)
		df := float64(dfRaw%100) + 1
		lo, err1 := StudentTCDF(-x, df)
		hi, err2 := StudentTCDF(x, df)
		if err1 != nil || err2 != nil {
			return false
		}
		return almostEqual(lo+hi, 1, 1e-10)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Reference two-sided 97.5% critical values from standard t tables.
func TestStudentTQuantileTable(t *testing.T) {
	cases := []struct {
		df   float64
		want float64
	}{
		{1, 12.7062},
		{2, 4.30265},
		{5, 2.57058},
		{10, 2.22814},
		{29, 2.04523},
		{100, 1.98397},
		{1000, 1.96234},
	}
	for _, c := range cases {
		got, err := StudentTQuantile(0.975, c.df)
		if err != nil {
			t.Fatalf("StudentTQuantile(0.975, %v): %v", c.df, err)
		}
		if !almostEqual(got, c.want, 5e-4) {
			t.Errorf("t(0.975, df=%v) = %v, want %v", c.df, got, c.want)
		}
	}
}

func TestStudentTQuantileMedianIsZero(t *testing.T) {
	got, err := StudentTQuantile(0.5, 7)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Errorf("median = %v, want 0", got)
	}
}

func TestStudentTQuantileInvertsCDF(t *testing.T) {
	f := func(rawP float64, dfRaw uint8) bool {
		p := math.Mod(math.Abs(rawP), 0.9) + 0.05
		df := float64(dfRaw%60) + 1
		x, err := StudentTQuantile(p, df)
		if err != nil {
			return false
		}
		c, err := StudentTCDF(x, df)
		if err != nil {
			return false
		}
		return almostEqual(c, p, 1e-8)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStudentTLargeDFApproachesNormal(t *testing.T) {
	tq, err := StudentTQuantile(0.975, 2e7)
	if err != nil {
		t.Fatal(err)
	}
	nq, err := NormalQuantile(0.975)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(tq, nq, 1e-6) {
		t.Errorf("t quantile at huge df = %v, normal = %v", tq, nq)
	}
}

func TestTCritical(t *testing.T) {
	got, err := TCritical(0.05, 29)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(got, 2.04523, 5e-4) {
		t.Errorf("TCritical(0.05, 29) = %v, want 2.04523", got)
	}
	if _, err := TCritical(0, 5); err == nil {
		t.Error("expected error for alpha = 0")
	}
	if _, err := TCritical(0.05, 0); err == nil {
		t.Error("expected error for df = 0")
	}
}
