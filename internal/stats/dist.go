// Package stats provides the statistical machinery PrivApprox relies on:
// Student-t and normal distributions for confidence intervals (paper
// Eq. 3), running sample moments, and histogram utilities used by the
// error-estimation module of the aggregator.
//
// Everything is implemented from scratch on top of math so the module
// stays dependency-free.
package stats

import (
	"errors"
	"math"
)

// ErrInvalidParam reports an out-of-domain distribution parameter.
var ErrInvalidParam = errors.New("stats: invalid parameter")

// NormalCDF returns the standard normal cumulative distribution function
// evaluated at x.
func NormalCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}

// NormalQuantile returns the standard normal quantile (inverse CDF) at
// probability p in (0, 1). It uses Acklam's rational approximation with a
// single Halley refinement step, giving ~1e-15 absolute accuracy.
func NormalQuantile(p float64) (float64, error) {
	if math.IsNaN(p) || p <= 0 || p >= 1 {
		return 0, ErrInvalidParam
	}
	// Coefficients for Acklam's approximation.
	a := [6]float64{
		-3.969683028665376e+01, 2.209460984245205e+02,
		-2.759285104469687e+02, 1.383577518672690e+02,
		-3.066479806614716e+01, 2.506628277459239e+00,
	}
	b := [5]float64{
		-5.447609879822406e+01, 1.615858368580409e+02,
		-1.556989798598866e+02, 6.680131188771972e+01,
		-1.328068155288572e+01,
	}
	c := [6]float64{
		-7.784894002430293e-03, -3.223964580411365e-01,
		-2.400758277161838e+00, -2.549732539343734e+00,
		4.374664141464968e+00, 2.938163982698783e+00,
	}
	d := [4]float64{
		7.784695709041462e-03, 3.224671290700398e-01,
		2.445134137142996e+00, 3.754408661907416e+00,
	}
	const pLow = 0.02425
	var x float64
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		x = (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= 1-pLow:
		q := p - 0.5
		r := q * q
		x = (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		x = -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
	// One step of Halley's method against the true CDF.
	e := NormalCDF(x) - p
	u := e * math.Sqrt(2*math.Pi) * math.Exp(x*x/2)
	x = x - u/(1+x*u/2)
	return x, nil
}

// lnBeta returns ln(B(a, b)).
func lnBeta(a, b float64) float64 {
	la, _ := math.Lgamma(a)
	lb, _ := math.Lgamma(b)
	lab, _ := math.Lgamma(a + b)
	return la + lb - lab
}

// RegIncBeta returns the regularized incomplete beta function I_x(a, b),
// computed with the Lentz continued-fraction expansion.
func RegIncBeta(a, b, x float64) (float64, error) {
	if a <= 0 || b <= 0 || x < 0 || x > 1 || math.IsNaN(x) {
		return 0, ErrInvalidParam
	}
	if x == 0 {
		return 0, nil
	}
	if x == 1 {
		return 1, nil
	}
	// Front factor x^a (1-x)^b / (a B(a,b)).
	lnFront := a*math.Log(x) + b*math.Log(1-x) - lnBeta(a, b)
	if x < (a+1)/(a+b+2) {
		cf := betaContinuedFraction(a, b, x)
		return math.Exp(lnFront) * cf / a, nil
	}
	// Use the symmetry relation for faster convergence.
	cf := betaContinuedFraction(b, a, 1-x)
	lnFrontSym := b*math.Log(1-x) + a*math.Log(x) - lnBeta(a, b)
	return 1 - math.Exp(lnFrontSym)*cf/b, nil
}

// betaContinuedFraction evaluates the continued fraction for the
// incomplete beta function by the modified Lentz method.
func betaContinuedFraction(a, b, x float64) float64 {
	const (
		maxIter = 500
		eps     = 3e-16
		fpMin   = 1e-300
	)
	qab := a + b
	qap := a + 1
	qam := a - 1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < fpMin {
		d = fpMin
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		m2 := float64(2 * m)
		fm := float64(m)
		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpMin {
			d = fpMin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpMin {
			c = fpMin
		}
		d = 1 / d
		h *= d * c
		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpMin {
			d = fpMin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpMin {
			c = fpMin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}

// StudentTCDF returns the CDF of the Student t distribution with df
// degrees of freedom, evaluated at t.
func StudentTCDF(t, df float64) (float64, error) {
	if df <= 0 {
		return 0, ErrInvalidParam
	}
	if math.IsInf(t, 1) {
		return 1, nil
	}
	if math.IsInf(t, -1) {
		return 0, nil
	}
	x := df / (df + t*t)
	ib, err := RegIncBeta(df/2, 0.5, x)
	if err != nil {
		return 0, err
	}
	if t >= 0 {
		return 1 - 0.5*ib, nil
	}
	return 0.5 * ib, nil
}

// StudentTQuantile returns the quantile of the Student t distribution with
// df degrees of freedom at probability p in (0, 1). For large df it falls
// back on the normal quantile; otherwise it refines a normal-based initial
// guess by bisection on the exact CDF.
func StudentTQuantile(p, df float64) (float64, error) {
	if p <= 0 || p >= 1 || df <= 0 || math.IsNaN(p) {
		return 0, ErrInvalidParam
	}
	if p == 0.5 {
		return 0, nil
	}
	if df > 1e7 {
		return NormalQuantile(p)
	}
	z, err := NormalQuantile(p)
	if err != nil {
		return 0, err
	}
	// Cornish–Fisher style expansion as the initial guess.
	g1 := (z*z*z + z) / 4
	g2 := (5*z*z*z*z*z + 16*z*z*z + 3*z) / 96
	guess := z + g1/df + g2/(df*df)

	// Bracket the root around the guess, then bisect.
	lo, hi := guess-2, guess+2
	for i := 0; i < 64; i++ {
		c, err := StudentTCDF(lo, df)
		if err != nil {
			return 0, err
		}
		if c < p {
			break
		}
		lo -= 4
	}
	for i := 0; i < 64; i++ {
		c, err := StudentTCDF(hi, df)
		if err != nil {
			return 0, err
		}
		if c > p {
			break
		}
		hi += 4
	}
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		c, err := StudentTCDF(mid, df)
		if err != nil {
			return 0, err
		}
		if c < p {
			lo = mid
		} else {
			hi = mid
		}
		if hi-lo < 1e-12 {
			break
		}
	}
	return (lo + hi) / 2, nil
}

// TCritical returns the two-sided critical value t_{1-alpha/2, df} used in
// the paper's Eq. 3 error bound. For example alpha = 0.05 gives the 95%
// confidence multiplier.
func TCritical(alpha float64, df int) (float64, error) {
	if alpha <= 0 || alpha >= 1 || df < 1 {
		return 0, ErrInvalidParam
	}
	return StudentTQuantile(1-alpha/2, float64(df))
}
