package stats

import (
	"strings"
	"testing"
)

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram(3)
	if h.Buckets() != 3 {
		t.Fatalf("Buckets = %d, want 3", h.Buckets())
	}
	h.Add(0, 2)
	h.Add(1, 3)
	h.Add(1, 1)
	if h.Count(0) != 2 || h.Count(1) != 4 || h.Count(2) != 0 {
		t.Errorf("counts = %v", h.Counts())
	}
	if h.Total() != 6 {
		t.Errorf("Total = %v, want 6", h.Total())
	}
	h.SetCount(2, 4)
	if h.Count(2) != 4 {
		t.Error("SetCount failed")
	}
}

func TestHistogramNormalize(t *testing.T) {
	h := NewHistogram(2)
	if n := h.Normalize(); n[0] != 0 || n[1] != 0 {
		t.Error("empty histogram should normalize to zeros")
	}
	h.Add(0, 1)
	h.Add(1, 3)
	n := h.Normalize()
	if !almostEqual(n[0], 0.25, 1e-12) || !almostEqual(n[1], 0.75, 1e-12) {
		t.Errorf("Normalize = %v", n)
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b := NewHistogram(2), NewHistogram(2)
	a.Add(0, 1)
	b.Add(0, 2)
	b.Add(1, 5)
	if err := a.MergeFrom(b); err != nil {
		t.Fatal(err)
	}
	if a.Count(0) != 3 || a.Count(1) != 5 {
		t.Errorf("merged counts = %v", a.Counts())
	}
	c := NewHistogram(3)
	if err := a.MergeFrom(c); err == nil {
		t.Error("expected bucket-mismatch error")
	}
}

func TestHistogramCountsIsCopy(t *testing.T) {
	h := NewHistogram(1)
	h.Add(0, 1)
	c := h.Counts()
	c[0] = 99
	if h.Count(0) != 1 {
		t.Error("Counts should return a copy")
	}
}

func TestMeanAbsRelativeError(t *testing.T) {
	exact := NewHistogram(3)
	exact.SetCount(0, 100)
	exact.SetCount(1, 200)
	// Bucket 2 stays 0 and must be skipped.
	est := NewHistogram(3)
	est.SetCount(0, 110) // 10% off
	est.SetCount(1, 180) // 10% off
	est.SetCount(2, 5)   // ignored
	got, err := MeanAbsRelativeError(est, exact)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(got, 0.1, 1e-12) {
		t.Errorf("MeanAbsRelativeError = %v, want 0.1", got)
	}
	if _, err := MeanAbsRelativeError(NewHistogram(2), exact); err == nil {
		t.Error("expected bucket-mismatch error")
	}
	allZero := NewHistogram(3)
	if v, err := MeanAbsRelativeError(est, allZero); err != nil || v != 0 {
		t.Errorf("all-zero exact: got %v, %v", v, err)
	}
}

func TestHistogramString(t *testing.T) {
	h := NewHistogram(2)
	h.Add(0, 1.25)
	s := h.String()
	if !strings.HasPrefix(s, "[") || !strings.HasSuffix(s, "]") {
		t.Errorf("String = %q", s)
	}
}
