package stats

import "math"

// Running accumulates sample moments incrementally using Welford's
// algorithm, so windowed error estimation never needs to buffer values.
// The zero value is ready to use.
type Running struct {
	n    int64
	mean float64
	m2   float64
	sum  float64
	min  float64
	max  float64
}

// Add folds x into the accumulator.
func (r *Running) Add(x float64) {
	r.n++
	if r.n == 1 {
		r.min, r.max = x, x
	} else {
		if x < r.min {
			r.min = x
		}
		if x > r.max {
			r.max = x
		}
	}
	r.sum += x
	delta := x - r.mean
	r.mean += delta / float64(r.n)
	r.m2 += delta * (x - r.mean)
}

// Merge folds another accumulator into r (parallel Welford merge), which
// lets per-partition statistics combine at the aggregator.
func (r *Running) Merge(o Running) {
	if o.n == 0 {
		return
	}
	if r.n == 0 {
		*r = o
		return
	}
	n1, n2 := float64(r.n), float64(o.n)
	delta := o.mean - r.mean
	tot := n1 + n2
	r.mean += delta * n2 / tot
	r.m2 += o.m2 + delta*delta*n1*n2/tot
	r.sum += o.sum
	r.n += o.n
	if o.min < r.min {
		r.min = o.min
	}
	if o.max > r.max {
		r.max = o.max
	}
}

// FromRaw builds an accumulator directly from precomputed moments. It is
// used when a caller already knows the counts analytically (for example a
// window holding y ones and n−y zeros) and wants to skip the O(n) loop.
func FromRaw(n int64, mean, m2, sum, min, max float64) Running {
	return Running{n: n, mean: mean, m2: m2, sum: sum, min: min, max: max}
}

// N returns the number of samples observed.
func (r *Running) N() int64 { return r.n }

// Sum returns the running sum.
func (r *Running) Sum() float64 { return r.sum }

// Mean returns the sample mean, or 0 for an empty accumulator.
func (r *Running) Mean() float64 { return r.mean }

// Min returns the smallest observed value, or 0 for an empty accumulator.
func (r *Running) Min() float64 { return r.min }

// Max returns the largest observed value, or 0 for an empty accumulator.
func (r *Running) Max() float64 { return r.max }

// Variance returns the unbiased sample variance (n-1 denominator); it is 0
// for fewer than two samples.
func (r *Running) Variance() float64 {
	if r.n < 2 {
		return 0
	}
	return r.m2 / float64(r.n-1)
}

// StdDev returns the unbiased sample standard deviation.
func (r *Running) StdDev() float64 { return math.Sqrt(r.Variance()) }

// Mean returns the arithmetic mean of xs, or 0 for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased sample variance of xs; it is 0 for fewer
// than two values.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs)-1)
}

// ConfidenceInterval is a symmetric interval Estimate ± Margin carrying
// the confidence level it was computed at.
type ConfidenceInterval struct {
	Estimate   float64
	Margin     float64
	Confidence float64 // e.g. 0.95
}

// Lo returns the lower endpoint.
func (ci ConfidenceInterval) Lo() float64 { return ci.Estimate - ci.Margin }

// Hi returns the upper endpoint.
func (ci ConfidenceInterval) Hi() float64 { return ci.Estimate + ci.Margin }

// Contains reports whether v lies inside the interval.
func (ci ConfidenceInterval) Contains(v float64) bool {
	return v >= ci.Lo() && v <= ci.Hi()
}

// RelativeError returns |estimate-exact| / |exact|, the paper's utility
// metric (accuracy loss), or 0 when exact == 0 and the estimate matches,
// and +Inf when exact == 0 but the estimate does not.
func RelativeError(estimate, exact float64) float64 {
	if exact == 0 {
		if estimate == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(estimate-exact) / math.Abs(exact)
}
