package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRunningBasics(t *testing.T) {
	var r Running
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	for _, x := range xs {
		r.Add(x)
	}
	if r.N() != 8 {
		t.Fatalf("N = %d, want 8", r.N())
	}
	if got := r.Mean(); !almostEqual(got, 5, 1e-12) {
		t.Errorf("Mean = %v, want 5", got)
	}
	// Population variance is 4; sample variance is 32/7.
	if got := r.Variance(); !almostEqual(got, 32.0/7.0, 1e-12) {
		t.Errorf("Variance = %v, want %v", got, 32.0/7.0)
	}
	if r.Min() != 2 || r.Max() != 9 {
		t.Errorf("Min/Max = %v/%v, want 2/9", r.Min(), r.Max())
	}
	if got := r.Sum(); got != 40 {
		t.Errorf("Sum = %v, want 40", got)
	}
}

func TestRunningEmptyAndSingle(t *testing.T) {
	var r Running
	if r.Variance() != 0 || r.Mean() != 0 || r.N() != 0 {
		t.Error("zero value should report zeros")
	}
	r.Add(3.5)
	if r.Variance() != 0 {
		t.Error("single sample variance should be 0")
	}
	if r.Mean() != 3.5 || r.Min() != 3.5 || r.Max() != 3.5 {
		t.Error("single sample stats wrong")
	}
}

func TestRunningMergeMatchesSequential(t *testing.T) {
	f := func(seed int64, split uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 50 + int(split)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64()*10 + 3
		}
		cut := n * int(split%97) / 97
		var all, left, right Running
		for _, x := range xs {
			all.Add(x)
		}
		for _, x := range xs[:cut] {
			left.Add(x)
		}
		for _, x := range xs[cut:] {
			right.Add(x)
		}
		left.Merge(right)
		return left.N() == all.N() &&
			almostEqual(left.Mean(), all.Mean(), 1e-9) &&
			almostEqual(left.Variance(), all.Variance(), 1e-7) &&
			almostEqual(left.Sum(), all.Sum(), 1e-7) &&
			left.Min() == all.Min() && left.Max() == all.Max()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRunningMergeEmptySides(t *testing.T) {
	var a, b Running
	b.Add(1)
	b.Add(2)
	a.Merge(b)
	if a.N() != 2 || a.Mean() != 1.5 {
		t.Error("merge into empty failed")
	}
	var empty Running
	a.Merge(empty)
	if a.N() != 2 {
		t.Error("merge of empty changed accumulator")
	}
}

func TestSliceMeanVariance(t *testing.T) {
	if Mean(nil) != 0 || Variance(nil) != 0 {
		t.Error("empty slice should yield 0")
	}
	if Variance([]float64{42}) != 0 {
		t.Error("singleton variance should be 0")
	}
	xs := []float64{1, 2, 3, 4}
	if got := Mean(xs); got != 2.5 {
		t.Errorf("Mean = %v, want 2.5", got)
	}
	if got := Variance(xs); !almostEqual(got, 5.0/3.0, 1e-12) {
		t.Errorf("Variance = %v, want %v", got, 5.0/3.0)
	}
}

func TestConfidenceInterval(t *testing.T) {
	ci := ConfidenceInterval{Estimate: 100, Margin: 5, Confidence: 0.95}
	if ci.Lo() != 95 || ci.Hi() != 105 {
		t.Errorf("interval endpoints %v..%v", ci.Lo(), ci.Hi())
	}
	if !ci.Contains(100) || !ci.Contains(95) || !ci.Contains(105) {
		t.Error("endpoints should be contained")
	}
	if ci.Contains(94.999) || ci.Contains(105.001) {
		t.Error("values outside the margin should not be contained")
	}
}

func TestRelativeError(t *testing.T) {
	if got := RelativeError(110, 100); !almostEqual(got, 0.1, 1e-12) {
		t.Errorf("RelativeError = %v, want 0.1", got)
	}
	if got := RelativeError(90, 100); !almostEqual(got, 0.1, 1e-12) {
		t.Errorf("RelativeError = %v, want 0.1", got)
	}
	if got := RelativeError(0, 0); got != 0 {
		t.Errorf("RelativeError(0,0) = %v, want 0", got)
	}
	if got := RelativeError(1, 0); !math.IsInf(got, 1) {
		t.Errorf("RelativeError(1,0) = %v, want +Inf", got)
	}
}
