package minisql

import (
	"errors"
	"fmt"
	"strings"
	"unicode"
)

// ErrSyntax reports lexical or grammatical errors with position info.
var ErrSyntax = errors.New("minisql: syntax error")

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokKeyword
	tokSymbol
)

type token struct {
	kind tokenKind
	text string // keywords upper-cased, symbols verbatim
	num  float64
	pos  int
}

var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "AND": true, "OR": true,
	"NOT": true, "LIKE": true, "IN": true, "IS": true, "NULL": true,
	"INSERT": true, "INTO": true, "VALUES": true, "CREATE": true,
	"TABLE": true, "AS": true, "TRUE": true, "FALSE": true,
	"BETWEEN": true, "LIMIT": true,
}

// lex tokenizes the input.
func lex(input string) ([]token, error) {
	var toks []token
	i := 0
	n := len(input)
	for i < n {
		c := input[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '\'':
			// String literal with '' escaping.
			start := i
			i++
			var sb strings.Builder
			closed := false
			for i < n {
				if input[i] == '\'' {
					if i+1 < n && input[i+1] == '\'' {
						sb.WriteByte('\'')
						i += 2
						continue
					}
					i++
					closed = true
					break
				}
				sb.WriteByte(input[i])
				i++
			}
			if !closed {
				return nil, fmt.Errorf("%w: unterminated string at %d", ErrSyntax, start)
			}
			toks = append(toks, token{kind: tokString, text: sb.String(), pos: start})
		case c >= '0' && c <= '9' || c == '.' && i+1 < n && input[i+1] >= '0' && input[i+1] <= '9':
			start := i
			for i < n && (input[i] >= '0' && input[i] <= '9' || input[i] == '.' ||
				input[i] == 'e' || input[i] == 'E' ||
				(input[i] == '+' || input[i] == '-') && (input[i-1] == 'e' || input[i-1] == 'E')) {
				i++
			}
			text := input[start:i]
			var f float64
			if _, err := fmt.Sscanf(text, "%g", &f); err != nil {
				return nil, fmt.Errorf("%w: bad number %q at %d", ErrSyntax, text, start)
			}
			toks = append(toks, token{kind: tokNumber, text: text, num: f, pos: start})
		case isIdentStart(rune(c)):
			start := i
			for i < n && isIdentPart(rune(input[i])) {
				i++
			}
			word := input[start:i]
			upper := strings.ToUpper(word)
			if keywords[upper] {
				toks = append(toks, token{kind: tokKeyword, text: upper, pos: start})
			} else {
				toks = append(toks, token{kind: tokIdent, text: word, pos: start})
			}
		default:
			start := i
			// Two-character operators first.
			if i+1 < n {
				two := input[i : i+2]
				if two == "<=" || two == ">=" || two == "!=" || two == "<>" {
					toks = append(toks, token{kind: tokSymbol, text: two, pos: start})
					i += 2
					continue
				}
			}
			switch c {
			case '=', '<', '>', '+', '-', '*', '/', '(', ')', ',', '%':
				toks = append(toks, token{kind: tokSymbol, text: string(c), pos: start})
				i++
			default:
				return nil, fmt.Errorf("%w: unexpected character %q at %d", ErrSyntax, string(c), start)
			}
		}
	}
	toks = append(toks, token{kind: tokEOF, pos: n})
	return toks, nil
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}
