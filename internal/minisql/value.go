// Package minisql is an embedded SQL-subset engine: the stand-in for the
// SQLite database PrivApprox clients run analyst queries against
// (paper §5, "the query answer module is used to execute the input query
// on the local user's private data stored in SQLite").
//
// The engine supports the query shapes the paper's model needs:
//
//	CREATE TABLE t (a, b, ...)
//	INSERT INTO t VALUES (1, 'x'), (2, 'y')
//	SELECT expr [AS name], ... FROM t [WHERE predicate]
//
// with arithmetic, comparisons, AND/OR/NOT, LIKE, IN, and IS NULL in
// expressions. Values are dynamically typed (null, number, text, bool),
// SQLite style.
package minisql

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// ErrType reports an operation applied to incompatible value types.
var ErrType = errors.New("minisql: type error")

// Kind enumerates runtime value types.
type Kind int

// The dynamic types a cell can hold.
const (
	KindNull Kind = iota
	KindNumber
	KindText
	KindBool
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindNumber:
		return "number"
	case KindText:
		return "text"
	case KindBool:
		return "bool"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Value is one dynamically typed cell.
type Value struct {
	Kind Kind
	Num  float64
	Str  string
	B    bool
}

// Convenience constructors.
func Null() Value            { return Value{Kind: KindNull} }
func Number(f float64) Value { return Value{Kind: KindNumber, Num: f} }
func Text(s string) Value    { return Value{Kind: KindText, Str: s} }
func Bool(b bool) Value      { return Value{Kind: KindBool, B: b} }

// IsNull reports whether the value is SQL NULL.
func (v Value) IsNull() bool { return v.Kind == KindNull }

// Truthy converts to a boolean in WHERE position: NULL is false, numbers
// are non-zero, text is non-empty.
func (v Value) Truthy() bool {
	switch v.Kind {
	case KindBool:
		return v.B
	case KindNumber:
		return v.Num != 0
	case KindText:
		return v.Str != ""
	default:
		return false
	}
}

// AsNumber coerces to float64: numbers pass through, bools become 0/1,
// numeric-looking text parses.
func (v Value) AsNumber() (float64, error) {
	switch v.Kind {
	case KindNumber:
		return v.Num, nil
	case KindBool:
		if v.B {
			return 1, nil
		}
		return 0, nil
	case KindText:
		f, err := strconv.ParseFloat(strings.TrimSpace(v.Str), 64)
		if err != nil {
			return 0, fmt.Errorf("%w: %q is not numeric", ErrType, v.Str)
		}
		return f, nil
	default:
		return 0, fmt.Errorf("%w: null is not numeric", ErrType)
	}
}

// String renders the value the way query results print it.
func (v Value) String() string {
	switch v.Kind {
	case KindNull:
		return "NULL"
	case KindNumber:
		return strconv.FormatFloat(v.Num, 'g', -1, 64)
	case KindText:
		return v.Str
	case KindBool:
		if v.B {
			return "true"
		}
		return "false"
	default:
		return "?"
	}
}

// Equal implements SQL equality: NULL equals nothing (including NULL);
// number/bool/text compare after coercion when kinds differ and both
// sides are scalar.
func (v Value) Equal(o Value) Value {
	if v.IsNull() || o.IsNull() {
		return Null()
	}
	if v.Kind == KindText && o.Kind == KindText {
		return Bool(v.Str == o.Str)
	}
	a, errA := v.AsNumber()
	b, errB := o.AsNumber()
	if errA != nil || errB != nil {
		// Mixed text/number that does not coerce: unequal.
		return Bool(false)
	}
	return Bool(a == b)
}

// Compare returns -1/0/+1 ordering, or an error for incomparable kinds.
// NULL comparisons surface as errors so the evaluator can map them to
// SQL NULL.
func (v Value) Compare(o Value) (int, error) {
	if v.IsNull() || o.IsNull() {
		return 0, fmt.Errorf("%w: comparison with NULL", ErrType)
	}
	if v.Kind == KindText && o.Kind == KindText {
		return strings.Compare(v.Str, o.Str), nil
	}
	a, errA := v.AsNumber()
	if errA != nil {
		return 0, errA
	}
	b, errB := o.AsNumber()
	if errB != nil {
		return 0, errB
	}
	switch {
	case a < b:
		return -1, nil
	case a > b:
		return 1, nil
	default:
		return 0, nil
	}
}
