package minisql

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func newTaxiDB(t *testing.T) *DB {
	t.Helper()
	db := NewDB()
	if _, err := db.Exec("CREATE TABLE rides (ts, distance, city)"); err != nil {
		t.Fatal(err)
	}
	rows := []string{
		"INSERT INTO rides VALUES (1, 0.5, 'New York'), (2, 1.5, 'New York')",
		"INSERT INTO rides VALUES (3, 12.0, 'New York'), (4, 3.3, 'Boston')",
		"INSERT INTO rides VALUES (5, NULL, 'New York')",
	}
	for _, sql := range rows {
		if _, err := db.Exec(sql); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func TestLexerBasics(t *testing.T) {
	toks, err := lex("SELECT a, 'it''s' FROM t WHERE x >= 1.5e2")
	if err != nil {
		t.Fatal(err)
	}
	var kinds []tokenKind
	for _, tk := range toks {
		kinds = append(kinds, tk.kind)
	}
	want := []tokenKind{tokKeyword, tokIdent, tokSymbol, tokString, tokKeyword,
		tokIdent, tokKeyword, tokIdent, tokSymbol, tokNumber, tokEOF}
	if len(kinds) != len(want) {
		t.Fatalf("got %d tokens, want %d", len(kinds), len(want))
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Errorf("token %d kind = %v, want %v", i, kinds[i], want[i])
		}
	}
	if toks[3].text != "it's" {
		t.Errorf("string literal = %q", toks[3].text)
	}
	if toks[9].num != 150 {
		t.Errorf("number = %v", toks[9].num)
	}
}

func TestLexerErrors(t *testing.T) {
	if _, err := lex("SELECT 'unterminated"); err == nil {
		t.Error("expected unterminated string error")
	}
	if _, err := lex("SELECT #"); err == nil {
		t.Error("expected bad character error")
	}
}

func TestParseSelectShapes(t *testing.T) {
	good := []string{
		"SELECT * FROM t",
		"SELECT a, b FROM t",
		"SELECT a AS x FROM t WHERE b = 1",
		"SELECT distance FROM rides WHERE city = 'San Francisco'",
		"SELECT a FROM t WHERE a > 1 AND b < 2 OR NOT c = 3",
		"SELECT a FROM t WHERE a IN (1, 2, 3)",
		"SELECT a FROM t WHERE a NOT IN (1, 2)",
		"SELECT a FROM t WHERE name LIKE 'San%'",
		"SELECT a FROM t WHERE name NOT LIKE '%x%'",
		"SELECT a FROM t WHERE a BETWEEN 1 AND 5",
		"SELECT a FROM t WHERE a NOT BETWEEN 1 AND 5",
		"SELECT a FROM t WHERE a IS NULL",
		"SELECT a FROM t WHERE a IS NOT NULL",
		"SELECT a + b * 2 FROM t LIMIT 10",
		"SELECT -a FROM t",
		"SELECT (a + 1) * 2 FROM t",
	}
	for _, sql := range good {
		if _, err := Parse(sql); err != nil {
			t.Errorf("Parse(%q): %v", sql, err)
		}
	}
	bad := []string{
		"",
		"SELECT FROM t",
		"SELECT a",
		"SELECT a FROM",
		"SELECT a FROM t WHERE",
		"SELECT a FROM t garbage",
		"SELECT a FROM t LIMIT x",
		"INSERT INTO t",
		"CREATE TABLE t ()",
		"CREATE TABLE t (a, a)",
		"DROP TABLE t",
	}
	for _, sql := range bad {
		if _, err := Parse(sql); err == nil {
			t.Errorf("Parse(%q): expected error", sql)
		}
	}
}

func TestParsePrecedence(t *testing.T) {
	stmt, err := Parse("SELECT a FROM t WHERE x = 1 OR y = 2 AND z = 3")
	if err != nil {
		t.Fatal(err)
	}
	sel := stmt.(*SelectStmt)
	or, ok := sel.Where.(*BinaryExpr)
	if !ok || or.Op != "OR" {
		t.Fatalf("top operator = %+v, want OR", sel.Where)
	}
	and, ok := or.R.(*BinaryExpr)
	if !ok || and.Op != "AND" {
		t.Fatalf("right of OR = %+v, want AND", or.R)
	}
	// 1 + 2 * 3 parses as 1 + (2*3).
	stmt2, err := Parse("SELECT 1 + 2 * 3 FROM t")
	if err != nil {
		t.Fatal(err)
	}
	add := stmt2.(*SelectStmt).Items[0].Expr.(*BinaryExpr)
	if add.Op != "+" {
		t.Fatalf("top arithmetic = %q, want +", add.Op)
	}
	if mul, ok := add.R.(*BinaryExpr); !ok || mul.Op != "*" {
		t.Fatal("multiplication should bind tighter")
	}
}

func TestSelectBasics(t *testing.T) {
	db := newTaxiDB(t)
	rows, err := db.Query("SELECT distance FROM rides WHERE city = 'New York'")
	if err != nil {
		t.Fatal(err)
	}
	// NULL distance row matches city but still returns its NULL distance.
	if len(rows.Rows) != 4 {
		t.Fatalf("got %d rows, want 4", len(rows.Rows))
	}
	if rows.Columns[0] != "distance" {
		t.Errorf("column = %q", rows.Columns[0])
	}
}

func TestSelectStarAndAlias(t *testing.T) {
	db := newTaxiDB(t)
	rows, err := db.Query("SELECT * FROM rides LIMIT 2")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Columns) != 3 || len(rows.Rows) != 2 {
		t.Fatalf("star select: %d cols %d rows", len(rows.Columns), len(rows.Rows))
	}
	rows, err = db.Query("SELECT distance * 2 AS dbl FROM rides WHERE ts = 2")
	if err != nil {
		t.Fatal(err)
	}
	if rows.Columns[0] != "dbl" || rows.Rows[0][0].Num != 3 {
		t.Errorf("alias select = %v %v", rows.Columns, rows.Rows)
	}
}

func TestWhereNullSemantics(t *testing.T) {
	db := newTaxiDB(t)
	// NULL never satisfies a comparison.
	rows, err := db.Query("SELECT ts FROM rides WHERE distance > 0")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Rows) != 4 {
		t.Errorf("NULL row leaked into comparison: %d rows", len(rows.Rows))
	}
	rows, err = db.Query("SELECT ts FROM rides WHERE distance IS NULL")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Rows) != 1 || rows.Rows[0][0].Num != 5 {
		t.Errorf("IS NULL = %v", rows.Rows)
	}
	rows, err = db.Query("SELECT ts FROM rides WHERE distance IS NOT NULL")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Rows) != 4 {
		t.Errorf("IS NOT NULL = %d rows", len(rows.Rows))
	}
	// NOT NULL → NULL → excluded.
	rows, err = db.Query("SELECT ts FROM rides WHERE NOT (distance > 0)")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Rows) != 0 {
		t.Errorf("NOT over NULL leaked: %v", rows.Rows)
	}
}

func TestLikeInBetween(t *testing.T) {
	db := newTaxiDB(t)
	rows, err := db.Query("SELECT ts FROM rides WHERE city LIKE 'new%'")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Rows) != 4 {
		t.Errorf("LIKE case-insensitive prefix: %d rows", len(rows.Rows))
	}
	rows, err = db.Query("SELECT ts FROM rides WHERE city LIKE '_oston'")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Rows) != 1 {
		t.Errorf("LIKE underscore: %d rows", len(rows.Rows))
	}
	rows, err = db.Query("SELECT ts FROM rides WHERE ts IN (1, 3, 99)")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Rows) != 2 {
		t.Errorf("IN: %d rows", len(rows.Rows))
	}
	rows, err = db.Query("SELECT ts FROM rides WHERE distance BETWEEN 1 AND 4")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Rows) != 2 {
		t.Errorf("BETWEEN: %d rows", len(rows.Rows))
	}
	rows, err = db.Query("SELECT ts FROM rides WHERE ts NOT IN (1, 2, 3, 4)")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Rows) != 1 {
		t.Errorf("NOT IN: %d rows", len(rows.Rows))
	}
}

func TestArithmetic(t *testing.T) {
	db := NewDB()
	if err := db.CreateTable("t", []string{"a"}); err != nil {
		t.Fatal(err)
	}
	if err := db.Insert("t", []Value{Number(10)}); err != nil {
		t.Fatal(err)
	}
	cases := map[string]float64{
		"SELECT a + 5 FROM t":     15,
		"SELECT a - 5 FROM t":     5,
		"SELECT a * 2 FROM t":     20,
		"SELECT a / 4 FROM t":     2.5,
		"SELECT a % 3 FROM t":     1,
		"SELECT -a FROM t":        -10,
		"SELECT (a+2)*3 FROM t":   36,
		"SELECT 2 + a * 2 FROM t": 22,
	}
	for sql, want := range cases {
		rows, err := db.Query(sql)
		if err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
		if got := rows.Rows[0][0].Num; got != want {
			t.Errorf("%s = %v, want %v", sql, got, want)
		}
	}
	// Division by zero yields NULL, SQLite style.
	rows, err := db.Query("SELECT a / 0 FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if !rows.Rows[0][0].IsNull() {
		t.Errorf("a/0 = %v, want NULL", rows.Rows[0][0])
	}
}

func TestInsertViaSQLAndErrors(t *testing.T) {
	db := NewDB()
	if _, err := db.Exec("CREATE TABLE t (a, b)"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("CREATE TABLE t (a)"); !errors.Is(err, ErrTableExist) {
		t.Errorf("duplicate create: %v", err)
	}
	if _, err := db.Exec("INSERT INTO t VALUES (1, 'x'), (2, 'y')"); err != nil {
		t.Fatal(err)
	}
	n, err := db.RowCount("t")
	if err != nil || n != 2 {
		t.Errorf("RowCount = %d, %v", n, err)
	}
	if _, err := db.Exec("INSERT INTO t VALUES (1)"); !errors.Is(err, ErrArity) {
		t.Errorf("arity: %v", err)
	}
	if _, err := db.Exec("INSERT INTO missing VALUES (1)"); !errors.Is(err, ErrNoTable) {
		t.Errorf("missing table: %v", err)
	}
	if _, err := db.Query("SELECT nope FROM t"); !errors.Is(err, ErrColumn) {
		t.Errorf("unknown column: %v", err)
	}
	if _, err := db.Query("SELECT a FROM missing"); !errors.Is(err, ErrNoTable) {
		t.Errorf("missing table select: %v", err)
	}
	if _, err := db.Query("INSERT INTO t VALUES (3, 'z')"); err == nil {
		t.Error("Query must reject non-SELECT")
	}
}

func TestDeleteWhere(t *testing.T) {
	db := newTaxiDB(t)
	removed, err := db.DeleteWhere("rides", func(row []Value) bool {
		return !row[0].IsNull() && row[0].Num <= 2
	})
	if err != nil {
		t.Fatal(err)
	}
	if removed != 2 {
		t.Errorf("removed = %d, want 2", removed)
	}
	n, _ := db.RowCount("rides")
	if n != 3 {
		t.Errorf("remaining = %d, want 3", n)
	}
	if _, err := db.DeleteWhere("missing", func([]Value) bool { return true }); err == nil {
		t.Error("expected error for missing table")
	}
}

func TestQueryPreparedMatchesQuery(t *testing.T) {
	db := newTaxiDB(t)
	sql := "SELECT distance FROM rides WHERE city = 'New York' AND distance IS NOT NULL"
	stmt, err := Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	prepared, err := db.QueryPrepared(stmt.(*SelectStmt))
	if err != nil {
		t.Fatal(err)
	}
	direct, err := db.Query(sql)
	if err != nil {
		t.Fatal(err)
	}
	if len(prepared.Rows) != len(direct.Rows) {
		t.Errorf("prepared %d rows vs direct %d rows", len(prepared.Rows), len(direct.Rows))
	}
}

// Property: WHERE filtering matches a hand-rolled Go predicate.
func TestWhereEquivalenceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		db := NewDB()
		if err := db.CreateTable("t", []string{"x", "y"}); err != nil {
			return false
		}
		type rec struct{ x, y float64 }
		var recs []rec
		for i := 0; i < 200; i++ {
			r := rec{x: float64(rng.Intn(20)), y: float64(rng.Intn(20))}
			recs = append(recs, r)
			if err := db.Insert("t", []Value{Number(r.x), Number(r.y)}); err != nil {
				return false
			}
		}
		lo := float64(rng.Intn(10))
		hi := lo + float64(rng.Intn(10))
		sql := fmt.Sprintf("SELECT x FROM t WHERE x >= %g AND x < %g OR y = %g", lo, hi, lo)
		rows, err := db.Query(sql)
		if err != nil {
			return false
		}
		want := 0
		for _, r := range recs {
			if r.x >= lo && r.x < hi || r.y == lo {
				want++
			}
		}
		return len(rows.Rows) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestConcurrentReadersAndWriters(t *testing.T) {
	db := NewDB()
	if err := db.CreateTable("t", []string{"v"}); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if err := db.Insert("t", []Value{Number(float64(i))}); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if _, err := db.Query("SELECT v FROM t WHERE v > 100"); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	n, err := db.RowCount("t")
	if err != nil {
		t.Fatal(err)
	}
	if n != 800 {
		t.Errorf("RowCount = %d, want 800", n)
	}
}

func TestValueCoercions(t *testing.T) {
	if v, err := Text("42").AsNumber(); err != nil || v != 42 {
		t.Errorf("text coercion = %v, %v", v, err)
	}
	if _, err := Text("abc").AsNumber(); err == nil {
		t.Error("expected coercion error")
	}
	if _, err := Null().AsNumber(); err == nil {
		t.Error("expected null coercion error")
	}
	if v, err := Bool(true).AsNumber(); err != nil || v != 1 {
		t.Errorf("bool coercion = %v, %v", v, err)
	}
	if !Number(0).Equal(Bool(false)).B {
		t.Error("0 should equal false")
	}
	if Null().Equal(Null()).Kind != KindNull {
		t.Error("NULL = NULL should be NULL")
	}
	if Number(1).Equal(Text("banana")).B {
		t.Error("1 should not equal 'banana'")
	}
	if Null().Truthy() {
		t.Error("NULL should not be truthy")
	}
	if !Text("x").Truthy() || Text("").Truthy() {
		t.Error("text truthiness wrong")
	}
}

func TestValueStringAndKind(t *testing.T) {
	if Null().String() != "NULL" || Number(1.5).String() != "1.5" ||
		Text("hi").String() != "hi" || Bool(true).String() != "true" || Bool(false).String() != "false" {
		t.Error("String renderings wrong")
	}
	for k, want := range map[Kind]string{KindNull: "null", KindNumber: "number", KindText: "text", KindBool: "bool"} {
		if k.String() != want {
			t.Errorf("Kind %d = %q", k, k.String())
		}
	}
}

func TestCompareTextAndErrors(t *testing.T) {
	c, err := Text("apple").Compare(Text("banana"))
	if err != nil || c >= 0 {
		t.Errorf("text compare = %d, %v", c, err)
	}
	if _, err := Null().Compare(Number(1)); err == nil {
		t.Error("expected error comparing NULL")
	}
	if _, err := Text("abc").Compare(Number(1)); err == nil {
		t.Error("expected error comparing non-numeric text to number")
	}
}
