package minisql

import (
	"errors"
	"fmt"
	"regexp"
	"strings"
	"sync"
)

// ErrColumn reports a reference to an unknown column.
var ErrColumn = errors.New("minisql: unknown column")

// env resolves column names to values for one row.
type env struct {
	cols map[string]int // lower-cased column name → index
	row  []Value
}

func (e *env) lookup(name string) (Value, error) {
	idx, ok := e.cols[strings.ToLower(name)]
	if !ok {
		return Value{}, fmt.Errorf("%w: %q", ErrColumn, name)
	}
	return e.row[idx], nil
}

// eval evaluates an expression against a row environment. SQL NULL
// propagates through arithmetic and comparisons; AND/OR use three-valued
// logic collapsed to Truthy at the WHERE boundary.
func eval(e Expr, ev *env) (Value, error) {
	switch x := e.(type) {
	case *LiteralExpr:
		return x.Val, nil
	case *ColumnExpr:
		return ev.lookup(x.Name)
	case *UnaryExpr:
		v, err := eval(x.X, ev)
		if err != nil {
			return Value{}, err
		}
		switch x.Op {
		case "NOT":
			if v.IsNull() {
				return Null(), nil
			}
			return Bool(!v.Truthy()), nil
		case "-":
			f, err := v.AsNumber()
			if err != nil {
				return Value{}, err
			}
			return Number(-f), nil
		default:
			return Value{}, fmt.Errorf("%w: unary %q", ErrSyntax, x.Op)
		}
	case *BinaryExpr:
		return evalBinary(x, ev)
	case *InExpr:
		v, err := eval(x.X, ev)
		if err != nil {
			return Value{}, err
		}
		if v.IsNull() {
			return Null(), nil
		}
		for _, item := range x.List {
			iv, err := eval(item, ev)
			if err != nil {
				return Value{}, err
			}
			eq := v.Equal(iv)
			if eq.Kind == KindBool && eq.B {
				return Bool(!x.Not), nil
			}
		}
		return Bool(x.Not), nil
	case *IsNullExpr:
		v, err := eval(x.X, ev)
		if err != nil {
			return Value{}, err
		}
		if x.Not {
			return Bool(!v.IsNull()), nil
		}
		return Bool(v.IsNull()), nil
	case *BetweenExpr:
		v, err := eval(x.X, ev)
		if err != nil {
			return Value{}, err
		}
		lo, err := eval(x.Lo, ev)
		if err != nil {
			return Value{}, err
		}
		hi, err := eval(x.Hi, ev)
		if err != nil {
			return Value{}, err
		}
		if v.IsNull() || lo.IsNull() || hi.IsNull() {
			return Null(), nil
		}
		cmpLo, err := v.Compare(lo)
		if err != nil {
			return Value{}, err
		}
		cmpHi, err := v.Compare(hi)
		if err != nil {
			return Value{}, err
		}
		in := cmpLo >= 0 && cmpHi <= 0
		if x.Not {
			in = !in
		}
		return Bool(in), nil
	default:
		return Value{}, fmt.Errorf("%w: unknown expression %T", ErrSyntax, e)
	}
}

func evalBinary(x *BinaryExpr, ev *env) (Value, error) {
	switch x.Op {
	case "AND":
		l, err := eval(x.L, ev)
		if err != nil {
			return Value{}, err
		}
		if !l.IsNull() && !l.Truthy() {
			return Bool(false), nil // short circuit
		}
		r, err := eval(x.R, ev)
		if err != nil {
			return Value{}, err
		}
		if !r.IsNull() && !r.Truthy() {
			return Bool(false), nil
		}
		if l.IsNull() || r.IsNull() {
			return Null(), nil
		}
		return Bool(true), nil
	case "OR":
		l, err := eval(x.L, ev)
		if err != nil {
			return Value{}, err
		}
		if !l.IsNull() && l.Truthy() {
			return Bool(true), nil // short circuit
		}
		r, err := eval(x.R, ev)
		if err != nil {
			return Value{}, err
		}
		if !r.IsNull() && r.Truthy() {
			return Bool(true), nil
		}
		if l.IsNull() || r.IsNull() {
			return Null(), nil
		}
		return Bool(false), nil
	}

	l, err := eval(x.L, ev)
	if err != nil {
		return Value{}, err
	}
	r, err := eval(x.R, ev)
	if err != nil {
		return Value{}, err
	}
	switch x.Op {
	case "+", "-", "*", "/", "%":
		if l.IsNull() || r.IsNull() {
			return Null(), nil
		}
		a, err := l.AsNumber()
		if err != nil {
			return Value{}, err
		}
		b, err := r.AsNumber()
		if err != nil {
			return Value{}, err
		}
		switch x.Op {
		case "+":
			return Number(a + b), nil
		case "-":
			return Number(a - b), nil
		case "*":
			return Number(a * b), nil
		case "/":
			if b == 0 {
				return Null(), nil // SQLite yields NULL on division by zero
			}
			return Number(a / b), nil
		default: // "%"
			if b == 0 {
				return Null(), nil
			}
			return Number(float64(int64(a) % int64(b))), nil
		}
	case "=":
		return l.Equal(r), nil
	case "!=":
		eq := l.Equal(r)
		if eq.IsNull() {
			return Null(), nil
		}
		return Bool(!eq.B), nil
	case "<", "<=", ">", ">=":
		if l.IsNull() || r.IsNull() {
			return Null(), nil
		}
		c, err := l.Compare(r)
		if err != nil {
			return Value{}, err
		}
		switch x.Op {
		case "<":
			return Bool(c < 0), nil
		case "<=":
			return Bool(c <= 0), nil
		case ">":
			return Bool(c > 0), nil
		default:
			return Bool(c >= 0), nil
		}
	case "LIKE":
		if l.IsNull() || r.IsNull() {
			return Null(), nil
		}
		if r.Kind != KindText {
			return Value{}, fmt.Errorf("%w: LIKE pattern must be text", ErrType)
		}
		re, err := likePattern(r.Str)
		if err != nil {
			return Value{}, err
		}
		return Bool(re.MatchString(l.String())), nil
	default:
		return Value{}, fmt.Errorf("%w: operator %q", ErrSyntax, x.Op)
	}
}

// likeCache memoizes compiled LIKE patterns: clients run the same query
// every epoch, so this is on the Table 3 hot path.
var likeCache sync.Map // string → *regexp.Regexp

// likePattern compiles a SQL LIKE pattern (% = any run, _ = any single
// character) into an anchored, case-insensitive regular expression.
func likePattern(pattern string) (*regexp.Regexp, error) {
	if re, ok := likeCache.Load(pattern); ok {
		return re.(*regexp.Regexp), nil
	}
	var sb strings.Builder
	sb.WriteString("(?is)^")
	for _, r := range pattern {
		switch r {
		case '%':
			sb.WriteString(".*")
		case '_':
			sb.WriteString(".")
		default:
			sb.WriteString(regexp.QuoteMeta(string(r)))
		}
	}
	sb.WriteString("$")
	re, err := regexp.Compile(sb.String())
	if err != nil {
		return nil, fmt.Errorf("%w: LIKE pattern %q: %v", ErrSyntax, pattern, err)
	}
	likeCache.Store(pattern, re)
	return re, nil
}
