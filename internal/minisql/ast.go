package minisql

// Expr is an expression node evaluated per row.
type Expr interface {
	exprNode()
}

// LiteralExpr is a constant.
type LiteralExpr struct{ Val Value }

// ColumnExpr references a column by name.
type ColumnExpr struct{ Name string }

// UnaryExpr is NOT x or -x.
type UnaryExpr struct {
	Op string // "NOT" or "-"
	X  Expr
}

// BinaryExpr covers arithmetic, comparisons, AND/OR, and LIKE.
type BinaryExpr struct {
	Op   string // "+", "-", "*", "/", "%", "=", "!=", "<", "<=", ">", ">=", "AND", "OR", "LIKE"
	L, R Expr
}

// InExpr is x IN (e1, e2, ...), optionally negated.
type InExpr struct {
	X    Expr
	List []Expr
	Not  bool
}

// IsNullExpr is x IS [NOT] NULL.
type IsNullExpr struct {
	X   Expr
	Not bool
}

// BetweenExpr is x BETWEEN lo AND hi, optionally negated.
type BetweenExpr struct {
	X, Lo, Hi Expr
	Not       bool
}

func (*LiteralExpr) exprNode() {}
func (*ColumnExpr) exprNode()  {}
func (*UnaryExpr) exprNode()   {}
func (*BinaryExpr) exprNode()  {}
func (*InExpr) exprNode()      {}
func (*IsNullExpr) exprNode()  {}
func (*BetweenExpr) exprNode() {}

// Statement is a parsed SQL statement.
type Statement interface {
	stmtNode()
}

// SelectItem is one projection: an expression with an optional alias, or
// the star.
type SelectItem struct {
	Star  bool
	Expr  Expr
	Alias string
}

// SelectStmt is SELECT items FROM table [WHERE cond] [LIMIT n].
type SelectStmt struct {
	Items []SelectItem
	Table string
	Where Expr // nil when absent
	Limit int  // -1 when absent
}

// InsertStmt is INSERT INTO table VALUES (...), (...).
type InsertStmt struct {
	Table string
	Rows  [][]Expr
}

// CreateStmt is CREATE TABLE name (col, col, ...).
type CreateStmt struct {
	Table   string
	Columns []string
}

func (*SelectStmt) stmtNode() {}
func (*InsertStmt) stmtNode() {}
func (*CreateStmt) stmtNode() {}
