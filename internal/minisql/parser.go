package minisql

import (
	"fmt"
	"strings"
)

// Parse parses one SQL statement.
func Parse(sql string) (Statement, error) {
	toks, err := lex(sql)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	stmt, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	if !p.atEOF() {
		return nil, fmt.Errorf("%w: trailing input at %d", ErrSyntax, p.peek().pos)
	}
	return stmt, nil
}

type parser struct {
	toks []token
	i    int
}

func (p *parser) peek() token { return p.toks[p.i] }

func (p *parser) next() token {
	t := p.toks[p.i]
	if t.kind != tokEOF {
		p.i++
	}
	return t
}

func (p *parser) atEOF() bool { return p.peek().kind == tokEOF }

func (p *parser) acceptKeyword(kw string) bool {
	if t := p.peek(); t.kind == tokKeyword && t.text == kw {
		p.i++
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return fmt.Errorf("%w: expected %s at %d", ErrSyntax, kw, p.peek().pos)
	}
	return nil
}

func (p *parser) acceptSymbol(sym string) bool {
	if t := p.peek(); t.kind == tokSymbol && t.text == sym {
		p.i++
		return true
	}
	return false
}

func (p *parser) expectSymbol(sym string) error {
	if !p.acceptSymbol(sym) {
		return fmt.Errorf("%w: expected %q at %d", ErrSyntax, sym, p.peek().pos)
	}
	return nil
}

func (p *parser) expectIdent() (string, error) {
	t := p.peek()
	if t.kind != tokIdent {
		return "", fmt.Errorf("%w: expected identifier at %d", ErrSyntax, t.pos)
	}
	p.i++
	return t.text, nil
}

func (p *parser) parseStatement() (Statement, error) {
	switch {
	case p.acceptKeyword("SELECT"):
		return p.parseSelect()
	case p.acceptKeyword("INSERT"):
		return p.parseInsert()
	case p.acceptKeyword("CREATE"):
		return p.parseCreate()
	default:
		return nil, fmt.Errorf("%w: expected SELECT, INSERT or CREATE at %d", ErrSyntax, p.peek().pos)
	}
}

func (p *parser) parseSelect() (*SelectStmt, error) {
	stmt := &SelectStmt{Limit: -1}
	for {
		if p.acceptSymbol("*") {
			stmt.Items = append(stmt.Items, SelectItem{Star: true})
		} else {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := SelectItem{Expr: e}
			if p.acceptKeyword("AS") {
				alias, err := p.expectIdent()
				if err != nil {
					return nil, err
				}
				item.Alias = alias
			}
			stmt.Items = append(stmt.Items, item)
		}
		if !p.acceptSymbol(",") {
			break
		}
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	stmt.Table = table
	if p.acceptKeyword("WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Where = w
	}
	if p.acceptKeyword("LIMIT") {
		t := p.peek()
		if t.kind != tokNumber {
			return nil, fmt.Errorf("%w: expected number after LIMIT at %d", ErrSyntax, t.pos)
		}
		p.i++
		stmt.Limit = int(t.num)
		if stmt.Limit < 0 {
			return nil, fmt.Errorf("%w: negative LIMIT", ErrSyntax)
		}
	}
	return stmt, nil
}

func (p *parser) parseInsert() (*InsertStmt, error) {
	if err := p.expectKeyword("INTO"); err != nil {
		return nil, err
	}
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("VALUES"); err != nil {
		return nil, err
	}
	stmt := &InsertStmt{Table: table}
	for {
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		var row []Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if !p.acceptSymbol(",") {
				break
			}
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		stmt.Rows = append(stmt.Rows, row)
		if !p.acceptSymbol(",") {
			break
		}
	}
	return stmt, nil
}

func (p *parser) parseCreate() (*CreateStmt, error) {
	if err := p.expectKeyword("TABLE"); err != nil {
		return nil, err
	}
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	stmt := &CreateStmt{Table: table}
	seen := map[string]bool{}
	for {
		col, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		lower := strings.ToLower(col)
		if seen[lower] {
			return nil, fmt.Errorf("%w: duplicate column %q", ErrSyntax, col)
		}
		seen[lower] = true
		stmt.Columns = append(stmt.Columns, col)
		// Tolerate a type annotation after the column name (ignored,
		// SQLite-style dynamic typing).
		if t := p.peek(); t.kind == tokIdent {
			p.i++
		}
		if !p.acceptSymbol(",") {
			break
		}
	}
	if err := p.expectSymbol(")"); err != nil {
		return nil, err
	}
	return stmt, nil
}

// Expression grammar, lowest precedence first:
//
//	or     := and (OR and)*
//	and    := not (AND not)*
//	not    := NOT not | cmp
//	cmp    := add ((=|!=|<>|<|<=|>|>=|LIKE|IN|IS|BETWEEN) ...)?
//	add    := mul ((+|-) mul)*
//	mul    := unary ((*|/|%) unary)*
//	unary  := - unary | primary
//	primary:= literal | column | ( or )
func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("OR") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: "OR", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("AND") {
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: "AND", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.acceptKeyword("NOT") {
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "NOT", X: x}, nil
	}
	return p.parseComparison()
}

func (p *parser) parseComparison() (Expr, error) {
	l, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	t := p.peek()
	if t.kind == tokSymbol {
		switch t.text {
		case "=", "!=", "<>", "<", "<=", ">", ">=":
			p.i++
			r, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			op := t.text
			if op == "<>" {
				op = "!="
			}
			return &BinaryExpr{Op: op, L: l, R: r}, nil
		}
	}
	if t.kind == tokKeyword {
		negate := false
		if t.text == "NOT" {
			// x NOT LIKE / NOT IN / NOT BETWEEN
			save := p.i
			p.i++
			nt := p.peek()
			if nt.kind == tokKeyword && (nt.text == "LIKE" || nt.text == "IN" || nt.text == "BETWEEN") {
				negate = true
				t = nt
			} else {
				p.i = save
				return l, nil
			}
		}
		switch t.text {
		case "LIKE":
			p.i++
			r, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			var e Expr = &BinaryExpr{Op: "LIKE", L: l, R: r}
			if negate {
				e = &UnaryExpr{Op: "NOT", X: e}
			}
			return e, nil
		case "IN":
			p.i++
			if err := p.expectSymbol("("); err != nil {
				return nil, err
			}
			var list []Expr
			for {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				list = append(list, e)
				if !p.acceptSymbol(",") {
					break
				}
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			return &InExpr{X: l, List: list, Not: negate}, nil
		case "BETWEEN":
			p.i++
			lo, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			if err := p.expectKeyword("AND"); err != nil {
				return nil, err
			}
			hi, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			return &BetweenExpr{X: l, Lo: lo, Hi: hi, Not: negate}, nil
		case "IS":
			p.i++
			not := p.acceptKeyword("NOT")
			if err := p.expectKeyword("NULL"); err != nil {
				return nil, err
			}
			return &IsNullExpr{X: l, Not: not}, nil
		}
	}
	return l, nil
}

func (p *parser) parseAdditive() (Expr, error) {
	l, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind == tokSymbol && (t.text == "+" || t.text == "-") {
			p.i++
			r, err := p.parseMultiplicative()
			if err != nil {
				return nil, err
			}
			l = &BinaryExpr{Op: t.text, L: l, R: r}
			continue
		}
		return l, nil
	}
}

func (p *parser) parseMultiplicative() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind == tokSymbol && (t.text == "*" || t.text == "/" || t.text == "%") {
			p.i++
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			l = &BinaryExpr{Op: t.text, L: l, R: r}
			continue
		}
		return l, nil
	}
}

func (p *parser) parseUnary() (Expr, error) {
	if p.acceptSymbol("-") {
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "-", X: x}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch t.kind {
	case tokNumber:
		p.i++
		return &LiteralExpr{Val: Number(t.num)}, nil
	case tokString:
		p.i++
		return &LiteralExpr{Val: Text(t.text)}, nil
	case tokIdent:
		p.i++
		return &ColumnExpr{Name: t.text}, nil
	case tokKeyword:
		switch t.text {
		case "NULL":
			p.i++
			return &LiteralExpr{Val: Null()}, nil
		case "TRUE":
			p.i++
			return &LiteralExpr{Val: Bool(true)}, nil
		case "FALSE":
			p.i++
			return &LiteralExpr{Val: Bool(false)}, nil
		}
	case tokSymbol:
		if t.text == "(" {
			p.i++
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	}
	return nil, fmt.Errorf("%w: unexpected token %q at %d", ErrSyntax, t.text, t.pos)
}
