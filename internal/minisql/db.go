package minisql

import (
	"errors"
	"fmt"
	"strings"
	"sync"
)

// Errors reported by the database layer.
var (
	ErrNoTable    = errors.New("minisql: no such table")
	ErrTableExist = errors.New("minisql: table already exists")
	ErrArity      = errors.New("minisql: wrong number of values")
)

// DB is an in-memory, concurrency-safe database of dynamically typed
// tables: one per client device, holding the user's private stream.
type DB struct {
	mu     sync.RWMutex
	tables map[string]*table
}

type table struct {
	columns []string
	colIdx  map[string]int
	rows    [][]Value
}

// NewDB returns an empty database.
func NewDB() *DB {
	return &DB{tables: make(map[string]*table)}
}

// CreateTable creates a table programmatically.
func (db *DB) CreateTable(name string, columns []string) error {
	if name == "" || len(columns) == 0 {
		return fmt.Errorf("%w: table %q with %d columns", ErrSyntax, name, len(columns))
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	key := strings.ToLower(name)
	if _, ok := db.tables[key]; ok {
		return fmt.Errorf("%w: %q", ErrTableExist, name)
	}
	t := &table{columns: append([]string(nil), columns...), colIdx: map[string]int{}}
	for i, c := range columns {
		lc := strings.ToLower(c)
		if _, dup := t.colIdx[lc]; dup {
			return fmt.Errorf("%w: duplicate column %q", ErrSyntax, c)
		}
		t.colIdx[lc] = i
	}
	db.tables[key] = t
	return nil
}

// Insert appends one row programmatically — the fast path the client
// runtime uses when ingesting its private stream.
func (db *DB) Insert(tableName string, row []Value) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, ok := db.tables[strings.ToLower(tableName)]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoTable, tableName)
	}
	if len(row) != len(t.columns) {
		return fmt.Errorf("%w: %d values for %d columns", ErrArity, len(row), len(t.columns))
	}
	t.rows = append(t.rows, append([]Value(nil), row...))
	return nil
}

// DeleteWhere removes rows for which pred returns true, returning the
// number removed. Clients prune data that has aged out of every window.
func (db *DB) DeleteWhere(tableName string, pred func(row []Value) bool) (int, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, ok := db.tables[strings.ToLower(tableName)]
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrNoTable, tableName)
	}
	kept := t.rows[:0]
	removed := 0
	for _, r := range t.rows {
		if pred(r) {
			removed++
		} else {
			kept = append(kept, r)
		}
	}
	t.rows = kept
	return removed, nil
}

// RowCount returns the number of rows in a table.
func (db *DB) RowCount(tableName string) (int, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[strings.ToLower(tableName)]
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrNoTable, tableName)
	}
	return len(t.rows), nil
}

// Rows is a query result: column names and materialized rows.
type Rows struct {
	Columns []string
	Rows    [][]Value
}

// Exec runs any statement. SELECT returns its rows; INSERT and CREATE
// return an empty result.
func (db *DB) Exec(sql string) (*Rows, error) {
	stmt, err := Parse(sql)
	if err != nil {
		return nil, err
	}
	switch s := stmt.(type) {
	case *SelectStmt:
		return db.execSelect(s)
	case *InsertStmt:
		return db.execInsert(s)
	case *CreateStmt:
		if err := db.CreateTable(s.Table, s.Columns); err != nil {
			return nil, err
		}
		return &Rows{}, nil
	default:
		return nil, fmt.Errorf("%w: unsupported statement %T", ErrSyntax, stmt)
	}
}

// Query runs a SELECT statement.
func (db *DB) Query(sql string) (*Rows, error) {
	stmt, err := Parse(sql)
	if err != nil {
		return nil, err
	}
	sel, ok := stmt.(*SelectStmt)
	if !ok {
		return nil, fmt.Errorf("%w: Query requires SELECT", ErrSyntax)
	}
	return db.execSelect(sel)
}

// QueryPrepared runs a previously parsed SELECT, skipping the parser —
// the per-epoch fast path (clients execute the same analyst query every
// epoch).
func (db *DB) QueryPrepared(sel *SelectStmt) (*Rows, error) {
	return db.execSelect(sel)
}

func (db *DB) execInsert(s *InsertStmt) (*Rows, error) {
	emptyEnv := &env{cols: map[string]int{}}
	for _, rowExprs := range s.Rows {
		row := make([]Value, len(rowExprs))
		for i, e := range rowExprs {
			v, err := eval(e, emptyEnv)
			if err != nil {
				return nil, err
			}
			row[i] = v
		}
		if err := db.Insert(s.Table, row); err != nil {
			return nil, err
		}
	}
	return &Rows{}, nil
}

func (db *DB) execSelect(s *SelectStmt) (*Rows, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[strings.ToLower(s.Table)]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoTable, s.Table)
	}
	// Output columns.
	var columns []string
	for _, item := range s.Items {
		if item.Star {
			columns = append(columns, t.columns...)
			continue
		}
		switch {
		case item.Alias != "":
			columns = append(columns, item.Alias)
		default:
			if col, ok := item.Expr.(*ColumnExpr); ok {
				columns = append(columns, col.Name)
			} else {
				columns = append(columns, fmt.Sprintf("expr%d", len(columns)+1))
			}
		}
	}
	out := &Rows{Columns: columns}
	ev := &env{cols: t.colIdx}
	for _, row := range t.rows {
		ev.row = row
		if s.Where != nil {
			v, err := eval(s.Where, ev)
			if err != nil {
				return nil, err
			}
			if v.IsNull() || !v.Truthy() {
				continue
			}
		}
		var outRow []Value
		for _, item := range s.Items {
			if item.Star {
				outRow = append(outRow, row...)
				continue
			}
			v, err := eval(item.Expr, ev)
			if err != nil {
				return nil, err
			}
			outRow = append(outRow, v)
		}
		out.Rows = append(out.Rows, outRow)
		if s.Limit >= 0 && len(out.Rows) >= s.Limit {
			break
		}
	}
	return out, nil
}
