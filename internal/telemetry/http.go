package telemetry

import (
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"sync/atomic"
)

// expvar exposes one process-global variable namespace, so the
// registry behind /debug/vars is an atomic pointer the most recent
// Handler call installs: expvar.Publish panics on duplicate names,
// and tests build many registries per process.
var (
	expvarOnce sync.Once
	expvarReg  atomic.Pointer[Registry]
)

func publishExpvar(r *Registry) {
	expvarReg.Store(r)
	expvarOnce.Do(func() {
		expvar.Publish("privapprox", expvar.Func(func() any {
			reg := expvarReg.Load()
			if reg == nil {
				return nil
			}
			samples := reg.Gather()
			out := make(map[string]float64, len(samples))
			for _, s := range samples {
				key := s.Name
				if s.LabelKey != "" {
					key += "{" + s.LabelKey + "=" + s.LabelValue + "}"
				}
				out[key] = s.Value
			}
			return out
		}))
	})
}

// Route is an extra endpoint mounted on the introspection mux — the
// lineage debug page, readiness probes, role-specific handlers.
type Route struct {
	Pattern string
	Handler http.Handler
}

// HealthzRoute is the liveness probe: it answers 200 whenever the
// process can serve HTTP at all.
func HealthzRoute() Route {
	return Route{Pattern: "/healthz", Handler: http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		w.Write([]byte("ok\n"))
	})}
}

// ReadyRoute is the readiness probe: check reports nil when the role
// is ready to serve (e.g. every control-plane sink has acked the
// current query-set version); a non-nil error yields 503 with the
// reason in the body.
func ReadyRoute(check func() error) Route {
	return Route{Pattern: "/readyz", Handler: http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		if err := check(); err != nil {
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
		w.Write([]byte("ready\n"))
	})}
}

// Handler returns the introspection endpoint for a registry:
//
//	/metrics       Prometheus text exposition
//	/debug/vars    expvar (process globals + the registry under "privapprox")
//	/debug/pprof/  the standard pprof surface
//
// plus any extra routes.
func Handler(r *Registry, routes ...Route) http.Handler {
	publishExpvar(r)
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WriteProm(w)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	for _, rt := range routes {
		mux.Handle(rt.Pattern, rt.Handler)
	}
	return mux
}

// Server is a live introspection listener; Close shuts it down.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve starts the introspection endpoint on addr (host:port; port 0
// picks a free port) and serves it in the background, mounting any
// extra routes. The returned Server reports the bound address and
// closes the listener.
func Serve(addr string, r *Registry, routes ...Route) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: Handler(r, routes...)}
	go srv.Serve(ln)
	return &Server{ln: ln, srv: srv}, nil
}

// Addr returns the listener's bound address (useful with port 0).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the listener and in-flight handlers.
func (s *Server) Close() error { return s.srv.Close() }
