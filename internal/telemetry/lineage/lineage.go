// Package lineage is the result provenance plane: it gives every fired
// window a cross-process pedigree. Client batchers stamp each published
// flush with a compact origin context (epoch, client group, flush
// sequence, wall/monotonic publish times) that travels over a sidecar
// pubsub topic; the aggregator folds its own per-window accounting —
// realized participation, shed level, estimator CI width, privacy
// budget burn, drop counters — into a wide-event "result card" at fire
// time; and a Recorder matches the two by epoch, retains cards in a
// bounded ring, appends them as JSONL, and summarizes them as
// Prometheus series.
//
// The split between the two halves of a card is deliberate:
//
//   - Deterministic fields (query, window bounds, responses, realized
//     fraction, shed, CI width, epsilon, drop/dedup counts) depend only
//     on the seeded workload. DeterministicLine renders exactly these,
//     and the lineage gate requires the rendered lines to be
//     byte-identical between the in-process pipeline and the networked
//     deployment, for every Workers/Shards setting.
//   - Observed fields (fire time, fire duration, end-to-end latency
//     from the earliest batch flush feeding the window, per-stage busy
//     legs) are timing and are excluded from the gate.
package lineage

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Stamp is the origin context of one published batch: which epoch the
// shares belong to, which client group (process) flushed them, the
// flush sequence within that group, and when the flush started and the
// publish completed. Wall times anchor cross-process latency; MonoNs is
// the publisher's monotonic offset since process start, useful within
// one process's stamp stream.
type Stamp struct {
	Epoch        uint64
	Group        uint32 // client-group index (the process's -offset)
	Seq          uint64 // flush sequence within the group
	Shares       uint32 // shares carried by the flushed batch
	FlushStartNs int64  // wall clock, ns: flush began (answers handed over)
	PublishNs    int64  // wall clock, ns: publish acknowledged
	MonoNs       int64  // monotonic ns since publisher process start
}

// stampVersion versions the wire encoding; DecodeStamp rejects frames
// from a future layout instead of misparsing them.
const stampVersion = byte(1)

// StampWireSize is the encoded size of one stamp.
const StampWireSize = 1 + 8 + 4 + 8 + 4 + 8 + 8 + 8

// AppendStamp appends the wire encoding of s to dst.
func AppendStamp(dst []byte, s Stamp) []byte {
	dst = append(dst, stampVersion)
	dst = binary.BigEndian.AppendUint64(dst, s.Epoch)
	dst = binary.BigEndian.AppendUint32(dst, s.Group)
	dst = binary.BigEndian.AppendUint64(dst, s.Seq)
	dst = binary.BigEndian.AppendUint32(dst, s.Shares)
	dst = binary.BigEndian.AppendUint64(dst, uint64(s.FlushStartNs))
	dst = binary.BigEndian.AppendUint64(dst, uint64(s.PublishNs))
	dst = binary.BigEndian.AppendUint64(dst, uint64(s.MonoNs))
	return dst
}

// DecodeStamp decodes one stamp record.
func DecodeStamp(data []byte) (Stamp, error) {
	if len(data) != StampWireSize {
		return Stamp{}, fmt.Errorf("lineage: stamp record has %d bytes, want %d", len(data), StampWireSize)
	}
	if data[0] != stampVersion {
		return Stamp{}, fmt.Errorf("lineage: stamp version %d, want %d", data[0], stampVersion)
	}
	var s Stamp
	s.Epoch = binary.BigEndian.Uint64(data[1:])
	s.Group = binary.BigEndian.Uint32(data[9:])
	s.Seq = binary.BigEndian.Uint64(data[13:])
	s.Shares = binary.BigEndian.Uint32(data[21:])
	s.FlushStartNs = int64(binary.BigEndian.Uint64(data[25:]))
	s.PublishNs = int64(binary.BigEndian.Uint64(data[33:]))
	s.MonoNs = int64(binary.BigEndian.Uint64(data[41:]))
	return s, nil
}

// Card is the wide event for one fired window. One card is emitted per
// (query, window) fire, off the hot path, and never mutated afterwards.
//
// Float fields can legitimately be non-finite — an unbounded CI width
// is +Inf, and so is the zero-knowledge epsilon at s = 1 — so they
// serialize through JSONFloat, which encodes non-finite values as the
// strings "+Inf", "-Inf", "NaN" instead of failing the whole card.
type Card struct {
	// Deterministic under a fixed seed (the lineage gate's contract).
	Query       string    `json:"query"`
	WindowStart int64     `json:"window_start_ns"` // unix ns, inclusive
	WindowEnd   int64     `json:"window_end_ns"`   // unix ns, exclusive
	EpochFirst  uint64    `json:"epoch_first"`     // first epoch mapping into the window
	EpochLast   uint64    `json:"epoch_last"`      // last epoch mapping into the window
	Responses   int       `json:"responses"`       // decoded answers aggregated
	Population  int       `json:"population"`      // effective SRS population (U × epochs)
	Fraction    JSONFloat `json:"fraction"`        // configured sampling fraction s
	Realized    JSONFloat `json:"realized"`        // Responses / Population
	Shed        JSONFloat `json:"shed"`            // shed threshold at fire (1 = unshed)
	CIWidth     JSONFloat `json:"ci_width"`        // mean relative CI width; +Inf = unbounded
	EpsilonZK   JSONFloat `json:"epsilon_zk"`      // privacy budget burned by the window's params
	Late        int64     `json:"late"`            // late answers attributed to this window
	Duplicates  int64     `json:"duplicates"`      // aggregator duplicate shares at fire time
	Malformed   int64     `json:"malformed"`       // aggregator malformed messages at fire time

	// Observed at fire time (timing; excluded from DeterministicLine).
	FiredAtNs int64            `json:"fired_at_ns"`        // wall clock of the fire
	FireDurNs int64            `json:"fire_dur_ns"`        // close-and-merge + estimate duration
	E2ENs     int64            `json:"e2e_ns"`             // fire − earliest stamp flush; -1 = no stamps
	Stamps    int              `json:"stamps"`             // stamp batches matched to the window's epochs
	StageNs   map[string]int64 `json:"stage_ns,omitempty"` // cumulative per-stage busy legs
}

// JSONFloat is a float64 whose JSON form survives non-finite values:
// finite values encode as numbers, ±Inf and NaN as the strings detFloat
// renders. encoding/json rejects non-finite float64s outright, and a
// result card must never be unloggable because an estimator leg was
// unbounded.
type JSONFloat float64

func (f JSONFloat) MarshalJSON() ([]byte, error) {
	v := float64(f)
	switch {
	case math.IsNaN(v):
		return []byte(`"NaN"`), nil
	case math.IsInf(v, 1):
		return []byte(`"+Inf"`), nil
	case math.IsInf(v, -1):
		return []byte(`"-Inf"`), nil
	}
	return json.Marshal(v)
}

func (f *JSONFloat) UnmarshalJSON(b []byte) error {
	if len(b) > 0 && b[0] == '"' {
		var s string
		if err := json.Unmarshal(b, &s); err != nil {
			return err
		}
		switch s {
		case "NaN":
			*f = JSONFloat(math.NaN())
		case "+Inf":
			*f = JSONFloat(math.Inf(1))
		case "-Inf":
			*f = JSONFloat(math.Inf(-1))
		default:
			v, err := strconv.ParseFloat(s, 64)
			if err != nil {
				return err
			}
			*f = JSONFloat(v)
		}
		return nil
	}
	var v float64
	if err := json.Unmarshal(b, &v); err != nil {
		return err
	}
	*f = JSONFloat(v)
	return nil
}

// DeterministicLine renders the card's seed-determined fields as one
// canonical line. The lineage gate compares sorted multisets of these
// lines across deployment shapes, so the format must not include
// anything timing- or scheduling-dependent.
func (c Card) DeterministicLine() string {
	var b strings.Builder
	b.WriteString("query=")
	b.WriteString(c.Query)
	fmt.Fprintf(&b, " window=[%d,%d) epochs=[%d,%d] responses=%d population=%d",
		c.WindowStart, c.WindowEnd, c.EpochFirst, c.EpochLast, c.Responses, c.Population)
	b.WriteString(" fraction=")
	b.WriteString(detFloat(float64(c.Fraction)))
	b.WriteString(" realized=")
	b.WriteString(detFloat(float64(c.Realized)))
	b.WriteString(" shed=")
	b.WriteString(detFloat(float64(c.Shed)))
	b.WriteString(" ci_width=")
	b.WriteString(detFloat(float64(c.CIWidth)))
	b.WriteString(" epsilon_zk=")
	b.WriteString(detFloat(float64(c.EpsilonZK)))
	fmt.Fprintf(&b, " late=%d duplicates=%d malformed=%d", c.Late, c.Duplicates, c.Malformed)
	return b.String()
}

// detFloat renders a float the shortest way that round-trips — a
// bit-exact value renders identically everywhere, so equal estimates
// produce equal lines.
func detFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// EpochRange maps a window to the epochs whose event times fall inside
// it: event time of epoch e is origin + e×freq. ok is false when the
// window lies entirely before origin or freq is not positive.
func EpochRange(originNs, freqNs, startNs, endNs int64) (first, last uint64, ok bool) {
	if freqNs <= 0 || endNs <= startNs || endNs <= originNs {
		return 0, 0, false
	}
	var lo int64
	if startNs > originNs {
		// Ceil division for the first epoch at or after the window start.
		lo = (startNs - originNs + freqNs - 1) / freqNs
	}
	hi := (endNs - 1 - originNs) / freqNs
	if hi < lo {
		return 0, 0, false
	}
	return uint64(lo), uint64(hi), true
}
