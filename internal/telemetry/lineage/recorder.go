package lineage

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"

	"privapprox/internal/telemetry"
)

// defaultRing bounds the cards kept resident for /debug/privapprox/windows.
const defaultRing = 256

// Options configures a Recorder.
type Options struct {
	// Ring is the number of cards retained in memory (default 256).
	Ring int
	// Path, when non-empty, is the append-only JSONL card log. The
	// file is scanned on open: windows already logged are suppressed
	// on re-emission (exactly-once across crash/restore) and a torn
	// final line from a crash is truncated away.
	Path string
	// Registry, when non-nil, receives the privapprox_window_e2e_ns
	// histogram; the Recorder itself is a Source for the rest of its
	// series and should be passed to RegisterSource.
	Registry *telemetry.Registry
	// Tracer, when non-nil, supplies the cumulative per-stage busy
	// legs copied onto each card.
	Tracer *telemetry.Tracer
}

// epochStamps folds the stamps observed for one epoch: how many batch
// flushes carried its shares and the earliest flush start, which anchors
// the end-to-end latency of every window the epoch feeds.
type epochStamps struct {
	batches  int
	minFlush int64
}

// stampCap bounds the epoch → stamp fold map; the oldest epoch is
// evicted when full (windows fire in rough epoch order, so the oldest
// entries are the ones already consumed).
const stampCap = 4096

// Recorder is the card sink: it dedups against the JSONL log, enriches
// cards with stamp-derived latency and tracer stage legs, retains a
// bounded ring for the debug endpoint, appends the JSONL wide event,
// and summarizes cards as Prometheus series. All methods are
// concurrent-safe; EmitCard runs at fire cadence, never share cadence.
type Recorder struct {
	mu      sync.Mutex
	ring    []Card
	next    int
	count   int64
	file    *os.File
	through map[string]int64 // query → max window start already emitted
	stamps  map[uint64]*epochStamps
	latest  map[string]Card // query → most recent card, for labeled gauges

	emitted    atomic.Int64
	suppressed atomic.Int64
	stamped    atomic.Int64
	writeErrs  atomic.Int64

	e2e    *telemetry.Histogram
	tracer *telemetry.Tracer
}

// NewRecorder opens a card recorder. With a Path, the existing JSONL
// log is scanned to rebuild the suppression watermark per query (a
// crash loses at most a suffix of an append-only log, so the per-query
// maximum window start is exactly the set of durably emitted windows)
// and a torn trailing line is truncated.
func NewRecorder(opts Options) (*Recorder, error) {
	ring := opts.Ring
	if ring <= 0 {
		ring = defaultRing
	}
	reg := opts.Registry
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	r := &Recorder{
		ring:    make([]Card, ring),
		through: make(map[string]int64),
		stamps:  make(map[uint64]*epochStamps),
		latest:  make(map[string]Card),
		e2e:     reg.Histogram("privapprox_window_e2e_ns"),
		tracer:  opts.Tracer,
	}
	if opts.Path != "" {
		if err := r.openLog(opts.Path); err != nil {
			return nil, err
		}
	}
	return r, nil
}

// openLog scans an existing card log, truncates a torn tail, and leaves
// the file positioned for appends.
func (r *Recorder) openLog(path string) error {
	// The recorder opens before the durable state machinery has
	// necessarily created the data directory.
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return fmt.Errorf("lineage: card log dir: %w", err)
		}
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return fmt.Errorf("lineage: open card log: %w", err)
	}
	good := int64(0)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Bytes()
		var c Card
		if json.Unmarshal(line, &c) != nil || c.Query == "" {
			break // torn or foreign tail: stop trusting from here on
		}
		good += int64(len(line)) + 1
		if cur, ok := r.through[c.Query]; !ok || c.WindowStart > cur {
			r.through[c.Query] = c.WindowStart
		}
	}
	if err := sc.Err(); err != nil {
		f.Close()
		return fmt.Errorf("lineage: scan card log: %w", err)
	}
	if st, err := f.Stat(); err == nil && st.Size() > good {
		if err := f.Truncate(good); err != nil {
			f.Close()
			return fmt.Errorf("lineage: truncate torn card log tail: %w", err)
		}
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return fmt.Errorf("lineage: seek card log: %w", err)
	}
	r.file = f
	return nil
}

// ObserveStamp folds one batch stamp into the per-epoch origin state.
// Called from the lineage topic drain, off the share hot path.
func (r *Recorder) ObserveStamp(s Stamp) {
	r.stamped.Add(1)
	r.mu.Lock()
	es := r.stamps[s.Epoch]
	if es == nil {
		if len(r.stamps) >= stampCap {
			oldest := uint64(0)
			first := true
			for e := range r.stamps {
				if first || e < oldest {
					oldest, first = e, false
				}
			}
			delete(r.stamps, oldest)
		}
		es = &epochStamps{minFlush: s.FlushStartNs}
		r.stamps[s.Epoch] = es
	} else if s.FlushStartNs < es.minFlush {
		es.minFlush = s.FlushStartNs
	}
	es.batches++
	r.mu.Unlock()
}

// EmitCard finalizes and records one window card. Duplicate windows —
// re-fired after a crash restore when the card already reached the log
// — are suppressed, making card emission exactly-once per (query,
// window) across restarts. Enrichment (stamp E2E, tracer stage legs)
// happens here so the aggregator hands over only its own accounting.
func (r *Recorder) EmitCard(c Card) error {
	if r.tracer != nil {
		c.StageNs = make(map[string]int64, int(telemetry.NumStages))
		for s := telemetry.Stage(0); s < telemetry.NumStages; s++ {
			c.StageNs[s.String()] = int64(r.tracer.TotalBusy(s))
		}
	}
	r.mu.Lock()
	if cur, ok := r.through[c.Query]; ok && c.WindowStart <= cur {
		r.mu.Unlock()
		r.suppressed.Add(1)
		return nil
	}
	c.E2ENs = -1
	for e := c.EpochFirst; e <= c.EpochLast; e++ {
		if es, ok := r.stamps[e]; ok {
			c.Stamps += es.batches
			if lat := c.FiredAtNs - es.minFlush; c.E2ENs < 0 || lat > c.E2ENs {
				c.E2ENs = lat
			}
		}
	}
	r.through[c.Query] = c.WindowStart
	r.latest[c.Query] = c
	r.ring[r.next] = c
	r.next = (r.next + 1) % len(r.ring)
	r.count++
	var err error
	if r.file != nil {
		line, merr := json.Marshal(c)
		if merr != nil {
			err = merr
		} else if _, werr := r.file.Write(append(line, '\n')); werr != nil {
			err = werr
		}
	}
	r.mu.Unlock()
	r.emitted.Add(1)
	if c.E2ENs >= 0 {
		r.e2e.Observe(c.E2ENs)
	}
	if err != nil {
		r.writeErrs.Add(1)
		return fmt.Errorf("lineage: append card: %w", err)
	}
	return nil
}

// Sync flushes the card log to stable storage. The durable node calls
// it inside the checkpoint barrier: a window fired before a checkpoint
// never re-fires after restore, so its card must be durable by the time
// the checkpoint is.
func (r *Recorder) Sync() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.file == nil {
		return nil
	}
	return r.file.Sync()
}

// Close syncs and closes the card log.
func (r *Recorder) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.file == nil {
		return nil
	}
	err := r.file.Sync()
	if cerr := r.file.Close(); err == nil {
		err = cerr
	}
	r.file = nil
	return err
}

// Cards appends the retained cards to dst, oldest first.
func (r *Recorder) Cards(dst []Card) []Card {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.count
	if n > int64(len(r.ring)) {
		n = int64(len(r.ring))
	}
	first := (r.next - int(n) + len(r.ring)) % len(r.ring)
	for i := int64(0); i < n; i++ {
		dst = append(dst, r.ring[(first+int(i))%len(r.ring)])
	}
	return dst
}

// Emitted returns the number of cards recorded (excluding suppressed).
func (r *Recorder) Emitted() int64 { return r.emitted.Load() }

// Suppressed returns the number of duplicate cards dropped.
func (r *Recorder) Suppressed() int64 { return r.suppressed.Load() }

// windowsPage is the /debug/privapprox/windows response body.
type windowsPage struct {
	Emitted    int64  `json:"emitted"`
	Suppressed int64  `json:"suppressed"`
	Stamps     int64  `json:"stamps"`
	Cards      []Card `json:"cards"`
}

// Handler serves the retained cards as JSON at the debug endpoint.
func (r *Recorder) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		page := windowsPage{
			Emitted:    r.emitted.Load(),
			Suppressed: r.suppressed.Load(),
			Stamps:     r.stamped.Load(),
			Cards:      r.Cards(make([]Card, 0, defaultRing)),
		}
		if page.Cards == nil {
			page.Cards = []Card{}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", " ")
		enc.Encode(page)
	})
}

// AppendSamples makes the Recorder a telemetry Source: card flow
// counters plus, per query, the latest window's CI width and realized
// sampling fraction as labeled gauges.
func (r *Recorder) AppendSamples(dst []Sample) []Sample {
	dst = append(dst,
		Sample{Name: "privapprox_window_cards_emitted_total", Value: float64(r.emitted.Load()), Kind: telemetry.KindCounter},
		Sample{Name: "privapprox_window_cards_suppressed_total", Value: float64(r.suppressed.Load()), Kind: telemetry.KindCounter},
		Sample{Name: "privapprox_lineage_stamps_total", Value: float64(r.stamped.Load()), Kind: telemetry.KindCounter},
		Sample{Name: "privapprox_lineage_write_errors_total", Value: float64(r.writeErrs.Load()), Kind: telemetry.KindCounter},
	)
	r.mu.Lock()
	queries := make([]string, 0, len(r.latest))
	for q := range r.latest {
		queries = append(queries, q)
	}
	sort.Strings(queries)
	for _, q := range queries {
		c := r.latest[q]
		dst = append(dst,
			Sample{Name: "privapprox_window_ci_width", LabelKey: "query", LabelValue: q, Value: float64(c.CIWidth), Kind: telemetry.KindGauge},
			Sample{Name: "privapprox_window_realized_fraction", LabelKey: "query", LabelValue: q, Value: float64(c.Realized), Kind: telemetry.KindGauge},
		)
	}
	r.mu.Unlock()
	return dst
}

// Sample aliases the telemetry sample type so Recorder satisfies
// telemetry.Source without callers importing both packages.
type Sample = telemetry.Sample
