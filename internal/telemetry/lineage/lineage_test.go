package lineage

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"privapprox/internal/telemetry"
)

func TestStampRoundTrip(t *testing.T) {
	in := Stamp{
		Epoch: 7, Group: 3, Seq: 41, Shares: 12,
		FlushStartNs: 1_700_000_000_123, PublishNs: 1_700_000_000_456, MonoNs: 9876,
	}
	wire := AppendStamp(nil, in)
	if len(wire) != StampWireSize {
		t.Fatalf("encoded %d bytes, want %d", len(wire), StampWireSize)
	}
	out, err := DecodeStamp(wire)
	if err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip: got %+v, want %+v", out, in)
	}
}

func TestDecodeStampRejectsGarbage(t *testing.T) {
	if _, err := DecodeStamp(make([]byte, StampWireSize-1)); err == nil {
		t.Fatal("short frame must not decode")
	}
	wire := AppendStamp(nil, Stamp{Epoch: 1})
	wire[0] = 99 // future version byte
	if _, err := DecodeStamp(wire); err == nil {
		t.Fatal("unknown version must not decode")
	}
}

func TestEpochRange(t *testing.T) {
	const freq = int64(1e9) // 1s epochs
	cases := []struct {
		name        string
		start, end  int64
		first, last uint64
		ok          bool
	}{
		{"aligned window", 0, 4e9, 0, 3, true},
		{"offset window", 2e9, 4e9, 2, 3, true},
		{"mid-epoch bounds", 5e8, 25e8, 1, 2, true},
		{"before origin", -4e9, -1e9, 0, 0, false},
		{"empty window", 2e9, 2e9, 0, 0, false},
		{"straddles origin", -1e9, 2e9, 0, 1, true},
	}
	for _, tc := range cases {
		first, last, ok := EpochRange(0, freq, tc.start, tc.end)
		if ok != tc.ok || (ok && (first != tc.first || last != tc.last)) {
			t.Errorf("%s: EpochRange = (%d,%d,%v), want (%d,%d,%v)",
				tc.name, first, last, ok, tc.first, tc.last, tc.ok)
		}
	}
	if _, _, ok := EpochRange(0, 0, 0, 1e9); ok {
		t.Fatal("non-positive frequency must not map")
	}
}

func TestDeterministicLineExcludesTiming(t *testing.T) {
	c := Card{
		Query: "q1", WindowStart: 1000, WindowEnd: 2000,
		EpochFirst: 1, EpochLast: 2, Responses: 5, Population: 12,
		Fraction: 0.9, Realized: 5.0 / 12.0, Shed: 1, CIWidth: 0.25, EpsilonZK: 1.5,
		FiredAtNs: 123456789, FireDurNs: 42, E2ENs: 777, Stamps: 3,
	}
	line := c.DeterministicLine()
	twin := c
	twin.FiredAtNs, twin.FireDurNs, twin.E2ENs, twin.Stamps = 0, 0, -1, 0
	if twin.DeterministicLine() != line {
		t.Fatal("timing fields must not affect the deterministic line")
	}
	for _, want := range []string{
		"query=q1", "window=[1000,2000)", "epochs=[1,2]", "responses=5",
		"population=12", "fraction=0.9", "shed=1", "ci_width=0.25",
		"epsilon_zk=1.5", "late=0 duplicates=0 malformed=0",
	} {
		if !strings.Contains(line, want) {
			t.Errorf("line %q missing %q", line, want)
		}
	}
}

func emit(t *testing.T, r *Recorder, query string, start int64) {
	t.Helper()
	if err := r.EmitCard(Card{Query: query, WindowStart: start, WindowEnd: start + 1000, Responses: 1}); err != nil {
		t.Fatal(err)
	}
}

func TestRecorderDedupsReEmission(t *testing.T) {
	r, err := NewRecorder(Options{})
	if err != nil {
		t.Fatal(err)
	}
	emit(t, r, "q", 1000)
	emit(t, r, "q", 2000)
	emit(t, r, "q", 1000) // replayed window: must be suppressed
	emit(t, r, "other", 1000)
	if got := r.Emitted(); got != 3 {
		t.Fatalf("emitted = %d, want 3", got)
	}
	if got := r.Suppressed(); got != 1 {
		t.Fatalf("suppressed = %d, want 1", got)
	}
}

func TestRecorderLogScanSuppressesAcrossRestart(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cards.jsonl")
	r1, err := NewRecorder(Options{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	emit(t, r1, "q", 1000)
	emit(t, r1, "q", 2000)
	if err := r1.Close(); err != nil {
		t.Fatal(err)
	}

	// A "restored" recorder over the same log: the already-logged
	// windows re-fire (the crash rewound the aggregator) but their
	// cards must not be appended twice.
	r2, err := NewRecorder(Options{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	emit(t, r2, "q", 1000)
	emit(t, r2, "q", 2000)
	emit(t, r2, "q", 3000) // genuinely new window
	if err := r2.Close(); err != nil {
		t.Fatal(err)
	}
	if got := r2.Suppressed(); got != 2 {
		t.Fatalf("suppressed = %d, want 2", got)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSuffix(string(data), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("log has %d cards, want 3:\n%s", len(lines), data)
	}
	seen := map[int64]bool{}
	for _, ln := range lines {
		var c Card
		if err := json.Unmarshal([]byte(ln), &c); err != nil {
			t.Fatalf("bad card line %q: %v", ln, err)
		}
		if seen[c.WindowStart] {
			t.Fatalf("window %d logged twice", c.WindowStart)
		}
		seen[c.WindowStart] = true
	}
}

func TestRecorderTruncatesTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cards.jsonl")
	r1, err := NewRecorder(Options{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	emit(t, r1, "q", 1000)
	if err := r1.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-append: a torn, unparseable final line.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"query":"q","window_start`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	r2, err := NewRecorder(Options{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	emit(t, r2, "q", 2000)
	if err := r2.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSuffix(string(data), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("log has %d lines after torn-tail recovery, want 2:\n%s", len(lines), data)
	}
	for _, ln := range lines {
		var c Card
		if err := json.Unmarshal([]byte(ln), &c); err != nil {
			t.Fatalf("unparseable line survived recovery: %q", ln)
		}
	}
}

func TestRecorderRingBounded(t *testing.T) {
	r, err := NewRecorder(Options{Ring: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		emit(t, r, "q", int64((i+1)*1000))
	}
	cards := r.Cards(nil)
	if len(cards) != 4 {
		t.Fatalf("ring holds %d cards, want 4", len(cards))
	}
	for i, c := range cards {
		if want := int64((7 + i) * 1000); c.WindowStart != want {
			t.Fatalf("card %d start = %d, want %d (oldest-first)", i, c.WindowStart, want)
		}
	}
}

func TestRecorderStampEnrichment(t *testing.T) {
	r, err := NewRecorder(Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Two groups flush epoch 5; one also flushes epoch 6. The card's
	// end-to-end latency anchors on each epoch's earliest flush.
	r.ObserveStamp(Stamp{Epoch: 5, Group: 0, Shares: 3, FlushStartNs: 1000})
	r.ObserveStamp(Stamp{Epoch: 5, Group: 1, Shares: 3, FlushStartNs: 900})
	r.ObserveStamp(Stamp{Epoch: 6, Group: 0, Shares: 3, FlushStartNs: 2000})
	if err := r.EmitCard(Card{
		Query: "q", WindowStart: 0, WindowEnd: 7000,
		EpochFirst: 5, EpochLast: 6, FiredAtNs: 5000,
	}); err != nil {
		t.Fatal(err)
	}
	cards := r.Cards(nil)
	if len(cards) != 1 {
		t.Fatalf("cards = %d, want 1", len(cards))
	}
	c := cards[0]
	if c.Stamps != 3 {
		t.Fatalf("stamps = %d, want 3", c.Stamps)
	}
	// Worst-case leg: fire(5000) − earliest epoch-5 flush(900) = 4100.
	if c.E2ENs != 4100 {
		t.Fatalf("e2e = %d, want 4100", c.E2ENs)
	}
}

func TestRecorderNoStampsMeansNoE2E(t *testing.T) {
	r, err := NewRecorder(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.EmitCard(Card{Query: "q", WindowEnd: 1000, FiredAtNs: 5000}); err != nil {
		t.Fatal(err)
	}
	if c := r.Cards(nil)[0]; c.E2ENs != -1 || c.Stamps != 0 {
		t.Fatalf("stampless card e2e=%d stamps=%d, want -1/0", c.E2ENs, c.Stamps)
	}
}

func TestRecorderHandlerServesCards(t *testing.T) {
	r, err := NewRecorder(Options{})
	if err != nil {
		t.Fatal(err)
	}
	emit(t, r, "q1", 1000)
	emit(t, r, "q2", 1000)
	r.ObserveStamp(Stamp{Epoch: 0, FlushStartNs: 1})

	rr := httptest.NewRecorder()
	r.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/privapprox/windows", nil))
	if rr.Code != 200 {
		t.Fatalf("status = %d", rr.Code)
	}
	var page struct {
		Emitted    int64  `json:"emitted"`
		Suppressed int64  `json:"suppressed"`
		Stamps     int64  `json:"stamps"`
		Cards      []Card `json:"cards"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &page); err != nil {
		t.Fatalf("windows page is not JSON: %v\n%s", err, rr.Body.String())
	}
	if page.Emitted != 2 || page.Stamps != 1 || len(page.Cards) != 2 {
		t.Fatalf("page = %+v", page)
	}
}

func TestRecorderSamples(t *testing.T) {
	reg := telemetry.NewRegistry()
	r, err := NewRecorder(Options{Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.EmitCard(Card{Query: "q", WindowEnd: 1000, CIWidth: 0.5, Realized: 0.25, Responses: 1}); err != nil {
		t.Fatal(err)
	}
	got := map[string]float64{}
	for _, s := range r.AppendSamples(nil) {
		key := s.Name
		if s.LabelKey != "" {
			key += "{" + s.LabelKey + "=" + s.LabelValue + "}"
		}
		got[key] = s.Value
	}
	if got["privapprox_window_cards_emitted_total"] != 1 {
		t.Fatalf("emitted sample = %v", got)
	}
	if got["privapprox_window_ci_width{query=q}"] != 0.5 ||
		got["privapprox_window_realized_fraction{query=q}"] != 0.25 {
		t.Fatalf("labeled gauges = %v", got)
	}
}

func TestRecorderConcurrentEmitAndObserve(t *testing.T) {
	r, err := NewRecorder(Options{})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				r.ObserveStamp(Stamp{Epoch: uint64(i), Group: uint32(g), FlushStartNs: int64(i)})
				// A memory-only recorder cannot fail an append; errors
				// are re-checked via Emitted below.
				r.EmitCard(Card{Query: fmt.Sprintf("q%d", g), WindowStart: int64((i + 1) * 1000), WindowEnd: int64((i+1)*1000) + 1000})
			}
		}(g)
	}
	wg.Wait()
	if got := r.Emitted(); got != 800 {
		t.Fatalf("emitted = %d, want 800", got)
	}
}

func TestRecorderCreatesLogDirectory(t *testing.T) {
	// A durable node may point -cards inside a data directory that no
	// component has created yet; the recorder must make it rather than
	// fall back to memory-only with a write error.
	path := filepath.Join(t.TempDir(), "agg", "deep", "cards.jsonl")
	r, err := NewRecorder(Options{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	emit(t, r, "q", 1000)
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("card log was not created: %v", err)
	}
	if !strings.Contains(string(data), `"query":"q"`) {
		t.Fatalf("card log missing emitted card:\n%s", data)
	}
}
