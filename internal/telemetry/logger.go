package telemetry

import (
	"fmt"
	"io"
	"os"
	"strconv"
	"sync"
	"time"
)

// Level orders log severities.
type Level uint8

const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
)

var levelNames = [...]string{
	LevelDebug: "debug",
	LevelInfo:  "info",
	LevelWarn:  "warn",
	LevelError: "error",
}

// String returns the level's logfmt value.
func (l Level) String() string {
	if int(l) < len(levelNames) {
		return levelNames[l]
	}
	return "unknown"
}

// Logger is a small leveled, role-tagged structured logger for node
// diagnostics: one logfmt line per event on stderr —
//
//	ts=2026-08-08T10:02:03.412Z level=warn role=aggregator msg="peek query set: timeout"
//
// It deliberately does NOT replace the protocol banner lines the
// harnesses parse from stdout (those stay plain fmt.Printf,
// byte-identical); it replaces the ad-hoc log.Printf diagnostics.
type Logger struct {
	role string
	min  Level
	mu   sync.Mutex
	w    io.Writer
	now  func() time.Time
}

// NewLogger returns a logger tagged with the node role, writing to
// stderr at LevelInfo and above.
func NewLogger(role string) *Logger {
	return &Logger{role: role, min: LevelInfo, w: os.Stderr, now: time.Now}
}

// SetOutput redirects the logger (tests).
func (l *Logger) SetOutput(w io.Writer) {
	l.mu.Lock()
	l.w = w
	l.mu.Unlock()
}

// SetLevel lowers or raises the minimum emitted level.
func (l *Logger) SetLevel(min Level) {
	l.mu.Lock()
	l.min = min
	l.mu.Unlock()
}

// logf emits one logfmt line; the message is quoted so embedded
// spaces and quotes survive field splitting.
func (l *Logger) logf(lv Level, format string, args ...any) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if lv < l.min {
		return
	}
	msg := fmt.Sprintf(format, args...)
	fmt.Fprintf(l.w, "ts=%s level=%s role=%s msg=%s\n",
		l.now().UTC().Format(time.RFC3339Nano), lv, l.role, strconv.Quote(msg))
}

// Debugf logs at debug level.
func (l *Logger) Debugf(format string, args ...any) { l.logf(LevelDebug, format, args...) }

// Infof logs at info level.
func (l *Logger) Infof(format string, args ...any) { l.logf(LevelInfo, format, args...) }

// Warnf logs at warn level.
func (l *Logger) Warnf(format string, args ...any) { l.logf(LevelWarn, format, args...) }

// Errorf logs at error level.
func (l *Logger) Errorf(format string, args ...any) { l.logf(LevelError, format, args...) }

// Fatalf logs at error level and exits the process.
func (l *Logger) Fatalf(format string, args ...any) {
	l.logf(LevelError, format, args...)
	os.Exit(1)
}
