package telemetry

import (
	"bufio"
	"io"
	"strconv"
	"strings"
)

// WriteProm writes the registry's current samples in the Prometheus
// text exposition format (version 0.0.4): one optional # TYPE line per
// metric name, then `name{label="value"} value` lines. Label values
// are escaped per the format's rules (backslash, double quote, and
// newline). Returns the first write error.
func (r *Registry) WriteProm(w io.Writer) error {
	bw := bufio.NewWriter(w)
	samples := r.Gather()
	lastTyped := ""
	for i := range samples {
		s := &samples[i]
		base := promBaseName(s.Name)
		if base != lastTyped {
			lastTyped = base
			bw.WriteString("# TYPE ")
			bw.WriteString(base)
			bw.WriteByte(' ')
			bw.WriteString(promType(samples, i, base))
			bw.WriteByte('\n')
		}
		bw.WriteString(s.Name)
		if s.LabelKey != "" {
			bw.WriteByte('{')
			bw.WriteString(s.LabelKey)
			bw.WriteString(`="`)
			bw.WriteString(EscapeLabelValue(s.LabelValue))
			bw.WriteString(`"}`)
		}
		bw.WriteByte(' ')
		bw.WriteString(trimFloat(s.Value))
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

// promBaseName strips the histogram series suffixes so the three
// expanded series of one histogram share a single TYPE declaration.
func promBaseName(name string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if strings.HasSuffix(name, suf) {
			return strings.TrimSuffix(name, suf)
		}
	}
	return name
}

// promType picks the TYPE keyword for the run of samples starting at i
// that share base: histogram when the name was suffix-expanded,
// otherwise the sample's own kind.
func promType(samples []Sample, i int, base string) string {
	if samples[i].Name != base {
		return "histogram"
	}
	switch samples[i].Kind {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	}
	return "untyped"
}

// EscapeLabelValue escapes a string for use inside a Prometheus label
// value: backslash → \\, double quote → \", newline → \n. Query names
// are user-supplied, so every labeled series goes through this.
func EscapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	b.Grow(len(v) + 8)
	for i := 0; i < len(v); i++ {
		switch v[i] {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(v[i])
		}
	}
	return b.String()
}

// trimFloat renders a float the shortest way that round-trips,
// matching Prometheus conventions (integers without a decimal point).
func trimFloat(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
