// Package telemetry is the fleet-wide observability plane: a
// zero-allocation metrics registry (atomic counters, gauges, and
// sharded fixed-bucket latency histograms), epoch trace spans that
// follow a batch through the pipeline stages, and exposition surfaces
// (Prometheus text, expvar, pprof) for the live introspection endpoint.
//
// The hot-path contract: instruments are resolved ONCE at construction
// time (a *Counter, *Gauge, or *Histogram field on the component, never
// a map lookup or string hash per event), and every mutation method —
// Counter.Add, Gauge.Set, Histogram.Observe, Tracer.Record — performs
// only atomic arithmetic on preallocated memory: 0 allocs/op, enforced
// by the repo allocgate. Snapshot-time paths (Gather, WriteProm, Spans)
// may allocate freely; they run at scrape cadence, not share cadence.
//
// The package deliberately imports nothing from the rest of the repo,
// so every kernel package (xorcrypt, rr, answer, pubsub, wal, client,
// aggregator, engine, core) can depend on it without cycles.
package telemetry

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Kind classifies a sample for the Prometheus TYPE line.
type Kind uint8

const (
	KindUntyped Kind = iota
	KindCounter
	KindGauge
)

// Sample is one exported series value at snapshot time. LabelKey /
// LabelValue carry at most one label pair (e.g. query="taxi"); Name
// plus the pair identify the series. Help is optional and only
// meaningful on the first sample of a name.
type Sample struct {
	Name       string
	LabelKey   string
	LabelValue string
	Value      float64
	Kind       Kind
}

// Source contributes snapshot-time samples to a Registry. Components
// that already keep their own atomic counters (broker, aggregator,
// chaos transport, WAL) implement it instead of growing bespoke Stats
// structs; AppendSamples must be safe to call concurrently with the
// component's hot path and should not retain dst.
type Source interface {
	AppendSamples(dst []Sample) []Sample
}

// SourceFunc adapts a function to the Source interface.
type SourceFunc func(dst []Sample) []Sample

// AppendSamples calls f.
func (f SourceFunc) AppendSamples(dst []Sample) []Sample { return f(dst) }

// Counter is a monotonically increasing atomic counter. The zero value
// is usable but nameless; instruments handed out by a Registry carry
// their series name.
type Counter struct {
	v    atomic.Int64
	name string
}

// Add increments the counter by n. 0 allocs, one atomic add.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current count.
func (c *Counter) Load() int64 { return c.v.Load() }

// Name returns the series name the counter was registered under.
func (c *Counter) Name() string { return c.name }

// Gauge is an atomic instantaneous value.
type Gauge struct {
	v    atomic.Int64
	name string
}

// Set stores the gauge value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the gauge by n.
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Max raises the gauge to n if n is larger (monotonic high-water mark
// within a window; Set resets it).
func (g *Gauge) Max(n int64) {
	for {
		cur := g.v.Load()
		if n <= cur || g.v.CompareAndSwap(cur, n) {
			return
		}
	}
}

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// Name returns the series name.
func (g *Gauge) Name() string { return g.name }

// FloatGauge is an atomic float64 gauge (IEEE bits in a uint64), for
// fractional values like shed thresholds and p95 seconds.
type FloatGauge struct {
	bits atomic.Uint64
	name string
}

// Set stores the gauge value.
func (g *FloatGauge) Set(v float64) { g.bits.Store(floatBits(v)) }

// Load returns the current value.
func (g *FloatGauge) Load() float64 { return floatFrom(g.bits.Load()) }

// Name returns the series name.
func (g *FloatGauge) Name() string { return g.name }

// Registry owns a set of named instruments and snapshot Sources. All
// instrument constructors are idempotent per name — asking twice for
// the same name returns the same instrument — so concurrent component
// construction cannot double-register. Construction takes the registry
// lock; the returned instruments never do.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	fgauges  map[string]*FloatGauge
	hists    map[string]*Histogram
	kinds    map[string]string // name → instrument kind, for clash detection
	sources  []Source
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		fgauges:  make(map[string]*FloatGauge),
		hists:    make(map[string]*Histogram),
		kinds:    make(map[string]string),
	}
}

// Counter returns the counter registered under name, creating it on
// first use. Panics if the name is already taken by another instrument
// kind (a wiring bug worth failing loudly on).
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c
	}
	r.claimLocked(name, "counter")
	c := &Counter{name: name}
	r.counters[name] = c
	return c
}

// Gauge returns the integer gauge registered under name, creating it
// on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[name]; ok {
		return g
	}
	r.claimLocked(name, "gauge")
	g := &Gauge{name: name}
	r.gauges[name] = g
	return g
}

// FloatGauge returns the float gauge registered under name, creating
// it on first use.
func (r *Registry) FloatGauge(name string) *FloatGauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.fgauges[name]; ok {
		return g
	}
	r.claimLocked(name, "floatgauge")
	g := &FloatGauge{name: name}
	r.fgauges[name] = g
	return g
}

// Histogram returns the latency histogram registered under name,
// creating it on first use. Buckets are the fixed exponential
// nanosecond ladder (see hist.go); Observe is 0 allocs/op.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.hists[name]; ok {
		return h
	}
	r.claimLocked(name, "histogram")
	h := newHistogram(name)
	r.hists[name] = h
	return h
}

// claimLocked records name as owned by kind, panicking if another
// kind holds it or the name is not a valid metric name. Registration
// is a construction-time act, so a clash is a programming error, not a
// runtime condition to soft-fail. Re-requesting the same name with the
// same kind stays idempotent (the constructors return the existing
// instrument before reaching here).
func (r *Registry) claimLocked(name, kind string) {
	if !validMetricName(name) {
		panic(fmt.Sprintf("telemetry: invalid metric name %q registered as %s", name, kind))
	}
	if prev, ok := r.kinds[name]; ok && prev != kind {
		panic(fmt.Sprintf("telemetry: instrument %q registered as both %s and %s", name, prev, kind))
	}
	r.kinds[name] = kind
}

// validMetricName reports whether name matches the Prometheus metric
// name grammar [a-zA-Z_:][a-zA-Z0-9_:]* — checked at registration so a
// typo'd series fails at construction instead of silently corrupting
// the exposition text.
func validMetricName(name string) bool {
	if name == "" {
		return false
	}
	for i := 0; i < len(name); i++ {
		switch ch := name[i]; {
		case ch >= 'a' && ch <= 'z', ch >= 'A' && ch <= 'Z', ch == '_', ch == ':':
		case ch >= '0' && ch <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// RegisterSource adds a snapshot source; its samples appear in every
// Gather and WriteProm after this call.
func (r *Registry) RegisterSource(s Source) {
	if s == nil {
		return
	}
	r.mu.Lock()
	r.sources = append(r.sources, s)
	r.mu.Unlock()
}

// Gather snapshots every instrument and source into a flat, sorted
// sample list. Histograms contribute their _count and _sum series plus
// one cumulative _bucket sample per bucket bound (label le). Gather
// allocates; it is the scrape path, not the hot path.
func (r *Registry) Gather() []Sample {
	r.mu.Lock()
	out := make([]Sample, 0, len(r.counters)+len(r.gauges)+len(r.fgauges)+8*len(r.hists)+16)
	for _, c := range r.counters {
		out = append(out, Sample{Name: c.name, Value: float64(c.Load()), Kind: KindCounter})
	}
	for _, g := range r.gauges {
		out = append(out, Sample{Name: g.name, Value: float64(g.Load()), Kind: KindGauge})
	}
	for _, g := range r.fgauges {
		out = append(out, Sample{Name: g.name, Value: g.Load(), Kind: KindGauge})
	}
	for _, h := range r.hists {
		out = h.appendSamples(out)
	}
	sources := append([]Source(nil), r.sources...)
	r.mu.Unlock()
	// Sources run outside the registry lock: they may take component
	// locks of their own, and nothing they need is guarded by ours.
	for _, s := range sources {
		out = s.AppendSamples(out)
	}
	// Stable sort on name only: within one series the append order is
	// meaningful (histogram buckets ascend by bound) and must survive.
	sort.SliceStable(out, func(i, j int) bool {
		return out[i].Name < out[j].Name
	})
	return out
}
