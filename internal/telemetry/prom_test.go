package telemetry

import (
	"strings"
	"testing"
)

func TestEscapeLabelValue(t *testing.T) {
	cases := []struct{ in, want string }{
		{"plain", "plain"},
		{`back\slash`, `back\\slash`},
		{`quo"te`, `quo\"te`},
		{"new\nline", `new\nline`},
		{"mix\\\"\n", `mix\\\"\n`},
		{"", ""},
	}
	for _, c := range cases {
		if got := EscapeLabelValue(c.in); got != c.want {
			t.Errorf("EscapeLabelValue(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

// TestWritePromEscapesQueryNames drives a hostile query name through a
// labeled source sample and asserts the exposition line is escaped —
// analyst-chosen query names must not corrupt the scrape.
func TestWritePromEscapesQueryNames(t *testing.T) {
	r := NewRegistry()
	hostile := "taxi \"rush\nhour\" \\ q1"
	r.RegisterSource(SourceFunc(func(dst []Sample) []Sample {
		return append(dst, Sample{
			Name: "privapprox_query_decoded_total", LabelKey: "query",
			LabelValue: hostile, Value: 3, Kind: KindCounter,
		})
	}))
	var b strings.Builder
	if err := r.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	want := `privapprox_query_decoded_total{query="taxi \"rush\nhour\" \\ q1"} 3`
	if !strings.Contains(out, want) {
		t.Fatalf("exposition missing escaped line.\nwant %q\ngot:\n%s", want, out)
	}
	// A raw newline in the label value would split the sample across
	// two exposition lines; the series must occupy exactly one.
	n := 0
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "privapprox_query_decoded_total{") {
			n++
		}
	}
	if n != 1 {
		t.Fatalf("escaped series spans %d lines, want 1:\n%s", n, out)
	}
}

func TestWritePromTypeLines(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total").Add(2)
	r.Gauge("b_now").Set(-1)
	r.Histogram("c_ns").Observe(300)
	var b strings.Builder
	if err := r.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE a_total counter",
		"# TYPE b_now gauge",
		"# TYPE c_ns histogram",
		"a_total 2",
		"b_now -1",
		`c_ns_bucket{le="512"} 1`,
		`c_ns_bucket{le="+Inf"} 1`,
		"c_ns_sum 300",
		"c_ns_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	if n := strings.Count(out, "# TYPE c_ns histogram"); n != 1 {
		t.Fatalf("histogram TYPE line appears %d times, want 1", n)
	}
}
